(* The observability layer: span tracer, sharded metrics registry,
   profiling hooks.  The core claims under test: (1) observability is
   behaviour-invisible — runs with tracing+metrics fully on are
   byte-identical (registers, memory, cycles, stats, faults, litmus
   verdicts) to runs with them off, on example programs, the kernel
   suite, the fault-injection corpus and randomized programs; (2) the
   sharded metrics merge exactly — concurrent totals equal a sequential
   count; (3) chain-generation invalidation: patched edges and jump
   cache entries from before a reset/load_cache are never followed. *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_i64 = Alcotest.check Alcotest.int64
let check_bool = Alcotest.check Alcotest.bool

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* All tests leave the process-global tracer/registry off and empty. *)
let obs_off () =
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  Obs.Metrics.disable ();
  Obs.Metrics.reset ()

let with_obs_on f =
  Obs.Trace.enable ();
  Obs.Metrics.enable ();
  Fun.protect ~finally:obs_off f

(* ------------------------------------------------------------------ *)
(* Tracer unit tests                                                   *)

let test_trace_disabled_is_silent () =
  obs_off ();
  let evaluated = ref false in
  Obs.Trace.instant
    ~args:(fun () ->
      evaluated := true;
      [])
    "never";
  ignore (Obs.Trace.with_span "quiet" (fun () -> 41 + 1));
  check_bool "args thunk not evaluated while disabled" false !evaluated;
  check_int "no events recorded" 0 (List.length (Obs.Trace.events ()))

let test_trace_records_spans () =
  obs_off ();
  Obs.Trace.enable ();
  let r =
    Obs.Trace.with_span ~cat:"t" "outer" (fun () ->
        Obs.Trace.with_span ~cat:"t" "inner" (fun () -> ());
        Obs.Trace.instant ~cat:"t"
          ~args:(fun () -> [ ("k", "v") ])
          "mark";
        17)
  in
  Obs.Trace.disable ();
  check_int "with_span returns f's result" 17 r;
  let evs = Obs.Trace.events () in
  let names = List.map (fun e -> e.Obs.Trace.name) evs in
  check_bool "all three events" true
    (List.sort compare names = [ "inner"; "mark"; "outer" ]);
  let find n = List.find (fun e -> e.Obs.Trace.name = n) evs in
  let outer = find "outer" and inner = find "inner" and mark = find "mark" in
  check_bool "inner nested within outer" true
    (inner.Obs.Trace.dur_us <= outer.Obs.Trace.dur_us
    && inner.Obs.Trace.ts_us >= outer.Obs.Trace.ts_us);
  check_bool "instant marked by negative duration" true
    (mark.Obs.Trace.dur_us < 0.);
  check_bool "instant args captured" true
    (mark.Obs.Trace.args = [ ("k", "v") ]);
  (* sorted by start time *)
  let ts = List.map (fun e -> e.Obs.Trace.ts_us) evs in
  check_bool "events sorted" true (List.sort compare ts = ts);
  obs_off ()

let test_trace_span_survives_exception () =
  obs_off ();
  Obs.Trace.enable ();
  (try Obs.Trace.with_span "boom" (fun () -> raise Exit)
   with Exit -> ());
  Obs.Trace.disable ();
  check_bool "span recorded despite the raise" true
    (List.exists
       (fun e -> e.Obs.Trace.name = "boom")
       (Obs.Trace.events ()));
  obs_off ()

let test_trace_ring_wraps () =
  obs_off ();
  Obs.Trace.enable ~limit:4 ();
  for i = 1 to 10 do
    Obs.Trace.instant (Printf.sprintf "ev%d" i)
  done;
  Obs.Trace.disable ();
  let evs = Obs.Trace.events () in
  check_int "capacity bounds retained events" 4 (List.length evs);
  check_int "overwritten events counted" 6 (Obs.Trace.dropped ());
  (* the ring keeps the newest events *)
  check_bool "oldest overwritten first" true
    (List.exists (fun e -> e.Obs.Trace.name = "ev10") evs
    && not (List.exists (fun e -> e.Obs.Trace.name = "ev1") evs));
  obs_off ()

let test_trace_json_shape () =
  obs_off ();
  Obs.Trace.enable ();
  Obs.Trace.instant ~cat:"t"
    ~args:(fun () -> [ ("quote", {|say "hi"\now|}) ])
    "odd\nname";
  Obs.Trace.with_span ~cat:"t" "span" (fun () -> ());
  Obs.Trace.disable ();
  let json = Obs.Trace.to_json () in
  check_bool "chrome envelope" true
    (String.length json >= 15 && String.sub json 0 15 = {|{"traceEvents":|});
  check_bool "complete-span phase" true (contains json {|"ph":"X"|});
  check_bool "instant phase" true (contains json {|"ph":"i"|});
  check_bool "newline escaped" true (contains json {|odd\nname|});
  check_bool "quote escaped" true (contains json {|say \"hi\"|});
  check_bool "backslash escaped" true (contains json {|\\now|});
  check_bool "no raw newline inside strings" true
    (not (contains json "odd\nname"));
  obs_off ()

(* ------------------------------------------------------------------ *)
(* Metrics unit tests                                                  *)

let test_metrics_buckets () =
  check_int "non-positive" 0 (Obs.Metrics.bucket_of 0);
  check_int "negative" 0 (Obs.Metrics.bucket_of (-5));
  check_int "one" 1 (Obs.Metrics.bucket_of 1);
  check_int "two" 2 (Obs.Metrics.bucket_of 2);
  check_int "three" 2 (Obs.Metrics.bucket_of 3);
  check_int "four" 3 (Obs.Metrics.bucket_of 4);
  (* 63-bit OCaml ints top out at 2^62 - 1, i.e. bucket 62; 63 is the
     saturation cap. *)
  check_int "max_int lands in the top reachable bucket" 62
    (Obs.Metrics.bucket_of max_int);
  check_int "bucket count" 64 Obs.Metrics.buckets

let test_metrics_roundtrip () =
  obs_off ();
  let c = Obs.Metrics.counter "test.rt.count" in
  let g = Obs.Metrics.gauge "test.rt.gauge" in
  let h = Obs.Metrics.histogram "test.rt.hist" in
  (* disabled: all no-ops *)
  Obs.Metrics.incr c;
  Obs.Metrics.set g 9;
  Obs.Metrics.observe h 5;
  let s = Obs.Metrics.snapshot () in
  check_bool "disabled counter untouched" true
    (Obs.Metrics.find_counter s "test.rt.count" = Some 0);
  Obs.Metrics.enable ();
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Obs.Metrics.set g 7;
  Obs.Metrics.set g 42;
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 1000 ];
  let s = Obs.Metrics.snapshot () in
  check_bool "counter" true (Obs.Metrics.find_counter s "test.rt.count" = Some 5);
  check_bool "gauge last-writer-wins" true
    (Obs.Metrics.find_gauge s "test.rt.gauge" = Some 42);
  (match Obs.Metrics.find_histogram s "test.rt.hist" with
  | None -> Alcotest.fail "histogram missing"
  | Some hs ->
      check_int "hist count" 4 hs.Obs.Metrics.count;
      check_int "hist sum" 1006 hs.Obs.Metrics.sum;
      check_int "bucket for 1" 1
        hs.Obs.Metrics.counts.(Obs.Metrics.bucket_of 1);
      check_int "bucket for 1000" 1
        hs.Obs.Metrics.counts.(Obs.Metrics.bucket_of 1000));
  (* registration is idempotent by name *)
  let c' = Obs.Metrics.counter "test.rt.count" in
  Obs.Metrics.incr c';
  let s = Obs.Metrics.snapshot () in
  check_bool "same metric behind the name" true
    (Obs.Metrics.find_counter s "test.rt.count" = Some 6);
  check_int "no duplicate registration" 1
    (List.length
       (List.filter
          (fun (n, _) -> n = "test.rt.count")
          s.Obs.Metrics.counters));
  Obs.Metrics.reset ();
  let s = Obs.Metrics.snapshot () in
  check_bool "reset zeroes counters" true
    (Obs.Metrics.find_counter s "test.rt.count" = Some 0);
  obs_off ()

(* Satellite: concurrent increments across a Domain pool must merge to
   exactly the sequential total. *)
let test_metrics_merge_concurrent () =
  obs_off ();
  let c = Obs.Metrics.counter "test.merge.count" in
  let h = Obs.Metrics.histogram "test.merge.hist" in
  let tasks = List.init 64 (fun i -> i) in
  let work i =
    for k = 1 to 250 do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (1 + ((i + k) mod 1024))
    done
  in
  let capture run =
    Obs.Metrics.reset ();
    Obs.Metrics.enable ();
    run ();
    let s = Obs.Metrics.snapshot () in
    Obs.Metrics.disable ();
    ( Obs.Metrics.find_counter s "test.merge.count",
      Obs.Metrics.find_histogram s "test.merge.hist" )
  in
  let seq_c, seq_h = capture (fun () -> List.iter work tasks) in
  let par_c, par_h =
    capture (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            ignore (Parallel.Pool.map_exn pool work tasks)))
  in
  check_bool "counter: parallel = sequential" true (par_c = seq_c);
  check_bool "counter total" true (seq_c = Some (64 * 250));
  (match (seq_h, par_h) with
  | Some a, Some b ->
      check_int "hist count" a.Obs.Metrics.count b.Obs.Metrics.count;
      check_int "hist sum" a.Obs.Metrics.sum b.Obs.Metrics.sum;
      check_bool "hist buckets identical" true
        (a.Obs.Metrics.counts = b.Obs.Metrics.counts)
  | _ -> Alcotest.fail "histogram missing");
  obs_off ()

(* ------------------------------------------------------------------ *)
(* Differential: observability on vs off is guest-invisible            *)

let build items = Image.Gelf.build ~entry:"main" items

(* Everything a run can observe: registers, memory, cycles, the fault
   (if any) and every engine statistic. *)
let run_fingerprint config image =
  let eng = Core.Engine.create config image in
  let g = Core.Engine.run eng in
  let st = Core.Engine.stats eng in
  ( Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
    Memsys.Mem.dump (Core.Engine.memory eng),
    Core.Engine.cycles g,
    Core.Engine.trap g,
    ( st.Core.Engine.blocks_translated,
      st.Core.Engine.blocks_executed,
      st.Core.Engine.chained,
      st.Core.Engine.chain_hits,
      st.Core.Engine.jmp_cache_hits,
      st.Core.Engine.superblocks,
      st.Core.Engine.interp_fallbacks,
      st.Core.Engine.traps ) )

let differential name config image =
  obs_off ();
  let off = run_fingerprint config image in
  let on = with_obs_on (fun () -> run_fingerprint config image) in
  check_bool (name ^ ": obs on = obs off") true (off = on)

let countdown_items_n n =
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, Int64.of_int n));
    Label "loop";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RBX));
    Ins (I.Load (R.RCX, { I.base = None; index = None; disp = 0x5000L }));
    Ins (I.Alu (I.Add, R.RDX, I.R R.RCX));
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins I.Hlt;
  ]

let countdown_items = countdown_items_n 25

let fact_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RDI, 10L));
    Call_lbl "fact";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RAX));
    Ins I.Hlt;
    Label "fact";
    Ins (I.Mov_ri (R.RAX, 1L));
    Label "floop";
    Ins (I.Test (R.RDI, I.R R.RDI));
    Jcc_lbl (I.E, "fdone");
    Ins (I.Alu (I.Imul, R.RAX, I.R R.RDI));
    Ins (I.Dec R.RDI);
    Jmp_lbl "floop";
    Label "fdone";
    Ins I.Ret;
  ]

let example_programs =
  [ ("countdown", countdown_items); ("fact", fact_items) ]

let test_differential_examples () =
  List.iter
    (fun config ->
      List.iter
        (fun (pname, items) ->
          List.iter
            (fun (vname, config) ->
              differential
                (Printf.sprintf "%s/%s/%s" config.Core.Config.name pname vname)
                config (build items))
            [
              ("plain", config);
              ("unchained", { config with Core.Config.chain = false });
              ("traced", { config with Core.Config.trace_threshold = 3 });
            ])
        example_programs)
    Core.Config.all

let inject_corpus =
  [
    [ Core.Inject.Nth (Core.Inject.Compile, 1) ];
    [ Core.Inject.Always Core.Inject.Compile ];
    [ Core.Inject.Seeded
        { site = Core.Inject.Compile; seed = 42L; permille = 500 };
    ];
    [ Core.Inject.Nth (Core.Inject.Decode, 3) ];
    [ Core.Inject.Nth (Core.Inject.Host_call, 1) ];
  ]

let test_differential_fault_corpus () =
  List.iteri
    (fun i plan ->
      List.iter
        (fun (pname, items) ->
          let config =
            {
              Core.Config.risotto with
              Core.Config.inject = plan;
              trace_threshold = 3;
            }
          in
          differential
            (Printf.sprintf "inject%d/%s" i pname)
            config (build items))
        example_programs)
    inject_corpus

let test_differential_kernel_suite () =
  List.iter
    (fun (b : Harness.Parsec.bench) ->
      let spec = b.Harness.Parsec.spec in
      obs_off ();
      let run () =
        let g, eng = Harness.Kernel.run_dbt Core.Config.risotto spec in
        ( Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
          Memsys.Mem.dump (Core.Engine.memory eng),
          Core.Engine.cycles g,
          Core.Engine.trap g )
      in
      let off = run () in
      let on = with_obs_on run in
      check_bool
        (spec.Harness.Kernel.name ^ ": kernel obs on = off")
        true (off = on))
    Harness.Parsec.all

let test_differential_litmus_verdicts () =
  let model = Axiom.X86_tso.model in
  List.iter
    (fun (name, test) ->
      obs_off ();
      let off = Litmus.Enumerate.check model test in
      let on = with_obs_on (fun () -> Litmus.Enumerate.check model test) in
      check_bool (name ^ ": verdict obs on = off") true (off = on))
    Litmus.Catalog.x86_tests

(* >= 200 randomized guest programs: straight-line bodies with loops
   forced by padding past the block cap, chained + superblocked. *)
let arb_program =
  let open QCheck in
  let reg = map R.of_index (int_range 0 5) in
  let disp = map (fun k -> Int64.of_int (0x5000 + (8 * k))) (int_range 0 7) in
  let mem_op = map (fun disp -> { I.base = None; index = None; disp }) disp in
  let alu = oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor ] in
  let insn =
    oneof
      [
        map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair reg small_int);
        map (fun (r, m) -> I.Load (r, m)) (pair reg mem_op);
        map (fun (m, r) -> I.Store (m, I.R r)) (pair mem_op reg);
        map (fun (op, r, r2) -> I.Alu (op, r, I.R r2)) (triple alu reg reg);
        map (fun r -> I.Inc r) reg;
        map (fun r -> I.Dec r) reg;
        oneofl [ I.Mfence; I.Nop ];
      ]
  in
  set_print
    (fun items ->
      String.concat "\n"
        (List.filter_map
           (function Ins i -> Some (Fmt.str "%a" I.pp i) | _ -> None)
           items))
    (map
       (fun insns ->
         let pad = List.init 40 (fun _ -> I.Nop) in
         (Label "main" :: List.map (fun i -> Ins i) (insns @ pad))
         @ [ Ins I.Hlt ])
       (small_list insn))

let differential_prop =
  QCheck.Test.make ~name:"obs on = obs off on random programs" ~count:220
    arb_program (fun items ->
      let image = build items in
      let config =
        { Core.Config.risotto with Core.Config.trace_threshold = 3 }
      in
      obs_off ();
      let off = run_fingerprint config image in
      let on = with_obs_on (fun () -> run_fingerprint config image) in
      off = on)

(* ------------------------------------------------------------------ *)
(* Chain-generation invalidation: stale edges/jcache never followed    *)

let test_tbchain_generation_unit () =
  let t = Core.Tbchain.create ~chain:true () in
  let a = Core.Tbchain.insert t 0x1000L "A" in
  let b = Core.Tbchain.insert t 0x2000L "B" in
  check_bool "edge patched" true (Core.Tbchain.link t a ~epc:0x2000L b);
  check_bool "edge followed" true
    (match Core.Tbchain.follow a 0x2000L with
    | Some n -> n == b
    | None -> false);
  let jc = Core.Tbchain.jcache_create t in
  Core.Tbchain.jcache_store t jc a;
  check_bool "jcache hit" true
    (match Core.Tbchain.jcache_find t jc 0x1000L with
    | Some n -> n == a
    | None -> false);
  let gen0 = Core.Tbchain.generation t in
  Core.Tbchain.clear_links t;
  check_int "generation bumped" (gen0 + 1) (Core.Tbchain.generation t);
  check_int "edges dropped" 0 (Core.Tbchain.edge_count t);
  check_bool "patched edge no longer followed" true
    (Core.Tbchain.follow a 0x2000L = None);
  check_bool "stale jcache entry invisible" true
    (Core.Tbchain.jcache_find t jc 0x1000L = None);
  (* re-stored under the new generation, the cache works again *)
  Core.Tbchain.jcache_store t jc a;
  check_bool "fresh jcache entry hits" true
    (match Core.Tbchain.jcache_find t jc 0x1000L with
    | Some n -> n == a
    | None -> false);
  Core.Tbchain.flush t;
  check_int "flush empties the table" 0 (Core.Tbchain.length t);
  check_bool "jcache dead after flush" true
    (Core.Tbchain.jcache_find t jc 0x1000L = None)

(* A store from before the generation bump must be dropped, not
   resurrected by a later lookup in the new generation. *)
let test_tbchain_stale_store_dropped () =
  let t = Core.Tbchain.create ~chain:true () in
  let a = Core.Tbchain.insert t 0x1000L "A" in
  let jc = Core.Tbchain.jcache_create t in
  Core.Tbchain.jcache_store t jc a;
  Core.Tbchain.clear_links t;
  (* the node is still in the table (clear_links keeps bodies), but the
     pre-bump cache entry must not serve it *)
  check_bool "node survives clear_links" true
    (Core.Tbchain.find t 0x1000L <> None);
  check_bool "stale entry dropped" true
    (Core.Tbchain.jcache_find t jc 0x1000L = None)

(* Engine level: a thread whose dispatch state (pending chained target,
   jump cache) was captured before a mid-run [reset] must complete
   cleanly on retranslated code, with identical results. *)
let test_engine_reset_mid_run () =
  (* Long enough that a handful of dispatches — even superblock-covered
     ones spanning several unrolled iterations — leaves the thread
     mid-loop. *)
  let image = build (countdown_items_n 200) in
  let config =
    { Core.Config.risotto with Core.Config.trace_threshold = 3 }
  in
  let eng = Core.Engine.create config image in
  let g1 = Core.Engine.run eng in
  check_bool "warm run clean" true (g1.Core.Engine.trap = None);
  check_bool "edges live" true (Core.Engine.chained_edges eng > 0);
  let g2 = Core.Engine.spawn eng ~tid:1 ~entry:image.Image.Gelf.entry () in
  for _ = 1 to 5 do
    Core.Engine.step_block eng g2
  done;
  check_bool "mid-run" true (not g2.Core.Engine.finished);
  let gen0 = Core.Engine.chain_generation eng in
  let translated = (Core.Engine.stats eng).Core.Engine.blocks_translated in
  Core.Engine.reset eng;
  check_bool "generation bumped" true
    (Core.Engine.chain_generation eng > gen0);
  check_int "edges flushed" 0 (Core.Engine.chained_edges eng);
  (* the thread still holds pre-reset next_tb/jcache state: finishing it
     must ignore all of it and retranslate *)
  Core.Engine.run_thread eng g2;
  check_bool "completes after mid-run reset" true
    (g2.Core.Engine.trap = None && g2.Core.Engine.finished);
  check_i64 "same result as the uninterrupted run"
    (Core.Engine.reg g1 R.RDX) (Core.Engine.reg g2 R.RDX);
  check_bool "blocks retranslated" true
    ((Core.Engine.stats eng).Core.Engine.blocks_translated > translated)

(* Same shape across [load_cache]: the loaded translations replace the
   chained-against bodies, so pre-load dispatch state must die. *)
let test_engine_load_cache_mid_run () =
  let path = Filename.temp_file "risotto_obs" ".rstc" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let image = build (countdown_items_n 200) in
  let config =
    { Core.Config.risotto with Core.Config.trace_threshold = 3 }
  in
  let eng = Core.Engine.create config image in
  let g1 = Core.Engine.run eng in
  check_bool "warm run clean" true (g1.Core.Engine.trap = None);
  ignore (Core.Engine.save_cache eng path);
  let g2 = Core.Engine.spawn eng ~tid:1 ~entry:image.Image.Gelf.entry () in
  for _ = 1 to 5 do
    Core.Engine.step_block eng g2
  done;
  check_bool "mid-run" true (not g2.Core.Engine.finished);
  let gen0 = Core.Engine.chain_generation eng in
  (match Core.Engine.load_cache eng path with
  | Ok n -> check_bool "blocks loaded" true (n > 0)
  | Error f -> Alcotest.fail (Core.Fault.to_string f));
  check_int "generation bumped" (gen0 + 1)
    (Core.Engine.chain_generation eng);
  check_int "edges flushed" 0 (Core.Engine.chained_edges eng);
  Core.Engine.run_thread eng g2;
  check_bool "completes after mid-run reload" true
    (g2.Core.Engine.trap = None && g2.Core.Engine.finished);
  check_i64 "same result as the uninterrupted run"
    (Core.Engine.reg g1 R.RDX) (Core.Engine.reg g2 R.RDX)

(* ------------------------------------------------------------------ *)
(* stats_line: every counter reported unconditionally                  *)

let test_stats_line_reports_fallbacks () =
  let image = build fact_items in
  let eng = Core.Engine.create Core.Config.risotto image in
  let g = Core.Engine.run eng in
  let line = Core.Engine.stats_line eng g in
  check_bool "clean run still reports interp-fallbacks=0" true
    (contains line "interp-fallbacks=0");
  check_bool "clean run reports traps=0" true (contains line "traps=0");
  check_bool "cycles reported" true
    (contains line (Printf.sprintf "cycles=%d" (Core.Engine.cycles g)));
  let config =
    {
      Core.Config.risotto with
      Core.Config.inject = [ Core.Inject.Always Core.Inject.Compile ];
    }
  in
  let eng = Core.Engine.create config image in
  let g = Core.Engine.run eng in
  let st = Core.Engine.stats eng in
  check_bool "degraded run actually degraded" true
    (st.Core.Engine.interp_fallbacks > 0);
  check_bool "degraded count reported" true
    (contains (Core.Engine.stats_line eng g)
       (Printf.sprintf "interp-fallbacks=%d" st.Core.Engine.interp_fallbacks))

(* ------------------------------------------------------------------ *)
(* Profiling hooks: hot blocks and engine gauges                       *)

let test_hot_blocks_and_publish () =
  obs_off ();
  let image = build countdown_items in
  with_obs_on @@ fun () ->
  let eng = Core.Engine.create Core.Config.risotto image in
  let g = Core.Engine.run eng in
  check_bool "run clean" true (g.Core.Engine.trap = None);
  (match Core.Engine.hot_blocks ~limit:3 eng with
  | [] -> Alcotest.fail "no hot blocks ranked"
  | (top :: _ : Obs.Profile.entry list) as hot ->
      check_bool "at most limit entries" true (List.length hot <= 3);
      check_bool "cycles attributed while metrics on" true
        (top.Obs.Profile.cost > 0);
      (* the loop body dominates a 25-iteration countdown *)
      check_bool "ranking is descending" true
        (let scores = List.map Obs.Profile.score hot in
         List.sort (fun a b -> compare b a) scores = scores));
  Core.Engine.publish_metrics eng;
  let s = Obs.Metrics.snapshot () in
  let st = Core.Engine.stats eng in
  check_bool "stats mirrored to gauges" true
    (Obs.Metrics.find_gauge s "engine.stats.blocks_executed"
    = Some st.Core.Engine.blocks_executed);
  check_bool "translate latency histogram populated" true
    (match Obs.Metrics.find_histogram s "engine.translate.ns" with
    | Some h -> h.Obs.Metrics.count = st.Core.Engine.blocks_translated
    | None -> false);
  check_bool "optimizer pass timing populated" true
    (List.exists
       (fun (n, (h : Obs.Metrics.hist_snap)) ->
         String.length n > 4
         && String.sub n 0 4 = "opt."
         && h.Obs.Metrics.count > 0)
       s.Obs.Metrics.histograms)

let () =
  obs_off ();
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "disabled tracer is silent and lazy" `Quick
            test_trace_disabled_is_silent;
          Alcotest.test_case "spans, nesting, instants, ordering" `Quick
            test_trace_records_spans;
          Alcotest.test_case "span recorded when f raises" `Quick
            test_trace_span_survives_exception;
          Alcotest.test_case "ring wraps, drops counted" `Quick
            test_trace_ring_wraps;
          Alcotest.test_case "chrome trace JSON shape and escaping" `Quick
            test_trace_json_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "log2 bucketing" `Quick test_metrics_buckets;
          Alcotest.test_case "counter/gauge/histogram round trip" `Quick
            test_metrics_roundtrip;
          Alcotest.test_case "concurrent merge = sequential sum" `Quick
            test_metrics_merge_concurrent;
        ] );
      ( "differential",
        [
          Alcotest.test_case "examples: obs on = off (all configs)" `Quick
            test_differential_examples;
          Alcotest.test_case "fault corpus: obs on = off" `Quick
            test_differential_fault_corpus;
          Alcotest.test_case "kernel suite: obs on = off" `Quick
            test_differential_kernel_suite;
          Alcotest.test_case "litmus verdicts: obs on = off" `Quick
            test_differential_litmus_verdicts;
          QCheck_alcotest.to_alcotest differential_prop;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "tbchain generation (edges + jcache)" `Quick
            test_tbchain_generation_unit;
          Alcotest.test_case "stale jcache store dropped" `Quick
            test_tbchain_stale_store_dropped;
          Alcotest.test_case "reset mid-run: stale dispatch state dies" `Quick
            test_engine_reset_mid_run;
          Alcotest.test_case "load_cache mid-run: stale dispatch state dies"
            `Quick test_engine_load_cache_mid_run;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "stats_line reports every counter" `Quick
            test_stats_line_reports_fallbacks;
          Alcotest.test_case "hot blocks + published gauges" `Quick
            test_hot_blocks_and_publish;
        ] );
    ]
