(* The crash-safety layer: frontier-journal recovery (torn tails, bit
   flips, interrupt-anywhere resume parity), supervised execution
   (retry / quarantine / deadline), per-entry cache quarantine, the
   checksummed gelf container, and the inject-plan codec roundtrip. *)

module Fr = Parallel.Frontier
module Sup = Parallel.Supervise
module Inj = Core.Inject
module Sweep = Report.Sweep
module I = X86.Insn
module R = X86.Reg
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let tmp_path suffix =
  let p = Filename.temp_file "risotto_resilience" suffix in
  Sys.remove p;
  p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let with_tmp suffix f =
  let p = tmp_path suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists p then Sys.remove p)
    (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Frontier journal                                                    *)

let test_journal_roundtrip () =
  with_tmp ".jnl" @@ fun path ->
  let t, r0 = Fr.open_ path in
  check_int "fresh journal empty" 0 r0.Fr.valid;
  Fr.append t ~key:"a" ~value:"1";
  Fr.append t ~key:"b" ~value:"binary\x00\nvalue";
  Fr.append t ~key:"a" ~value:"2";
  Fr.close t;
  let r = Fr.recover_file path in
  check_int "all records recovered" 3 r.Fr.valid;
  check_int "no bytes dropped" 0 r.Fr.dropped_bytes;
  check_bool "append order with duplicates" true
    (r.Fr.entries = [ ("a", "1"); ("b", "binary\x00\nvalue"); ("a", "2") ])

let test_journal_truncated_tail () =
  with_tmp ".jnl" @@ fun path ->
  let t, _ = Fr.open_ path in
  Fr.append t ~key:"a" ~value:"1";
  Fr.append t ~key:"b" ~value:"2";
  Fr.close t;
  let s = read_file path in
  (* Cut into the last record's payload: the torn record must be
     dropped, the prefix kept, and the file truncated back. *)
  write_file path (String.sub s 0 (String.length s - 2));
  let t, r = Fr.open_ path in
  check_int "prefix recovered" 1 r.Fr.valid;
  check_bool "torn tail measured" true (r.Fr.dropped_bytes > 0);
  check_bool "only the intact record" true (r.Fr.entries = [ ("a", "1") ]);
  (* The journal must be appendable again after truncation. *)
  Fr.append t ~key:"c" ~value:"3";
  Fr.close t;
  let r = Fr.recover_file path in
  check_bool "append after recovery" true
    (r.Fr.entries = [ ("a", "1"); ("c", "3") ])

let test_journal_bitflip () =
  with_tmp ".jnl" @@ fun path ->
  let t, _ = Fr.open_ path in
  Fr.append t ~key:"a" ~value:"first";
  Fr.append t ~key:"b" ~value:"second";
  Fr.close t;
  let s = read_file path in
  (* Flip a bit inside the second record's payload: its CRC fails, the
     valid prefix ends at the first record. *)
  let b = Bytes.of_string s in
  let at = Bytes.length b - 3 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x40));
  write_file path (Bytes.to_string b);
  let r = Fr.recover_file path in
  check_int "prefix survives the flip" 1 r.Fr.valid;
  check_bool "flipped record dropped" true (r.Fr.entries = [ ("a", "first") ])

let test_journal_checkpoint () =
  with_tmp ".jnl" @@ fun path ->
  let t, _ = Fr.open_ path in
  Fr.append t ~key:"a" ~value:"stale";
  Fr.append t ~key:"b" ~value:"2";
  Fr.append t ~key:"a" ~value:"fresh";
  Fr.checkpoint t [ ("a", "stale"); ("b", "2"); ("a", "fresh") ];
  Fr.append t ~key:"c" ~value:"3";
  Fr.close t;
  let r = Fr.recover_file path in
  (* Duplicates compact last-wins, keys keep first-seen order, and the
     journal stays appendable after the atomic rewrite. *)
  check_bool "compacted last-wins + post-checkpoint append" true
    (r.Fr.entries = [ ("a", "fresh"); ("b", "2"); ("c", "3") ])

let test_journal_chaos_tear () =
  with_tmp ".jnl" @@ fun path ->
  let fired = ref false in
  let chaos () =
    if !fired then false
    else begin
      fired := true;
      true
    end
  in
  let t, _ = Fr.open_ ~chaos path in
  (match Fr.append t ~key:"a" ~value:"torn" with
  | () -> Alcotest.fail "append should tear"
  | exception Fr.Injected_fault _ -> ());
  Fr.close t;
  let r = Fr.recover_file path in
  check_int "torn record not recovered" 0 r.Fr.valid;
  check_bool "torn bytes on disk" true (r.Fr.dropped_bytes > 0)

(* QCheck: interrupt the journal after any record K, resume, and the
   recovered prefix is exactly the first K appends. *)
let qcheck_interrupt_resume =
  QCheck.Test.make ~count:30 ~name:"journal interrupted at K resumes exactly"
    QCheck.(pair (int_range 0 12) (small_list small_string))
    (fun (k, extra) ->
      let path = tmp_path ".jnl" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let records =
            List.mapi
              (fun i v -> (Printf.sprintf "k%d" i, v))
              (extra @ [ "last" ])
          in
          let t, _ = Fr.open_ path in
          List.iter (fun (k, v) -> Fr.append t ~key:k ~value:v) records;
          Fr.close t;
          (* "Crash" by keeping an arbitrary byte prefix that covers
             exactly the first [k] records plus part of the next. *)
          let s = read_file path in
          let keep =
            let full = Fr.recover_file path in
            ignore full;
            min (String.length s)
              (String.length s - (k mod (String.length s + 1)))
          in
          write_file path (String.sub s 0 keep);
          let r = Fr.recover_file path in
          (* Whatever the cut, the recovered entries must be a prefix of
             the appended records — never reordered, invented or
             duplicated. *)
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
            | _ :: _, [] -> false
          in
          is_prefix r.Fr.entries records))

(* ------------------------------------------------------------------ *)
(* Supervision                                                         *)

let test_supervise_default_transparent () =
  (match Sup.run Sup.default (fun () -> 41 + 1) with
  | Ok v -> check_int "plain result" 42 v
  | Error _ -> Alcotest.fail "default policy cannot fail a pure task");
  Sup.poll () (* unsupervised poll is a no-op *)

let test_supervise_retry_then_success () =
  let attempts = ref 0 in
  let policy = { Sup.default with retries = 3; backoff_s = 0. } in
  match
    Sup.run policy (fun () ->
        incr attempts;
        if !attempts < 3 then failwith "transient";
        "done")
  with
  | Ok v ->
      check_string "succeeded after retries" "done" v;
      check_int "two failures then success" 3 !attempts
  | Error _ -> Alcotest.fail "should succeed within the retry budget"

let test_supervise_quarantine () =
  let attempts = ref 0 in
  let policy = { Sup.default with retries = 2; backoff_s = 0. } in
  match
    Sup.run policy (fun () ->
        incr attempts;
        failwith "poison")
  with
  | Ok _ -> Alcotest.fail "poison task cannot succeed"
  | Error (Sup.Quarantined { attempts = a; last }) ->
      check_int "1 + retries attempts" 3 a;
      check_int "attempts counted" 3 !attempts;
      check_bool "fault preserved" true
        (match last.Parallel.Pool.exn with Failure _ -> true | _ -> false)
  | Error (Sup.Timed_out _) -> Alcotest.fail "no deadline was set"

let test_supervise_timeout () =
  let policy =
    { Sup.default with deadline_s = Some 1e-6; retries = 5; backoff_s = 0. }
  in
  match
    Sup.run policy (fun () ->
        (* Poll well past the 32-poll clock stride. *)
        for _ = 1 to 10_000 do
          Sup.poll ()
        done)
  with
  | Ok () -> Alcotest.fail "must hit the deadline"
  | Error (Sup.Timed_out { attempts; deadline_s }) ->
      (* Timeouts are terminal: deterministic work would just time out
         again, so the retry budget must not be spent. *)
      check_int "no retries burned on timeout" 1 attempts;
      check_bool "deadline reported" true (deadline_s = 1e-6)
  | Error (Sup.Quarantined _) -> Alcotest.fail "timeout must stay typed"

let test_supervise_injected_retried () =
  let n = ref 0 in
  let chaos () =
    incr n;
    !n = 1
  in
  let policy = { Sup.default with retries = 1; backoff_s = 0.; chaos = Some chaos } in
  match Sup.run policy (fun () -> "ok") with
  | Ok v -> check_string "transient injection retried" "ok" v
  | Error _ -> Alcotest.fail "one injection within one retry must recover"

(* ------------------------------------------------------------------ *)
(* Inject plan codec                                                   *)

let site_gen = QCheck.Gen.oneofl Inj.all_sites

let rule_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun s n -> Inj.Nth (s, n)) site_gen (int_range 1 1000);
        map (fun s -> Inj.Always s) site_gen;
        map3
          (fun site seed permille -> Inj.Seeded { site; seed; permille })
          site_gen
          (map Int64.of_int (int_range 0 1_000_000))
          (int_range 0 1000);
      ])

let plan_arb =
  QCheck.make
    ~print:(fun p -> Inj.plan_to_string p)
    QCheck.Gen.(list_size (int_range 0 8) rule_gen)

let qcheck_plan_roundtrip =
  QCheck.Test.make ~count:200 ~name:"inject plan pp/parse roundtrip" plan_arb
    (fun plan ->
      match Inj.plan_of_string (Inj.plan_to_string plan) with
      | Ok p -> p = plan
      | Error _ -> false)

let test_plan_permille_range () =
  (match Inj.plan_of_string "seeded:decode:7:1001" with
  | Ok _ -> Alcotest.fail "permille 1001 must be rejected"
  | Error msg ->
      check_bool "error names the permille" true
        (let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length msg
             && (String.sub msg i n = sub || go (i + 1))
           in
           go 0
         in
         has "permille" && has "1001"));
  match Inj.plan_of_string "seeded:decode:7:-1" with
  | Ok _ -> Alcotest.fail "negative permille must be rejected"
  | Error _ -> ()

let test_plan_site_spellings () =
  (* The parser accepts both '-' and '_' site spellings; the printer
     emits '-'. *)
  match Inj.plan_of_string "always:journal_write,nth:pool-task:2" with
  | Ok [ Inj.Always Inj.Journal_write; Inj.Nth (Inj.Pool_task, 2) ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Cache quarantine                                                    *)

let countdown_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, 5L));
    Label "loop";
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins (I.Mov_ri (R.R13, 77L));
    Ins I.Hlt;
  ]

let with_cache f =
  let image = Image.Gelf.build ~entry:"main" countdown_items in
  let eng = Core.Engine.create Core.Config.risotto image in
  ignore (Core.Engine.run eng);
  with_tmp ".tc" @@ fun path ->
  let saved = Core.Engine.save_cache eng path in
  f ~image ~path ~saved

let test_cache_entry_quarantine () =
  with_cache @@ fun ~image ~path ~saved ->
  check_bool "cache has entries" true (saved > 0);
  (* Flip one bit in the last entry's body: exactly that entry must be
     quarantined, the rest must load, and the rerun must be correct. *)
  let s = read_file path in
  let b = Bytes.of_string s in
  let at = Bytes.length b - 1 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
  write_file path (Bytes.to_string b);
  let eng = Core.Engine.create Core.Config.risotto image in
  (match Core.Engine.load_cache eng path with
  | Ok n -> check_int "one entry dropped" (saved - 1) n
  | Error f -> Alcotest.failf "load must survive: %s" (Core.Fault.to_string f));
  check_int "quarantine counted" 1
    (Core.Engine.stats eng).Core.Engine.cache_quarantined;
  let g = Core.Engine.run eng in
  check_bool "dropped block retranslated" true
    ((Core.Engine.stats eng).Core.Engine.blocks_translated > 0);
  Alcotest.check Alcotest.int64 "correct result after quarantine" 77L
    (Core.Engine.reg g R.R13)

let test_cache_verify () =
  with_cache @@ fun ~image:_ ~path ~saved ->
  (match Core.Engine.verify_cache path with
  | Ok (n, []) -> check_int "all entries verify" saved n
  | Ok (_, bad) ->
      Alcotest.failf "unexpected damage: %s" (String.concat "; " bad)
  | Error f -> Alcotest.failf "verify failed: %s" (Core.Fault.to_string f));
  let s = read_file path in
  let b = Bytes.of_string s in
  let at = Bytes.length b - 1 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
  write_file path (Bytes.to_string b);
  (match Core.Engine.verify_cache path with
  | Ok (n, bad) ->
      check_int "intact entries still verify" (saved - 1) n;
      check_int "one corrupt entry reported" 1 (List.length bad)
  | Error f -> Alcotest.failf "verify must survive: %s" (Core.Fault.to_string f));
  (* Structural damage (truncation) stays a whole-file error. *)
  write_file path (String.sub s 0 (String.length s - 3));
  match Core.Engine.verify_cache path with
  | Ok _ -> Alcotest.fail "truncation must reject the file"
  | Error _ -> ()

let test_cache_write_injection () =
  let image = Image.Gelf.build ~entry:"main" countdown_items in
  let config =
    {
      Core.Config.risotto with
      Core.Config.inject = [ Inj.Nth (Inj.Cache_write, 1) ];
    }
  in
  let eng = Core.Engine.create config image in
  ignore (Core.Engine.run eng);
  with_tmp ".tc" @@ fun path ->
  (match Core.Engine.save_cache eng path with
  | _ -> Alcotest.fail "first save must be injected"
  | exception Core.Fault.Fault f ->
      check_bool "typed cache fault" true (f.Core.Fault.kind = Core.Fault.Cache_corrupt));
  check_bool "no file under the real name" false (Sys.file_exists path);
  (* The injected crash sits between tmp write and rename: a retried
     save (rule spent) must land a fully valid file. *)
  let saved = Core.Engine.save_cache eng path in
  match Core.Engine.verify_cache path with
  | Ok (n, []) -> check_int "second save intact" saved n
  | _ -> Alcotest.fail "second save must verify"

(* ------------------------------------------------------------------ *)
(* Gelf container                                                      *)

let test_gelf_v2_roundtrip () =
  let image = Image.Gelf.build ~entry:"main" countdown_items in
  with_tmp ".gelf" @@ fun path ->
  Image.Gelf.save image path;
  check_bool "verify accepts" true (Image.Gelf.verify_file path = Ok ());
  let loaded = Image.Gelf.load path in
  check_bool "roundtrip" true (loaded = image)

let test_gelf_v2_corrupt () =
  let image = Image.Gelf.build ~entry:"main" countdown_items in
  with_tmp ".gelf" @@ fun path ->
  Image.Gelf.save image path;
  let s = read_file path in
  let b = Bytes.of_string s in
  let at = Bytes.length b / 2 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x10));
  write_file path (Bytes.to_string b);
  (match Image.Gelf.verify_file path with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "flipped bit must fail verification");
  match Image.Gelf.load path with
  | _ -> Alcotest.fail "load must reject a corrupt image"
  | exception Image.Gelf.Bad_image _ -> ()

let test_gelf_v1_legacy_load () =
  let image = Image.Gelf.build ~entry:"main" countdown_items in
  with_tmp ".gelf" @@ fun path ->
  Image.Gelf.save image path;
  let s = read_file path in
  (* Rewrite as a v1 file: v1 magic, no checksum field. *)
  let body = String.sub s 14 (String.length s - 14) in
  write_file path ("GELF1\n" ^ body);
  let loaded = Image.Gelf.load path in
  check_bool "legacy image still loads" true (loaded = image)

let test_gelf_on_commit_crash () =
  let image = Image.Gelf.build ~entry:"main" countdown_items in
  with_tmp ".gelf" @@ fun path ->
  Image.Gelf.save image path;
  let before = read_file path in
  (* A crash between tmp write and rename must leave the previous image
     untouched. *)
  (match
     Image.Gelf.save
       ~on_commit:(fun () -> failwith "injected crash")
       image path
   with
  | () -> Alcotest.fail "on_commit must propagate"
  | exception Failure _ -> ());
  check_bool "previous image intact" true (read_file path = before)

(* ------------------------------------------------------------------ *)
(* Journaled sweep: opt-in parity and resume                           *)

let small_entries () =
  List.filter
    (fun (e : Sweep.entry) -> e.Sweep.scheme = "transform-raw")
    (Sweep.default_entries ())

let cell_sig (c : Sweep.cell) =
  ( c.Sweep.scheme,
    c.Sweep.program,
    c.Sweep.report.Mapping.Check.ok,
    c.Sweep.report.Mapping.Check.src_behaviours,
    c.Sweep.report.Mapping.Check.tgt_behaviours,
    c.Sweep.report.Mapping.Check.extra,
    List.length c.Sweep.witnesses )

let test_journaled_parity_and_resume () =
  let entries = small_entries () in
  let plain = Sweep.run ~capture:true entries in
  with_tmp ".jnl" @@ fun journal ->
  let r1 = Sweep.run_journaled ~capture:true ~journal entries in
  check_int "all computed" (List.length plain) r1.Sweep.computed;
  check_int "nothing replayed" 0 r1.Sweep.replayed;
  check_bool "journaled == plain (opt-in parity)" true
    (List.map cell_sig r1.Sweep.cells = List.map cell_sig plain);
  let r2 = Sweep.run_journaled ~capture:true ~journal entries in
  check_int "all replayed" (List.length plain) r2.Sweep.replayed;
  check_int "nothing recomputed" 0 r2.Sweep.computed;
  check_bool "resume == plain (verdicts, extras, witnesses)" true
    (List.map cell_sig r2.Sweep.cells = List.map cell_sig plain)

let test_journaled_coverage_replay () =
  let entries = small_entries () in
  let cov_plain = Report.Coverage.create () in
  ignore (Sweep.run ~coverage:cov_plain entries);
  with_tmp ".jnl" @@ fun journal ->
  let cov1 = Report.Coverage.create () in
  ignore (Sweep.run_journaled ~coverage:cov1 ~journal entries);
  let cov2 = Report.Coverage.create () in
  ignore (Sweep.run_journaled ~coverage:cov2 ~journal entries);
  let strip = List.map (fun (k, n) -> (k, n)) in
  check_bool "journaled coverage == plain" true
    (strip (Report.Coverage.counts cov1)
    = strip (Report.Coverage.counts cov_plain));
  check_bool "replayed coverage == plain (exactly once)" true
    (strip (Report.Coverage.counts cov2)
    = strip (Report.Coverage.counts cov_plain))

let () =
  Alcotest.run "resilience"
    [
      ( "journal",
        [
          Alcotest.test_case "append/recover roundtrip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "truncated tail recovery" `Quick
            test_journal_truncated_tail;
          Alcotest.test_case "bit flip drops only the tail" `Quick
            test_journal_bitflip;
          Alcotest.test_case "checkpoint compacts last-wins" `Quick
            test_journal_checkpoint;
          Alcotest.test_case "chaos tear is recoverable" `Quick
            test_journal_chaos_tear;
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_interrupt_resume;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "default policy is transparent" `Quick
            test_supervise_default_transparent;
          Alcotest.test_case "transient fault retried" `Quick
            test_supervise_retry_then_success;
          Alcotest.test_case "poison task quarantined" `Quick
            test_supervise_quarantine;
          Alcotest.test_case "deadline fires as typed timeout" `Quick
            test_supervise_timeout;
          Alcotest.test_case "injected fault retried" `Quick
            test_supervise_injected_retried;
        ] );
      ( "inject",
        [
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_plan_roundtrip;
          Alcotest.test_case "permille range rejected with message" `Quick
            test_plan_permille_range;
          Alcotest.test_case "site spelling variants" `Quick
            test_plan_site_spellings;
        ] );
      ( "cache",
        [
          Alcotest.test_case "bit flip quarantines one entry" `Quick
            test_cache_entry_quarantine;
          Alcotest.test_case "verify_cache reports damage" `Quick
            test_cache_verify;
          Alcotest.test_case "cache-write injection pre-rename" `Quick
            test_cache_write_injection;
        ] );
      ( "gelf",
        [
          Alcotest.test_case "v2 roundtrip + verify" `Quick
            test_gelf_v2_roundtrip;
          Alcotest.test_case "v2 rejects corruption" `Quick
            test_gelf_v2_corrupt;
          Alcotest.test_case "v1 legacy load" `Quick test_gelf_v1_legacy_load;
          Alcotest.test_case "crash before rename keeps previous" `Quick
            test_gelf_on_commit_crash;
        ] );
      ( "journaled sweep",
        [
          Alcotest.test_case "opt-in parity and byte-level resume" `Quick
            test_journaled_parity_and_resume;
          Alcotest.test_case "coverage replays exactly once" `Quick
            test_journaled_coverage_replay;
        ] );
    ]
