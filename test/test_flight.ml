(* The always-on flight recorder and its trap postmortems: ring
   mechanics, differential parity (recording must be behaviour-
   invisible on example programs, under fault injection, and over
   QCheck-generated programs), byte-deterministic postmortem JSON, and
   the fence-provenance ledger the postmortem embeds. *)

module I = X86.Insn
module R = X86.Reg
module Fl = Obs.Flight
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let build items = Image.Gelf.build ~entry:"main" items

(* Guest-visible state: registers RAX..R15 plus memory. *)
let state g eng =
  ( Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
    Memsys.Mem.dump (Core.Engine.memory eng) )

let countdown_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, 25L));
    Label "loop";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RBX));
    Ins (I.Load (R.RCX, { I.base = None; index = None; disp = 0x5000L }));
    Ins (I.Alu (I.Add, R.RDX, I.R R.RCX));
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins I.Hlt;
  ]

let fact_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RDI, 10L));
    Call_lbl "fact";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RAX));
    Ins I.Hlt;
    Label "fact";
    Ins (I.Mov_ri (R.RAX, 1L));
    Label "floop";
    Ins (I.Test (R.RDI, I.R R.RDI));
    Jcc_lbl (I.E, "fdone");
    Ins (I.Alu (I.Imul, R.RAX, I.R R.RDI));
    Ins (I.Dec R.RDI);
    Jmp_lbl "floop";
    Label "fdone";
    Ins I.Ret;
  ]

let example_programs =
  [ ("countdown", countdown_items); ("fact", fact_items) ]

(* Restore the global recording switch no matter how a test exits:
   every other suite in this binary assumes the production default. *)
let with_flight_off f =
  Fl.disable ();
  Fun.protect ~finally:(fun () -> Fl.enable ()) f

(* ------------------------------------------------------------------ *)
(* Ring mechanics                                                      *)

let test_ring_basics () =
  let r = Fl.create ~capacity:10 () in
  check_int "capacity rounds up to a power of two" 16 (Fl.capacity r);
  for i = 0 to 4 do
    Fl.record r Fl.Block_enter (Int64.of_int i) i
  done;
  check_int "recorded counts everything" 5 (Fl.recorded r);
  let evs = Fl.events r in
  check_int "all retained below capacity" 5 (List.length evs);
  check_bool "oldest first" true
    (List.map (fun (e : Fl.event) -> e.Fl.pc) evs
    = [ 0L; 1L; 2L; 3L; 4L ]);
  check_bool "sequence numbers dense from zero" true
    (List.map (fun (e : Fl.event) -> e.Fl.seq) evs = [ 0; 1; 2; 3; 4 ])

let test_ring_overwrites () =
  let r = Fl.create ~capacity:16 () in
  for i = 0 to 39 do
    Fl.record r Fl.Tier_published (Int64.of_int i) i
  done;
  check_int "recorded counts beyond capacity" 40 (Fl.recorded r);
  let evs = Fl.events r in
  check_int "ring keeps only the last capacity events" 16 (List.length evs);
  check_bool "oldest retained is recorded - capacity" true
    (match evs with e :: _ -> e.Fl.seq = 24 | [] -> false);
  check_bool "newest retained is the last record" true
    (match List.rev evs with e :: _ -> e.Fl.seq = 39 | [] -> false);
  let last4 = Fl.last ~n:4 r in
  check_bool "last ~n trims from the old end" true
    (List.map (fun (e : Fl.event) -> e.Fl.seq) last4 = [ 36; 37; 38; 39 ]);
  Fl.reset r;
  check_int "reset empties the ring" 0 (List.length (Fl.events r))

let test_ring_gated_by_global_switch () =
  let r = Fl.create () in
  with_flight_off (fun () ->
      Fl.record r Fl.Trap 0x1000L 0;
      check_int "disabled record is a no-op" 0 (Fl.recorded r));
  Fl.record r Fl.Trap 0x1000L 0;
  check_int "re-enabled record lands" 1 (Fl.recorded r)

(* ------------------------------------------------------------------ *)
(* Differential parity: recording is behaviour-invisible               *)

let run_with_flight enabled config image =
  let go () =
    let eng = Core.Engine.create config image in
    let g = Core.Engine.run eng in
    Core.Engine.drain_installs eng;
    (state g eng, Option.is_some (Core.Engine.trap g))
  in
  if enabled then go () else with_flight_off go

let test_parity_examples () =
  List.iter
    (fun config ->
      List.iter
        (fun (pname, items) ->
          let image = build items in
          let on_ = run_with_flight true config image in
          let off = run_with_flight false config image in
          check_bool
            (Printf.sprintf "%s/%s recorder parity" config.Core.Config.name
               pname)
            true (on_ = off))
        example_programs)
    [ Core.Config.qemu; Core.Config.risotto ]

let inject_corpus =
  [
    [ Core.Inject.Nth (Core.Inject.Compile, 1) ];
    [ Core.Inject.Always Core.Inject.Compile ];
    [
      Core.Inject.Seeded
        { site = Core.Inject.Compile; seed = 42L; permille = 500 };
    ];
    [ Core.Inject.Nth (Core.Inject.Decode, 3) ];
    [ Core.Inject.Always Core.Inject.Decode ];
  ]

let test_parity_under_injection () =
  List.iter
    (fun plan ->
      let config = { Core.Config.risotto with Core.Config.inject = plan } in
      List.iter
        (fun (pname, items) ->
          let image = build items in
          let on_ = run_with_flight true config image in
          let off = run_with_flight false config image in
          check_bool
            (Printf.sprintf "%s under injection: recorder parity" pname)
            true (on_ = off))
        example_programs)
    inject_corpus

(* Random straight-line bodies inside a counted loop (the test_tiers
   shape): every block is executed repeatedly, so the recorder sees
   block-enter traffic on the hot path it claims not to perturb. *)
let arb_looped_body =
  let open QCheck in
  let reg = map R.of_index (int_range 0 3) in
  let disp = map (fun k -> Int64.of_int (0x5000 + (8 * k))) (int_range 0 7) in
  let mem_op = map (fun disp -> { I.base = None; index = None; disp }) disp in
  let alu = oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor ] in
  let insn =
    oneof
      [
        map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair reg small_int);
        map (fun (r, m) -> I.Load (r, m)) (pair reg mem_op);
        map (fun (m, r) -> I.Store (m, I.R r)) (pair mem_op reg);
        map (fun (op, r, r2) -> I.Alu (op, r, I.R r2)) (triple alu reg reg);
        oneofl [ I.Mfence; I.Nop ];
      ]
  in
  set_print
    (fun (n, items) ->
      Printf.sprintf "iters=%d\n%s" n
        (String.concat "\n"
           (List.filter_map
              (function Ins i -> Some (Fmt.str "%a" I.pp i) | _ -> None)
              items)))
    (map
       (fun (iters, insns) ->
         let body = List.map (fun i -> Ins i) insns in
         ( iters,
           [
             Label "main";
             Ins (I.Mov_ri (R.R15, Int64.of_int iters));
             Label "loop";
           ]
           @ body
           @ [
               Ins (I.Alu (I.Sub, R.R15, I.I 1L));
               Ins (I.Cmp (R.R15, I.I 0L));
               Jcc_lbl (I.Ne, "loop");
               Ins I.Hlt;
             ] ))
       (pair (int_range 4 12) (small_list insn)))

let flight_differential_prop =
  QCheck.Test.make ~name:"recorder on = recorder off (looped programs)"
    ~count:200 arb_looped_body (fun (_, items) ->
      let image = build items in
      List.for_all
        (fun config ->
          run_with_flight true config image
          = run_with_flight false config image)
        [ Core.Config.qemu; Core.Config.risotto ])

(* ------------------------------------------------------------------ *)
(* Postmortems                                                         *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn > 0 && go 0

let trap_config =
  {
    Core.Config.risotto with
    Core.Config.inject = [ Core.Inject.Always Core.Inject.Decode ];
  }

let postmortem_string () =
  let eng = Core.Engine.create trap_config (build countdown_items) in
  let g = Core.Engine.run eng in
  check_bool "injected decode fault traps" true
    (Core.Engine.trap g <> None);
  Report.Json.to_string (Core.Engine.postmortem_json eng ~reason:"test")

let test_postmortem_deterministic () =
  let a = postmortem_string () in
  let b = postmortem_string () in
  check_bool "two identical runs, byte-identical postmortems" true (a = b);
  check_bool "schema stamped" true
    (contains a {|"schema":"risotto.postmortem.v1"|});
  check_bool "trapping thread's ring includes the trap event" true
    (contains a {|"kind":"trap"|});
  check_bool "fence ledgers embedded" true (contains a {|"fence_ledgers"|})

let test_postmortem_deterministic_with_metrics () =
  (* Wall-clock histograms and .ns/.us gauges are excluded from the
     dump, so even a metrics-on postmortem is byte-stable (after a
     registry reset, since counters are process-cumulative). *)
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.disable ())
    (fun () ->
      Obs.Metrics.reset ();
      let a = postmortem_string () in
      Obs.Metrics.reset ();
      let b = postmortem_string () in
      check_bool "metrics-on postmortems byte-identical" true (a = b);
      check_bool "metrics slice present" true (contains a {|"counters"|});
      check_bool "wall-clock histograms excluded" true
        (not (contains a "request_to_publish")))

let test_postmortem_dumped_on_trap () =
  let dir = Filename.temp_file "risotto_flight" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      let eng = Core.Engine.create trap_config (build countdown_items) in
      Core.Engine.set_postmortem_dir eng (Some dir);
      let _ = Core.Engine.run eng in
      check_int "one postmortem written" 1
        (Core.Engine.postmortems_written eng);
      let path = Filename.concat dir "postmortem-000.json" in
      check_bool "artifact exists" true (Sys.file_exists path);
      let ic = open_in_bin path in
      let body =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_bool "artifact carries the trap reason" true
        (contains body {|"reason":"trap:|}))

let test_watchdog_dumps_postmortem () =
  let dir = Filename.temp_file "risotto_flight" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      let image = build [ Label "main"; Jmp_lbl "main" ] in
      let eng = Core.Engine.create Core.Config.risotto image in
      Core.Engine.set_postmortem_dir eng (Some dir);
      let g = Core.Engine.spawn eng ~tid:0 ~entry:image.Image.Gelf.entry () in
      (match Core.Engine.run_concurrent ~max_blocks:10 eng [ g ] with
      | Core.Engine.Exhausted _ -> ()
      | Core.Engine.Completed _ -> Alcotest.fail "spin loop cannot complete");
      check_int "exhaustion dumped a postmortem" 1
        (Core.Engine.postmortems_written eng);
      check_bool "watchdog event recorded in the thread ring" true
        (List.exists
           (fun (e : Fl.event) -> e.Fl.kind = Fl.Watchdog)
           (Fl.events (Core.Engine.thread_flight g))))

(* ------------------------------------------------------------------ *)
(* Fence provenance                                                    *)

let test_fence_ledger_records_merges () =
  (* Back-to-back MFENCEs: the frontend emits two F_sc fences with
     mfence origins; Fence_merge keeps one and absorbs the other. *)
  let items =
    [
      Label "main";
      Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.I 1L));
      Ins I.Mfence;
      Ins I.Mfence;
      Ins (I.Load (R.RAX, { I.base = None; index = None; disp = 0x5000L }));
      Ins I.Hlt;
    ]
  in
  let eng = Core.Engine.create Core.Config.risotto (build items) in
  let _ = Core.Engine.run eng in
  let ledgers = Core.Engine.fence_ledgers eng in
  check_bool "at least one block translated with a ledger" true
    (ledgers <> []);
  let total name =
    List.fold_left
      (fun acc (_, l) -> acc + Tcg.Fence_ledger.count l name)
      0 ledgers
  in
  check_bool "fences emitted" true (total "emitted" >= 2);
  check_bool "a fence was merged away" true (total "merged" >= 1);
  check_bool "survivors are kept" true (total "kept" >= 1);
  (* Provenance survives into the entries: the absorbed fence names the
     mfence origin it came from. *)
  let merged_entries =
    List.concat_map
      (fun (_, l) ->
        List.filter
          (fun (e : Tcg.Fence_ledger.entry) ->
            match e.Tcg.Fence_ledger.outcome with
            | Tcg.Fence_ledger.Merged _ -> true
            | _ -> false)
          (Tcg.Fence_ledger.entries l))
      ledgers
  in
  check_bool "merged entry carries its guest origin" true
    (List.exists
       (fun (e : Tcg.Fence_ledger.entry) ->
         e.Tcg.Fence_ledger.origin.Tcg.Op.rule = Tcg.Op.R_mfence)
       merged_entries)

let test_fence_metrics_counters () =
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.disable ())
    (fun () ->
      Obs.Metrics.reset ();
      let items =
        [
          Label "main";
          Ins I.Mfence;
          Ins I.Mfence;
          Ins (I.Mov_ri (R.R13, 1L));
          Ins I.Hlt;
        ]
      in
      let eng = Core.Engine.create Core.Config.risotto (build items) in
      let _ = Core.Engine.run eng in
      let snap = Obs.Metrics.snapshot () in
      let fences = Obs.Metrics.counters_with_prefix snap "fence." in
      check_bool "fence.* counters populated" true (fences <> []);
      let total suffix =
        List.fold_left
          (fun acc (name, v) ->
            if Filename.check_suffix name suffix then acc + v else acc)
          0 fences
      in
      check_bool "emitted counted" true (total ".emitted" >= 2);
      check_bool "merged counted" true (total ".merged" >= 1))

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basics;
          Alcotest.test_case "overwrite and last" `Quick test_ring_overwrites;
          Alcotest.test_case "global switch gates records" `Quick
            test_ring_gated_by_global_switch;
        ] );
      ( "parity",
        [
          Alcotest.test_case "examples" `Quick test_parity_examples;
          Alcotest.test_case "fault corpus" `Quick
            test_parity_under_injection;
          QCheck_alcotest.to_alcotest flight_differential_prop;
        ] );
      ( "postmortem",
        [
          Alcotest.test_case "byte-deterministic" `Quick
            test_postmortem_deterministic;
          Alcotest.test_case "byte-deterministic with metrics" `Quick
            test_postmortem_deterministic_with_metrics;
          Alcotest.test_case "dumped on trap" `Quick
            test_postmortem_dumped_on_trap;
          Alcotest.test_case "dumped on watchdog exhaustion" `Quick
            test_watchdog_dumps_postmortem;
        ] );
      ( "fence provenance",
        [
          Alcotest.test_case "ledger records merges" `Quick
            test_fence_ledger_records_merges;
          Alcotest.test_case "metrics counters" `Quick
            test_fence_metrics_counters;
        ] );
    ]
