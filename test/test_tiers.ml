(* The tier ladder: interp-first execution (tier 0), threshold-triggered
   baseline compiles — inline or on a background domain — (tier 1), and
   profile-guided superblock promotion with deoptimization (tier 2).
   The core claim mirrors test_dispatch: none of it is observable in
   guest results.  Tier0-only, fully synchronous, tiered-sync and
   tiered-async runs are state-identical on example programs, on
   QCheck-generated looped programs, and under fault injection — while
   the stats prove each tier actually engaged, and reset / load_cache
   discard queued installs and retrain from scratch. *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_i64 = Alcotest.check Alcotest.int64
let check_bool = Alcotest.check Alcotest.bool

let build items = Image.Gelf.build ~entry:"main" items

(* Guest-visible state: registers RAX..R15 plus memory. *)
let state g eng =
  ( Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
    Memsys.Mem.dump (Core.Engine.memory eng) )

(* The four rungs under comparison.  [tier0-only] never reaches the
   threshold, so every block stays on the interpreter; [sync-all] is
   the pre-ladder configuration (immediate backend compile, static
   trace trigger); the tiered variants climb the full ladder, inline
   or through the background service. *)
let tier_variants config =
  [
    ( "tier0-only",
      {
        config with
        Core.Config.jit_threshold = max_int;
        trace_threshold = 0;
      } );
    ("sync-all", { config with Core.Config.trace_threshold = 3 });
    ( "tiered-sync",
      {
        config with
        Core.Config.jit_threshold = 2;
        trace_threshold = 4;
        sync_compile = true;
      } );
    ( "tiered-async",
      {
        config with
        Core.Config.jit_threshold = 2;
        trace_threshold = 4;
        sync_compile = false;
      } );
  ]

let run_config config image =
  let eng = Core.Engine.create config image in
  let g = Core.Engine.run eng in
  (* Settle background installs before reading any stats; a no-op for
     the synchronous variants. *)
  Core.Engine.drain_installs eng;
  (g, eng)

(* ------------------------------------------------------------------ *)
(* Example programs (shared shapes with test_dispatch)                 *)

let countdown_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, 25L));
    Label "loop";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RBX));
    Ins (I.Load (R.RCX, { I.base = None; index = None; disp = 0x5000L }));
    Ins (I.Alu (I.Add, R.RDX, I.R R.RCX));
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins I.Hlt;
  ]

let fact_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RDI, 10L));
    Call_lbl "fact";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RAX));
    Ins I.Hlt;
    Label "fact";
    Ins (I.Mov_ri (R.RAX, 1L));
    Label "floop";
    Ins (I.Test (R.RDI, I.R R.RDI));
    Jcc_lbl (I.E, "fdone");
    Ins (I.Alu (I.Imul, R.RAX, I.R R.RDI));
    Ins (I.Dec R.RDI);
    Jmp_lbl "floop";
    Label "fdone";
    Ins I.Ret;
  ]

(* A loop whose body overflows the block cap: the hot path spans a
   straight-line seam, so tier-2 promotion stitches across it. *)
let split_items =
  let body =
    List.concat_map
      (fun k ->
        let m =
          { I.base = None; index = None; disp = Int64.of_int (0x6000 + (8 * k)) }
        in
        [
          Ins (I.Store (m, I.R R.RSI));
          Ins (I.Load (R.RDI, m));
          Ins (I.Alu (I.Add, R.RSI, I.R R.RDI));
        ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
  in
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, 20L));
    Ins (I.Mov_ri (R.RSI, 7L));
    Label "loop";
  ]
  @ body
  @ [
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]

let example_programs =
  [ ("countdown", countdown_items); ("fact", fact_items); ("split", split_items) ]

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)

let test_tier_parity_examples () =
  List.iter
    (fun config ->
      List.iter
        (fun (pname, items) ->
          let image = build items in
          let reference = ref None in
          List.iter
            (fun (vname, config) ->
              let g, eng = run_config config image in
              check_bool
                (Printf.sprintf "%s/%s/%s no trap" config.Core.Config.name
                   pname vname)
                true
                (g.Core.Engine.trap = None);
              let s = state g eng in
              match !reference with
              | None -> reference := Some s
              | Some r ->
                  check_bool
                    (Printf.sprintf "%s/%s/%s state" config.Core.Config.name
                       pname vname)
                    true (s = r))
            (tier_variants config))
        example_programs)
    Core.Config.all

let inject_corpus =
  [
    [ Core.Inject.Nth (Core.Inject.Compile, 1) ];
    [ Core.Inject.Always Core.Inject.Compile ];
    [ Core.Inject.Seeded { site = Core.Inject.Compile; seed = 42L; permille = 500 } ];
    [ Core.Inject.Nth (Core.Inject.Decode, 3) ];
  ]

let test_tier_parity_under_injection () =
  (* Compile faults demote to the interpreter (Degraded) with unchanged
     semantics, at enqueue-determined sites even for background
     compiles; decode faults fire identically at translation.  Guest
     state and trap presence must match across the whole ladder. *)
  List.iter
    (fun plan ->
      List.iter
        (fun (pname, items) ->
          let image = build items in
          let reference = ref None in
          List.iter
            (fun (vname, config) ->
              let config = { config with Core.Config.inject = plan } in
              let g, eng = run_config config image in
              let s = (state g eng, Option.is_some (Core.Engine.trap g)) in
              match !reference with
              | None -> reference := Some s
              | Some r ->
                  check_bool
                    (Printf.sprintf "%s/%s parity under injection" pname vname)
                    true (s = r))
            (tier_variants Core.Config.risotto))
        example_programs)
    inject_corpus

(* QCheck: random straight-line bodies inside a counted loop, so every
   block crosses the tier-1 threshold and trains a branch profile. *)
let arb_looped_body =
  let open QCheck in
  let reg = map R.of_index (int_range 0 3) in
  let disp = map (fun k -> Int64.of_int (0x5000 + (8 * k))) (int_range 0 7) in
  let mem_op = map (fun disp -> { I.base = None; index = None; disp }) disp in
  let alu = oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor ] in
  let insn =
    oneof
      [
        map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair reg small_int);
        map (fun (r, m) -> I.Load (r, m)) (pair reg mem_op);
        map (fun (m, r) -> I.Store (m, I.R r)) (pair mem_op reg);
        map (fun (op, r, r2) -> I.Alu (op, r, I.R r2)) (triple alu reg reg);
        map (fun r -> I.Inc r) reg;
        map (fun r -> I.Dec r) reg;
        oneofl [ I.Mfence; I.Nop ];
      ]
  in
  set_print
    (fun (n, items) ->
      Printf.sprintf "iters=%d\n%s" n
        (String.concat "\n"
           (List.filter_map
              (function Ins i -> Some (Fmt.str "%a" I.pp i) | _ -> None)
              items)))
    (map
       (fun (iters, insns) ->
         let body = List.map (fun i -> Ins i) insns in
         ( iters,
           [ Label "main"; Ins (I.Mov_ri (R.R15, Int64.of_int iters)); Label "loop" ]
           @ body
           @ [
               Ins (I.Alu (I.Sub, R.R15, I.I 1L));
               Ins (I.Cmp (R.R15, I.I 0L));
               Jcc_lbl (I.Ne, "loop");
               Ins I.Hlt;
             ] ))
       (pair (int_range 4 12) (small_list insn)))

let tier_differential_prop =
  QCheck.Test.make ~name:"tier ladder = tier0-only (looped programs)"
    ~count:200 arb_looped_body (fun (_, items) ->
      List.for_all
        (fun config ->
          let image = build items in
          let states =
            List.map
              (fun (_, config) ->
                let g, eng = run_config config image in
                (state g eng, Option.is_some (Core.Engine.trap g)))
              (tier_variants config)
          in
          match states with
          | [] -> false
          | r :: rest -> List.for_all (fun s -> s = r) rest)
        [ Core.Config.qemu; Core.Config.risotto ])

(* ------------------------------------------------------------------ *)
(* Engagement: every tier visibly fires and is reported                *)

let test_tiers_engage_sync () =
  let image = build countdown_items in
  let config =
    {
      Core.Config.risotto with
      Core.Config.jit_threshold = 2;
      trace_threshold = 4;
    }
  in
  let g, eng = run_config config image in
  let st = Core.Engine.stats eng in
  check_bool "no trap" true (g.Core.Engine.trap = None);
  check_bool "tier-0 interp execs" true (st.Core.Engine.interp_execs > 0);
  check_bool "tier-1 installs" true (st.Core.Engine.tier1_installed >= 1);
  check_bool "tier-2 superblocks" true (st.Core.Engine.superblocks >= 1);
  check_int "nothing dropped" 0 st.Core.Engine.installs_dropped;
  let contains line needle =
    let n = String.length needle and l = String.length line in
    let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  let line = Core.Engine.stats_line eng g in
  check_bool "stats line reports tiers" true
    (List.for_all (contains line)
       [ "interp-execs="; "tier1-installed="; "deopts=" ]);
  (* The install-queue fields are zero-suppressed: present exactly when
     the corresponding counter is non-zero.  This run dropped nothing
     (checked above), so installs-dropped must be absent, not "=0". *)
  check_bool "installs-dropped suppressed at zero" false
    (contains line "installs-dropped=");
  check_bool "install-hwm tracks its counter" true
    (contains line "install-hwm=" = (st.Core.Engine.install_hwm > 0))

let test_tiers_engage_async () =
  (* Drive the loop manually, draining the background service between
     dispatches: install timing becomes deterministic, so the block is
     published mid-run, retrains its branch profile and promotes to a
     superblock — all off the background domain. *)
  let image = build countdown_items in
  let config =
    {
      Core.Config.risotto with
      Core.Config.jit_threshold = 2;
      trace_threshold = 6;
      sync_compile = false;
    }
  in
  let svc = Parallel.Pool.service_create ~workers:1 () in
  let eng = Core.Engine.create ~install_service:svc config image in
  let th =
    Core.Engine.spawn eng ~tid:0 ~entry:image.Image.Gelf.entry ()
  in
  let steps = ref 0 in
  while (not th.Core.Engine.finished) && !steps < 2000 do
    Core.Engine.step_block eng th;
    Core.Engine.drain_installs eng;
    incr steps
  done;
  check_bool "finished" true th.Core.Engine.finished;
  check_bool "no trap" true (th.Core.Engine.trap = None);
  let st = Core.Engine.stats eng in
  check_bool "tier-0 interp execs" true (st.Core.Engine.interp_execs > 0);
  check_bool "tier-1 installs (async)" true (st.Core.Engine.tier1_installed >= 1);
  check_bool "tier-2 superblocks (async)" true (st.Core.Engine.superblocks >= 1);
  check_bool "queue high-water tracked" true (st.Core.Engine.install_hwm >= 1);
  check_i64 "countdown result" 325L (Core.Engine.reg th R.RDX);
  Parallel.Pool.service_shutdown svc

let test_trap_mid_ladder_isolated () =
  (* Two threads share a hot loop riding the full async ladder, then
     jump to per-thread continuations; the bad one is undecodable and
     must trap alone. *)
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RBX, 12L));
      Label "loop";
      Ins (I.Alu (I.Add, R.RDX, I.R R.RBX));
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins (I.Push R.R8);
      Ins I.Ret;
      Label "good_end";
      Ins I.Hlt;
    ]
  in
  let image = build items in
  let good_end = List.assoc "good_end" image.Image.Gelf.symbols in
  let config =
    {
      Core.Config.risotto with
      Core.Config.jit_threshold = 2;
      trace_threshold = 4;
      sync_compile = false;
    }
  in
  let eng = Core.Engine.create config image in
  let entry = image.Image.Gelf.entry in
  let good =
    Core.Engine.spawn eng ~tid:0 ~entry ~regs:[ (R.R8, good_end) ] ()
  in
  let bad =
    Core.Engine.spawn eng ~tid:1 ~entry ~regs:[ (R.R8, 0xDEAD000L) ] ()
  in
  (match Core.Engine.run_concurrent eng [ good; bad ] with
  | Core.Engine.Completed _ -> ()
  | Core.Engine.Exhausted _ -> Alcotest.fail "watchdog fired");
  Core.Engine.drain_installs eng;
  check_bool "good thread clean" true (good.Core.Engine.trap = None);
  check_i64 "good thread result" 78L (Core.Engine.reg good R.RDX);
  check_bool "bad thread trapped" true (bad.Core.Engine.trap <> None);
  check_i64 "bad thread got through the loop" 78L (Core.Engine.reg bad R.RDX);
  check_int "exactly one trap" 1 (Core.Engine.stats eng).Core.Engine.traps

(* ------------------------------------------------------------------ *)
(* Invalidation: reset and load_cache against in-flight installs       *)

let test_reset_drops_inflight_installs () =
  (* Block the (private) background worker, run a whole tiered program
     — every compile job queues behind the blocker — then reset and
     release.  The late results carry the pre-reset generation and must
     be discarded, not published into the flushed chain table. *)
  let image = build countdown_items in
  let svc = Parallel.Pool.service_create ~workers:1 () in
  let sem = Semaphore.Binary.make false in
  Parallel.Pool.service_submit svc (fun () -> Semaphore.Binary.acquire sem);
  let config =
    {
      Core.Config.risotto with
      Core.Config.jit_threshold = 1;
      trace_threshold = 0;
      sync_compile = false;
    }
  in
  let eng = Core.Engine.create ~install_service:svc config image in
  let g1 = Core.Engine.run eng in
  check_bool "blocked run clean (all interp)" true (g1.Core.Engine.trap = None);
  check_bool "compiles queued behind blocker" true
    (Parallel.Pool.service_pending svc >= 2);
  check_int "nothing installed while blocked" 0
    (Core.Engine.stats eng).Core.Engine.tier1_installed;
  let gen0 = Core.Engine.chain_generation eng in
  Core.Engine.reset eng;
  check_bool "generation bumped" true (Core.Engine.chain_generation eng > gen0);
  Semaphore.Binary.release sem;
  Core.Engine.drain_installs eng;
  let st = Core.Engine.stats eng in
  check_bool "stale installs dropped" true (st.Core.Engine.installs_dropped >= 1);
  check_int "still nothing installed" 0 st.Core.Engine.tier1_installed;
  (* The reset engine retrains from scratch and converges to the same
     guest state. *)
  let g2 = Core.Engine.spawn eng ~tid:3 ~entry:image.Image.Gelf.entry () in
  Core.Engine.run_thread eng g2;
  Core.Engine.drain_installs eng;
  check_bool "rerun clean" true (g2.Core.Engine.trap = None);
  check_i64 "same result after reset" (Core.Engine.reg g1 R.RDX)
    (Core.Engine.reg g2 R.RDX);
  Parallel.Pool.service_shutdown svc

let test_reset_clears_tier_profile () =
  let image = build countdown_items in
  let config =
    {
      Core.Config.risotto with
      Core.Config.jit_threshold = 2;
      trace_threshold = 4;
    }
  in
  let eng = Core.Engine.create config image in
  let g1 = Core.Engine.run eng in
  let st = Core.Engine.stats eng in
  check_bool "trained" true
    (st.Core.Engine.tier1_installed >= 1 && st.Core.Engine.superblocks >= 1);
  let supers_before = st.Core.Engine.superblocks in
  Core.Engine.reset eng;
  check_bool "profile gone with the nodes" true (Core.Engine.hot_blocks eng = []);
  let g2 = Core.Engine.spawn eng ~tid:5 ~entry:image.Image.Gelf.entry () in
  Core.Engine.run_thread eng g2;
  check_bool "rerun clean" true (g2.Core.Engine.trap = None);
  check_i64 "same result" (Core.Engine.reg g1 R.RDX) (Core.Engine.reg g2 R.RDX);
  check_bool "ladder retrained after reset" true
    ((Core.Engine.stats eng).Core.Engine.superblocks > supers_before)

let test_load_cache_resets_tier_profile () =
  let path = Filename.temp_file "risotto_tiers" ".rstc" in
  let image = build countdown_items in
  let config =
    {
      Core.Config.risotto with
      Core.Config.jit_threshold = 2;
      trace_threshold = 4;
    }
  in
  let eng = Core.Engine.create config image in
  let g1 = Core.Engine.run eng in
  check_bool "hot run clean" true (g1.Core.Engine.trap = None);
  let supers_before = (Core.Engine.stats eng).Core.Engine.superblocks in
  check_bool "superblock trained" true (supers_before >= 1);
  ignore (Core.Engine.save_cache eng path);
  (match Core.Engine.load_cache eng path with
  | Ok n -> check_bool "loaded blocks" true (n > 0)
  | Error f -> Alcotest.fail (Core.Fault.to_string f));
  (* clear_links zeroed every execution counter and tier profile: a
     resumed run must not promote on pre-reload training. *)
  check_bool "profile reset by reload" true (Core.Engine.hot_blocks eng = []);
  let g2 = Core.Engine.spawn eng ~tid:7 ~entry:image.Image.Gelf.entry () in
  Core.Engine.run_thread eng g2;
  check_bool "rerun clean" true (g2.Core.Engine.trap = None);
  check_i64 "same result" (Core.Engine.reg g1 R.RDX) (Core.Engine.reg g2 R.RDX);
  check_bool "superblock re-forms from fresh profile" true
    ((Core.Engine.stats eng).Core.Engine.superblocks > supers_before);
  Sys.remove path

let () =
  Alcotest.run "tiers"
    [
      ( "parity",
        [
          Alcotest.test_case "ladder = tier0-only on example programs" `Quick
            test_tier_parity_examples;
          Alcotest.test_case "parity under fault injection" `Quick
            test_tier_parity_under_injection;
          QCheck_alcotest.to_alcotest tier_differential_prop;
        ] );
      ( "engagement",
        [
          Alcotest.test_case "sync ladder: all tiers fire and report" `Quick
            test_tiers_engage_sync;
          Alcotest.test_case "async ladder: background installs publish" `Quick
            test_tiers_engage_async;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "trap isolated across the async ladder" `Quick
            test_trap_mid_ladder_isolated;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "reset drops in-flight installs" `Quick
            test_reset_drops_inflight_installs;
          Alcotest.test_case "reset clears the tier profile" `Quick
            test_reset_clears_tier_profile;
          Alcotest.test_case "load_cache resets the tier profile" `Quick
            test_load_cache_resets_tier_profile;
        ] );
    ]
