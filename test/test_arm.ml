(* The Arm host machine: semantics, the cycle cost model, the exclusive
   monitor and the CAS contention model. *)

module A = Arm.Insn
module M = Arm.Machine

let check_i64 = Alcotest.check Alcotest.int64
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let exec ?cost ?(setup = fun _ -> ()) code =
  let mem = Memsys.Mem.create () in
  let shared = M.create_shared ?cost mem in
  let t = M.create_thread 0 in
  setup t;
  let exit = M.exec_block shared t (Array.of_list code) in
  (t, exit, mem, shared)

let test_alu_and_moves () =
  let t, exit, _, _ =
    exec
      [
        A.Movz (0, 6L);
        A.Alu (A.Mul, 1, 0, A.I 7L);
        A.Alu (A.Eor, 2, 1, A.R 1);
        A.Mov (3, 1);
        A.Goto_tb 0x99L;
      ]
  in
  check_i64 "mul" 42L t.M.regs.(1);
  check_i64 "eor self" 0L t.M.regs.(2);
  check_i64 "mov" 42L t.M.regs.(3);
  check_bool "exit" true (exit = M.Next_tb 0x99L)

let test_xzr () =
  let t, _, _, _ =
    exec [ A.Movz (31, 7L); A.Alu (A.Add, 0, 31, A.I 1L); A.Exit_halt ]
  in
  check_i64 "xzr reads zero" 1L t.M.regs.(0)

let test_memory_and_branches () =
  let t, _, mem, _ =
    exec
      [
        A.Movz (0, 0x5000L);
        A.Movz (1, 9L);
        A.Str (1, 0, 8L);
        A.Ldr (2, 0, 8L);
        A.Cmp (2, A.I 9L);
        A.Bcc (A.Eq, 7);
        A.Movz (3, 111L);
        A.Movz (4, 222L);
        A.Exit_halt;
      ]
  in
  check_i64 "ldr" 9L t.M.regs.(2);
  check_i64 "branch taken" 0L t.M.regs.(3);
  check_i64 "after target" 222L t.M.regs.(4);
  check_i64 "memory" 9L (Memsys.Mem.load mem 0x5008L)

let test_cset () =
  let t, _, _, _ =
    exec
      [
        A.Movz (0, 3L);
        A.Cmp (0, A.I 3L);
        A.Cset (1, A.Eq);
        A.Cset (2, A.Ne);
        A.Exit_halt;
      ]
  in
  check_i64 "cset eq" 1L t.M.regs.(1);
  check_i64 "cset ne" 0L t.M.regs.(2)

let test_exclusives () =
  let t, _, mem, _ =
    exec
      [
        A.Movz (0, 0x5000L);
        A.Movz (1, 5L);
        A.Str (1, 0, 0L);
        A.Ldxr (2, 0);
        A.Alu (A.Add, 3, 2, A.I 1L);
        A.Stxr (4, 3, 0);
        A.Exit_halt;
      ]
  in
  check_i64 "ldxr" 5L t.M.regs.(2);
  check_i64 "stxr success" 0L t.M.regs.(4);
  check_i64 "stored" 6L (Memsys.Mem.load mem 0x5000L)

let test_stxr_without_monitor_fails () =
  let t, _, mem, _ =
    exec
      [
        A.Movz (0, 0x5000L);
        A.Movz (1, 7L);
        A.Stxr (2, 1, 0);
        A.Exit_halt;
      ]
  in
  check_i64 "status 1" 1L t.M.regs.(2);
  check_i64 "no store" 0L (Memsys.Mem.load mem 0x5000L)

let test_cas_semantics () =
  let t, _, mem, _ =
    exec
      [
        A.Movz (0, 0x5000L);
        A.Movz (1, 0L);
        (* expected *)
        A.Movz (2, 9L);
        (* new *)
        A.Cas { acq = true; rel = true; cmp = 1; swap = 2; base = 0 };
        (* second cas fails: memory is 9, expected 0 *)
        A.Movz (3, 0L);
        A.Movz (4, 55L);
        A.Cas { acq = true; rel = true; cmp = 3; swap = 4; base = 0 };
        A.Exit_halt;
      ]
  in
  check_i64 "first cas old" 0L t.M.regs.(1);
  check_i64 "second cas old (failed)" 9L t.M.regs.(3);
  check_i64 "memory" 9L (Memsys.Mem.load mem 0x5000L)

let test_lse_atomics () =
  let t, _, mem, _ =
    exec
      [
        A.Movz (0, 0x5000L);
        A.Movz (1, 5L);
        A.Ldadd { acq = true; rel = true; old = 2; src = 1; base = 0 };
        A.Movz (3, 100L);
        A.Swp { acq = true; rel = true; old = 4; src = 3; base = 0 };
        A.Exit_halt;
      ]
  in
  check_i64 "ldadd old" 0L t.M.regs.(2);
  check_i64 "swp old" 5L t.M.regs.(4);
  check_i64 "memory" 100L (Memsys.Mem.load mem 0x5000L)

let test_fp () =
  let t, _, _, _ =
    exec
      [
        A.Movz (0, Int64.bits_of_float 16.0);
        A.Fp (A.Fsqrt, 1, 0, 0);
        A.Movz (2, Int64.bits_of_float 0.5);
        A.Fp (A.Fadd, 3, 1, 2);
        A.Exit_halt;
      ]
  in
  Alcotest.(check (float 1e-9)) "sqrt+add" 4.5 (Int64.float_of_bits t.M.regs.(3))

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

let cycles code =
  let t, _, _, _ = exec code in
  t.M.cycles

let test_fence_costs () =
  let c = Arm.Cost.default in
  check_int "full fence" c.Arm.Cost.dmb_full (cycles [ A.Dmb A.Full; A.Exit_halt ]);
  check_int "ld fence" c.Arm.Cost.dmb_ld (cycles [ A.Dmb A.Ld; A.Exit_halt ]);
  check_int "st fence" c.Arm.Cost.dmb_st (cycles [ A.Dmb A.St; A.Exit_halt ]);
  (* Back-to-back fences: the second is nearly free — this is what makes
     merging profitable (and the DESIGN.md ablation point). *)
  check_int "chained discount"
    (c.Arm.Cost.dmb_ld + c.Arm.Cost.dmb_chained)
    (cycles [ A.Dmb A.Ld; A.Dmb A.Full; A.Exit_halt ])

let test_fence_ordering_of_costs () =
  let c = Arm.Cost.default in
  check_bool "full > ld" true (c.Arm.Cost.dmb_full > c.Arm.Cost.dmb_ld);
  check_bool "ld > st" true (c.Arm.Cost.dmb_ld > c.Arm.Cost.dmb_st);
  check_bool "chained cheapest" true (c.Arm.Cost.dmb_chained < c.Arm.Cost.dmb_st)

let test_stats_counters () =
  let t, _, _, _ =
    exec [ A.Dmb A.Full; A.Dmb A.St; A.Movz (0, 1L); A.Exit_halt ]
  in
  check_int "fences counted" 2 t.M.fences;
  check_int "insns counted" 4 t.M.insns

(* ------------------------------------------------------------------ *)
(* Contention                                                          *)

let test_contention_transfer () =
  let mem = Memsys.Mem.create () in
  let shared = M.create_shared mem in
  let t0 = M.create_thread 0 and t1 = M.create_thread 1 in
  let cas_block tid_reg =
    ignore tid_reg;
    [|
      A.Movz (0, 0x7000L);
      A.Movz (1, 0L);
      A.Movz (2, 1L);
      A.Cas { acq = true; rel = true; cmp = 1; swap = 2; base = 0 };
      A.Exit_halt;
    |]
  in
  ignore (M.exec_block shared t0 (cas_block 0));
  let c0_first = t0.M.cycles in
  ignore (M.exec_block shared t1 (cas_block 1));
  let c1 = t1.M.cycles in
  check_bool "second thread pays a transfer" true (c1 > c0_first);
  (* Same thread again: no transfer. *)
  let before = t1.M.cycles in
  ignore (M.exec_block shared t1 (cas_block 1));
  let delta = t1.M.cycles - before in
  check_bool "owner pays no transfer" true (delta < c1)

let test_sharers_scaling () =
  let mem = Memsys.Mem.create () in
  check_int "no sharers initially" 0 (Memsys.Mem.sharers mem 0x7000L);
  ignore (Memsys.Mem.acquire_line mem 0x7000L ~tid:0);
  ignore (Memsys.Mem.acquire_line mem 0x7000L ~tid:1);
  ignore (Memsys.Mem.acquire_line mem 0x7000L ~tid:2);
  check_int "three sharers" 3 (Memsys.Mem.sharers mem 0x7000L);
  ignore (Memsys.Mem.acquire_line mem 0x7000L ~tid:1);
  check_int "no double count" 3 (Memsys.Mem.sharers mem 0x7000L);
  check_bool "different line independent" true
    (Memsys.Mem.sharers mem 0x9000L = 0)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let test_helper_dispatch () =
  let mem = Memsys.Mem.create () in
  let shared = M.create_shared mem in
  M.register_helper shared "add3" (fun _ t args ->
      M.charge t 10;
      Int64.add (List.hd args) 3L);
  let t = M.create_thread 0 in
  let exit =
    M.exec_block shared t
      [|
        A.Movz (0, 7L); A.Blr_helper ("add3", [ 0 ], Some 1); A.Exit_halt;
      |]
  in
  check_bool "halted" true (exit = M.Halted);
  check_i64 "helper result" 10L t.M.regs.(1);
  check_int "helper counted" 1 t.M.helper_calls;
  check_bool "helper + extra cycles charged" true
    (t.M.cycles >= (M.cost shared).Arm.Cost.helper_call + 10)

let test_unknown_helper_fails () =
  let _, exit, _, _ = exec [ A.Blr_helper ("nope", [], None); A.Exit_halt ] in
  check_bool "unknown helper traps" true
    (exit = M.Trapped (M.Unknown_helper "nope"))

(* ------------------------------------------------------------------ *)
(* Code-buffer serialization                                           *)

let arb_insn =
  let open QCheck in
  let reg = int_range 0 31 in
  let operand =
    oneof
      [ map (fun r -> A.R r) reg; map (fun i -> A.I (Int64.of_int i)) int ]
  in
  let alu = oneofl [ A.Add; A.Sub; A.And; A.Orr; A.Eor; A.Lsl; A.Lsr; A.Mul ] in
  let cc = oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge; A.Lo; A.Ls; A.Hi; A.Hs ] in
  let fp = oneofl [ A.Fadd; A.Fsub; A.Fmul; A.Fdiv; A.Fsqrt ] in
  let target = int_range 0 1000 in
  let name = oneofl [ "helper_syscall"; "sf_add"; "sin"; "sha256" ] in
  oneof
    [
      map (fun (r, i) -> A.Movz (r, Int64.of_int i)) (pair reg int);
      map (fun (a, b) -> A.Mov (a, b)) (pair reg reg);
      map (fun (op, d, a, o) -> A.Alu (op, d, a, o)) (quad alu reg reg operand);
      map (fun (d, b, o) -> A.Ldr (d, b, Int64.of_int o)) (triple reg reg small_int);
      map (fun (s, b, o) -> A.Str (s, b, Int64.of_int o)) (triple reg reg small_int);
      map (fun (d, b) -> A.Ldar (d, b)) (pair reg reg);
      map (fun (d, b) -> A.Ldapr (d, b)) (pair reg reg);
      map (fun (s, b) -> A.Stlr (s, b)) (pair reg reg);
      map (fun (d, b) -> A.Ldxr (d, b)) (pair reg reg);
      map (fun (st, (s, b)) -> A.Stxr (st, s, b)) (pair reg (pair reg reg));
      map
        (fun ((acq, rel), (c, s, b)) -> A.Cas { acq; rel; cmp = c; swap = s; base = b })
        (pair (pair bool bool) (triple reg reg reg));
      map
        (fun ((acq, rel), (o, s, b)) -> A.Ldadd { acq; rel; old = o; src = s; base = b })
        (pair (pair bool bool) (triple reg reg reg));
      map
        (fun ((acq, rel), (o, s, b)) -> A.Swp { acq; rel; old = o; src = s; base = b })
        (pair (pair bool bool) (triple reg reg reg));
      map (fun b -> A.Dmb b) (oneofl [ A.Full; A.Ld; A.St ]);
      map (fun (r, o) -> A.Cmp (r, o)) (pair reg operand);
      map (fun t -> A.B t) target;
      map (fun (c, t) -> A.Bcc (c, t)) (pair cc target);
      map (fun (r, t) -> A.Cbz (r, t)) (pair reg target);
      map (fun (r, t) -> A.Cbnz (r, t)) (pair reg target);
      map (fun (r, c) -> A.Cset (r, c)) (pair reg cc);
      map (fun (op, d, a, b) -> A.Fp (op, d, a, b)) (quad fp reg reg reg);
      map
        (fun (n, args, ret) -> A.Blr_helper (n, args, ret))
        (triple name (small_list reg) (option reg));
      map
        (fun (n, args, ret) -> A.Host_call { func = n; args; ret })
        (triple name (small_list reg) (option reg));
      map (fun pc -> A.Goto_tb (Int64.of_int pc)) target;
      map (fun r -> A.Goto_ptr r) reg;
      always A.Exit_halt;
      map
        (fun (kind, context) -> A.Trap { kind; context })
        (pair
           (oneofl [ "decode"; "link"; "watchdog" ])
           (oneofl [ ""; "bad bytes"; "unresolved host import mystery" ]));
    ]

let prop_block_roundtrip =
  QCheck.Test.make ~name:"code-buffer encode/decode round trip" ~count:300
    QCheck.(small_list arb_insn)
    (fun insns ->
      let code = Array.of_list insns in
      Arm.Decode.block_of_string (Arm.Encode.block_to_string code) = code)

let test_decode_rejects_garbage () =
  check_bool "bad opcode" true
    (match Arm.Decode.block_of_string "\x01\x00\x00\x00\xEE" with
    | exception Arm.Decode.Bad_encoding _ -> true
    | _ -> false);
  check_bool "truncated" true
    (match Arm.Decode.block_of_string "\x05\x00\x00\x00" with
    | exception Arm.Decode.Bad_encoding _ -> true
    | _ -> false)

let () =
  Alcotest.run "arm"
    [
      ( "semantics",
        [
          Alcotest.test_case "alu/moves" `Quick test_alu_and_moves;
          Alcotest.test_case "xzr" `Quick test_xzr;
          Alcotest.test_case "memory/branches" `Quick test_memory_and_branches;
          Alcotest.test_case "cset" `Quick test_cset;
          Alcotest.test_case "exclusives" `Quick test_exclusives;
          Alcotest.test_case "stxr monitor" `Quick test_stxr_without_monitor_fails;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "lse atomics" `Quick test_lse_atomics;
          Alcotest.test_case "fp" `Quick test_fp;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "fence costs" `Quick test_fence_costs;
          Alcotest.test_case "cost ordering" `Quick test_fence_ordering_of_costs;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "contention",
        [
          Alcotest.test_case "line transfer" `Quick test_contention_transfer;
          Alcotest.test_case "sharers scaling" `Quick test_sharers_scaling;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "dispatch" `Quick test_helper_dispatch;
          Alcotest.test_case "unknown" `Quick test_unknown_helper_fails;
        ] );
      ( "serialization",
        [
          QCheck_alcotest.to_alcotest prop_block_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
        ] );
    ]
