(* The witness-observability layer: DOT/SVG witness rendering, the
   greedy counterexample shrinker, Explain.check_all vs check,
   axiom-coverage accounting, JSON round-tripping and the determinism
   and off-by-default contracts of the HTML report. *)

module En = Litmus.Enumerate
module W = Mapping.Witness

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let x86 = Axiom.X86_tso.model
let tcg = Axiom.Tcg_model.model
let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original
let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected

let qemu_gcc10 =
  let fe, be = Mapping.Schemes.qemu_preset in
  Mapping.Schemes.x86_to_arm fe be

let qemu_gcc9 =
  Mapping.Schemes.(
    x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc9 })

let apply_raw p =
  match Mapping.Transform.applications Mapping.Transform.Raw p with
  | t :: _ -> t
  | [] -> p

(* The paper's four bug schemes, as (scheme fn, src/tgt models, source
   program) — each must yield a witness with a named violated axiom. *)
let bug_cases =
  [
    ("MPQ/qemu-gcc10", qemu_gcc10, x86, arm_fix, Litmus.Catalog.mpq_x86);
    ("SBQ/qemu-gcc9", qemu_gcc9, x86, arm_fix, Litmus.Catalog.sbq_x86);
    ( "SBAL/armcats-direct",
      Mapping.Schemes.x86_to_arm_direct_armcats,
      x86,
      arm_orig,
      Litmus.Catalog.sbal_x86 );
    ("FMR/transform-raw", apply_raw, tcg, tcg, Litmus.Catalog.fmr_tcg_src);
  ]

let capture_case (f, src_model, tgt_model, src) =
  let tgt = f src in
  let report = Mapping.Check.refines ~src_model ~tgt_model ~src ~tgt in
  (report, W.capture ~src_model ~tgt_model ~src ~tgt report)

(* ------------------------------------------------------------------ *)
(* Witness capture *)

let test_capture_bug_schemes () =
  List.iter
    (fun (name, f, src_model, tgt_model, src) ->
      let report, ws = capture_case (f, src_model, tgt_model, src) in
      check_bool (name ^ " fails refinement") false report.Mapping.Check.ok;
      check_bool (name ^ " has witnesses") true (ws <> []);
      List.iter
        (fun (w : W.t) ->
          check_bool
            (name ^ " target execution exhibits the extra behaviour")
            true
            (Axiom.Execution.behaviour w.W.target = w.W.behaviour.En.mem);
          check_bool (name ^ " carries a forbidden source execution") true
            (w.W.forbidden <> None);
          check_bool
            (name ^ " names at least one violated axiom with a cycle")
            true
            (List.exists
               (function
                 | Axiom.Explain.Violates { axiom; cycle } ->
                     axiom <> "" && cycle <> []
                 | Axiom.Explain.Consistent -> false)
               w.W.violations))
        ws)
    bug_cases

let test_capture_ok_scheme_empty () =
  let fe, be = Mapping.Schemes.risotto_rmw2_preset in
  let f = Mapping.Schemes.x86_to_arm fe be in
  let src = Litmus.Catalog.mpq_x86 in
  let report, ws = capture_case (f, x86, arm_fix, src) in
  check_bool "risotto rmw2 refines on MPQ" true report.Mapping.Check.ok;
  check_int "no witnesses for a passing check" 0 (List.length ws)

(* ------------------------------------------------------------------ *)
(* DOT rendering *)

let count_substring hay needle =
  let n = String.length needle in
  let rec go from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
        if i + n <= String.length hay && String.sub hay i n = needle then
          go (i + 1) (acc + 1)
        else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

let test_dot_counts () =
  List.iter
    (fun (name, f, src_model, tgt_model, src) ->
      let _, ws = capture_case (f, src_model, tgt_model, src) in
      let w = List.hd ws in
      let fx = Option.get w.W.forbidden in
      let highlights =
        List.filter_map
          (function
            | Axiom.Explain.Violates { axiom; cycle } ->
                Some { Report.Dot.axiom; cycle }
            | Axiom.Explain.Consistent -> None)
          w.W.violations
      in
      let dot = Report.Dot.render ~name ~highlights fx in
      (* Nodes: one "eN [label=..." line per event. *)
      let events = List.length fx.Axiom.Execution.events in
      let node_lines = count_substring dot "[label=\"" in
      let base_edges =
        List.fold_left
          (fun acc (_, es) -> acc + List.length es)
          0
          (Report.Dot.base_edges fx)
      in
      let cycle_edges =
        List.fold_left
          (fun acc { Report.Dot.cycle; _ } ->
            acc + List.length (Report.Dot.cycle_edges cycle))
          0 highlights
      in
      let edges = count_substring dot " -> " in
      (* Every node line and every edge line carries one label attribute. *)
      check_int (name ^ " node+edge labels") (events + edges) node_lines;
      check_int (name ^ " edge count") (base_edges + cycle_edges) edges;
      check_bool (name ^ " has a highlighted cycle") true (cycle_edges > 0);
      check_bool (name ^ " highlight colour present") true
        (count_substring dot "crimson" > 0);
      (* The violated axiom is named in the DOT output. *)
      List.iter
        (fun { Report.Dot.axiom; _ } ->
          check_bool
            (name ^ " names axiom " ^ axiom)
            true
            (count_substring dot axiom > 0))
        highlights)
    bug_cases

(* ------------------------------------------------------------------ *)
(* Shrinker *)

let test_shrinker () =
  List.iter
    (fun (name, f, src_model, tgt_model, src) ->
      let shrunk = W.shrink ~scheme:f ~src_model ~tgt_model src in
      check_bool
        (name ^ " shrunk no larger than input")
        true
        (W.instruction_count shrunk <= W.instruction_count src);
      let r =
        Mapping.Check.refines ~src_model ~tgt_model ~src:shrunk
          ~tgt:(f shrunk)
      in
      check_bool (name ^ " shrunk still fails refinement") false
        r.Mapping.Check.ok)
    bug_cases

let test_shrinker_passing_unchanged () =
  let fe, be = Mapping.Schemes.risotto_rmw2_preset in
  let f = Mapping.Schemes.x86_to_arm fe be in
  let src = Litmus.Catalog.mpq_x86 in
  let shrunk = W.shrink ~scheme:f ~src_model:x86 ~tgt_model:arm_fix src in
  check_int "passing program returned unchanged"
    (W.instruction_count src)
    (W.instruction_count shrunk)

(* ------------------------------------------------------------------ *)
(* Explain.check_all vs check over the corpus's candidate executions *)

let test_check_all_superset () =
  let models = [ x86; arm_orig; arm_fix; tcg; Axiom.Sc_model.model ] in
  let progs = Litmus.Catalog.mapping_corpus in
  let checked = ref 0 in
  List.iter
    (fun (m : Axiom.Model.t) ->
      let w = Option.get (Axiom.Explain.which_of_model m) in
      List.iter
        (fun (_, p) ->
          List.iter
            (fun (x, _) ->
              incr checked;
              let one = Axiom.Explain.check w x in
              let all = Axiom.Explain.check_all w x in
              match one with
              | Axiom.Explain.Consistent ->
                  check_bool "check_all empty iff check consistent" true
                    (all = [])
              | v ->
                  check_bool "check's verdict heads check_all" true
                    (match all with v' :: _ -> v' = v | [] -> false))
            (En.candidates p))
        progs)
    models;
  (* 76 candidate executions across the corpus, times five models. *)
  check_bool "exercised a real corpus" true (!checked > 300)

(* ------------------------------------------------------------------ *)
(* Coverage accounting and the off-by-default contract *)

let run_small_sweep ?coverage () =
  let entries =
    List.filter
      (fun (e : Report.Sweep.entry) ->
        List.mem e.Report.Sweep.scheme
          [ "qemu-gcc10/arm-fix"; "transform-raw" ])
      (Report.Sweep.default_entries ())
  in
  Report.Sweep.run ?coverage entries

let test_coverage_counters_off_when_disabled () =
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  let cov = Report.Coverage.create () in
  let cells = run_small_sweep ~coverage:cov () in
  (* The in-process matrix fills regardless... *)
  check_bool "matrix has cells" true (Report.Coverage.counts cov <> []);
  check_bool "discriminating axioms include the x86 global axiom" true
    (List.exists
       (fun ((k : Report.Coverage.key), n) ->
         k.Report.Coverage.axiom = "x86 (GHB)" && n > 0)
       (Report.Coverage.counts cov));
  (* ...but with obs disabled every axiom.reject.* counter reads 0. *)
  let snap = Obs.Metrics.snapshot () in
  let total =
    List.fold_left
      (fun acc (_, v) -> acc + v)
      0
      (Obs.Metrics.counters_with_prefix snap Report.Coverage.metric_prefix)
  in
  check_int "obs counters all zero while disabled" 0 total;
  (* And the verdicts are the same as a probe-free run. *)
  let plain = run_small_sweep () in
  check_bool "verdicts identical with and without the coverage probe" true
    (List.map (fun (c : Report.Sweep.cell) -> c.Report.Sweep.report) cells
    = List.map (fun (c : Report.Sweep.cell) -> c.Report.Sweep.report) plain)

let test_coverage_counters_on_when_enabled () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let cov = Report.Coverage.create () in
  ignore (run_small_sweep ~coverage:cov ());
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.disable ();
  let prefixed =
    Obs.Metrics.counters_with_prefix snap Report.Coverage.metric_prefix
  in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 prefixed in
  check_bool "obs counters count while enabled" true (total > 0);
  (* Obs counters agree with the in-process matrix, per (model, axiom). *)
  List.iter
    (fun (suffix, v) ->
      let matrix_total =
        List.fold_left
          (fun acc ((k : Report.Coverage.key), n) ->
            if k.Report.Coverage.model ^ "/" ^ k.Report.Coverage.axiom = suffix
            then acc + n
            else acc)
          0 (Report.Coverage.counts cov)
      in
      check_int ("counter matches matrix: " ^ suffix) matrix_total v)
    prefixed

let test_blind_spots () =
  let cov = Report.Coverage.create () in
  ignore (run_small_sweep ~coverage:cov ());
  let models = [ x86; tcg ] in
  let spots = Report.Coverage.blind_spots cov models in
  (* Blind spots are exactly the (model, axiom) pairs with no count. *)
  List.iter
    (fun (m, a) ->
      check_bool
        ("blind spot never counted: " ^ m ^ "/" ^ a)
        false
        (List.exists
           (fun ((k : Report.Coverage.key), n) ->
             k.Report.Coverage.model = m && k.Report.Coverage.axiom = a && n > 0)
           (Report.Coverage.counts cov)))
    spots;
  (* The row space is complete: counted + blind = all axioms. *)
  List.iter
    (fun (m : Axiom.Model.t) ->
      let axioms = Report.Coverage.axioms_of_model m in
      check_bool "models decompose into axioms" true (axioms <> []);
      List.iter
        (fun a ->
          let counted =
            List.exists
              (fun ((k : Report.Coverage.key), n) ->
                k.Report.Coverage.model = m.Axiom.Model.name
                && k.Report.Coverage.axiom = a
                && n > 0)
              (Report.Coverage.counts cov)
          in
          let blind = List.mem (m.Axiom.Model.name, a) spots in
          check_bool
            ("axiom counted xor blind: " ^ m.Axiom.Model.name ^ "/" ^ a)
            true (counted <> blind))
        axioms)
    models

(* ------------------------------------------------------------------ *)
(* JSON *)

let rec arb_json depth =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Report.Json.Null;
        map (fun b -> Report.Json.Bool b) bool;
        map (fun i -> Report.Json.Int i) int;
        map (fun s -> Report.Json.String s) (string_size (0 -- 12));
      ]
  in
  if depth = 0 then scalar
  else
    oneof
      [
        scalar;
        map
          (fun xs -> Report.Json.List xs)
          (list_size (0 -- 4) (arb_json (depth - 1)));
        map
          (fun kvs -> Report.Json.Obj kvs)
          (list_size (0 -- 4)
             (pair (string_size (0 -- 8)) (arb_json (depth - 1))));
      ]

let prop_json_roundtrip =
  QCheck.Test.make ~name:"JSON parse . emit = id" ~count:300
    (QCheck.make (arb_json 3))
    (fun v ->
      match Report.Json.of_string (Report.Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let test_json_parse_bench_like () =
  let src =
    {|{ "schema_version": 1, "section": "obs", "parity": true,
       "disabled_overhead_pct": 0.0123, "nested": { "a": [1, 2, -3] },
       "s": "q\"uo\nte" }|}
  in
  match Report.Json.of_string src with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      check_bool "schema_version" true
        (Report.Json.member "schema_version" j = Some (Report.Json.Int 1));
      check_bool "float parsed" true
        (match Report.Json.member "disabled_overhead_pct" j with
        | Some (Report.Json.Float f) -> Float.abs (f -. 0.0123) < 1e-9
        | _ -> false);
      check_bool "nested list" true
        (match Report.Json.member "nested" j with
        | Some nested ->
            Report.Json.member "a" nested
            = Some
                (Report.Json.List
                   [ Report.Json.Int 1; Report.Json.Int 2; Report.Json.Int (-3) ])
        | None -> false)

(* ------------------------------------------------------------------ *)
(* Witness artifacts and the HTML report *)

let test_witness_json_envelope () =
  let cells =
    Report.Sweep.run ~capture:true
      (List.filter
         (fun (e : Report.Sweep.entry) ->
           e.Report.Sweep.scheme = "transform-raw")
         (Report.Sweep.default_entries ()))
  in
  let cell =
    List.find (fun (c : Report.Sweep.cell) -> c.Report.Sweep.witnesses <> []) cells
  in
  let j =
    Report.Sweep.witness_json cell (List.hd cell.Report.Sweep.witnesses)
  in
  check_bool "envelope schema_version" true
    (Report.Json.member "schema_version" j = Some (Report.Json.Int 1));
  check_bool "envelope section" true
    (Report.Json.member "section" j = Some (Report.Json.String "witness"));
  check_bool "scheme recorded" true
    (Report.Json.member "scheme" j
    = Some (Report.Json.String "transform-raw"));
  (* The artifact round-trips through the parser. *)
  check_bool "artifact round-trips" true
    (Report.Json.of_string (Report.Json.to_string j) = Ok j)

let test_html_deterministic () =
  let render () =
    let cov = Report.Coverage.create () in
    let cells =
      Report.Sweep.run ~capture:true ~coverage:cov
        (List.filter
           (fun (e : Report.Sweep.entry) ->
             List.mem e.Report.Sweep.scheme
               [ "qemu-gcc10/arm-fix"; "transform-raw" ])
           (Report.Sweep.default_entries ()))
    in
    Report.Html.render ~coverage:cov ~models:[ x86; tcg ] cells
  in
  let a = render () and b = render () in
  check_bool "two runs render byte-identical HTML" true (a = b);
  (* Self-contained: no fetched assets.  The SVG xmlns namespace
     identifier is not a fetch. *)
  check_bool "report is self-contained (no external refs)" true
    (not
       (List.exists
          (fun needle ->
            let rec find i =
              i + String.length needle <= String.length a
              && (String.sub a i (String.length needle) = needle
                 || find (i + 1))
            in
            find 0)
          [ "src=\"http"; "href=\"http"; "<script src"; "<link " ]))

let test_html_svg_witnesses () =
  let cells =
    Report.Sweep.run ~capture:true
      (List.filter
         (fun (e : Report.Sweep.entry) ->
           e.Report.Sweep.scheme = "qemu-gcc10/arm-fix")
         (Report.Sweep.default_entries ()))
  in
  let html = Report.Html.render cells in
  check_bool "SVG graphs inlined" true
    (String.length html > 0
    &&
    let rec count i acc =
      match String.index_from_opt html i '<' with
      | Some j
        when j + 4 <= String.length html && String.sub html j 4 = "<svg" ->
          count (j + 1) (acc + 1)
      | Some j -> count (j + 1) acc
      | None -> acc
    in
    count 0 0 >= 2 (* target + forbidden for at least one witness *))

(* ------------------------------------------------------------------ *)

let () =
  (* The off-by-default tests toggle the global registry; make the
     starting state explicit. *)
  Obs.Metrics.disable ();
  Alcotest.run "report"
    [
      ( "witness capture",
        [
          Alcotest.test_case "four bug schemes yield witnesses" `Slow
            test_capture_bug_schemes;
          Alcotest.test_case "passing scheme yields none" `Quick
            test_capture_ok_scheme_empty;
        ] );
      ( "dot",
        [ Alcotest.test_case "node/edge counts and cycles" `Slow test_dot_counts ] );
      ( "shrinker",
        [
          Alcotest.test_case "shrunk still fails, no larger" `Slow test_shrinker;
          Alcotest.test_case "passing input unchanged" `Quick
            test_shrinker_passing_unchanged;
        ] );
      ( "explain",
        [
          Alcotest.test_case "check_all contains check" `Slow
            test_check_all_superset;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "counters zero while obs disabled" `Slow
            test_coverage_counters_off_when_disabled;
          Alcotest.test_case "counters match matrix while enabled" `Slow
            test_coverage_counters_on_when_enabled;
          Alcotest.test_case "blind spots complement the matrix" `Slow
            test_blind_spots;
        ] );
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          Alcotest.test_case "parses bench-like documents" `Quick
            test_json_parse_bench_like;
        ] );
      ( "html",
        [
          Alcotest.test_case "witness artifact envelope" `Slow
            test_witness_json_envelope;
          Alcotest.test_case "deterministic rendering" `Slow
            test_html_deterministic;
          Alcotest.test_case "inline SVG witnesses" `Slow
            test_html_svg_witnesses;
        ] );
    ]
