(* The generated-corpus pipeline: seeded determinism, canonicalization
   soundness, memoized verdicts, sharded resumable sweeps and
   pool-vs-sequential identity at batch scale. *)

module Ast = Litmus.Ast
module G = Litmus.Generate
module En = Litmus.Enumerate
module Check = Mapping.Check
module P = Parallel.Pool
module Sweep = Report.Sweep

let x86 = Axiom.X86_tso.model

let fig7a_entry () =
  List.find
    (fun (e : Sweep.entry) -> e.scheme = "fig7a/x86->tcg")
    (Sweep.default_entries ())

let tmpdir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* A semantics-preserving obfuscation: reverse the thread order, permute
   location names, prefix register names.  Canonicalization must erase
   all three. *)
let obfuscate (p : Ast.prog) =
  let permute_loc = function
    | "x" -> "y"
    | "y" -> "z"
    | "z" -> "x"
    | l -> l
  in
  let rec exp = function
    | Ast.Int n -> Ast.Int n
    | Ast.Reg r -> Ast.Reg ("q" ^ r)
    | Ast.Add (a, b) -> Ast.Add (exp a, exp b)
    | Ast.Sub (a, b) -> Ast.Sub (exp a, exp b)
    | Ast.Mul (a, b) -> Ast.Mul (exp a, exp b)
    | Ast.Xor (a, b) -> Ast.Xor (exp a, exp b)
    | Ast.Eq (a, b) -> Ast.Eq (exp a, exp b)
    | Ast.Ne (a, b) -> Ast.Ne (exp a, exp b)
  in
  let rec instr = function
    | Ast.Load l -> Ast.Load { l with reg = "q" ^ l.reg; loc = permute_loc l.loc }
    | Ast.Store s ->
        Ast.Store { s with loc = permute_loc s.loc; value = exp s.value }
    | Ast.Cas c ->
        Ast.Cas
          {
            c with
            reg = Option.map (fun r -> "q" ^ r) c.reg;
            loc = permute_loc c.loc;
            expect = exp c.expect;
            desired = exp c.desired;
          }
    | Ast.Fence f -> Ast.Fence f
    | Ast.Assign (r, e) -> Ast.Assign ("q" ^ r, exp e)
    | Ast.If { cond; then_; else_ } ->
        Ast.If
          {
            cond = exp cond;
            then_ = List.map instr then_;
            else_ = List.map instr else_;
          }
  in
  {
    Ast.name = p.name ^ "-obf";
    init = List.map (fun (l, v) -> (permute_loc l, v)) p.init;
    threads =
      List.mapi
        (fun i (t : Ast.thread) -> { Ast.tid = i; code = List.map instr t.code })
        (List.rev p.threads);
  }

(* -------- seeded determinism -------- *)

let test_determinism () =
  let a = G.generate ~seed:42 300 and b = G.generate ~seed:42 300 in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun p q ->
      Alcotest.(check string)
        "same canonical rendering" (G.canonical_string p)
        (G.canonical_string q))
    a b;
  let c = G.generate ~seed:43 300 in
  Alcotest.(check bool)
    "different seed differs somewhere" true
    (List.exists2
       (fun p q -> G.canonical_string p <> G.canonical_string q)
       a c);
  let c1 = G.corpus ~seed:42 300 and c2 = G.corpus ~seed:42 300 in
  Alcotest.(check (list string))
    "same class names"
    (List.map (fun (c : G.cls) -> c.cls_name) c1.classes)
    (List.map (fun (c : G.cls) -> c.cls_name) c2.classes);
  Alcotest.(check bool)
    "dedup actually collapses" true
    (List.length c1.classes < c1.requested)

(* -------- canonicalization soundness -------- *)

let test_canonical_soundness () =
  let progs = G.generate ~seed:7 120 in
  List.iter
    (fun p ->
      let q = obfuscate p in
      Alcotest.(check string)
        "canonical erases renaming and thread order"
        (G.canonical_string p) (G.canonical_string q);
      Alcotest.(check string)
        "canonical is idempotent" (G.canonical_string p)
        (G.canonical_string (G.canonical p)))
    progs;
  (* Behaviour-set cardinality is renaming-invariant: the canonical
     representative's verdict speaks for the class. *)
  List.iteri
    (fun i p ->
      if i < 25 then
        Alcotest.(check int)
          "behaviour count invariant under canonicalization"
          (List.length (En.behaviours x86 p))
          (List.length (En.behaviours x86 (G.canonical p))))
    progs

(* -------- memoized verdict parity -------- *)

let test_memo_parity () =
  Check.clear_memo ();
  let e = fig7a_entry () in
  let corpus = G.corpus ~seed:3 150 in
  let classes = corpus.classes in
  let named =
    List.map (fun (c : G.cls) -> (c.cls_name, c.cls_rep)) classes
  in
  let fresh =
    Check.check_scheme ~name:e.scheme e.f ~src_model:e.src_model
      ~tgt_model:e.tgt_model named
  in
  let memo =
    List.map
      (fun np ->
        Check.check_memo ~scheme:e.scheme ~f:e.f ~src_model:e.src_model
          ~tgt_model:e.tgt_model np)
      named
  in
  List.iter2
    (fun (a : Check.report) (b : Check.report) ->
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.(check bool) "ok" a.ok b.ok;
      Alcotest.(check int) "src" a.src_behaviours b.src_behaviours;
      Alcotest.(check int) "tgt" a.tgt_behaviours b.tgt_behaviours)
    fresh memo;
  (* Serving the raw (pre-dedup) batch hits the memo for every program
     whose class is already checked. *)
  let progs = G.generate ~seed:3 150 in
  let h0, m0 = Check.memo_stats () in
  List.iteri
    (fun i p ->
      ignore
        (Check.check_memo ~scheme:e.scheme ~f:e.f ~src_model:e.src_model
           ~tgt_model:e.tgt_model
           (Printf.sprintf "p%d" i, p)))
    progs;
  let h1, m1 = Check.memo_stats () in
  Alcotest.(check int) "no new verdicts computed" m0 m1;
  Alcotest.(check int) "every program served from the memo" (h0 + 150) h1

(* -------- journaled generated-sweep resume parity -------- *)

let test_resume_parity () =
  let dir = tmpdir "risotto-gensweep" in
  let j1 = Filename.concat dir "full.journal" in
  let j2 = Filename.concat dir "resumed.journal" in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ j1; j2 ];
  let _, entries = Sweep.generated_entries ~seed:11 120 in
  En.clear_caches ();
  let reference =
    Sweep.run_generated ~shard_size:32 ~journal:j1 entries
  in
  (* Interrupted run: only the first scheme's cells complete... *)
  let partial_entries = [ List.hd entries ] in
  let _ =
    Sweep.run_generated ~shard_size:32 ~journal:j2 partial_entries
  in
  (* ...then the resumed run replays them and computes the rest. *)
  En.clear_caches ();
  let resumed = Sweep.run_generated ~shard_size:32 ~journal:j2 entries in
  let cells_of (g : Sweep.generated) =
    List.map
      (fun (c : Sweep.cell) ->
        (c.scheme, c.program, c.report.Check.ok,
         c.report.Check.src_behaviours, c.report.Check.tgt_behaviours))
      g.gen_journaled.cells
  in
  Alcotest.(check int)
    "resumed run replayed the journaled prefix"
    (List.length (List.hd entries).corpus)
    resumed.gen_journaled.replayed;
  Alcotest.(check bool)
    "cell-for-cell parity with the uninterrupted run" true
    (cells_of reference = cells_of resumed);
  (* And a second resume replays everything, computing nothing. *)
  let again = Sweep.run_generated ~shard_size:32 ~journal:j2 entries in
  Alcotest.(check int) "nothing left to compute" 0 again.gen_journaled.computed;
  Alcotest.(check bool)
    "fully replayed run still identical" true
    (cells_of reference = cells_of again)

(* -------- coverage saturation accounting -------- *)

let test_saturation () =
  let dir = tmpdir "risotto-gensat" in
  let j = Filename.concat dir "sat.journal" in
  (try Sys.remove j with Sys_error _ -> ());
  let _, entries = Sweep.generated_entries ~seed:19 150 in
  let cov = Report.Coverage.create () in
  let g =
    Sweep.run_generated ~coverage:cov ~probe_targets:true ~shard_size:25
      ~journal:j entries
  in
  let total_cells =
    List.fold_left (fun a (s : Sweep.shard_stat) -> a + s.shard_cells) 0
      g.gen_shards
  in
  Alcotest.(check int)
    "shard stats cover every cell" total_cells
    (List.length g.gen_journaled.cells);
  let total_new =
    List.fold_left (fun a (s : Sweep.shard_stat) -> a + s.shard_new_pairs) 0
      g.gen_shards
  in
  let distinct_pairs =
    List.sort_uniq compare
      (List.map
         (fun ((k : Report.Coverage.key), _) -> (k.model, k.axiom))
         (Report.Coverage.counts cov))
  in
  Alcotest.(check int)
    "new-pair counts sum to the distinct (model, axiom) pairs"
    (List.length distinct_pairs) total_new;
  (* A corpus this size saturates the handful of discriminating axioms
     long before the last shard. *)
  (match g.gen_saturated_after with
  | Some s ->
      Alcotest.(check bool) "saturation shard within range" true
        (s >= 0 && s < List.length g.gen_shards)
  | None -> Alcotest.fail "expected saturation on a 150-program corpus")

(* -------- pool vs sequential identity on a 500-program batch -------- *)

let test_pool_identity () =
  let corpus = G.corpus ~seed:5 500 in
  let named =
    List.map (fun (c : G.cls) -> (c.cls_name, c.cls_rep)) corpus.classes
  in
  let schemes =
    List.filter
      (fun (e : Sweep.entry) ->
        List.mem e.scheme Sweep.default_generated_schemes)
      (Sweep.default_entries ())
  in
  let cells =
    List.concat_map
      (fun (e : Sweep.entry) ->
        List.map
          (fun (pname, src) ->
            {
              Check.cell_scheme = e.scheme;
              cell_program = pname;
              cell_f = e.f;
              cell_src_model = e.src_model;
              cell_tgt_model = e.tgt_model;
              cell_src = src;
            })
          named)
      schemes
  in
  (* Reference: the per-cell production primitive. *)
  let reference =
    List.map
      (fun (c : Check.cell) ->
        let r =
          Check.refines ~src_model:c.cell_src_model
            ~tgt_model:c.cell_tgt_model ~src:c.cell_src
            ~tgt:(c.cell_f c.cell_src)
        in
        { r with Check.name = c.cell_scheme ^ ": " ^ c.cell_program })
      cells
  in
  En.clear_caches ();
  let planned_seq = Check.check_cells cells in
  En.clear_caches ();
  let planned_pool = P.with_pool ~jobs:4 (fun pool -> Check.check_cells ~pool cells) in
  Alcotest.(check bool)
    "planner (sequential) matches per-cell reference" true
    (planned_seq = reference);
  Alcotest.(check bool)
    "planner (pool) matches per-cell reference" true
    (planned_pool = reference);
  (* The planner's whole point: strictly fewer enumerations than cells'
     naive 2-per-cell cost on a shared-target batch. *)
  En.clear_caches ();
  ignore (Check.check_cells cells);
  let _, misses = En.cache_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "shared enumeration (%d misses for %d cells)" misses
       (List.length cells))
    true
    (misses < 2 * List.length cells)

(* -------- force-spawned multi-domain pool still agrees -------- *)

let test_force_spawn_identity () =
  let corpus = G.corpus ~seed:23 120 in
  let named =
    List.map (fun (c : G.cls) -> (c.cls_name, c.cls_rep)) corpus.classes
  in
  let e = fig7a_entry () in
  let seq =
    Check.check_scheme ~name:e.scheme e.f ~src_model:e.src_model
      ~tgt_model:e.tgt_model named
  in
  let par =
    P.with_pool ~jobs:3 ~force_spawn:true (fun pool ->
        Check.check_scheme ~pool ~name:e.scheme e.f ~src_model:e.src_model
          ~tgt_model:e.tgt_model named)
  in
  Alcotest.(check bool) "cross-domain planner parity" true (seq = par)

let () =
  Alcotest.run "generate"
    [
      ( "generator",
        [
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
          Alcotest.test_case "canonicalization soundness" `Quick
            test_canonical_soundness;
        ] );
      ( "memo",
        [ Alcotest.test_case "verdict memo parity" `Quick test_memo_parity ] );
      ( "sweep",
        [
          Alcotest.test_case "journaled resume parity" `Quick
            test_resume_parity;
          Alcotest.test_case "coverage saturation accounting" `Quick
            test_saturation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "500-program pool identity" `Quick
            test_pool_identity;
          Alcotest.test_case "force-spawn cross-domain parity" `Quick
            test_force_spawn_identity;
        ] );
    ]
