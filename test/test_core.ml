(* The DBT engine end-to-end: frontend mapping schemes, backend
   lowering, the block cache, and — most importantly — differential
   testing of every configuration against the x86 reference
   interpreter. *)

module I = X86.Insn
module R = X86.Reg
module Op = Tcg.Op
module E = Axiom.Event
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_i64 = Alcotest.check Alcotest.int64
let check_bool = Alcotest.check Alcotest.bool

let build items = Image.Gelf.build ~entry:"main" items

let run_oracle image =
  let s =
    X86.Interp.create ~code:image.Image.Gelf.text ~base:image.Image.Gelf.text_base
      ~entry:image.Image.Gelf.entry ()
  in
  s.X86.Interp.regs.(R.index R.RSP) <- Core.Engine.stack_top 0;
  ignore (X86.Interp.run s);
  s

let run_config config image =
  let eng = Core.Engine.create config image in
  let g = Core.Engine.run eng in
  (g, eng)

let same_state (oracle : X86.Interp.state) g eng =
  List.for_all
    (fun r ->
      Int64.equal oracle.X86.Interp.regs.(R.index r) (Core.Engine.reg g r))
    R.all
  && Memsys.Mem.dump oracle.X86.Interp.mem
     = Memsys.Mem.dump (Core.Engine.memory eng)

(* ------------------------------------------------------------------ *)
(* Frontend                                                            *)

let translate config items =
  let image = build items in
  let fe =
    Core.Frontend.create config image
      (Linker.Link.resolve image (Linker.Idl.parse Linker.Hostlib.idl_text))
  in
  Core.Frontend.translate fe image.Image.Gelf.entry

let count_fence_kind k ops =
  List.length
    (List.filter (function Op.Mb (f, _) -> f = k | _ -> false) ops)

let load_store_items =
  [
    Label "main";
    Ins (I.Load (R.RAX, { I.base = None; index = None; disp = 0x5000L }));
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5008L }, I.R R.RAX));
    Ins I.Hlt;
  ]

let test_frontend_risotto_fences () =
  (* Figure 7a: ld; Frm and Fww; st. *)
  let b = translate Core.Config.tcg_ver load_store_items in
  let optimized = Tcg.Pipeline.run Core.Config.tcg_ver.Core.Config.passes b in
  (* After fence merging, Frm·Fww merges into one Fmm. *)
  check_int "fences merged" 1 (Tcg.Fenceopt.count optimized.Tcg.Block.ops);
  let raw =
    translate { Core.Config.tcg_ver with passes = [] } load_store_items
  in
  check_int "one Frm" 1 (count_fence_kind E.F_rm raw.Tcg.Block.ops);
  check_int "one Fww" 1 (count_fence_kind E.F_ww raw.Tcg.Block.ops)

let test_frontend_qemu_fences () =
  (* Figure 2: Fmr; ld and Fmw; st — never mergeable (leading fences
     are separated by the accesses). *)
  let raw = translate { Core.Config.qemu with passes = [] } load_store_items in
  check_int "one Fmr" 1 (count_fence_kind E.F_mr raw.Tcg.Block.ops);
  check_int "one Fmw" 1 (count_fence_kind E.F_mw raw.Tcg.Block.ops)

let test_frontend_no_fences () =
  let raw =
    translate { Core.Config.no_fences with passes = [] } load_store_items
  in
  check_int "no fences" 0 (Tcg.Fenceopt.count raw.Tcg.Block.ops)

let test_frontend_block_cap () =
  let many = List.init 40 (fun _ -> Ins I.Nop) in
  let b =
    translate Core.Config.qemu ((Label "main" :: many) @ [ Ins I.Hlt ])
  in
  check_int "block capped" Core.Frontend.max_block_insns b.Tcg.Block.guest_insns

let test_frontend_mfence () =
  let items = [ Label "main"; Ins I.Mfence; Ins I.Hlt ] in
  let raw = translate { Core.Config.qemu with passes = [] } items in
  check_int "mfence -> Fsc" 1 (count_fence_kind E.F_sc raw.Tcg.Block.ops);
  let nf = translate { Core.Config.no_fences with passes = [] } items in
  check_int "no-fences drops mfence" 0 (Tcg.Fenceopt.count nf.Tcg.Block.ops)

(* ------------------------------------------------------------------ *)
(* Backend                                                             *)

let test_backend_cas_lowering () =
  let cas_items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RAX, 0L));
      Ins (I.Mov_ri (R.RCX, 1L));
      Ins (I.Lock_cmpxchg ({ I.base = None; index = None; disp = 0x5000L }, R.RCX));
      Ins I.Hlt;
    ]
  in
  let compile config =
    let image = build cas_items in
    let eng = Core.Engine.create config image in
    Core.Engine.lookup_block eng image.Image.Gelf.entry
  in
  let has p code = Array.exists p code in
  let casal = compile Core.Config.risotto in
  check_bool "casal emitted" true
    (has (function Arm.Insn.Cas { acq = true; rel = true; _ } -> true | _ -> false) casal);
  let rmw2 =
    compile { Core.Config.risotto with rmw = Core.Config.Native_rmw2 }
  in
  check_bool "exclusives emitted" true
    (has (function Arm.Insn.Ldxr _ -> true | _ -> false) rmw2);
  check_bool "DMBFF brackets" true
    (Array.length
       (Array.of_list
          (List.filter
             (function Arm.Insn.Dmb Arm.Insn.Full -> true | _ -> false)
             (Array.to_list rmw2)))
    >= 2);
  let helper = compile Core.Config.qemu in
  check_bool "helper path" true
    (has
       (function
         | Arm.Insn.Blr_helper ("helper_cmpxchg_gcc10", _, _) -> true
         | _ -> false)
       helper)

let test_backend_register_pressure_ok () =
  (* A long block with many temps must allocate within the pool. *)
  let many_loads =
    List.init 30 (fun k ->
        Ins (I.Load (R.of_index (k mod 8), { I.base = None; index = None; disp = Int64.of_int (0x5000 + (8 * k)) })))
  in
  let image = build ((Label "main" :: many_loads) @ [ Ins I.Hlt ]) in
  let eng = Core.Engine.create Core.Config.risotto image in
  let code = Core.Engine.lookup_block eng image.Image.Gelf.entry in
  check_bool "compiled" true (Array.length code > 0)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_block_cache () =
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RBX, 5L));
      Label "loop";
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]
  in
  let _, eng = run_config Core.Config.qemu (build items) in
  let st = Core.Engine.stats eng in
  check_bool "few translations" true (st.Core.Engine.blocks_translated <= 3);
  check_bool "cache hits on loop" true (st.Core.Engine.cache_hits >= 3)

let test_exit_code_via_syscall () =
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RAX, 60L));
      Ins (I.Mov_ri (R.RDI, 17L));
      Ins I.Syscall;
      Ins I.Nop;
    ]
  in
  let g, _ = run_config Core.Config.risotto (build items) in
  check_i64 "exit code" 17L g.Core.Engine.arm.Arm.Machine.exit_code;
  check_bool "finished" true g.Core.Engine.finished

let test_write_syscall_output () =
  let items =
    [
      Label "main";
      Ins (I.Store ({ I.base = None; index = None; disp = 0xA000L }, I.I 0x6b6fL));
      (* "ok" *)
      Ins (I.Mov_ri (R.RAX, 1L));
      Ins (I.Mov_ri (R.RDI, 1L));
      Ins (I.Mov_ri (R.RSI, 0xA000L));
      Ins (I.Mov_ri (R.RDX, 2L));
      Ins I.Syscall;
      Ins I.Hlt;
    ]
  in
  let g, _ = run_config Core.Config.qemu (build items) in
  Alcotest.(check string) "output" "ok"
    (Buffer.contents g.Core.Engine.arm.Arm.Machine.output)

let test_concurrent_threads_sum () =
  (* 4 threads xadd a shared counter 50 times each. *)
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.R14, 0x7000L));
      Ins (I.Mov_ri (R.R15, 50L));
      Label "loop";
      Ins (I.Mov_ri (R.R8, 1L));
      Ins (I.Lock_xadd ({ I.base = Some R.R14; index = None; disp = 0L }, R.R8));
      Ins (I.Alu (I.Sub, R.R15, I.I 1L));
      Ins (I.Cmp (R.R15, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]
  in
  List.iter
    (fun config ->
      let image = build items in
      let eng = Core.Engine.create config image in
      let threads =
        List.init 4 (fun tid ->
            Core.Engine.spawn eng ~tid ~entry:image.Image.Gelf.entry ())
      in
      ignore (Core.Engine.run_concurrent eng threads);
      check_i64
        (config.Core.Config.name ^ ": counter")
        200L
        (Memsys.Mem.load (Core.Engine.memory eng) 0x7000L))
    Core.Config.all

(* ------------------------------------------------------------------ *)
(* Differential property tests vs the reference interpreter            *)

let arb_program =
  let open QCheck in
  (* Straightline programs over a small register and memory window. *)
  let reg = map R.of_index (int_range 0 5) in
  let disp = map (fun k -> Int64.of_int (0x5000 + (8 * k))) (int_range 0 7) in
  let mem_op = map (fun disp -> { I.base = None; index = None; disp }) disp in
  let alu = oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor; I.Imul ] in
  let insn =
    oneof
      [
        map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair reg small_int);
        map (fun (a, b) -> I.Mov_rr (a, b)) (pair reg reg);
        map (fun (r, m) -> I.Load (r, m)) (pair reg mem_op);
        map (fun (m, r) -> I.Store (m, I.R r)) (pair mem_op reg);
        map (fun (m, i) -> I.Store (m, I.I (Int64.of_int i))) (pair mem_op small_int);
        map (fun (op, r, r2) -> I.Alu (op, r, I.R r2)) (triple alu reg reg);
        map
          (fun (op, r, i) -> I.Alu (op, r, I.I (Int64.of_int i)))
          (triple alu reg (int_range (-100) 100));
        map (fun (op, a, b) -> I.Fp (op, a, b))
          (triple (oneofl [ I.Fadd; I.Fsub; I.Fmul ]) reg reg);
        map (fun r -> I.Inc r) reg;
        map (fun r -> I.Dec r) reg;
        map (fun r -> I.Neg r) reg;
        map (fun r -> I.Not r) reg;
        map (fun (r, m) -> I.Lea (r, m)) (pair reg mem_op);
        map (fun (r, r2) -> I.Test (r, I.R r2)) (pair reg reg);
        map
          (fun (cc, a, b) -> I.Cmov (cc, a, b))
          (triple (oneofl [ I.E; I.Ne; I.L; I.A ]) reg reg);
        map (fun (m, r) -> I.Lock_cmpxchg (m, r)) (pair mem_op reg);
        map (fun (m, r) -> I.Lock_xadd (m, r)) (pair mem_op reg);
        map (fun (m, r) -> I.Xchg (m, r)) (pair mem_op reg);
        always I.Mfence;
        always I.Nop;
        map (fun r -> I.Push r) reg;
        (* pops only after pushes; keep the stack balanced with a
           push/pop pair generator below *)
      ]
  in
  set_print
    (fun items ->
      String.concat "\n"
        (List.filter_map
           (function Ins i -> Some (Fmt.str "%a" I.pp i) | _ -> None)
           items))
    (map
       (fun insns ->
         (Label "main" :: List.map (fun i -> Ins i) insns) @ [ Ins I.Hlt ])
       (small_list insn))

let differential config =
  QCheck.Test.make
    ~name:("dbt(" ^ config.Core.Config.name ^ ") matches x86 interpreter")
    ~count:250 arb_program
    (fun items ->
      let image = build items in
      let oracle = run_oracle image in
      let g, eng = run_config config image in
      same_state oracle g eng)

let props = List.map (fun c -> QCheck_alcotest.to_alcotest (differential c)) Core.Config.all

(* A deeper hand-written program exercising calls, branches and the
   stack, compared across all configs. *)
let test_fib_program () =
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RDI, 12L));
      Call_lbl "fib";
      Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RAX));
      Ins I.Hlt;
      (* iterative fib(rdi) -> rax *)
      Label "fib";
      Ins (I.Mov_ri (R.RAX, 0L));
      Ins (I.Mov_ri (R.RBX, 1L));
      Label "fib_loop";
      Ins (I.Cmp (R.RDI, I.I 0L));
      Jcc_lbl (I.E, "fib_done");
      Ins (I.Mov_rr (R.RCX, R.RAX));
      Ins (I.Alu (I.Add, R.RCX, I.R R.RBX));
      Ins (I.Mov_rr (R.RAX, R.RBX));
      Ins (I.Mov_rr (R.RBX, R.RCX));
      Ins (I.Alu (I.Sub, R.RDI, I.I 1L));
      Jmp_lbl "fib_loop";
      Label "fib_done";
      Ins I.Ret;
    ]
  in
  let image = build items in
  let oracle = run_oracle image in
  check_i64 "oracle fib(12)" 144L oracle.X86.Interp.regs.(R.index R.RAX);
  List.iter
    (fun config ->
      let g, eng = run_config config image in
      check_bool (config.Core.Config.name ^ " matches") true
        (same_state oracle g eng))
    Core.Config.all

(* ------------------------------------------------------------------ *)
(* PLT interception                                                    *)

let linked_image func driver =
  Image.Gelf.build ~entry:"main" ~imports:[ Harness.Guest_libs.import func ] driver

let strlen_driver =
  [
    Label "main";
    (* "abcde" at 0xA000 (store immediates are 32-bit, like x86's
       mov [m], imm32: go through a register) *)
    Ins (I.Mov_ri (R.R11, 0x6564636261L));
    Ins (I.Store ({ I.base = None; index = None; disp = 0xA000L }, I.R R.R11));
    Ins (I.Mov_ri (R.RDI, 0xA000L));
    Call_lbl "strlen@plt";
    Ins I.Hlt;
  ]

let test_plt_interception_strlen () =
  let image = linked_image "strlen" strlen_driver in
  (* Without the linker: guest implementation is translated. *)
  let g_q, eng_q = run_config Core.Config.qemu image in
  check_i64 "guest strlen" 5L (Core.Engine.reg g_q R.RAX);
  let st_q = Core.Engine.stats eng_q in
  ignore st_q;
  (* With the linker: host function invoked. *)
  let g_r, _ = run_config Core.Config.risotto image in
  check_i64 "host strlen" 5L (Core.Engine.reg g_r R.RAX);
  check_int "one host call" 1 g_r.Core.Engine.arm.Arm.Machine.host_calls;
  check_int "no host call under qemu" 0 g_q.Core.Engine.arm.Arm.Machine.host_calls

let test_digest_agrees_across_linking () =
  (* The guest digest implementation is byte-exact with the host one. *)
  let driver =
    [
      Label "main";
      Ins (I.Mov_ri (R.R11, 0x1122334455667788L));
      Ins (I.Store ({ I.base = None; index = None; disp = 0xB000L }, I.R R.R11));
      Ins (I.Mov_ri (R.R11, 0x99aabbccddeeff00L));
      Ins (I.Store ({ I.base = None; index = None; disp = 0xB008L }, I.R R.R11));
      Ins (I.Mov_ri (R.RDI, 0xB000L));
      Ins (I.Mov_ri (R.RSI, 16L));
      Call_lbl "sha256@plt";
      Ins I.Hlt;
    ]
  in
  let image = linked_image "sha256" driver in
  let g_q, _ = run_config Core.Config.qemu image in
  let g_r, _ = run_config Core.Config.risotto image in
  check_i64 "sha256 guest = host"
    (Core.Engine.reg g_q R.RAX)
    (Core.Engine.reg g_r R.RAX);
  check_bool "digest nonzero" true (Core.Engine.reg g_r R.RAX <> 0L)

let test_unlinked_import_falls_back () =
  (* A function absent from the IDL is translated, even under risotto. *)
  let image = linked_image "strlen" strlen_driver in
  let eng = Core.Engine.create ~idl:[] Core.Config.risotto image in
  let g = Core.Engine.run eng in
  check_i64 "guest fallback" 5L (Core.Engine.reg g R.RAX);
  check_int "no host call" 0 g.Core.Engine.arm.Arm.Machine.host_calls;
  check_bool "unresolved recorded" true
    (Linker.Link.unresolved (Core.Engine.links eng) = [ "strlen" ])

let test_guest_clone () =
  (* The guest spawns 3 workers via the clone syscall; each adds its
     argument to an accumulator and signals a done-counter; the main
     thread spin-waits on the counter.  Exercises guest-initiated
     concurrency under every configuration. *)
  let acc = I.abs 0x7100L and done_ = I.abs 0x7108L in
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RSI, 10L));
      Call_lbl "spawn";
      Ins (I.Mov_ri (R.RSI, 20L));
      Call_lbl "spawn";
      Ins (I.Mov_ri (R.RSI, 30L));
      Call_lbl "spawn";
      Label "wait";
      Ins (I.Load (R.RBX, done_));
      Ins (I.Cmp (R.RBX, I.I 3L));
      Jcc_lbl (I.Ne, "wait");
      Ins (I.Load (R.R13, acc));
      Ins I.Hlt;
      (* spawn(rsi = worker argument): clone(worker, rsi) *)
      Label "spawn";
      Ins (I.Mov_ri (R.RAX, 56L));
      Mov_lbl (R.RDI, "worker");
      Ins I.Syscall;
      Ins I.Ret;
      (* worker(rdi = amount) *)
      Label "worker";
      Ins (I.Mov_rr (R.R8, R.RDI));
      Ins (I.Lock_xadd (acc, R.R8));
      Ins (I.Mov_ri (R.R8, 1L));
      Ins (I.Lock_xadd (done_, R.R8));
      Ins I.Hlt;
    ]
  in
  List.iter
    (fun config ->
      let image = build items in
      let eng = Core.Engine.create config image in
      let main = Core.Engine.spawn eng ~tid:0 ~entry:image.Image.Gelf.entry () in
      let all =
        Core.Engine.threads (Core.Engine.run_concurrent eng [ main ])
      in
      check_int (config.Core.Config.name ^ ": four threads ran") 4
        (List.length all);
      check_i64
        (config.Core.Config.name ^ ": accumulated")
        60L (Core.Engine.reg main R.R13))
    Core.Config.all

(* ------------------------------------------------------------------ *)
(* Persistent translation cache                                        *)

let test_persistent_cache () =
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RBX, 40L));
      Label "loop";
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]
  in
  let image = build items in
  let path = Filename.temp_file "risotto" ".tc" in
  (* First engine: translate and save. *)
  let eng1 = Core.Engine.create Core.Config.risotto image in
  let g1 = Core.Engine.run eng1 in
  let saved = Core.Engine.save_cache eng1 path in
  check_bool "blocks saved" true (saved >= 2);
  (* Second engine: load, run, and translate nothing. *)
  let eng2 = Core.Engine.create Core.Config.risotto image in
  let loaded =
    match Core.Engine.load_cache eng2 path with
    | Ok n -> n
    | Error f -> Alcotest.failf "cache load failed: %s" (Core.Fault.to_string f)
  in
  check_int "all blocks loaded" saved loaded;
  let g2 = Core.Engine.run eng2 in
  check_int "no retranslation" 0
    (Core.Engine.stats eng2).Core.Engine.blocks_translated;
  check_i64 "same result" (Core.Engine.reg g1 R.RBX) (Core.Engine.reg g2 R.RBX);
  check_int "same cycles" (Core.Engine.cycles g1) (Core.Engine.cycles g2);
  (* Wrong config is rejected (as a fault, not an exception). *)
  let eng3 = Core.Engine.create Core.Config.qemu image in
  check_bool "config mismatch rejected" true
    (match Core.Engine.load_cache eng3 path with
    | Error { Core.Fault.kind = Core.Fault.Cache_corrupt; _ } -> true
    | Ok _ | Error _ -> false);
  Sys.remove path

let () =
  Alcotest.run "core"
    [
      ( "frontend",
        [
          Alcotest.test_case "risotto fences (Fig 7a)" `Quick
            test_frontend_risotto_fences;
          Alcotest.test_case "qemu fences (Fig 2)" `Quick
            test_frontend_qemu_fences;
          Alcotest.test_case "no fences" `Quick test_frontend_no_fences;
          Alcotest.test_case "block cap" `Quick test_frontend_block_cap;
          Alcotest.test_case "mfence" `Quick test_frontend_mfence;
        ] );
      ( "backend",
        [
          Alcotest.test_case "CAS lowering strategies" `Quick
            test_backend_cas_lowering;
          Alcotest.test_case "register allocation" `Quick
            test_backend_register_pressure_ok;
        ] );
      ( "engine",
        [
          Alcotest.test_case "block cache" `Quick test_block_cache;
          Alcotest.test_case "exit syscall" `Quick test_exit_code_via_syscall;
          Alcotest.test_case "write syscall" `Quick test_write_syscall_output;
          Alcotest.test_case "concurrent xadd sum" `Quick
            test_concurrent_threads_sum;
          Alcotest.test_case "guest clone syscall" `Quick test_guest_clone;
          Alcotest.test_case "fib across configs" `Quick test_fib_program;
        ] );
      ("differential", props);
      ( "translation cache",
        [ Alcotest.test_case "save/load round trip" `Quick test_persistent_cache ] );
      ( "host linker",
        [
          Alcotest.test_case "PLT interception" `Quick
            test_plt_interception_strlen;
          Alcotest.test_case "digest agreement" `Quick
            test_digest_agrees_across_linking;
          Alcotest.test_case "fallback without IDL" `Quick
            test_unlinked_import_falls_back;
        ] );
    ]
