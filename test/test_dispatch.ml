(* The dispatch layer: TB chaining, the per-thread jump cache and
   hot-trace superblocks.  The core claim under test is that none of it
   is observable in guest results — chained/superblocked execution is
   state-identical to the unchained baseline on example programs, on
   QCheck-generated programs, and under fault injection — while the
   stats prove the fast paths actually engaged. *)

module I = X86.Insn
module R = X86.Reg
module Op = Tcg.Op
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_i64 = Alcotest.check Alcotest.int64
let check_bool = Alcotest.check Alcotest.bool

let build items = Image.Gelf.build ~entry:"main" items

let run_config config image =
  let eng = Core.Engine.create config image in
  let g = Core.Engine.run eng in
  (g, eng)

(* Guest-visible state: registers RAX..R15 plus memory. *)
let state g eng =
  ( Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
    Memsys.Mem.dump (Core.Engine.memory eng) )

let variants config =
  [
    ("chained", config);
    ("unchained", { config with Core.Config.chain = false });
    ("traced", { config with Core.Config.trace_threshold = 3 });
  ]

(* ------------------------------------------------------------------ *)
(* Example programs                                                    *)

let countdown_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, 25L));
    Label "loop";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RBX));
    Ins (I.Load (R.RCX, { I.base = None; index = None; disp = 0x5000L }));
    Ins (I.Alu (I.Add, R.RDX, I.R R.RCX));
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins I.Hlt;
  ]

let fact_items =
  (* The gelf_tool demo image: factorial through call/ret. *)
  [
    Label "main";
    Ins (I.Mov_ri (R.RDI, 10L));
    Call_lbl "fact";
    Ins (I.Store ({ I.base = None; index = None; disp = 0x5000L }, I.R R.RAX));
    Ins I.Hlt;
    Label "fact";
    Ins (I.Mov_ri (R.RAX, 1L));
    Label "floop";
    Ins (I.Test (R.RDI, I.R R.RDI));
    Jcc_lbl (I.E, "fdone");
    Ins (I.Alu (I.Imul, R.RAX, I.R R.RDI));
    Ins (I.Dec R.RDI);
    Jmp_lbl "floop";
    Label "fdone";
    Ins I.Ret;
  ]

(* A loop whose body overflows the 32-insn block cap, so it splits into
   two blocks joined by an unconditional Goto_tb — the seam a
   superblock merges fences and memory ops across. *)
let split_items =
  let body =
    List.concat_map
      (fun k ->
        let m = { I.base = None; index = None; disp = Int64.of_int (0x6000 + (8 * k)) } in
        [
          Ins (I.Store (m, I.R R.RSI));
          Ins (I.Load (R.RDI, m));
          Ins (I.Alu (I.Add, R.RSI, I.R R.RDI));
        ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
  in
  [ Label "main"; Ins (I.Mov_ri (R.RBX, 20L)); Ins (I.Mov_ri (R.RSI, 7L)); Label "loop" ]
  @ body
  @ [
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]

let example_programs =
  [ ("countdown", countdown_items); ("fact", fact_items); ("split", split_items) ]

let test_chain_parity_examples () =
  List.iter
    (fun config ->
      List.iter
        (fun (pname, items) ->
          let image = build items in
          let reference = ref None in
          List.iter
            (fun (vname, config) ->
              let g, eng = run_config config image in
              check_bool
                (Printf.sprintf "%s/%s/%s no trap" config.Core.Config.name
                   pname vname)
                true
                (g.Core.Engine.trap = None);
              let s = state g eng in
              match !reference with
              | None -> reference := Some s
              | Some r ->
                  check_bool
                    (Printf.sprintf "%s/%s/%s state" config.Core.Config.name
                       pname vname)
                    true (s = r))
            (variants config))
        example_programs)
    Core.Config.all

let test_chain_does_not_change_cycles () =
  (* Pure chaining executes the same code in the same order: cycle
     counts must be bit-identical to the unchained baseline. *)
  List.iter
    (fun (pname, items) ->
      let image = build items in
      let g1, _ = run_config Core.Config.risotto image in
      let g2, _ =
        run_config { Core.Config.risotto with Core.Config.chain = false } image
      in
      check_int (pname ^ " cycles") (Core.Engine.cycles g1)
        (Core.Engine.cycles g2))
    example_programs

let test_stats_engage () =
  let image = build countdown_items in
  let g, eng =
    run_config { Core.Config.risotto with Core.Config.trace_threshold = 3 }
      image
  in
  let st = Core.Engine.stats eng in
  check_bool "no trap" true (g.Core.Engine.trap = None);
  check_bool "edges patched" true (st.Core.Engine.chained > 0);
  check_bool "chain hits" true (st.Core.Engine.chain_hits > 0);
  check_bool "superblock formed" true (st.Core.Engine.superblocks >= 1);
  check_bool "fewer dispatches than loop iterations" true
    (st.Core.Engine.blocks_executed < 25);
  (* fact returns to the same pc on every call: the computed-jump path
     is served by the per-thread jump cache. *)
  let looped_calls =
    [
      Label "main";
      Ins (I.Mov_ri (R.R15, 8L));
      Label "loop";
      Call_lbl "fn";
      Ins (I.Alu (I.Sub, R.R15, I.I 1L));
      Ins (I.Cmp (R.R15, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
      Label "fn";
      Ins (I.Inc R.RAX);
      Ins I.Ret;
    ]
  in
  let _, eng = run_config Core.Config.risotto (build looped_calls) in
  let st = Core.Engine.stats eng in
  check_bool "jump-cache hits on repeated returns" true
    (st.Core.Engine.jmp_cache_hits > 0)

let test_no_chain_disables_everything () =
  let image = build countdown_items in
  let config =
    { Core.Config.risotto with Core.Config.chain = false; trace_threshold = 3 }
  in
  let g, eng = run_config config image in
  let st = Core.Engine.stats eng in
  check_bool "no trap" true (g.Core.Engine.trap = None);
  check_int "no edges" 0 st.Core.Engine.chained;
  check_int "no chain hits" 0 st.Core.Engine.chain_hits;
  check_int "no superblocks (need chaining)" 0 st.Core.Engine.superblocks;
  check_int "no edges installed" 0 (Core.Engine.chained_edges eng)

(* ------------------------------------------------------------------ *)
(* Fault-injection corpus: chained = unchained under degraded modes    *)

let inject_corpus =
  [
    [ Core.Inject.Nth (Core.Inject.Compile, 1) ];
    [ Core.Inject.Always Core.Inject.Compile ];
    [ Core.Inject.Seeded { site = Core.Inject.Compile; seed = 42L; permille = 500 } ];
    [ Core.Inject.Nth (Core.Inject.Decode, 3) ];
  ]

let test_chain_parity_under_injection () =
  List.iter
    (fun plan ->
      List.iter
        (fun (pname, items) ->
          let image = build items in
          let run chain trace_threshold =
            let config =
              {
                Core.Config.risotto with
                Core.Config.inject = plan;
                chain;
                trace_threshold;
              }
            in
            let g, eng = run_config config image in
            (state g eng, Core.Engine.trap g)
          in
          let s1, t1 = run true 3 in
          let s2, t2 = run false 0 in
          check_bool (pname ^ " state parity under injection") true (s1 = s2);
          check_bool (pname ^ " trap parity under injection") true
            (Option.is_some t1 = Option.is_some t2))
        example_programs)
    inject_corpus

let test_trap_isolated_through_chained_edge () =
  (* Two threads share a hot (chained) loop, then jump to a
     per-thread continuation in R8.  The bad thread's continuation is
     undecodable: it must trap alone, after riding the same patched
     edges as the good thread. *)
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RBX, 12L));
      Label "loop";
      Ins (I.Alu (I.Add, R.RDX, I.R R.RBX));
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      (* computed jump: push the per-thread continuation and ret *)
      Ins (I.Push R.R8);
      Ins I.Ret;
      Label "good_end";
      Ins I.Hlt;
    ]
  in
  let image = build items in
  let good_end = List.assoc "good_end" image.Image.Gelf.symbols in
  let eng =
    Core.Engine.create
      { Core.Config.risotto with Core.Config.trace_threshold = 3 }
      image
  in
  let entry = image.Image.Gelf.entry in
  let good =
    Core.Engine.spawn eng ~tid:0 ~entry ~regs:[ (R.R8, good_end) ] ()
  in
  let bad =
    Core.Engine.spawn eng ~tid:1 ~entry ~regs:[ (R.R8, 0xDEAD000L) ] ()
  in
  (match Core.Engine.run_concurrent eng [ good; bad ] with
  | Core.Engine.Completed _ -> ()
  | Core.Engine.Exhausted _ -> Alcotest.fail "watchdog fired");
  check_bool "good thread clean" true (good.Core.Engine.trap = None);
  check_i64 "good thread result" 78L (Core.Engine.reg good R.RDX);
  check_bool "bad thread trapped" true (bad.Core.Engine.trap <> None);
  check_i64 "bad thread got through the loop" 78L (Core.Engine.reg bad R.RDX);
  let st = Core.Engine.stats eng in
  check_bool "edges were patched" true (st.Core.Engine.chained > 0);
  check_int "exactly one trap" 1 st.Core.Engine.traps

(* ------------------------------------------------------------------ *)
(* Superblock stitching: interp-differential vs the block sequence     *)

let translate_at config image pc =
  let fe =
    Core.Frontend.create config image
      (Linker.Link.resolve image (Linker.Idl.parse Linker.Hostlib.idl_text))
  in
  Tcg.Pipeline.run config.Core.Config.passes (Core.Frontend.translate fe pc)

let interp_env () =
  let mem = Memsys.Mem.create () in
  let env =
    Tcg.Interp.create_env
      ~helpers:(fun name _ -> raise (Tcg.Interp.No_helper name))
      mem
  in
  (* Deterministic non-trivial starting state. *)
  for r = 0 to 15 do
    env.Tcg.Interp.temps.(Op.guest_reg r) <- Int64.of_int (100 + (7 * r))
  done;
  env.Tcg.Interp.temps.(R.index R.RSP) <- Core.Engine.stack_top 0;
  env

(* Run [a] then (on a Next_tb exit into it) [b]; return the final
   guest-visible interp state. *)
let interp_state blocks_by_pc first env =
  let rec go pc steps =
    if steps > 64 then Alcotest.fail "interp runaway"
    else
      match List.assoc_opt pc blocks_by_pc with
      | None -> ()
      | Some b -> (
          match Tcg.Interp.exec_block env b with
          | Tcg.Interp.Next_tb pc' | Tcg.Interp.Jump pc' -> go pc' (steps + 1)
          | Tcg.Interp.Halted -> ()
          | Tcg.Interp.Trapped (k, c) ->
              Alcotest.fail (Printf.sprintf "interp trap %s: %s" k c))
  in
  go first 0;
  ( Array.sub env.Tcg.Interp.temps 0 16,
    Memsys.Mem.dump env.Tcg.Interp.mem )

let superblock_differential_case config items =
  let image = build items in
  let pc_a = image.Image.Gelf.entry in
  let a = translate_at config image pc_a in
  let pc_b = Int64.add pc_a (Int64.of_int a.Tcg.Block.guest_len) in
  let b = translate_at config image pc_b in
  let stitched = Tcg.Pipeline.run config.Core.Config.passes (Tcg.Block.concat [ a; b ]) in
  let seq = interp_state [ (pc_a, a); (pc_b, b) ] pc_a (interp_env ()) in
  let sup = interp_state [ (pc_a, stitched) ] pc_a (interp_env ()) in
  seq = sup

let big_straightline_items =
  (* > 32 instructions: the frontend splits this into two blocks joined
     by an unconditional Goto_tb, i.e. a mergeable seam. *)
  let body =
    List.concat_map
      (fun k ->
        let m = { I.base = None; index = None; disp = Int64.of_int (0x5000 + (8 * (k mod 6))) } in
        [
          Ins (I.Store (m, I.R R.RAX));
          Ins (I.Load (R.RBX, m));
          Ins (I.Alu (I.Add, R.RAX, I.R R.RBX));
          Ins I.Mfence;
        ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  (Label "main" :: body) @ [ Ins I.Hlt ]

let test_superblock_differential_hand () =
  List.iter
    (fun config ->
      check_bool
        (config.Core.Config.name ^ " stitched = sequential")
        true
        (superblock_differential_case config big_straightline_items);
      (* The stitch must actually help under fence merging: fewer or
         equal fences than the two blocks separately. *)
      let image = build big_straightline_items in
      let pc_a = image.Image.Gelf.entry in
      let a = translate_at config image pc_a in
      let pc_b = Int64.add pc_a (Int64.of_int a.Tcg.Block.guest_len) in
      let b = translate_at config image pc_b in
      let stitched =
        Tcg.Pipeline.run config.Core.Config.passes (Tcg.Block.concat [ a; b ])
      in
      check_bool
        (config.Core.Config.name ^ " stitched fences <= sum")
        true
        (Tcg.Block.fence_count stitched
        <= Tcg.Block.fence_count a + Tcg.Block.fence_count b))
    Core.Config.all

let arb_straightline_body =
  let open QCheck in
  let reg = map R.of_index (int_range 0 5) in
  let disp = map (fun k -> Int64.of_int (0x5000 + (8 * k))) (int_range 0 7) in
  let mem_op = map (fun disp -> { I.base = None; index = None; disp }) disp in
  let alu = oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor ] in
  let insn =
    oneof
      [
        map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair reg small_int);
        map (fun (r, m) -> I.Load (r, m)) (pair reg mem_op);
        map (fun (m, r) -> I.Store (m, I.R r)) (pair mem_op reg);
        map (fun (op, r, r2) -> I.Alu (op, r, I.R r2)) (triple alu reg reg);
        map (fun r -> I.Inc r) reg;
        map (fun r -> I.Dec r) reg;
        oneofl [ I.Mfence; I.Nop ];
      ]
  in
  set_print
    (fun items ->
      String.concat "\n"
        (List.filter_map
           (function Ins i -> Some (Fmt.str "%a" I.pp i) | _ -> None)
           items))
    (map
       (fun insns ->
         (* Pad past the 32-insn block cap so the program always splits
            into (at least) two blocks with a straight-line seam. *)
         let insns = insns @ List.concat (List.map (fun i -> [ i; I.Nop ]) insns) in
         let pad = List.init 40 (fun _ -> I.Nop) in
         (Label "main" :: List.map (fun i -> Ins i) (insns @ pad)) @ [ Ins I.Hlt ])
       (small_list insn))

let superblock_differential_prop =
  QCheck.Test.make ~name:"stitched superblock = block sequence (interp)"
    ~count:150 arb_straightline_body (fun items ->
      List.for_all
        (fun config -> superblock_differential_case config items)
        [ Core.Config.qemu; Core.Config.risotto ])

(* ------------------------------------------------------------------ *)
(* Cache round-trips and edge invalidation                             *)

let test_roundtrip_invalidates_edges () =
  let path = Filename.temp_file "risotto" ".rstc" in
  let image = build countdown_items in
  let config = { Core.Config.risotto with Core.Config.trace_threshold = 3 } in
  let eng = Core.Engine.create config image in
  let g = Core.Engine.run eng in
  check_bool "hot run clean" true (g.Core.Engine.trap = None);
  let st = Core.Engine.stats eng in
  check_bool "edges live" true (Core.Engine.chained_edges eng > 0);
  check_bool "superblock live" true (st.Core.Engine.superblocks >= 1);
  let gen0 = Core.Engine.chain_generation eng in
  ignore (Core.Engine.save_cache eng path);
  (match Core.Engine.load_cache eng path with
  | Ok n -> check_bool "loaded blocks" true (n > 0)
  | Error f -> Alcotest.fail (Core.Fault.to_string f));
  check_int "generation bumped" (gen0 + 1) (Core.Engine.chain_generation eng);
  check_int "edges invalidated" 0 (Core.Engine.chained_edges eng);
  let translated_before = (Core.Engine.stats eng).Core.Engine.blocks_translated in
  let g2 =
    Core.Engine.spawn eng ~tid:7 ~entry:image.Image.Gelf.entry ()
  in
  Core.Engine.run_thread eng g2;
  check_bool "rerun clean" true (g2.Core.Engine.trap = None);
  check_i64 "rerun result" (Core.Engine.reg g R.RDX) (Core.Engine.reg g2 R.RDX);
  check_int "no retranslation after reload" translated_before
    (Core.Engine.stats eng).Core.Engine.blocks_translated;
  check_bool "edges re-patched on rerun" true (Core.Engine.chained_edges eng > 0);
  Sys.remove path

let test_reset_flushes_chains () =
  let image = build countdown_items in
  let config = { Core.Config.risotto with Core.Config.trace_threshold = 3 } in
  let eng = Core.Engine.create config image in
  let g1 = Core.Engine.run eng in
  let gen0 = Core.Engine.chain_generation eng in
  let translated = (Core.Engine.stats eng).Core.Engine.blocks_translated in
  check_bool "edges live" true (Core.Engine.chained_edges eng > 0);
  Core.Engine.reset eng;
  check_bool "generation bumped" true (Core.Engine.chain_generation eng > gen0);
  check_int "no edges" 0 (Core.Engine.chained_edges eng);
  let g2 = Core.Engine.spawn eng ~tid:3 ~entry:image.Image.Gelf.entry () in
  Core.Engine.run_thread eng g2;
  check_bool "rerun clean" true (g2.Core.Engine.trap = None);
  check_i64 "same result" (Core.Engine.reg g1 R.RDX) (Core.Engine.reg g2 R.RDX);
  check_bool "retranslated after reset" true
    ((Core.Engine.stats eng).Core.Engine.blocks_translated > translated)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let test_scheduler_staggered_threads () =
  (* Threads finish at different times: the live counter must track
     them without re-filtering, and all must complete. *)
  let items =
    [
      Label "main";
      Label "loop";
      Ins (I.Mov_ri (R.R8, 1L));
      Ins (I.Lock_xadd ({ I.base = Some R.R14; index = None; disp = 0L }, R.R8));
      Ins (I.Alu (I.Sub, R.R15, I.I 1L));
      Ins (I.Cmp (R.R15, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]
  in
  let image = build items in
  let eng = Core.Engine.create Core.Config.risotto image in
  let counts = [ 3; 11; 7; 1; 19; 5 ] in
  let threads =
    List.mapi
      (fun tid n ->
        Core.Engine.spawn eng ~tid ~entry:image.Image.Gelf.entry
          ~regs:[ (R.R14, 0x7000L); (R.R15, Int64.of_int n) ]
          ())
      counts
  in
  (match Core.Engine.run_concurrent eng threads with
  | Core.Engine.Completed ts ->
      check_int "all threads reported" (List.length counts) (List.length ts)
  | Core.Engine.Exhausted _ -> Alcotest.fail "watchdog fired");
  check_i64 "sum of all increments"
    (Int64.of_int (List.fold_left ( + ) 0 counts))
    (Memsys.Mem.load (Core.Engine.memory eng) 0x7000L)

let test_scheduler_watchdog_budget () =
  let items = [ Label "main"; Label "spin"; Jmp_lbl "spin" ] in
  let image = build items in
  let eng = Core.Engine.create Core.Config.risotto image in
  let threads =
    List.init 2 (fun tid ->
        Core.Engine.spawn eng ~tid ~entry:image.Image.Gelf.entry ())
  in
  match Core.Engine.run_concurrent ~max_blocks:10 eng threads with
  | Core.Engine.Completed _ -> Alcotest.fail "spin loops completed?"
  | Core.Engine.Exhausted { blocks; live_threads; threads = ts } ->
      check_int "budget honoured" 10 blocks;
      check_int "both live" 2 live_threads;
      check_int "threads reported" 2 (List.length ts)

let () =
  Alcotest.run "dispatch"
    [
      ( "parity",
        [
          Alcotest.test_case "chained = unchained on example programs" `Quick
            test_chain_parity_examples;
          Alcotest.test_case "chaining leaves cycles unchanged" `Quick
            test_chain_does_not_change_cycles;
          Alcotest.test_case "parity under fault injection" `Quick
            test_chain_parity_under_injection;
        ] );
      ( "fast paths",
        [
          Alcotest.test_case "chain, jump-cache and superblock stats engage"
            `Quick test_stats_engage;
          Alcotest.test_case "--no-chain disables chaining and traces" `Quick
            test_no_chain_disables_everything;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "trap isolated behind patched edges" `Quick
            test_trap_isolated_through_chained_edge;
        ] );
      ( "superblocks",
        [
          Alcotest.test_case "hand-written stitch differential" `Quick
            test_superblock_differential_hand;
          QCheck_alcotest.to_alcotest superblock_differential_prop;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "save/load round-trip invalidates edges" `Quick
            test_roundtrip_invalidates_edges;
          Alcotest.test_case "reset flushes chains and retranslates" `Quick
            test_reset_flushes_chains;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "staggered thread completion" `Quick
            test_scheduler_staggered_threads;
          Alcotest.test_case "watchdog budget with live threads" `Quick
            test_scheduler_watchdog_budget;
        ] );
    ]
