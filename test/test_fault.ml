(* The fault-isolation layer: typed traps, per-thread fault containment,
   interpreter fallback under injected backend failures, lazy link trap
   stubs, the run_concurrent watchdog, and persistent-cache recovery. *)

module I = X86.Insn
module R = X86.Reg
module F = Core.Fault
module Inj = Core.Inject
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_i64 = Alcotest.check Alcotest.int64
let check_bool = Alcotest.check Alcotest.bool

let build items = Image.Gelf.build ~entry:"main" items

(* A small program: R13 := 77 after a short countdown. *)
let countdown_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RBX, 5L));
    Label "loop";
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins (I.Mov_ri (R.R13, 77L));
    Ins I.Hlt;
  ]

(* ------------------------------------------------------------------ *)
(* Injection plans                                                     *)

let test_inject_nth () =
  let t = Inj.create [ Inj.Nth (Inj.Compile, 3) ] in
  let fired = List.init 5 (fun _ -> Inj.fire t Inj.Compile) in
  check_bool "only the 3rd fires" true
    (fired = [ false; false; true; false; false ]);
  check_int "occurrences counted" 5 (Inj.count t Inj.Compile);
  check_int "other sites unaffected" 0 (Inj.count t Inj.Decode)

let test_inject_seeded_deterministic () =
  let seq plan =
    let t = Inj.create plan in
    List.init 200 (fun _ -> Inj.fire t Inj.Decode)
  in
  let plan seed = [ Inj.Seeded { site = Inj.Decode; seed; permille = 300 } ] in
  check_bool "same seed, same schedule" true (seq (plan 42L) = seq (plan 42L));
  check_bool "different seed, different schedule" true
    (seq (plan 42L) <> seq (plan 43L));
  let hits = List.filter Fun.id (seq (plan 42L)) in
  check_bool "some occurrences fire" true (hits <> []);
  check_bool "not all occurrences fire" true (List.length hits < 200)

let test_inject_parse () =
  check_bool "plan parses" true
    (Inj.plan_of_string "nth:compile:1,always:decode,seeded:host-call:42:250"
    = Ok
        [
          Inj.Nth (Inj.Compile, 1);
          Inj.Always Inj.Decode;
          Inj.Seeded { site = Inj.Host_call; seed = 42L; permille = 250 };
        ]);
  check_bool "bad site rejected" true
    (match Inj.plan_of_string "always:flux" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Fault isolation between guest threads                               *)

let test_decode_fault_isolated () =
  let image = build countdown_items in
  let eng = Core.Engine.create Core.Config.risotto image in
  let good = Core.Engine.spawn eng ~tid:0 ~entry:image.Image.Gelf.entry () in
  (* Thread 1 starts outside the text section: its first block is a
     decode trap. *)
  let bad_pc = 0xDEAD0L in
  let bad = Core.Engine.spawn eng ~tid:1 ~entry:bad_pc () in
  (match Core.Engine.run_concurrent eng [ good; bad ] with
  | Core.Engine.Completed _ -> ()
  | Core.Engine.Exhausted _ -> Alcotest.fail "watchdog should not fire");
  check_bool "good thread unaffected" true
    (good.Core.Engine.finished && good.Core.Engine.trap = None);
  check_i64 "good thread completed its work" 77L (Core.Engine.reg good R.R13);
  (match bad.Core.Engine.trap with
  | Some f ->
      check_bool "decode fault" true (f.F.kind = F.Decode_fault);
      check_bool "faulting pc recorded" true (f.F.pc = Some bad_pc);
      check_bool "faulting tid recorded" true (f.F.tid = Some 1)
  | None -> Alcotest.fail "bad thread should have trapped");
  check_int "one trap counted" 1 (Core.Engine.stats eng).Core.Engine.traps

(* ------------------------------------------------------------------ *)
(* Interpreter fallback when the backend cannot compile                *)

let test_interp_fallback_correct () =
  List.iter
    (fun plan ->
      let image = build countdown_items in
      let clean = Core.Engine.create Core.Config.risotto image in
      let g_clean = Core.Engine.run clean in
      let cfg = { Core.Config.risotto with inject = plan } in
      let eng = Core.Engine.create cfg image in
      let g = Core.Engine.run eng in
      check_bool "no trap" true (g.Core.Engine.trap = None);
      check_bool "fallback observed" true
        ((Core.Engine.stats eng).Core.Engine.interp_fallbacks > 0);
      List.iter
        (fun r ->
          check_i64
            (Printf.sprintf "reg %s agrees" (R.name r))
            (Core.Engine.reg g_clean r) (Core.Engine.reg g r))
        R.all)
    [ [ Inj.Always Inj.Compile ]; [ Inj.Nth (Inj.Compile, 1) ] ]

(* ------------------------------------------------------------------ *)
(* Host-call injection                                                 *)

let sqrt_items =
  [
    Label "main";
    Ins (I.Mov_ri (R.RDI, Int64.bits_of_float 2.0));
    Call_lbl "sqrt@plt";
    Ins (I.Mov_rr (R.R13, R.RAX));
    Ins I.Hlt;
  ]

let test_host_call_injection () =
  let image =
    Image.Gelf.build ~entry:"main"
      ~imports:[ Harness.Guest_libs.import "sqrt" ]
      sqrt_items
  in
  let cfg =
    { Core.Config.risotto with inject = [ Inj.Nth (Inj.Host_call, 1) ] }
  in
  let eng = Core.Engine.create cfg image in
  let g = Core.Engine.run eng in
  (match g.Core.Engine.trap with
  | Some f -> check_bool "link fault" true (f.F.kind = F.Link_fault)
  | None -> Alcotest.fail "injected host-call failure should trap");
  (* Without injection the same image completes. *)
  let eng2 = Core.Engine.create Core.Config.risotto image in
  let g2 = Core.Engine.run eng2 in
  check_bool "clean run completes" true (g2.Core.Engine.trap = None)

(* ------------------------------------------------------------------ *)
(* Lazy link trap stubs                                                *)

let mystery_import =
  { Image.Gelf.name = "mystery"; guest_impl = [ Label "mystery@impl"; Ins I.Ret ] }

let mystery_idl = Linker.Idl.parse "i64 mystery(i64);\nf64 sqrt(f64);"

let test_link_trap_stub () =
  let image =
    Image.Gelf.build ~entry:"main" ~imports:[ mystery_import ]
      [ Label "main"; Call_lbl "mystery@plt"; Ins I.Hlt ]
  in
  (* The IDL promises [mystery] but the host library has no such
     symbol: resolution records the cause and the PLT slot becomes a
     trap stub. *)
  let eng = Core.Engine.create ~idl:mystery_idl Core.Config.risotto image in
  check_bool "cause recorded" true
    (Linker.Link.unresolved_cause (Core.Engine.links eng) "mystery"
    = Some Linker.Link.Missing_host_symbol);
  let g = Core.Engine.run eng in
  (match g.Core.Engine.trap with
  | Some f -> check_bool "link fault on call" true (f.F.kind = F.Link_fault)
  | None -> Alcotest.fail "calling an unresolvable import should trap")

let test_link_trap_is_lazy () =
  (* Same unresolvable import, but never called: no fault. *)
  let image =
    Image.Gelf.build ~entry:"main" ~imports:[ mystery_import ]
      [ Label "main"; Ins (I.Mov_ri (R.R13, 9L)); Ins I.Hlt ]
  in
  let eng = Core.Engine.create ~idl:mystery_idl Core.Config.risotto image in
  let g = Core.Engine.run eng in
  check_bool "no trap" true (g.Core.Engine.trap = None);
  check_i64 "completed" 9L (Core.Engine.reg g R.R13)

let test_no_idl_signature_still_falls_back () =
  (* An import the IDL does not describe keeps the existing behaviour:
     guest translation of the bundled implementation, no trap. *)
  let image =
    Image.Gelf.build ~entry:"main"
      ~imports:[ Harness.Guest_libs.import "sqrt" ]
      sqrt_items
  in
  let eng = Core.Engine.create ~idl:[] Core.Config.risotto image in
  check_bool "cause is missing signature" true
    (Linker.Link.unresolved_cause (Core.Engine.links eng) "sqrt"
    = Some Linker.Link.No_idl_signature);
  let g = Core.Engine.run eng in
  check_bool "no trap" true (g.Core.Engine.trap = None);
  check_bool "guest sqrt ran" true
    (abs_float (Int64.float_of_bits (Core.Engine.reg g R.R13) -. sqrt 2.0)
    < 1e-6)

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)

let test_watchdog_exhausted () =
  let image = build [ Label "main"; Jmp_lbl "main" ] in
  let eng = Core.Engine.create Core.Config.risotto image in
  let g = Core.Engine.spawn eng ~tid:0 ~entry:image.Image.Gelf.entry () in
  match Core.Engine.run_concurrent ~max_blocks:10 eng [ g ] with
  | Core.Engine.Exhausted { blocks; live_threads; threads } ->
      check_int "budget consumed" 10 blocks;
      check_int "one live thread" 1 live_threads;
      check_int "threads reported" 1 (List.length threads);
      check_bool "thread not finished" true (not g.Core.Engine.finished)
  | Core.Engine.Completed _ -> Alcotest.fail "spin loop cannot complete"

(* ------------------------------------------------------------------ *)
(* Persistent-cache robustness                                         *)

let with_cache_file f =
  let image = build countdown_items in
  let eng1 = Core.Engine.create Core.Config.risotto image in
  let g1 = Core.Engine.run eng1 in
  let path = Filename.temp_file "risotto_fault" ".tc" in
  let saved = Core.Engine.save_cache eng1 path in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f ~image ~path ~saved ~expect:(Core.Engine.reg g1 R.R13))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Loading a damaged cache must fail with Cache_corrupt, leave the code
   cache untouched, and still allow a correct cold run. *)
let expect_cold_recovery ~image ~path ~expect name =
  let eng = Core.Engine.create Core.Config.risotto image in
  (match Core.Engine.load_cache eng path with
  | Error f ->
      check_bool (name ^ ": cache fault") true (f.F.kind = F.Cache_corrupt)
  | Ok _ -> Alcotest.failf "%s: load should fail" name);
  let g = Core.Engine.run eng in
  check_bool (name ^ ": cold start translated") true
    ((Core.Engine.stats eng).Core.Engine.blocks_translated > 0);
  check_i64 (name ^ ": correct result after recovery") expect
    (Core.Engine.reg g R.R13)

let test_cache_roundtrip () =
  with_cache_file (fun ~image ~path ~saved ~expect ->
      let eng = Core.Engine.create Core.Config.risotto image in
      (match Core.Engine.load_cache eng path with
      | Ok n -> check_int "all entries loaded" saved n
      | Error f -> Alcotest.failf "load failed: %s" (F.to_string f));
      let g = Core.Engine.run eng in
      check_int "no retranslation" 0
        (Core.Engine.stats eng).Core.Engine.blocks_translated;
      check_i64 "same result" expect (Core.Engine.reg g R.R13))

let test_cache_corrupt_magic () =
  with_cache_file (fun ~image ~path ~saved:_ ~expect ->
      let s = read_file path in
      write_file path ("X" ^ String.sub s 1 (String.length s - 1));
      expect_cold_recovery ~image ~path ~expect "corrupt magic")

let test_cache_truncated () =
  with_cache_file (fun ~image ~path ~saved:_ ~expect ->
      let s = read_file path in
      (* Cut inside the last entry: the staged parse must discard
         everything, not commit the entries before the cut. *)
      write_file path (String.sub s 0 (String.length s - 5));
      expect_cold_recovery ~image ~path ~expect "truncated")

let test_cache_wrong_config () =
  with_cache_file (fun ~image ~path ~saved:_ ~expect ->
      let eng = Core.Engine.create Core.Config.qemu image in
      (match Core.Engine.load_cache eng path with
      | Error f ->
          check_bool "config mismatch is a cache fault" true
            (f.F.kind = F.Cache_corrupt)
      | Ok _ -> Alcotest.fail "wrong-config load should fail");
      let g = Core.Engine.run eng in
      check_i64 "qemu cold run correct" expect (Core.Engine.reg g R.R13))

let test_cache_read_injection () =
  with_cache_file (fun ~image ~path ~saved:_ ~expect ->
      let cfg =
        { Core.Config.risotto with inject = [ Inj.Nth (Inj.Cache_read, 1) ] }
      in
      let eng = Core.Engine.create cfg image in
      (match Core.Engine.load_cache eng path with
      | Error f ->
          check_bool "injected fault surfaces" true (f.F.kind = F.Cache_corrupt)
      | Ok _ -> Alcotest.fail "injected cache read should fail the load");
      let g = Core.Engine.run eng in
      check_i64 "recovered" expect (Core.Engine.reg g R.R13))

let () =
  Alcotest.run "fault"
    [
      ( "injection",
        [
          Alcotest.test_case "nth occurrence" `Quick test_inject_nth;
          Alcotest.test_case "seeded determinism" `Quick
            test_inject_seeded_deterministic;
          Alcotest.test_case "plan parsing" `Quick test_inject_parse;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "decode fault isolated to thread" `Quick
            test_decode_fault_isolated;
          Alcotest.test_case "watchdog reports exhaustion" `Quick
            test_watchdog_exhausted;
        ] );
      ( "degraded modes",
        [
          Alcotest.test_case "interp fallback correctness" `Quick
            test_interp_fallback_correct;
          Alcotest.test_case "host-call injection traps" `Quick
            test_host_call_injection;
        ] );
      ( "link traps",
        [
          Alcotest.test_case "missing host symbol traps on call" `Quick
            test_link_trap_stub;
          Alcotest.test_case "trap stubs are lazy" `Quick test_link_trap_is_lazy;
          Alcotest.test_case "no IDL signature still falls back" `Quick
            test_no_idl_signature_still_falls_back;
        ] );
      ( "persistent cache",
        [
          Alcotest.test_case "round trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "corrupt magic" `Quick test_cache_corrupt_magic;
          Alcotest.test_case "truncated" `Quick test_cache_truncated;
          Alcotest.test_case "wrong config" `Quick test_cache_wrong_config;
          Alcotest.test_case "cache-read injection" `Quick
            test_cache_read_injection;
        ] );
    ]
