(* The Domain pool and the parallel refinement sweeps: deterministic
   ordering, per-task fault capture, nesting safety, and bit-for-bit
   agreement of the parallel paths with the sequential ones across the
   full litmus catalog. *)

module P = Parallel.Pool

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)

let test_map_ordering () =
  P.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys = P.map_exn pool (fun x -> (x * 2) + 1) xs in
      Alcotest.(check (list int)) "results in input order"
        (List.map (fun x -> (x * 2) + 1) xs)
        ys)

let test_fault_capture () =
  P.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 20 Fun.id in
      let rs =
        P.map pool (fun x -> if x mod 7 = 3 then failwith "diverged" else x) xs
      in
      check_int "all tasks reported" 20 (List.length rs);
      List.iteri
        (fun i r ->
          match r with
          | Ok y ->
              check_bool "non-faulting index" false (i mod 7 = 3);
              check_int "value" i y
          | Error (f : P.fault) ->
              check_bool "faulting index" true (i mod 7 = 3);
              check_int "fault carries its index" i f.P.index;
              check_bool "original exception kept" true
                (match f.P.exn with
                | Failure msg -> msg = "diverged"
                | _ -> false))
        rs)

let test_map_exn_reraises () =
  P.with_pool ~jobs:2 (fun pool ->
      match P.map_exn pool (fun x -> if x = 5 then failwith "boom" else x)
              (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg -> check_bool "message" true (msg = "boom"))

let test_nested_map () =
  (* A task body that itself maps over the same pool must not deadlock:
     it degrades to the sequential path. *)
  P.with_pool ~jobs:3 (fun pool ->
      let ys =
        P.map_exn pool
          (fun x -> List.fold_left ( + ) 0 (P.map_exn pool Fun.id [ x; x; x ]))
          (List.init 12 Fun.id)
      in
      Alcotest.(check (list int)) "nested results"
        (List.map (fun x -> 3 * x) (List.init 12 Fun.id))
        ys)

let test_sequential_pool () =
  P.with_pool ~jobs:1 (fun pool ->
      check_int "jobs clamped to >= 1" 1 (P.jobs pool);
      let ys = P.map_exn pool (fun x -> x + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "sequential pool works" [ 2; 3; 4 ] ys)

let test_pool_reuse () =
  P.with_pool ~jobs:4 (fun pool ->
      for i = 1 to 50 do
        let ys = P.map_exn pool (fun x -> x * i) [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list int)) "batch" [ i; 2 * i; 3 * i; 4 * i; 5 * i ] ys
      done)

(* ------------------------------------------------------------------ *)
(* Parity: the parallel sweeps agree with the sequential ones           *)

let x86 = Axiom.X86_tso.model
let tcg = Axiom.Tcg_model.model
let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected
let corpus = Litmus.Catalog.mapping_corpus

let report_eq (a : Mapping.Check.report) (b : Mapping.Check.report) =
  a.Mapping.Check.name = b.Mapping.Check.name
  && a.Mapping.Check.ok = b.Mapping.Check.ok
  && a.Mapping.Check.src_behaviours = b.Mapping.Check.src_behaviours
  && a.Mapping.Check.tgt_behaviours = b.Mapping.Check.tgt_behaviours
  && a.Mapping.Check.extra = b.Mapping.Check.extra

let schemes_under_test =
  let open Mapping.Schemes in
  let rfe, rbe = risotto_rmw2_preset in
  [
    ("risotto x86->tcg", x86_to_tcg Risotto_frontend, tcg);
    ("qemu x86->tcg", x86_to_tcg Qemu_frontend, tcg);
    ("risotto-rmw2 x86->arm", x86_to_arm rfe rbe, arm_fix);
  ]

let test_check_scheme_parity () =
  (* The whole catalog, several schemes: parallel check_scheme must be
     report-for-report identical (contents and order) to sequential. *)
  P.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (name, f, tgt_model) ->
          Litmus.Enumerate.clear_caches ();
          let seq =
            Mapping.Check.check_scheme ~name f ~src_model:x86 ~tgt_model corpus
          in
          Litmus.Enumerate.clear_caches ();
          let par =
            Mapping.Check.check_scheme ~pool ~name f ~src_model:x86 ~tgt_model
              corpus
          in
          check_int (name ^ ": same number of reports") (List.length seq)
            (List.length par);
          List.iter2
            (fun a b ->
              check_bool
                (name ^ ": report for " ^ a.Mapping.Check.name ^ " identical")
                true (report_eq a b))
            seq par)
        schemes_under_test)

let test_check_parity_litmus () =
  (* Enumerate.check over the corpus through the pool vs directly. *)
  P.with_pool ~jobs:4 (fun pool ->
      let tests =
        List.map
          (fun (_, prog) ->
            { Litmus.Ast.prog; expect = Litmus.Ast.Allowed Litmus.Ast.True })
          corpus
      in
      let seq = List.map (Litmus.Enumerate.check x86) tests in
      let par = P.map_exn pool (Litmus.Enumerate.check x86) tests in
      List.iter2
        (fun (a : Litmus.Enumerate.verdict) (b : Litmus.Enumerate.verdict) ->
          check_bool "verdict ok equal" a.ok b.ok;
          check_int "consistent count equal" a.total_consistent
            b.total_consistent;
          check_bool "witnesses equal" true (a.witnesses = b.witnesses))
        seq par)

let test_fault_mid_sweep () =
  (* One program whose transformation diverges must yield a typed fault
     for exactly that corpus entry, leaving every other verdict intact. *)
  let poisoned = List.nth corpus 2 in
  let f p =
    if p == snd poisoned then failwith "scheme diverged"
    else Mapping.Schemes.(x86_to_tcg Risotto_frontend) p
  in
  P.with_pool ~jobs:4 (fun pool ->
      let rs =
        Mapping.Check.check_scheme_safe ~pool ~name:"poisoned" f ~src_model:x86
          ~tgt_model:tcg corpus
      in
      check_int "one result per corpus entry" (List.length corpus)
        (List.length rs);
      List.iteri
        (fun i r ->
          match r with
          | Ok (rep : Mapping.Check.report) ->
              check_bool "only index 2 faults" false (i = 2);
              check_bool ("verdict present for " ^ rep.Mapping.Check.name) true
                (rep.Mapping.Check.src_behaviours > 0)
          | Error (fault : P.fault) ->
              check_int "fault at the poisoned entry" 2 fault.P.index;
              check_bool "original exception preserved" true
                (match fault.P.exn with
                | Failure msg -> msg = "scheme diverged"
                | _ -> false))
        rs)

let test_pruned_matches_unpruned () =
  (* The pruned consistent-execution path keeps exactly the candidates
     the model's full predicate keeps. *)
  List.iter
    (fun (name, prog) ->
      let unpruned m =
        List.length
          (List.filter m.Axiom.Model.consistent
             (List.map fst (Litmus.Enumerate.candidates prog)))
      in
      List.iter
        (fun m ->
          check_int
            (Printf.sprintf "%s under %s" name m.Axiom.Model.name)
            (unpruned m)
            (List.length (Litmus.Enumerate.executions m prog)))
        [ x86; tcg ])
    corpus

let test_behaviours_cache () =
  Litmus.Enumerate.clear_caches ();
  let _, p = List.hd corpus in
  let cold = Litmus.Enumerate.behaviours x86 p in
  let h0, m0 = Litmus.Enumerate.cache_stats () in
  let warm = Litmus.Enumerate.behaviours x86 p in
  let h1, m1 = Litmus.Enumerate.cache_stats () in
  check_bool "cached result identical" true (cold = warm);
  check_int "second call hits" (h0 + 1) h1;
  check_int "no new miss" m0 m1;
  Litmus.Enumerate.clear_caches ();
  let recomputed = Litmus.Enumerate.behaviours x86 p in
  check_bool "recomputed after clear, same behaviours" true (cold = recomputed)

(* ------------------------------------------------------------------ *)
(* QCheck: pool map == List.map for arbitrary inputs and job counts     *)

let qcheck_map_parity =
  QCheck.Test.make ~count:50 ~name:"pool map == List.map"
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (x * 31) + (x mod 5) in
      P.with_pool ~jobs (fun pool -> P.map_exn pool f xs) = List.map f xs)

let qcheck_map_safe_parity =
  QCheck.Test.make ~count:50 ~name:"map_safe fault indices == sequential"
    QCheck.(pair (int_range 1 6) (small_list (int_range 0 20)))
    (fun (jobs, xs) ->
      let f x = if x mod 4 = 1 then failwith "odd one out" else x * 2 in
      let classify r =
        match r with Ok y -> `Ok y | Error (f : P.fault) -> `Fault f.P.index
      in
      let seq = List.map classify (P.map_safe f xs) in
      let par =
        P.with_pool ~jobs (fun pool ->
            List.map classify (P.map_safe ~pool f xs))
      in
      seq = par)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps input order" `Quick test_map_ordering;
          Alcotest.test_case "faults are per-task" `Quick test_fault_capture;
          Alcotest.test_case "map_exn reraises" `Quick test_map_exn_reraises;
          Alcotest.test_case "nested map degrades" `Quick test_nested_map;
          Alcotest.test_case "jobs=1 sequential" `Quick test_sequential_pool;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
        ] );
      ( "parity",
        [
          Alcotest.test_case "check_scheme parallel == sequential" `Quick
            test_check_scheme_parity;
          Alcotest.test_case "Enumerate.check through the pool" `Quick
            test_check_parity_litmus;
          Alcotest.test_case "fault mid-sweep is isolated" `Quick
            test_fault_mid_sweep;
          Alcotest.test_case "pruned == unpruned consistent counts" `Quick
            test_pruned_matches_unpruned;
          Alcotest.test_case "behaviours cache transparent" `Quick
            test_behaviours_cache;
        ] );
      ( "qcheck",
        List.map
          (QCheck_alcotest.to_alcotest ~verbose:false)
          [ qcheck_map_parity; qcheck_map_safe_parity ] );
    ]
