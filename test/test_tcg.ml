(* The TCG IR: interpreter, and each optimizer pass — unit tests plus a
   differential property test (optimized blocks compute the same final
   state). *)

module Op = Tcg.Op
module E = Axiom.Event

let g0 = Op.guest_reg 0
let g1 = Op.guest_reg 1
let g2 = Op.guest_reg 2
let g3 = Op.guest_reg 3
let t0 = Op.first_local
let t1 = Op.first_local + 1

let block ops =
  { Tcg.Block.guest_pc = 0x1000L; guest_len = 0; guest_insns = 0; ops }

let exec ?helpers ops =
  let mem = Memsys.Mem.create () in
  let env = Tcg.Interp.create_env ?helpers mem in
  let exit = Tcg.Interp.exec_block env (block ops) in
  (env, exit, mem)

let check_i64 = Alcotest.check Alcotest.int64
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let test_interp_basics () =
  let env, exit, _ =
    exec
      [
        Op.Movi (g0, 6L);
        Op.Binopi (Op.Mul, g0, g0, 7L);
        Op.Setcond (Op.Eq, g1, g0, g0);
        Op.Goto_tb 0x2000L;
      ]
  in
  check_i64 "mul" 42L env.Tcg.Interp.temps.(g0);
  check_i64 "setcond" 1L env.Tcg.Interp.temps.(g1);
  check_bool "exit" true (exit = Tcg.Interp.Next_tb 0x2000L)

let test_interp_memory_and_branch () =
  let env, _, mem =
    exec
      [
        Op.Movi (t0, 0x5000L);
        Op.Movi (g0, 7L);
        Op.St (g0, t0, 8L);
        Op.Ld (g1, t0, 8L);
        Op.Brcond (Op.Eq, g1, g0, 1);
        Op.Movi (g2, 111L);
        Op.Set_label 1;
        Op.Movi (g3, 222L);
        Op.Exit_halt;
      ]
  in
  check_i64 "load back" 7L env.Tcg.Interp.temps.(g1);
  check_i64 "branch taken skips" 0L env.Tcg.Interp.temps.(g2);
  check_i64 "after label" 222L env.Tcg.Interp.temps.(g3);
  check_i64 "memory" 7L (Memsys.Mem.load mem 0x5008L)

let test_interp_cas_atomic () =
  let env, _, mem =
    exec
      [
        Op.Movi (t0, 0x5000L);
        Op.Movi (g0, 0L);
        Op.Movi (g1, 9L);
        Op.Cas { old = g2; addr = t0; expect = g0; desired = g1 };
        Op.Atomic { op = `Xadd; old = g3; addr = t0; src = g1 };
        Op.Exit_halt;
      ]
  in
  check_i64 "cas old" 0L env.Tcg.Interp.temps.(g2);
  check_i64 "xadd old" 9L env.Tcg.Interp.temps.(g3);
  check_i64 "memory" 18L (Memsys.Mem.load mem 0x5000L)

let test_interp_fallthrough_fails () =
  let _, exit, _ = exec [ Op.Movi (g0, 1L) ] in
  check_bool "fall-through trapped" true
    (exit
    = Tcg.Interp.Trapped ("translate", "Tcg.Interp: block 0x1000 fell through"))

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)

let test_constfold () =
  let ops =
    Tcg.Constfold.run
      [
        Op.Movi (t0, 6L);
        Op.Movi (t1, 7L);
        Op.Binop (Op.Mul, g0, t0, t1);
        Op.Goto_tb 0L;
      ]
  in
  check_bool "folded to movi 42" true (List.mem (Op.Movi (g0, 42L)) ops)

let test_constfold_false_dep () =
  (* X = a * 0 ↝ X = 0 (§6.1) *)
  let ops =
    Tcg.Constfold.run [ Op.Binopi (Op.Mul, g0, g1, 0L); Op.Goto_tb 0L ]
  in
  check_bool "mul by zero" true (List.mem (Op.Movi (g0, 0L)) ops);
  let ops = Tcg.Constfold.run [ Op.Binop (Op.Xor, g0, g1, g1); Op.Goto_tb 0L ] in
  check_bool "xor self" true (List.mem (Op.Movi (g0, 0L)) ops);
  let ops = Tcg.Constfold.run [ Op.Binopi (Op.Add, g0, g1, 0L); Op.Goto_tb 0L ] in
  check_bool "add zero is mov" true (List.mem (Op.Mov (g0, g1)) ops)

let test_constfold_branch () =
  let ops =
    Tcg.Constfold.run
      [
        Op.Movi (t0, 1L);
        Op.Movi (t1, 1L);
        Op.Brcond (Op.Eq, t0, t1, 5);
        Op.Goto_tb 0L;
      ]
  in
  check_bool "constant brcond becomes br" true (List.mem (Op.Br 5) ops)

let test_constfold_stops_at_label () =
  let ops =
    Tcg.Constfold.run
      [
        Op.Movi (t0, 1L);
        Op.Set_label 0;
        Op.Binopi (Op.Add, g0, t0, 1L);
        Op.Goto_tb 0L;
      ]
  in
  (* After a label the constant is unknown: the add must survive. *)
  check_bool "no fold across label" true
    (List.mem (Op.Binopi (Op.Add, g0, t0, 1L)) ops)

(* ------------------------------------------------------------------ *)
(* DCE                                                                 *)

let test_dce_unread_local () =
  let ops =
    Tcg.Dce.run [ Op.Movi (t0, 5L); Op.Movi (g0, 1L); Op.Goto_tb 0L ]
  in
  check_int "dead local removed" 2 (List.length ops)

let test_dce_keeps_globals () =
  let ops = Tcg.Dce.run [ Op.Movi (g0, 5L); Op.Goto_tb 0L ] in
  check_int "global write kept" 2 (List.length ops)

let test_dce_overwritten_global () =
  let ops =
    Tcg.Dce.run [ Op.Movi (g0, 5L); Op.Movi (g0, 6L); Op.Goto_tb 0L ]
  in
  check_int "overwritten global removed" 2 (List.length ops);
  check_bool "second write survives" true (List.mem (Op.Movi (g0, 6L)) ops)

let test_dce_keeps_read_then_overwritten () =
  let ops =
    Tcg.Dce.run
      [ Op.Movi (g0, 5L); Op.Mov (g1, g0); Op.Movi (g0, 6L); Op.Goto_tb 0L ]
  in
  check_int "all four kept" 4 (List.length ops)

let test_dce_keeps_stores () =
  let ops =
    Tcg.Dce.run [ Op.Movi (t0, 0x5000L); Op.St (g0, t0, 0L); Op.Goto_tb 0L ]
  in
  check_int "store and its address kept" 3 (List.length ops)

(* ------------------------------------------------------------------ *)
(* Memory elimination (Figure 10 at IR level)                          *)

let has_load ops = List.exists (function Op.Ld _ -> true | _ -> false) ops
let count_stores ops =
  List.length (List.filter (function Op.St _ -> true | _ -> false) ops)

let test_memopt_raw () =
  let ops =
    Tcg.Memopt.run
      [ Op.St (g0, g1, 0L); Op.Ld (g2, g1, 0L); Op.Goto_tb 0L ]
  in
  check_bool "load forwarded" false (has_load ops);
  check_bool "mov inserted" true (List.mem (Op.Mov (g2, g0)) ops)

let test_memopt_raw_across_allowed_fence () =
  let ops =
    Tcg.Memopt.run
      [ Op.St (g0, g1, 0L); Op.mb E.F_ww; Op.Ld (g2, g1, 0L); Op.Goto_tb 0L ]
  in
  check_bool "F-RAW across Fww" false (has_load ops)

let test_memopt_raw_blocked_by_fmr () =
  (* The FMR pitfall: RAW must NOT be applied across an Fmr. *)
  let ops =
    Tcg.Memopt.run
      [ Op.St (g0, g1, 0L); Op.mb E.F_mr; Op.Ld (g2, g1, 0L); Op.Goto_tb 0L ]
  in
  check_bool "load survives across Fmr" true (has_load ops)

let test_memopt_rar () =
  let ops =
    Tcg.Memopt.run
      [ Op.Ld (g0, g1, 0L); Op.mb E.F_rm; Op.Ld (g2, g1, 0L); Op.Goto_tb 0L ]
  in
  check_int "one load left" 1
    (List.length (List.filter (function Op.Ld _ -> true | _ -> false) ops));
  check_bool "forwarded" true (List.mem (Op.Mov (g2, g0)) ops)

let test_memopt_waw () =
  let ops =
    Tcg.Memopt.run
      [ Op.St (g0, g1, 0L); Op.St (g2, g1, 0L); Op.Goto_tb 0L ]
  in
  check_int "first store removed" 1 (count_stores ops)

let test_memopt_waw_blocked_by_real_load () =
  let ops =
    Tcg.Memopt.run
      [
        Op.St (g0, g1, 0L);
        Op.mb E.F_mr;
        (* blocks forwarding *)
        Op.Ld (g2, g1, 0L);
        Op.St (g3, g1, 0L);
        Op.Goto_tb 0L;
      ]
  in
  check_int "both stores kept (read pins the first)" 2 (count_stores ops)

let test_memopt_different_offsets_no_alias () =
  let ops =
    Tcg.Memopt.run
      [ Op.St (g0, g1, 0L); Op.St (g2, g1, 8L); Op.Ld (g3, g1, 0L); Op.Goto_tb 0L ]
  in
  check_bool "forwarding across non-aliasing store" false (has_load ops)

let test_memopt_clobbered_base () =
  let ops =
    Tcg.Memopt.run
      [
        Op.St (g0, g1, 0L);
        Op.Binopi (Op.Add, g1, g1, 8L);
        (* base changed: key stale *)
        Op.Ld (g2, g1, 0L);
        Op.Goto_tb 0L;
      ]
  in
  check_bool "no forwarding after base change" true (has_load ops)

let test_memopt_call_clears () =
  let ops =
    Tcg.Memopt.run
      [
        Op.St (g0, g1, 0L);
        Op.Call ("helper", [], None);
        Op.Ld (g2, g1, 0L);
        Op.Goto_tb 0L;
      ]
  in
  check_bool "helper call clears tracking" true (has_load ops)

(* ------------------------------------------------------------------ *)
(* Fence merging                                                       *)

let count_fences = Tcg.Fenceopt.count

let test_fence_merge_adjacent () =
  (* Frm; Fww from the x86→IR mapping merge (§6.1 example). *)
  let ops =
    Tcg.Fenceopt.run
      [ Op.mb E.F_rm; Op.mb E.F_ww; Op.St (g0, g1, 0L); Op.Goto_tb 0L ]
  in
  check_int "merged to one" 1 (count_fences ops)

let test_fence_merge_across_pure_ops () =
  let ops =
    Tcg.Fenceopt.run
      [ Op.mb E.F_rm; Op.Movi (t0, 1L); Op.mb E.F_ww; Op.Goto_tb 0L ]
  in
  check_int "pure ops transparent" 1 (count_fences ops)

let test_fence_merge_blocked_by_memory () =
  let ops =
    Tcg.Fenceopt.run
      [ Op.mb E.F_rm; Op.Ld (g0, g1, 0L); Op.mb E.F_ww; Op.Goto_tb 0L ]
  in
  check_int "memory access blocks merging" 2 (count_fences ops)

let test_fence_drop_acq_rel () =
  let ops = Tcg.Fenceopt.run [ Op.mb E.F_acq; Op.Goto_tb 0L ] in
  check_int "Facq dropped" 0 (count_fences ops)

(* ------------------------------------------------------------------ *)
(* Differential property: the full pipeline preserves semantics.       *)

let arb_ops =
  let open QCheck in
  let temp = oneofl [ g0; g1; g2; g3; t0; t1 ] in
  let binop = oneofl [ Op.Add; Op.Sub; Op.And; Op.Or; Op.Xor; Op.Mul ] in
  let fencek = oneofl [ E.F_rm; E.F_ww; E.F_sc; E.F_mr; E.F_rr ] in
  (* addresses: base temp always holds 0x6000 (set in a prologue) *)
  let off = map (fun k -> Int64.of_int (8 * k)) (int_range 0 3) in
  let op =
    oneof
      [
        map (fun (d, i) -> Op.Movi (d, Int64.of_int i)) (pair temp small_int);
        map (fun (d, s) -> Op.Mov (d, s)) (pair temp temp);
        map (fun (o, d, a, b) -> Op.Binop (o, d, a, b)) (quad binop temp temp temp);
        map
          (fun (o, d, a, i) -> Op.Binopi (o, d, a, Int64.of_int i))
          (quad binop temp temp (int_range (-8) 8));
        map (fun (d, o) -> Op.Ld (d, t1, o)) (pair (oneofl [ g0; g1; g2; g3; t0 ]) off);
        map (fun (s, o) -> Op.St (s, t1, o)) (pair (oneofl [ g0; g1; g2; g3; t0 ]) off);
        map (fun f -> Op.mb f) fencek;
        map (fun (c, d, a, b) -> Op.Setcond (c, d, a, b))
          (quad (oneofl [ Op.Eq; Op.Ne; Op.Lt; Op.Gtu ]) temp temp temp);
      ]
  in
  small_list op

let final_state ops =
  (* Prologue pins t1 (the base pointer) and seeds the globals. *)
  let prologue =
    [
      Op.Movi (t1, 0x6000L);
      Op.Movi (g0, 3L);
      Op.Movi (g1, 5L);
      Op.Movi (g2, 7L);
      Op.Movi (g3, 11L);
    ]
  in
  let full = prologue @ ops @ [ Op.Goto_tb 0L ] in
  let env, _, mem = exec full in
  ( Array.to_list (Array.sub env.Tcg.Interp.temps 0 Op.nb_globals),
    Memsys.Mem.dump mem,
    full )

let prop_pipeline_preserves_semantics =
  QCheck.Test.make ~name:"optimizer pipeline preserves block semantics"
    ~count:500 arb_ops (fun ops ->
      let globals, mem, full = final_state ops in
      let optimized =
        (Tcg.Pipeline.run Tcg.Pipeline.risotto_default (block full)).Tcg.Block.ops
      in
      let env', _, mem' = exec optimized in
      let globals' =
        Array.to_list (Array.sub env'.Tcg.Interp.temps 0 Op.nb_globals)
      in
      globals = globals' && mem = Memsys.Mem.dump mem')

let prop_fence_merge_never_increases =
  QCheck.Test.make ~name:"fence merging never increases fence count"
    ~count:300 arb_ops (fun ops ->
      let full = ops @ [ Op.Goto_tb 0L ] in
      Tcg.Fenceopt.count (Tcg.Fenceopt.run full) <= Tcg.Fenceopt.count full)

let () =
  Alcotest.run "tcg"
    [
      ( "interpreter",
        [
          Alcotest.test_case "basics" `Quick test_interp_basics;
          Alcotest.test_case "memory and branches" `Quick
            test_interp_memory_and_branch;
          Alcotest.test_case "cas/atomic" `Quick test_interp_cas_atomic;
          Alcotest.test_case "fall-through" `Quick test_interp_fallthrough_fails;
        ] );
      ( "const-fold",
        [
          Alcotest.test_case "folding" `Quick test_constfold;
          Alcotest.test_case "false dependencies" `Quick test_constfold_false_dep;
          Alcotest.test_case "constant branch" `Quick test_constfold_branch;
          Alcotest.test_case "label barrier" `Quick test_constfold_stops_at_label;
        ] );
      ( "dce",
        [
          Alcotest.test_case "unread local" `Quick test_dce_unread_local;
          Alcotest.test_case "globals kept" `Quick test_dce_keeps_globals;
          Alcotest.test_case "overwritten global" `Quick test_dce_overwritten_global;
          Alcotest.test_case "read then overwritten" `Quick
            test_dce_keeps_read_then_overwritten;
          Alcotest.test_case "stores kept" `Quick test_dce_keeps_stores;
        ] );
      ( "mem-elim",
        [
          Alcotest.test_case "RAW" `Quick test_memopt_raw;
          Alcotest.test_case "F-RAW across Fww" `Quick
            test_memopt_raw_across_allowed_fence;
          Alcotest.test_case "RAW blocked by Fmr" `Quick
            test_memopt_raw_blocked_by_fmr;
          Alcotest.test_case "RAR" `Quick test_memopt_rar;
          Alcotest.test_case "WAW" `Quick test_memopt_waw;
          Alcotest.test_case "WAW blocked by load" `Quick
            test_memopt_waw_blocked_by_real_load;
          Alcotest.test_case "offset disambiguation" `Quick
            test_memopt_different_offsets_no_alias;
          Alcotest.test_case "base clobber" `Quick test_memopt_clobbered_base;
          Alcotest.test_case "call clears" `Quick test_memopt_call_clears;
        ] );
      ( "fence-merge",
        [
          Alcotest.test_case "adjacent" `Quick test_fence_merge_adjacent;
          Alcotest.test_case "across pure ops" `Quick
            test_fence_merge_across_pure_ops;
          Alcotest.test_case "blocked by memory" `Quick
            test_fence_merge_blocked_by_memory;
          Alcotest.test_case "drops acq/rel" `Quick test_fence_drop_acq_rel;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_fence_merge_never_increases;
        ] );
    ]
