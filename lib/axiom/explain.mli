(** Diagnostics: why is an execution inconsistent?

    For each model, checks its axioms in order and reports violated
    axioms with witness cycles — the herd-style answer to "why is this
    outcome forbidden?".  {!check} stops at the first violated axiom;
    {!check_all} reports every violated axiom, which is what the witness
    reports (lib/report) render. *)

type which = Sc | X86 | Arm of Arm_cats.variant | Tcg

type verdict =
  | Consistent
  | Violates of { axiom : string; cycle : int list }
      (** [cycle] is a list of event ids in edge order, closed last→first:
          consecutive events — and the last event back to the first — are
          related by the axiom's relation.  For the atomicity axiom the
          "cycle" is the RMW pair [[r; w]]; the closing w→r edge is the
          [fre; coe] detour that breaks atomicity. *)

val check : which -> Execution.t -> verdict

(** Every violated axiom of the model (in the same checking order as
    {!check}), each with its witness cycle.  [check_all w x = []] iff
    [check w x = Consistent], and when [check] reports a violation it is
    the head of [check_all]'s result. *)
val check_all : which -> Execution.t -> verdict list

(** The axiom names of a model, in checking order — the row space of the
    coverage matrix (every [Violates.axiom] is drawn from this list). *)
val axiom_names : which -> string list

val model_of : which -> Model.t

(** Resolve a model back to its [which] by name ([None] for models
    outside lib/axiom) — models carry only an opaque predicate, and the
    diagnostics need the per-axiom decomposition. *)
val which_of_model : Model.t -> which option

(** The most specific base relation connecting [a] to [b] in [x]:
    [rmw], [rf], [co], [fr] or [po] (derived ordering relations are
    po-compositions), with ["fr;co"] for the atomicity closing edge and
    ["?"] when nothing matches. *)
val edge_rel : Execution.t -> int -> int -> string

(** Prints the cycle events interleaved with the {!edge_rel} relation
    names connecting them, including the closing last→first edge. *)
val pp_verdict : Execution.t -> Format.formatter -> verdict -> unit
