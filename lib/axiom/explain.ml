open Relalg

type which = Sc | X86 | Arm of Arm_cats.variant | Tcg

type verdict = Consistent | Violates of { axiom : string; cycle : int list }

let model_of = function
  | Sc -> Sc_model.model
  | X86 -> X86_tso.model
  | Arm v -> Arm_cats.model v
  | Tcg -> Tcg_model.model

(* Models carry only a name and a predicate; the diagnostics need the
   per-axiom decomposition, so resolve back to [which] by name. *)
let which_of_model (m : Model.t) =
  if m.Model.name = Sc_model.model.Model.name then Some Sc
  else if m.Model.name = X86_tso.model.Model.name then Some X86
  else if m.Model.name = (Arm_cats.model Arm_cats.Original).Model.name then
    Some (Arm Arm_cats.Original)
  else if m.Model.name = (Arm_cats.model Arm_cats.Corrected).Model.name then
    Some (Arm Arm_cats.Corrected)
  else if m.Model.name = Tcg_model.model.Model.name then Some Tcg
  else None

let coherence_rel x =
  Rel.union_all
    [ Execution.po_loc x; x.Execution.rf; x.Execution.co; Execution.fr x ]

let global_axiom_name = function
  | Sc -> "sequential consistency (po ∪ rf ∪ co ∪ fr)"
  | X86 -> "x86 (GHB)"
  | Arm _ -> "Arm (external: ob)"
  | Tcg -> "TCG (GOrd: ghb)"

(* The axioms of a model, in checking order, each as a lazy violation
   finder returning a witness cycle.  [check] stops at the first
   violation; [check_all] drains the whole list. *)
let axiom_checks which x =
  let cyc name rel = (name, fun () -> Rel.find_cycle (rel ())) in
  let coherence = cyc "sc-per-loc (coherence)" (fun () -> coherence_rel x) in
  let global =
    let rel =
      match which with
      | Sc ->
          fun () ->
            Rel.union_all
              [ x.Execution.po; x.Execution.rf; x.Execution.co; Execution.fr x ]
      | X86 -> fun () -> X86_tso.ghb_base x
      | Arm v -> fun () -> Arm_cats.ob_base v x
      | Tcg -> fun () -> Tcg_model.ghb_base x
    in
    cyc (global_axiom_name which) rel
  in
  let atomicity =
    ( "atomicity",
      fun () ->
        let bad =
          Rel.inter (Execution.rmw x)
            (Rel.compose (Execution.fre x) (Execution.coe x))
        in
        match Rel.to_list bad with
        | (r, w) :: _ -> Some [ r; w ]
        | [] -> None )
  in
  [ coherence; global; atomicity ]

let axiom_names which =
  [ "sc-per-loc (coherence)"; global_axiom_name which; "atomicity" ]

let check which x =
  let rec first = function
    | [] -> Consistent
    | (axiom, find) :: rest -> (
        match find () with
        | Some cycle -> Violates { axiom; cycle }
        | None -> first rest)
  in
  first (axiom_checks which x)

let check_all which x =
  List.filter_map
    (fun (axiom, find) ->
      match find () with
      | Some cycle -> Some (Violates { axiom; cycle })
      | None -> None)
    (axiom_checks which x)

(* The most specific base relation connecting two consecutive cycle
   events.  Derived ordering relations (ppo, implied, lob, ord, ...) are
   compositions along po, so any cycle edge not in rmw/rf/co/fr is a po
   edge — except the atomicity "cycle", whose closing write→read edge is
   the fre;coe detour around the RMW pair. *)
let edge_rel x a b =
  let candidates =
    [
      ("rmw", Execution.rmw x);
      ("rf", x.Execution.rf);
      ("co", x.Execution.co);
      ("fr", Execution.fr x);
      ("po", x.Execution.po);
    ]
  in
  match List.find_opt (fun (_, r) -> Rel.mem a b r) candidates with
  | Some (name, _) -> name
  | None ->
      if Rel.mem a b (Rel.compose (Execution.fre x) (Execution.coe x)) then
        "fr;co"
      else "?"

let pp_verdict x ppf = function
  | Consistent -> Fmt.string ppf "consistent"
  | Violates { axiom; cycle } -> (
      Fmt.pf ppf "violates %s via cycle:@," axiom;
      match cycle with
      | [] -> ()
      | first :: _ ->
          let rec go = function
            | [] -> ()
            | [ last ] ->
                (* The cycle is last→first closed. *)
                Fmt.pf ppf "    %a@,  --%s--> (back to %d)@," Event.pp
                  (Execution.find x last) (edge_rel x last first) first
            | a :: (b :: _ as rest) ->
                Fmt.pf ppf "    %a@,  --%s-->@," Event.pp (Execution.find x a)
                  (edge_rel x a b);
                go rest
          in
          go cycle)
