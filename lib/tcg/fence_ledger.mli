(** Per-block fence provenance ledger.

    Records what happened to every barrier a block ever contained:
    emitted by the frontend's mapping rules, kept through the pipeline,
    merged into a neighbouring fence (possibly strengthening it, since
    merging joins in the fence lattice), or dropped outright.  Each
    record also bumps a process-global
    [fence.<kind>.<outcome>] counter in {!Obs.Metrics}, so per-run
    aggregates (e.g. the merged ratio) fall out of the metrics snapshot
    while the ledger itself answers "which guest instruction produced
    this fence, and which pass eliminated it?" *)

type outcome =
  | Emitted  (** introduced by the frontend (pass = ["frontend"]) *)
  | Kept  (** survived the whole pipeline (pass = ["pipeline"]) *)
  | Merged of { into : Op.origin; result : Axiom.Event.fence }
      (** absorbed into the surviving fence at [into]; the merge's
          lattice-join result is [result] *)
  | Dropped  (** eliminated *)
  | Strengthened of { from : Axiom.Event.fence }
      (** a survivor whose kind was strengthened by a merge; [kind] in
          the entry is the final (stronger) kind, [from] the original *)

type entry = {
  pass : string;  (** which pass recorded this *)
  kind : Axiom.Event.fence;
  origin : Op.origin;
  outcome : outcome;
}

type t

val create : unit -> t

(** Entries in recording order. *)
val entries : t -> entry list

val outcome_name : outcome -> string

(** [record t ~pass ~kind ~origin outcome] appends an entry and bumps
    the [fence.<kind>.<outcome>] metrics counter. *)
val record :
  t -> pass:string -> kind:Axiom.Event.fence -> origin:Op.origin -> outcome ->
  unit

(** Number of entries whose outcome name matches. *)
val count : t -> string -> int

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
