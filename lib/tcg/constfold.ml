module IM = Map.Make (Int)

(* Algebraic simplifications that also remove false dependencies. *)
let simplify op d a (consts : int64 IM.t) imm =
  match (op, imm) with
  | Op.Mul, 0L | Op.And, 0L -> Some (Op.Movi (d, 0L))
  | Op.Mul, 1L | Op.Add, 0L | Op.Sub, 0L | Op.Or, 0L | Op.Xor, 0L
  | Op.Shl, 0L | Op.Shr, 0L ->
      Some (Op.Mov (d, a))
  | _ -> ignore consts; None

let run ops =
  let rec go consts acc = function
    | [] -> List.rev acc
    | op :: rest -> (
        let const t = IM.find_opt t consts in
        let with_write d v rest' op' = go (IM.update d (fun _ -> v) consts) (op' :: acc) rest' in
        match op with
        | Op.Movi (d, v) -> with_write d (Some v) rest op
        | Op.Mov (d, s) -> (
            match const s with
            | Some v -> with_write d (Some v) rest (Op.Movi (d, v))
            | None -> with_write d None rest op)
        | Op.Binop (bop, d, a, b) -> (
            match (const a, const b) with
            | Some va, Some vb ->
                let v = Op.eval_binop bop va vb in
                with_write d (Some v) rest (Op.Movi (d, v))
            | None, Some vb -> (
                match simplify bop d a consts vb with
                | Some (Op.Movi (_, v) as op') -> with_write d (Some v) rest op'
                | Some op' -> with_write d (const a) rest op'
                | None -> with_write d None rest (Op.Binopi (bop, d, a, vb)))
            | Some va, None when bop = Op.Add || bop = Op.And || bop = Op.Or
                                 || bop = Op.Xor || bop = Op.Mul ->
                (* commutative: fold the constant to the immediate side *)
                with_write d None rest (Op.Binopi (bop, d, b, va))
            | _ ->
                if (bop = Op.Xor || bop = Op.Sub) && a = b then
                  with_write d (Some 0L) rest (Op.Movi (d, 0L))
                else with_write d None rest op)
        | Op.Binopi (bop, d, a, imm) -> (
            match const a with
            | Some va ->
                let v = Op.eval_binop bop va imm in
                with_write d (Some v) rest (Op.Movi (d, v))
            | None -> (
                match simplify bop d a consts imm with
                | Some (Op.Movi (_, v) as op') -> with_write d (Some v) rest op'
                | Some op' -> with_write d (const a) rest op'
                | None -> with_write d None rest op))
        | Op.Setcond (c, d, a, b) -> (
            match (const a, const b) with
            | Some va, Some vb ->
                let v = if Op.eval_cond c va vb then 1L else 0L in
                with_write d (Some v) rest (Op.Movi (d, v))
            | _ -> with_write d None rest op)
        | Op.Brcond (c, a, b, l) -> (
            match (const a, const b) with
            | Some va, Some vb ->
                if Op.eval_cond c va vb then go consts (Op.Br l :: acc) rest
                else go consts acc rest
            | _ -> go consts (op :: acc) rest)
        | Op.Ld (d, _, _) -> with_write d None rest op
        | Op.Cas { old = d; _ } | Op.Atomic { old = d; _ } ->
            with_write d None rest op
        | Op.Call (_, _, Some d) | Op.Host_call { ret = Some d; _ } ->
            with_write d None rest op
        | Op.Set_label _ ->
            (* Join point: discard knowledge. *)
            go IM.empty (op :: acc) rest
        | Op.St _ | Op.Mb _ | Op.Br _
        | Op.Call (_, _, None)
        | Op.Host_call { ret = None; _ }
        | Op.Goto_tb _ | Op.Goto_ptr _ | Op.Exit_halt | Op.Trap _ ->
            go consts (op :: acc) rest)
  in
  go IM.empty [] ops
