type exit_state =
  | Next_tb of int64
  | Jump of int64
  | Halted
  | Trapped of string * string

exception No_helper of string

type env = {
  temps : int64 array;
  mem : Memsys.Mem.t;
  helpers : string -> int64 list -> int64;
}

let default_helpers name _ = raise (No_helper name)

let create_env ?(helpers = default_helpers) mem =
  { temps = Array.make 256 0L; mem; helpers }

let exec_block env (b : Block.t) =
  let ops = Array.of_list b.ops in
  let labels = Hashtbl.create 8 in
  Array.iteri
    (fun i op -> match op with Op.Set_label l -> Hashtbl.replace labels l i | _ -> ())
    ops;
  let get t = env.temps.(t) in
  let set t v = env.temps.(t) <- v in
  let fuel = ref 1_000_000 in
  let rec go i =
    decr fuel;
    if !fuel <= 0 then
      Trapped
        ( "watchdog",
          Printf.sprintf "Tcg.Interp: runaway block 0x%Lx" b.guest_pc )
    else if i >= Array.length ops then
      Trapped
        ( "translate",
          Printf.sprintf "Tcg.Interp: block 0x%Lx fell through" b.guest_pc )
    else
      match ops.(i) with
      | Op.Movi (d, v) ->
          set d v;
          go (i + 1)
      | Op.Mov (d, s) ->
          set d (get s);
          go (i + 1)
      | Op.Binop (op, d, a, b') ->
          set d (Op.eval_binop op (get a) (get b'));
          go (i + 1)
      | Op.Binopi (op, d, a, imm) ->
          set d (Op.eval_binop op (get a) imm);
          go (i + 1)
      | Op.Ld (d, base, off) ->
          set d (Memsys.Mem.load env.mem (Int64.add (get base) off));
          go (i + 1)
      | Op.St (s, base, off) ->
          Memsys.Mem.store env.mem (Int64.add (get base) off) (get s);
          go (i + 1)
      | Op.Mb _ -> go (i + 1)
      | Op.Setcond (c, d, a, b') ->
          set d (if Op.eval_cond c (get a) (get b') then 1L else 0L);
          go (i + 1)
      | Op.Brcond (c, a, b', l) ->
          if Op.eval_cond c (get a) (get b') then jump l else go (i + 1)
      | Op.Set_label _ -> go (i + 1)
      | Op.Br l -> jump l
      | Op.Cas { old; addr; expect; desired } ->
          let a = get addr in
          let cur = Memsys.Mem.load env.mem a in
          if Int64.equal cur (get expect) then
            Memsys.Mem.store env.mem a (get desired);
          set old cur;
          go (i + 1)
      | Op.Atomic { op; old; addr; src } ->
          let a = get addr in
          let cur = Memsys.Mem.load env.mem a in
          (match op with
          | `Xadd -> Memsys.Mem.store env.mem a (Int64.add cur (get src))
          | `Xchg -> Memsys.Mem.store env.mem a (get src));
          set old cur;
          go (i + 1)
      | Op.Call (f, args, ret) | Op.Host_call { func = f; args; ret } -> (
          match env.helpers f (List.map get args) with
          | v ->
              (match ret with Some r -> set r v | None -> ());
              go (i + 1)
          | exception No_helper name ->
              Trapped ("helper", "Tcg.Interp: no helper " ^ name))
      | Op.Goto_tb pc -> Next_tb pc
      | Op.Goto_ptr t -> Jump (get t)
      | Op.Exit_halt -> Halted
      | Op.Trap (kind, context) -> Trapped (kind, context)
  and jump l =
    match Hashtbl.find_opt labels l with
    | Some i -> go i
    | None ->
        Trapped
          ( "translate",
            Printf.sprintf "Tcg.Interp: block 0x%Lx: undefined label %d"
              b.guest_pc l )
  in
  go 0
