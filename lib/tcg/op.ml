type temp = int

let nb_globals = 18
let guest_reg i = i
let cmp_a = 16
let cmp_b = 17
let first_local = 32

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Mul
type cond = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu

type fence_rule =
  | R_pre_load
  | R_post_load
  | R_pre_store
  | R_store
  | R_mfence
  | R_merged
  | R_none

type origin = { opc : int64; rule : fence_rule }

let no_origin = { opc = -1L; rule = R_none }

let rule_name = function
  | R_pre_load -> "pre-load"
  | R_post_load -> "post-load"
  | R_pre_store -> "pre-store"
  | R_store -> "store"
  | R_mfence -> "mfence"
  | R_merged -> "merged"
  | R_none -> "none"

type t =
  | Movi of temp * int64
  | Mov of temp * temp
  | Binop of binop * temp * temp * temp
  | Binopi of binop * temp * temp * int64
  | Ld of temp * temp * int64
  | St of temp * temp * int64
  | Mb of (Axiom.Event.fence * origin)
  | Setcond of cond * temp * temp * temp
  | Brcond of cond * temp * temp * int
  | Set_label of int
  | Br of int
  | Cas of { old : temp; addr : temp; expect : temp; desired : temp }
  | Atomic of { op : [ `Xadd | `Xchg ]; old : temp; addr : temp; src : temp }
  | Call of string * temp list * temp option
  | Host_call of { func : string; args : temp list; ret : temp option }
  | Goto_tb of int64
  | Goto_ptr of temp
  | Exit_halt
  | Trap of string * string

let mb ?(origin = no_origin) f = Mb (f, origin)

let reads = function
  | Movi _ -> []
  | Mov (_, s) -> [ s ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Binopi (_, _, a, _) -> [ a ]
  | Ld (_, base, _) -> [ base ]
  | St (src, base, _) -> [ src; base ]
  | Mb _ -> []
  | Setcond (_, _, a, b) -> [ a; b ]
  | Brcond (_, a, b, _) -> [ a; b ]
  | Set_label _ | Br _ -> []
  | Cas { addr; expect; desired; _ } -> [ addr; expect; desired ]
  | Atomic { addr; src; _ } -> [ addr; src ]
  | Call (_, args, _) -> args
  | Host_call { args; _ } -> args
  | Goto_tb _ -> []
  | Goto_ptr t -> [ t ]
  | Exit_halt | Trap _ -> []

let writes = function
  | Movi (d, _) | Mov (d, _) | Binop (_, d, _, _) | Binopi (_, d, _, _)
  | Ld (d, _, _)
  | Setcond (_, d, _, _) ->
      [ d ]
  | Cas { old; _ } | Atomic { old; _ } -> [ old ]
  | Call (_, _, Some r) | Host_call { ret = Some r; _ } -> [ r ]
  | Call (_, _, None)
  | Host_call { ret = None; _ }
  | St _ | Mb _ | Brcond _ | Set_label _ | Br _ | Goto_tb _ | Goto_ptr _
  | Exit_halt | Trap _ ->
      []

let is_pure = function
  | Movi _ | Mov _ | Binop _ | Binopi _ | Setcond _ -> true
  | Ld _ | St _ | Mb _ | Brcond _ | Set_label _ | Br _ | Cas _ | Atomic _
  | Call _ | Host_call _ | Goto_tb _ | Goto_ptr _ | Exit_halt | Trap _ ->
      false

let eval_binop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Mul -> Int64.mul a b

let eval_cond c a b =
  match c with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0
  | Ltu -> Int64.unsigned_compare a b < 0
  | Leu -> Int64.unsigned_compare a b <= 0
  | Gtu -> Int64.unsigned_compare a b > 0
  | Geu -> Int64.unsigned_compare a b >= 0

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Mul -> "mul"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Ltu -> "ltu"
  | Leu -> "leu"
  | Gtu -> "gtu"
  | Geu -> "geu"

let pp_temp ppf t =
  if t < 16 then Fmt.pf ppf "g%d" t
  else if t = cmp_a then Fmt.string ppf "cmpA"
  else if t = cmp_b then Fmt.string ppf "cmpB"
  else Fmt.pf ppf "t%d" t

let pp ppf = function
  | Movi (d, i) -> Fmt.pf ppf "movi %a, %Ld" pp_temp d i
  | Mov (d, s) -> Fmt.pf ppf "mov %a, %a" pp_temp d pp_temp s
  | Binop (op, d, a, b) ->
      Fmt.pf ppf "%s %a, %a, %a" (binop_name op) pp_temp d pp_temp a pp_temp b
  | Binopi (op, d, a, i) ->
      Fmt.pf ppf "%si %a, %a, %Ld" (binop_name op) pp_temp d pp_temp a i
  | Ld (d, b, off) -> Fmt.pf ppf "ld %a, [%a%+Ld]" pp_temp d pp_temp b off
  | St (s, b, off) -> Fmt.pf ppf "st [%a%+Ld], %a" pp_temp b off pp_temp s
  | Mb (f, _) -> Fmt.pf ppf "mb %a" Axiom.Event.pp_fence f
  | Setcond (c, d, a, b) ->
      Fmt.pf ppf "setcond.%s %a, %a, %a" (cond_name c) pp_temp d pp_temp a
        pp_temp b
  | Brcond (c, a, b, l) ->
      Fmt.pf ppf "brcond.%s %a, %a, L%d" (cond_name c) pp_temp a pp_temp b l
  | Set_label l -> Fmt.pf ppf "L%d:" l
  | Br l -> Fmt.pf ppf "br L%d" l
  | Cas { old; addr; expect; desired } ->
      Fmt.pf ppf "cas %a, [%a], %a, %a" pp_temp old pp_temp addr pp_temp expect
        pp_temp desired
  | Atomic { op; old; addr; src } ->
      Fmt.pf ppf "%s %a, [%a], %a"
        (match op with `Xadd -> "xadd" | `Xchg -> "xchg")
        pp_temp old pp_temp addr pp_temp src
  | Call (f, args, ret) ->
      Fmt.pf ppf "call %s(%a)%a" f (Fmt.list ~sep:Fmt.comma pp_temp) args
        (Fmt.option (fun ppf r -> Fmt.pf ppf " -> %a" pp_temp r))
        ret
  | Host_call { func; args; ret } ->
      Fmt.pf ppf "host_call %s(%a)%a" func
        (Fmt.list ~sep:Fmt.comma pp_temp)
        args
        (Fmt.option (fun ppf r -> Fmt.pf ppf " -> %a" pp_temp r))
        ret
  | Goto_tb pc -> Fmt.pf ppf "goto_tb 0x%Lx" pc
  | Goto_ptr t -> Fmt.pf ppf "goto_ptr %a" pp_temp t
  | Exit_halt -> Fmt.string ppf "exit_halt"
  | Trap (kind, context) -> Fmt.pf ppf "trap.%s %S" kind context
