module IS = Set.Make (Int)

let removable op =
  Op.is_pure op || match op with Op.Ld _ -> true | _ -> false

let has_control ops =
  List.exists
    (function Op.Set_label _ | Op.Br _ | Op.Brcond _ -> true | _ -> false)
    ops

let globals = IS.of_list (List.init Op.nb_globals Fun.id)

(* Strategy 1: remove pure ops whose destination temp is local and never
   read anywhere in the block. *)
let drop_unread_locals ops =
  let read =
    List.fold_left
      (fun acc op -> List.fold_left (fun acc t -> IS.add t acc) acc (Op.reads op))
      IS.empty ops
  in
  List.filter
    (fun op ->
      match (removable op, Op.writes op) with
      | true, [ d ] -> d < Op.nb_globals || IS.mem d read
      | _ -> true)
    ops

(* Strategy 2 (straight-line only): backward liveness.  Block exits make
   every global live (the next block reads them); helper calls only read
   their explicit arguments. *)
let drop_dead_straightline ops =
  let rec go live acc = function
    | [] -> acc
    | op :: before ->
        let exits_block =
          match op with
          | Op.Goto_tb _ | Op.Goto_ptr _ | Op.Exit_halt | Op.Trap _ -> true
          | _ -> false
        in
        let dead d = not (IS.mem d live) in
        (match (removable op, Op.writes op) with
        | true, [ d ] when dead d -> go live acc before
        | _ ->
            let live =
              List.fold_left (fun l t -> IS.remove t l) live (Op.writes op)
            in
            let live =
              List.fold_left (fun l t -> IS.add t l) live (Op.reads op)
            in
            let live = if exits_block then IS.union live globals else live in
            go live (op :: acc) before)
  in
  go IS.empty [] (List.rev ops)

let run ops =
  let ops = drop_unread_locals ops in
  if has_control ops then ops else drop_dead_straightline ops
