(** Optimizer pipeline over translation blocks. *)

type pass = Const_fold | Dce | Mem_elim | Fence_merge

val pass_name : pass -> string
val all : pass list

(** Qemu's baseline optimizations (no fence merging). *)
val qemu_default : pass list

(** Risotto: Qemu's passes plus fence merging. *)
val risotto_default : pass list

val run_pass : ?ledger:Fence_ledger.t -> pass -> Op.t list -> Op.t list

(** Run the passes in order.  Each pass executes under an [opt]-category
    {!Obs.Trace} span and, when metrics are enabled, its wall time is
    recorded into the [opt.<pass>.ns] histogram — both invisible to the
    transformation itself.

    Fence provenance: the block's initial barriers are recorded as
    [Emitted], barriers a pass deletes as [Dropped] (with {!Fenceopt}
    doing its own finer-grained merge accounting), and the final
    survivors as [Kept] — into [ledger] when given, and into the
    [fence.<kind>.<outcome>] {!Obs.Metrics} counters always. *)
val run : ?ledger:Fence_ledger.t -> pass list -> Block.t -> Block.t
