(** Optimizer pipeline over translation blocks. *)

type pass = Const_fold | Dce | Mem_elim | Fence_merge

val pass_name : pass -> string
val all : pass list

(** Qemu's baseline optimizations (no fence merging). *)
val qemu_default : pass list

(** Risotto: Qemu's passes plus fence merging. *)
val risotto_default : pass list

val run_pass : pass -> Op.t list -> Op.t list

(** Run the passes in order.  Each pass executes under an [opt]-category
    {!Obs.Trace} span and, when metrics are enabled, its wall time is
    recorded into the [opt.<pass>.ns] histogram — both invisible to the
    transformation itself. *)
val run : pass list -> Block.t -> Block.t
