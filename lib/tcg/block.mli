(** Translation blocks: the unit of translation and caching. *)

type t = {
  guest_pc : int64;  (** guest address of the first instruction *)
  guest_len : int;  (** bytes of guest code covered *)
  guest_insns : int;  (** number of guest instructions *)
  ops : Op.t list;
}

val fence_count : t -> int
val op_count : t -> int
val pp : Format.formatter -> t -> unit

(** [concat blocks] stitches a hot trace into one superblock, keeping
    the head's [guest_pc].  Labels of each constituent are renumbered
    to avoid collisions; every [Goto_tb] in the accumulated prefix that
    targets the next constituent's pc is rewritten into an internal
    forward branch, and [Br l; Set_label l] seam pairs are elided so
    straight-line seams become visible to the (label-blocked) optimizer
    passes.  Back edges and exits to pcs outside the trace remain
    [Goto_tb]/[Goto_ptr] side exits with unchanged semantics, so the
    superblock is internally acyclic and falls back to the original
    blocks on any side exit.  Duplicate constituents are allowed (loop
    unrolling).  Raises [Invalid_argument] on the empty list. *)
val concat : t list -> t
