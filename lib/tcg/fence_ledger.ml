type outcome =
  | Emitted
  | Kept
  | Merged of { into : Op.origin; result : Axiom.Event.fence }
  | Dropped
  | Strengthened of { from : Axiom.Event.fence }

type entry = {
  pass : string;
  kind : Axiom.Event.fence;
  origin : Op.origin;
  outcome : outcome;
}

type t = { mutable entries : entry list }

let create () = { entries = [] }
let entries t = List.rev t.entries

let outcome_name = function
  | Emitted -> "emitted"
  | Kept -> "kept"
  | Merged _ -> "merged"
  | Dropped -> "dropped"
  | Strengthened _ -> "strengthened"

(* fence.<kind>.<outcome> counters, registered on first use.  Recording
   happens on the (cold) translation path, so a per-record name lookup
   is acceptable; Metrics registration is idempotent by name. *)
let counter_for kind outcome =
  Obs.Metrics.counter
    ("fence." ^ Axiom.Event.fence_name kind ^ "." ^ outcome_name outcome)

let record t ~pass ~kind ~origin outcome =
  t.entries <- { pass; kind; origin; outcome } :: t.entries;
  Obs.Metrics.add (counter_for kind outcome) 1

let count t outcome_name' =
  List.length
    (List.filter (fun e -> outcome_name e.outcome = outcome_name') t.entries)

let pp_entry ppf e =
  let pp_origin ppf (o : Op.origin) =
    if Int64.equal o.opc (-1L) then Fmt.pf ppf "rule %s" (Op.rule_name o.rule)
    else Fmt.pf ppf "guest 0x%Lx (%s)" o.opc (Op.rule_name o.rule)
  in
  match e.outcome with
  | Emitted ->
      Fmt.pf ppf "%-5s emitted by %s from %a"
        (Axiom.Event.fence_name e.kind)
        e.pass pp_origin e.origin
  | Kept ->
      Fmt.pf ppf "%-5s kept, from %a" (Axiom.Event.fence_name e.kind) pp_origin
        e.origin
  | Merged { into; result } ->
      Fmt.pf ppf "%-5s from %a merged by %s into %s at %a"
        (Axiom.Event.fence_name e.kind)
        pp_origin e.origin e.pass
        (Axiom.Event.fence_name result)
        pp_origin into
  | Dropped ->
      Fmt.pf ppf "%-5s from %a dropped by %s"
        (Axiom.Event.fence_name e.kind)
        pp_origin e.origin e.pass
  | Strengthened { from } ->
      Fmt.pf ppf "%-5s strengthened from %s by %s, from %a"
        (Axiom.Event.fence_name e.kind)
        (Axiom.Event.fence_name from)
        e.pass pp_origin e.origin

let pp ppf t =
  List.iter (fun e -> Fmt.pf ppf "  %a@." pp_entry e) (entries t)
