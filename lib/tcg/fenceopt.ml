module E = Axiom.Event

let pass = "fence-merge"

(* Can we move a fence across this op when looking for a merge partner?
   Only pure register computations — no memory accesses, no control. *)
let transparent op = Op.is_pure op

(* [f] is the pending (joined) fence kind; [absorbed] (reversed) are the
   (kind, origin) pairs folded into it; [between] (reversed) are
   transparent ops seen since. *)
let rec merge_from f absorbed between rest =
  match rest with
  | Op.Mb (f2, o2) :: rest' ->
      merge_from (Mapping.Fence_alg.merge f f2) ((f2, o2) :: absorbed) between
        rest'
  | op :: rest' when transparent op ->
      merge_from f absorbed (op :: between) rest'
  | _ -> (f, List.rev absorbed, List.rev between, rest)

let ledger_record ledger ~kind ~origin outcome =
  match ledger with
  | None -> ()
  | Some l -> Fence_ledger.record l ~pass ~kind ~origin outcome

let run ?ledger ops =
  let rec go = function
    | [] -> []
    | Op.Mb (f, o) :: rest ->
        let f', absorbed, between, rest' = merge_from f [] [] rest in
        (* The survivor keeps the earliest fence's origin; mark it a
           merge product only when it actually absorbed partners. *)
        let o' =
          if absorbed = [] then o else { o with Op.rule = Op.R_merged }
        in
        List.iter
          (fun (k, ao) ->
            ledger_record ledger ~kind:k ~origin:ao
              (Fence_ledger.Merged { into = o'; result = f' }))
          absorbed;
        if f' = E.F_acq || f' = E.F_rel then begin
          ledger_record ledger ~kind:f' ~origin:o' Fence_ledger.Dropped;
          between @ go rest'
        end
        else begin
          if absorbed <> [] && f' <> f then
            ledger_record ledger ~kind:f' ~origin:o'
              (Fence_ledger.Strengthened { from = f });
          (Op.Mb (f', o') :: between) @ go rest'
        end
    | op :: rest -> op :: go rest
  in
  go ops

let count ops =
  List.length (List.filter (function Op.Mb _ -> true | _ -> false) ops)
