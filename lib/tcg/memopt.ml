module E = Axiom.Event

type key = { base : Op.temp; base_ver : int; off : int64 }

type store_entry = {
  s_idx : int;
  value : Op.temp;
  value_ver : int;
  mutable raw_ok : bool;
  mutable waw_ok : bool;
}

type load_entry = { dst : Op.temp; dst_ver : int; mutable rar_ok : bool }

let raw_fences = [ E.F_sc; E.F_ww ]
let rar_fences = [ E.F_rm; E.F_ww ]
let waw_fences = [ E.F_rm; E.F_ww ]

let run ops =
  let arr = Array.of_list ops in
  let deleted = Array.make (Array.length arr) false in
  let vers : (Op.temp, int) Hashtbl.t = Hashtbl.create 32 in
  let ver t = Option.value ~default:0 (Hashtbl.find_opt vers t) in
  let bump t = Hashtbl.replace vers t (ver t + 1) in
  let stores : (key, store_entry) Hashtbl.t = Hashtbl.create 8 in
  let loads : (key, load_entry) Hashtbl.t = Hashtbl.create 8 in
  let clear_all () =
    Hashtbl.reset stores;
    Hashtbl.reset loads
  in
  (* Remove entries that may alias [k] (different base identity), and
     the entry for [k] itself if [drop_same] is set. *)
  let invalidate_aliases k ~drop_same =
    let same_base k' = k'.base = k.base && k'.base_ver = k.base_ver in
    let keep k' = same_base k' && (k' <> k || not drop_same) in
    let prune tbl =
      let victims =
        Hashtbl.fold (fun k' _ acc -> if keep k' then acc else k' :: acc) tbl []
      in
      List.iter (Hashtbl.remove tbl) victims
    in
    prune stores;
    prune loads
  in
  Array.iteri
    (fun i op ->
      match op with
      | Op.Set_label _ | Op.Br _ | Op.Brcond _ -> clear_all ()
      | Op.Mb (f, _) ->
          Hashtbl.iter
            (fun _ (e : store_entry) ->
              if not (List.mem f raw_fences) then e.raw_ok <- false;
              if not (List.mem f waw_fences) then e.waw_ok <- false)
            stores;
          Hashtbl.iter
            (fun _ (e : load_entry) ->
              if not (List.mem f rar_fences) then e.rar_ok <- false)
            loads
      | Op.Ld (d, b, off) -> (
          let k = { base = b; base_ver = ver b; off } in
          let forward src =
            if src = d then deleted.(i) <- true
            else arr.(i) <- Op.Mov (d, src);
            bump d
          in
          match Hashtbl.find_opt stores k with
          | Some se when se.raw_ok && se.value_ver = ver se.value ->
              forward se.value
          | _ -> (
              match Hashtbl.find_opt loads k with
              | Some le when le.rar_ok && le.dst_ver = ver le.dst ->
                  forward le.dst
              | _ ->
                  (* A surviving real load of this address pins any
                     tracked older store (cannot WAW-delete it). *)
                  (match Hashtbl.find_opt stores k with
                  | Some se -> se.waw_ok <- false
                  | None -> ());
                  bump d;
                  Hashtbl.replace loads k
                    { dst = d; dst_ver = ver d; rar_ok = true }))
      | Op.St (v, b, off) ->
          let k = { base = b; base_ver = ver b; off } in
          (match Hashtbl.find_opt stores k with
          | Some se when se.waw_ok -> deleted.(se.s_idx) <- true
          | _ -> ());
          invalidate_aliases k ~drop_same:true;
          Hashtbl.replace stores k
            { s_idx = i; value = v; value_ver = ver v; raw_ok = true; waw_ok = true }
      | Op.Cas _ | Op.Atomic _ | Op.Call _ | Op.Host_call _ ->
          clear_all ();
          List.iter bump (Op.writes op)
      | Op.Goto_tb _ | Op.Goto_ptr _ | Op.Exit_halt | Op.Trap _ -> ()
      | Op.Movi _ | Op.Mov _ | Op.Binop _ | Op.Binopi _ | Op.Setcond _ ->
          List.iter bump (Op.writes op))
    arr;
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun (i, op) -> if deleted.(i) then None else Some op)
          (Array.to_seqi arr)))
