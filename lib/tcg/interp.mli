(** Direct interpreter for TCG blocks.

    Used for differential testing (the optimizer must preserve the
    block's observable semantics, and the Arm backend must agree with
    this interpreter) and as the engine's degraded execution mode when
    the backend cannot compile a block. *)

type exit_state =
  | Next_tb of int64  (** continue at a static guest pc *)
  | Jump of int64  (** computed jump target *)
  | Halted
  | Trapped of string * string
      (** the block faulted: fault-kind tag (see [Core.Fault.of_tag])
          and context.  Produced by [Op.Trap], fall-through blocks,
          runaway internal loops, and missing helpers. *)

exception No_helper of string
(** Raised by a helper dispatcher that has no binding for a name; the
    interpreter converts it into a [Trapped] exit. *)

type env = {
  temps : int64 array;
  mem : Memsys.Mem.t;
  helpers : string -> int64 list -> int64;
      (** helper and host-call dispatcher; may raise {!No_helper} *)
}

val create_env :
  ?helpers:(string -> int64 list -> int64) -> Memsys.Mem.t -> env

(** Execute a block to its exit.  Never raises for malformed blocks:
    fall-throughs and runaway loops surface as [Trapped]. *)
val exec_block : env -> Block.t -> exit_state
