type t = {
  guest_pc : int64;
  guest_len : int;
  guest_insns : int;
  ops : Op.t list;
}

let fence_count b =
  List.length (List.filter (function Op.Mb _ -> true | _ -> false) b.ops)

let op_count b = List.length b.ops

let pp ppf b =
  Fmt.pf ppf "@[<v>TB@0x%Lx (%d guest insns):@,%a@]" b.guest_pc b.guest_insns
    (Fmt.list ~sep:Fmt.cut Op.pp)
    b.ops

(* ------------------------------------------------------------------ *)
(* Superblock stitching: concatenate straight-line blocks into one. *)

let max_label ops =
  List.fold_left
    (fun m op ->
      match op with
      | Op.Brcond (_, _, _, l) | Op.Set_label l | Op.Br l -> max m l
      | _ -> m)
    (-1) ops

let shift_labels k ops =
  if k = 0 then ops
  else
    List.map
      (function
        | Op.Brcond (c, a, b, l) -> Op.Brcond (c, a, b, l + k)
        | Op.Set_label l -> Op.Set_label (l + k)
        | Op.Br l -> Op.Br (l + k)
        | op -> op)
      ops

(* Drop [Br l] when it lands on the immediately following [Set_label l]
   (and the label itself when nothing else targets it), so a stitched
   seam becomes genuinely straight-line code the label-blocked
   optimizer passes can see across. *)
let elide_adjacent_branches ops =
  let refs = Hashtbl.create 16 in
  let addref l =
    Hashtbl.replace refs l (1 + Option.value ~default:0 (Hashtbl.find_opt refs l))
  in
  List.iter
    (function
      | Op.Br l | Op.Brcond (_, _, _, l) -> addref l
      | _ -> ())
    ops;
  let rec go = function
    | Op.Br l :: Op.Set_label l' :: rest when l = l' ->
        if Hashtbl.find refs l = 1 then go rest
        else go (Op.Set_label l' :: rest)
    | op :: rest -> op :: go rest
    | [] -> []
  in
  go ops

let concat = function
  | [] -> invalid_arg "Block.concat: empty block list"
  | head :: tail ->
      let ops = ref head.ops in
      let next_label = ref (max_label head.ops + 1) in
      let guest_len = ref head.guest_len in
      let guest_insns = ref head.guest_insns in
      List.iter
        (fun b ->
          let shifted = shift_labels !next_label b.ops in
          next_label := !next_label + max_label b.ops + 1;
          let seam = !next_label in
          incr next_label;
          (* Redirect every static exit to [b] seen so far into the
             appended copy; exits to other pcs (and back edges in [b]
             itself) stay as side exits. *)
          ops :=
            List.map
              (function
                | Op.Goto_tb pc when Int64.equal pc b.guest_pc -> Op.Br seam
                | op -> op)
              !ops
            @ (Op.Set_label seam :: shifted);
          guest_len := !guest_len + b.guest_len;
          guest_insns := !guest_insns + b.guest_insns)
        tail;
      {
        guest_pc = head.guest_pc;
        guest_len = !guest_len;
        guest_insns = !guest_insns;
        ops = elide_adjacent_branches !ops;
      }
