(** The TCG IR: the DBT's architecture-independent intermediate
    representation (paper §2.3).

    Temps below {!nb_globals} are globals holding guest CPU state across
    translation blocks: temps 0–15 mirror the guest GP registers, and
    {!cmp_a}/{!cmp_b} hold the operands of the last flag-setting
    comparison (the frontend's lazy-flags discipline).  Larger temps are
    block-local. *)

type temp = int

val nb_globals : int

(** Guest register globals. *)
val guest_reg : int -> temp

(** Lazy condition-flag globals. *)
val cmp_a : temp

val cmp_b : temp

(** First block-local temp. *)
val first_local : temp

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Mul
type cond = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu

(** Which mapping rule introduced a fence (paper §4 fence schemes):
    a load-side fence, a store-side fence, an explicit guest MFENCE, or
    the survivor of a {!Fenceopt} merge.  [R_none] marks fences built
    without provenance (tests, synthetic blocks). *)
type fence_rule =
  | R_pre_load
  | R_post_load
  | R_pre_store
  | R_store
  | R_mfence
  | R_merged
  | R_none

(** Fence provenance: the guest instruction pc that caused the fence and
    the mapping rule that introduced it.  [opc = -1L] when unknown. *)
type origin = { opc : int64; rule : fence_rule }

val no_origin : origin
val rule_name : fence_rule -> string

type t =
  | Movi of temp * int64
  | Mov of temp * temp
  | Binop of binop * temp * temp * temp  (** dst, a, b *)
  | Binopi of binop * temp * temp * int64
  | Ld of temp * temp * int64  (** dst ← [base + off] *)
  | St of temp * temp * int64  (** [base + off] ← src *)
  | Mb of (Axiom.Event.fence * origin)
      (** memory barrier (TCG fence kinds), tagged with provenance *)
  | Setcond of cond * temp * temp * temp
  | Brcond of cond * temp * temp * int  (** branch to label if cond *)
  | Set_label of int
  | Br of int
  | Cas of { old : temp; addr : temp; expect : temp; desired : temp }
      (** SC compare-and-swap: the direct-translation TCG op Risotto
          adds (§6.3); [old] receives the previous value *)
  | Atomic of { op : [ `Xadd | `Xchg ]; old : temp; addr : temp; src : temp }
  | Call of string * temp list * temp option
      (** Qemu-style helper call (RMW helpers, softfloat) *)
  | Host_call of { func : string; args : temp list; ret : temp option }
      (** direct native shared-library call emitted by the dynamic host
          linker (§6.2) *)
  | Goto_tb of int64  (** static jump to the block at a guest pc *)
  | Goto_ptr of temp  (** computed jump (ret, indirect) *)
  | Exit_halt
  | Trap of string * string
      (** exit: fault the executing guest thread.  Carries a fault-kind
          tag (see [Core.Fault.of_tag]) and a human-readable context.
          Emitted by the frontend for undecodable guest code and for
          link stubs whose host symbol is missing: executing the block
          traps the calling thread only. *)

(** [mb ?origin f] builds a barrier op; [origin] defaults to
    {!no_origin}. *)
val mb : ?origin:origin -> Axiom.Event.fence -> t

(** Temps read / written by an op. *)
val reads : t -> temp list

val writes : t -> temp list

(** Pure ops compute values without memory or control effects and are
    removable when their destination is dead. *)
val is_pure : t -> bool

val eval_binop : binop -> int64 -> int64 -> int64
val eval_cond : cond -> int64 -> int64 -> bool
val pp : Format.formatter -> t -> unit
