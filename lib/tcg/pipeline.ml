type pass = Const_fold | Dce | Mem_elim | Fence_merge

let pass_name = function
  | Const_fold -> "const-fold"
  | Dce -> "dce"
  | Mem_elim -> "mem-elim"
  | Fence_merge -> "fence-merge"

let all = [ Const_fold; Mem_elim; Dce; Fence_merge ]
let qemu_default = [ Const_fold; Mem_elim; Dce ]
let risotto_default = [ Const_fold; Mem_elim; Dce; Fence_merge ]

let run_pass ?ledger = function
  | Const_fold -> Constfold.run
  | Dce -> Dce.run
  | Mem_elim -> Memopt.run
  | Fence_merge -> Fenceopt.run ?ledger

(* Per-pass wall-clock histograms (opt.<pass>.ns), registered on first
   use so a pipeline run can be attributed pass by pass. *)
let pass_hists =
  lazy
    (List.map
       (fun p -> (p, Obs.Metrics.histogram ("opt." ^ pass_name p ^ ".ns")))
       all)

let pass_hist p = List.assq p (Lazy.force pass_hists)

let fences ops =
  List.filter_map
    (function Op.Mb (f, o) -> Some (f, o) | _ -> None)
    ops

(* Multiset difference: fences present before a pass but absent after
   it.  Fence_merge does its own ledger accounting; this catches any
   other pass that deletes a barrier (none do today — Mb is impure and
   writes nothing, so Dce and Memopt keep it — but a future pass that
   does will be attributed instead of vanishing silently). *)
let diff_dropped before after =
  let remaining = ref after in
  List.filter
    (fun fo ->
      let rec remove = function
        | [] -> None
        | fo' :: rest when fo' = fo -> Some rest
        | fo' :: rest -> Option.map (fun r -> fo' :: r) (remove rest)
      in
      match remove !remaining with
      | Some rest ->
          remaining := rest;
          false
      | None -> true)
    before

let run ?ledger passes (b : Block.t) =
  (* Always account into a ledger so the fence.* metrics counters flow
     even when no caller keeps the per-block provenance. *)
  let l = match ledger with Some l -> l | None -> Fence_ledger.create () in
  List.iter
    (fun (f, o) -> Fence_ledger.record l ~pass:"frontend" ~kind:f ~origin:o
        Fence_ledger.Emitted)
    (fences b.ops);
  let ops =
    List.fold_left
      (fun ops p ->
        let before = if p = Fence_merge then [] else fences ops in
        let ops' =
          Obs.Trace.with_span ~cat:"opt" (pass_name p) (fun () ->
              Obs.Profile.time (pass_hist p) (fun () ->
                  run_pass ~ledger:l p ops))
        in
        if p <> Fence_merge then
          List.iter
            (fun (f, o) ->
              Fence_ledger.record l ~pass:(pass_name p) ~kind:f ~origin:o
                Fence_ledger.Dropped)
            (diff_dropped before (fences ops'));
        ops')
      b.ops passes
  in
  List.iter
    (fun (f, o) ->
      Fence_ledger.record l ~pass:"pipeline" ~kind:f ~origin:o
        Fence_ledger.Kept)
    (fences ops);
  { b with ops }
