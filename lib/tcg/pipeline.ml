type pass = Const_fold | Dce | Mem_elim | Fence_merge

let pass_name = function
  | Const_fold -> "const-fold"
  | Dce -> "dce"
  | Mem_elim -> "mem-elim"
  | Fence_merge -> "fence-merge"

let all = [ Const_fold; Mem_elim; Dce; Fence_merge ]
let qemu_default = [ Const_fold; Mem_elim; Dce ]
let risotto_default = [ Const_fold; Mem_elim; Dce; Fence_merge ]

let run_pass = function
  | Const_fold -> Constfold.run
  | Dce -> Dce.run
  | Mem_elim -> Memopt.run
  | Fence_merge -> Fenceopt.run

(* Per-pass wall-clock histograms (opt.<pass>.ns), registered on first
   use so a pipeline run can be attributed pass by pass. *)
let pass_hists =
  lazy
    (List.map
       (fun p -> (p, Obs.Metrics.histogram ("opt." ^ pass_name p ^ ".ns")))
       all)

let pass_hist p = List.assq p (Lazy.force pass_hists)

let run passes (b : Block.t) =
  let ops =
    List.fold_left
      (fun ops p ->
        Obs.Trace.with_span ~cat:"opt" (pass_name p) (fun () ->
            Obs.Profile.time (pass_hist p) (fun () -> run_pass p ops)))
      b.ops passes
  in
  { b with ops }
