(** Fence merging (paper §6.1): adjacent fences — fences with no
    intermediate memory access — are merged into the single weakest TCG
    fence that dominates both, placed where the earliest fence was:

    {v  a = X;  Frm; Fww;  Y = 1   ↝   a = X;  F(rr∪rw∪ww);  Y = 1  v}

    Pure register ops between two fences do not block merging.  Also
    drops [Facq]/[Frel] fences, which lower to nothing on Arm
    (Figure 7b).

    When [ledger] is given, every absorbed fence is recorded as
    [Merged] (attributed to its own origin), survivors whose kind grew
    under the lattice join as [Strengthened], and eliminated
    [Facq]/[Frel] results as [Dropped]. *)

val run : ?ledger:Fence_ledger.t -> Op.t list -> Op.t list

(** Count of [Mb] ops, for the statistics the evaluation reports. *)
val count : Op.t list -> int
