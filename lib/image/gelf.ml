type t = {
  entry : int64;
  text_base : int64;
  text : string;
  symbols : (string * int64) list;
  imports : string list;
  plt : (string * int64) list;
}

type import = { name : string; guest_impl : X86.Asm.item list }

let plt_label name = name ^ "@plt"
let impl_label name = name ^ "@impl"

let build ?(org = 0x1000L) ~entry ?(imports = []) items =
  let plt_stubs =
    List.concat_map
      (fun i -> [ X86.Asm.Label (plt_label i.name); X86.Asm.Jmp_lbl (impl_label i.name) ])
      imports
  in
  let impls = List.concat_map (fun i -> i.guest_impl) imports in
  let asm = X86.Asm.assemble ~org (items @ plt_stubs @ impls) in
  {
    entry = X86.Asm.symbol asm entry;
    text_base = org;
    text = asm.X86.Asm.code;
    symbols = asm.X86.Asm.symbols;
    imports = List.map (fun i -> i.name) imports;
    plt = List.map (fun i -> (i.name, X86.Asm.symbol asm (plt_label i.name))) imports;
  }

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some a -> a
  | None -> raise (X86.Asm.Undefined_label name)

let plt_at t addr =
  List.find_map (fun (n, a) -> if Int64.equal a addr then Some n else None) t.plt

(* ------------------------------------------------------------------ *)
(* Image files                                                         *)

exception Bad_image of string

let magic = "GELF1\n"

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let put_str b s =
  put_i64 b (Int64.of_int (String.length s));
  Buffer.add_string b s

let put_list b f l =
  put_i64 b (Int64.of_int (List.length l));
  List.iter (f b) l

let save t path =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  put_i64 b t.entry;
  put_i64 b t.text_base;
  put_str b t.text;
  put_list b
    (fun b (name, addr) ->
      put_str b name;
      put_i64 b addr)
    t.symbols;
  put_list b (fun b name -> put_str b name) t.imports;
  put_list b
    (fun b (name, addr) ->
      put_str b name;
      put_i64 b addr)
    t.plt;
  (* Temp-and-rename so a crash mid-write cannot leave a truncated
     image under the real name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents b));
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then raise (Bad_image "truncated");
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let i64 () =
    let r = ref 0L in
    let chunk = take 8 in
    for i = 0 to 7 do
      r :=
        Int64.logor !r
          (Int64.shift_left (Int64.of_int (Char.code chunk.[i])) (8 * i))
    done;
    !r
  in
  let str () =
    let n = Int64.to_int (i64 ()) in
    if n < 0 || n > String.length s then raise (Bad_image "bad string length");
    take n
  in
  let list f =
    let n = Int64.to_int (i64 ()) in
    if n < 0 then raise (Bad_image "bad list length");
    let rec go i acc = if i = n then List.rev acc else go (i + 1) (f () :: acc) in
    go 0 []
  in
  if take (String.length magic) <> magic then raise (Bad_image "bad magic");
  let entry = i64 () in
  let text_base = i64 () in
  let text = str () in
  let symbols =
    list (fun () ->
        let name = str () in
        (name, i64 ()))
  in
  let imports = list str in
  let plt =
    list (fun () ->
        let name = str () in
        (name, i64 ()))
  in
  { entry; text_base; text; symbols; imports; plt }
