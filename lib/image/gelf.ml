type t = {
  entry : int64;
  text_base : int64;
  text : string;
  symbols : (string * int64) list;
  imports : string list;
  plt : (string * int64) list;
}

type import = { name : string; guest_impl : X86.Asm.item list }

let plt_label name = name ^ "@plt"
let impl_label name = name ^ "@impl"

let build ?(org = 0x1000L) ~entry ?(imports = []) items =
  let plt_stubs =
    List.concat_map
      (fun i -> [ X86.Asm.Label (plt_label i.name); X86.Asm.Jmp_lbl (impl_label i.name) ])
      imports
  in
  let impls = List.concat_map (fun i -> i.guest_impl) imports in
  let asm = X86.Asm.assemble ~org (items @ plt_stubs @ impls) in
  {
    entry = X86.Asm.symbol asm entry;
    text_base = org;
    text = asm.X86.Asm.code;
    symbols = asm.X86.Asm.symbols;
    imports = List.map (fun i -> i.name) imports;
    plt = List.map (fun i -> (i.name, X86.Asm.symbol asm (plt_label i.name))) imports;
  }

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some a -> a
  | None -> raise (X86.Asm.Undefined_label name)

let plt_at t addr =
  List.find_map (fun (n, a) -> if Int64.equal a addr then Some n else None) t.plt

(* ------------------------------------------------------------------ *)
(* Image files                                                         *)

exception Bad_image of string

(* v2 prepends a CRC-32 of the whole body right after the magic, so
   any bit flip anywhere in the file is caught before the field-level
   parser can misread it.  v1 files (no checksum) still load. *)
let magic = "GELF2\n"
let magic_v1 = "GELF1\n"

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let put_str b s =
  put_i64 b (Int64.of_int (String.length s));
  Buffer.add_string b s

let put_list b f l =
  put_i64 b (Int64.of_int (List.length l));
  List.iter (f b) l

let save ?on_commit t path =
  let body = Buffer.create 1024 in
  put_i64 body t.entry;
  put_i64 body t.text_base;
  put_str body t.text;
  put_list body
    (fun b (name, addr) ->
      put_str b name;
      put_i64 b addr)
    t.symbols;
  put_list body (fun b name -> put_str b name) t.imports;
  put_list body
    (fun b (name, addr) ->
      put_str b name;
      put_i64 b addr)
    t.plt;
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b magic;
  Buffer.add_string b (Checksum.Crc32.to_hex (Checksum.Crc32.digest body));
  Buffer.add_string b body;
  (* Temp-and-rename so a crash mid-write cannot leave a truncated
     image under the real name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents b));
  (* Crash window for chaos campaigns: temp file complete, rename not
     yet done.  A fault raised by [on_commit] must leave any previous
     image under [path] intact. *)
  (match on_commit with Some f -> f () | None -> ());
  Sys.rename tmp path

(* Splits off the version header.  For v2, checks the whole-body CRC
   here — the field parser below then runs on bytes already known
   intact.  Returns the body (everything after the header). *)
let check_header s =
  let starts_with prefix =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  if starts_with magic then begin
    let hdr = String.length magic + 8 in
    if String.length s < hdr then raise (Bad_image "truncated header");
    let crc =
      match Checksum.Crc32.of_hex (String.sub s (String.length magic) 8) with
      | Some c -> c
      | None -> raise (Bad_image "bad checksum field")
    in
    let body = String.sub s hdr (String.length s - hdr) in
    if Checksum.Crc32.digest body <> crc then
      raise (Bad_image "checksum mismatch");
    body
  end
  else if starts_with magic_v1 then
    (* Legacy image: no checksum to verify. *)
    String.sub s (String.length magic_v1)
      (String.length s - String.length magic_v1)
  else raise (Bad_image "bad magic")

let parse s =
  let s = check_header s in
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then raise (Bad_image "truncated");
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let i64 () =
    let r = ref 0L in
    let chunk = take 8 in
    for i = 0 to 7 do
      r :=
        Int64.logor !r
          (Int64.shift_left (Int64.of_int (Char.code chunk.[i])) (8 * i))
    done;
    !r
  in
  let str () =
    let n = Int64.to_int (i64 ()) in
    if n < 0 || n > String.length s then raise (Bad_image "bad string length");
    take n
  in
  let list f =
    let n = Int64.to_int (i64 ()) in
    if n < 0 then raise (Bad_image "bad list length");
    let rec go i acc = if i = n then List.rev acc else go (i + 1) (f () :: acc) in
    go 0 []
  in
  let entry = i64 () in
  let text_base = i64 () in
  let text = str () in
  let symbols =
    list (fun () ->
        let name = str () in
        (name, i64 ()))
  in
  let imports = list str in
  let plt =
    list (fun () ->
        let name = str () in
        (name, i64 ()))
  in
  if !pos <> String.length s then
    raise (Bad_image "trailing bytes after image");
  { entry; text_base; text; symbols; imports; plt }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = parse (read_file path)

let verify_file path =
  match parse (read_file path) with
  | (_ : t) -> Ok ()
  | exception Bad_image msg -> Error msg
  | exception Sys_error msg -> Error msg
