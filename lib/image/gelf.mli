(** "GELF": the simplified guest ELF image the DBT loads.

    Mirrors the parts of ELF the paper's dynamic linker uses (§6.2): a
    text section of encoded guest instructions, a symbol table, the list
    of imported shared-library functions (.dynsym), and one PLT entry
    per import.  When an imported function is {e not} intercepted by the
    host linker, its PLT entry transfers to the bundled guest
    implementation — exactly Qemu's behaviour of translating the guest
    shared library. *)

type t = {
  entry : int64;
  text_base : int64;
  text : string;
  symbols : (string * int64) list;
  imports : string list;
  plt : (string * int64) list;  (** import name → PLT entry address *)
}

(** An imported function with its guest-side implementation (the "guest
    shared library" code, entered through the PLT when the host linker
    does not intercept).  The implementation must be labelled
    [name ^ "@impl"] and end in [Ret]. *)
type import = { name : string; guest_impl : X86.Asm.item list }

(** [build ~entry ~imports items] assembles user code, PLT stubs and
    guest library implementations into an image. *)
val build :
  ?org:int64 -> entry:string -> ?imports:import list -> X86.Asm.item list -> t

(** Address of a symbol. *)
val symbol : t -> string -> int64

(** The import (if any) whose PLT entry is at [addr]. *)
val plt_at : t -> int64 -> string option

(** {1 Image files}

    A versioned binary container, so guest programs can be built once
    and shipped to the DBT as files. *)

exception Bad_image of string

(** Writes format "GELF2": magic, CRC-32 of the body (8 hex digits),
    then the fields.  The write is atomic (temp file renamed into
    place).  [on_commit], if given, runs after the temporary file is
    complete but before the rename — chaos campaigns raise from it to
    simulate a crash in that window, leaving any previous image under
    the path intact. *)
val save : ?on_commit:(unit -> unit) -> t -> string -> unit

(** Raises {!Bad_image} on corrupt or incompatible files.  "GELF2"
    files are checksum-verified before parsing; legacy "GELF1" files
    (no checksum) still load. *)
val load : string -> t

(** Offline integrity check ([gelf_tool verify]): parses and
    checksum-verifies the file without constructing anything.
    [Error msg] carries the {!Bad_image} (or I/O) reason. *)
val verify_file : string -> (unit, string) result
