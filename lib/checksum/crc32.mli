(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    The integrity guard shared by every persistent artifact in the
    repo: gelf image files, the engine's translation-cache entries and
    the resumable sweep's frontier journal all frame their payloads
    with this checksum so that bit rot and torn writes surface as typed
    faults instead of silently corrupted state. *)

val digest : ?crc:int32 -> string -> int32
(** [digest s] is the CRC-32 of [s].  Pass [~crc] (a previous digest)
    to continue a running checksum over concatenated chunks:
    [digest ~crc:(digest a) b = digest (a ^ b)]. *)

val digest_sub : ?crc:int32 -> string -> pos:int -> len:int -> int32
(** CRC-32 of [len] bytes of [s] starting at [pos].  Raises
    [Invalid_argument] if the range is out of bounds. *)

val to_hex : int32 -> string
(** Fixed-width lowercase 8-char hex rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex chars. *)
