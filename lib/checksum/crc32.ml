(* Reflected CRC-32, polynomial 0xEDB88320 (IEEE), one 256-entry table
   computed at load time.  Matches zlib's crc32(): empty string -> 0,
   "123456789" -> 0xCBF43926. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let digest_sub ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest_sub";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let digest ?crc s = digest_sub ?crc s ~pos:0 ~len:(String.length s)

let to_hex crc = Printf.sprintf "%08lx" (Int32.logand crc 0xFFFFFFFFl)

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v when v >= 0L && v <= 0xFFFFFFFFL -> Some (Int64.to_int32 v)
    | Some _ | None -> None
