type key = { scheme : string; program : string; model : string; axiom : string }

type t = {
  table : (key, int ref) Hashtbl.t;
  counters : (string, Obs.Metrics.counter) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64; counters = Hashtbl.create 16 }

let metric_prefix = "axiom.reject."

let counter_for t model axiom =
  let name = metric_prefix ^ model ^ "/" ^ axiom in
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Obs.Metrics.counter name in
      Hashtbl.add t.counters name c;
      c

(* What the coverage matrix counts: for each candidate execution the
   model rejects, the {e discriminating} axiom — the first violated one
   in checking order, i.e. [Explain.check]'s verdict.  Executions the
   predicate rejects but no decomposed axiom explains (not the case for
   any lib/axiom model) land in "(undiagnosed)". *)
let record ?(quiet = false) t ~scheme ~program ~(model : Axiom.Model.t) x =
  let axiom =
    match Axiom.Explain.which_of_model model with
    | None -> "(unknown model)"
    | Some w -> (
        match Axiom.Explain.check w x with
        | Axiom.Explain.Violates { axiom; _ } -> axiom
        | Axiom.Explain.Consistent -> "(undiagnosed)")
  in
  let model = model.Axiom.Model.name in
  let key = { scheme; program; model; axiom } in
  (match Hashtbl.find_opt t.table key with
  | Some r -> incr r
  | None -> Hashtbl.add t.table key (ref 1));
  if not quiet then Obs.Metrics.incr (counter_for t model axiom)

(* Merge a pre-computed delta (e.g. replayed from a sweep journal, or
   a per-attempt scratch table) into both the matrix and the metric
   counter, as if [record] had fired [n] times. *)
let add t key n =
  if n > 0 then begin
    (match Hashtbl.find_opt t.table key with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.table key (ref n));
    Obs.Metrics.add (counter_for t key.model key.axiom) n
  end

let counts t =
  List.sort compare
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table [])

let axioms_of_model (model : Axiom.Model.t) =
  match Axiom.Explain.which_of_model model with
  | Some w -> Axiom.Explain.axiom_names w
  | None -> []

let blind_spots t models =
  let exercised model axiom =
    Hashtbl.fold
      (fun k r acc -> acc || (!r > 0 && k.model = model && k.axiom = axiom))
      t.table false
  in
  List.concat_map
    (fun (m : Axiom.Model.t) ->
      List.filter_map
        (fun axiom ->
          if exercised m.Axiom.Model.name axiom then None
          else Some (m.Axiom.Model.name, axiom))
        (axioms_of_model m))
    (List.sort_uniq
       (fun (a : Axiom.Model.t) b ->
         compare a.Axiom.Model.name b.Axiom.Model.name)
       models)
