(** Self-contained HTML refinement + bench report: one file, no external
    assets (inline CSS, execution graphs as inline SVG with the DOT
    source embedded in a [<details>] block).

    Output is deterministic for equal inputs — no timestamps, and every
    collection is rendered in sorted order — so two runs over the same
    repo state produce byte-identical reports (pinned by
    [test/test_report.ml]). *)

(** Inline SVG of an execution: threads as columns (init leftmost),
    events in po order top-to-bottom, po/rf/co/fr edges colour-coded and
    [highlights] cycles overlaid as dashed crimson edges labelled with
    the axiom name. *)
val svg_of_execution :
  ?highlights:Dot.highlight list -> Axiom.Execution.t -> string

(** All [BENCH_*.json] files of a directory (name-sorted), parsed;
    unreadable directories yield [[]], unparseable files a
    [Json.String "unparseable: …"] marker. *)
val load_bench_dir : string -> (string * Json.t) list

(** Render the full report: sweep table, witness graphs, coverage
    matrix (with [models] supplying the axiom row space for blind-spot
    detection), metrics snapshot and one bench-trajectory table per
    [BENCH_*.json]. *)
val render :
  ?title:string ->
  ?metrics:Obs.Metrics.snapshot ->
  ?coverage:Coverage.t ->
  ?models:Axiom.Model.t list ->
  ?bench:(string * Json.t) list ->
  Sweep.cell list ->
  string

(** Write [report.html] plus one [witness-<scheme>-<program>-<n>.json]
    per captured witness into [dir] (created if missing); returns the
    HTML filename and the witness filenames written. *)
val write :
  dir:string ->
  ?title:string ->
  ?metrics:Obs.Metrics.snapshot ->
  ?coverage:Coverage.t ->
  ?models:Axiom.Model.t list ->
  ?bench:(string * Json.t) list ->
  Sweep.cell list ->
  string * string list
