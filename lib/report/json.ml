type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g round-trips doubles and never prints a bare "inf"/"nan"
         (benches only write finite values; map the rest to null). *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent, enough for the BENCH_*.json files and
   the witness envelopes — the repo has no JSON dependency. *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Keep it byte-level: BMP code points as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_string s = try Ok (parse s) with Parse_error msg -> Error msg

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
