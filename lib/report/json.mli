(** Minimal JSON: a deterministic emitter for the witness / report
    artifacts and a recursive-descent parser for reading the
    [BENCH_*.json] files back into the HTML report.  The repo carries no
    JSON dependency, so this is hand-rolled; it covers the full JSON
    grammar except surrogate-pair [\u] escapes (BMP only). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (no whitespace), key order preserved — byte-identical output
    for equal values, which the report's determinism test relies on.
    Non-finite floats emit as [null]. *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option
