(** The refinement sweep behind the witness report: every (scheme,
    corpus program) refinement verdict, optionally decorated with
    captured witnesses, shrunk counterexamples and axiom-coverage
    accounting.

    Verdicts always come from the unmodified {!Mapping.Check.refines}
    path; witness capture and the coverage probe are additive passes
    that run only when asked for, so a plain [run] is observationally
    the bench sweep. *)

type entry = {
  scheme : string;
  f : Litmus.Ast.prog -> Litmus.Ast.prog;
  src_model : Axiom.Model.t;
  tgt_model : Axiom.Model.t;
  corpus : (string * Litmus.Ast.prog) list;
}

type cell = {
  scheme : string;
  program : string;
  report : Mapping.Check.report;
  witnesses : Mapping.Witness.t list;  (** [] unless captured *)
  shrunk : Litmus.Ast.prog option;
      (** shrunk source counterexample, for failing cells when captured *)
}

(** The bench sweep's eleven schemes over the mapping corpus, plus the
    §3.2 FMR transformation counterexample as the pseudo-scheme
    ["transform-raw"] (source = target = TCG model, the mapping is one
    unsound RAW rewrite).  Known-failing cells: MPQ under qemu-gcc10 and
    fig2; MPQ/SB+rmws/SBQ/SBAL under qemu-gcc9; SBAL under the
    arm-orig direct/casal schemes; FMR under transform-raw. *)
val default_entries : unit -> entry list

(** [run ~capture ~coverage entries]: check every (scheme, program)
    cell.  With [capture] (default false), failing cells carry witnesses
    ({!Mapping.Witness.capture}, at most [max_witnesses] each) and a
    shrunk counterexample.  With [coverage], every source-program
    candidate rejected by the source model is accounted via
    {!Coverage.record}. *)
val run :
  ?capture:bool ->
  ?coverage:Coverage.t ->
  ?max_witnesses:int ->
  entry list ->
  cell list

val all_ok : cell list -> bool
val failing : cell list -> cell list

(** {1 Journaled (resumable) sweeps} *)

(** Journal key of a (scheme, program) cell: the two joined by a unit
    separator (0x1F), which neither side contains. *)
val cell_key : string -> string -> string

type journaled = {
  cells : cell list;  (** canonical (entries × corpus) order *)
  failures : (string * string * Parallel.Supervise.failure) list;
      (** (scheme, program, failure) of cells that timed out or were
          quarantined this run — not journaled, retried on resume *)
  replayed : int;  (** cells restored from the journal *)
  computed : int;  (** cells computed (and journaled) this run *)
  recovery : Parallel.Frontier.recovery;
      (** what opening the journal recovered (torn-tail statistics) *)
}

(** [run_journaled ~journal entries] is {!run} with crash-safety: every
    completed cell appends a CRC-guarded verdict record (verdict +
    coverage deltas) to the {!Parallel.Frontier} journal at [journal],
    and cells already journaled by an earlier interrupted run are
    replayed instead of recomputed — verdict rebuilt, coverage deltas
    merged via {!Coverage.add}, witnesses re-derived deterministically —
    so the resumed result (and an HTML report rendered from it) is
    byte-identical to an uninterrupted run's.  Each computed cell runs
    under [policy] ({!Parallel.Supervise}): timeouts and quarantined
    cells surface in [failures], are left out of the journal, and are
    retried by the next resume.  [journal_chaos] is the
    [journal-write] chaos site hook ({!Parallel.Frontier.open_}); a
    firing hook tears the append and raises
    {!Parallel.Frontier.Injected_fault}, simulating a crash.  The
    journal is checkpoint-compacted to canonical order on successful
    completion. *)
val run_journaled :
  ?capture:bool ->
  ?coverage:Coverage.t ->
  ?max_witnesses:int ->
  ?policy:Parallel.Supervise.policy ->
  ?journal_chaos:(unit -> bool) ->
  journal:string ->
  entry list ->
  journaled

(** {1 Generated corpora}

    The journaled sweep scaled to 10⁴+ QCheck-generated programs
    ({!Litmus.Generate}), deduped into shape classes and processed in
    fixed-size shards: within a shard, missing cells run as one
    supervised pool batch, and the shard's verdicts are journaled
    afterwards in deterministic order — the shard is the unit of
    crash-resumability, the cell stays the unit of verdict identity. *)

(** The schemes a generated sweep checks by default: the paper's
    verified x86→TCG frontend mapping and the corrected RMW lowering
    under both the original and fixed ARM models — sound schemes, so a
    clean generated sweep exits 0, and the two ARM cells share one
    enumeration per target program under the batch planner. *)
val default_generated_schemes : string list

(** [generated_entries ~seed n] generates [n] programs, dedups them
    into shape classes ({!Litmus.Generate.corpus}) and instantiates the
    named schemes (default {!default_generated_schemes}, resolved
    against {!default_entries}) over the class representatives. *)
val generated_entries :
  ?config:Litmus.Generate.config ->
  ?schemes:string list ->
  seed:int ->
  int ->
  Litmus.Generate.corpus * entry list

type shard_stat = {
  shard_index : int;  (** 1-based *)
  shard_cells : int;
  shard_new_pairs : int;
      (** (model, axiom) coverage pairs first seen in this shard *)
}

type generated = {
  gen_journaled : journaled;
  gen_shards : shard_stat list;
  gen_saturated_after : int option;
      (** [Some s]: no shard after the [s]th discovered a new
          (model, axiom) pair — the corpus saturated the
          discriminating-axiom coverage.  [None]: still discovering in
          the final shard, or no coverage requested. *)
}

(** [run_generated ~journal entries] — see the section comment.  With
    [?pool], each shard's missing cells are one pool batch (supervised
    via {!Parallel.Supervise.map}); verdicts are identical to the
    sequential path.  [probe_targets] additionally classifies the
    {e target}-side rejected candidates under the target model in the
    coverage accounting (that is where the ARM/TCG axioms get
    exercised).  Resumes from [journal] exactly like
    {!run_journaled}. *)
val run_generated :
  ?capture:bool ->
  ?coverage:Coverage.t ->
  ?max_witnesses:int ->
  ?policy:Parallel.Supervise.policy ->
  ?pool:Parallel.Pool.t ->
  ?shard_size:int ->
  ?probe_targets:bool ->
  journal:string ->
  entry list ->
  generated

val json_of_behaviour : Litmus.Enumerate.behaviour -> Json.t
val json_of_execution : Axiom.Execution.t -> Json.t

(** Self-describing witness artifact with the common envelope
    ([schema_version], [section = "witness"], [scheme], [program], ...)
    shared with the BENCH_*.json files. *)
val witness_json : cell -> Mapping.Witness.t -> Json.t
