(** The refinement sweep behind the witness report: every (scheme,
    corpus program) refinement verdict, optionally decorated with
    captured witnesses, shrunk counterexamples and axiom-coverage
    accounting.

    Verdicts always come from the unmodified {!Mapping.Check.refines}
    path; witness capture and the coverage probe are additive passes
    that run only when asked for, so a plain [run] is observationally
    the bench sweep. *)

type entry = {
  scheme : string;
  f : Litmus.Ast.prog -> Litmus.Ast.prog;
  src_model : Axiom.Model.t;
  tgt_model : Axiom.Model.t;
  corpus : (string * Litmus.Ast.prog) list;
}

type cell = {
  scheme : string;
  program : string;
  report : Mapping.Check.report;
  witnesses : Mapping.Witness.t list;  (** [] unless captured *)
  shrunk : Litmus.Ast.prog option;
      (** shrunk source counterexample, for failing cells when captured *)
}

(** The bench sweep's eleven schemes over the mapping corpus, plus the
    §3.2 FMR transformation counterexample as the pseudo-scheme
    ["transform-raw"] (source = target = TCG model, the mapping is one
    unsound RAW rewrite).  Known-failing cells: MPQ under qemu-gcc10 and
    fig2; MPQ/SB+rmws/SBQ/SBAL under qemu-gcc9; SBAL under the
    arm-orig direct/casal schemes; FMR under transform-raw. *)
val default_entries : unit -> entry list

(** [run ~capture ~coverage entries]: check every (scheme, program)
    cell.  With [capture] (default false), failing cells carry witnesses
    ({!Mapping.Witness.capture}, at most [max_witnesses] each) and a
    shrunk counterexample.  With [coverage], every source-program
    candidate rejected by the source model is accounted via
    {!Coverage.record}. *)
val run :
  ?capture:bool ->
  ?coverage:Coverage.t ->
  ?max_witnesses:int ->
  entry list ->
  cell list

val all_ok : cell list -> bool
val failing : cell list -> cell list

val json_of_behaviour : Litmus.Enumerate.behaviour -> Json.t
val json_of_execution : Axiom.Execution.t -> Json.t

(** Self-describing witness artifact with the common envelope
    ([schema_version], [section = "witness"], [scheme], [program], ...)
    shared with the BENCH_*.json files. *)
val witness_json : cell -> Mapping.Witness.t -> Json.t
