(** Axiom-coverage accounting: how often is each axiom of each model the
    {e discriminating} rejection reason (the first violated axiom, in
    checking order) across a refinement sweep's candidate enumerations.

    An axiom that is never the discriminating reason anywhere in the
    corpus is a blind spot: the corpus cannot distinguish a model with
    that axiom from one without it.

    Counts accumulate both in an in-process table (always, so the
    report's matrix works standalone) and in {!Obs.Metrics} counters
    named [axiom.reject.<model>/<axiom>] — the latter are no-ops while
    metrics are disabled, so the off-by-default probe contract of
    lib/obs carries over. *)

type key = { scheme : string; program : string; model : string; axiom : string }
type t

val create : unit -> t

(** Name prefix of the {!Obs.Metrics} counters
    ([axiom.reject.<model>/<axiom>]). *)
val metric_prefix : string

(** Account one rejected candidate execution of [program] under
    [model].  With [~quiet:true] only the in-process table is bumped,
    not the metric counter — journaled sweeps record attempts quietly
    into a scratch table and {!add} the delta exactly once when the
    task commits, so retries cannot double-count. *)
val record :
  ?quiet:bool ->
  t ->
  scheme:string ->
  program:string ->
  model:Axiom.Model.t ->
  Axiom.Execution.t ->
  unit

(** [add t key n] merges a pre-computed delta — replayed from a sweep
    journal, or accumulated quietly during a task attempt — into both
    the matrix and the [axiom.reject.*] counter, as if {!record} had
    fired [n] times.  No-op for [n <= 0]. *)
val add : t -> key -> int -> unit

(** All cells with nonzero counts, key-sorted. *)
val counts : t -> (key * int) list

(** The axiom row space of a model ([[]] for models
    {!Axiom.Explain.which_of_model} cannot resolve). *)
val axioms_of_model : Axiom.Model.t -> string list

(** [(model, axiom)] pairs never recorded as discriminating, over the
    given models (deduplicated by name). *)
val blind_spots : t -> Axiom.Model.t list -> (string * string) list
