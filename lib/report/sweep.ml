module En = Litmus.Enumerate
module X = Axiom.Execution

type entry = {
  scheme : string;
  f : Litmus.Ast.prog -> Litmus.Ast.prog;
  src_model : Axiom.Model.t;
  tgt_model : Axiom.Model.t;
  corpus : (string * Litmus.Ast.prog) list;
}

type cell = {
  scheme : string;
  program : string;
  report : Mapping.Check.report;
  witnesses : Mapping.Witness.t list;
  shrunk : Litmus.Ast.prog option;
}

(* The bench sweep's scheme table (bench/main.ml) plus the paper's §3.2
   FMR counterexample as a pseudo-scheme: FMR is an IR transformation
   bug, not a mapping bug, but its refinement check has the same shape —
   source and target are both TCG programs, the "mapping" is one
   application of the unsound RAW rewrite. *)
let default_entries () =
  let open Mapping.Schemes in
  let x86 = Axiom.X86_tso.model in
  let tcg = Axiom.Tcg_model.model in
  let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original in
  let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected in
  let rmw2_fe, rmw2_be = risotto_rmw2_preset in
  let casal_fe, casal_be = risotto_casal_preset in
  let qemu_fe, qemu_be = qemu_preset in
  let corpus = Litmus.Catalog.mapping_corpus in
  let mk scheme f src_model tgt_model =
    { scheme; f; src_model; tgt_model; corpus }
  in
  let raw_fmr =
    let apply_raw p =
      match Mapping.Transform.applications Mapping.Transform.Raw p with
      | t :: _ -> t
      | [] -> p
    in
    {
      scheme = "transform-raw";
      f = apply_raw;
      src_model = tcg;
      tgt_model = tcg;
      corpus = [ ("FMR", Litmus.Catalog.fmr_tcg_src) ];
    }
  in
  [
    mk "fig7a/x86->tcg" (x86_to_tcg Risotto_frontend) x86 tcg;
    mk "fig2/x86->tcg" (x86_to_tcg Qemu_frontend) x86 tcg;
    mk "qemu-gcc10/arm-fix" (x86_to_arm qemu_fe qemu_be) x86 arm_fix;
    mk "qemu-gcc9/arm-fix"
      (x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc9 })
      x86 arm_fix;
    mk "risotto-rmw2/arm-orig" (x86_to_arm rmw2_fe rmw2_be) x86 arm_orig;
    mk "risotto-rmw2/arm-fix" (x86_to_arm rmw2_fe rmw2_be) x86 arm_fix;
    mk "risotto-casal/arm-orig" (x86_to_arm casal_fe casal_be) x86 arm_orig;
    mk "risotto-casal/arm-fix" (x86_to_arm casal_fe casal_be) x86 arm_fix;
    mk "armcats-direct/arm-orig" x86_to_arm_direct_armcats x86 arm_orig;
    mk "armcats-direct/arm-fix" x86_to_arm_direct_armcats x86 arm_fix;
    mk "no-fences/arm-fix"
      (x86_to_arm No_fences_frontend { lowering = `Risotto; rmw = Risotto_rmw1 })
      x86 arm_fix;
    raw_fmr;
  ]

let run ?(capture = false) ?coverage ?max_witnesses entries =
  List.concat_map
    (fun e ->
      List.map
        (fun (program, src) ->
          let tgt = e.f src in
          let report =
            Mapping.Check.refines ~src_model:e.src_model
              ~tgt_model:e.tgt_model ~src ~tgt
          in
          let report =
            {
              report with
              Mapping.Check.name = Printf.sprintf "%s: %s" e.scheme program;
            }
          in
          (* The verdict above comes from the untouched default path;
             the probes below are additive and opt-in. *)
          (match coverage with
          | None -> ()
          | Some cov ->
              ignore
                (En.behaviours_probed
                   ~on_reject:(fun x ->
                     Coverage.record cov ~scheme:e.scheme ~program
                       ~model:e.src_model x)
                   e.src_model src));
          let witnesses, shrunk =
            if capture && not report.Mapping.Check.ok then
              ( Mapping.Witness.capture ?max_witnesses
                  ~src_model:e.src_model ~tgt_model:e.tgt_model ~src ~tgt
                  report,
                Some
                  (Mapping.Witness.shrink ~scheme:e.f ~src_model:e.src_model
                     ~tgt_model:e.tgt_model src) )
            else ([], None)
          in
          { scheme = e.scheme; program; report; witnesses; shrunk })
        e.corpus)
    entries

let all_ok cells = List.for_all (fun c -> c.report.Mapping.Check.ok) cells
let failing cells = List.filter (fun c -> not c.report.Mapping.Check.ok) cells

(* ------------------------------------------------------------------ *)
(* JSON artifacts *)

let json_of_behaviour (b : En.behaviour) =
  Json.Obj
    [
      ( "mem",
        Json.List
          (List.map
             (fun (loc, v) ->
               Json.Obj [ ("loc", Json.String loc); ("value", Json.Int v) ])
             b.En.mem) );
      ( "regs",
        Json.List
          (List.map
             (fun ((tid, reg), v) ->
               Json.Obj
                 [
                   ("tid", Json.Int tid);
                   ("reg", Json.String reg);
                   ("value", Json.Int v);
                 ])
             b.En.regs) );
    ]

let json_of_rel r =
  Json.List
    (List.map
       (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ])
       (Relalg.Rel.to_list r))

let json_of_execution (x : X.t) =
  Json.Obj
    [
      ( "events",
        Json.List
          (List.map
             (fun (e : Axiom.Event.t) ->
               Json.Obj
                 [
                   ("id", Json.Int e.Axiom.Event.id);
                   ("tid", Json.Int e.Axiom.Event.tid);
                   ( "label",
                     Json.String
                       (Format.asprintf "%a" Axiom.Event.pp_label
                          e.Axiom.Event.label) );
                 ])
             (List.sort
                (fun (a : Axiom.Event.t) b ->
                  compare a.Axiom.Event.id b.Axiom.Event.id)
                x.X.events)) );
      ("po", json_of_rel x.X.po);
      ("rf", json_of_rel x.X.rf);
      ("co", json_of_rel x.X.co);
      ("fr", json_of_rel (X.fr x));
    ]

let json_of_verdict = function
  | Axiom.Explain.Consistent ->
      Json.Obj [ ("consistent", Json.Bool true) ]
  | Axiom.Explain.Violates { axiom; cycle } ->
      Json.Obj
        [
          ("axiom", Json.String axiom);
          ("cycle", Json.List (List.map (fun i -> Json.Int i) cycle));
        ]

(* Witness artifact envelope: same leading fields as the BENCH_*.json
   envelope, so one schema check covers both artifact families. *)
let witness_json (c : cell) (w : Mapping.Witness.t) =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("section", Json.String "witness");
      ("scheme", Json.String c.scheme);
      ("program", Json.String c.program);
      ("behaviour", json_of_behaviour w.Mapping.Witness.behaviour);
      ("target", json_of_execution w.Mapping.Witness.target);
      ( "forbidden",
        match w.Mapping.Witness.forbidden with
        | Some x -> json_of_execution x
        | None -> Json.Null );
      ( "violations",
        Json.List (List.map json_of_verdict w.Mapping.Witness.violations) );
      ( "nearest_behaviour",
        match w.Mapping.Witness.nearest with
        | Some (_, b) -> json_of_behaviour b
        | None -> Json.Null );
      ( "shrunk_instructions",
        match c.shrunk with
        | Some p -> Json.Int (Mapping.Witness.instruction_count p)
        | None -> Json.Null );
    ]

(* ------------------------------------------------------------------ *)
(* Journaled (resumable) sweeps.

   Each completed (scheme, program) cell appends one record to a
   {!Parallel.Frontier} journal: key = scheme ^ "\x1f" ^ program, value
   = the JSON-encoded verdict plus the cell's coverage deltas.  On
   resume, journaled cells are replayed — report rebuilt, coverage
   deltas merged via [Coverage.add] — and only the remainder is
   computed, each cell under {!Parallel.Supervise} so a wedged or
   poisoned cell becomes a typed failure instead of hanging the sweep.

   Witnesses and shrunk counterexamples are {e not} journaled: they are
   a deterministic function of (scheme, program) and are recomputed for
   failing cells on both the compute and the replay path, which is what
   makes a resumed report byte-identical to an uninterrupted one. *)

let cell_key scheme program = scheme ^ "\x1f" ^ program

(* -------- verdict record codec -------- *)

exception Bad_record of string

let jfail fmt = Printf.ksprintf (fun m -> raise (Bad_record m)) fmt
let jint = function Json.Int n -> n | _ -> jfail "expected int"
let jstr = function Json.String s -> s | _ -> jfail "expected string"
let jbool = function Json.Bool b -> b | _ -> jfail "expected bool"
let jlist = function Json.List l -> l | _ -> jfail "expected list"

let jfield name j =
  match Json.member name j with
  | Some v -> v
  | None -> jfail "missing field %S" name

let behaviour_of_json j =
  {
    En.mem =
      List.map
        (fun m -> (jstr (jfield "loc" m), jint (jfield "value" m)))
        (jlist (jfield "mem" j));
    En.regs =
      List.map
        (fun r ->
          ( (jint (jfield "tid" r), jstr (jfield "reg" r)),
            jint (jfield "value" r) ))
        (jlist (jfield "regs" j));
  }

let verdict_to_string (r : Mapping.Check.report)
    (deltas : (Coverage.key * int) list) =
  Json.to_string
    (Json.Obj
       [
         ("ok", Json.Bool r.Mapping.Check.ok);
         ("src_behaviours", Json.Int r.Mapping.Check.src_behaviours);
         ("tgt_behaviours", Json.Int r.Mapping.Check.tgt_behaviours);
         ( "extra",
           Json.List (List.map json_of_behaviour r.Mapping.Check.extra) );
         ( "cov",
           Json.List
             (List.map
                (fun ((k : Coverage.key), n) ->
                  Json.Obj
                    [
                      ("model", Json.String k.Coverage.model);
                      ("axiom", Json.String k.Coverage.axiom);
                      ("count", Json.Int n);
                    ])
                deltas) );
       ])

let verdict_of_string ~scheme ~program s =
  match Json.of_string s with
  | Error msg -> jfail "unparsable verdict record: %s" msg
  | Ok j ->
      let report =
        {
          Mapping.Check.name = Printf.sprintf "%s: %s" scheme program;
          ok = jbool (jfield "ok" j);
          src_behaviours = jint (jfield "src_behaviours" j);
          tgt_behaviours = jint (jfield "tgt_behaviours" j);
          extra = List.map behaviour_of_json (jlist (jfield "extra" j));
        }
      in
      let deltas =
        List.map
          (fun d ->
            ( {
                Coverage.scheme;
                program;
                model = jstr (jfield "model" d);
                axiom = jstr (jfield "axiom" d);
              },
              jint (jfield "count" d) ))
          (jlist (jfield "cov" j))
      in
      (report, deltas)

(* -------- the resumable runner -------- *)

type journaled = {
  cells : cell list;
  failures : (string * string * Parallel.Supervise.failure) list;
  replayed : int;
  computed : int;
  recovery : Parallel.Frontier.recovery;
}

let run_journaled ?(capture = false) ?coverage ?max_witnesses
    ?(policy = Parallel.Supervise.default) ?journal_chaos ~journal entries =
  let fr, recovery = Parallel.Frontier.open_ ?chaos:journal_chaos journal in
  (* Last record wins, as checkpoint compaction would decide. *)
  let verdicts = Hashtbl.create 64 in
  List.iter
    (fun (k, v) -> Hashtbl.replace verdicts k v)
    recovery.Parallel.Frontier.entries;
  let replayed = ref 0 and computed = ref 0 in
  let failures = ref [] in
  let written = ref [] in
  (* Witness decoration is recomputed on both paths, never journaled:
     deterministic, so replay stays byte-identical. *)
  let decorate e src report =
    if capture && not report.Mapping.Check.ok then
      ( Mapping.Witness.capture ?max_witnesses ~src_model:e.src_model
          ~tgt_model:e.tgt_model ~src ~tgt:(e.f src) report,
        Some
          (Mapping.Witness.shrink ~scheme:e.f ~src_model:e.src_model
             ~tgt_model:e.tgt_model src) )
    else ([], None)
  in
  let compute e program src () =
    let tgt = e.f src in
    let report =
      Mapping.Check.refines ~src_model:e.src_model ~tgt_model:e.tgt_model ~src
        ~tgt
    in
    let report =
      {
        report with
        Mapping.Check.name = Printf.sprintf "%s: %s" e.scheme program;
      }
    in
    let deltas =
      match coverage with
      | None -> []
      | Some _ ->
          (* Quiet scratch per attempt: a retried attempt re-probes from
             zero, and only the committing attempt's delta is merged —
             exactly-once accounting under retry. *)
          let scratch = Coverage.create () in
          ignore
            (En.behaviours_probed
               ~on_reject:(fun x ->
                 Coverage.record ~quiet:true scratch ~scheme:e.scheme ~program
                   ~model:e.src_model x)
               e.src_model src);
          Coverage.counts scratch
    in
    (report, deltas)
  in
  let merge_deltas deltas =
    match coverage with
    | None -> ()
    | Some cov -> List.iter (fun (k, n) -> Coverage.add cov k n) deltas
  in
  let cells =
    List.concat_map
      (fun (e : entry) ->
        List.filter_map
          (fun (program, src) ->
            let key = cell_key e.scheme program in
            let replay =
              match Hashtbl.find_opt verdicts key with
              | None -> None
              | Some v -> (
                  match verdict_of_string ~scheme:e.scheme ~program v with
                  | report, deltas -> Some (report, deltas, v)
                  | exception Bad_record _ ->
                      (* A record the CRC accepted but the codec cannot
                         read (e.g. written by an older build): drop it
                         and recompute the cell. *)
                      None)
            in
            match replay with
            | Some (report, deltas, v) ->
                incr replayed;
                merge_deltas deltas;
                written := (key, v) :: !written;
                let witnesses, shrunk = decorate e src report in
                Some { scheme = e.scheme; program; report; witnesses; shrunk }
            | None -> (
                match
                  Parallel.Supervise.run policy (compute e program src)
                with
                | Ok (report, deltas) ->
                    incr computed;
                    (* Journal before merging: if the append tears (chaos
                       or crash), the cell is simply recomputed on
                       resume — verdicts are never lost, never doubled. *)
                    Parallel.Frontier.append fr ~key
                      ~value:(verdict_to_string report deltas);
                    merge_deltas deltas;
                    written :=
                      (key, verdict_to_string report deltas) :: !written;
                    let witnesses, shrunk = decorate e src report in
                    Some
                      { scheme = e.scheme; program; report; witnesses; shrunk }
                | Error failure ->
                    (* No journal record: a resumed run retries the
                       cell, so a transient environment converges to the
                       fault-free verdict table. *)
                    failures := (e.scheme, program, failure) :: !failures;
                    None))
          e.corpus)
      entries
  in
  (* Compact: one record per cell, canonical sweep order — a journal
     grown across many interrupted runs shrinks back to its minimum. *)
  Parallel.Frontier.checkpoint fr (List.rev !written);
  Parallel.Frontier.close fr;
  {
    cells;
    failures = List.rev !failures;
    replayed = !replayed;
    computed = !computed;
    recovery;
  }

(* ------------------------------------------------------------------ *)
(* Generated corpora: sharded, pool-aware, saturation-tracking.

   A generated sweep is the journaled sweep scaled up: 10⁴ programs
   dedup into a few thousand shape classes checked under a handful of
   schemes.  Cells are processed in fixed-size shards; within a shard,
   missing cells run as one supervised pool batch (the batch planner's
   chunk scheduling and shared enumeration apply), and the shard's
   verdicts are journaled afterwards in deterministic order — the shard
   is the unit of crash-resumability, the cell remains the unit of
   verdict identity.  Per shard, the runner tracks how many previously
   unseen (model, axiom) coverage pairs the shard's cells discovered;
   when late shards stop contributing new pairs, the generated corpus
   has saturated the discriminating-axiom coverage the matrix can
   report. *)

let default_generated_schemes =
  [ "fig7a/x86->tcg"; "risotto-rmw2/arm-orig"; "risotto-rmw2/arm-fix" ]

let generated_entries ?config ?(schemes = default_generated_schemes) ~seed n =
  let c = Litmus.Generate.corpus ?config ~seed n in
  let corpus =
    List.map
      (fun (cl : Litmus.Generate.cls) -> (cl.cls_name, cl.cls_rep))
      c.classes
  in
  let entries =
    List.filter_map
      (fun (e : entry) ->
        if List.mem e.scheme schemes then Some { e with corpus } else None)
      (default_entries ())
  in
  (c, entries)

type shard_stat = {
  shard_index : int;  (* 1-based *)
  shard_cells : int;
  shard_new_pairs : int;  (* (model, axiom) pairs first seen in this shard *)
}

type generated = {
  gen_journaled : journaled;
  gen_shards : shard_stat list;
  gen_saturated_after : int option;
      (* [Some s]: no shard after the [s]th discovered a new
         (model, axiom) pair.  [None]: still discovering in the final
         shard (or no coverage requested). *)
}

let rec take_split n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let h, t = take_split (n - 1) rest in
        (x :: h, t)

let run_generated ?(capture = false) ?coverage ?max_witnesses
    ?(policy = Parallel.Supervise.default) ?pool ?(shard_size = 256)
    ?(probe_targets = false) ~journal entries =
  let fr, recovery = Parallel.Frontier.open_ journal in
  let verdicts = Hashtbl.create 1024 in
  List.iter
    (fun (k, v) -> Hashtbl.replace verdicts k v)
    recovery.Parallel.Frontier.entries;
  let replayed = ref 0 and computed = ref 0 in
  let failures = ref [] and written = ref [] in
  let decorate (e : entry) src report =
    if capture && not report.Mapping.Check.ok then
      ( Mapping.Witness.capture ?max_witnesses ~src_model:e.src_model
          ~tgt_model:e.tgt_model ~src ~tgt:(e.f src) report,
        Some
          (Mapping.Witness.shrink ~scheme:e.f ~src_model:e.src_model
             ~tgt_model:e.tgt_model src) )
    else ([], None)
  in
  let compute ((e : entry), program, src) =
    let tgt = e.f src in
    let report =
      Mapping.Check.refines ~src_model:e.src_model ~tgt_model:e.tgt_model ~src
        ~tgt
    in
    let report =
      {
        report with
        Mapping.Check.name = Printf.sprintf "%s: %s" e.scheme program;
      }
    in
    let deltas =
      match coverage with
      | None -> []
      | Some _ ->
          let scratch = Coverage.create () in
          ignore
            (En.behaviours_probed
               ~on_reject:(fun x ->
                 Coverage.record ~quiet:true scratch ~scheme:e.scheme ~program
                   ~model:e.src_model x)
               e.src_model src);
          (* Generated programs are where the target models' axioms get
             exercised: optionally classify the target side's rejected
             candidates too. *)
          if probe_targets then
            ignore
              (En.behaviours_probed
                 ~on_reject:(fun x ->
                   Coverage.record ~quiet:true scratch ~scheme:e.scheme
                     ~program ~model:e.tgt_model x)
                 e.tgt_model tgt);
          Coverage.counts scratch
    in
    (report, deltas)
  in
  let merge_deltas deltas =
    match coverage with
    | None -> ()
    | Some cov -> List.iter (fun (k, n) -> Coverage.add cov k n) deltas
  in
  let seen_pairs = Hashtbl.create 64 in
  let flat =
    List.concat_map
      (fun (e : entry) ->
        List.map (fun (program, src) -> (e, program, src)) e.corpus)
      entries
  in
  let rec shard_loop idx cells_acc stats_acc rest =
    match rest with
    | [] -> (List.concat (List.rev cells_acc), List.rev stats_acc)
    | _ ->
        let shard, rest = take_split shard_size rest in
        (* Classify the shard's cells: replayable from the journal, or
           missing and due for the (pooled) compute batch. *)
        let prepared =
          List.map
            (fun (((e : entry), program, _src) as c) ->
              let key = cell_key e.scheme program in
              match Hashtbl.find_opt verdicts key with
              | Some v -> (
                  match verdict_of_string ~scheme:e.scheme ~program v with
                  | rd -> `Replay (c, key, rd, v)
                  | exception Bad_record _ -> `Compute (c, key))
              | None -> `Compute (c, key))
            shard
        in
        let to_compute =
          List.filter_map
            (function `Compute (c, key) -> Some (c, key) | `Replay _ -> None)
            prepared
        in
        let rtbl = Hashtbl.create 64 in
        (match to_compute with
        | [] -> ()
        | _ ->
            let results =
              Parallel.Supervise.map ?pool policy
                (fun (c, _key) -> compute c)
                to_compute
            in
            List.iter2
              (fun (_, key) r -> Hashtbl.replace rtbl key r)
              to_compute results);
        let new_pairs = ref 0 in
        let note_deltas deltas =
          List.iter
            (fun ((k : Coverage.key), _) ->
              let pair = (k.Coverage.model, k.Coverage.axiom) in
              if not (Hashtbl.mem seen_pairs pair) then begin
                Hashtbl.add seen_pairs pair ();
                incr new_pairs
              end)
            deltas
        in
        let cells =
          List.filter_map
            (function
              | `Replay (((e : entry), program, src), key, (report, deltas), v)
                ->
                  incr replayed;
                  merge_deltas deltas;
                  note_deltas deltas;
                  written := (key, v) :: !written;
                  let witnesses, shrunk = decorate e src report in
                  Some
                    { scheme = e.scheme; program; report; witnesses; shrunk }
              | `Compute (((e : entry), program, src), key) -> (
                  match Hashtbl.find rtbl key with
                  | Ok (report, deltas) ->
                      incr computed;
                      (* Journal in deterministic shard order, after the
                         batch: the shard is the resume granule. *)
                      Parallel.Frontier.append fr ~key
                        ~value:(verdict_to_string report deltas);
                      merge_deltas deltas;
                      note_deltas deltas;
                      written :=
                        (key, verdict_to_string report deltas) :: !written;
                      let witnesses, shrunk = decorate e src report in
                      Some
                        {
                          scheme = e.scheme;
                          program;
                          report;
                          witnesses;
                          shrunk;
                        }
                  | Error failure ->
                      failures := (e.scheme, program, failure) :: !failures;
                      None))
            prepared
        in
        let stat =
          {
            shard_index = idx;
            shard_cells = List.length shard;
            shard_new_pairs = !new_pairs;
          }
        in
        shard_loop (idx + 1) (cells :: cells_acc) (stat :: stats_acc) rest
  in
  let cells, shard_stats = shard_loop 1 [] [] flat in
  Parallel.Frontier.checkpoint fr (List.rev !written);
  Parallel.Frontier.close fr;
  let nshards = List.length shard_stats in
  let saturated_after =
    match coverage with
    | None -> None
    | Some _ ->
        let last_new =
          List.fold_left
            (fun acc s -> if s.shard_new_pairs > 0 then s.shard_index else acc)
            0 shard_stats
        in
        if last_new < nshards then Some last_new else None
  in
  {
    gen_journaled =
      {
        cells;
        failures = List.rev !failures;
        replayed = !replayed;
        computed = !computed;
        recovery;
      };
    gen_shards = shard_stats;
    gen_saturated_after = saturated_after;
  }
