module En = Litmus.Enumerate
module X = Axiom.Execution

type entry = {
  scheme : string;
  f : Litmus.Ast.prog -> Litmus.Ast.prog;
  src_model : Axiom.Model.t;
  tgt_model : Axiom.Model.t;
  corpus : (string * Litmus.Ast.prog) list;
}

type cell = {
  scheme : string;
  program : string;
  report : Mapping.Check.report;
  witnesses : Mapping.Witness.t list;
  shrunk : Litmus.Ast.prog option;
}

(* The bench sweep's scheme table (bench/main.ml) plus the paper's §3.2
   FMR counterexample as a pseudo-scheme: FMR is an IR transformation
   bug, not a mapping bug, but its refinement check has the same shape —
   source and target are both TCG programs, the "mapping" is one
   application of the unsound RAW rewrite. *)
let default_entries () =
  let open Mapping.Schemes in
  let x86 = Axiom.X86_tso.model in
  let tcg = Axiom.Tcg_model.model in
  let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original in
  let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected in
  let rmw2_fe, rmw2_be = risotto_rmw2_preset in
  let casal_fe, casal_be = risotto_casal_preset in
  let qemu_fe, qemu_be = qemu_preset in
  let corpus = Litmus.Catalog.mapping_corpus in
  let mk scheme f src_model tgt_model =
    { scheme; f; src_model; tgt_model; corpus }
  in
  let raw_fmr =
    let apply_raw p =
      match Mapping.Transform.applications Mapping.Transform.Raw p with
      | t :: _ -> t
      | [] -> p
    in
    {
      scheme = "transform-raw";
      f = apply_raw;
      src_model = tcg;
      tgt_model = tcg;
      corpus = [ ("FMR", Litmus.Catalog.fmr_tcg_src) ];
    }
  in
  [
    mk "fig7a/x86->tcg" (x86_to_tcg Risotto_frontend) x86 tcg;
    mk "fig2/x86->tcg" (x86_to_tcg Qemu_frontend) x86 tcg;
    mk "qemu-gcc10/arm-fix" (x86_to_arm qemu_fe qemu_be) x86 arm_fix;
    mk "qemu-gcc9/arm-fix"
      (x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc9 })
      x86 arm_fix;
    mk "risotto-rmw2/arm-orig" (x86_to_arm rmw2_fe rmw2_be) x86 arm_orig;
    mk "risotto-rmw2/arm-fix" (x86_to_arm rmw2_fe rmw2_be) x86 arm_fix;
    mk "risotto-casal/arm-orig" (x86_to_arm casal_fe casal_be) x86 arm_orig;
    mk "risotto-casal/arm-fix" (x86_to_arm casal_fe casal_be) x86 arm_fix;
    mk "armcats-direct/arm-orig" x86_to_arm_direct_armcats x86 arm_orig;
    mk "armcats-direct/arm-fix" x86_to_arm_direct_armcats x86 arm_fix;
    mk "no-fences/arm-fix"
      (x86_to_arm No_fences_frontend { lowering = `Risotto; rmw = Risotto_rmw1 })
      x86 arm_fix;
    raw_fmr;
  ]

let run ?(capture = false) ?coverage ?max_witnesses entries =
  List.concat_map
    (fun e ->
      List.map
        (fun (program, src) ->
          let tgt = e.f src in
          let report =
            Mapping.Check.refines ~src_model:e.src_model
              ~tgt_model:e.tgt_model ~src ~tgt
          in
          let report =
            {
              report with
              Mapping.Check.name = Printf.sprintf "%s: %s" e.scheme program;
            }
          in
          (* The verdict above comes from the untouched default path;
             the probes below are additive and opt-in. *)
          (match coverage with
          | None -> ()
          | Some cov ->
              ignore
                (En.behaviours_probed
                   ~on_reject:(fun x ->
                     Coverage.record cov ~scheme:e.scheme ~program
                       ~model:e.src_model x)
                   e.src_model src));
          let witnesses, shrunk =
            if capture && not report.Mapping.Check.ok then
              ( Mapping.Witness.capture ?max_witnesses
                  ~src_model:e.src_model ~tgt_model:e.tgt_model ~src ~tgt
                  report,
                Some
                  (Mapping.Witness.shrink ~scheme:e.f ~src_model:e.src_model
                     ~tgt_model:e.tgt_model src) )
            else ([], None)
          in
          { scheme = e.scheme; program; report; witnesses; shrunk })
        e.corpus)
    entries

let all_ok cells = List.for_all (fun c -> c.report.Mapping.Check.ok) cells
let failing cells = List.filter (fun c -> not c.report.Mapping.Check.ok) cells

(* ------------------------------------------------------------------ *)
(* JSON artifacts *)

let json_of_behaviour (b : En.behaviour) =
  Json.Obj
    [
      ( "mem",
        Json.List
          (List.map
             (fun (loc, v) ->
               Json.Obj [ ("loc", Json.String loc); ("value", Json.Int v) ])
             b.En.mem) );
      ( "regs",
        Json.List
          (List.map
             (fun ((tid, reg), v) ->
               Json.Obj
                 [
                   ("tid", Json.Int tid);
                   ("reg", Json.String reg);
                   ("value", Json.Int v);
                 ])
             b.En.regs) );
    ]

let json_of_rel r =
  Json.List
    (List.map
       (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ])
       (Relalg.Rel.to_list r))

let json_of_execution (x : X.t) =
  Json.Obj
    [
      ( "events",
        Json.List
          (List.map
             (fun (e : Axiom.Event.t) ->
               Json.Obj
                 [
                   ("id", Json.Int e.Axiom.Event.id);
                   ("tid", Json.Int e.Axiom.Event.tid);
                   ( "label",
                     Json.String
                       (Format.asprintf "%a" Axiom.Event.pp_label
                          e.Axiom.Event.label) );
                 ])
             (List.sort
                (fun (a : Axiom.Event.t) b ->
                  compare a.Axiom.Event.id b.Axiom.Event.id)
                x.X.events)) );
      ("po", json_of_rel x.X.po);
      ("rf", json_of_rel x.X.rf);
      ("co", json_of_rel x.X.co);
      ("fr", json_of_rel (X.fr x));
    ]

let json_of_verdict = function
  | Axiom.Explain.Consistent ->
      Json.Obj [ ("consistent", Json.Bool true) ]
  | Axiom.Explain.Violates { axiom; cycle } ->
      Json.Obj
        [
          ("axiom", Json.String axiom);
          ("cycle", Json.List (List.map (fun i -> Json.Int i) cycle));
        ]

(* Witness artifact envelope: same leading fields as the BENCH_*.json
   envelope, so one schema check covers both artifact families. *)
let witness_json (c : cell) (w : Mapping.Witness.t) =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("section", Json.String "witness");
      ("scheme", Json.String c.scheme);
      ("program", Json.String c.program);
      ("behaviour", json_of_behaviour w.Mapping.Witness.behaviour);
      ("target", json_of_execution w.Mapping.Witness.target);
      ( "forbidden",
        match w.Mapping.Witness.forbidden with
        | Some x -> json_of_execution x
        | None -> Json.Null );
      ( "violations",
        Json.List (List.map json_of_verdict w.Mapping.Witness.violations) );
      ( "nearest_behaviour",
        match w.Mapping.Witness.nearest with
        | Some (_, b) -> json_of_behaviour b
        | None -> Json.Null );
      ( "shrunk_instructions",
        match c.shrunk with
        | Some p -> Json.Int (Mapping.Witness.instruction_count p)
        | None -> Json.Null );
    ]
