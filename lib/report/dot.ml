open Relalg

type highlight = { axiom : string; cycle : int list }

(* The base edge families drawn for an execution, in rendering order:
   immediate program order (transitively-implied po edges only clutter),
   full rf, per-location immediate co, full fr. *)
let base_edges (x : Axiom.Execution.t) =
  [
    ("po", Rel.to_list (Rel.immediate x.Axiom.Execution.po));
    ("rf", Rel.to_list x.Axiom.Execution.rf);
    ("co", Rel.to_list (Rel.immediate x.Axiom.Execution.co));
    ("fr", Rel.to_list (Axiom.Execution.fr x));
  ]

let edge_attrs = function
  | "po" -> "color=\"black\""
  | "rf" -> "color=\"forestgreen\",fontcolor=\"forestgreen\""
  | "co" -> "color=\"blue\",fontcolor=\"blue\""
  | "fr" -> "color=\"darkorange\",fontcolor=\"darkorange\""
  | _ -> ""

(* The closed edge list of a cycle: consecutive pairs plus last→first
   (see [Axiom.Explain.verdict]). *)
let cycle_edges = function
  | [] -> []
  | first :: _ as cycle ->
      let rec go = function
        | [] -> []
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: go rest
      in
      go cycle

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_label (e : Axiom.Event.t) =
  escape
    (Format.asprintf "%d: %a" e.Axiom.Event.id Axiom.Event.pp_label
       e.Axiom.Event.label)

let render ?(name = "execution") ?(highlights = []) (x : Axiom.Execution.t) =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph \"%s\" {\n" (escape name);
  pf "  rankdir=TB;\n";
  pf "  node [shape=box,fontname=\"monospace\",fontsize=10];\n";
  pf "  edge [fontname=\"monospace\",fontsize=9];\n";
  (* One cluster per thread, init writes first; events within a cluster
     in id order (ids are po-ordered per thread). *)
  let tids =
    List.sort_uniq compare
      (List.map (fun e -> e.Axiom.Event.tid) x.Axiom.Execution.events)
  in
  List.iter
    (fun tid ->
      let events =
        List.sort
          (fun a b -> compare a.Axiom.Event.id b.Axiom.Event.id)
          (List.filter
             (fun e -> e.Axiom.Event.tid = tid)
             x.Axiom.Execution.events)
      in
      let cluster_name =
        if tid = Axiom.Event.init_tid then "init" else Printf.sprintf "T%d" tid
      in
      pf "  subgraph \"cluster_%s\" {\n" cluster_name;
      pf "    label=\"%s\";\n" cluster_name;
      pf "    style=dashed;\n";
      List.iter
        (fun e -> pf "    e%d [label=\"%s\"];\n" e.Axiom.Event.id (node_label e))
        events;
      pf "  }\n")
    tids;
  List.iter
    (fun (family, edges) ->
      List.iter
        (fun (a, b) ->
          pf "  e%d -> e%d [label=\"%s\",%s];\n" a b family
            (edge_attrs family))
        edges)
    (base_edges x);
  (* Violated-axiom cycles: drawn as extra crimson edges on top of the
     base families, the first edge labelled with the axiom name. *)
  List.iter
    (fun { axiom; cycle } ->
      List.iteri
        (fun i (a, b) ->
          let label =
            if i = 0 then escape axiom else Axiom.Explain.edge_rel x a b
          in
          pf
            "  e%d -> e%d \
             [label=\"%s\",color=\"crimson\",fontcolor=\"crimson\",penwidth=2.0,constraint=false];\n"
            a b label)
        (cycle_edges cycle))
    highlights;
  pf "}\n";
  Buffer.contents buf
