module X = Axiom.Execution

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Inline SVG execution graphs (the report must be self-contained: no
   external assets, no graphviz invocation — the DOT source is embedded
   alongside for offline rendering). *)

let edge_colour = function
  | "po" -> "black"
  | "rf" -> "forestgreen"
  | "co" -> "blue"
  | "fr" -> "darkorange"
  | _ -> "crimson"

let node_w = 150
let node_h = 26
let col_gap = 190
let row_gap = 64
let margin = 30

let svg_of_execution ?(highlights = []) (x : X.t) =
  let tids =
    List.sort_uniq compare
      (List.map (fun (e : Axiom.Event.t) -> e.Axiom.Event.tid) x.X.events)
  in
  (* Column per thread (init first, as tids sort ascending when
     init_tid < 0); row = rank of the event id within its thread, which
     is po order. *)
  let positions = Hashtbl.create 16 in
  let max_rows = ref 0 in
  List.iteri
    (fun col tid ->
      let events =
        List.sort
          (fun (a : Axiom.Event.t) b -> compare a.Axiom.Event.id b.Axiom.Event.id)
          (List.filter
             (fun (e : Axiom.Event.t) -> e.Axiom.Event.tid = tid)
             x.X.events)
      in
      max_rows := max !max_rows (List.length events);
      List.iteri
        (fun row (e : Axiom.Event.t) ->
          Hashtbl.replace positions e.Axiom.Event.id
            ( margin + (col * col_gap) + (node_w / 2),
              margin + 24 + (row * row_gap) + (node_h / 2) ))
        events)
    tids;
  let width = (2 * margin) + (List.length tids * col_gap) in
  let height = (2 * margin) + 24 + (!max_rows * row_gap) in
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" class=\"exec\">\n"
    width height width height;
  pf "<defs>\n";
  List.iter
    (fun colour ->
      pf
        "<marker id=\"arr-%s\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" \
         markerWidth=\"7\" markerHeight=\"7\" orient=\"auto-start-reverse\">\
         <path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"%s\"/></marker>\n"
        colour colour)
    [ "black"; "forestgreen"; "blue"; "darkorange"; "crimson" ];
  pf "</defs>\n";
  (* Column headers. *)
  List.iteri
    (fun col tid ->
      let name =
        if tid = Axiom.Event.init_tid then "init" else Printf.sprintf "T%d" tid
      in
      pf
        "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" \
         font-weight=\"bold\">%s</text>\n"
        (margin + (col * col_gap) + (node_w / 2))
        (margin + 10) name)
    tids;
  let edge ?label ~family ~extra (a, b) =
    match (Hashtbl.find_opt positions a, Hashtbl.find_opt positions b) with
    | Some (x1, y1), Some (x2, y2) ->
        let colour = edge_colour family in
        let dx = float_of_int (x2 - x1) and dy = float_of_int (y2 - y1) in
        let len = Float.max 1.0 (Float.hypot dx dy) in
        (* Trim endpoints out of the node boxes. *)
        let trim = Float.min (len /. 3.) 22. in
        let ux = dx /. len and uy = dy /. len in
        let fx1 = float_of_int x1 +. (ux *. trim)
        and fy1 = float_of_int y1 +. (uy *. trim)
        and fx2 = float_of_int x2 -. (ux *. trim)
        and fy2 = float_of_int y2 -. (uy *. trim) in
        pf
          "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
           stroke=\"%s\"%s marker-end=\"url(#arr-%s)\"/>\n"
          fx1 fy1 fx2 fy2 colour extra colour;
        (match label with
        | Some l when l <> "" ->
            pf
              "<text x=\"%.1f\" y=\"%.1f\" fill=\"%s\" font-size=\"10\" \
               text-anchor=\"middle\">%s</text>\n"
              ((fx1 +. fx2) /. 2.)
              (((fy1 +. fy2) /. 2.) -. 3.)
              colour (html_escape l)
        | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun (family, edges) ->
      List.iter
        (fun e ->
          edge
            ?label:(if family = "po" then None else Some family)
            ~family ~extra:"" e)
        edges)
    (Dot.base_edges x);
  List.iter
    (fun { Dot.axiom; cycle } ->
      List.iteri
        (fun i e ->
          edge
            ?label:(if i = 0 then Some axiom else None)
            ~family:"cycle"
            ~extra:" stroke-width=\"2.5\" stroke-dasharray=\"6,3\"" e)
        (Dot.cycle_edges cycle))
    highlights;
  (* Nodes last, over the edge lines. *)
  List.iter
    (fun (e : Axiom.Event.t) ->
      match Hashtbl.find_opt positions e.Axiom.Event.id with
      | None -> ()
      | Some (cx, cy) ->
          let lab =
            Format.asprintf "%d: %a" e.Axiom.Event.id Axiom.Event.pp_label
              e.Axiom.Event.label
          in
          pf
            "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" rx=\"4\" \
             fill=\"#fffef8\" stroke=\"#555\"/>\n"
            (cx - (node_w / 2))
            (cy - (node_h / 2))
            node_w node_h;
          pf
            "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" \
             font-size=\"11\" font-family=\"monospace\">%s</text>\n"
            cx (cy + 4) (html_escape lab))
    x.X.events;
  pf "</svg>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Bench trajectory: flatten each BENCH_*.json into rows. *)

let rec flatten prefix (j : Json.t) acc =
  let key k = if prefix = "" then k else prefix ^ "." ^ k in
  match j with
  | Json.Obj kvs ->
      List.fold_left (fun acc (k, v) -> flatten (key k) v acc) acc kvs
  | Json.List xs
    when List.for_all
           (function
             | Json.Obj _ | Json.List _ -> false
             | _ -> true)
           xs ->
      (prefix, "[" ^ String.concat ", " (List.map scalar xs) ^ "]") :: acc
  | Json.List xs ->
      snd
        (List.fold_left
           (fun (i, acc) v ->
             (i + 1, flatten (key (string_of_int i)) v acc))
           (0, acc) xs)
  | v -> (prefix, scalar v) :: acc

and scalar = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%g" f
  | Json.String s -> s
  | Json.Obj _ | Json.List _ -> "…"

let load_bench_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      let names =
        List.sort compare
          (List.filter
             (fun f ->
               String.starts_with ~prefix:"BENCH_" f
               && Filename.check_suffix f ".json")
             (Array.to_list files))
      in
      List.map
        (fun f ->
          let path = Filename.concat dir f in
          let contents =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          ( f,
            match Json.of_string contents with
            | Ok j -> j
            | Error msg -> Json.String ("unparseable: " ^ msg) ))
        names

(* ------------------------------------------------------------------ *)
(* Report assembly *)

let style =
  {|body{font-family:system-ui,sans-serif;margin:2em auto;max-width:1100px;color:#222}
h1,h2,h3{font-weight:600}
table{border-collapse:collapse;margin:1em 0}
th,td{border:1px solid #ccc;padding:4px 10px;font-size:13px;text-align:left}
th{background:#f2f2f2}
td.num{text-align:right;font-variant-numeric:tabular-nums}
.ok{color:#1a7f37;font-weight:600}
.bad{color:#b91c1c;font-weight:600}
.zero{color:#bbb}
details{margin:.5em 0}
pre{background:#f7f7f7;border:1px solid #ddd;padding:8px;font-size:12px;overflow-x:auto}
svg.exec{border:1px solid #eee;background:#fff;margin:.5em 0;max-width:100%;height:auto}
.witness{border:1px solid #ddd;border-radius:6px;padding:0 1em;margin:1em 0}
.blind{color:#92400e}|}

let section buf title f =
  Buffer.add_string buf (Printf.sprintf "<h2>%s</h2>\n" (html_escape title));
  f buf

let pp_behaviour_str (b : Litmus.Enumerate.behaviour) =
  Format.asprintf "%a" Litmus.Enumerate.pp_behaviour b

let sweep_table buf (cells : Sweep.cell list) =
  Buffer.add_string buf
    "<table><tr><th>scheme</th><th>program</th><th>verdict</th><th>src \
     behaviours</th><th>tgt behaviours</th><th>extra</th></tr>\n";
  List.iter
    (fun (c : Sweep.cell) ->
      let r = c.Sweep.report in
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td>%s</td><td>%s</td><td class=\"%s\">%s</td><td \
            class=\"num\">%d</td><td class=\"num\">%d</td><td \
            class=\"num\">%d</td></tr>\n"
           (html_escape c.Sweep.scheme)
           (html_escape c.Sweep.program)
           (if r.Mapping.Check.ok then "ok" else "bad")
           (if r.Mapping.Check.ok then "refines" else "VIOLATION")
           r.Mapping.Check.src_behaviours r.Mapping.Check.tgt_behaviours
           (List.length r.Mapping.Check.extra)))
    cells;
  Buffer.add_string buf "</table>\n"

let witness_section buf (cells : Sweep.cell list) =
  let failing =
    List.filter (fun (c : Sweep.cell) -> c.Sweep.witnesses <> []) cells
  in
  if failing = [] then
    Buffer.add_string buf "<p>No witnesses captured (all checks refine).</p>\n"
  else
    List.iter
      (fun (c : Sweep.cell) ->
        Buffer.add_string buf
          (Printf.sprintf "<h3>%s: %s</h3>\n"
             (html_escape c.Sweep.scheme)
             (html_escape c.Sweep.program));
        List.iteri
          (fun i (w : Mapping.Witness.t) ->
            Buffer.add_string buf "<div class=\"witness\">\n";
            Buffer.add_string buf
              (Printf.sprintf
                 "<p>Witness %d — extra target behaviour <code>%s</code></p>\n"
                 (i + 1)
                 (html_escape (pp_behaviour_str w.Mapping.Witness.behaviour)));
            let highlights =
              List.filter_map
                (function
                  | Axiom.Explain.Violates { axiom; cycle } ->
                      Some { Dot.axiom; cycle }
                  | Axiom.Explain.Consistent -> None)
                w.Mapping.Witness.violations
            in
            List.iter
              (function
                | Axiom.Explain.Violates { axiom; _ } ->
                    Buffer.add_string buf
                      (Printf.sprintf
                         "<p>source model violation: <b class=\"bad\">%s</b></p>\n"
                         (html_escape axiom))
                | Axiom.Explain.Consistent -> ())
              w.Mapping.Witness.violations;
            Buffer.add_string buf
              "<p>Consistent <em>target</em> execution exhibiting the \
               behaviour:</p>\n";
            Buffer.add_string buf
              (svg_of_execution w.Mapping.Witness.target);
            (match w.Mapping.Witness.forbidden with
            | None -> ()
            | Some fx ->
                Buffer.add_string buf
                  "<p>Forbidden <em>source</em> candidate, violated-axiom \
                   cycle highlighted:</p>\n";
                Buffer.add_string buf (svg_of_execution ~highlights fx);
                Buffer.add_string buf
                  (Printf.sprintf
                     "<details><summary>DOT source</summary><pre>%s</pre>\
                      </details>\n"
                     (html_escape
                        (Dot.render
                           ~name:(c.Sweep.scheme ^ ": " ^ c.Sweep.program)
                           ~highlights fx))));
            Buffer.add_string buf "</div>\n")
          c.Sweep.witnesses;
        match c.Sweep.shrunk with
        | None -> ()
        | Some p ->
            Buffer.add_string buf
              (Printf.sprintf
                 "<details><summary>Shrunk counterexample (%d \
                  instructions)</summary><pre>%s</pre></details>\n"
                 (Mapping.Witness.instruction_count p)
                 (html_escape (Format.asprintf "%a" Litmus.Ast.pp_prog p))))
      failing

let coverage_section buf cov models =
  let counts = Coverage.counts cov in
  if counts = [] then
    Buffer.add_string buf
      "<p>No coverage recorded (run with the coverage probe enabled).</p>\n"
  else begin
    (* One matrix per source model: rows = scheme / program, columns =
       the model's axioms in checking order. *)
    let model_names =
      List.sort_uniq compare
        (List.map (fun ((k : Coverage.key), _) -> k.Coverage.model) counts)
    in
    List.iter
      (fun model_name ->
        let axioms =
          match
            List.find_opt
              (fun (m : Axiom.Model.t) -> m.Axiom.Model.name = model_name)
              models
          with
          | Some m -> Coverage.axioms_of_model m
          | None ->
              List.sort_uniq compare
                (List.filter_map
                   (fun ((k : Coverage.key), _) ->
                     if k.Coverage.model = model_name then
                       Some k.Coverage.axiom
                     else None)
                   counts)
        in
        let rows =
          List.sort_uniq compare
            (List.filter_map
               (fun ((k : Coverage.key), _) ->
                 if k.Coverage.model = model_name then
                   Some (k.Coverage.scheme, k.Coverage.program)
                 else None)
               counts)
        in
        Buffer.add_string buf
          (Printf.sprintf "<h3>Model: %s</h3>\n<table><tr><th>scheme</th>\
                           <th>program</th>"
             (html_escape model_name));
        List.iter
          (fun a ->
            Buffer.add_string buf
              (Printf.sprintf "<th>%s</th>" (html_escape a)))
          axioms;
        Buffer.add_string buf "</tr>\n";
        List.iter
          (fun (scheme, program) ->
            Buffer.add_string buf
              (Printf.sprintf "<tr><td>%s</td><td>%s</td>"
                 (html_escape scheme) (html_escape program));
            List.iter
              (fun axiom ->
                let n =
                  match
                    List.assoc_opt
                      { Coverage.scheme; program; model = model_name; axiom }
                      counts
                  with
                  | Some n -> n
                  | None -> 0
                in
                Buffer.add_string buf
                  (if n = 0 then "<td class=\"num zero\">0</td>"
                   else Printf.sprintf "<td class=\"num\">%d</td>" n))
              axioms;
            Buffer.add_string buf "</tr>\n")
          rows;
        Buffer.add_string buf "</table>\n")
      model_names;
    match Coverage.blind_spots cov models with
    | [] ->
        Buffer.add_string buf
          "<p>Every axiom of every swept model discriminates at least one \
           rejection: no blind spots.</p>\n"
    | spots ->
        Buffer.add_string buf
          "<p class=\"blind\">Never-exercised axioms (no rejection in the \
           sweep is attributed to them):</p>\n<ul>\n";
        List.iter
          (fun (m, a) ->
            Buffer.add_string buf
              (Printf.sprintf "<li class=\"blind\">%s — %s</li>\n"
                 (html_escape m) (html_escape a)))
          spots;
        Buffer.add_string buf "</ul>\n"
  end

let metrics_section buf (snap : Obs.Metrics.snapshot) =
  let table title rows =
    if rows <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf
           "<h3>%s</h3>\n<table><tr><th>name</th><th>value</th></tr>\n" title);
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf
               "<tr><td><code>%s</code></td><td class=\"num\">%s</td></tr>\n"
               (html_escape name) v))
        rows;
      Buffer.add_string buf "</table>\n"
    end
  in
  if
    snap.Obs.Metrics.counters = []
    && snap.Obs.Metrics.gauges = []
    && snap.Obs.Metrics.histograms = []
  then
    Buffer.add_string buf
      "<p>No metrics recorded (obs registry empty or disabled).</p>\n"
  else begin
    table "Counters"
      (List.map
         (fun (n, v) -> (n, string_of_int v))
         snap.Obs.Metrics.counters);
    table "Gauges"
      (List.map (fun (n, v) -> (n, string_of_int v)) snap.Obs.Metrics.gauges);
    table "Histograms"
      (List.map
         (fun (n, (h : Obs.Metrics.hist_snap)) ->
           ( n,
             Printf.sprintf "count=%d sum=%d" h.Obs.Metrics.count
               h.Obs.Metrics.sum ))
         snap.Obs.Metrics.histograms)
  end

let bench_section buf bench =
  List.iter
    (fun (file, j) ->
      Buffer.add_string buf
        (Printf.sprintf "<h3><code>%s</code></h3>\n" (html_escape file));
      let rows = List.rev (flatten "" j []) in
      Buffer.add_string buf "<table><tr><th>field</th><th>value</th></tr>\n";
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf
               "<tr><td><code>%s</code></td><td>%s</td></tr>\n"
               (html_escape k) (html_escape v)))
        rows;
      Buffer.add_string buf "</table>\n")
    bench

let render ?(title = "Risotto refinement & bench report") ?metrics ?coverage
    ?(models = []) ?(bench = []) (cells : Sweep.cell list) =
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf "<!DOCTYPE html>\n<html lang=\"en\"><head>\n";
  Buffer.add_string buf "<meta charset=\"utf-8\">\n";
  Buffer.add_string buf
    (Printf.sprintf "<title>%s</title>\n" (html_escape title));
  Buffer.add_string buf (Printf.sprintf "<style>%s</style>\n" style);
  Buffer.add_string buf "</head><body>\n";
  Buffer.add_string buf
    (Printf.sprintf "<h1>%s</h1>\n" (html_escape title));
  let failing = Sweep.failing cells in
  Buffer.add_string buf
    (Printf.sprintf
       "<p>%d refinement checks, <span class=\"%s\">%d violations</span>.</p>\n"
       (List.length cells)
       (if failing = [] then "ok" else "bad")
       (List.length failing));
  section buf "Refinement sweep" (fun buf -> sweep_table buf cells);
  section buf "Witnesses" (fun buf -> witness_section buf cells);
  (match coverage with
  | None -> ()
  | Some cov ->
      section buf "Axiom coverage" (fun buf -> coverage_section buf cov models));
  (match metrics with
  | None -> ()
  | Some snap ->
      section buf "Metrics snapshot" (fun buf -> metrics_section buf snap));
  if bench <> [] then
    section buf "Bench trajectory" (fun buf -> bench_section buf bench);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Directory output *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write ~dir ?title ?metrics ?coverage ?models ?(bench = [])
    (cells : Sweep.cell list) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written = ref [] in
  List.iter
    (fun (c : Sweep.cell) ->
      List.iteri
        (fun i w ->
          let file =
            Printf.sprintf "witness-%s-%s-%d.json"
              (sanitize c.Sweep.scheme)
              (sanitize c.Sweep.program)
              (i + 1)
          in
          write_file (Filename.concat dir file)
            (Json.to_string (Sweep.witness_json c w) ^ "\n");
          written := file :: !written)
        c.Sweep.witnesses)
    cells;
  let html = render ?title ?metrics ?coverage ?models ~bench cells in
  write_file (Filename.concat dir "report.html") html;
  ("report.html", List.rev !written)
