(** Herd-style Graphviz rendering of executions: events as boxed nodes
    grouped in per-thread clusters, po/rf/co/fr edges colour-coded, and
    violated-axiom cycles overlaid as crimson edges labelled with the
    axiom name. *)

type highlight = { axiom : string; cycle : int list }
    (** [cycle] in {!Axiom.Explain.verdict} convention (closed
        last→first). *)

(** The base edge families drawn, in order: [("po", immediate po);
    ("rf", rf); ("co", immediate co); ("fr", fr)].  Exposed so tests can
    predict the rendered edge count: a render has exactly
    [Σ |family| + Σ |cycle|] edges. *)
val base_edges : Axiom.Execution.t -> (string * (int * int) list) list

(** The closed edge list of a cycle (consecutive pairs plus
    last→first); [[]] for the empty cycle. *)
val cycle_edges : int list -> (int * int) list

val render :
  ?name:string ->
  ?highlights:highlight list ->
  Axiom.Execution.t ->
  string
