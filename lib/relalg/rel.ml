module Pair = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
end

module S = Set.Make (Pair)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let mem x y r = S.mem (x, y) r
let add x y r = S.add (x, y) r
let remove x y r = S.remove (x, y) r
let singleton x y = S.singleton (x, y)
let cardinal = S.cardinal
let of_list l = S.of_list l
let to_list = S.elements
let union = S.union
let union_all rs = List.fold_left S.union S.empty rs
let inter = S.inter
let diff = S.diff
let equal = S.equal
let subset = S.subset

let fold f r acc = S.fold (fun (x, y) acc -> f x y acc) r acc
let iter f r = S.iter (fun (x, y) -> f x y) r
let filter p r = S.filter (fun (x, y) -> p x y) r
let map_pairs f r = S.map f r

let domain r = fold (fun x _ acc -> Iset.add x acc) r Iset.empty
let codomain r = fold (fun _ y acc -> Iset.add y acc) r Iset.empty
let elements r = Iset.union (domain r) (codomain r)

let succs r x = fold (fun a b acc -> if a = x then Iset.add b acc else acc) r Iset.empty
let preds r y = fold (fun a b acc -> if b = y then Iset.add a acc else acc) r Iset.empty

let compose r s =
  (* Index s by its domain for a one-pass join. *)
  let by_dom = Hashtbl.create 16 in
  S.iter (fun (y, z) -> Hashtbl.add by_dom y z) s;
  S.fold
    (fun (x, y) acc ->
      List.fold_left (fun acc z -> S.add (x, z) acc) acc (Hashtbl.find_all by_dom y))
    r S.empty

let sequence = function
  | [] -> invalid_arg "Rel.sequence: empty list"
  | r :: rs -> List.fold_left compose r rs

let inverse r = S.fold (fun (x, y) acc -> S.add (y, x) acc) r S.empty

let id s = Iset.fold (fun x acc -> S.add (x, x) acc) s S.empty

let cross a b =
  Iset.fold (fun x acc -> Iset.fold (fun y acc -> S.add (x, y) acc) b acc) a S.empty

let restrict a r b = S.filter (fun (x, y) -> Iset.mem x a && Iset.mem y b) r

let transitive_closure r =
  let rec fix r =
    let r' = union r (compose r r) in
    if equal r r' then r else fix r'
  in
  fix r

let reflexive_transitive_closure dom r = union (id dom) (transitive_closure r)

let irreflexive r = not (S.exists (fun (x, y) -> x = y) r)
let acyclic r = irreflexive (transitive_closure r)
let minus_id r = S.filter (fun (x, y) -> x <> y) r

let is_strict_total_order_on s r =
  let r = restrict s r s in
  irreflexive (transitive_closure r)
  && Iset.for_all
       (fun x -> Iset.for_all (fun y -> x = y || mem x y r || mem y x r) s)
       s

let immediate r =
  S.filter
    (fun (x, y) -> not (S.exists (fun (a, b) -> a = x && mem b y r && b <> y && b <> x) r))
    r

let linear_extensions s r =
  let r = transitive_closure (restrict s r s) in
  if not (irreflexive r) then []
  else
    (* Enumerate topological orders by repeatedly picking a minimal
       element among the remaining ones. *)
    let rec go remaining prefix acc =
      if Iset.is_empty remaining then List.rev prefix :: acc
      else
        Iset.fold
          (fun x acc ->
            let minimal =
              Iset.for_all (fun y -> y = x || not (mem y x r)) remaining
            in
            if minimal then go (Iset.remove x remaining) (x :: prefix) acc
            else acc)
          remaining acc
    in
    let orders = go s [] [] in
    let order_to_rel order =
      let rec pairs acc = function
        | [] -> acc
        | x :: rest ->
            pairs (List.fold_left (fun acc y -> add x y acc) acc rest) rest
      in
      pairs empty order
    in
    List.map order_to_rel orders

(* Memoized linear extensions.  The enumerator calls this once per
   (write-set, init-order-constraints) pair per candidate combination;
   across the combinations of one program the same key recurs many
   times (read-value oracles multiply runs without changing the write
   sets).  Keys are the canonical element and pair listings, so
   structurally equal inputs hit.  Guarded by a mutex: the table is
   shared across pool worker domains. *)
let le_memo : (int list * (int * int) list, t list) Hashtbl.t =
  Hashtbl.create 64

let le_memo_mutex = Mutex.create ()

let linear_extensions_memoized s r =
  let key = (Iset.to_list s, to_list (restrict s r s)) in
  let cached =
    Mutex.protect le_memo_mutex (fun () -> Hashtbl.find_opt le_memo key)
  in
  match cached with
  | Some orders -> orders
  | None ->
      let orders = linear_extensions s r in
      Mutex.protect le_memo_mutex (fun () ->
          Hashtbl.replace le_memo key orders);
      orders

let clear_memo () =
  Mutex.protect le_memo_mutex (fun () -> Hashtbl.reset le_memo)

let find_cycle r =
  (* DFS with an explicit ancestor path; relations are litmus-sized so
     the exponential worst case is irrelevant. *)
  let rec dfs path x =
    if List.mem x path then
      (* path = [parent; grandparent; ...]: the cycle is the prefix up
         to the earlier occurrence of x, in reverse (edge) order. *)
      let rec prefix = function
        | [] -> []
        | y :: rest -> if y = x then [ y ] else y :: prefix rest
      in
      Some (List.rev (prefix path))
    else
      Iset.fold
        (fun y acc -> match acc with Some _ -> acc | None -> dfs (x :: path) y)
        (succs r x) None
  in
  List.fold_left
    (fun acc x -> match acc with Some _ -> acc | None -> dfs [] x)
    None
    (Iset.to_list (elements r))

let pp ppf r =
  let pp_pair ppf (x, y) = Fmt.pf ppf "(%d,%d)" x y in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_pair) (to_list r)
