(** Finite binary relations over integer-identified elements.

    This module implements the relational vocabulary of herd-style "cat"
    memory models: composition, union, identity restriction, transitive
    closure, acyclicity, and enumeration of linear extensions (used to
    enumerate coherence orders).  All relations are strict unless an
    explicit reflexive closure is taken. *)

type t

val empty : t
val is_empty : t -> bool
val mem : int -> int -> t -> bool
val add : int -> int -> t -> t
val remove : int -> int -> t -> t
val singleton : int -> int -> t
val cardinal : t -> int
val of_list : (int * int) list -> t
val to_list : t -> (int * int) list

val union : t -> t -> t
val union_all : t list -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool

(** [compose r s] is the sequential composition [r; s]:
    [(x, z)] such that [(x, y) ∈ r] and [(y, z) ∈ s] for some [y]. *)
val compose : t -> t -> t

(** [sequence [r1; ...; rn]] is [r1; r2; ...; rn].  [sequence []] is
    undefined and raises [Invalid_argument]. *)
val sequence : t list -> t

val inverse : t -> t

(** [id s] is the identity relation [{(x, x) | x ∈ s}], written [[A]] in
    cat notation. *)
val id : Iset.t -> t

(** [cross a b] is the full product [a × b]. *)
val cross : Iset.t -> Iset.t -> t

(** [restrict a r b] is [[A]; r; [B]]. *)
val restrict : Iset.t -> t -> Iset.t -> t

val domain : t -> Iset.t
val codomain : t -> Iset.t
val elements : t -> Iset.t

val filter : (int -> int -> bool) -> t -> t
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> int -> unit) -> t -> unit
val map_pairs : (int * int -> int * int) -> t -> t

(** [succs r x] is the set of [y] with [(x, y) ∈ r]. *)
val succs : t -> int -> Iset.t

(** [preds r y] is the set of [x] with [(x, y) ∈ r]. *)
val preds : t -> int -> Iset.t

(** Strict transitive closure [r⁺]. *)
val transitive_closure : t -> t

(** [reflexive_transitive_closure dom r] is [r*] restricted to [dom]. *)
val reflexive_transitive_closure : Iset.t -> t -> t

val irreflexive : t -> bool

(** [acyclic r] holds iff [r⁺] is irreflexive. *)
val acyclic : t -> bool

(** [is_strict_total_order_on s r] checks [r] is transitive, irreflexive
    and total on [s]. *)
val is_strict_total_order_on : Iset.t -> t -> bool

(** [linear_extensions s r] enumerates every strict total order on [s]
    that contains [r] (restricted to [s]).  Returns [[]] when [r] is
    cyclic on [s].  Exponential: intended for litmus-sized sets. *)
val linear_extensions : Iset.t -> t -> t list

(** [linear_extensions_memoized s r] is [linear_extensions s r] backed
    by a process-wide, domain-safe memo table keyed by
    [(s, r restricted to s)].  The coherence enumerator asks for the
    extensions of the same per-location write set once per candidate
    combination; the memo collapses those to one computation.  Entries
    live until {!clear_memo}. *)
val linear_extensions_memoized : Iset.t -> t -> t list

(** Drop every memoized linear-extension result (used by benchmarks to
    measure cold-start behaviour, and by long-running processes to bound
    memory). *)
val clear_memo : unit -> unit

(** [immediate r] keeps only pairs with no intermediate element:
    [(x, y) ∈ r] such that there is no [z] with [(x, z) ∈ r] and
    [(z, y) ∈ r]. *)
val immediate : t -> t

(** Remove reflexive pairs. *)
val minus_id : t -> t

(** [find_cycle r] returns the nodes of some cycle of [r] (in edge
    order, so consecutive elements — and last→first — are [r]-related),
    or [None] if [r] is acyclic. *)
val find_cycle : t -> int list option

val pp : Format.formatter -> t -> unit
