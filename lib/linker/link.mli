(** PLT resolution (paper §6.2, Figure 11, steps 1–2).

    At load time the IDL is read, the image's imports (.dynsym) are
    matched against the described signatures and the available host
    functions, and each matched import's PLT address is stored in a
    lookup table.  At translation time the frontend checks every block
    address against this table. *)

type entry = { name : string; plt_addr : int64; signature : Idl.signature }

(** Why an import failed to link.  The distinction matters downstream:
    an import without an IDL signature simply falls back to guest
    translation, while one the IDL promised but the host lacks becomes
    a lazy trap stub — it only faults the thread that actually calls
    it. *)
type cause =
  | No_idl_signature  (** the IDL does not describe this import *)
  | Missing_host_symbol  (** described, but absent from the host library *)
  | No_plt_slot  (** described and present, but the image has no PLT entry *)

type t

(** [resolve image sigs] builds the lookup table for imports that are
    both described in the IDL and present in the host library. *)
val resolve : Image.Gelf.t -> Idl.signature list -> t

(** All resolved entries. *)
val entries : t -> entry list

(** Lookup by block address (Figure 11 step 3/4 dispatch). *)
val lookup : t -> int64 -> entry option

(** Names of imports that could not be linked. *)
val unresolved : t -> string list

(** Unlinked imports with the reason each one failed. *)
val unresolved_causes : t -> (string * cause) list

val unresolved_cause : t -> string -> cause option
val cause_name : cause -> string
val empty : t
