type entry = { name : string; plt_addr : int64; signature : Idl.signature }

type cause = No_idl_signature | Missing_host_symbol | No_plt_slot

type t = { table : entry list; unres : (string * cause) list }

let empty = { table = []; unres = [] }

(* Link-resolution latency and outcomes (Figure 11 step 2): the whole
   import scan is timed into link.resolve.ns, per-PLT-call stub lookups
   into link.lookup.ns. *)
let m_resolve_ns = lazy (Obs.Metrics.histogram "link.resolve.ns")
let m_lookup_ns = lazy (Obs.Metrics.histogram "link.lookup.ns")
let m_resolved = lazy (Obs.Metrics.counter "link.resolved")
let m_unresolved = lazy (Obs.Metrics.counter "link.unresolved")

let resolve (image : Image.Gelf.t) sigs =
  let resolve_one name =
    (* sequential lets: `and` bindings have unspecified evaluation order *)
    let signature =
      List.find_opt (fun (s : Idl.signature) -> s.name = name) sigs
    in
    let host = Hostlib.find name in
    let plt = List.assoc_opt name image.Image.Gelf.plt in
    match (signature, host, plt) with
    | Some signature, Some _, Some plt_addr ->
        Either.Left { name; plt_addr; signature }
    | None, _, _ -> Either.Right (name, No_idl_signature)
    | Some _, None, _ -> Either.Right (name, Missing_host_symbol)
    | Some _, Some _, None -> Either.Right (name, No_plt_slot)
  in
  let table, unres =
    Obs.Trace.with_span ~cat:"link" "resolve"
      ~args:(fun () ->
        [ ("imports", string_of_int (List.length image.Image.Gelf.imports)) ])
      (fun () ->
        Obs.Profile.time (Lazy.force m_resolve_ns) (fun () ->
            List.partition_map resolve_one image.Image.Gelf.imports))
  in
  Obs.Metrics.add (Lazy.force m_resolved) (List.length table);
  Obs.Metrics.add (Lazy.force m_unresolved) (List.length unres);
  { table; unres }

let entries t = t.table
let unresolved t = List.map fst t.unres
let unresolved_causes t = t.unres
let unresolved_cause t name = List.assoc_opt name t.unres

let cause_name = function
  | No_idl_signature -> "no IDL signature"
  | Missing_host_symbol -> "missing host symbol"
  | No_plt_slot -> "no PLT slot"

let lookup t addr =
  Obs.Profile.time (Lazy.force m_lookup_ns) (fun () ->
      List.find_opt (fun e -> Int64.equal e.plt_addr addr) t.table)
