(** Supervised task execution: per-task deadlines, bounded retry with
    exponential backoff, and poison-task quarantine.

    OCaml Domains cannot be preempted, so deadlines are {e cooperative}:
    the supervisor installs a domain-local cancellation token around
    each attempt and long-running task code polls it ({!poll}) from its
    hot loops — the litmus enumerator and the mapping checker do.  When
    the deadline passes, the next poll raises and the supervisor turns
    it into a typed {!failure} instead of wedging a worker forever.

    Failure handling is tiered:
    - a {b timeout} is terminal (the tasks here are deterministic, so a
      second attempt would time out again) and surfaces as
      [Timed_out];
    - any {b other exception} is treated as potentially transient and
      retried up to [retries] more times with exponential backoff;
    - a task still failing after its attempt budget is {b quarantined}:
      it surfaces as [Quarantined] carrying the last fault, and the
      sweep goes on without it.

    Everything is opt-in: {!default} (no deadline, no retries, no
    chaos) makes {!run} observationally [fun f -> Ok (f ())] apart from
    exceptions being captured, and {!poll} while no token is installed
    is a domain-local read and a branch.  Counters: [task.retry],
    [task.timeout], [task.quarantined]. *)

type policy = {
  deadline_s : float option;  (** per-attempt cooperative deadline *)
  retries : int;  (** extra attempts after the first failure *)
  backoff_s : float;
      (** sleep before retry [k] is [backoff_s *. 2^(k-1)], capped at
          [max_backoff_s] *)
  max_backoff_s : float;
  chaos : (unit -> bool) option;
      (** polled at each attempt's start; [true] injects a transient
          {!Injected} fault (the [pool-task] chaos site) *)
}

val default : policy
(** No deadline, no retries, 10ms base backoff, no chaos. *)

type failure =
  | Timed_out of { attempts : int; deadline_s : float }
  | Quarantined of { attempts : int; last : Pool.fault }
      (** [last.index] is the task's input position under {!map}, [-1]
          under {!run} *)

val pp_failure : Format.formatter -> failure -> unit

exception Deadline_exceeded of { elapsed_s : float; deadline_s : float }
(** Raised by {!poll} (in the task's own context) when the installed
    deadline has passed. *)

exception Injected of string
(** The transient fault injected by a firing [chaos] hook. *)

val poll : unit -> unit
(** Cooperative cancellation point: cheap enough for enumeration inner
    loops (a domain-local read while unsupervised; the clock is sampled
    every 32nd poll under a token).  Raises {!Deadline_exceeded} when
    the current task's deadline has passed. *)

val with_deadline : float option -> (unit -> 'a) -> 'a
(** Install a fresh deadline token (measured from now) around a thunk;
    [None] uninstalls nothing and adds nothing.  Used by the supervisor
    itself; exposed for tests and custom runners.  Nesting restores the
    outer token on exit. *)

val run : policy -> (unit -> 'a) -> ('a, failure) result
(** Supervise one computation on the calling domain. *)

val map : ?pool:Pool.t -> policy -> ('a -> 'b) -> 'a list -> ('b, failure) result list
(** Supervise every task of a sweep, optionally on a {!Pool} (the
    wrapper never raises, so pool-level fault capture is never hit);
    results in input order. *)
