(** A reusable Domain-based work pool for embarrassingly parallel sweeps.

    The refinement checker's workloads (corpus × scheme sweeps, per-fence
    minimality deletions, figure cells, litmus files) are lists of small
    independent pure tasks.  A pool owns worker domains (the caller is
    the remaining worker) that steal {e chunks} — contiguous (start,
    len) slices of the task array — from a shared atomic counter, so the
    scheduling cost is amortised over a chunk rather than paid per task,
    and results land in an index-addressed array:

    - {b deterministic ordering}: [map] returns results in input order,
      whatever interleaving the domains ran with;
    - {b fault isolation}: a task that raises yields a typed per-task
      {!fault} carrying the original exception and its backtrace instead
      of tearing down the whole sweep (the pool-level analogue of
      [Core.Fault]'s per-thread trap states);
    - {b nesting safety}: a [map] issued from inside a pool task (or
      reentrantly from the same domain) degrades to the sequential path
      rather than deadlocking, so parallel consumers can freely call
      other parallel consumers;
    - {b core-aware sizing}: worker domains are capped at
      [Domain.recommended_domain_count () - 1] whatever [jobs] asks
      for, because on OCaml 5 every live domain joins each
      stop-the-world minor collection and surplus domains slow
      allocation-heavy tasks down even while parked.

    Pools are cheap to keep around; create one per process (or use
    {!default}) and reuse it across sweeps and bench sections. *)

type t

(** A captured task failure: [index] is the position of the failing task
    in the input list, [exn] the original exception, [backtrace] its
    (possibly empty) captured backtrace. *)
type fault = { index : int; exn : exn; backtrace : string }

exception Task_failed of fault

(** Per-chunk accounting from the last parallel batch: which domain ran
    the chunk, the task-index slice it covered and its wall-clock
    duration.  This is what makes a speedup (or the lack of one)
    diagnosable from a bench artifact alone. *)
type chunk_stat = { c_domain : int; c_start : int; c_len : int; c_us : float }

(** [create ~jobs ()] builds a pool of requested parallelism [jobs]
    (defaults to [Domain.recommended_domain_count ()]).  At most
    [min jobs (Domain.recommended_domain_count ()) - 1] worker domains
    are actually spawned — the calling domain always drains too, and
    spawning past the core count only adds GC-synchronisation stalls.
    [jobs <= 1] yields a sequential pool that runs every task on the
    caller.  [force_spawn] disables the core cap (tests that need real
    cross-domain traffic on small machines). *)
val create : ?jobs:int -> ?force_spawn:bool -> unit -> t

(** The requested parallelism (the [-j] figure), not the spawn count. *)
val jobs : t -> int

(** Worker domains actually spawned (see {!create}); the pool drains
    with [workers_spawned t + 1] domains. *)
val workers_spawned : t -> int

(** [Domain.recommended_domain_count ()], re-exported so consumers can
    report the machine's view next to the requested [-j]. *)
val recommended : unit -> int

(** Chunk accounting for the most recent parallel batch ran by this
    pool ([[]] before the first one, or when every batch degraded to
    the sequential path). *)
val batch_stats : t -> chunk_stat list

(** [on_join f] registers [f] to run in every domain when it finishes
    draining a batch (and in the submitter once the batch completes) —
    the hook point where per-domain caches merge back into shared
    state.  Hooks must be cheap and must not raise; raised exceptions
    are swallowed.  Registration is global and permanent. *)
val on_join : (unit -> unit) -> unit

(** Join the worker domains.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [map pool f xs] applies [f] to every element of [xs], in parallel,
    returning per-task results in input order.  Never raises for a
    failing task. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, fault) result list

(** Like {!map} but re-raises (at the call site) the original exception
    of the lowest-index faulty task, mirroring what the sequential
    [List.map] would have raised first. *)
val map_exn : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_list ?pool f xs] is [List.map f xs] when [pool] is [None] and
    [map_exn pool f xs] otherwise — the one-liner consumers use to make
    parallelism opt-in without duplicating the sequential path. *)
val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list

(** Fault-capturing variant of {!map_list}: per-task results in input
    order, faults captured rather than raised, sequential when [pool] is
    [None]. *)
val map_safe : ?pool:t -> ('a -> 'b) -> 'a list -> ('b, fault) result list

(** [with_pool ?jobs f] runs [f] with a fresh pool and always shuts it
    down. *)
val with_pool : ?jobs:int -> ?force_spawn:bool -> (t -> 'a) -> 'a

(** {1 Persistent service mode}

    The batch [map] machinery above synchronises the submitter with the
    whole batch.  A {!service} is the complementary shape: long-lived
    worker domains draining a FIFO of independent [unit -> unit] jobs as
    they arrive, with the submitter never blocking.  The engine's tiered
    JIT uses one as its background translation pool: compile jobs are
    enqueued from the execution thread and publish their results through
    a queue owned by the submitter, so the service itself never touches
    shared mutable state beyond the job closures it is handed. *)

type service

(** [service_create ~workers ()] spawns a persistent service of
    [workers] domains (default 1).  Unlike {!create}, at least one
    worker always spawns even on a single-core machine — the point of a
    service is that the submitter never drains — but extra workers are
    still capped at [recommended () - 1]. *)
val service_create : ?workers:int -> unit -> service

(** Enqueue a job.  Never blocks; jobs run in FIFO order across the
    worker set.  A job that raises is swallowed (error reporting belongs
    to whatever channel the job closure carries).  Submitting to a
    shut-down service runs the job inline on the caller. *)
val service_submit : service -> (unit -> unit) -> unit

(** Jobs currently queued or executing. *)
val service_pending : service -> int

(** High-water mark of {!service_pending} over the service's lifetime
    (measured at submit). *)
val service_hwm : service -> int

(** Total jobs ever submitted (not counting inline post-shutdown runs). *)
val service_submitted : service -> int

(** Block until the queue is empty and no job is executing.  Jobs
    submitted concurrently with the drain extend it. *)
val service_drain : service -> unit

(** Finish the queued jobs, then join the worker domains.  Subsequent
    {!service_submit} calls degrade to inline execution. *)
val service_shutdown : service -> unit

(** {1 Default pool}

    A lazily created process-wide pool, sized by
    {!set_default_jobs} (e.g. from a [-j] flag) or
    [Domain.recommended_domain_count].  *)

(** The shared default pool, created on first use. *)
val default : unit -> t

(** Set the size of the default pool.  Shuts down a previously created
    default pool; subsequent {!default} calls return a pool of the new
    size. *)
val set_default_jobs : int -> unit
