(** A reusable Domain-based work pool for embarrassingly parallel sweeps.

    The refinement checker's workloads (corpus × scheme sweeps, per-fence
    minimality deletions, figure cells, litmus files) are lists of small
    independent pure tasks.  A pool owns [jobs - 1] worker domains (the
    caller is the remaining worker) that pull task indices from a shared
    atomic counter, so scheduling cost per task is a couple of atomic
    operations and results land in an index-addressed array:

    - {b deterministic ordering}: [map] returns results in input order,
      whatever interleaving the domains ran with;
    - {b fault isolation}: a task that raises yields a typed per-task
      {!fault} carrying the original exception and its backtrace instead
      of tearing down the whole sweep (the pool-level analogue of
      [Core.Fault]'s per-thread trap states);
    - {b nesting safety}: a [map] issued from inside a pool task (or
      reentrantly from the same domain) degrades to the sequential path
      rather than deadlocking, so parallel consumers can freely call
      other parallel consumers.

    Pools are cheap to keep around; create one per process (or use
    {!default}) and reuse it across sweeps. *)

type t

(** A captured task failure: [index] is the position of the failing task
    in the input list, [exn] the original exception, [backtrace] its
    (possibly empty) captured backtrace. *)
type fault = { index : int; exn : exn; backtrace : string }

exception Task_failed of fault

(** [create ~jobs ()] spawns a pool of [jobs] workers ([jobs - 1]
    domains plus the calling domain).  Defaults to
    [Domain.recommended_domain_count ()].  [jobs <= 1] yields a
    sequential pool that runs every task on the caller. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** Join the worker domains.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [map pool f xs] applies [f] to every element of [xs], in parallel,
    returning per-task results in input order.  Never raises for a
    failing task. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, fault) result list

(** Like {!map} but re-raises (at the call site) the original exception
    of the lowest-index faulty task, mirroring what the sequential
    [List.map] would have raised first. *)
val map_exn : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_list ?pool f xs] is [List.map f xs] when [pool] is [None] and
    [map_exn pool f xs] otherwise — the one-liner consumers use to make
    parallelism opt-in without duplicating the sequential path. *)
val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list

(** Fault-capturing variant of {!map_list}: per-task results in input
    order, faults captured rather than raised, sequential when [pool] is
    [None]. *)
val map_safe : ?pool:t -> ('a -> 'b) -> 'a list -> ('b, fault) result list

(** [with_pool ?jobs f] runs [f] with a fresh pool and always shuts it
    down. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** {1 Default pool}

    A lazily created process-wide pool, sized by
    {!set_default_jobs} (e.g. from a [-j] flag) or
    [Domain.recommended_domain_count].  *)

(** The shared default pool, created on first use. *)
val default : unit -> t

(** Set the size of the default pool.  Shuts down a previously created
    default pool; subsequent {!default} calls return a pool of the new
    size. *)
val set_default_jobs : int -> unit
