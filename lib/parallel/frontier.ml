(* Journal layout:

     RJNL1\n
     R <len:8 hex> <crc:8 hex>\n<payload bytes>\n
     R ...

   where <len> counts the payload bytes (not the trailing newline) and
   <crc> is the CRC-32 of the payload.  The payload itself is
   "<klen:8 hex> <key><value>".  All framing is fixed-width ASCII so a
   recovery scan needs no lookahead: a header is exactly 20 bytes, and
   a record occupies 20 + len + 1 bytes. *)

let magic = "RJNL1\n"
let header_len = 20 (* "R xxxxxxxx yyyyyyyy\n" *)

type t = {
  path : string;
  mutable oc : out_channel;
  chaos : (unit -> bool) option;
}

type recovery = {
  entries : (string * string) list;
  valid : int;
  dropped_bytes : int;
}

exception Injected_fault of string

let m_recovered = lazy (Obs.Metrics.counter "journal.recovered")
let m_truncated = lazy (Obs.Metrics.counter "journal.truncated.bytes")
let m_appends = lazy (Obs.Metrics.counter "journal.appends")

let payload_of ~key ~value =
  Printf.sprintf "%08x %s%s" (String.length key) key value

let split_payload p =
  (* "<klen:8 hex> <key><value>" *)
  if String.length p < 9 || p.[8] <> ' ' then None
  else
    match int_of_string_opt ("0x" ^ String.sub p 0 8) with
    | Some klen when klen >= 0 && 9 + klen <= String.length p ->
        Some (String.sub p 9 klen, String.sub p (9 + klen) (String.length p - 9 - klen))
    | Some _ | None -> None

let record_of ~key ~value =
  let payload = payload_of ~key ~value in
  Printf.sprintf "R %08x %s\n%s\n" (String.length payload)
    (Checksum.Crc32.to_hex (Checksum.Crc32.digest payload))
    payload

(* Scan [s] (the whole file) and return the recovery plus the byte
   offset where the valid prefix ends. *)
let scan s =
  let n = String.length s in
  if n < String.length magic || String.sub s 0 (String.length magic) <> magic
  then ({ entries = []; valid = 0; dropped_bytes = n }, 0)
  else begin
    let pos = ref (String.length magic) in
    let entries = ref [] in
    let valid = ref 0 in
    let ok = ref true in
    while !ok && !pos < n do
      let start = !pos in
      let bad () =
        ok := false;
        pos := start
      in
      if start + header_len > n then bad ()
      else if
        s.[start] <> 'R' || s.[start + 1] <> ' '
        || s.[start + 10] <> ' '
        || s.[start + header_len - 1] <> '\n'
      then bad ()
      else
        match
          ( int_of_string_opt ("0x" ^ String.sub s (start + 2) 8),
            Checksum.Crc32.of_hex (String.sub s (start + 11) 8) )
        with
        | Some len, Some crc when len >= 0 ->
            let body = start + header_len in
            if body + len + 1 > n then bad ()
            else if s.[body + len] <> '\n' then bad ()
            else if Checksum.Crc32.digest_sub s ~pos:body ~len <> crc then
              bad ()
            else begin
              match split_payload (String.sub s body len) with
              | Some (key, value) ->
                  entries := (key, value) :: !entries;
                  incr valid;
                  pos := body + len + 1
              | None -> bad ()
            end
        | _ -> bad ()
    done;
    ( {
        entries = List.rev !entries;
        valid = !valid;
        dropped_bytes = n - !pos;
      },
      !pos )
  end

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let recover_file path = fst (scan (read_file path))

let open_ ?chaos path =
  let s = read_file path in
  let rec_, keep = scan s in
  Obs.Metrics.add (Lazy.force m_recovered) rec_.valid;
  Obs.Metrics.add (Lazy.force m_truncated) rec_.dropped_bytes;
  (* Rewrite the valid prefix (or a fresh header) and reopen in append
     position: the torn tail is physically gone, so a later recovery
     cannot trip over it. *)
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path in
  (try
     if s = "" || keep = 0 then begin
       seek_out oc 0;
       output_string oc magic
     end
     else seek_out oc keep
   with e ->
     close_out_noerr oc;
     raise e);
  (* seek_out positions the write pointer but does not shrink the file;
     flush then truncate so stale tail bytes cannot survive. *)
  flush oc;
  (try Unix.truncate path (pos_out oc) with Unix.Unix_error _ -> ());
  ({ path; oc; chaos }, rec_)

let append t ~key ~value =
  let record = record_of ~key ~value in
  (match t.chaos with
  | Some fire when fire () ->
      (* Tear the record: header plus half the payload, flushed, then
         fail — what a crash inside the append leaves behind. *)
      let torn = String.sub record 0 (header_len + ((String.length record - header_len) / 2)) in
      output_string t.oc torn;
      flush t.oc;
      raise (Injected_fault (Printf.sprintf "journal append of %S torn" key))
  | _ -> ());
  output_string t.oc record;
  flush t.oc;
  Obs.Metrics.incr (Lazy.force m_appends)

let checkpoint t entries =
  (* Last-wins dedup, first-seen key order. *)
  let seen = Hashtbl.create (List.length entries) in
  List.iter (fun (k, v) -> Hashtbl.replace seen k v) entries;
  let order = ref [] in
  let emitted = Hashtbl.create (List.length entries) in
  List.iter
    (fun (k, _) ->
      if not (Hashtbl.mem emitted k) then begin
        Hashtbl.add emitted k ();
        order := (k, Hashtbl.find seen k) :: !order
      end)
    entries;
  let compact = List.rev !order in
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      List.iter (fun (key, value) -> output_string oc (record_of ~key ~value)) compact);
  close_out_noerr t.oc;
  Sys.rename tmp t.path;
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path in
  t.oc <- oc

let path t = t.path
let close t = close_out_noerr t.oc
