(** Crash-safe resumable frontier: an append-only on-disk journal of
    per-task verdicts.

    A long sweep (scheme × program refinement cells, generated-corpus
    batches) appends one record per completed task; after a crash —
    including [kill -9] mid-append — reopening the journal recovers
    every fully-written record and truncates the torn tail, so the
    sweep resumes from exactly the completed work.  The design is the
    classic write-ahead journal:

    - {b framing}: each record is a fixed-width ASCII header carrying
      the payload length and its CRC-32, followed by the raw payload —
      binary-safe, grep-friendly, self-delimiting;
    - {b recovery}: on open, records are scanned in order and validated
      against their CRC; the first malformed, short or corrupt record
      ends the valid prefix and the file is truncated back to it (a bit
      flip or torn write costs the tail, never the prefix);
    - {b checkpoints}: {!checkpoint} rewrites the journal compactly
      (one record per key, last wins) through a tmp file and an atomic
      rename, so a crash mid-checkpoint leaves the previous journal
      intact.

    Keys and values are opaque byte strings; the journal does not
    interpret them beyond last-wins deduplication in {!checkpoint}.
    Writers are single-owner: one [t] per file, appends from the owning
    domain only.  Recovery statistics feed the [journal.*] metrics
    ([journal.recovered], [journal.truncated.bytes],
    [journal.appends]). *)

type t

type recovery = {
  entries : (string * string) list;
      (** every valid record, in append order (duplicates preserved) *)
  valid : int;  (** records recovered *)
  dropped_bytes : int;
      (** torn-tail bytes truncated (0 for a clean journal) *)
}

exception Injected_fault of string
(** Raised by {!append} when the chaos hook fires: the record was
    deliberately torn mid-write (header and a partial payload reach the
    file), simulating a crash inside the append.  Recovery drops it. *)

val open_ : ?chaos:(unit -> bool) -> string -> t * recovery
(** Open (creating if missing) the journal at a path, recover its valid
    prefix and truncate any torn tail.  [chaos] is polled once per
    {!append}; when it answers [true] the append is torn and
    {!Injected_fault} raised. *)

val append : t -> key:string -> value:string -> unit
(** Append one record and flush it to the OS, so a subsequent [kill -9]
    cannot lose it.  Keys may repeat; recovery preserves append order
    and {!checkpoint} deduplicates last-wins. *)

val checkpoint : t -> (string * string) list -> unit
(** Atomically replace the journal's contents with exactly [entries]
    (deduplicated last-wins, first-seen key order): written to
    [path ^ ".tmp"], fsync'd by rename.  The journal stays open for
    further appends. *)

val path : t -> string
val close : t -> unit

(** {1 Reading without ownership} *)

val recover_file : string -> recovery
(** Read-only recovery scan of a journal file (no truncation, no
    lock): what {!open_} would recover.  Missing file = empty
    recovery. *)
