type fault = { index : int; exn : exn; backtrace : string }

exception Task_failed of fault

let () =
  Printexc.register_printer (function
    | Task_failed f ->
        Some
          (Printf.sprintf "task %d failed: %s" f.index
             (Printexc.to_string f.exn))
    | _ -> None)

(* A batch of tasks being distributed: workers pull indices from [next]
   until it passes [n]; the worker completing the last task ([remaining]
   hitting 0) signals the submitter. [gen] lets a worker tell a fresh
   batch from the one it already drained. *)
type batch = {
  gen : int;
  run : int -> unit;  (* must not raise *)
  n : int;
  next : int Atomic.t;
  remaining : int Atomic.t;
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  have_work : Condition.t;
  finished : Condition.t;
  mutable batch : batch option;
  mutable gen : int;
  mutable stopped : bool;
  submit : Mutex.t;  (* serialises concurrent [map] calls *)
}

(* True while this domain is executing pool tasks or submitting a batch:
   a nested [map] must run sequentially instead of deadlocking on
   [submit] or starving the batch it is part of. *)
let busy : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

(* Pool utilization: tasks are counted in the worker that ran them
   (the sharded registry merges them on snapshot), drain spans show
   each worker's busy window per batch, and the batch-size histogram
   plus the jobs gauge give the denominator for utilization. *)
let m_tasks = lazy (Obs.Metrics.counter "pool.tasks")
let m_batches = lazy (Obs.Metrics.counter "pool.batches")
let m_batch_tasks = lazy (Obs.Metrics.histogram "pool.batch.tasks")
let m_drain_ns = lazy (Obs.Metrics.histogram "pool.drain.ns")
let m_jobs = lazy (Obs.Metrics.gauge "pool.jobs")

let drain t b =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      b.run i;
      Obs.Metrics.incr (Lazy.force m_tasks);
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end;
      go ()
    end
  in
  Obs.Trace.with_span ~cat:"pool" "drain" (fun () ->
      Obs.Profile.time (Lazy.force m_drain_ns) go)

let worker t =
  let flag = Domain.DLS.get busy in
  flag := true;
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    let rec await () =
      if t.stopped then None
      else
        match t.batch with
        | Some b when b.gen <> !last -> Some b
        | _ ->
            Condition.wait t.have_work t.m;
            await ()
    in
    let next = await () in
    Mutex.unlock t.m;
    match next with
    | None -> ()
    | Some b ->
        last := b.gen;
        drain t b;
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      jobs;
      workers = [];
      m = Mutex.create ();
      have_work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      gen = 0;
      stopped = false;
      submit = Mutex.create ();
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let run_task f arr results i =
  let r =
    try Ok (f arr.(i))
    with exn ->
      let backtrace =
        Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
      in
      Error { index = i; exn; backtrace }
  in
  results.(i) <- Some r

let map_seq f xs =
  List.mapi
    (fun index x ->
      try Ok (f x)
      with exn ->
        let backtrace =
          Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
        in
        Error { index; exn; backtrace })
    xs

let map t f xs =
  let n = List.length xs in
  let flag = Domain.DLS.get busy in
  if t.jobs <= 1 || n <= 1 || t.stopped || !flag then map_seq f xs
  else begin
    let arr = Array.of_list xs in
    let results = Array.make n None in
    Obs.Metrics.incr (Lazy.force m_batches);
    Obs.Metrics.observe (Lazy.force m_batch_tasks) n;
    Obs.Metrics.set (Lazy.force m_jobs) t.jobs;
    Obs.Trace.instant ~cat:"pool"
      ~args:(fun () -> [ ("tasks", string_of_int n) ])
      "submit";
    flag := true;
    Fun.protect
      ~finally:(fun () -> flag := false)
      (fun () ->
        Mutex.lock t.submit;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.submit)
          (fun () ->
            Mutex.lock t.m;
            t.gen <- t.gen + 1;
            let b =
              {
                gen = t.gen;
                run = run_task f arr results;
                n;
                next = Atomic.make 0;
                remaining = Atomic.make n;
              }
            in
            t.batch <- Some b;
            Condition.broadcast t.have_work;
            Mutex.unlock t.m;
            (* The caller is a worker too. *)
            drain t b;
            Mutex.lock t.m;
            while Atomic.get b.remaining > 0 do
              Condition.wait t.finished t.m
            done;
            t.batch <- None;
            Mutex.unlock t.m));
    Array.to_list (Array.map Option.get results)
  end

let reraise_first results =
  List.map
    (function
      | Ok y -> y
      | Error f ->
          (* Mirror the sequential path: surface the original exception. *)
          raise f.exn)
    results

let map_exn t f xs = reraise_first (map t f xs)

let map_list ?pool f xs =
  match pool with None -> List.map f xs | Some t -> map_exn t f xs

let map_safe ?pool f xs =
  match pool with None -> map_seq f xs | Some t -> map t f xs

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)

let default_guard = Mutex.create ()
let default_jobs : int option ref = ref None
let default_pool : t option ref = ref None

let default () =
  Mutex.lock default_guard;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create ?jobs:!default_jobs () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_guard;
  t

let set_default_jobs j =
  Mutex.lock default_guard;
  default_jobs := Some (max 1 j);
  (match !default_pool with Some t -> shutdown t | None -> ());
  default_pool := None;
  Mutex.unlock default_guard
