type fault = { index : int; exn : exn; backtrace : string }

exception Task_failed of fault

let () =
  Printexc.register_printer (function
    | Task_failed f ->
        Some
          (Printf.sprintf "task %d failed: %s" f.index
             (Printexc.to_string f.exn))
    | _ -> None)

type chunk_stat = { c_domain : int; c_start : int; c_len : int; c_us : float }

(* A batch of tasks being distributed.  Scheduling is chunked: workers
   steal whole (start, len) slices from [next] rather than single task
   indices, so the per-task cost is amortised over the chunk and a
   domain that lands a cheap slice simply comes back for another.  The
   worker completing the last chunk ([remaining] hitting 0) signals the
   submitter.  [gen] lets a worker tell a fresh batch from the one it
   already drained. *)
type batch = {
  gen : int;
  run : int -> unit;  (* must not raise *)
  chunks : (int * int) array;  (* (start, len) slices of the task array *)
  next : int Atomic.t;  (* next chunk to steal *)
  remaining : int Atomic.t;  (* chunks outstanding *)
  stats : chunk_stat option array;  (* one slot per chunk, owner-written *)
}

type t = {
  jobs : int;  (* requested parallelism (the [-j] figure) *)
  spawned : int;  (* worker domains actually running *)
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  have_work : Condition.t;
  finished : Condition.t;
  mutable batch : batch option;
  mutable gen : int;
  mutable stopped : bool;
  mutable last_stats : chunk_stat list;  (* previous parallel batch *)
  submit : Mutex.t;  (* serialises concurrent [map] calls *)
}

(* True while this domain is executing pool tasks or submitting a batch:
   a nested [map] must run sequentially instead of deadlocking on
   [submit] or starving the batch it is part of. *)
let busy : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

(* Join hooks run by every domain when it finishes draining a batch —
   the pool's phase boundary.  Consumers use them to merge per-domain
   caches back into shared state (see [Litmus.Enumerate]); hooks must
   be cheap, re-entrant and must not raise (raises are swallowed). *)
let join_hooks : (unit -> unit) list ref = ref []
let join_m = Mutex.create ()

let on_join f =
  Mutex.lock join_m;
  join_hooks := f :: !join_hooks;
  Mutex.unlock join_m

let run_join_hooks () =
  Mutex.lock join_m;
  let hs = !join_hooks in
  Mutex.unlock join_m;
  List.iter (fun f -> try f () with _ -> ()) hs

(* Pool utilization: tasks are counted in the worker that ran them
   (the sharded registry merges them on snapshot), drain spans show
   each worker's busy window per batch, and the batch-size histogram
   plus the jobs gauge give the denominator for utilization. *)
let m_tasks = lazy (Obs.Metrics.counter "pool.tasks")
let m_batches = lazy (Obs.Metrics.counter "pool.batches")
let m_batch_tasks = lazy (Obs.Metrics.histogram "pool.batch.tasks")
let m_chunks = lazy (Obs.Metrics.counter "pool.chunks")
let m_drain_ns = lazy (Obs.Metrics.histogram "pool.drain.ns")
let m_jobs = lazy (Obs.Metrics.gauge "pool.jobs")

(* Aim for ~4 chunks per draining domain: coarse enough that the
   steal/bookkeeping cost disappears into the chunk, fine enough that
   one slow slice can be rebalanced by idle domains stealing the
   rest. *)
let plan_chunks ~drainers n =
  let size = max 1 (n / (max 1 drainers * 4)) in
  let nchunks = (n + size - 1) / size in
  Array.init nchunks (fun i ->
      let start = i * size in
      (start, min size (n - start)))

let drain t b =
  let nchunks = Array.length b.chunks in
  let dom = (Domain.self () :> int) in
  let rec go () =
    let c = Atomic.fetch_and_add b.next 1 in
    if c < nchunks then begin
      let start, len = b.chunks.(c) in
      let t0 = Obs.Profile.now_us () in
      for i = start to start + len - 1 do
        b.run i;
        Obs.Metrics.incr (Lazy.force m_tasks)
      done;
      b.stats.(c) <-
        Some
          {
            c_domain = dom;
            c_start = start;
            c_len = len;
            c_us = Obs.Profile.now_us () -. t0;
          };
      Obs.Metrics.incr (Lazy.force m_chunks);
      (* The plain [stats] write above is published to the submitter by
         this decrement (it only reads the array once [remaining] hits
         0). *)
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end;
      go ()
    end
  in
  Obs.Trace.with_span ~cat:"pool" "drain" (fun () ->
      Obs.Profile.time (Lazy.force m_drain_ns) go)

let worker t =
  let flag = Domain.DLS.get busy in
  flag := true;
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    let rec await () =
      if t.stopped then None
      else
        match t.batch with
        | Some b when b.gen <> !last -> Some b
        | _ ->
            Condition.wait t.have_work t.m;
            await ()
    in
    let next = await () in
    Mutex.unlock t.m;
    match next with
    | None -> ()
    | Some b ->
        last := b.gen;
        drain t b;
        (* Batch boundary for this domain: merge local caches out. *)
        run_join_hooks ();
        loop ()
  in
  loop ()

let recommended () = Domain.recommended_domain_count ()

let create ?jobs ?(force_spawn = false) () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  (* On OCaml 5, every live domain participates in each stop-the-world
     minor collection — on a machine with fewer cores than [jobs], even
     a *parked* surplus domain slows allocation-heavy tasks measurably
     (~3x on one core).  So never spawn beyond what the runtime
     recommends; the caller still drains, so a [-j 2] pool on a 1-core
     box is the chunked engine minus the extra domains.  [force_spawn]
     overrides the cap for tests that need real cross-domain traffic. *)
  let cap =
    if force_spawn then jobs
    else min jobs (Domain.recommended_domain_count ())
  in
  let spawned = max 0 (cap - 1) in
  let t =
    {
      jobs;
      spawned;
      workers = [];
      m = Mutex.create ();
      have_work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      gen = 0;
      stopped = false;
      last_stats = [];
      submit = Mutex.create ();
    }
  in
  t.workers <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs
let workers_spawned t = t.spawned
let batch_stats t = t.last_stats

let shutdown t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let run_task f arr results i =
  let r =
    try Ok (f arr.(i))
    with exn ->
      let backtrace =
        Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
      in
      Error { index = i; exn; backtrace }
  in
  results.(i) <- Some r

let map_seq f xs =
  List.mapi
    (fun index x ->
      try Ok (f x)
      with exn ->
        let backtrace =
          Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
        in
        Error { index; exn; backtrace })
    xs

let map t f xs =
  let n = List.length xs in
  let flag = Domain.DLS.get busy in
  if t.jobs <= 1 || n <= 1 || t.stopped || !flag then map_seq f xs
  else begin
    let arr = Array.of_list xs in
    let results = Array.make n None in
    let chunks = plan_chunks ~drainers:(t.spawned + 1) n in
    Obs.Metrics.incr (Lazy.force m_batches);
    Obs.Metrics.observe (Lazy.force m_batch_tasks) n;
    Obs.Metrics.set (Lazy.force m_jobs) t.jobs;
    Obs.Trace.instant ~cat:"pool"
      ~args:(fun () ->
        [
          ("tasks", string_of_int n);
          ("chunks", string_of_int (Array.length chunks));
        ])
      "submit";
    flag := true;
    Fun.protect
      ~finally:(fun () -> flag := false)
      (fun () ->
        Mutex.lock t.submit;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.submit)
          (fun () ->
            Mutex.lock t.m;
            t.gen <- t.gen + 1;
            let b =
              {
                gen = t.gen;
                run = run_task f arr results;
                chunks;
                next = Atomic.make 0;
                remaining = Atomic.make (Array.length chunks);
                stats = Array.make (Array.length chunks) None;
              }
            in
            t.batch <- Some b;
            Condition.broadcast t.have_work;
            Mutex.unlock t.m;
            (* The caller is a worker too. *)
            drain t b;
            Mutex.lock t.m;
            while Atomic.get b.remaining > 0 do
              Condition.wait t.finished t.m
            done;
            t.batch <- None;
            Mutex.unlock t.m;
            t.last_stats <-
              Array.to_list b.stats
              |> List.filter_map (fun s -> s);
            run_join_hooks ()));
    Array.to_list (Array.map Option.get results)
  end

let reraise_first results =
  List.map
    (function
      | Ok y -> y
      | Error f ->
          (* Mirror the sequential path: surface the original exception. *)
          raise f.exn)
    results

let map_exn t f xs = reraise_first (map t f xs)

let map_list ?pool f xs =
  match pool with None -> List.map f xs | Some t -> map_exn t f xs

let map_safe ?pool f xs =
  match pool with None -> map_seq f xs | Some t -> map t f xs

let with_pool ?jobs ?force_spawn f =
  let t = create ?jobs ?force_spawn () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Persistent service mode                                             *)

(* A service is the non-batch face of the pool: long-lived worker
   domains draining a FIFO of independent jobs as they arrive, instead
   of chunk-stealing over one submitted array.  The engine's async
   install queue is the consumer: compile jobs trickle in one at a
   time from the execution thread and must run off-thread without a
   batch boundary ever blocking the submitter. *)
type service = {
  sv_m : Mutex.t;
  sv_have : Condition.t;  (* signalled on submit *)
  sv_idle : Condition.t;  (* broadcast when queue empty and no job running *)
  sv_q : (unit -> unit) Queue.t;
  mutable sv_active : int;  (* jobs currently executing *)
  mutable sv_hwm : int;  (* max of queued + active ever observed *)
  mutable sv_submitted : int;
  mutable sv_stopped : bool;
  mutable sv_workers : unit Domain.t list;
}

let m_service_jobs = lazy (Obs.Metrics.counter "pool.service.jobs")

let service_worker s =
  let flag = Domain.DLS.get busy in
  flag := true;
  let rec loop () =
    Mutex.lock s.sv_m;
    let rec await () =
      if not (Queue.is_empty s.sv_q) then Some (Queue.pop s.sv_q)
      else if s.sv_stopped then None
      else begin
        Condition.wait s.sv_have s.sv_m;
        await ()
      end
    in
    match await () with
    | None -> Mutex.unlock s.sv_m
    | Some job ->
        s.sv_active <- s.sv_active + 1;
        Mutex.unlock s.sv_m;
        (* Jobs must not tear the worker down: the submitter owns error
           reporting through whatever channel the job itself carries. *)
        (try job () with _ -> ());
        Obs.Metrics.incr (Lazy.force m_service_jobs);
        Mutex.lock s.sv_m;
        s.sv_active <- s.sv_active - 1;
        if s.sv_active = 0 && Queue.is_empty s.sv_q then
          Condition.broadcast s.sv_idle;
        Mutex.unlock s.sv_m;
        loop ()
  in
  loop ()

let service_create ?(workers = 1) () =
  (* Unlike the batch pool the submitter never drains, so at least one
     worker domain always spawns — otherwise nothing would.  Extra
     workers still respect the GC-synchronisation cap. *)
  let workers = max 1 (min workers (max 1 (recommended () - 1))) in
  let s =
    {
      sv_m = Mutex.create ();
      sv_have = Condition.create ();
      sv_idle = Condition.create ();
      sv_q = Queue.create ();
      sv_active = 0;
      sv_hwm = 0;
      sv_submitted = 0;
      sv_stopped = false;
      sv_workers = [];
    }
  in
  s.sv_workers <-
    List.init workers (fun _ -> Domain.spawn (fun () -> service_worker s));
  s

let service_submit s job =
  Mutex.lock s.sv_m;
  if s.sv_stopped then begin
    Mutex.unlock s.sv_m;
    (* A stopped service degrades to the caller's thread rather than
       silently dropping work. *)
    try job () with _ -> ()
  end
  else begin
    Queue.push job s.sv_q;
    s.sv_submitted <- s.sv_submitted + 1;
    let depth = Queue.length s.sv_q + s.sv_active in
    if depth > s.sv_hwm then s.sv_hwm <- depth;
    Condition.signal s.sv_have;
    Mutex.unlock s.sv_m
  end

let service_pending s =
  Mutex.lock s.sv_m;
  let n = Queue.length s.sv_q + s.sv_active in
  Mutex.unlock s.sv_m;
  n

let service_hwm s =
  Mutex.lock s.sv_m;
  let n = s.sv_hwm in
  Mutex.unlock s.sv_m;
  n

let service_submitted s =
  Mutex.lock s.sv_m;
  let n = s.sv_submitted in
  Mutex.unlock s.sv_m;
  n

let service_drain s =
  Mutex.lock s.sv_m;
  while not (Queue.is_empty s.sv_q && s.sv_active = 0) do
    Condition.wait s.sv_idle s.sv_m
  done;
  Mutex.unlock s.sv_m

let service_shutdown s =
  Mutex.lock s.sv_m;
  s.sv_stopped <- true;
  Condition.broadcast s.sv_have;
  Mutex.unlock s.sv_m;
  List.iter Domain.join s.sv_workers;
  s.sv_workers <- []

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)

let default_guard = Mutex.create ()
let default_jobs : int option ref = ref None
let default_pool : t option ref = ref None

let default () =
  Mutex.lock default_guard;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create ?jobs:!default_jobs () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_guard;
  t

let set_default_jobs j =
  Mutex.lock default_guard;
  default_jobs := Some (max 1 j);
  (match !default_pool with Some t -> shutdown t | None -> ());
  default_pool := None;
  Mutex.unlock default_guard
