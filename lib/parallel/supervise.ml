type policy = {
  deadline_s : float option;
  retries : int;
  backoff_s : float;
  max_backoff_s : float;
  chaos : (unit -> bool) option;
}

let default =
  {
    deadline_s = None;
    retries = 0;
    backoff_s = 0.01;
    max_backoff_s = 1.0;
    chaos = None;
  }

type failure =
  | Timed_out of { attempts : int; deadline_s : float }
  | Quarantined of { attempts : int; last : Pool.fault }

exception Deadline_exceeded of { elapsed_s : float; deadline_s : float }
exception Injected of string

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { elapsed_s; deadline_s } ->
        Some
          (Printf.sprintf "task deadline exceeded (%.3fs elapsed, %.3fs budget)"
             elapsed_s deadline_s)
    | Injected site -> Some (Printf.sprintf "injected transient fault (%s)" site)
    | _ -> None)

let pp_failure ppf = function
  | Timed_out { attempts; deadline_s } ->
      Fmt.pf ppf "timed out after %.3fs deadline (attempt %d)" deadline_s
        attempts
  | Quarantined { attempts; last } ->
      Fmt.pf ppf "quarantined after %d attempt(s): %s" attempts
        (Printexc.to_string last.Pool.exn)

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation token                                      *)

type token = {
  started : float;
  deadline : float;  (* absolute; infinity = no deadline *)
  mutable polls : int;
}

let no_token = { started = 0.; deadline = infinity; polls = 0 }

let current : token ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref no_token)

(* Sample the clock only every 32nd poll: hot enumeration loops may
   poll millions of times, and a deadline late by 31 polls is still a
   deadline. *)
let poll_stride = 32

let poll () =
  let cur = Domain.DLS.get current in
  let tok = !cur in
  if tok != no_token then begin
    tok.polls <- tok.polls + 1;
    if tok.polls land (poll_stride - 1) = 0 then begin
      let now = Unix.gettimeofday () in
      if now > tok.deadline then
        raise
          (Deadline_exceeded
             {
               elapsed_s = now -. tok.started;
               deadline_s = tok.deadline -. tok.started;
             })
    end
  end

let with_deadline deadline_s f =
  match deadline_s with
  | None -> f ()
  | Some budget ->
      let cur = Domain.DLS.get current in
      let outer = !cur in
      let now = Unix.gettimeofday () in
      cur := { started = now; deadline = now +. budget; polls = 0 };
      Fun.protect ~finally:(fun () -> cur := outer) f

(* ------------------------------------------------------------------ *)
(* Retry / quarantine driver                                           *)

let m_retry = lazy (Obs.Metrics.counter "task.retry")
let m_timeout = lazy (Obs.Metrics.counter "task.timeout")
let m_quarantined = lazy (Obs.Metrics.counter "task.quarantined")

let run_indexed policy ~index f =
  let rec attempt k =
    let outcome =
      try
        (match policy.chaos with
        | Some fire when fire () -> raise (Injected "pool-task")
        | _ -> ());
        Ok (with_deadline policy.deadline_s f)
      with
      | Deadline_exceeded _ -> Error `Timeout
      | exn ->
          let backtrace =
            Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
          in
          Error (`Fault { Pool.index; exn; backtrace })
    in
    match outcome with
    | Ok y -> Ok y
    | Error `Timeout ->
        (* Deterministic work times out again; don't burn retries. *)
        Obs.Metrics.incr (Lazy.force m_timeout);
        Error
          (Timed_out
             {
               attempts = k;
               deadline_s = Option.value ~default:0. policy.deadline_s;
             })
    | Error (`Fault fault) ->
        if k <= policy.retries then begin
          Obs.Metrics.incr (Lazy.force m_retry);
          let delay =
            Float.min policy.max_backoff_s
              (policy.backoff_s *. Float.pow 2. (float_of_int (k - 1)))
          in
          if delay > 0. then Unix.sleepf delay;
          attempt (k + 1)
        end
        else begin
          Obs.Metrics.incr (Lazy.force m_quarantined);
          Error (Quarantined { attempts = k; last = fault })
        end
  in
  attempt 1

let run policy f = run_indexed policy ~index:(-1) f

let map ?pool policy f xs =
  let tasks = List.mapi (fun i x -> (i, x)) xs in
  Pool.map_list ?pool
    (fun (i, x) -> run_indexed policy ~index:i (fun () -> f x))
    tasks
