(** Architecture-neutral litmus programs.

    One AST serves x86, TCG IR and Arm programs: instructions carry the
    access annotations of the architecture they are written for, and the
    memory models interpret the annotations they know about.  Mapping
    schemes (lib/mapping) are functions from programs to programs. *)

(** Thread-local expressions over registers. *)
type exp =
  | Int of int
  | Reg of string
  | Add of exp * exp
  | Sub of exp * exp
  | Mul of exp * exp
  | Xor of exp * exp
  | Eq of exp * exp  (** 1 if equal else 0 *)
  | Ne of exp * exp

(** Arm RMW implementation style: a single-copy-atomic instruction
    ([casal] family — the [amo] relation) or a load-exclusive /
    store-exclusive loop (the [lxsx] relation). *)
type rmw_impl = Amo | Lxsx

type rmw_kind =
  | Rmw_x86  (** x86 [LOCK CMPXCHG]: plain events, full-fence via [rmw] *)
  | Rmw_tcg  (** TCG IR RMW: Rsc/Wsc events *)
  | Rmw_arm of { impl : rmw_impl; acq : bool; rel : bool }

type instr =
  | Load of { reg : string; loc : string; ord : Axiom.Event.read_ord }
  | Store of { loc : string; value : exp; ord : Axiom.Event.write_ord }
  | Cas of {
      reg : string option;  (** receives the value read *)
      loc : string;
      expect : exp;
      desired : exp;
      kind : rmw_kind;
    }
  | Fence of Axiom.Event.fence
  | Assign of string * exp
  | If of { cond : exp; then_ : instr list; else_ : instr list }

type thread = { tid : int; code : instr list }

type prog = { name : string; init : (string * int) list; threads : thread list }

(** Conditions over final states, as in litmus [exists] clauses. *)
type cond =
  | Reg_is of int * string * int  (** [tid:reg = v] *)
  | Loc_is of string * int
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | True

(** [Allowed c]: some consistent execution satisfies [c].
    [Forbidden c]: no consistent execution satisfies [c]. *)
type expectation = Allowed of cond | Forbidden of cond

type test = { prog : prog; expect : expectation }

val locations : prog -> string list
(** All shared locations mentioned, including init-only ones. *)

val registers : thread -> string list
(** Registers written by a thread's code, in first-write order. *)

val map_instrs : (instr -> instr list) -> prog -> prog
(** Apply an instruction-level rewriting to every thread, recursing into
    [If] branches.  The rewriting of one instruction may expand to a
    sequence (used by the mapping schemes). *)

val read_ann : Axiom.Event.read_ord -> string
(** Ordering suffix used in renderings ([""], [".acq"], …). *)

val write_ann : Axiom.Event.write_ord -> string
val rmw_kind_name : rmw_kind -> string

val pp_exp : Format.formatter -> exp -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_prog : Format.formatter -> prog -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_expectation : Format.formatter -> expectation -> unit
