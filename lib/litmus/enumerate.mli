(** Exhaustive enumeration of the consistent executions of a litmus
    program under a memory model.

    The generator follows the standard candidate-execution recipe:

    + each thread is run symbolically with a read-value oracle drawing
      from the program's value universe (constants ∪ initial values),
      resolving control flow and recording events, RMW pairing and
      data/control dependencies;
    + reads-from is enumerated over value-compatible writes;
    + coherence is enumerated as the linear extensions of the per-location
      write sets (initialisation writes first);
    + candidates are filtered by the model's consistency predicate.

    Exact for loop-free litmus-sized programs. *)

(** A behaviour: final memory (co-maximal writes) plus the final local
    register valuation of each thread, both canonically sorted. *)
type behaviour = {
  mem : (string * int) list;
  regs : ((int * string) * int) list;
}

val behaviour_compare : behaviour -> behaviour -> int
val pp_behaviour : Format.formatter -> behaviour -> unit

(** The value universe used by the read oracle. *)
val universe : Ast.prog -> int list

(** All candidate executions (before model filtering), paired with the
    thread-local register valuations of the runs that produced them. *)
val candidates : Ast.prog -> (Axiom.Execution.t * ((int * string) * int) list) list

(** Consistent executions under a model.

    Unlike {!candidates}, the consistent-execution path enumerates with
    per-location pruning: (rf, co) choices that violate per-location
    coherence or RMW atomicity are rejected before the cross-location
    product is taken.  This assumes the model's consistency predicate
    implies [Axiom.Model.common] — true of every model in [lib/axiom] —
    and produces exactly the executions the unpruned path would keep. *)
val executions : Axiom.Model.t -> Ast.prog -> Axiom.Execution.t list

(** Like {!executions}, with each execution's full behaviour (final
    memory plus register valuations) — the witness-capture entry point:
    a concrete execution exhibiting a given behaviour is found by
    filtering this list. *)
val consistent_executions :
  Axiom.Model.t -> Ast.prog -> (Axiom.Execution.t * behaviour) list

(** Behaviours via the {e unpruned} candidate product, calling
    [on_reject] on every candidate the model's consistency predicate
    rejects (including those the pruned path would discard before
    assembly).  Returns exactly what {!behaviours} returns, but bypasses
    the cache and the per-location pruning — this is the opt-in
    axiom-coverage probe (lib/report), not a fast path. *)
val behaviours_probed :
  on_reject:(Axiom.Execution.t -> unit) ->
  Axiom.Model.t ->
  Ast.prog ->
  behaviour list

(** The set of behaviours of the consistent executions, deduplicated and
    sorted.  Uses the pruned enumeration (see {!executions}) and a
    two-level domain-safe cache keyed by (model name, program AST): a
    lock-free domain-private table in front of a shared mutex-guarded
    one, with fresh entries merged into the shared table at pool batch
    boundaries ([Parallel.Pool.on_join]).  Within one run, the same
    (model, program) pair is enumerated once per domain at worst, once
    overall in the common case.  Distinct models must therefore carry
    distinct names (they do). *)
val behaviours : Axiom.Model.t -> Ast.prog -> behaviour list

(** [behaviours_many models p] is
    [List.map (fun m -> (m.name, behaviours m p)) models] computed with
    a {e single} pruned enumeration for all cache-missing models: the
    pruning only uses properties common to every model, so the survivor
    set is shared and each model adds one cheap consistency filter.
    Duplicate model names are served once.  This is the batch
    refinement planner's enumeration primitive. *)
val behaviours_many :
  Axiom.Model.t list -> Ast.prog -> (string * behaviour list) list

(** [(hits, misses)] of the behaviours cache since start/last clear.
    Hits count local- and shared-table hits alike; misses count
    enumerations (one per model even when served by a shared
    [behaviours_many] survivor pass). *)
val cache_stats : unit -> int * int

(** Empty the behaviours cache and the linear-extension memo
    ({!Relalg.Rel.clear_memo}) — for cold-start benchmarking and
    bounding memory in long-running processes. *)
val clear_caches : unit -> unit

val eval_cond : Ast.cond -> behaviour -> bool

type verdict = {
  ok : bool;
  total_consistent : int;
  witnesses : behaviour list;  (** behaviours satisfying the condition *)
}

(** Check a test's expectation under a model. *)
val check : Axiom.Model.t -> Ast.test -> verdict
