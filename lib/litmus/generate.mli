(** QCheck-driven litmus program generator with shape canonicalization.

    The hand-written corpus (lib/mapping/corpus) has 16 programs; the
    generator scales refinement sweeps to 10⁴+ well-formed x86 litmus
    programs — plain loads/stores, MFENCEs and x86 CASes over up to
    three shared locations — the way Chakraborty scales mapping
    evidence with litmus batteries.  Generation is seeded and
    deterministic: the same [seed] and [n] always produce the same
    programs, on every machine, so a CI failure is reproducible from
    the numbers in the log alone.

    Generated programs are {e shapes} more often than they are novel:
    renaming locations or registers, or swapping whole threads, yields
    a program with an isomorphic behaviour set under every model.
    {!canonical} normalises all three (best thread permutation ×
    first-occurrence renaming, lexicographically smallest rendering),
    {!shape_hash} digests the result, and {!corpus} dedups a generated
    batch into canonical classes with multiplicities — the key the
    verdict memo ([Mapping.Check.check_memo]) shares verdicts by. *)

(** Generation bounds.  The defaults keep the candidate-execution space
    of every generated program litmus-sized (the enumerator is
    exponential in reads and writes-per-location): 2–3 threads, ≤ 3
    shared locations, ≤ [max_instrs] instructions per thread, at most
    [max_reads] loads+CASes per program and [max_writes_per_loc]
    non-init writes per location (excess instructions are dropped
    deterministically). *)
type config = {
  max_threads : int;  (** 2 or 3 *)
  max_locs : int;  (** ≤ 3 *)
  max_instrs : int;  (** per thread *)
  max_reads : int;  (** program-wide loads+CASes *)
  max_writes_per_loc : int;  (** non-init writes per location *)
  cas_weight : int;  (** relative frequency of CAS vs load/store *)
  fence_weight : int;  (** relative frequency of MFENCE *)
}

val default_config : config

(** The underlying program generator (for QCheck properties). *)
val gen : ?config:config -> Ast.prog QCheck.Gen.t

(** [generate ~seed n] is the deterministic batch: programs are named
    [gen-<i>] in generation order. *)
val generate : ?config:config -> seed:int -> int -> Ast.prog list

(** The canonical representative of a program's shape class: threads
    reordered, locations and registers renamed to first-occurrence
    [l0, l1, …] / [r0, r1, …], the permutation chosen to minimise the
    serialized rendering.  Canonically-equal programs have isomorphic
    behaviour sets under every model (renaming and thread order are
    semantically inert), so one verdict serves the class. *)
val canonical : Ast.prog -> Ast.prog

(** The canonical rendering {!canonical} minimises — the memo key. *)
val canonical_string : Ast.prog -> string

(** CRC-32 of {!canonical_string}: the shape hash used in class
    names. *)
val shape_hash : Ast.prog -> int32

(** One shape class of a generated batch: [cls_name] is
    [gen-<index>-<hash>] (first-occurrence index keeps names unique
    even on CRC collisions), [cls_rep] the canonical representative
    (its [name] is [cls_name]), [cls_count] the number of generated
    programs that collapsed into the class. *)
type cls = {
  cls_name : string;
  cls_rep : Ast.prog;
  cls_hash : int32;
  cls_count : int;
}

type corpus = {
  seed : int;
  requested : int;  (** programs generated before dedup *)
  classes : cls list;  (** first-occurrence order *)
}

(** Generate [n] programs and dedup them into shape classes. *)
val corpus : ?config:config -> seed:int -> int -> corpus

(** [1 - classes/programs]: the fraction of generated programs served
    by another program's verdict. *)
val dedup_ratio : corpus -> float
