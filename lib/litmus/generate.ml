module E = Axiom.Event

type config = {
  max_threads : int;
  max_locs : int;
  max_instrs : int;
  max_reads : int;
  max_writes_per_loc : int;
  cas_weight : int;
  fence_weight : int;
}

let default_config =
  {
    max_threads = 3;
    max_locs = 3;
    max_instrs = 3;
    max_reads = 4;
    max_writes_per_loc = 2;
    cas_weight = 2;
    fence_weight = 2;
  }

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let all_locs = [ "x"; "y"; "z" ]

(* One raw instruction.  Registers are placeholders ("?") resolved by
   the per-thread numbering pass below, so the generator itself stays a
   plain QCheck combinator. *)
let gen_instr cfg locs : Ast.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let loc = oneofl locs in
  frequency
    [
      ( 3,
        loc >>= fun l ->
        int_range 1 2 >|= fun v ->
        Ast.Store { loc = l; value = Ast.Int v; ord = E.W_plain } );
      ( 3,
        loc >|= fun l -> Ast.Load { reg = "?"; loc = l; ord = E.R_plain } );
      ( cfg.cas_weight,
        loc >>= fun l ->
        int_range 0 1 >>= fun e ->
        int_range 1 2 >|= fun d ->
        Ast.Cas
          {
            reg = Some "?";
            loc = l;
            expect = Ast.Int e;
            desired = Ast.Int d;
            kind = Ast.Rmw_x86;
          } );
      (cfg.fence_weight, pure (Ast.Fence E.F_mfence));
    ]

let gen_thread cfg locs tid : Ast.thread QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 cfg.max_instrs >>= fun n ->
  list_repeat n (gen_instr cfg locs) >|= fun code -> { Ast.tid; code }

(* Enforce the enumeration budget: the candidate space is exponential
   in reads and in writes per location, so excess memory instructions
   are dropped (deterministically, in program order) rather than risk a
   generated program the enumerator cannot finish.  Placeholder
   registers are numbered r0, r1, … per thread in the same pass. *)
let sanitize cfg (p : Ast.prog) =
  let reads = ref 0 in
  let writes : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let write_budget l =
    let r =
      match Hashtbl.find_opt writes l with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add writes l r;
          r
    in
    if !r < cfg.max_writes_per_loc then begin
      incr r;
      true
    end
    else false
  in
  let threads =
    List.map
      (fun (t : Ast.thread) ->
        let nreg = ref 0 in
        let fresh () =
          let r = Printf.sprintf "r%d" !nreg in
          incr nreg;
          r
        in
        let code =
          List.filter_map
            (fun (i : Ast.instr) ->
              match i with
              | Ast.Load l ->
                  if !reads < cfg.max_reads then begin
                    incr reads;
                    Some (Ast.Load { l with reg = fresh () })
                  end
                  else None
              | Ast.Store s -> if write_budget s.loc then Some i else None
              | Ast.Cas c ->
                  if !reads < cfg.max_reads && write_budget c.loc then begin
                    incr reads;
                    Some (Ast.Cas { c with reg = Some (fresh ()) })
                  end
                  else None
              | Ast.Fence _ | Ast.Assign _ | Ast.If _ -> Some i)
            t.code
        in
        { t with code })
      p.threads
  in
  { p with threads }

let gen ?(config = default_config) : Ast.prog QCheck.Gen.t =
  let open QCheck.Gen in
  let cfg = config in
  int_range 2 (max 2 cfg.max_threads) >>= fun nthreads ->
  int_range 2 (max 2 (min cfg.max_locs (List.length all_locs))) >>= fun nlocs ->
  let locs = List.filteri (fun i _ -> i < nlocs) all_locs in
  let rec threads tid acc =
    if tid >= nthreads then pure (List.rev acc)
    else gen_thread cfg locs tid >>= fun t -> threads (tid + 1) (t :: acc)
  in
  threads 0 [] >|= fun threads ->
  sanitize cfg
    {
      Ast.name = "gen";
      init = List.map (fun l -> (l, 0)) locs;
      threads;
    }

let generate ?config ~seed n =
  let st = Random.State.make [| 0x52497354; seed |] in
  let g = gen ?config in
  List.init n (fun i ->
      let p = g st in
      { p with Ast.name = Printf.sprintf "gen-%04d" i })

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)

(* A tiny total serializer — bespoke rather than the pretty-printer so
   the canonical string is stable against formatting changes.  The
   program name is deliberately excluded: it is metadata, not shape. *)
let ser_prog (p : Ast.prog) =
  let b = Buffer.create 128 in
  let rec ser_exp = function
    | Ast.Int n -> Buffer.add_string b (string_of_int n)
    | Ast.Reg r -> Buffer.add_string b r
    | Ast.Add (x, y) -> bin "+" x y
    | Ast.Sub (x, y) -> bin "-" x y
    | Ast.Mul (x, y) -> bin "*" x y
    | Ast.Xor (x, y) -> bin "^" x y
    | Ast.Eq (x, y) -> bin "==" x y
    | Ast.Ne (x, y) -> bin "!=" x y
  and bin op x y =
    Buffer.add_char b '(';
    ser_exp x;
    Buffer.add_string b op;
    ser_exp y;
    Buffer.add_char b ')'
  in
  let rec ser_instr (i : Ast.instr) =
    (match i with
    | Ast.Load { reg; loc; ord } ->
        Buffer.add_string b
          (Printf.sprintf "ld%s:%s:%s" (Ast.read_ann ord) loc reg)
    | Ast.Store { loc; value; ord } ->
        Buffer.add_string b (Printf.sprintf "st%s:%s:" (Ast.write_ann ord) loc);
        ser_exp value
    | Ast.Cas { reg; loc; expect; desired; kind } ->
        Buffer.add_string b
          (Printf.sprintf "cas.%s:%s:%s:" (Ast.rmw_kind_name kind) loc
             (Option.value ~default:"_" reg));
        ser_exp expect;
        Buffer.add_char b ':';
        ser_exp desired
    | Ast.Fence f -> Buffer.add_string b ("f:" ^ Fmt.str "%a" E.pp_fence f)
    | Ast.Assign (r, e) ->
        Buffer.add_string b (r ^ ":=");
        ser_exp e
    | Ast.If { cond; then_; else_ } ->
        Buffer.add_string b "if:";
        ser_exp cond;
        Buffer.add_char b '{';
        List.iter ser_instr then_;
        Buffer.add_string b "}{";
        List.iter ser_instr else_;
        Buffer.add_char b '}');
    Buffer.add_char b ';'
  in
  List.iter
    (fun (l, v) -> Buffer.add_string b (Printf.sprintf "%s=%d," l v))
    p.init;
  List.iter
    (fun (t : Ast.thread) ->
      Buffer.add_char b '|';
      List.iter ser_instr t.code)
    p.threads;
  Buffer.contents b

(* Rename locations and registers to first-occurrence l0/l1/… and
   r0/r1/… for a given thread order.  Locations are shared (one map for
   the program, fed in thread-scan order); registers are thread-local.
   The scan order within an instruction is fixed (location, then value
   expressions, then the destination register) so the renaming is a
   deterministic function of the thread order alone. *)
let rename (p : Ast.prog) (threads : Ast.thread list) =
  let locs : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let nloc = ref 0 in
  let loc l =
    match Hashtbl.find_opt locs l with
    | Some l' -> l'
    | None ->
        let l' = Printf.sprintf "l%d" !nloc in
        incr nloc;
        Hashtbl.add locs l l';
        l'
  in
  let rename_thread tid (t : Ast.thread) =
    let regs : (string, string) Hashtbl.t = Hashtbl.create 4 in
    let nreg = ref 0 in
    let reg r =
      match Hashtbl.find_opt regs r with
      | Some r' -> r'
      | None ->
          let r' = Printf.sprintf "r%d" !nreg in
          incr nreg;
          Hashtbl.add regs r r';
          r'
    in
    let rec exp = function
      | Ast.Int n -> Ast.Int n
      | Ast.Reg r -> Ast.Reg (reg r)
      | Ast.Add (x, y) -> Ast.Add (exp x, exp y)
      | Ast.Sub (x, y) -> Ast.Sub (exp x, exp y)
      | Ast.Mul (x, y) -> Ast.Mul (exp x, exp y)
      | Ast.Xor (x, y) -> Ast.Xor (exp x, exp y)
      | Ast.Eq (x, y) -> Ast.Eq (exp x, exp y)
      | Ast.Ne (x, y) -> Ast.Ne (exp x, exp y)
    in
    let rec instr (i : Ast.instr) =
      match i with
      | Ast.Load { reg = r; loc = l; ord } ->
          let l = loc l in
          Ast.Load { reg = reg r; loc = l; ord }
      | Ast.Store { loc = l; value; ord } ->
          let l = loc l in
          Ast.Store { loc = l; value = exp value; ord }
      | Ast.Cas { reg = r; loc = l; expect; desired; kind } ->
          let l = loc l in
          let expect = exp expect in
          let desired = exp desired in
          Ast.Cas { reg = Option.map reg r; loc = l; expect; desired; kind }
      | Ast.Fence f -> Ast.Fence f
      | Ast.Assign (r, e) ->
          let e = exp e in
          Ast.Assign (reg r, e)
      | Ast.If { cond; then_; else_ } ->
          let cond = exp cond in
          let then_ = List.map instr then_ in
          let else_ = List.map instr else_ in
          Ast.If { cond; then_; else_ }
    in
    { Ast.tid; code = List.map instr t.code }
  in
  let threads = List.mapi rename_thread threads in
  (* Init entries for locations never touched by code keep a stable
     order (sorted by original name) after the code-driven ones. *)
  let init =
    List.map (fun (l, v) -> (loc l, v)) (List.sort compare p.init)
    |> List.sort compare
  in
  { Ast.name = p.name; init; threads }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun i ->
          let x = List.nth l i in
          let rest = List.filteri (fun j _ -> j <> i) l in
          List.map (fun p -> x :: p) (permutations rest))
        (List.init (List.length l) Fun.id)

let canonical_pair (p : Ast.prog) =
  let best =
    List.fold_left
      (fun best threads ->
        let q = rename p threads in
        let s = ser_prog q in
        match best with
        | Some (_, s') when String.compare s' s <= 0 -> best
        | _ -> Some (q, s))
      None
      (permutations p.threads)
  in
  match best with
  | Some (q, s) -> (q, s)
  | None -> (rename p [], ser_prog (rename p []))

let canonical p = fst (canonical_pair p)
let canonical_string p = snd (canonical_pair p)
let shape_hash p = Checksum.Crc32.digest (canonical_string p)

(* ------------------------------------------------------------------ *)
(* Corpus: dedup into shape classes                                    *)

type cls = {
  cls_name : string;
  cls_rep : Ast.prog;
  cls_hash : int32;
  cls_count : int;
}

type corpus = { seed : int; requested : int; classes : cls list }

let corpus ?config ~seed n =
  let progs = generate ?config ~seed n in
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  let reps = ref [] in
  let nclasses = ref 0 in
  List.iter
    (fun p ->
      let rep, s = canonical_pair p in
      match Hashtbl.find_opt tbl s with
      | Some k -> incr (Hashtbl.find counts k)
      | None ->
          let k = !nclasses in
          incr nclasses;
          Hashtbl.add tbl s k;
          Hashtbl.add counts k (ref 1);
          let hash = Checksum.Crc32.digest s in
          let name =
            Printf.sprintf "gen-%04d-%s" k (Checksum.Crc32.to_hex hash)
          in
          reps := (k, { cls_name = name; cls_rep = { rep with Ast.name }; cls_hash = hash; cls_count = 1 }) :: !reps)
    progs;
  let classes =
    List.rev_map
      (fun (k, c) -> { c with cls_count = !(Hashtbl.find counts k) })
      !reps
  in
  { seed; requested = n; classes }

let dedup_ratio c =
  if c.requested = 0 then 0.
  else 1. -. (float_of_int (List.length c.classes) /. float_of_int c.requested)
