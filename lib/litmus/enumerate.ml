open Relalg
module E = Axiom.Event
module X = Axiom.Execution

type behaviour = {
  mem : (string * int) list;
  regs : ((int * string) * int) list;
}

let behaviour_compare = compare

let pp_behaviour ppf b =
  let pp_mem ppf (l, v) = Fmt.pf ppf "%s=%d" l v in
  let pp_reg ppf ((tid, r), v) = Fmt.pf ppf "%d:%s=%d" tid r v in
  Fmt.pf ppf "@[%a %a@]"
    Fmt.(list ~sep:sp pp_mem)
    b.mem
    Fmt.(list ~sep:sp pp_reg)
    b.regs

(* ------------------------------------------------------------------ *)
(* Value universe                                                      *)

let rec exp_consts acc = function
  | Ast.Int n -> n :: acc
  | Ast.Reg _ -> acc
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Xor (a, b)
  | Ast.Eq (a, b) | Ast.Ne (a, b) ->
      exp_consts (exp_consts acc a) b

let rec instr_consts acc = function
  | Ast.Load _ | Ast.Fence _ -> acc
  | Ast.Store { value; _ } -> exp_consts acc value
  | Ast.Cas { expect; desired; _ } -> exp_consts (exp_consts acc expect) desired
  | Ast.Assign (_, e) -> exp_consts acc e
  | Ast.If { cond; then_; else_ } ->
      let acc = exp_consts acc cond in
      let acc = List.fold_left instr_consts acc then_ in
      List.fold_left instr_consts acc else_

let universe (p : Ast.prog) =
  let consts =
    List.fold_left
      (fun acc t -> List.fold_left instr_consts acc t.Ast.code)
      (List.map snd p.init) p.threads
  in
  List.sort_uniq compare (0 :: consts)

(* ------------------------------------------------------------------ *)
(* Per-thread symbolic runs with a read-value oracle                   *)

type state = {
  next : int;
  env : (string * (int * Iset.t)) list;  (* reg -> value, taint *)
  ctrl : Iset.t;  (* reads the current control flow depends on *)
  events : E.t list;  (* reversed *)
  rmw : (int * int * Ast.rmw_kind) list;
  data : (int * int) list;
  ctrl_edges : (int * int) list;
}

type run = {
  r_events : E.t list;  (* in po order *)
  r_rmw : (int * int * Ast.rmw_kind) list;
  r_data : (int * int) list;
  r_ctrl : (int * int) list;
  r_env : (string * int) list;
}

let eval env e =
  let rec go = function
    | Ast.Int n -> (n, Iset.empty)
    | Ast.Reg r -> (
        match List.assoc_opt r env with
        | Some (v, t) -> (v, t)
        | None -> (0, Iset.empty))
    | Ast.Add (a, b) -> bin ( + ) a b
    | Ast.Sub (a, b) -> bin ( - ) a b
    | Ast.Mul (a, b) -> bin ( * ) a b
    | Ast.Xor (a, b) -> bin ( lxor ) a b
    | Ast.Eq (a, b) -> bin (fun x y -> if x = y then 1 else 0) a b
    | Ast.Ne (a, b) -> bin (fun x y -> if x <> y then 1 else 0) a b
  and bin f a b =
    let va, ta = go a and vb, tb = go b in
    (f va vb, Iset.union ta tb)
  in
  go e

let set_reg env r v t = (r, (v, t)) :: List.remove_assoc r env

let fresh_event st tid label =
  let e = { E.id = st.next; tid; label } in
  let ctrl_edges =
    if E.is_mem e then
      Iset.fold (fun src acc -> (src, e.id) :: acc) st.ctrl st.ctrl_edges
    else st.ctrl_edges
  in
  (e, { st with next = st.next + 1; events = e :: st.events; ctrl_edges })

(* The ords carried by the events of an RMW, per architecture flavour. *)
let rmw_ords = function
  | Ast.Rmw_x86 -> (E.R_plain, E.W_plain)
  | Ast.Rmw_tcg -> (E.R_sc, E.W_sc)
  | Ast.Rmw_arm { acq; rel; _ } ->
      ((if acq then E.R_acq else E.R_plain), if rel then E.W_rel else E.W_plain)

let thread_runs uni tid (code : Ast.instr list) ~first_id =
  let rec exec st instrs =
    match instrs with
    | [] ->
        [
          {
            r_events = List.rev st.events;
            r_rmw = st.rmw;
            r_data = st.data;
            r_ctrl = st.ctrl_edges;
            r_env = List.map (fun (r, (v, _)) -> (r, v)) st.env;
          };
        ]
    | i :: rest -> (
        match i with
        | Ast.Assign (r, e) ->
            let v, t = eval st.env e in
            exec { st with env = set_reg st.env r v t } rest
        | Ast.Fence f ->
            let _, st = fresh_event st tid (E.Fence f) in
            exec st rest
        | Ast.Store { loc; value; ord } ->
            let v, t = eval st.env value in
            let e, st = fresh_event st tid (E.Write { loc; value = v; ord }) in
            let data =
              Iset.fold (fun src acc -> (src, e.id) :: acc) t st.data
            in
            exec { st with data } rest
        | Ast.Load { reg; loc; ord } ->
            List.concat_map
              (fun v ->
                let e, st =
                  fresh_event st tid (E.Read { loc; value = v; ord })
                in
                exec
                  { st with env = set_reg st.env reg v (Iset.singleton e.id) }
                  rest)
              uni
        | Ast.Cas { reg; loc; expect; desired; kind } ->
            let exp_v, exp_t = eval st.env expect in
            let des_v, des_t = eval st.env desired in
            let rord, word = rmw_ords kind in
            List.concat_map
              (fun v ->
                let re, st =
                  fresh_event st tid (E.Read { loc; value = v; ord = rord })
                in
                let st =
                  match reg with
                  | Some r ->
                      { st with env = set_reg st.env r v (Iset.singleton re.id) }
                  | None -> st
                in
                if v = exp_v then
                  (* Success: write the desired value, rmw-paired. *)
                  let we, st =
                    fresh_event st tid
                      (E.Write { loc; value = des_v; ord = word })
                  in
                  let data =
                    Iset.fold
                      (fun src acc -> (src, we.id) :: acc)
                      (Iset.union des_t exp_t) st.data
                  in
                  exec
                    { st with data; rmw = (re.id, we.id, kind) :: st.rmw }
                    rest
                else exec st rest)
              uni
        | Ast.If { cond; then_; else_ } ->
            let v, t = eval st.env cond in
            let st = { st with ctrl = Iset.union st.ctrl t } in
            let branch = if v <> 0 then then_ else else_ in
            exec st (branch @ rest))
  in
  exec
    {
      next = first_id;
      env = [];
      ctrl = Iset.empty;
      events = [];
      rmw = [];
      data = [];
      ctrl_edges = [];
    }
    code

(* ------------------------------------------------------------------ *)
(* Candidate assembly                                                  *)

let cartesian (lists : 'a list list) : 'a list list =
  List.fold_right
    (fun l acc -> List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) l)
    lists [ [] ]

let init_events (p : Ast.prog) ~first_id =
  let locs = Ast.locations p in
  List.mapi
    (fun i loc ->
      let value = Option.value ~default:0 (List.assoc_opt loc p.init) in
      { E.id = first_id + i; tid = E.init_tid; label = E.Write { loc; value; ord = E.W_plain } })
    locs

(* The per-thread runs of a combo, assembled into the candidate's shared
   skeleton: events, po, register valuations and dependency relations —
   everything except the rf/co choices. *)
type combo = {
  c_events : E.t list;
  c_po : Rel.t;
  c_regs : ((int * string) * int) list;
  c_rmw : (int * int * Ast.rmw_kind) list;
  c_data : Rel.t;
  c_ctrl : Rel.t;
}

let assemble_combo inits (runs : run list) =
  let thread_events = List.concat_map (fun r -> r.r_events) runs in
  let events = inits @ thread_events in
  let po =
    List.fold_left
      (fun acc r ->
        let rec pairs acc = function
          | [] -> acc
          | (e : E.t) :: rest ->
              pairs
                (List.fold_left
                   (fun acc (e' : E.t) -> Rel.add e.id e'.id acc)
                   acc rest)
                rest
        in
        pairs acc r.r_events)
      Rel.empty runs
  in
  let regs =
    List.concat_map
      (fun (r, run) -> List.map (fun (reg, v) -> ((r, reg), v)) run.r_env)
      (List.mapi (fun i run -> (i, run)) runs)
    |> List.sort compare
  in
  {
    c_events = events;
    c_po = po;
    c_regs = regs;
    c_rmw = List.concat_map (fun r -> r.r_rmw) runs;
    c_data = Rel.of_list (List.concat_map (fun r -> r.r_data) runs);
    c_ctrl = Rel.of_list (List.concat_map (fun r -> r.r_ctrl) runs);
  }

let combos (p : Ast.prog) =
  let uni = universe p in
  let inits = init_events p ~first_id:0 in
  let base = List.length inits in
  (* Each thread gets a disjoint id range. *)
  let stride = 256 in
  let runs_per_thread =
    List.map
      (fun (t : Ast.thread) ->
        thread_runs uni t.tid t.code ~first_id:(base + (t.tid * stride)))
      p.threads
  in
  List.map (assemble_combo inits) (cartesian runs_per_thread)

let execution_of_combo c ~rf ~co =
  let pick k =
    List.fold_left
      (fun acc (r, w, kind) -> if k kind then Rel.add r w acc else acc)
      Rel.empty c.c_rmw
  in
  {
    X.events = c.c_events;
    po = c.c_po;
    rf;
    co;
    rmw_plain =
      pick (function Ast.Rmw_x86 | Ast.Rmw_tcg -> true | Ast.Rmw_arm _ -> false);
    amo =
      pick (function Ast.Rmw_arm { impl = Ast.Amo; _ } -> true | _ -> false);
    lxsx =
      pick (function Ast.Rmw_arm { impl = Ast.Lxsx; _ } -> true | _ -> false);
    data = c.c_data;
    ctrl = c.c_ctrl;
    addr = Rel.empty;
  }

let writes_of events loc =
  List.filter (fun (e : E.t) -> E.is_write e && E.loc e = Some loc) events

(* Init writes precede every non-init write of their location. *)
let init_first_constraints ws =
  List.fold_left
    (fun acc (w : E.t) ->
      if E.is_init w then
        List.fold_left
          (fun acc (w' : E.t) ->
            if E.is_init w' then acc else Rel.add w.id w'.id acc)
          acc ws
      else acc)
    Rel.empty ws

let candidates (p : Ast.prog) =
  List.concat_map
    (fun c ->
      Parallel.Supervise.poll ();
      let events = c.c_events in
      (* rf choices per read *)
      let reads = List.filter E.is_read events in
      let rf_choices =
        List.map
          (fun (rd : E.t) ->
            let loc = Option.get (E.loc rd) in
            let v = Option.get (E.value rd) in
            let srcs =
              List.filter
                (fun (w : E.t) -> E.value w = Some v && w.id <> rd.id)
                (writes_of events loc)
            in
            List.map (fun (w : E.t) -> (w.id, rd.id)) srcs)
          reads
      in
      if List.exists (fun l -> l = []) rf_choices then []
      else
        let rfs = cartesian rf_choices in
        (* co choices per location *)
        let co_choices =
          List.map
            (fun loc ->
              let ws = writes_of events loc in
              let ids = Iset.of_list (List.map (fun (e : E.t) -> e.id) ws) in
              Rel.linear_extensions_memoized ids (init_first_constraints ws))
            (Ast.locations p)
        in
        let cos = cartesian co_choices in
        List.concat_map
          (fun rf_pairs ->
            let rf = Rel.of_list rf_pairs in
            List.map
              (fun co_parts ->
                let co = Rel.union_all co_parts in
                (execution_of_combo c ~rf ~co, c.c_regs))
              cos)
          rfs)
    (combos p)

(* ------------------------------------------------------------------ *)
(* Pruned enumeration                                                  *)

(* The full rf × co product above is what the docs describe, but most of
   it dies on the first two axioms every model shares (Model.common):
   per-location coherence and RMW atomicity.  Both are per-location
   properties — po-loc, rf, co and fr only ever relate same-location
   events, so any violating cycle lives inside one location.  The pruned
   enumerator therefore filters (rf, co) pairs per location first and
   takes the cross-location product over survivors only, which collapses
   the search space from Π(rf_l × co_l) to Π(survivors_l).

   Soundness: a candidate pruned here fails sc-per-loc or atomicity and
   would be rejected by any model whose consistency implies Model.common
   — which every model in lib/axiom does (their [consistent] starts with
   [Model.common x]).  The surviving candidates still go through the
   model's full predicate, so verdicts are identical to the unpruned
   path. *)

(* Per-location surviving (rf, co) pairs, or None if some read of the
   location has no value-compatible source (the whole combo is dead). *)
let per_loc_survivors c loc =
  let events = c.c_events in
  let ws = writes_of events loc in
  let rds =
    List.filter (fun (e : E.t) -> E.is_read e && E.loc e = Some loc) events
  in
  let wids = Iset.of_list (List.map (fun (e : E.t) -> e.id) ws) in
  let mem_ids =
    Iset.union wids (Iset.of_list (List.map (fun (e : E.t) -> e.id) rds))
  in
  let po_ll = Rel.restrict mem_ids c.c_po mem_ids in
  let rf_choices =
    List.map
      (fun (rd : E.t) ->
        let v = Option.get (E.value rd) in
        List.filter_map
          (fun (w : E.t) ->
            if E.value w = Some v && w.id <> rd.id then Some (w.id, rd.id)
            else None)
          ws)
      rds
  in
  if List.exists (fun l -> l = []) rf_choices then None
  else
    let tids = Hashtbl.create 16 in
    List.iter
      (fun (e : E.t) -> Hashtbl.replace tids e.id (e.tid, E.is_init e))
      events;
    (* Execution.internal: same tid and the source event is not an init
       write.  Mirrored here so per-location atomicity agrees with the
       global axiom. *)
    let external_part r =
      Rel.filter
        (fun a b ->
          let ta, ia = Hashtbl.find tids a and tb, _ = Hashtbl.find tids b in
          not (ta = tb && not ia))
        r
    in
    let rmw_l =
      List.fold_left
        (fun acc (r, w, _) -> if Iset.mem r mem_ids then Rel.add r w acc else acc)
        Rel.empty c.c_rmw
    in
    let cos = Rel.linear_extensions_memoized wids (init_first_constraints ws) in
    let survivors =
      List.concat_map
        (fun rf_pairs ->
          let rf = Rel.of_list rf_pairs in
          List.filter_map
            (fun co ->
              let fr = Rel.compose (Rel.inverse rf) co in
              if not (Rel.acyclic (Rel.union_all [ po_ll; rf; co; fr ])) then
                None
              else if
                (not (Rel.is_empty rmw_l))
                && not
                     (Rel.is_empty
                        (Rel.inter rmw_l
                           (Rel.compose (external_part fr) (external_part co))))
              then None
              else Some (rf, co))
            cos)
        (cartesian rf_choices)
    in
    Some survivors

(* Fold [f] over the pruned survivors of [p] — the candidates that pass
   per-location coherence and atomicity, before any model's full
   consistency predicate runs.  The prune only uses [Model.common]
   properties, so the survivor set is model-independent: a batch
   checking one program under several models enumerates here once and
   filters per model (see {!behaviours_many}).  [Supervise.poll] marks
   the cooperative cancellation points: Domains cannot be preempted, so
   a supervised sweep's per-task deadline fires here, between
   candidates, rather than never — an unsupervised run pays one
   domain-local read per candidate. *)
let fold_survivors p f acc =
  let locs = Ast.locations p in
  List.fold_left
    (fun acc c ->
      Parallel.Supervise.poll ();
      let per_loc = List.map (per_loc_survivors c) locs in
      if List.exists (fun s -> s = None || s = Some []) per_loc then acc
      else
        let parts = List.map Option.get per_loc in
        List.fold_left
          (fun acc choice ->
            Parallel.Supervise.poll ();
            let rf = Rel.union_all (List.map fst choice) in
            let co = Rel.union_all (List.map snd choice) in
            let x = execution_of_combo c ~rf ~co in
            f acc x c.c_regs)
          acc (cartesian parts))
    acc (combos p)

(* Fold over the model-consistent executions: survivors filtered by the
   model's full predicate. *)
let fold_consistent (m : Axiom.Model.t) p f acc =
  fold_survivors p
    (fun acc x regs -> if m.Axiom.Model.consistent x then f acc x regs else acc)
    acc

let executions (m : Axiom.Model.t) p =
  List.rev (fold_consistent m p (fun acc x _ -> x :: acc) [])

let consistent_executions (m : Axiom.Model.t) p =
  List.rev
    (fold_consistent m p
       (fun acc x regs -> (x, { mem = X.behaviour x; regs }) :: acc)
       [])

(* Witness-observability probe (lib/report): enumerate over the full
   unpruned candidate product so that every rejected candidate — not
   just the post-prune survivors — reaches [on_reject], where the
   coverage accounting classifies it by violated axiom.  The returned
   behaviours are exactly [behaviours m p] (pruning only discards
   candidates every model rejects); callers pay the unpruned cost only
   when they opt into the probe. *)
let behaviours_probed ~on_reject (m : Axiom.Model.t) p =
  let bs =
    List.filter_map
      (fun (x, regs) ->
        Parallel.Supervise.poll ();
        if m.Axiom.Model.consistent x then Some { mem = X.behaviour x; regs }
        else begin
          on_reject x;
          None
        end)
      (candidates p)
  in
  List.sort_uniq behaviour_compare bs

(* ------------------------------------------------------------------ *)
(* Behaviours cache                                                    *)

(* [behaviours] is the refinement checker's inner loop, and sweeps ask
   for the same (model, program) pair repeatedly: [Check.refines]
   re-enumerates the unchanged source program for every fence-deletion
   variant of the target, and every scheme shares corpus sources.  The
   cache is keyed by the model's name and the full program AST
   (structural equality — the program is its own hash key, so renamed
   variants never collide).

   It is two-level.  Each domain owns a private (DLS) table consulted
   and written lock-free on the hot path; a shared mutex-guarded table
   backs it.  Fresh entries accumulate in the domain's [dirty] list and
   are folded into the shared table at pool batch boundaries
   ([Pool.on_join]) — so under a parallel sweep the shared mutex is
   touched once per miss (read-through) and once per batch (merge), not
   once per lookup.  Two domains may still race to compute the same
   entry; both compute the same value, and the merge is first-write
   wins.  [clear_caches] advances a generation counter that lazily
   invalidates every domain's private table, so a merge can never
   resurrect pre-clear entries. *)
let behaviours_cache : (string * Ast.prog, behaviour list) Hashtbl.t =
  Hashtbl.create 64

let behaviours_mutex = Mutex.create ()
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let cache_gen = Atomic.make 0

type local_cache = {
  mutable gen : int;
  tbl : (string * Ast.prog, behaviour list) Hashtbl.t;
  mutable dirty : ((string * Ast.prog) * behaviour list) list;
}

let local_key : local_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { gen = Atomic.get cache_gen; tbl = Hashtbl.create 64; dirty = [] })

let local () =
  let l = Domain.DLS.get local_key in
  let g = Atomic.get cache_gen in
  if l.gen <> g then begin
    Hashtbl.reset l.tbl;
    l.dirty <- [];
    l.gen <- g
  end;
  l

(* Merge this domain's unpublished entries into the shared table.  The
   generation is re-checked under the lock so a concurrent
   [clear_caches] wins over a straggling merge. *)
let merge_local () =
  let l = local () in
  if l.dirty <> [] then begin
    let entries = l.dirty in
    l.dirty <- [];
    Mutex.protect behaviours_mutex (fun () ->
        if Atomic.get cache_gen = l.gen then
          List.iter
            (fun (k, v) ->
              if not (Hashtbl.mem behaviours_cache k) then
                Hashtbl.replace behaviours_cache k v)
            entries)
  end

let () = Parallel.Pool.on_join merge_local

(* Local first, then read-through to the shared table. *)
let find_cached l key =
  match Hashtbl.find_opt l.tbl key with
  | Some bs -> Some bs
  | None -> (
      match
        Mutex.protect behaviours_mutex (fun () ->
            Hashtbl.find_opt behaviours_cache key)
      with
      | Some bs ->
          Hashtbl.replace l.tbl key bs;
          Some bs
      | None -> None)

let remember l key bs =
  Hashtbl.replace l.tbl key bs;
  l.dirty <- (key, bs) :: l.dirty

let behaviours_uncached (m : Axiom.Model.t) p =
  let bs =
    fold_consistent m p
      (fun acc x regs -> { mem = X.behaviour x; regs } :: acc)
      []
  in
  List.sort_uniq behaviour_compare bs

let behaviours (m : Axiom.Model.t) p =
  let key = (m.Axiom.Model.name, p) in
  let l = local () in
  match find_cached l key with
  | Some bs ->
      Atomic.incr cache_hits;
      bs
  | None ->
      Atomic.incr cache_misses;
      let bs = behaviours_uncached m p in
      remember l key bs;
      bs

(* One pruned enumeration serving several models.  The survivor set is
   model-independent (see {!fold_survivors}), so a batch that needs the
   same program under k models pays one enumeration plus k cheap
   filters instead of k enumerations — the structural win the batch
   refinement planner ([Mapping.Check.check_cells]) is built on.
   Results are exactly [behaviours m p] for each model, including cache
   interaction. *)
let behaviours_many (models : Axiom.Model.t list) p =
  (* Dedup by model name, preserving first-occurrence order. *)
  let seen = Hashtbl.create 8 in
  let models =
    List.filter
      (fun (m : Axiom.Model.t) ->
        if Hashtbl.mem seen m.name then false
        else begin
          Hashtbl.add seen m.name ();
          true
        end)
      models
  in
  let l = local () in
  let missing =
    List.filter
      (fun (m : Axiom.Model.t) ->
        match find_cached l (m.name, p) with
        | Some _ -> false
        | None -> true)
      models
  in
  (match missing with
  | [] -> ()
  | ms ->
      let accs = List.map (fun m -> (m, ref [])) ms in
      fold_survivors p
        (fun () x regs ->
          List.iter
            (fun ((m : Axiom.Model.t), acc) ->
              if m.consistent x then acc := { mem = X.behaviour x; regs } :: !acc)
            accs)
        ();
      List.iter
        (fun ((m : Axiom.Model.t), acc) ->
          Atomic.incr cache_misses;
          remember l (m.name, p) (List.sort_uniq behaviour_compare !acc))
        accs);
  List.map
    (fun (m : Axiom.Model.t) ->
      let key = (m.name, p) in
      match Hashtbl.find_opt l.tbl key with
      | Some bs ->
          if not (List.memq m missing) then Atomic.incr cache_hits;
          (m.name, bs)
      | None -> assert false)
    models

let cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

let clear_caches () =
  Atomic.incr cache_gen;
  Mutex.protect behaviours_mutex (fun () -> Hashtbl.reset behaviours_cache);
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Rel.clear_memo ()

let rec eval_cond (c : Ast.cond) b =
  match c with
  | Ast.True -> true
  | Ast.Reg_is (tid, r, v) -> List.assoc_opt (tid, r) b.regs = Some v
  | Ast.Loc_is (l, v) -> List.assoc_opt l b.mem = Some v
  | Ast.And (a, b') -> eval_cond a b && eval_cond b' b
  | Ast.Or (a, b') -> eval_cond a b || eval_cond b' b
  | Ast.Not a -> not (eval_cond a b)

type verdict = {
  ok : bool;
  total_consistent : int;
  witnesses : behaviour list;
}

let check m (t : Ast.test) =
  let bs = behaviours m t.prog in
  let cond = match t.expect with Ast.Allowed c | Ast.Forbidden c -> c in
  let witnesses = List.filter (eval_cond cond) bs in
  let ok =
    match t.expect with
    | Ast.Allowed _ -> witnesses <> []
    | Ast.Forbidden _ -> witnesses = []
  in
  { ok; total_consistent = List.length bs; witnesses }
