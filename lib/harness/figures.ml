type fig12_row = {
  bench : Parsec.bench;
  qemu : int;
  no_fences : int;
  tcg_ver : int;
  risotto : int;
  native : int;
}

let relative row cycles = float_of_int cycles /. float_of_int row.qemu

(* One task per benchmark × column cell, so a pool can spread the whole
   figure instead of one domain chewing a benchmark's five columns. *)
type fig12_cell = Dbt of Core.Config.t | Native

let fig12_columns =
  [
    Dbt Core.Config.qemu;
    Dbt Core.Config.no_fences;
    Dbt Core.Config.tcg_ver;
    Dbt Core.Config.risotto;
    Native;
  ]

let cell_label = function
  | Dbt config -> config.Core.Config.name
  | Native -> "native"

let run_cell ((b : Parsec.bench), cell) =
  Obs.Trace.with_span ~cat:"figures"
    ~args:(fun () ->
      [
        ("bench", b.Parsec.spec.Kernel.name); ("config", cell_label cell);
      ])
    "cell"
  @@ fun () ->
  match cell with
  | Dbt config ->
      let g, _ = Kernel.run_dbt config b.Parsec.spec in
      Core.Engine.cycles g
  | Native -> (Kernel.run_native b.Parsec.spec).Arm.Machine.cycles

let fig12_rows_of ?pool benches =
  let cells =
    List.concat_map
      (fun b -> List.map (fun c -> (b, c)) fig12_columns)
      benches
  in
  let results = Parallel.Pool.map_list ?pool run_cell cells in
  let rec rows benches results =
    match (benches, results) with
    | [], [] -> []
    | b :: bs, qemu :: no_fences :: tcg_ver :: risotto :: native :: rest ->
        { bench = b; qemu; no_fences; tcg_ver; risotto; native }
        :: rows bs rest
    | _ -> assert false
  in
  rows benches results

let fig12 ?pool () = fig12_rows_of ?pool Parsec.all

type fig12_summary = {
  avg_improvement : float;
  max_improvement : float;
  avg_fence_share : float;
  max_fence_share : float;
}

let summarize_fig12 rows =
  let improvements =
    List.map (fun r -> 1.0 -. relative r r.tcg_ver) rows
  in
  let fence_shares = List.map (fun r -> 1.0 -. relative r r.no_fences) rows in
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let mx l = List.fold_left max neg_infinity l in
  {
    avg_improvement = avg improvements;
    max_improvement = mx improvements;
    avg_fence_share = avg fence_shares;
    max_fence_share = mx fence_shares;
  }

let fig13 ?pool () = Parallel.Pool.map_list ?pool Libbench.run Libbench.openssl
let fig14 ?pool () = Parallel.Pool.map_list ?pool Libbench.run Libbench.libm
let fig15 ?pool () = Parallel.Pool.map_list ?pool Casbench.run Casbench.configs

let pp_fig12 ppf rows =
  Fmt.pf ppf "Figure 12: run time relative to Qemu (lower is better)@.";
  Fmt.pf ppf "%-18s %9s %10s %9s %9s %9s  %s@." "benchmark" "no-fences"
    "tcg-ver" "risotto" "native" "qemu-cyc" "paper-qemu-s";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-18s %8.1f%% %9.1f%% %8.1f%% %8.1f%% %9d  %g@."
        r.bench.Parsec.spec.Kernel.name
        (100. *. relative r r.no_fences)
        (100. *. relative r r.tcg_ver)
        (100. *. relative r r.risotto)
        (100. *. relative r r.native)
        r.qemu r.bench.Parsec.paper_qemu_seconds)
    rows;
  let s = summarize_fig12 rows in
  Fmt.pf ppf
    "summary: tcg-ver improves on qemu by %.1f%% avg / %.1f%% max; fences \
     account for %.1f%% avg / %.1f%% max of qemu run time@."
    (100. *. s.avg_improvement) (100. *. s.max_improvement)
    (100. *. s.avg_fence_share) (100. *. s.max_fence_share)

let pp_libbench ~title ~unit_ops ppf results =
  Fmt.pf ppf "%s@." title;
  Fmt.pf ppf "%-16s %9s %9s %12s %6s@." "benchmark" "risotto" "native"
    unit_ops "agree";
  List.iter
    (fun (r : Libbench.result) ->
      Fmt.pf ppf "%-16s %8.1fx %8.1fx %12.3g %6s@." r.bench.Libbench.label
        (Libbench.speedup_risotto r)
        (Libbench.speedup_native r)
        (Libbench.ops_per_sec ~calls:r.bench.Libbench.calls
           ~cycles:r.qemu_cycles)
        (if r.values_agree then "yes" else "-"))
    results

let pp_fig13 =
  pp_libbench ~title:"Figure 13: OpenSSL / sqlite speed-up vs Qemu"
    ~unit_ops:"qemu-ops/s"

let pp_fig14 =
  pp_libbench ~title:"Figure 14: libm speed-up vs Qemu" ~unit_ops:"qemu-ops/s"

let pp_fig15 ppf results =
  Fmt.pf ppf "Figure 15: CAS throughput (ops/s, higher is better)@.";
  Fmt.pf ppf "%-8s %12s %12s %12s@." "t-v" "qemu" "risotto" "native";
  List.iter
    (fun (r : Casbench.result) ->
      Fmt.pf ppf "%d-%d     %12.3e %12.3e %12.3e@."
        r.config.Casbench.threads r.config.Casbench.vars r.qemu r.risotto
        r.native)
    results

let pp_mapping_tables ppf () =
  Fmt.pf ppf "Figure 1: concurrency primitives (x86 / TCG IR / Arm)@.";
  Fmt.pf ppf "  %-24s %-8s %-6s %s@." "access type" "x86" "TCG" "Arm";
  List.iter
    (fun (a, b, c, d) -> Fmt.pf ppf "  %-24s %-8s %-6s %s@." a b c d)
    Mapping.Schemes.figure1_rows;
  Fmt.pf ppf "Figure 2: Qemu mappings (x86 -> TCG IR -> Arm)@.";
  List.iter
    (fun (a, b, c) -> Fmt.pf ppf "  %-8s -> %-10s -> %s@." a b c)
    Mapping.Schemes.figure2_rows;
  Fmt.pf ppf "Figure 3: intended Arm-Cats direct mapping@.";
  List.iter
    (fun (a, b) -> Fmt.pf ppf "  %-8s -> %s@." a b)
    Mapping.Schemes.figure3_rows;
  Fmt.pf ppf "Figure 7a: verified x86 -> TCG IR@.";
  List.iter
    (fun (a, b) -> Fmt.pf ppf "  %-8s -> %s@." a b)
    Mapping.Schemes.figure7a_rows;
  Fmt.pf ppf "Figure 7b: verified TCG IR -> Arm@.";
  List.iter
    (fun (a, b) -> Fmt.pf ppf "  %-12s -> %s@." a b)
    Mapping.Schemes.figure7b_rows;
  Fmt.pf ppf "Figure 7c: composed x86 -> Arm@.";
  List.iter
    (fun (a, b, c) -> Fmt.pf ppf "  %-8s -> %-10s -> %s@." a b c)
    Mapping.Schemes.figure7c_rows
