(** Regeneration of the paper's evaluation figures (§7) and mapping
    tables (Figures 2, 3, 7).  Each generator returns structured results
    (asserted by the test suite) and has a printer producing the
    rows/series the paper reports. *)

type fig12_row = {
  bench : Parsec.bench;
  qemu : int;  (** model cycles *)
  no_fences : int;
  tcg_ver : int;
  risotto : int;
  native : int;
}

(** Relative run time vs Qemu (1.0 = Qemu), the y-axis of Figure 12. *)
val relative : fig12_row -> int -> float

(** With [?pool], the benchmark × column cells of the figure run as
    parallel tasks; rows come back in the same order either way. *)
val fig12 : ?pool:Parallel.Pool.t -> unit -> fig12_row list

type fig12_summary = {
  avg_improvement : float;  (** tcg-ver vs qemu, fraction *)
  max_improvement : float;
  avg_fence_share : float;  (** 1 - no_fences/qemu *)
  max_fence_share : float;
}

val summarize_fig12 : fig12_row list -> fig12_summary
val fig13 : ?pool:Parallel.Pool.t -> unit -> Libbench.result list
val fig14 : ?pool:Parallel.Pool.t -> unit -> Libbench.result list
val fig15 : ?pool:Parallel.Pool.t -> unit -> Casbench.result list

val pp_fig12 : Format.formatter -> fig12_row list -> unit
val pp_fig13 : Format.formatter -> Libbench.result list -> unit
val pp_fig14 : Format.formatter -> Libbench.result list -> unit
val pp_fig15 : Format.formatter -> Casbench.result list -> unit

(** Mapping tables. *)
val pp_mapping_tables : Format.formatter -> unit -> unit
