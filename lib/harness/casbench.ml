module I = X86.Insn
module R = X86.Reg
module A = Arm.Insn

type config = { threads : int; vars : int }

let configs =
  [
    { threads = 1; vars = 1 };
    { threads = 4; vars = 1 };
    { threads = 4; vars = 2 };
    { threads = 4; vars = 4 };
    { threads = 8; vars = 1 };
    { threads = 8; vars = 4 };
    { threads = 8; vars = 8 };
    { threads = 16; vars = 1 };
    { threads = 16; vars = 8 };
    { threads = 16; vars = 16 };
  ]

type result = { config : config; qemu : float; risotto : float; native : float }

let iters_per_thread = 300
let var_base = 0x40000L
let var_addr i = Int64.add var_base (Int64.of_int (i * 64))

let throughput ~total_ops ~max_cycles =
  float_of_int total_ops /. (float_of_int max_cycles /. Libbench.clock_hz)

(* Run under a DBT config: one engine per experiment; all threads share
   memory and code cache and are scheduled round-robin per block. *)
let run_dbt ?cost config cfg =
  (* One shared image and code cache for all threads; each thread gets
     its variable's address in R14 at spawn time. *)
  let open X86.Asm in
  let prog =
    [
      Label "main";
      Ins (I.Mov_ri (R.R15, Int64.of_int iters_per_thread));
      Label "loop";
      Ins (I.Load (R.RAX, { base = Some R.R14; index = None; disp = 0L }));
      Ins (I.Mov_rr (R.RCX, R.RAX));
      Ins (I.Alu (I.Add, R.RCX, I.I 1L));
      Ins (I.Lock_cmpxchg ({ base = Some R.R14; index = None; disp = 0L }, R.RCX));
      Ins (I.Alu (I.Sub, R.R15, I.I 1L));
      Ins (I.Cmp (R.R15, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]
  in
  let image = Image.Gelf.build ~entry:"main" prog in
  let eng = Core.Engine.create ?cost config image in
  let threads =
    List.init cfg.threads (fun tid ->
        Core.Engine.spawn eng ~tid ~entry:image.Image.Gelf.entry
          ~regs:[ (R.R14, var_addr (tid mod cfg.vars)) ]
          ())
  in
  ignore (Core.Engine.run_concurrent eng threads);
  let max_cycles =
    List.fold_left (fun m g -> max m (Core.Engine.cycles g)) 0 threads
  in
  throughput ~total_ops:(cfg.threads * iters_per_thread) ~max_cycles

(* Native: the same loop as one casal-based iteration per block, run
   round-robin on the raw Arm machine so line ownership migrates. *)
let native_block =
  [|
    (* x14 var addr, x15 counter; one iteration then exit to "pc 0" *)
    A.Ldr (0, 14, 0L);
    A.Alu (A.Add, 2, 0, A.I 1L);
    A.Mov (9, 0);
    A.Cas { acq = true; rel = true; cmp = 9; swap = 2; base = 14 };
    A.Alu (A.Sub, 15, 15, A.I 1L);
    A.Cbnz (15, 7);
    A.Exit_halt;
    A.Goto_tb 0L;
  |]

let run_native ?cost cfg =
  let mem = Memsys.Mem.create () in
  let shared = Arm.Machine.create_shared ?cost mem in
  let threads =
    List.init cfg.threads (fun tid ->
        let t = Arm.Machine.create_thread tid in
        t.Arm.Machine.regs.(14) <- var_addr (tid mod cfg.vars);
        t.Arm.Machine.regs.(15) <- Int64.of_int iters_per_thread;
        t)
  in
  let live = ref (List.map (fun t -> (t, ref false)) threads) in
  while List.exists (fun (_, h) -> not !h) !live do
    List.iter
      (fun (t, halted) ->
        if not !halted then
          match Arm.Machine.exec_block shared t native_block with
          | Arm.Machine.Halted | Arm.Machine.Trapped _ -> halted := true
          | Arm.Machine.Next_tb _ | Arm.Machine.Jump _ -> ())
      !live
  done;
  let max_cycles =
    List.fold_left (fun m t -> max m t.Arm.Machine.cycles) 0 threads
  in
  throughput ~total_ops:(cfg.threads * iters_per_thread) ~max_cycles

let run ?cost cfg =
  {
    config = cfg;
    qemu = run_dbt ?cost Core.Config.qemu cfg;
    risotto = run_dbt ?cost Core.Config.risotto cfg;
    native = run_native ?cost cfg;
  }
