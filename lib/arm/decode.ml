open Insn

exception Bad_encoding of int * string

type cursor = { s : string; mutable pos : int }

let byte c =
  if c.pos >= String.length c.s then raise (Bad_encoding (c.pos, "truncated"));
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i32 c =
  (* sequential lets: `and` bindings have unspecified evaluation order *)
  let b0 = byte c in
  let b1 = byte c in
  let b2 = byte c in
  let b3 = byte c in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let i64 c =
  let r = ref 0L in
  for i = 0 to 7 do
    r := Int64.logor !r (Int64.shift_left (Int64.of_int (byte c)) (8 * i))
  done;
  !r

let str c =
  let n = byte c in
  if c.pos + n > String.length c.s then
    raise (Bad_encoding (c.pos, "truncated string"));
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let bad c what n =
  raise (Bad_encoding (c.pos, Printf.sprintf "bad %s index %d" what n))

let alu_of c = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> And
  | 3 -> Orr
  | 4 -> Eor
  | 5 -> Lsl
  | 6 -> Lsr
  | 7 -> Mul
  | n -> bad c "alu" n

let fp_of c = function
  | 0 -> Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | 4 -> Fsqrt
  | n -> bad c "fp" n

let barrier_of c = function
  | 0 -> Full
  | 1 -> Ld
  | 2 -> St
  | n -> bad c "barrier" n

let cc_of c = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Le
  | 4 -> Gt
  | 5 -> Ge
  | 6 -> Lo
  | 7 -> Ls
  | 8 -> Hi
  | 9 -> Hs
  | n -> bad c "cc" n

let operand c =
  match byte c with
  | 0 -> R (byte c)
  | 1 -> I (i64 c)
  | n -> raise (Bad_encoding (c.pos, Printf.sprintf "bad operand tag %d" n))

let acq_rel c =
  let bits = byte c in
  (bits land 1 = 1, bits land 2 = 2)

let reglist c =
  let n = byte c in
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (byte c :: acc) in
  go 0 []
let ret_reg c = match byte c with 0xFF -> None | r -> Some r

let decode_insn c =
  let pos = c.pos in
  match byte c with
  | 0x01 ->
      let r = byte c in
      Movz (r, i64 c)
  | 0x02 ->
      let a = byte c in
      Mov (a, byte c)
  | op when op >= 0x10 && op < 0x18 ->
      let d = byte c in
      let a = byte c in
      Alu (alu_of c (op - 0x10), d, a, operand c)
  | 0x03 ->
      let d = byte c in
      let base = byte c in
      Ldr (d, base, i64 c)
  | 0x04 ->
      let s = byte c in
      let base = byte c in
      Str (s, base, i64 c)
  | 0x05 ->
      let d = byte c in
      Ldar (d, byte c)
  | 0x06 ->
      let d = byte c in
      Ldapr (d, byte c)
  | 0x07 ->
      let s = byte c in
      Stlr (s, byte c)
  | 0x08 ->
      let d = byte c in
      Ldxr (d, byte c)
  | 0x09 ->
      let d = byte c in
      Ldaxr (d, byte c)
  | 0x0A ->
      let st = byte c in
      let s = byte c in
      Stxr (st, s, byte c)
  | 0x0B ->
      let st = byte c in
      let s = byte c in
      Stlxr (st, s, byte c)
  | 0x0C ->
      let acq, rel = acq_rel c in
      let cmp = byte c in
      let swap = byte c in
      Cas { acq; rel; cmp; swap; base = byte c }
  | 0x0D ->
      let acq, rel = acq_rel c in
      let old = byte c in
      let src = byte c in
      Ldadd { acq; rel; old; src; base = byte c }
  | 0x0E ->
      let acq, rel = acq_rel c in
      let old = byte c in
      let src = byte c in
      Swp { acq; rel; old; src; base = byte c }
  | 0x20 -> Dmb (barrier_of c (byte c))
  | 0x21 ->
      let r = byte c in
      Cmp (r, operand c)
  | 0x30 -> B (i32 c)
  | op when op >= 0x31 && op < 0x3B ->
      let cc = cc_of c (op - 0x31) in
      Bcc (cc, i32 c)
  | 0x3B ->
      let r = byte c in
      Cbz (r, i32 c)
  | 0x3C ->
      let r = byte c in
      Cbnz (r, i32 c)
  | 0x3D ->
      let r = byte c in
      Cset (r, cc_of c (byte c))
  | op when op >= 0x40 && op < 0x45 ->
      let d = byte c in
      let a = byte c in
      Fp (fp_of c (op - 0x40), d, a, byte c)
  | 0x50 ->
      let name = str c in
      let args = reglist c in
      Blr_helper (name, args, ret_reg c)
  | 0x51 ->
      let func = str c in
      let args = reglist c in
      Host_call { func; args; ret = ret_reg c }
  | 0x60 -> Goto_tb (i64 c)
  | 0x61 -> Goto_ptr (byte c)
  | 0x62 -> Exit_halt
  | 0x63 ->
      let kind = str c in
      Trap { kind; context = str c }
  | op -> raise (Bad_encoding (pos, Printf.sprintf "unknown opcode 0x%02x" op))

let decode_block s pos =
  let c = { s; pos } in
  let n = i32 c in
  (* Every instruction is at least one byte: a count beyond the
     remaining input is corruption, not a huge allocation. *)
  if n < 0 || n > String.length s - c.pos then
    raise (Bad_encoding (pos, Printf.sprintf "bad block length %d" n));
  (* Explicit loop: both tuple-component and Array.init evaluation
     orders are unspecified, and decode_insn mutates the cursor. *)
  let code = Array.make n Insn.Exit_halt in
  for i = 0 to n - 1 do
    code.(i) <- decode_insn c
  done;
  (code, c.pos)

let block_of_string s = fst (decode_block s 0)
