type trap =
  | Trap_insn of { kind : string; context : string }
  | Unknown_helper of string
  | Unknown_host of string
  | Runaway
  | Fell_through of int

type exit_state = Next_tb of int64 | Jump of int64 | Halted | Trapped of trap

let pp_trap ppf = function
  | Trap_insn { kind; context } -> Fmt.pf ppf "trap.%s %S" kind context
  | Unknown_helper name -> Fmt.pf ppf "unknown helper %s" name
  | Unknown_host func -> Fmt.pf ppf "unknown host function %s" func
  | Runaway -> Fmt.string ppf "runaway block"
  | Fell_through i -> Fmt.pf ppf "fell through at index %d" i

type thread = {
  tid : int;
  regs : int64 array;
  mutable cmp : int64 * int64;
  mutable exclusive : int64 option;
  mutable cycles : int;
  mutable insns : int;
  mutable fences : int;
  mutable helper_calls : int;
  mutable host_calls : int;
  mutable last_dmb : bool;
  mutable halted : bool;
  mutable exit_code : int64;
  output : Buffer.t;
}

type shared = {
  s_mem : Memsys.Mem.t;
  s_cost : Cost.t;
  helpers : (string, helper) Hashtbl.t;
}

and helper = shared -> thread -> int64 list -> int64

let create_shared ?(cost = Cost.default) mem =
  { s_mem = mem; s_cost = cost; helpers = Hashtbl.create 16 }

let mem s = s.s_mem
let cost s = s.s_cost
let register_helper s name h = Hashtbl.replace s.helpers name h
let has_helper s name = Hashtbl.mem s.helpers name
let find_helper s name = Hashtbl.find_opt s.helpers name

let create_thread tid =
  {
    tid;
    regs = Array.make 32 0L;
    cmp = (0L, 0L);
    exclusive = None;
    cycles = 0;
    insns = 0;
    fences = 0;
    helper_calls = 0;
    host_calls = 0;
    last_dmb = false;
    halted = false;
    exit_code = 0L;
    output = Buffer.create 16;
  }

let charge t c = t.cycles <- t.cycles + c

(* Contention model: an atomic that must steal the line pays one
   transfer per other sharer of the line (queueing on the coherence
   interconnect grows with the number of contenders). *)
let atomic_line s t addr =
  if Memsys.Mem.acquire_line s.s_mem addr ~tid:t.tid then
    let others = max 1 (Memsys.Mem.sharers s.s_mem addr - 1) in
    charge t (s.s_cost.Cost.line_transfer * others)

let eval_cc (cc : Insn.cc) (a, b) =
  match cc with
  | Insn.Eq -> Int64.equal a b
  | Insn.Ne -> not (Int64.equal a b)
  | Insn.Lt -> Int64.compare a b < 0
  | Insn.Le -> Int64.compare a b <= 0
  | Insn.Gt -> Int64.compare a b > 0
  | Insn.Ge -> Int64.compare a b >= 0
  | Insn.Lo -> Int64.unsigned_compare a b < 0
  | Insn.Ls -> Int64.unsigned_compare a b <= 0
  | Insn.Hi -> Int64.unsigned_compare a b > 0
  | Insn.Hs -> Int64.unsigned_compare a b >= 0

let alu_eval (op : Insn.alu) a b =
  match op with
  | Insn.Add -> Int64.add a b
  | Insn.Sub -> Int64.sub a b
  | Insn.And -> Int64.logand a b
  | Insn.Orr -> Int64.logor a b
  | Insn.Eor -> Int64.logxor a b
  | Insn.Lsl -> Int64.shift_left a (Int64.to_int b land 63)
  | Insn.Lsr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Insn.Mul -> Int64.mul a b

let fp_eval (op : Insn.fpop) a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  Int64.bits_of_float
    (match op with
    | Insn.Fadd -> fa +. fb
    | Insn.Fsub -> fa -. fb
    | Insn.Fmul -> fa *. fb
    | Insn.Fdiv -> fa /. fb
    | Insn.Fsqrt -> sqrt fb)

let exec_block s t (code : Insn.t array) =
  let c = s.s_cost in
  let get r = if r = Insn.xzr then 0L else t.regs.(r) in
  let set r v = if r <> Insn.xzr then t.regs.(r) <- v in
  let operand = function Insn.R r -> get r | Insn.I i -> i in
  let fuel = ref 10_000_000 in
  let rec go i =
    decr fuel;
    if !fuel <= 0 then Trapped Runaway
    else if i >= Array.length code then Trapped (Fell_through i)
    else exec i
  and exec i =
    let insn = code.(i) in
    t.insns <- t.insns + 1;
    let was_dmb = t.last_dmb in
    t.last_dmb <- (match insn with Insn.Dmb _ -> true | _ -> false);
    match insn with
    | Insn.Movz (r, v) ->
        charge t c.base;
        set r v;
        go (i + 1)
    | Insn.Mov (a, b) ->
        charge t c.base;
        set a (get b);
        go (i + 1)
    | Insn.Alu (op, d, a, b) ->
        charge t (match op with Insn.Mul -> c.mul | _ -> c.base);
        set d (alu_eval op (get a) (operand b));
        go (i + 1)
    | Insn.Ldr (d, b, off) ->
        charge t c.ldr;
        set d (Memsys.Mem.load s.s_mem (Int64.add (get b) off));
        go (i + 1)
    | Insn.Str (src, b, off) ->
        charge t c.str;
        Memsys.Mem.store s.s_mem (Int64.add (get b) off) (get src);
        go (i + 1)
    | Insn.Ldar (d, b) | Insn.Ldapr (d, b) ->
        charge t (c.ldr + c.acq_rel_extra);
        set d (Memsys.Mem.load s.s_mem (get b));
        go (i + 1)
    | Insn.Stlr (src, b) ->
        charge t (c.str + c.acq_rel_extra);
        Memsys.Mem.store s.s_mem (get b) (get src);
        go (i + 1)
    | Insn.Ldxr (d, b) | Insn.Ldaxr (d, b) ->
        charge t c.excl;
        (match insn with
        | Insn.Ldaxr _ -> charge t c.acq_rel_extra
        | _ -> ());
        let addr = get b in
        t.exclusive <- Some addr;
        set d (Memsys.Mem.load s.s_mem addr);
        go (i + 1)
    | Insn.Stxr (st, src, b) | Insn.Stlxr (st, src, b) ->
        charge t c.excl;
        (match insn with
        | Insn.Stlxr _ -> charge t c.acq_rel_extra
        | _ -> ());
        let addr = get b in
        (match t.exclusive with
        | Some a when Int64.equal a addr ->
            atomic_line s t addr;
            Memsys.Mem.store s.s_mem addr (get src);
            set st 0L
        | _ -> set st 1L);
        t.exclusive <- None;
        go (i + 1)
    | Insn.Cas { cmp; swap; base; acq; rel } ->
        charge t c.cas;
        if acq && rel then () (* casal cost already in c.cas *);
        let addr = get base in
        atomic_line s t addr;
        let old = Memsys.Mem.load s.s_mem addr in
        if Int64.equal old (get cmp) then
          Memsys.Mem.store s.s_mem addr (get swap);
        set cmp old;
        go (i + 1)
    | Insn.Ldadd { old; src; base; _ } ->
        charge t c.cas;
        let addr = get base in
        atomic_line s t addr;
        let cur = Memsys.Mem.load s.s_mem addr in
        Memsys.Mem.store s.s_mem addr (Int64.add cur (get src));
        set old cur;
        go (i + 1)
    | Insn.Swp { old; src; base; _ } ->
        charge t c.cas;
        let addr = get base in
        atomic_line s t addr;
        let cur = Memsys.Mem.load s.s_mem addr in
        Memsys.Mem.store s.s_mem addr (get src);
        set old cur;
        go (i + 1)
    | Insn.Dmb b ->
        t.fences <- t.fences + 1;
        charge t
          (if was_dmb then c.dmb_chained
           else
             match b with
             | Insn.Full -> c.dmb_full
             | Insn.Ld -> c.dmb_ld
             | Insn.St -> c.dmb_st);
        go (i + 1)
    | Insn.Cmp (r, o) ->
        charge t c.base;
        t.cmp <- (get r, operand o);
        go (i + 1)
    | Insn.B tgt ->
        charge t c.branch;
        go tgt
    | Insn.Bcc (cc, tgt) ->
        charge t c.branch;
        if eval_cc cc t.cmp then go tgt else go (i + 1)
    | Insn.Cbz (r, tgt) ->
        charge t c.branch;
        if Int64.equal (get r) 0L then go tgt else go (i + 1)
    | Insn.Cbnz (r, tgt) ->
        charge t c.branch;
        if not (Int64.equal (get r) 0L) then go tgt else go (i + 1)
    | Insn.Cset (r, cc) ->
        charge t c.base;
        set r (if eval_cc cc t.cmp then 1L else 0L);
        go (i + 1)
    | Insn.Fp (op, d, a, b) ->
        charge t c.fp;
        set d (fp_eval op (get a) (get b));
        go (i + 1)
    | Insn.Blr_helper (name, args, ret) ->
        charge t c.helper_call;
        t.helper_calls <- t.helper_calls + 1;
        (match Hashtbl.find_opt s.helpers name with
        | None -> Trapped (Unknown_helper name)
        | Some h ->
            let v = h s t (List.map get args) in
            (match ret with Some r -> set r v | None -> ());
            if t.halted then Halted else go (i + 1))
    | Insn.Host_call { func; args; ret } ->
        charge t (c.host_call + (c.marshal_per_arg * List.length args));
        t.host_calls <- t.host_calls + 1;
        (match Hashtbl.find_opt s.helpers func with
        | None -> Trapped (Unknown_host func)
        | Some h ->
            let v = h s t (List.map get args) in
            (match ret with Some r -> set r v | None -> ());
            if t.halted then Halted else go (i + 1))
    | Insn.Goto_tb pc ->
        charge t c.branch;
        Next_tb pc
    | Insn.Goto_ptr r ->
        charge t c.branch;
        Jump (get r)
    | Insn.Exit_halt -> Halted
    | Insn.Trap { kind; context } -> Trapped (Trap_insn { kind; context })
  in
  go 0
