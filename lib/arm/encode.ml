open Insn

let put_byte b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_i32 b v =
  for i = 0 to 3 do
    put_byte b ((v lsr (8 * i)) land 0xFF)
  done

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    put_byte b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let put_str b s =
  put_byte b (String.length s);
  Buffer.add_string b s

let alu_index = function
  | Add -> 0
  | Sub -> 1
  | And -> 2
  | Orr -> 3
  | Eor -> 4
  | Lsl -> 5
  | Lsr -> 6
  | Mul -> 7

let fp_index = function Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3 | Fsqrt -> 4
let barrier_index = function Full -> 0 | Ld -> 1 | St -> 2

let cc_index = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5
  | Lo -> 6
  | Ls -> 7
  | Hi -> 8
  | Hs -> 9

let put_operand b = function
  | R r ->
      put_byte b 0;
      put_byte b r
  | I i ->
      put_byte b 1;
      put_i64 b i

let acq_rel_bits ~acq ~rel = (if acq then 1 else 0) lor if rel then 2 else 0

let put_reglist b rs =
  put_byte b (List.length rs);
  List.iter (put_byte b) rs

let put_ret b = function
  | Some r -> put_byte b r
  | None -> put_byte b 0xFF

let encode_insn b = function
  | Movz (r, v) ->
      put_byte b 0x01;
      put_byte b r;
      put_i64 b v
  | Mov (a, c) ->
      put_byte b 0x02;
      put_byte b a;
      put_byte b c
  | Alu (op, d, a, o) ->
      put_byte b (0x10 + alu_index op);
      put_byte b d;
      put_byte b a;
      put_operand b o
  | Ldr (d, base, off) ->
      put_byte b 0x03;
      put_byte b d;
      put_byte b base;
      put_i64 b off
  | Str (s, base, off) ->
      put_byte b 0x04;
      put_byte b s;
      put_byte b base;
      put_i64 b off
  | Ldar (d, base) ->
      put_byte b 0x05;
      put_byte b d;
      put_byte b base
  | Ldapr (d, base) ->
      put_byte b 0x06;
      put_byte b d;
      put_byte b base
  | Stlr (s, base) ->
      put_byte b 0x07;
      put_byte b s;
      put_byte b base
  | Ldxr (d, base) ->
      put_byte b 0x08;
      put_byte b d;
      put_byte b base
  | Ldaxr (d, base) ->
      put_byte b 0x09;
      put_byte b d;
      put_byte b base
  | Stxr (st, s, base) ->
      put_byte b 0x0A;
      put_byte b st;
      put_byte b s;
      put_byte b base
  | Stlxr (st, s, base) ->
      put_byte b 0x0B;
      put_byte b st;
      put_byte b s;
      put_byte b base
  | Cas { acq; rel; cmp; swap; base } ->
      put_byte b 0x0C;
      put_byte b (acq_rel_bits ~acq ~rel);
      put_byte b cmp;
      put_byte b swap;
      put_byte b base
  | Ldadd { acq; rel; old; src; base } ->
      put_byte b 0x0D;
      put_byte b (acq_rel_bits ~acq ~rel);
      put_byte b old;
      put_byte b src;
      put_byte b base
  | Swp { acq; rel; old; src; base } ->
      put_byte b 0x0E;
      put_byte b (acq_rel_bits ~acq ~rel);
      put_byte b old;
      put_byte b src;
      put_byte b base
  | Dmb bar ->
      put_byte b 0x20;
      put_byte b (barrier_index bar)
  | Cmp (r, o) ->
      put_byte b 0x21;
      put_byte b r;
      put_operand b o
  | B t ->
      put_byte b 0x30;
      put_i32 b t
  | Bcc (cc, t) ->
      put_byte b (0x31 + cc_index cc);
      put_i32 b t
  | Cbz (r, t) ->
      put_byte b 0x3B;
      put_byte b r;
      put_i32 b t
  | Cbnz (r, t) ->
      put_byte b 0x3C;
      put_byte b r;
      put_i32 b t
  | Cset (r, cc) ->
      put_byte b 0x3D;
      put_byte b r;
      put_byte b (cc_index cc)
  | Fp (op, d, a, c) ->
      put_byte b (0x40 + fp_index op);
      put_byte b d;
      put_byte b a;
      put_byte b c
  | Blr_helper (name, args, ret) ->
      put_byte b 0x50;
      put_str b name;
      put_reglist b args;
      put_ret b ret
  | Host_call { func; args; ret } ->
      put_byte b 0x51;
      put_str b func;
      put_reglist b args;
      put_ret b ret
  | Goto_tb pc ->
      put_byte b 0x60;
      put_i64 b pc
  | Goto_ptr r ->
      put_byte b 0x61;
      put_byte b r
  | Exit_halt -> put_byte b 0x62
  | Trap { kind; context } ->
      put_byte b 0x63;
      put_str b kind;
      put_str b context

let encode_block b code =
  put_i32 b (Array.length code);
  Array.iter (encode_insn b) code

let block_to_string code =
  let b = Buffer.create 256 in
  encode_block b code;
  Buffer.contents b
