(** The Arm host machine: executes translated code blocks, charging
    model cycles per instruction ({!Cost}), tracking per-thread
    statistics, the exclusive monitor for LDXR/STXR, and cache-line
    ownership for the CAS contention model (§7.4). *)

(** Why a block's execution faulted rather than exiting normally.
    [Trap_insn] is a deliberately planted {!Insn.Trap} (undecodable
    guest code, unresolvable link stub); the others are runtime
    faults the machine itself detects.  The machine never raises for
    guest-caused problems — it returns [Trapped] so the engine can
    fault one thread without tearing down the run. *)
type trap =
  | Trap_insn of { kind : string; context : string }
  | Unknown_helper of string
  | Unknown_host of string
  | Runaway  (** block executed too many host instructions *)
  | Fell_through of int  (** control ran past the end of the block *)

type exit_state = Next_tb of int64 | Jump of int64 | Halted | Trapped of trap

val pp_trap : Format.formatter -> trap -> unit

type shared
(** State shared by all guest threads: memory, cost model, helper
    registry. *)

type thread = {
  tid : int;
  regs : int64 array;  (** 32 registers; reads of 31 (XZR) return 0 *)
  mutable cmp : int64 * int64;  (** lazy NZCV: last comparison *)
  mutable exclusive : int64 option;  (** exclusive monitor address *)
  mutable cycles : int;
  mutable insns : int;
  mutable fences : int;
  mutable helper_calls : int;
  mutable host_calls : int;
  mutable last_dmb : bool;
  mutable halted : bool;
  mutable exit_code : int64;
  output : Buffer.t;
}

(** A helper receives the shared state, the calling thread and its
    arguments; it may charge extra cycles via {!charge}. *)
type helper = shared -> thread -> int64 list -> int64

val create_shared : ?cost:Cost.t -> Memsys.Mem.t -> shared
val mem : shared -> Memsys.Mem.t
val cost : shared -> Cost.t
val register_helper : shared -> string -> helper -> unit
val has_helper : shared -> string -> bool

(** Look up a registered helper (used by the engine's interpreter
    fallback to dispatch helper calls outside [exec_block]). *)
val find_helper : shared -> string -> helper option
val create_thread : int -> thread

(** Charge extra cycles to a thread (used by helpers). *)
val charge : thread -> int -> unit

(** Perform the cache-line ownership step of an atomic: acquires the
    line for the thread and charges the transfer cost if it was owned
    elsewhere. *)
val atomic_line : shared -> thread -> int64 -> unit

(** Execute a code block until it reaches an exit instruction. *)
val exec_block : shared -> thread -> Insn.t array -> exit_state
