(** The AArch64 host instruction subset emitted by the DBT backend.

    Registers are numbered 0–31 (31 is XZR).  Branch targets are
    instruction indices within the enclosing code block (the backend
    resolves TCG labels when emitting).  Two pseudo-instructions model
    control transfers whose mechanics are outside the subset:
    [Blr_helper] (a BLR into a Qemu C helper and back) and [Host_call]
    (the dynamic host linker's marshaled call into a native shared
    library, §6.2). *)

type reg = int

val xzr : reg

type alu = Add | Sub | And | Orr | Eor | Lsl | Lsr | Mul
type fpop = Fadd | Fsub | Fmul | Fdiv | Fsqrt
type barrier = Full | Ld | St
type operand = R of reg | I of int64
type cc = Eq | Ne | Lt | Le | Gt | Ge | Lo | Ls | Hi | Hs

type t =
  | Movz of reg * int64
  | Mov of reg * reg
  | Alu of alu * reg * reg * operand
  | Ldr of reg * reg * int64  (** dst ← [base + off] *)
  | Str of reg * reg * int64  (** [base + off] ← src *)
  | Ldar of reg * reg  (** load-acquire *)
  | Ldapr of reg * reg  (** load-acquirePC (the Q set) *)
  | Stlr of reg * reg  (** store-release: [base] ← src *)
  | Ldxr of reg * reg
  | Ldaxr of reg * reg
  | Stxr of reg * reg * reg  (** status, src, base; status=0 on success *)
  | Stlxr of reg * reg * reg
  | Cas of { acq : bool; rel : bool; cmp : reg; swap : reg; base : reg }
      (** CAS family; [casal] when both [acq] and [rel]; [cmp] receives
          the old value *)
  | Ldadd of { acq : bool; rel : bool; old : reg; src : reg; base : reg }
      (** LSE atomic add ([ldaddal] when acq+rel) *)
  | Swp of { acq : bool; rel : bool; old : reg; src : reg; base : reg }
      (** LSE atomic swap ([swpal] when acq+rel) *)
  | Dmb of barrier
  | Cmp of reg * operand
  | B of int
  | Bcc of cc * int
  | Cbz of reg * int
  | Cbnz of reg * int
  | Cset of reg * cc  (** 1 if the last comparison satisfies cc, else 0 *)
  | Fp of fpop * reg * reg * reg  (** native scalar double *)
  | Blr_helper of string * reg list * reg option
  | Host_call of { func : string; args : reg list; ret : reg option }
  | Goto_tb of int64  (** exit: chain to the block at a guest pc *)
  | Goto_ptr of reg  (** exit: computed guest target *)
  | Exit_halt
  | Trap of { kind : string; context : string }
      (** exit: fault the executing guest thread (undecodable guest
          code, unresolvable link stub).  [kind] is a fault-kind tag
          (see [Core.Fault.of_tag]); [context] is human-readable. *)

val is_exit : t -> bool
val pp : Format.formatter -> t -> unit
