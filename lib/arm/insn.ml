type reg = int

let xzr = 31

type alu = Add | Sub | And | Orr | Eor | Lsl | Lsr | Mul
type fpop = Fadd | Fsub | Fmul | Fdiv | Fsqrt
type barrier = Full | Ld | St
type operand = R of reg | I of int64
type cc = Eq | Ne | Lt | Le | Gt | Ge | Lo | Ls | Hi | Hs

type t =
  | Movz of reg * int64
  | Mov of reg * reg
  | Alu of alu * reg * reg * operand
  | Ldr of reg * reg * int64
  | Str of reg * reg * int64
  | Ldar of reg * reg
  | Ldapr of reg * reg
  | Stlr of reg * reg
  | Ldxr of reg * reg
  | Ldaxr of reg * reg
  | Stxr of reg * reg * reg
  | Stlxr of reg * reg * reg
  | Cas of { acq : bool; rel : bool; cmp : reg; swap : reg; base : reg }
  | Ldadd of { acq : bool; rel : bool; old : reg; src : reg; base : reg }
  | Swp of { acq : bool; rel : bool; old : reg; src : reg; base : reg }
  | Dmb of barrier
  | Cmp of reg * operand
  | B of int
  | Bcc of cc * int
  | Cbz of reg * int
  | Cbnz of reg * int
  | Cset of reg * cc
  | Fp of fpop * reg * reg * reg
  | Blr_helper of string * reg list * reg option
  | Host_call of { func : string; args : reg list; ret : reg option }
  | Goto_tb of int64
  | Goto_ptr of reg
  | Exit_halt
  | Trap of { kind : string; context : string }

let is_exit = function
  | Goto_tb _ | Goto_ptr _ | Exit_halt | Trap _ -> true
  | _ -> false

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Orr -> "orr"
  | Eor -> "eor"
  | Lsl -> "lsl"
  | Lsr -> "lsr"
  | Mul -> "mul"

let fp_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt"

let cc_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Lo -> "lo"
  | Ls -> "ls"
  | Hi -> "hi"
  | Hs -> "hs"

let barrier_name = function Full -> "ish" | Ld -> "ishld" | St -> "ishst"

let pp_reg ppf r = if r = xzr then Fmt.string ppf "xzr" else Fmt.pf ppf "x%d" r

let pp_operand ppf = function
  | R r -> pp_reg ppf r
  | I i -> Fmt.pf ppf "#%Ld" i

let pp ppf = function
  | Movz (r, i) -> Fmt.pf ppf "mov %a, #%Ld" pp_reg r i
  | Mov (a, b) -> Fmt.pf ppf "mov %a, %a" pp_reg a pp_reg b
  | Alu (op, d, a, b) ->
      Fmt.pf ppf "%s %a, %a, %a" (alu_name op) pp_reg d pp_reg a pp_operand b
  | Ldr (d, b, off) -> Fmt.pf ppf "ldr %a, [%a, #%Ld]" pp_reg d pp_reg b off
  | Str (s, b, off) -> Fmt.pf ppf "str %a, [%a, #%Ld]" pp_reg s pp_reg b off
  | Ldar (d, b) -> Fmt.pf ppf "ldar %a, [%a]" pp_reg d pp_reg b
  | Ldapr (d, b) -> Fmt.pf ppf "ldapr %a, [%a]" pp_reg d pp_reg b
  | Stlr (s, b) -> Fmt.pf ppf "stlr %a, [%a]" pp_reg s pp_reg b
  | Ldxr (d, b) -> Fmt.pf ppf "ldxr %a, [%a]" pp_reg d pp_reg b
  | Ldaxr (d, b) -> Fmt.pf ppf "ldaxr %a, [%a]" pp_reg d pp_reg b
  | Stxr (st, s, b) ->
      Fmt.pf ppf "stxr %a, %a, [%a]" pp_reg st pp_reg s pp_reg b
  | Stlxr (st, s, b) ->
      Fmt.pf ppf "stlxr %a, %a, [%a]" pp_reg st pp_reg s pp_reg b
  | Cas { acq; rel; cmp; swap; base } ->
      Fmt.pf ppf "cas%s%s %a, %a, [%a]"
        (if acq then "a" else "")
        (if rel then "l" else "")
        pp_reg cmp pp_reg swap pp_reg base
  | Ldadd { acq; rel; old; src; base } ->
      Fmt.pf ppf "ldadd%s%s %a, %a, [%a]"
        (if acq then "a" else "")
        (if rel then "l" else "")
        pp_reg src pp_reg old pp_reg base
  | Swp { acq; rel; old; src; base } ->
      Fmt.pf ppf "swp%s%s %a, %a, [%a]"
        (if acq then "a" else "")
        (if rel then "l" else "")
        pp_reg src pp_reg old pp_reg base
  | Dmb b -> Fmt.pf ppf "dmb %s" (barrier_name b)
  | Cmp (r, o) -> Fmt.pf ppf "cmp %a, %a" pp_reg r pp_operand o
  | B t -> Fmt.pf ppf "b @%d" t
  | Bcc (cc, t) -> Fmt.pf ppf "b.%s @%d" (cc_name cc) t
  | Cbz (r, t) -> Fmt.pf ppf "cbz %a, @%d" pp_reg r t
  | Cbnz (r, t) -> Fmt.pf ppf "cbnz %a, @%d" pp_reg r t
  | Cset (r, cc) -> Fmt.pf ppf "cset %a, %s" pp_reg r (cc_name cc)
  | Fp (op, d, a, b) ->
      Fmt.pf ppf "%s %a, %a, %a" (fp_name op) pp_reg d pp_reg a pp_reg b
  | Blr_helper (f, args, ret) ->
      Fmt.pf ppf "blr <%s>(%a)%a" f (Fmt.list ~sep:Fmt.comma pp_reg) args
        (Fmt.option (fun ppf r -> Fmt.pf ppf " -> %a" pp_reg r))
        ret
  | Host_call { func; args; ret } ->
      Fmt.pf ppf "host <%s>(%a)%a" func
        (Fmt.list ~sep:Fmt.comma pp_reg)
        args
        (Fmt.option (fun ppf r -> Fmt.pf ppf " -> %a" pp_reg r))
        ret
  | Goto_tb pc -> Fmt.pf ppf "goto_tb 0x%Lx" pc
  | Goto_ptr r -> Fmt.pf ppf "goto_ptr %a" pp_reg r
  | Exit_halt -> Fmt.string ppf "exit_halt"
  | Trap { kind; context } -> Fmt.pf ppf "trap.%s %S" kind context
