(** Always-on flight recorder: a fixed-size, per-thread binary ring of
    engine lifecycle events, cheap enough to leave running in
    production and read back only when something goes wrong.

    Unlike {!Trace} (opt-in, unbounded-ish, Chrome-export) and
    {!Metrics} (aggregates only), the flight ring keeps the last ~256
    *individual* events per guest thread with their program counters,
    so a trap postmortem can say what the thread was doing just before
    it died.  Each event is three unboxed array stores and an increment
    — no allocation, no locks; the single writer is the owning thread,
    and readers only look after execution stops.

    Recording is globally on by default.  {!disable} exists for the
    differential parity test and for measuring recorder overhead. *)

type kind =
  | Block_enter  (** dispatched a block; [arg] = tier (0 interp, 1 native) *)
  | Tier_queued  (** compile requested; [arg] = generation *)
  | Tier_published  (** install published; [arg] = generation *)
  | Tier_degraded  (** install failed, block degraded; [arg] = generation *)
  | Tier_deopt  (** deoptimised back to Cold; [arg] = side-exit count *)
  | Install_drop  (** stale install discarded; [arg] = generation *)
  | Superblock  (** superblock formed at this head; [arg] = path length *)
  | Trap  (** thread faulted; [arg] = 0 *)
  | Watchdog  (** watchdog fired ([Exhausted]); [arg] = steps *)
  | Fence_pass  (** block translated; [arg] = fences kept in the block *)

val kind_name : kind -> string

type event = { seq : int; kind : kind; pc : int64; arg : int }

type t

(** Global recording switch — on by default. *)
val enable : unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [create ?capacity ()] makes a ring holding the last [capacity]
    events (rounded up to a power of two; default 256). *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Total events ever recorded (not just those still in the ring). *)
val recorded : t -> int

(** [record t kind pc arg] appends an event (no-op while disabled). *)
val record : t -> kind -> int64 -> int -> unit

val reset : t -> unit

(** Events still in the ring, oldest first. *)
val events : t -> event list

(** The last [n] events (default: all retained), oldest first. *)
val last : ?n:int -> t -> event list

val pp_event : Format.formatter -> event -> unit
