(** Metrics registry: named atomic-free counters, gauges and log2-bucket
    histograms, sharded per Domain and merged on {!snapshot}.

    Counters and histograms write to a domain-local shard (no locks, no
    atomics on the hot path); {!snapshot} sums every shard, so under a
    Domain pool the merged totals equal what a sequential run would
    have counted ([test/test_obs.ml] pins this down).  Gauges are
    process-global last-writer-wins cells.

    The registry is process-global and off by default: {!add},
    {!observe} and {!set} are a single atomic load and a branch while
    disabled, so instrumented hot paths pay (almost) nothing.
    Registration ({!counter} / {!gauge} / {!histogram}) is independent
    of the enabled flag and idempotent by name; register metrics before
    hammering them from many domains (registration resizes shard
    arrays under the registry lock). *)

type counter
type gauge
type histogram

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Register (or look up) a metric by name. *)

val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val add : counter -> int -> unit
val incr : counter -> unit
val set : gauge -> int -> unit

(** Record one sample into the histogram's log2 bucket (see
    {!bucket_of}). *)
val observe : histogram -> int -> unit

(** Number of histogram buckets (64). *)
val buckets : int

(** [bucket_of v] is [0] for [v <= 0] and [min 63 (1 + floor(log2 v))]
    otherwise: bucket [k >= 1] holds values in [[2^(k-1), 2^k - 1]]. *)
val bucket_of : int -> int

type hist_snap = { count : int; sum : int; counts : int array }

type snapshot = {
  counters : (string * int) list;  (** name-sorted *)
  gauges : (string * int) list;  (** name-sorted *)
  histograms : (string * hist_snap) list;  (** name-sorted *)
}

(** Merge every shard into one consistent view.  Call after the domains
    writing the metrics have quiesced (e.g. after a pool [map]
    returns). *)
val snapshot : unit -> snapshot

(** Zero every counter, gauge and histogram (registrations are kept). *)
val reset : unit -> unit

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_snap option

(** Counters whose name starts with [prefix], with the prefix stripped,
    in name order — how namespaced counter families (e.g. the
    axiom-coverage [axiom.reject.*] counters) are read back out. *)
val counters_with_prefix : snapshot -> string -> (string * int) list

(** Human-readable dump: counters, gauges, then histograms with count,
    sum, mean and the non-empty buckets. *)
val pp : Format.formatter -> snapshot -> unit

(** Snapshot and print every registered metric (counters, gauges,
    histograms — the [tier.*] and [fence.*] families included) to
    [ppf] (default [std_formatter]): the single dump path shared by the
    CLI tools' [--metrics] flags. *)
val dump : ?ppf:Format.formatter -> unit -> unit
