type kind =
  | Block_enter
  | Tier_queued
  | Tier_published
  | Tier_degraded
  | Tier_deopt
  | Install_drop
  | Superblock
  | Trap
  | Watchdog
  | Fence_pass

let kind_code = function
  | Block_enter -> 0
  | Tier_queued -> 1
  | Tier_published -> 2
  | Tier_degraded -> 3
  | Tier_deopt -> 4
  | Install_drop -> 5
  | Superblock -> 6
  | Trap -> 7
  | Watchdog -> 8
  | Fence_pass -> 9

let kind_of_code = function
  | 0 -> Block_enter
  | 1 -> Tier_queued
  | 2 -> Tier_published
  | 3 -> Tier_degraded
  | 4 -> Tier_deopt
  | 5 -> Install_drop
  | 6 -> Superblock
  | 7 -> Trap
  | 8 -> Watchdog
  | _ -> Fence_pass

let kind_name = function
  | Block_enter -> "block-enter"
  | Tier_queued -> "tier-queued"
  | Tier_published -> "tier-published"
  | Tier_degraded -> "tier-degraded"
  | Tier_deopt -> "tier-deopt"
  | Install_drop -> "install-drop"
  | Superblock -> "superblock"
  | Trap -> "trap"
  | Watchdog -> "watchdog"
  | Fence_pass -> "fence-pass"

type event = { seq : int; kind : kind; pc : int64; arg : int }

(* Fixed-size single-writer ring: three parallel unboxed arrays indexed
   by [seq land mask].  The writer is the owning guest thread (or the
   engine, for the engine-wide ring); readers only run at postmortem
   time after the writer has stopped, so no synchronisation beyond the
   global on/off flag is needed on the record path. *)
type t = {
  mask : int;
  kinds : int array;  (* kind_code *)
  pcs : int64 array;
  args : int array;
  mutable seq : int;  (* total events ever recorded *)
}

let default_capacity = 256

(* Always-on by default: the recorder is the black box the postmortem
   reads, so it must be running before anything goes wrong.  The flag
   exists for the differential parity test and overhead measurement. *)
let on = Atomic.make true

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let create ?(capacity = default_capacity) () =
  let cap =
    let rec up n = if n >= capacity then n else up (n * 2) in
    up 16
  in
  {
    mask = cap - 1;
    kinds = Array.make cap 0;
    pcs = Array.make cap 0L;
    args = Array.make cap 0;
    seq = 0;
  }

let capacity t = t.mask + 1
let recorded t = t.seq

let record t kind pc arg =
  if Atomic.get on then begin
    let i = t.seq land t.mask in
    t.kinds.(i) <- kind_code kind;
    t.pcs.(i) <- pc;
    t.args.(i) <- arg;
    t.seq <- t.seq + 1
  end

let reset t = t.seq <- 0

let last ?n t =
  let cap = t.mask + 1 in
  let avail = min t.seq cap in
  let n = match n with Some n -> min n avail | None -> avail in
  let rec go i acc =
    if i >= n then acc
    else
      let seq = t.seq - 1 - i in
      let j = seq land t.mask in
      go (i + 1)
        ({ seq; kind = kind_of_code t.kinds.(j); pc = t.pcs.(j); arg = t.args.(j) }
        :: acc)
  in
  go 0 []

let events t = last t

let pp_event ppf (e : event) =
  Fmt.pf ppf "#%d %s pc=0x%Lx arg=%d" e.seq (kind_name e.kind) e.pc e.arg
