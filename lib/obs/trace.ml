type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  dom : int;
  args : (string * string) list;
}

let dummy =
  { name = ""; cat = ""; ts_us = 0.; dur_us = 0.; dom = 0; args = [] }

(* One ring per domain: records are domain-local, so the hot path never
   locks.  [n] counts every write; the live window is the last
   [min n cap] slots.  [rgen] ties the ring to the {!enable} call it
   was built under — [enable] empties the registry and bumps the
   generation, so stale rings left in a domain's DLS slot are rebuilt
   (and re-registered) on their next record. *)
type ring = { rdom : int; rgen : int; cap : int; mutable n : int; evs : event array }

let on = Atomic.make false
let enabled () = Atomic.get on

(* Everything off the hot path (ring registry, capacity, epoch) is
   guarded by [guard]. *)
let guard = Mutex.create ()
let rings : ring list ref = ref []
let capacity = ref 65536
let generation = ref 0
let epoch = ref 0.

let locked f =
  Mutex.lock guard;
  Fun.protect ~finally:(fun () -> Mutex.unlock guard) f

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let fresh_ring () =
  locked (fun () ->
      let r =
        {
          rdom = (Domain.self () :> int);
          rgen = !generation;
          cap = !capacity;
          n = 0;
          evs = Array.make (max 1 !capacity) dummy;
        }
      in
      rings := r :: !rings;
      r)

let ring_key : ring Domain.DLS.key = Domain.DLS.new_key fresh_ring

let record ev =
  let r = Domain.DLS.get ring_key in
  let r =
    if r.rgen = !generation then r
    else begin
      let r = fresh_ring () in
      Domain.DLS.set ring_key r;
      r
    end
  in
  r.evs.(r.n mod r.cap) <- ev;
  r.n <- r.n + 1

type span = (string * string * float) option

let begin_span ?(cat = "risotto") name =
  if enabled () then Some (name, cat, now_us ()) else None

let force_args = function None -> [] | Some f -> f ()

let end_span ?args = function
  | None -> ()
  | Some (name, cat, t0) ->
      let t1 = now_us () in
      record
        {
          name;
          cat;
          ts_us = t0;
          dur_us = t1 -. t0;
          dom = (Domain.self () :> int);
          args = force_args args;
        }

let with_span ?(cat = "risotto") ?args name f =
  if not (enabled ()) then f ()
  else begin
    let s = begin_span ~cat name in
    Fun.protect ~finally:(fun () -> end_span ?args s) f
  end

let instant ?(cat = "risotto") ?args name =
  if enabled () then
    record
      {
        name;
        cat;
        ts_us = now_us ();
        (* Negative sentinel: a span whose body ran under the clock
           resolution legitimately has [dur_us = 0.] and must still be
           emitted as a complete span, not an instant. *)
        dur_us = -1.;
        dom = (Domain.self () :> int);
        args = force_args args;
      }

let clear () =
  locked (fun () ->
      List.iter
        (fun r ->
          r.n <- 0;
          Array.fill r.evs 0 (Array.length r.evs) dummy)
        !rings)

let enable ?(limit = 65536) () =
  locked (fun () ->
      capacity := max 1 limit;
      epoch := Unix.gettimeofday ();
      (* Empty the registry and bump the generation: every domain's DLS
         ring is now stale and will be rebuilt (at the new capacity)
         the first time that domain records. *)
      rings := [];
      incr generation);
  Atomic.set on true

let disable () = Atomic.set on false

let ring_events r =
  let live = min r.n r.cap in
  (* Oldest first: once wrapped, the window starts at [n mod cap]. *)
  List.init live (fun i ->
      if r.n <= r.cap then r.evs.(i) else r.evs.((r.n + i) mod r.cap))

let events () =
  locked (fun () -> List.concat_map ring_events !rings)
  |> List.stable_sort (fun a b -> compare a.ts_us b.ts_us)

let dropped () =
  locked (fun () ->
      List.fold_left (fun acc r -> acc + max 0 (r.n - r.cap)) 0 !rings)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_event b ev =
  Buffer.add_string b "{\"name\":\"";
  escape b ev.name;
  Buffer.add_string b "\",\"cat\":\"";
  escape b ev.cat;
  Buffer.add_string b "\",\"ph\":";
  Buffer.add_string b (if ev.dur_us < 0. then "\"i\",\"s\":\"t\"" else "\"X\"");
  Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" ev.ts_us);
  if ev.dur_us >= 0. then
    Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" ev.dur_us);
  Buffer.add_string b (Printf.sprintf ",\"pid\":0,\"tid\":%d" ev.dom);
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":\"";
          escape b v;
          Buffer.add_char b '"')
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_json () =
  let evs = events () in
  let b = Buffer.create (4096 + (128 * List.length evs)) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      add_event b ev)
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write path =
  let evs = events () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ()));
  List.length evs
