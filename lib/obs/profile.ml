let now_us () = Unix.gettimeofday () *. 1e6

let time h f =
  if Metrics.enabled () then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    Metrics.observe h (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
    r
  end
  else f ()

type entry = { key : int64; count : int; cost : int; heat : int }

let score e = if e.heat > 0 then e.heat else if e.cost > 0 then e.cost else e.count

let rank ?(limit = 10) entries =
  let cmp a b =
    match compare (score b) (score a) with
    | 0 -> ( match compare b.count a.count with 0 -> compare a.key b.key | c -> c)
    | c -> c
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  take limit (List.sort cmp entries)

let pp_entry ppf e =
  Format.fprintf ppf "tb@0x%Lx: %d execs, %d cycles, heat %d" e.key e.count
    e.cost e.heat
