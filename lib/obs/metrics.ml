let buckets = 64

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (buckets - 1) (bits v 0)
  end

type counter = int  (* dense id into each shard's counter array *)
type histogram = int  (* dense id into each shard's histogram array *)
type gauge = { gname : string; cell : int Atomic.t }

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* Registry (names, ids, gauge cells, shard list) under one lock; the
   hot path (add/observe on an already-registered metric) never takes
   it. *)
let guard = Mutex.create ()

let locked f =
  Mutex.lock guard;
  Fun.protect ~finally:(fun () -> Mutex.unlock guard) f

let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let hist_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let counter_names : (int * string) list ref = ref []
let hist_names : (int * string) list ref = ref []
let gauges : gauge list ref = ref []
let ncounters = ref 0
let nhists = ref 0

(* Per-histogram shard layout: [count; sum; bucket 0 .. bucket 63]. *)
let hstride = buckets + 2

(* A domain-local shard.  Arrays are sized for the metrics registered
   when the shard last grew; a write to a fresher id grows them first
   (rare: registration is a startup activity). *)
type shard = { mutable cvals : int array; mutable hvals : int array }

let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      locked (fun () ->
          let s =
            {
              cvals = Array.make (max 16 !ncounters) 0;
              hvals = Array.make (max hstride (!nhists * hstride)) 0;
            }
          in
          shards := s :: !shards;
          s))

let grow_counters s =
  locked (fun () ->
      if !ncounters > Array.length s.cvals then begin
        let fresh = Array.make !ncounters 0 in
        Array.blit s.cvals 0 fresh 0 (Array.length s.cvals);
        s.cvals <- fresh
      end)

let grow_hists s =
  locked (fun () ->
      if !nhists * hstride > Array.length s.hvals then begin
        let fresh = Array.make (!nhists * hstride) 0 in
        Array.blit s.hvals 0 fresh 0 (Array.length s.hvals);
        s.hvals <- fresh
      end)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counter_ids name with
      | Some id -> id
      | None ->
          let id = !ncounters in
          incr ncounters;
          Hashtbl.replace counter_ids name id;
          counter_names := (id, name) :: !counter_names;
          id)

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt hist_ids name with
      | Some id -> id
      | None ->
          let id = !nhists in
          incr nhists;
          Hashtbl.replace hist_ids name id;
          hist_names := (id, name) :: !hist_names;
          id)

let gauge name =
  locked (fun () ->
      match List.find_opt (fun g -> g.gname = name) !gauges with
      | Some g -> g
      | None ->
          let g = { gname = name; cell = Atomic.make 0 } in
          gauges := g :: !gauges;
          g)

let add id by =
  if enabled () then begin
    let s = Domain.DLS.get shard_key in
    if id >= Array.length s.cvals then grow_counters s;
    s.cvals.(id) <- s.cvals.(id) + by
  end

let incr id = add id 1

let observe id v =
  if enabled () then begin
    let s = Domain.DLS.get shard_key in
    let off = id * hstride in
    if off + hstride > Array.length s.hvals then grow_hists s;
    s.hvals.(off) <- s.hvals.(off) + 1;
    s.hvals.(off + 1) <- s.hvals.(off + 1) + v;
    let b = bucket_of v in
    s.hvals.(off + 2 + b) <- s.hvals.(off + 2 + b) + 1
  end

let set g v = if enabled () then Atomic.set g.cell v

type hist_snap = { count : int; sum : int; counts : int array }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snap) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  locked (fun () ->
      let counters =
        List.map
          (fun (id, name) ->
            ( name,
              List.fold_left
                (fun acc s ->
                  if id < Array.length s.cvals then acc + s.cvals.(id) else acc)
                0 !shards ))
          !counter_names
        |> List.sort by_name
      in
      let histograms =
        List.map
          (fun (id, name) ->
            let counts = Array.make buckets 0 in
            let count = ref 0 and sum = ref 0 in
            List.iter
              (fun s ->
                let off = id * hstride in
                if off + hstride <= Array.length s.hvals then begin
                  count := !count + s.hvals.(off);
                  sum := !sum + s.hvals.(off + 1);
                  for b = 0 to buckets - 1 do
                    counts.(b) <- counts.(b) + s.hvals.(off + 2 + b)
                  done
                end)
              !shards;
            (name, { count = !count; sum = !sum; counts }))
          !hist_names
        |> List.sort by_name
      in
      let gauges =
        List.map (fun g -> (g.gname, Atomic.get g.cell)) !gauges
        |> List.sort by_name
      in
      { counters; gauges; histograms })

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.cvals 0 (Array.length s.cvals) 0;
          Array.fill s.hvals 0 (Array.length s.hvals) 0)
        !shards;
      List.iter (fun g -> Atomic.set g.cell 0) !gauges)

let find_counter snap name = List.assoc_opt name snap.counters
let find_gauge snap name = List.assoc_opt name snap.gauges
let find_histogram snap name = List.assoc_opt name snap.histograms

let counters_with_prefix snap prefix =
  List.filter_map
    (fun (name, v) ->
      if String.starts_with ~prefix name then
        let suffix =
          String.sub name (String.length prefix)
            (String.length name - String.length prefix)
        in
        Some (suffix, v)
      else None)
    snap.counters

let pp ppf snap =
  Format.fprintf ppf "@[<v>counters:@,";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-36s %d@," name v)
    snap.counters;
  if snap.gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-36s %d@," name v)
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (name, h) ->
        let mean =
          if h.count = 0 then 0.
          else float_of_int h.sum /. float_of_int h.count
        in
        Format.fprintf ppf "  %-36s count=%d sum=%d mean=%.1f@," name h.count
          h.sum mean;
        Array.iteri
          (fun b n ->
            if n > 0 then
              Format.fprintf ppf "    %-34s %d@,"
                (if b = 0 then "<= 0"
                 else Printf.sprintf "[2^%d, 2^%d)" (b - 1) b)
                n)
          h.counts)
      snap.histograms
  end;
  Format.fprintf ppf "@]"

(* The one shared metrics-dump path for CLI tools (gelf_tool --metrics,
   litmus_run --metrics): snapshot everything — including the tier.* and
   fence.* families — and print the standard [pp] rendering. *)
let dump ?(ppf = Format.std_formatter) () =
  Format.fprintf ppf "%a@." pp (snapshot ())
