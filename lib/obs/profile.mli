(** Profiling helpers built on {!Trace} and {!Metrics}: wall-clock
    section timing and hot-block ranking.

    Like every probe in this library, {!time} is behaviour-invisible
    and near-free when metrics are disabled. *)

(** Wall-clock microseconds (float), suitable for durations. *)
val now_us : unit -> float

(** [time h f] runs [f], recording its wall-clock duration in
    nanoseconds into histogram [h] — only when metrics are enabled
    (disabled cost: one atomic load and a branch).  Exceptions
    propagate untimed. *)
val time : Metrics.histogram -> (unit -> 'a) -> 'a

(** A profiled block: [key] its guest pc, [count] how many times it was
    dispatched, [cost] its accumulated guest cycles (0 when metrics
    were off during the run — cycle attribution is metered). *)
type entry = { key : int64; count : int; cost : int }

(** Ranking weight: accumulated cycles when measured (which already
    equals exec count × mean cycles per execution), execution count
    otherwise. *)
val score : entry -> int

(** The [limit] highest-{!score} entries, best first; ties broken by
    count, then key. *)
val rank : ?limit:int -> entry list -> entry list

val pp_entry : Format.formatter -> entry -> unit
