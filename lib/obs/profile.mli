(** Profiling helpers built on {!Trace} and {!Metrics}: wall-clock
    section timing and hot-block ranking.

    Like every probe in this library, {!time} is behaviour-invisible
    and near-free when metrics are disabled. *)

(** Wall-clock microseconds (float), suitable for durations. *)
val now_us : unit -> float

(** [time h f] runs [f], recording its wall-clock duration in
    nanoseconds into histogram [h] — only when metrics are enabled
    (disabled cost: one atomic load and a branch).  Exceptions
    propagate untimed. *)
val time : Metrics.histogram -> (unit -> 'a) -> 'a

(** A profiled block: [key] its guest pc, [count] how many times it was
    dispatched, [cost] its accumulated guest cycles (0 when metrics
    were off during the run — cycle attribution is metered), [heat] its
    observed-path heat (executions plus dominant-successor hits from
    the tier profile; 0 when the producer tracks no branch outcomes). *)
type entry = { key : int64; count : int; cost : int; heat : int }

(** Ranking weight: observed-path heat when the producer recorded
    branch outcomes — hot-and-predictable blocks (superblock
    candidates) first — otherwise accumulated cycles when measured,
    execution count as the last resort. *)
val score : entry -> int

(** The [limit] highest-{!score} entries, best first; ties broken by
    count, then key. *)
val rank : ?limit:int -> entry list -> entry list

val pp_entry : Format.formatter -> entry -> unit
