(** Span tracer: begin/end spans with monotonic-within-process
    timestamps, recorded into per-Domain ring buffers and emitted as
    Chrome [trace_event] JSON (loadable in [chrome://tracing] and
    Perfetto).

    The tracer is process-global and off by default.  When disabled,
    every probe is one atomic load plus a branch — nothing is
    formatted, allocated or recorded, so instrumented code paths run at
    full speed (the dispatch bench's [obs] section asserts the budget).
    When enabled, each domain records into its own fixed-capacity ring
    buffer with no locking on the hot path; once a ring wraps, the
    oldest events are overwritten (counted by {!dropped}).

    {b Behaviour invisibility.}  Probes only read timestamps and write
    into tracer-private buffers; they never touch guest state, so
    enabling tracing cannot change the results of a run
    ([test/test_obs.ml] proves this differentially).

    Argument thunks are lazy: the [(unit -> (string * string) list)]
    callback runs only when tracing is enabled, so callers can attach
    expensive formatting for free in the disabled case. *)

type event = {
  name : string;
  cat : string;  (** category, e.g. ["engine"], ["opt"], ["pool"] *)
  ts_us : float;  (** start, in µs since tracing was enabled *)
  dur_us : float;
      (** duration in µs; negative for instant events ([0.] is a real
          span shorter than the clock resolution) *)
  dom : int;  (** recording domain, reported as the trace [tid] *)
  args : (string * string) list;
}

(** Turn tracing on.  [limit] is the per-domain ring capacity in events
    (default [65536]); existing buffers are cleared and resized.  The
    timestamp epoch is (re)set to now. *)
val enable : ?limit:int -> unit -> unit

(** Turn tracing off.  Recorded events are kept until {!clear}. *)
val disable : unit -> unit

val enabled : unit -> bool

(** An open span.  Obtained from {!begin_span}; closed by {!end_span}.
    When tracing is disabled, spans are a no-op token. *)
type span

val begin_span : ?cat:string -> string -> span

(** Close a span, recording one complete ([ph = "X"]) event.  [args]
    is evaluated only if the span was actually opened with tracing
    enabled. *)
val end_span : ?args:(unit -> (string * string) list) -> span -> unit

(** [with_span name f] runs [f] inside a span; the span is closed even
    if [f] raises.  Disabled cost: one atomic load and a branch. *)
val with_span :
  ?cat:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a

(** Record a zero-duration instant event. *)
val instant :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string -> unit

(** Drop every recorded event (rings stay allocated). *)
val clear : unit -> unit

(** All recorded events, merged across domains and sorted by start
    time. *)
val events : unit -> event list

(** Events lost to ring-buffer wrap-around since the last
    {!enable}/{!clear}. *)
val dropped : unit -> int

(** The Chrome trace: [{"traceEvents": [...]}]. *)
val to_json : unit -> string

(** Write {!to_json} to a file; returns the number of events. *)
val write : string -> int
