(** Typed faults for the DBT engine.

    Every recoverable failure in the translation/execution stack —
    undecodable guest bytes, backend lowering failures, missing
    helpers, unresolved host-library imports, corrupt persistent
    caches, watchdog expiry — is described by a {!t} instead of a bare
    [Failure]/[Invalid_argument].  The engine converts faults into
    per-thread trap states so one misbehaving guest thread cannot tear
    down a concurrent run, and into degraded modes (interpreter
    fallback, cold cache start) where forward progress is possible. *)

type kind =
  | Decode_fault  (** guest bytes did not decode to an x86 instruction *)
  | Translate_fault  (** frontend could not lower a decoded instruction *)
  | Backend_fault  (** TCG→Arm compilation failed *)
  | Helper_fault  (** a runtime helper was missing or misused *)
  | Link_fault  (** host-linker import could not be resolved or called *)
  | Mem_fault  (** guest memory access outside the modelled space *)
  | Watchdog  (** execution budget exhausted *)
  | Cache_corrupt  (** persistent translation cache failed validation *)

type t = {
  kind : kind;
  pc : int64 option;  (** faulting guest pc, when known *)
  tid : int option;  (** faulting guest thread, when known *)
  context : string;  (** human-readable detail *)
}

exception Fault of t

val make : ?pc:int64 -> ?tid:int -> kind -> string -> t
val raise_ : ?pc:int64 -> ?tid:int -> kind -> string -> 'a

val locate : ?pc:int64 -> ?tid:int -> t -> t
(** Fill in [pc]/[tid] if the fault does not already carry them; a
    fault keeps the location closest to its origin. *)

val tag : kind -> string
(** Stable string tag, used to thread fault kinds through layers that
    cannot depend on this module ({!Tcg.Op.Trap}, {!Arm.Insn.Trap}). *)

val of_tag : string -> kind
(** Inverse of {!tag}; unknown tags map to [Translate_fault]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
