type kind =
  | Decode_fault
  | Translate_fault
  | Backend_fault
  | Helper_fault
  | Link_fault
  | Mem_fault
  | Watchdog
  | Cache_corrupt

type t = { kind : kind; pc : int64 option; tid : int option; context : string }

exception Fault of t

let make ?pc ?tid kind context = { kind; pc; tid; context }
let raise_ ?pc ?tid kind context = raise (Fault (make ?pc ?tid kind context))

let locate ?pc ?tid f =
  {
    f with
    pc = (match f.pc with Some _ -> f.pc | None -> pc);
    tid = (match f.tid with Some _ -> f.tid | None -> tid);
  }

let tag = function
  | Decode_fault -> "decode"
  | Translate_fault -> "translate"
  | Backend_fault -> "backend"
  | Helper_fault -> "helper"
  | Link_fault -> "link"
  | Mem_fault -> "mem"
  | Watchdog -> "watchdog"
  | Cache_corrupt -> "cache"

(* Lower layers (lib/arm, lib/tcg) carry fault kinds as string tags so
   they need not depend on this module; an unrecognised tag — e.g. from
   a newer cache file — degrades to the generic translation fault. *)
let of_tag = function
  | "decode" -> Decode_fault
  | "backend" -> Backend_fault
  | "helper" -> Helper_fault
  | "link" -> Link_fault
  | "mem" -> Mem_fault
  | "watchdog" -> Watchdog
  | "cache" -> Cache_corrupt
  | _ -> Translate_fault

let pp ppf f =
  Fmt.pf ppf "%s fault" (tag f.kind);
  (match f.tid with Some tid -> Fmt.pf ppf " [tid %d]" tid | None -> ());
  (match f.pc with Some pc -> Fmt.pf ppf " at 0x%Lx" pc | None -> ());
  if f.context <> "" then Fmt.pf ppf ": %s" f.context

let to_string f = Fmt.str "%a" pp f

let () =
  Printexc.register_printer (function
    | Fault f -> Some (to_string f)
    | _ -> None)
