(** Deterministic fault injection for robustness testing.

    A {!plan} names the sites at which the engine should fail on
    purpose — the Nth decode, every backend compile, a seeded fraction
    of host calls — and {!fire} answers "should this occurrence fail?"
    while counting occurrences per site.  Everything is deterministic:
    [Nth]/[Always] by construction, [Seeded] via a fixed-seed LCG, so
    an injected failure reproduces exactly under the same plan.

    Sites cover both the translation stack (decode/compile/host-call)
    and the resilience layer's persistence paths: cache reads {e and}
    writes, supervised pool tasks, and frontier-journal appends — the
    chaos campaign's full surface. *)

type site =
  | Decode  (** frontend decodes a guest instruction *)
  | Compile  (** backend compiles a TCG block to host code *)
  | Host_call  (** a dynamically-linked host library call executes *)
  | Cache_read  (** an entry is read from the persistent cache *)
  | Cache_write
      (** a persistent artifact (translation cache, gelf image) is
          committed to disk — fired between the tmp write and the
          rename, so injection proves the atomic-write path *)
  | Pool_task
      (** a supervised pool task attempt starts (transient fault:
          retried under the supervisor's backoff policy) *)
  | Journal_write
      (** a frontier-journal record is appended — firing tears the
          record mid-write, exercising truncated-tail recovery *)

type rule =
  | Nth of site * int  (** fail the Nth occurrence (1-based) of the site *)
  | Always of site  (** fail every occurrence of the site *)
  | Seeded of { site : site; seed : int64; permille : int }
      (** fail [permille]/1000 of occurrences, pseudo-randomly but
          reproducibly from [seed] *)

type plan = rule list

type t
(** Injection state: the plan plus per-site occurrence counters and
    per-rule RNG state.  One [t] per engine. *)

val create : plan -> t

val disabled : unit -> t
(** An empty plan: {!fire} always answers [false]. *)

val fire : t -> site -> bool
(** Record one occurrence of [site] and report whether the plan says
    this occurrence must fail. *)

val fire_hook : t -> site -> unit -> bool
(** [fire_hook t site] is [fun () -> fire t site]: the thunk shape the
    dependency-free resilience modules ({!Parallel.Frontier},
    {!Parallel.Supervise}, {!Image.Gelf}) take as their chaos hook. *)

val count : t -> site -> int
(** Occurrences of [site] seen so far (fired or not). *)

val site_name : site -> string

val site_of_string : string -> site option
(** Inverse of {!site_name}; accepts ['-'] and ['_'] interchangeably. *)

val all_sites : site list

val plan_of_string : string -> (plan, string) result
(** Parse a comma-separated rule list, e.g.
    ["nth:compile:1,always:decode,seeded:host-call:42:250"].  Accepts
    exactly the output of {!pp_plan} on any well-formed plan (sites
    from {!all_sites}, [Nth] counts >= 1, permille within [0, 1000]);
    out-of-range values are rejected with an error naming the offending
    field. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_plan : Format.formatter -> plan -> unit

val plan_to_string : plan -> string
(** [plan_to_string p] parses back to [p] via {!plan_of_string} for
    every well-formed plan (the roundtrip test pins this down). *)
