(** Deterministic fault injection for robustness testing.

    A {!plan} names the sites at which the engine should fail on
    purpose — the Nth decode, every backend compile, a seeded fraction
    of host calls — and {!fire} answers "should this occurrence fail?"
    while counting occurrences per site.  Everything is deterministic:
    [Nth]/[Always] by construction, [Seeded] via a fixed-seed LCG, so
    an injected failure reproduces exactly under the same plan. *)

type site =
  | Decode  (** frontend decodes a guest instruction *)
  | Compile  (** backend compiles a TCG block to host code *)
  | Host_call  (** a dynamically-linked host library call executes *)
  | Cache_read  (** an entry is read from the persistent cache *)

type rule =
  | Nth of site * int  (** fail the Nth occurrence (1-based) of the site *)
  | Always of site  (** fail every occurrence of the site *)
  | Seeded of { site : site; seed : int64; permille : int }
      (** fail [permille]/1000 of occurrences, pseudo-randomly but
          reproducibly from [seed] *)

type plan = rule list

type t
(** Injection state: the plan plus per-site occurrence counters and
    per-rule RNG state.  One [t] per engine. *)

val create : plan -> t

val disabled : unit -> t
(** An empty plan: {!fire} always answers [false]. *)

val fire : t -> site -> bool
(** Record one occurrence of [site] and report whether the plan says
    this occurrence must fail. *)

val count : t -> site -> int
(** Occurrences of [site] seen so far (fired or not). *)

val site_name : site -> string

val plan_of_string : string -> (plan, string) result
(** Parse a comma-separated rule list, e.g.
    ["nth:compile:1,always:decode,seeded:host-call:42:250"]. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_plan : Format.formatter -> plan -> unit
