(** Translation-block chain table: block-to-block links and hot-trace
    bookkeeping for the engine's dispatch loop.

    Each translated block is a {!node} holding its translation
    ([body]), what dispatch actually runs ([active] — the body, or a
    superblock stitched over a hot trace), an execution count, and the
    {e patched edges}: static exits resolved once through the cache and
    recorded so later executions follow the link without a hashtable
    lookup (QEMU-style direct chaining).

    {b Invalidation.}  [clear_links]/[flush] bump {!generation}; stale
    per-thread state (jump caches, pending chained targets) is detected
    lazily by comparing generations, so a cache reload can never leave
    a patched jump pointing at dead code. *)

type 'a node = {
  pc : int64;  (** guest pc of the block head *)
  mutable body : 'a;  (** the original translation *)
  mutable active : 'a;  (** what dispatch executes (body or superblock) *)
  mutable exec_count : int;
  mutable edges : 'a edge list;  (** patched static exits, one per pc *)
  mutable super_len : int;  (** blocks stitched into [active]; 0 = none *)
  mutable no_super : bool;  (** formation failed once; do not retry *)
  mutable prof_cycles : int;
      (** guest cycles this block accumulated while {!Obs.Metrics} was
          enabled (0 otherwise) — feeds hot-block ranking *)
  tier : Tier.profile;
      (** tier-ladder state and observed-successor profile; reset along
          with the other hotness state on {!insert}/{!clear_links} *)
}

and 'a edge = { epc : int64; target : 'a node; mutable hits : int }

type 'a t

(** [create ~chain ()] makes an empty table.  [size] defaults to 4096
    buckets — sized for real images (hundreds to thousands of blocks)
    rather than toy programs.  With [chain = false], {!link} refuses to
    patch edges and {!follow} never fires, giving an unchained baseline
    with identical semantics. *)
val create : ?size:int -> chain:bool -> unit -> 'a t

val chaining : 'a t -> bool

(** Bumped by every {!flush}/{!clear_links}; consumers compare
    generations to detect stale cached nodes. *)
val generation : 'a t -> int

val find : 'a t -> int64 -> 'a node option

(** Insert (or replace) the translation for a pc.  Replacing reuses the
    existing node record — edges into it keep working and see the new
    body — and resets its edges, counts and superblock state. *)
val insert : 'a t -> int64 -> 'a -> 'a node

(** [link t from ~epc target] patches the static exit of [from] at
    guest pc [epc] to jump straight to [target].  Returns [true] if a
    new edge was recorded; [false] if chaining is disabled, the exit is
    already patched, or the per-node edge budget (2, the two arms of a
    Jcc) is full. *)
val link : 'a t -> 'a node -> epc:int64 -> 'a node -> bool

(** Follow a patched edge for exit pc, bumping its hit counter. *)
val follow : 'a node -> int64 -> 'a node option

(** The hot trace out of [head]: greedily follow each node's
    most-taken edge, up to [limit] nodes.  Revisits are allowed (a
    self-loop unrolls), so callers get traces like [A;A;A] or [A;B;A]
    for hot loops; the result always starts with [head] and stops at
    nodes with no taken edges. *)
val hottest_path : 'a node -> limit:int -> 'a node list

(** Make [active] a superblock covering [len] stitched blocks and drop
    the node's now-stale edges. *)
val install_super : 'a node -> 'a -> len:int -> unit

(** Unpatch every edge, demote superblocks back to their bodies, reset
    hotness counters and bump the generation — used when reloading a
    persistent cache, where translations change under the chains. *)
val clear_links : 'a t -> unit

(** Drop every node and bump the generation. *)
val flush : 'a t -> unit

val length : 'a t -> int
val fold : (int64 -> 'a node -> 'b -> 'b) -> 'a t -> 'b -> 'b
val iter : (int64 -> 'a node -> unit) -> 'a t -> unit

(** Total patched edges across the table (diagnostics/tests). *)
val edge_count : 'a t -> int

(** {1 Per-thread jump cache}

    A direct-mapped, power-of-two array keyed by pc bits (cf. QEMU's
    [tb_jmp_cache]), consulted before the global hashtable on exits
    that are not chained (computed jumps, first visits).  Generation
    mismatches clear it lazily. *)

type 'a jcache

val jcache_create : 'a t -> 'a jcache
val jcache_find : 'a t -> 'a jcache -> int64 -> 'a node option
val jcache_store : 'a t -> 'a jcache -> 'a node -> unit
