module E = Axiom.Event
module Op = Tcg.Op

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
  inject : Inject.t;
}

let create ?inject config image links =
  let inject =
    match inject with Some i -> i | None -> Inject.create config.Config.inject
  in
  { config; image; links; inject }

let max_block_insns = 32

(* Translation-time state: op accumulator (reversed), temp and label
   allocators. *)
type ctx = {
  mutable ops : Op.t list;
  mutable next_temp : Op.temp;
  mutable next_label : int;
}

let emit ctx op = ctx.ops <- op :: ctx.ops

let fresh_temp ctx =
  let t = ctx.next_temp in
  ctx.next_temp <- t + 1;
  t

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

let greg r = Op.guest_reg (X86.Reg.index r)

let log2_scale = function
  | 1 -> 0L
  | 2 -> 1L
  | 4 -> 2L
  | 8 -> 3L
  | s -> Fault.raise_ Fault.Translate_fault (Printf.sprintf "bad scale %d" s)

(* Effective address of an x86 memory operand as (base temp, offset). *)
let ea ctx (m : X86.Insn.mem) =
  match (m.base, m.index) with
  | Some b, None -> (greg b, m.disp)
  | None, None ->
      let t = fresh_temp ctx in
      emit ctx (Op.Movi (t, m.disp));
      (t, 0L)
  | base, Some (i, scale) ->
      let t = fresh_temp ctx in
      emit ctx (Op.Binopi (Op.Shl, t, greg i, log2_scale scale));
      (match base with
      | Some b -> emit ctx (Op.Binop (Op.Add, t, t, greg b))
      | None -> ());
      (t, m.disp)

(* Guest load/store with the configured mapping scheme.  Each mapping
   fence is tagged with the guest pc and rule that introduced it, so the
   optimizer's ledger can attribute merges back to instructions. *)
let guest_load ctx ~pc fences dst base off =
  match (fences : Config.fence_scheme) with
  | Config.Qemu_fences ->
      emit ctx (Op.mb ~origin:{ opc = pc; rule = Op.R_pre_load } E.F_mr);
      emit ctx (Op.Ld (dst, base, off))
  | Config.Risotto_fences ->
      emit ctx (Op.Ld (dst, base, off));
      emit ctx (Op.mb ~origin:{ opc = pc; rule = Op.R_post_load } E.F_rm)
  | Config.No_fences -> emit ctx (Op.Ld (dst, base, off))

let guest_store ctx ~pc fences src base off =
  match (fences : Config.fence_scheme) with
  | Config.Qemu_fences ->
      emit ctx (Op.mb ~origin:{ opc = pc; rule = Op.R_pre_store } E.F_mw);
      emit ctx (Op.St (src, base, off))
  | Config.Risotto_fences ->
      emit ctx (Op.mb ~origin:{ opc = pc; rule = Op.R_store } E.F_ww);
      emit ctx (Op.St (src, base, off))
  | Config.No_fences -> emit ctx (Op.St (src, base, off))

let alu_binop : X86.Insn.alu -> Op.binop = function
  | X86.Insn.Add -> Op.Add
  | X86.Insn.Sub -> Op.Sub
  | X86.Insn.And -> Op.And
  | X86.Insn.Or -> Op.Or
  | X86.Insn.Xor -> Op.Xor
  | X86.Insn.Shl -> Op.Shl
  | X86.Insn.Shr -> Op.Shr
  | X86.Insn.Imul -> Op.Mul

let negate_cond : Op.cond -> Op.cond = function
  | Op.Eq -> Op.Ne
  | Op.Ne -> Op.Eq
  | Op.Lt -> Op.Ge
  | Op.Le -> Op.Gt
  | Op.Gt -> Op.Le
  | Op.Ge -> Op.Lt
  | Op.Ltu -> Op.Geu
  | Op.Leu -> Op.Gtu
  | Op.Gtu -> Op.Leu
  | Op.Geu -> Op.Ltu

let cond_of_cc : X86.Insn.cc -> Op.cond = function
  | X86.Insn.E -> Op.Eq
  | X86.Insn.Ne -> Op.Ne
  | X86.Insn.L -> Op.Lt
  | X86.Insn.Le -> Op.Le
  | X86.Insn.G -> Op.Gt
  | X86.Insn.Ge -> Op.Ge
  | X86.Insn.B -> Op.Ltu
  | X86.Insn.Be -> Op.Leu
  | X86.Insn.A -> Op.Gtu
  | X86.Insn.Ae -> Op.Geu

let fp_helper : X86.Insn.fpop -> string = function
  | X86.Insn.Fadd -> "sf_add"
  | X86.Insn.Fsub -> "sf_sub"
  | X86.Insn.Fmul -> "sf_mul"
  | X86.Insn.Fdiv -> "sf_div"
  | X86.Insn.Fsqrt -> "sf_sqrt"

let rsp = greg X86.Reg.RSP
let rax = greg X86.Reg.RAX

(* Stack push/pop are ordinary guest stores/loads: Qemu cannot know the
   stack is thread-private, so they receive mapping fences too. *)
let push ctx ~pc fences src =
  emit ctx (Op.Binopi (Op.Sub, rsp, rsp, 8L));
  guest_store ctx ~pc fences src rsp 0L

let pop ctx ~pc fences dst =
  guest_load ctx ~pc fences dst rsp 0L;
  emit ctx (Op.Binopi (Op.Add, rsp, rsp, 8L))

(* Set the lazy flags from a comparison of [a] with source [b]. *)
let set_flags ctx a b =
  emit ctx (Op.Mov (Op.cmp_a, a));
  match b with
  | X86.Insn.R r -> emit ctx (Op.Mov (Op.cmp_b, greg r))
  | X86.Insn.I i -> emit ctx (Op.Movi (Op.cmp_b, i))

(* x86 CMPXCHG semantics around an SC compare-and-swap of RAX with the
   operand register: flags := CMP(RAX, old); RAX := old.  (On success
   RAX is unchanged since RAX = old.) *)
let cmpxchg_flags ctx old =
  emit ctx (Op.Mov (Op.cmp_a, rax));
  emit ctx (Op.Mov (Op.cmp_b, old));
  emit ctx (Op.Mov (rax, old))

let helper_name (config : Config.t) base =
  match config.rmw with
  | Config.Helper `Gcc9 -> base ^ "_gcc9"
  | Config.Helper `Gcc10 | Config.Native_casal | Config.Native_rmw2 ->
      base ^ "_gcc10"

(* One guest instruction.  Returns [true] when the block ends here. *)
let translate_insn t ctx pc next_pc (insn : X86.Insn.t) =
  let fences = t.config.Config.fences in
  match insn with
  | X86.Insn.Mov_ri (r, imm) ->
      emit ctx (Op.Movi (greg r, imm));
      false
  | X86.Insn.Mov_rr (a, b) ->
      emit ctx (Op.Mov (greg a, greg b));
      false
  | X86.Insn.Load (r, m) ->
      let base, off = ea ctx m in
      guest_load ctx ~pc fences (greg r) base off;
      false
  | X86.Insn.Store (m, src) ->
      let base, off = ea ctx m in
      let v =
        match src with
        | X86.Insn.R r -> greg r
        | X86.Insn.I i ->
            let tv = fresh_temp ctx in
            emit ctx (Op.Movi (tv, i));
            tv
      in
      guest_store ctx ~pc fences v base off;
      false
  | X86.Insn.Alu (op, r, src) ->
      (match src with
      | X86.Insn.R r2 -> emit ctx (Op.Binop (alu_binop op, greg r, greg r, greg r2))
      | X86.Insn.I i -> emit ctx (Op.Binopi (alu_binop op, greg r, greg r, i)));
      false
  | X86.Insn.Fp (op, a, b) ->
      (* SSE scalar doubles are emulated in software (§7.3): every FP
         instruction becomes a helper call. *)
      emit ctx (Op.Call (fp_helper op, [ greg a; greg b ], Some (greg a)));
      false
  | X86.Insn.Lea (r, m) ->
      let base, off = ea ctx m in
      if Int64.equal off 0L then emit ctx (Op.Mov (greg r, base))
      else emit ctx (Op.Binopi (Op.Add, greg r, base, off));
      false
  | X86.Insn.Inc r ->
      emit ctx (Op.Binopi (Op.Add, greg r, greg r, 1L));
      false
  | X86.Insn.Dec r ->
      emit ctx (Op.Binopi (Op.Sub, greg r, greg r, 1L));
      false
  | X86.Insn.Neg r ->
      let t = fresh_temp ctx in
      emit ctx (Op.Movi (t, 0L));
      emit ctx (Op.Binop (Op.Sub, greg r, t, greg r));
      false
  | X86.Insn.Not r ->
      emit ctx (Op.Binopi (Op.Xor, greg r, greg r, -1L));
      false
  | X86.Insn.Cmov (cc, a, b) ->
      (* Branchless in real backends; a short forward branch here. *)
      let l = fresh_label ctx in
      emit ctx
        (Op.Brcond (negate_cond (cond_of_cc cc), Op.cmp_a, Op.cmp_b, l));
      emit ctx (Op.Mov (greg a, greg b));
      emit ctx (Op.Set_label l);
      false
  | X86.Insn.Test (r, src) ->
      let t = fresh_temp ctx in
      (match src with
      | X86.Insn.R r2 -> emit ctx (Op.Binop (Op.And, t, greg r, greg r2))
      | X86.Insn.I i -> emit ctx (Op.Binopi (Op.And, t, greg r, i)));
      emit ctx (Op.Mov (Op.cmp_a, t));
      emit ctx (Op.Movi (Op.cmp_b, 0L));
      false
  | X86.Insn.Cmp (r, src) ->
      set_flags ctx (greg r) src;
      false
  | X86.Insn.Jmp target ->
      emit ctx (Op.Goto_tb target);
      true
  | X86.Insn.Jcc (cc, target) ->
      let l = fresh_label ctx in
      emit ctx (Op.Brcond (cond_of_cc cc, Op.cmp_a, Op.cmp_b, l));
      emit ctx (Op.Goto_tb next_pc);
      emit ctx (Op.Set_label l);
      emit ctx (Op.Goto_tb target);
      true
  | X86.Insn.Call target ->
      let tret = fresh_temp ctx in
      emit ctx (Op.Movi (tret, next_pc));
      push ctx ~pc fences tret;
      emit ctx (Op.Goto_tb target);
      true
  | X86.Insn.Ret ->
      let tret = fresh_temp ctx in
      pop ctx ~pc fences tret;
      emit ctx (Op.Goto_ptr tret);
      true
  | X86.Insn.Push r ->
      push ctx ~pc fences (greg r);
      false
  | X86.Insn.Pop r ->
      pop ctx ~pc fences (greg r);
      false
  | X86.Insn.Lock_cmpxchg (m, r) ->
      let base, off = ea ctx m in
      let taddr =
        if Int64.equal off 0L then base
        else begin
          let ta = fresh_temp ctx in
          emit ctx (Op.Binopi (Op.Add, ta, base, off));
          ta
        end
      in
      let told = fresh_temp ctx in
      (match t.config.Config.rmw with
      | Config.Native_casal | Config.Native_rmw2 ->
          emit ctx (Op.Cas { old = told; addr = taddr; expect = rax; desired = greg r })
      | Config.Helper _ ->
          emit ctx
            (Op.Call (helper_name t.config "helper_cmpxchg", [ taddr; rax; greg r ], Some told)));
      cmpxchg_flags ctx told;
      false
  | X86.Insn.Lock_xadd (m, r) ->
      let base, off = ea ctx m in
      let taddr =
        if Int64.equal off 0L then base
        else begin
          let ta = fresh_temp ctx in
          emit ctx (Op.Binopi (Op.Add, ta, base, off));
          ta
        end
      in
      let told = fresh_temp ctx in
      (match t.config.Config.rmw with
      | Config.Native_casal | Config.Native_rmw2 ->
          emit ctx (Op.Atomic { op = `Xadd; old = told; addr = taddr; src = greg r })
      | Config.Helper _ ->
          emit ctx
            (Op.Call (helper_name t.config "helper_xadd", [ taddr; greg r ], Some told)));
      emit ctx (Op.Mov (greg r, told));
      false
  | X86.Insn.Xchg (m, r) ->
      let base, off = ea ctx m in
      let taddr =
        if Int64.equal off 0L then base
        else begin
          let ta = fresh_temp ctx in
          emit ctx (Op.Binopi (Op.Add, ta, base, off));
          ta
        end
      in
      let told = fresh_temp ctx in
      (match t.config.Config.rmw with
      | Config.Native_casal | Config.Native_rmw2 ->
          emit ctx (Op.Atomic { op = `Xchg; old = told; addr = taddr; src = greg r })
      | Config.Helper _ ->
          emit ctx
            (Op.Call (helper_name t.config "helper_xchg", [ taddr; greg r ], Some told)));
      emit ctx (Op.Mov (greg r, told));
      false
  | X86.Insn.Mfence ->
      (match fences with
      | Config.No_fences -> ()
      | Config.Qemu_fences | Config.Risotto_fences ->
          emit ctx (Op.mb ~origin:{ opc = pc; rule = Op.R_mfence } E.F_sc));
      false
  | X86.Insn.Nop -> false
  | X86.Insn.Syscall ->
      emit ctx
        (Op.Call
           ( "helper_syscall",
             [ rax; greg X86.Reg.RDI; greg X86.Reg.RSI; greg X86.Reg.RDX ],
             Some rax ));
      emit ctx (Op.Goto_tb next_pc);
      true
  | X86.Insn.Hlt ->
      emit ctx Op.Exit_halt;
      true

(* Figure 11 steps 4–5: marshal guest argument registers to the host
   call, invoke the native function, write the result back to RAX, and
   return to the caller. *)
let translate_plt_stub ctx (entry : Linker.Link.entry) =
  let arg_regs = X86.Reg.[ RDI; RSI; RDX; RCX; R8; R9 ] in
  let args =
    List.mapi (fun i _ -> greg (List.nth arg_regs i)) entry.signature.Linker.Idl.args
  in
  let ret =
    match entry.signature.Linker.Idl.ret with
    | Linker.Idl.Void -> None
    | Linker.Idl.I64 | Linker.Idl.F64 | Linker.Idl.Ptr -> Some rax
  in
  emit ctx (Op.Host_call { func = entry.name; args; ret });
  (* Return to the guest caller: pop the return address pushed by the
     guest CALL.  Host glue code: no guest memory-model fences. *)
  let tret = fresh_temp ctx in
  emit ctx (Op.Ld (tret, rsp, 0L));
  emit ctx (Op.Binopi (Op.Add, rsp, rsp, 8L));
  emit ctx (Op.Goto_ptr tret)

(* A pc that is the PLT slot of an import the IDL promised but the
   host library lacks.  Such imports become lazy trap stubs: the run
   only faults — and only in the calling thread — if the import is
   actually invoked (Link_fault). *)
let link_trap t pc =
  if not t.config.Config.host_linker then None
  else
    List.find_map
      (fun (name, cause) ->
        match cause with
        | Linker.Link.Missing_host_symbol -> (
            match List.assoc_opt name t.image.Image.Gelf.plt with
            | Some addr when Int64.equal addr pc -> Some name
            | Some _ | None -> None)
        | Linker.Link.No_idl_signature | Linker.Link.No_plt_slot -> None)
      (Linker.Link.unresolved_causes t.links)

let decode_one t pc =
  if Inject.fire t.inject Inject.Decode then
    Error (Printf.sprintf "injected decode fault at 0x%Lx" pc)
  else
    match
      X86.Decode.decode t.image.Image.Gelf.text ~pc
        ~base:t.image.Image.Gelf.text_base
    with
    | insn_and_len -> Ok insn_and_len
    | exception X86.Decode.Bad_encoding (epc, msg) ->
        Error (Printf.sprintf "0x%Lx: %s" epc msg)

let trap_block pc kind context =
  { Tcg.Block.guest_pc = pc; guest_len = 0; guest_insns = 0;
    ops = [ Op.Trap (kind, context) ] }

let translate t pc =
  let ctx = { ops = []; next_temp = Op.first_local; next_label = 0 } in
  match
    if t.config.Config.host_linker then Linker.Link.lookup t.links pc else None
  with
  | Some entry ->
      translate_plt_stub ctx entry;
      {
        Tcg.Block.guest_pc = pc;
        guest_len = 0;
        guest_insns = 0;
        ops = List.rev ctx.ops;
      }
  | None -> (
      match link_trap t pc with
      | Some name ->
          trap_block pc "link" ("unresolved host import " ^ name)
      | None -> (
          match decode_one t pc with
          | Error msg ->
              (* The very first instruction is undecodable: the whole
                 block is a trap.  Executing it faults the thread. *)
              trap_block pc "decode" msg
          | Ok first ->
              let rec go insn_len pc count len =
                let insn, ilen = insn_len in
                let next_pc = Int64.add pc (Int64.of_int ilen) in
                let ended = translate_insn t ctx pc next_pc insn in
                let count = count + 1 and len = len + ilen in
                if ended then (count, len)
                else if count >= max_block_insns then begin
                  emit ctx (Op.Goto_tb next_pc);
                  (count, len)
                end
                else
                  match decode_one t next_pc with
                  | Ok next -> go next next_pc count len
                  | Error _ ->
                      (* Undecodable bytes mid-block: end the block at
                         the boundary.  If control actually reaches the
                         bad pc, its own (trap) block faults then. *)
                      emit ctx (Op.Goto_tb next_pc);
                      (count, len)
              in
              let insns, len = go first pc 0 0 in
              {
                Tcg.Block.guest_pc = pc;
                guest_len = len;
                guest_insns = insns;
                ops = List.rev ctx.ops;
              }))
