(** The Risotto execution engine (Figure 4): translation-block cache,
    execution loop, guest threads and statistics.

    Guest GP registers live pinned in host registers X0–X15; guest
    threads share the guest memory and the code cache, and are scheduled
    round-robin at translation-block granularity.

    {b Dispatch.}  Block exits resolve through three fast paths before
    the global table: the chained target the previous block's static
    exit patched in ({!Tbchain}, QEMU-style TB chaining), a per-thread
    direct-mapped jump cache (cf. QEMU's [tb_jmp_cache]), and only then
    the hashtable.  Chaining executes the same code in the same order,
    so it never changes results or guest cycles; disable it with
    [config.chain = false].

    {b Tier ladder.}  With [config.jit_threshold > 0] fresh blocks
    start on the TCG interpreter (tier 0) while a {!Tier} profile
    accumulates execution and branch-outcome counters; crossing the
    threshold requests a backend compile — inline when
    [config.sync_compile], otherwise on a background
    {!Parallel.Pool.service} with the result published between
    dispatches under a generation check (tier 1).  With
    [config.trace_threshold > 0], hot block heads whose profile shows a
    dominant observed successor get that path stitched into a
    superblock and re-optimized across the former block boundaries
    (tier 2, see {!Tcg.Block.concat}), and are demoted back to their
    tier-1 TB if the side-exit rate regresses.  All presets have
    [jit_threshold = 0]: the ladder is opt-in, and every tier runs the
    same Pipeline and fence mapping.

    {b Fault model.}  Guest-caused failures (undecodable code, missing
    helpers, unresolvable imports, runaway blocks) never abort a run:
    the faulting thread finishes with {!trap} set to the {!Fault.t}
    describing what happened, and every other thread keeps running.
    Backend compilation failures demote the block to the TCG
    interpreter (degraded mode, counted in [stats.interp_fallbacks])
    with unchanged semantics. *)

type stats = {
  mutable blocks_translated : int;
  mutable blocks_executed : int;
      (** dispatches through the execute loop (one per executed block
          or superblock) *)
  mutable cache_hits : int;
      (** dispatches/fetches that did not need a fresh translation,
          whichever fast path served them *)
  mutable lookups : int;  (** all dispatches/fetches *)
  mutable fences_emitted : int;  (** DMBs in translated code *)
  mutable tcg_ops_before_opt : int;
  mutable tcg_ops_after_opt : int;
  mutable chained : int;
      (** static block exits patched into direct block-to-block edges *)
  mutable chain_hits : int;
      (** dispatches served by a patched edge — no table lookup at all *)
  mutable jmp_cache_hits : int;
      (** dispatches served by the per-thread direct-mapped jump cache *)
  mutable superblocks : int;
      (** hot traces stitched, re-optimized and installed *)
  mutable interp_fallbacks : int;
      (** blocks the backend could not compile, demoted to the TCG
          interpreter *)
  mutable traps : int;  (** guest threads finished by a fault *)
  mutable cache_quarantined : int;
      (** persistent-cache entries dropped by {!load_cache} because
          their checksum (or framing-internal decode) failed; each one
          just retranslates on first execution *)
  mutable interp_execs : int;
      (** dispatches served by the TCG interpreter: tier-0 executions
          (block not yet past [config.jit_threshold], or its compile
          still in flight) plus degraded blocks *)
  mutable tier1_installed : int;
      (** compile requests whose native TB was published into the chain
          table (tier 1) *)
  mutable deopts : int;
      (** superblocks demoted back to their tier-1 TB because the
          observed side-exit rate regressed *)
  mutable installs_dropped : int;
      (** compile results discarded because {!reset} / {!load_cache}
          bumped the chain generation while they were queued or in
          flight *)
  mutable install_hwm : int;
      (** install-queue depth high-water mark (background service
          depth at submit, or pending completions at publish) *)
}

(** Engine log source ([risotto.engine]): [info] logs translations,
    [debug] traces every executed block, [warn] reports faults and
    degraded modes. *)
val log_src : Logs.src

type t

(** How the block at a pc executes: natively, or on the TCG
    interpreter because the backend could not compile it. *)
type compiled = Native of Arm.Insn.t array | Interp_only of Tcg.Block.t

type guest_thread = {
  arm : Arm.Machine.thread;
  mutable pc : int64;
  mutable finished : bool;
  mutable trap : Fault.t option;
      (** set when the thread was stopped by a fault *)
  jcache : compiled Tbchain.jcache;
      (** per-thread direct-mapped TB lookup cache *)
  mutable next_tb : compiled Tbchain.node option;
      (** chained target for the next dispatch, if the previous block's
          static exit was patched *)
  mutable next_gen : int;
      (** chain-table generation [next_tb] was captured at *)
  gflight : Obs.Flight.t;
      (** this thread's flight ring — see {!thread_flight} *)
}

(** Create an engine.  [idl] defaults to the full host-library IDL when
    the config enables the linker; pass [~idl:[]] to disable linking of
    everything.  The engine's fault-injection state is built from
    [config.inject].

    [install_service] supplies the background translation service for
    async-tiered configs ([jit_threshold > 0] and [sync_compile =
    false]); by default such engines share one lazily spawned
    process-wide service.  Ignored (and never spawned) for synchronous
    configs.  Tests inject their own service to control background
    scheduling. *)
val create :
  ?cost:Arm.Cost.t -> ?idl:Linker.Idl.signature list ->
  ?install_service:Parallel.Pool.service -> Config.t ->
  Image.Gelf.t -> t

val config : t -> Config.t
val memory : t -> Memsys.Mem.t
val stats : t -> stats
val links : t -> Linker.Link.t

val injector : t -> Inject.t
(** The engine's fault-injection state (shared with the frontend and
    the registered helpers). *)

(** Lowest address of the default stack area; thread [tid] gets the
    64 KiB below [stack_top tid]. *)
val stack_top : int -> int64

(** Create a guest thread starting at [entry]; [regs] preloads guest
    registers. *)
val spawn :
  t -> tid:int -> entry:int64 -> ?regs:(X86.Reg.t * int64) list -> unit ->
  guest_thread

(** Translate (or fetch from cache) the block at an address.  Returns
    the original per-block translation (never a superblock). *)
val fetch : t -> int64 -> compiled

(** Flush the translation caches: every block, patched chain edge,
    superblock and per-block tier profile is dropped, queued installs
    are discarded (counted in [stats.installs_dropped]), and the chain
    generation is bumped so stale per-thread dispatch state — and any
    background compile still in flight — can never fire. *)
val reset : t -> unit

(** Block until every queued background compile has finished, then
    publish (or drop, on a generation mismatch) the results.  No-op for
    synchronous engines.  Call before reading tier stats after an
    async-tiered run, or to quiesce the shared service in tests. *)
val drain_installs : t -> unit

(** Current chain-table generation; bumped by {!reset} and by a
    successful {!load_cache} (both invalidate patched edges). *)
val chain_generation : t -> int

(** Patched block-to-block edges currently installed. *)
val chained_edges : t -> int

(** The native code at an address.  Raises {!Fault.Fault}
    ([Backend_fault]) if the block is interpreter-only; prefer
    {!fetch}. *)
val lookup_block : t -> int64 -> Arm.Insn.t array

(** The optimized TCG block at an address (for inspection). *)
val tcg_block : t -> int64 -> Tcg.Block.t

(** Execute one translation block of the thread.  Faults are absorbed:
    they finish the thread and set its [trap] field. *)
val step_block : t -> guest_thread -> unit

(** Run a thread until it halts (or the block budget is exhausted). *)
val run_thread : ?max_blocks:int -> t -> guest_thread -> unit

(** Result of {!run_concurrent}: either every thread halted (or
    trapped), or the watchdog budget ran out first. *)
type outcome =
  | Completed of guest_thread list
  | Exhausted of {
      blocks : int;  (** blocks executed when the budget ran out *)
      live_threads : int;  (** threads still runnable *)
      threads : guest_thread list;
    }

(** All threads of an outcome (including clone-spawned ones),
    regardless of how the run ended. *)
val threads : outcome -> guest_thread list

(** Round-robin over the threads (at translation-block granularity)
    until all halt or trap, or [max_blocks] is exhausted (watchdog;
    reported as [Exhausted] rather than silently stopping).  Threads
    the guest creates through the clone syscall (56) join the rotation;
    the outcome includes them.  Guest syscalls: 1 write, 56
    clone(fn, arg), 60 exit, 186 gettid. *)
val run_concurrent :
  ?max_blocks:int -> t -> guest_thread list -> outcome

(** Convenience: spawn a single thread at the image entry, run it, and
    return it. *)
val run : ?max_blocks:int -> ?regs:(X86.Reg.t * int64) list -> t -> guest_thread

(** Guest register value of a thread. *)
val reg : guest_thread -> X86.Reg.t -> int64

val cycles : guest_thread -> int

val trap : guest_thread -> Fault.t option
(** The fault that stopped the thread, if any. *)

(** {1 Observability}

    The engine emits {!Obs.Trace} spans around translation and
    concurrent runs, and feeds {!Obs.Metrics} when the registry is
    enabled; both are single-branch no-ops otherwise. *)

(** Hottest translated blocks, ranked by observed-path heat (execution
    count plus dominant-successor hits from the branch-outcome profile
    — exactly the tier-2 candidate ordering); attributed guest cycles
    and raw counts ride along in each entry.  [limit] defaults to
    10. *)
val hot_blocks : ?limit:int -> t -> Obs.Profile.entry list

(** One-line run summary for CLIs: guest cycles of [g] plus the engine
    counters.  The core fields are printed unconditionally — in
    particular [interp-fallbacks=0] on a clean run, so silent
    degradation is impossible to confuse with "not reported".  The
    install-queue fields ([installs-dropped] / [install-hwm], named for
    their gauges) are zero-suppressed: they only appear when an install
    was actually dropped or queued. *)
val stats_line : t -> guest_thread -> string

(** {2 Flight recorder and postmortems}

    Every guest thread carries an always-on {!Obs.Flight} ring of its
    recent lifecycle events (block entries, trap, watchdog), and the
    engine keeps one more for events not owned by a single thread
    (tier publishes and drops, superblocks, deopts, fence passes).
    When a postmortem directory is configured, any trap or watchdog
    exhaustion dumps a deterministic JSON artifact combining the rings
    with tier states, fence ledgers and a metrics slice. *)

(** The engine-wide flight ring. *)
val flight : t -> Obs.Flight.t

(** A thread's flight ring (same as its [gflight] field). *)
val thread_flight : guest_thread -> Obs.Flight.t

(** Enable/disable postmortem dumps by setting the output directory
    (created on first dump).  [None] (the default) disables dumping;
    {!postmortem_json} works regardless. *)
val set_postmortem_dir : t -> string option -> unit

val postmortem_dir : t -> string option

(** Artifacts written so far (filenames [postmortem-NNN.json]). *)
val postmortems_written : t -> int

(** Build the postmortem document: [reason], config name, each thread's
    last [last] flight events (default 32) with its pc/trap state, the
    engine ring, per-block tier states sorted by pc, the fence ledger
    of every trapping block, a chain-table summary, and the
    deterministic (non-wall-clock) slice of the metrics registry.
    Byte-identical across identical runs. *)
val postmortem_json : ?last:int -> t -> reason:string -> Report.Json.t

(** Fence provenance ledger of the block translated at a pc, if that
    block was translated by this engine (blocks loaded from the
    persistent cache have none). *)
val fence_ledger : t -> int64 -> Tcg.Fence_ledger.t option

(** All per-block ledgers, sorted by pc. *)
val fence_ledgers : t -> (int64 * Tcg.Fence_ledger.t) list

(** Publish the {!stats} counters into the {!Obs.Metrics} registry as
    [engine.stats.*] gauges.  The dispatch loop deliberately keeps its
    counters as plain mutable fields (zero instrumentation cost); call
    this once at the end of a run, before snapshotting the registry.
    No-op when metrics are disabled. *)
val publish_metrics : t -> unit

(** {1 Persistent translation cache}

    Translated code can be saved after a run and reloaded by a later
    engine with the same configuration, skipping retranslation (cf. the
    caching translators in the paper's related work). *)

(** Returns the number of blocks written.  Each entry is framed with
    its length and a CRC-32 of its body (format "RSTC2"), so later
    loads can drop individually damaged entries instead of rejecting
    the file.  The write is atomic: the cache is assembled in a
    temporary file renamed into place, so a crash mid-save cannot
    leave a truncated cache under [path].  The {!Inject.Cache_write}
    site fires after the temporary file is complete but before the
    rename — an injected fault there raises [Fault Cache_corrupt] and
    leaves any previous cache under [path] intact. *)
val save_cache : t -> string -> int

(** Returns the number of blocks loaded, or the {!Fault.t}
    ([Cache_corrupt]) explaining why the file was rejected —
    structurally corrupt, truncated, unreadable, or built by a
    different configuration.  An entry whose frame is intact but whose
    body fails its checksum is {e quarantined}: skipped (it will
    retranslate on demand), counted in {!stats.cache_quarantined} and
    the [cache.corrupt] metric counter, and the rest of the file still
    loads.  On [Error] the engine's code cache is untouched (cold
    start); nothing is ever partially loaded.  On [Ok] every patched
    chain edge and superblock is invalidated first (the loaded
    translations replace what the edges were built against), which
    also bumps {!chain_generation}. *)
val load_cache : t -> string -> (int, Fault.t) result

(** Offline integrity check for a cache file ([gelf_tool verify]).
    [Ok (valid, bad)] lists the per-entry problems ([bad] empty means
    the file is fully intact); [Error] is structural damage that would
    make {!load_cache} reject the whole file.  Does not require an
    engine and does not enforce the config binding. *)
val verify_cache : string -> (int * string list, Fault.t) result
