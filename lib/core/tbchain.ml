(* Translation-block chain table: the dispatch-side view of the code
   cache.  Each translated block is a node; static exits resolved once
   are patched into edges so later executions jump block-to-block
   without a hashtable lookup, QEMU-style.  Edge hit counts drive
   hot-trace (superblock) formation.

   Invalidation is generation-based: flushing or clearing links bumps
   [generation], which lazily invalidates every per-thread jump cache
   and pending chained target that was built against the old state. *)

type 'a node = {
  pc : int64;
  mutable body : 'a;  (* the original translation of the block *)
  mutable active : 'a;  (* what dispatch executes: body or a superblock *)
  mutable exec_count : int;
  mutable edges : 'a edge list;  (* patched static exits, at most one per pc *)
  mutable super_len : int;  (* number of stitched blocks; 0 = no superblock *)
  mutable no_super : bool;  (* superblock formation failed; do not retry *)
  mutable prof_cycles : int;
      (* guest cycles attributed to this block while metrics were on *)
  tier : Tier.profile;
      (* tier-ladder state + observed-successor profile (see Tier) *)
}

and 'a edge = { epc : int64; target : 'a node; mutable hits : int }

type 'a t = {
  table : (int64, 'a node) Hashtbl.t;
  chain : bool;
  mutable generation : int;
}

(* Real images translate hundreds to thousands of blocks; starting near
   the expected population avoids rehash-and-copy churn on the hottest
   table in the engine. *)
let default_size = 4096

let create ?(size = default_size) ~chain () =
  { table = Hashtbl.create size; chain; generation = 0 }

let chaining t = t.chain
let generation t = t.generation
let find t pc = Hashtbl.find_opt t.table pc
let length t = Hashtbl.length t.table
let fold f t acc = Hashtbl.fold (fun pc n acc -> f pc n acc) t.table acc
let iter f t = Hashtbl.iter f t.table

let reset_node n body =
  n.body <- body;
  n.active <- body;
  n.exec_count <- 0;
  n.edges <- [];
  n.super_len <- 0;
  n.no_super <- false;
  n.prof_cycles <- 0;
  Tier.reset n.tier

let insert t pc body =
  match Hashtbl.find_opt t.table pc with
  | Some n ->
      (* Retranslation: existing edges into this node keep pointing at
         the same record, so patched jumps see the new body. *)
      reset_node n body;
      n
  | None ->
      let n =
        {
          pc;
          body;
          active = body;
          exec_count = 0;
          edges = [];
          super_len = 0;
          no_super = false;
          prof_cycles = 0;
          tier = Tier.fresh ();
        }
      in
      Hashtbl.replace t.table pc n;
      n

(* A block has at most two static exits (the two arms of a Jcc). *)
let max_edges = 2

let link t from ~epc target =
  if
    t.chain
    && (not (List.exists (fun e -> Int64.equal e.epc epc) from.edges))
    && List.length from.edges < max_edges
  then begin
    from.edges <- { epc; target; hits = 0 } :: from.edges;
    true
  end
  else false

let follow from pc =
  let rec go = function
    | [] -> None
    | e :: rest ->
        if Int64.equal e.epc pc then begin
          e.hits <- e.hits + 1;
          Some e.target
        end
        else go rest
  in
  go from.edges

let hottest_edge n =
  match n.edges with
  | [] -> None
  | e :: rest ->
      Some (List.fold_left (fun a e -> if e.hits > a.hits then e else a) e rest)

let hottest_path head ~limit =
  let rec go acc n k =
    if k = 0 then List.rev acc
    else
      match hottest_edge n with
      | Some e when e.hits > 0 -> go (e.target :: acc) e.target (k - 1)
      | _ -> List.rev acc
  in
  go [ head ] head (limit - 1)

let install_super n active ~len =
  n.active <- active;
  n.super_len <- len;
  (* Old edges were keyed by the plain body's exit pcs; the superblock
     has its own set of side exits. *)
  n.edges <- []

let clear_links t =
  Hashtbl.iter
    (fun _ n ->
      n.edges <- [];
      n.active <- n.body;
      n.exec_count <- 0;
      n.super_len <- 0;
      n.no_super <- false;
      n.prof_cycles <- 0;
      Tier.reset n.tier)
    t.table;
  t.generation <- t.generation + 1

let flush t =
  Hashtbl.reset t.table;
  t.generation <- t.generation + 1

let edge_count t =
  fold (fun _ n acc -> acc + List.length n.edges) t 0

(* ------------------------------------------------------------------ *)
(* Per-thread direct-mapped jump cache (cf. QEMU's [tb_jmp_cache]): a
   power-of-two array keyed by pc bits, consulted before the global
   hashtable on unchained exits. *)

let jcache_bits = 10
let jcache_slots = 1 lsl jcache_bits

type 'a jcache = { mutable jgen : int; slots : 'a node option array }

let jcache_create t = { jgen = t.generation; slots = Array.make jcache_slots None }

let jcache_slot pc =
  (Int64.to_int pc lxor Int64.to_int (Int64.shift_right_logical pc 12))
  land (jcache_slots - 1)

let jcache_find t jc pc =
  if jc.jgen <> t.generation then begin
    (* Stale: the table was flushed or relinked since this cache was
       filled.  Reset lazily on first use after the bump. *)
    jc.jgen <- t.generation;
    Array.fill jc.slots 0 jcache_slots None;
    None
  end
  else
    match jc.slots.(jcache_slot pc) with
    | Some n when Int64.equal n.pc pc -> Some n
    | _ -> None

let jcache_store t jc n =
  if jc.jgen = t.generation then jc.slots.(jcache_slot n.pc) <- Some n
