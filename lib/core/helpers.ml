module M = Arm.Machine

let softfloat_cycles = 38

let arg n args =
  match List.nth_opt args n with
  | Some v -> v
  | None ->
      Fault.raise_ Fault.Helper_fault
        (Printf.sprintf "missing helper argument %d" n)

let softfloat op _shared t args =
  M.charge t softfloat_cycles;
  let a = Int64.float_of_bits (arg 0 args)
  and b = Int64.float_of_bits (arg 1 args) in
  Int64.bits_of_float
    (match op with
    | `Add -> a +. b
    | `Sub -> a -. b
    | `Mul -> a *. b
    | `Div -> a /. b
    | `Sqrt -> sqrt b)

(* The GCC-9 helper: LDAXR/STLXR loop.  Cost: two exclusives with
   acquire/release, plus line transfer under contention. *)
let cmpxchg_gcc9 shared (t : M.thread) args =
  let c = M.cost shared in
  M.charge t ((2 * c.Arm.Cost.excl) + (2 * c.Arm.Cost.acq_rel_extra));
  let addr = arg 0 args and expect = arg 1 args and desired = arg 2 args in
  M.atomic_line shared t addr;
  let old = Memsys.Mem.load (M.mem shared) addr in
  if Int64.equal old expect then Memsys.Mem.store (M.mem shared) addr desired;
  old

(* The GCC-10 helper: a casal. *)
let cmpxchg_gcc10 shared (t : M.thread) args =
  let c = M.cost shared in
  M.charge t c.Arm.Cost.cas;
  let addr = arg 0 args and expect = arg 1 args and desired = arg 2 args in
  M.atomic_line shared t addr;
  let old = Memsys.Mem.load (M.mem shared) addr in
  if Int64.equal old expect then Memsys.Mem.store (M.mem shared) addr desired;
  old

let atomic_op op ~gcc9 shared (t : M.thread) args =
  let c = M.cost shared in
  M.charge t
    (if gcc9 then (2 * c.Arm.Cost.excl) + (2 * c.Arm.Cost.acq_rel_extra)
     else c.Arm.Cost.cas);
  let addr = arg 0 args and src = arg 1 args in
  M.atomic_line shared t addr;
  let old = Memsys.Mem.load (M.mem shared) addr in
  Memsys.Mem.store (M.mem shared) addr
    (match op with `Xadd -> Int64.add old src | `Xchg -> src);
  old

let register_all ?on_clone ?inject shared =
  M.register_helper shared "helper_syscall" (fun s t args ->
      match arg 0 args with
      | 60L ->
          t.M.halted <- true;
          t.M.exit_code <- arg 1 args;
          0L
      | 1L ->
          let buf = arg 2 args and len = Int64.to_int (arg 3 args) in
          for i = 0 to len - 1 do
            Buffer.add_char t.M.output
              (Char.chr
                 (Memsys.Mem.load_byte (M.mem s) (Int64.add buf (Int64.of_int i))))
          done;
          arg 3 args
      | 56L -> (
          (* clone(fn=rdi, arg=rsi): spawn a guest thread at [fn] with
             RDI = arg; returns the child tid (or -ENOSYS when the
             engine runs single-threaded). *)
          match on_clone with
          | Some spawn -> spawn ~entry:(arg 1 args) ~arg:(arg 2 args)
          | None -> -38L)
      | 186L -> Int64.of_int t.M.tid
      | _ -> -38L);
  M.register_helper shared "helper_cmpxchg_gcc9" cmpxchg_gcc9;
  M.register_helper shared "helper_cmpxchg_gcc10" cmpxchg_gcc10;
  M.register_helper shared "helper_xadd_gcc9" (atomic_op `Xadd ~gcc9:true);
  M.register_helper shared "helper_xadd_gcc10" (atomic_op `Xadd ~gcc9:false);
  M.register_helper shared "helper_xchg_gcc9" (atomic_op `Xchg ~gcc9:true);
  M.register_helper shared "helper_xchg_gcc10" (atomic_op `Xchg ~gcc9:false);
  M.register_helper shared "sf_add" (softfloat `Add);
  M.register_helper shared "sf_sub" (softfloat `Sub);
  M.register_helper shared "sf_mul" (softfloat `Mul);
  M.register_helper shared "sf_div" (softfloat `Div);
  M.register_helper shared "sf_sqrt" (softfloat `Sqrt);
  List.iter
    (fun (name, (fn : Linker.Hostlib.fn)) ->
      M.register_helper shared name (fun s t args ->
          (match inject with
          | Some inj when Inject.fire inj Inject.Host_call ->
              Fault.raise_ Fault.Link_fault
                ("injected host-call fault in " ^ name)
          | Some _ | None -> ());
          M.charge t (fn.Linker.Hostlib.cycles args);
          fn.Linker.Hostlib.call (M.mem s) args))
    Linker.Hostlib.all
