module Op = Tcg.Op
module A = Arm.Insn
module E = Axiom.Event

exception Register_pressure of int64

(* X29/X30 (fp/lr) are unused by translated code: safe backend
   scratches.  X0-X17 hold pinned guest state; X19-X28 are the
   allocatable pool. *)
let scratch0 = 29
let scratch1 = 30
let pool = [ 19; 20; 21; 22; 23; 24; 25; 26; 27; 28 ]

(* Linear-scan allocation of block-local temps into the pool, freeing a
   register after its temp's last use. *)
let allocate_temps ops =
  let last_use = Hashtbl.create 16 in
  List.iteri
    (fun i op ->
      List.iter
        (fun t -> if t >= Op.first_local then Hashtbl.replace last_use t i)
        (Op.reads op @ Op.writes op))
    ops;
  let mapping = Hashtbl.create 16 in
  let free = ref pool in
  let active = ref [] in
  List.iteri
    (fun i op ->
      (* Free temps whose last use has passed. *)
      let expired, still =
        List.partition (fun (t, _) -> Hashtbl.find last_use t < i) !active
      in
      active := still;
      List.iter (fun (_, r) -> free := r :: !free) expired;
      List.iter
        (fun t ->
          if t >= Op.first_local && not (Hashtbl.mem mapping t) then
            match !free with
            | r :: rest ->
                free := rest;
                Hashtbl.replace mapping t r;
                active := (t, r) :: !active
            | [] -> raise (Register_pressure 0L))
        (Op.writes op @ Op.reads op))
    ops;
  fun t ->
    if t < Op.nb_globals then t
    else
      match Hashtbl.find_opt mapping t with
      | Some r -> r
      | None -> raise (Register_pressure (Int64.of_int t))

let binop_alu : Op.binop -> A.alu = function
  | Op.Add -> A.Add
  | Op.Sub -> A.Sub
  | Op.And -> A.And
  | Op.Or -> A.Orr
  | Op.Xor -> A.Eor
  | Op.Shl -> A.Lsl
  | Op.Shr -> A.Lsr
  | Op.Mul -> A.Mul

let cc_of_cond : Op.cond -> A.cc = function
  | Op.Eq -> A.Eq
  | Op.Ne -> A.Ne
  | Op.Lt -> A.Lt
  | Op.Le -> A.Le
  | Op.Gt -> A.Gt
  | Op.Ge -> A.Ge
  | Op.Ltu -> A.Lo
  | Op.Leu -> A.Ls
  | Op.Gtu -> A.Hi
  | Op.Geu -> A.Hs

let barrier_of_fence (config : Config.t) f =
  let lowering =
    match config.fences with
    | Config.Qemu_fences | Config.No_fences -> `Qemu
    | Config.Risotto_fences -> `Risotto
  in
  match Mapping.Schemes.lower_fence lowering f with
  | Some E.F_dmb_full -> Some A.Full
  | Some E.F_dmb_ld -> Some A.Ld
  | Some E.F_dmb_st -> Some A.St
  | Some _ -> Some A.Full
  | None -> None

(* Emission items: instructions, label definitions, and instructions
   whose branch target is a TCG label awaiting resolution. *)
type item =
  | I of A.t
  | L of int
  | Branch of (int -> A.t) * int  (* constructor applied to final index *)

let compile (config : Config.t) (b : Tcg.Block.t) =
  let reg =
    try allocate_temps b.Tcg.Block.ops
    with Register_pressure _ -> raise (Register_pressure b.Tcg.Block.guest_pc)
  in
  let items = ref [] in
  let next_backend_label = ref 1_000_000 in
  let emit it = items := it :: !items in
  let ins i = emit (I i) in
  let lower_cas ~old ~addr ~expect ~desired =
    match config.rmw with
    | Config.Native_casal ->
        (* casal needs the compare value in the destination register:
           stage through scratch, then move the old value out. *)
        ins (A.Mov (scratch0, reg expect));
        ins (A.Cas { acq = true; rel = true; cmp = scratch0; swap = reg desired; base = reg addr });
        ins (A.Mov (reg old, scratch0))
    | Config.Native_rmw2 ->
        let retry = !next_backend_label in
        let done_ = !next_backend_label + 1 in
        next_backend_label := !next_backend_label + 2;
        ins (A.Dmb A.Full);
        emit (L retry);
        ins (A.Ldxr (reg old, reg addr));
        ins (A.Cmp (reg old, A.R (reg expect)));
        emit (Branch ((fun ix -> A.Bcc (A.Ne, ix)), done_));
        ins (A.Stxr (scratch1, reg desired, reg addr));
        emit (Branch ((fun ix -> A.Cbnz (scratch1, ix)), retry));
        emit (L done_);
        ins (A.Dmb A.Full)
    | Config.Helper _ ->
        Fault.raise_ ~pc:b.Tcg.Block.guest_pc Fault.Backend_fault
          "Cas op under helper RMW strategy"
  in
  let lower_atomic ~op ~old ~addr ~src =
    match config.rmw with
    | Config.Native_casal ->
        (* LSE single-instruction atomics; like casal, their full-fence
           behaviour needs the corrected Arm-Cats model (§3.3). *)
        ins
          (match op with
          | `Xadd ->
              A.Ldadd { acq = true; rel = true; old = reg old; src = reg src; base = reg addr }
          | `Xchg ->
              A.Swp { acq = true; rel = true; old = reg old; src = reg src; base = reg addr })
    | Config.Native_rmw2 | Config.Helper _ ->
        (* Figure 7b's RMW2 form: DMBFF-bracketed exclusive loop. *)
        let retry = !next_backend_label in
        incr next_backend_label;
        ins (A.Dmb A.Full);
        emit (L retry);
        ins (A.Ldxr (reg old, reg addr));
        (match op with
        | `Xadd -> ins (A.Alu (A.Add, scratch0, reg old, A.R (reg src)))
        | `Xchg -> ins (A.Mov (scratch0, reg src)));
        ins (A.Stxr (scratch1, scratch0, reg addr));
        emit (Branch ((fun ix -> A.Cbnz (scratch1, ix)), retry));
        ins (A.Dmb A.Full)
  in
  List.iter
    (fun op ->
      match op with
      | Op.Movi (d, v) -> ins (A.Movz (reg d, v))
      | Op.Mov (d, s) -> ins (A.Mov (reg d, reg s))
      | Op.Binop (bop, d, a, b') ->
          ins (A.Alu (binop_alu bop, reg d, reg a, A.R (reg b')))
      | Op.Binopi (bop, d, a, imm) ->
          ins (A.Alu (binop_alu bop, reg d, reg a, A.I imm))
      | Op.Ld (d, base, off) -> ins (A.Ldr (reg d, reg base, off))
      | Op.St (s, base, off) -> ins (A.Str (reg s, reg base, off))
      | Op.Mb (f, _) -> (
          match barrier_of_fence config f with
          | Some b' -> ins (A.Dmb b')
          | None -> ())
      | Op.Setcond (c, d, a, b') ->
          ins (A.Cmp (reg a, A.R (reg b')));
          ins (A.Cset (reg d, cc_of_cond c))
      | Op.Brcond (c, a, b', l) ->
          ins (A.Cmp (reg a, A.R (reg b')));
          emit (Branch ((fun ix -> A.Bcc (cc_of_cond c, ix)), l))
      | Op.Set_label l -> emit (L l)
      | Op.Br l -> emit (Branch ((fun ix -> A.B ix), l))
      | Op.Cas { old; addr; expect; desired } ->
          lower_cas ~old ~addr ~expect ~desired
      | Op.Atomic { op; old; addr; src } -> lower_atomic ~op ~old ~addr ~src
      | Op.Call (f, args, ret) ->
          ins (A.Blr_helper (f, List.map reg args, Option.map reg ret))
      | Op.Host_call { func; args; ret } ->
          ins (A.Host_call { func; args = List.map reg args; ret = Option.map reg ret })
      | Op.Goto_tb pc -> ins (A.Goto_tb pc)
      | Op.Goto_ptr t -> ins (A.Goto_ptr (reg t))
      | Op.Exit_halt -> ins A.Exit_halt
      | Op.Trap (kind, context) -> ins (A.Trap { kind; context }))
    b.Tcg.Block.ops;
  let items = List.rev !items in
  (* Resolve labels to instruction indices. *)
  let label_index = Hashtbl.create 8 in
  let _ =
    List.fold_left
      (fun ix item ->
        match item with
        | L l ->
            Hashtbl.replace label_index l ix;
            ix
        | I _ | Branch _ -> ix + 1)
      0 items
  in
  let code =
    List.filter_map
      (function
        | L _ -> None
        | I i -> Some i
        | Branch (mk, l) -> (
            match Hashtbl.find_opt label_index l with
            | Some ix -> Some (mk ix)
            | None ->
                Fault.raise_ ~pc:b.Tcg.Block.guest_pc Fault.Backend_fault
                  (Printf.sprintf "unresolved label %d" l)))
      items
  in
  Array.of_list code
