(** The DBT frontend: decodes guest x86 instructions at a pc and emits a
    TCG translation block, applying the configured memory-model mapping
    scheme (Figure 2 or Figure 7a) to every shared-memory access.

    When the host linker is active and the pc is a resolved PLT entry,
    the frontend instead emits the marshaled native call sequence of
    Figure 11 (steps 4–5).

    Undecodable guest bytes never raise: a block whose first
    instruction fails to decode becomes a trap block ([Op.Trap
    "decode"]) that faults only the thread executing it, and a failure
    mid-block ends the block at the last good boundary.  The PLT slot
    of an import the IDL promised but the host lacks becomes a lazy
    [Op.Trap "link"] stub. *)

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
  inject : Inject.t;
}

val create : ?inject:Inject.t -> Config.t -> Image.Gelf.t -> Linker.Link.t -> t
(** [?inject] shares an injection state with the enclosing engine; by
    default a fresh one is built from [config.inject]. *)

(** Maximum guest instructions per translation block. *)
val max_block_insns : int

val translate : t -> int64 -> Tcg.Block.t
