(** Per-block tier-ladder profile: interp (tier 0) -> baseline native
    (tier 1) -> profile-guided superblock (tier 2).

    Every {!Tbchain} node carries one {!profile}.  The execution thread
    is its only writer: it records the block's observed static-exit
    successors and interpreter executions while the block is cold,
    drives the compile-request state machine when the block crosses
    [Config.jit_threshold], and tracks superblock side-exit rates for
    demotion.  The background compile domain never reads or writes a
    profile — publication goes through the engine's install queue and
    is generation-checked there, which is what keeps this module free
    of any synchronisation. *)

(** Where the block sits on the ladder.  [Cold] and [Queued] both
    execute through the TCG interpreter; [Queued] additionally has a
    compile request in flight and must not enqueue another.
    [Published] means a native TB was installed (tier 1, or tier 2 once
    a superblock is stitched on top).  [Degraded] is terminal: the
    backend refused the block and the interpreter serves it forever. *)
type state = Cold | Queued | Published | Degraded

type profile = {
  mutable state : state;
  mutable interp_execs : int;
  mutable a_pc : int64;  (** first observed static successor *)
  mutable a_n : int;
  mutable b_pc : int64;  (** second observed static successor *)
  mutable b_n : int;
  mutable other : int;  (** computed jumps, halts, overflow *)
  mutable super_exit : int64;  (** expected superblock exit; -1 unknown *)
  mutable super_entries : int;
  mutable super_side_exits : int;
  mutable deopt_count : int;
}

val fresh : unit -> profile

(** Back to [Cold] with every counter zeroed (reset / cache-load). *)
val reset : profile -> unit

(** Record the target of a static exit ([`Next pc]).  At most two
    distinct targets are tracked inline (a block has at most two
    Goto_tb seams); overflow dilutes dominance via [other]. *)
val record_succ : profile -> int64 -> unit

(** Record a non-stitchable exit (computed jump, halt): counts against
    dominance without naming a successor, because [Tcg.Block.concat]
    cannot stitch across it. *)
val record_other : profile -> unit

(** Total observed exits. *)
val samples : profile -> int

(** [dominant p] is [Some (pc, n)] when at least {!min_samples} exits
    were observed and the leading static successor took >= 60% of
    them — the profile-guided replacement for the static hottest-edge
    heuristic. *)
val dominant : profile -> (int64 * int) option

val min_samples : int

(** Observed-path heat for hot-block ranking: executions plus the
    leading-successor count, so hot-and-predictable blocks (the tier-2
    candidates) outrank merely hot ones. *)
val heat : execs:int -> profile -> int

(** {2 Superblock demotion} *)

val record_super_entry : profile -> unit

(** [record_super_exit p pc]: the installed superblock exited to [pc];
    counts a side exit when that differs from the expected exit. *)
val record_super_exit : profile -> int64 -> unit

(** True when the superblock side-exits more than half the time over at
    least {!min_super_entries} entries. *)
val should_deopt : profile -> bool

val min_super_entries : int
val max_deopts : int
val note_super_installed : profile -> expected_exit:int64 -> unit

(** Demote: bump the deopt count and retrain the successor profile. *)
val note_deopt : profile -> unit

(** False once the block burned {!max_deopts} demotions; formation
    stops retrying. *)
val retry_allowed : profile -> bool

(** {2 Metrics}

    Cold-path event counters under [tier.*]; incremented by the engine
    at request / install / promotion / demotion time. *)

val m_requests : Obs.Metrics.counter Lazy.t
val m_installs : Obs.Metrics.counter Lazy.t
val m_install_failures : Obs.Metrics.counter Lazy.t
val m_installs_dropped : Obs.Metrics.counter Lazy.t
val m_promotions : Obs.Metrics.counter Lazy.t
val m_deopts : Obs.Metrics.counter Lazy.t

(** Publish the aggregate tier gauges ([tier.interp_execs],
    [tier.installed], [tier.superblocks], [tier.deopts],
    [tier.queue_hwm], [tier.installs_dropped]); called from
    [Engine.publish_metrics]. *)
val publish :
  interp_execs:int ->
  installed:int ->
  superblocks:int ->
  deopts:int ->
  queue_hwm:int ->
  dropped:int ->
  unit
