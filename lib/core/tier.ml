(* Per-block tier-ladder bookkeeping.

   A block climbs interp (tier 0) -> baseline native (tier 1) ->
   superblock (tier 2).  This module owns the profile every Tbchain
   node carries: where the block sits on the ladder, how many times the
   interpreter has run it, and a two-slot inline counter of observed
   static-exit successors that drives both tier-2 trace formation and
   the Obs hot-block "heat" ranking.  Everything here is plain mutable
   state touched only by the execution thread; the background compile
   domain never sees a profile. *)

type state =
  | Cold  (* tier 0: interpreting, accumulating profile *)
  | Queued  (* compile requested; still interpreting until published *)
  | Published  (* tier 1+: native TB installed *)
  | Degraded  (* backend refused the block; interpreter permanently *)

type profile = {
  mutable state : state;
  mutable interp_execs : int;
  (* Observed successors of the block's *static* exits (Goto_tb seams).
     A block has at most two static exit targets, so two inline slots
     cover the common case exactly; computed jumps, halts and anything
     past the slots land in [other] and dilute dominance, which is the
     right bias: Tcg.Block.concat can only stitch static seams, so a
     trace must never follow a computed successor. *)
  mutable a_pc : int64;
  mutable a_n : int;
  mutable b_pc : int64;
  mutable b_n : int;
  mutable other : int;
  (* Tier-2 demotion bookkeeping: expected exit pc of the installed
     superblock ([-1L] = unknown), entries and early (side) exits since
     install, and how many times this block has been deoptimized. *)
  mutable super_exit : int64;
  mutable super_entries : int;
  mutable super_side_exits : int;
  mutable deopt_count : int;
}

let fresh () =
  {
    state = Cold;
    interp_execs = 0;
    a_pc = -1L;
    a_n = 0;
    b_pc = -1L;
    b_n = 0;
    other = 0;
    super_exit = -1L;
    super_entries = 0;
    super_side_exits = 0;
    deopt_count = 0;
  }

let reset p =
  p.state <- Cold;
  p.interp_execs <- 0;
  p.a_pc <- -1L;
  p.a_n <- 0;
  p.b_pc <- -1L;
  p.b_n <- 0;
  p.other <- 0;
  p.super_exit <- -1L;
  p.super_entries <- 0;
  p.super_side_exits <- 0;
  p.deopt_count <- 0

let reset_succs p =
  p.a_pc <- -1L;
  p.a_n <- 0;
  p.b_pc <- -1L;
  p.b_n <- 0;
  p.other <- 0

let record_succ p pc =
  if p.a_n = 0 || Int64.equal p.a_pc pc then begin
    p.a_pc <- pc;
    p.a_n <- p.a_n + 1
  end
  else if p.b_n = 0 || Int64.equal p.b_pc pc then begin
    p.b_pc <- pc;
    p.b_n <- p.b_n + 1
  end
  else p.other <- p.other + 1

let record_other p = p.other <- p.other + 1
let samples p = p.a_n + p.b_n + p.other

(* Dominance: at least [min_samples] observed exits and the leading
   static successor took >= 60% of them.  min_samples = 2 makes a
   tight loop dominant at its [trace_threshold]'th execution (the first
   threshold-1 executions each record one exit), so profile-guided
   formation fires at exactly the execution index the old static
   hottest-edge heuristic did. *)
let min_samples = 2

let dominant p =
  let total = samples p in
  if total < min_samples then None
  else
    let pc, n = if p.a_n >= p.b_n then (p.a_pc, p.a_n) else (p.b_pc, p.b_n) in
    if n > 0 && n * 5 >= total * 3 then Some (pc, n) else None

(* Observed-path heat: executions plus the leading successor count, so
   blocks that are both hot and predictable outrank merely hot ones.
   This is the tier-2 candidate ordering, exported through
   [Obs.Profile]. *)
let heat ~execs p = execs + max p.a_n p.b_n

(* Demotion: a superblock that side-exits more than half the time over
   a meaningful sample stopped paying for its stitched tail. *)
let min_super_entries = 16
let max_deopts = 2

let record_super_entry p = p.super_entries <- p.super_entries + 1

let record_super_exit p pc =
  if p.super_exit <> -1L && not (Int64.equal pc p.super_exit) then
    p.super_side_exits <- p.super_side_exits + 1

let should_deopt p =
  p.super_entries >= min_super_entries
  && p.super_side_exits * 2 > p.super_entries

let note_super_installed p ~expected_exit =
  p.super_exit <- expected_exit;
  p.super_entries <- 0;
  p.super_side_exits <- 0

(* After demotion the successor profile retrains from scratch: the old
   counts are what built the trace that just regressed. *)
let note_deopt p =
  p.deopt_count <- p.deopt_count + 1;
  p.super_exit <- -1L;
  p.super_entries <- 0;
  p.super_side_exits <- 0;
  reset_succs p

let retry_allowed p = p.deopt_count < max_deopts

(* Cold-path event counters under tier.*; the hot per-exec figures
   (interp executions, queue depth) are published as gauges by
   [Engine.publish_metrics] instead of being counted live. *)
let m_requests = lazy (Obs.Metrics.counter "tier.compile_requests")
let m_installs = lazy (Obs.Metrics.counter "tier.installs")
let m_install_failures = lazy (Obs.Metrics.counter "tier.install_failures")
let m_installs_dropped = lazy (Obs.Metrics.counter "tier.installs_dropped")
let m_promotions = lazy (Obs.Metrics.counter "tier.promotions")
let m_deopts = lazy (Obs.Metrics.counter "tier.deopts")

let g_interp_execs = lazy (Obs.Metrics.gauge "tier.interp_execs")
let g_installed = lazy (Obs.Metrics.gauge "tier.installed")
let g_superblocks = lazy (Obs.Metrics.gauge "tier.superblocks")
let g_deopts = lazy (Obs.Metrics.gauge "tier.deopts")
let g_queue_hwm = lazy (Obs.Metrics.gauge "tier.queue_hwm")
let g_dropped = lazy (Obs.Metrics.gauge "tier.installs_dropped")

let publish ~interp_execs ~installed ~superblocks ~deopts ~queue_hwm ~dropped =
  Obs.Metrics.set (Lazy.force g_interp_execs) interp_execs;
  Obs.Metrics.set (Lazy.force g_installed) installed;
  Obs.Metrics.set (Lazy.force g_superblocks) superblocks;
  Obs.Metrics.set (Lazy.force g_deopts) deopts;
  Obs.Metrics.set (Lazy.force g_queue_hwm) queue_hwm;
  Obs.Metrics.set (Lazy.force g_dropped) dropped
