(** DBT configurations: the four setups of the paper's evaluation
    (§7.1) plus the knobs they are made of. *)

(** Which fences the frontend emits around guest accesses. *)
type fence_scheme =
  | Qemu_fences  (** Figure 2: [Fmr; ld], [Fmw; st] *)
  | Risotto_fences  (** Figure 7a: [ld; Frm], [Fww; st] *)
  | No_fences  (** incorrect oracle: no ordering enforcement *)

(** How guest atomic RMWs are translated. *)
type rmw_strategy =
  | Helper of [ `Gcc9 | `Gcc10 ]
      (** Qemu: call into a helper built on GCC atomics — an
          [ldaxr]/[stlxr] pair with GCC 9, [casal] with GCC 10 (§3.1) *)
  | Native_casal  (** Risotto: direct [casal] translation (§6.3) *)
  | Native_rmw2  (** Risotto: [DMBFF; LDXR/STXR; DMBFF] (Figure 7b) *)

type t = {
  name : string;
  fences : fence_scheme;
  passes : Tcg.Pipeline.pass list;
  rmw : rmw_strategy;
  host_linker : bool;
  inject : Inject.plan;  (** fault-injection plan; [[]] in all presets *)
  chain : bool;
      (** patch static block exits into direct block-to-block jumps
          (QEMU-style TB chaining).  Chaining executes exactly the same
          translated code in the same order, so results and guest
          cycles are unchanged; [false] gives the unchained dispatch
          baseline.  On in all presets. *)
  trace_threshold : int;
      (** tier-2 threshold: once a block has executed this many times
          and its {!Tier} profile shows a dominant observed successor,
          stitch the dominant path into one superblock and re-run the
          optimizer pipeline across the former block boundaries.  [0]
          (the default in all presets) disables superblock formation;
          requires [chain]. *)
  jit_threshold : int;
      (** tier-0/1 boundary: with [0] (the default in all presets)
          every block is backend-compiled synchronously at first
          translation, exactly the pre-tiered behaviour.  With [n > 0],
          fresh blocks run on the TCG interpreter and a backend compile
          is requested only once the block's execution count reaches
          [n]. *)
  sync_compile : bool;
      (** [true] (the default in all presets): compile requests run
          inline on the execution thread — fully deterministic.
          [false]: requests go to the background install service
          ({!Parallel.Pool.service}) and the thread keeps interpreting
          until the compiled TB is published.  Only meaningful when
          [jit_threshold > 0]. *)
}

(** Vanilla Qemu 6.1.0. *)
val qemu : t

(** Qemu with fence generation disabled (incorrect; performance
    oracle). *)
val no_fences : t

(** Qemu with the verified mappings and fence merging. *)
val tcg_ver : t

(** Full Risotto: verified mappings, fence merging, host linker, native
    CAS. *)
val risotto : t

val all : t list
