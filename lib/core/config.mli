(** DBT configurations: the four setups of the paper's evaluation
    (§7.1) plus the knobs they are made of. *)

(** Which fences the frontend emits around guest accesses. *)
type fence_scheme =
  | Qemu_fences  (** Figure 2: [Fmr; ld], [Fmw; st] *)
  | Risotto_fences  (** Figure 7a: [ld; Frm], [Fww; st] *)
  | No_fences  (** incorrect oracle: no ordering enforcement *)

(** How guest atomic RMWs are translated. *)
type rmw_strategy =
  | Helper of [ `Gcc9 | `Gcc10 ]
      (** Qemu: call into a helper built on GCC atomics — an
          [ldaxr]/[stlxr] pair with GCC 9, [casal] with GCC 10 (§3.1) *)
  | Native_casal  (** Risotto: direct [casal] translation (§6.3) *)
  | Native_rmw2  (** Risotto: [DMBFF; LDXR/STXR; DMBFF] (Figure 7b) *)

type t = {
  name : string;
  fences : fence_scheme;
  passes : Tcg.Pipeline.pass list;
  rmw : rmw_strategy;
  host_linker : bool;
  inject : Inject.plan;  (** fault-injection plan; [[]] in all presets *)
  chain : bool;
      (** patch static block exits into direct block-to-block jumps
          (QEMU-style TB chaining).  Chaining executes exactly the same
          translated code in the same order, so results and guest
          cycles are unchanged; [false] gives the unchained dispatch
          baseline.  On in all presets. *)
  trace_threshold : int;
      (** hot-trace superblocks: once a block has executed this many
          times, stitch its hottest chain of blocks into one superblock
          and re-run the optimizer pipeline across the former block
          boundaries.  [0] (the default in all presets) disables
          superblock formation; requires [chain] since traces are
          discovered through patched-edge hit counts. *)
}

(** Vanilla Qemu 6.1.0. *)
val qemu : t

(** Qemu with fence generation disabled (incorrect; performance
    oracle). *)
val no_fences : t

(** Qemu with the verified mappings and fence merging. *)
val tcg_ver : t

(** Full Risotto: verified mappings, fence merging, host linker, native
    CAS. *)
val risotto : t

val all : t list
