(** DBT configurations: the four setups of the paper's evaluation
    (§7.1) plus the knobs they are made of. *)

(** Which fences the frontend emits around guest accesses. *)
type fence_scheme =
  | Qemu_fences  (** Figure 2: [Fmr; ld], [Fmw; st] *)
  | Risotto_fences  (** Figure 7a: [ld; Frm], [Fww; st] *)
  | No_fences  (** incorrect oracle: no ordering enforcement *)

(** How guest atomic RMWs are translated. *)
type rmw_strategy =
  | Helper of [ `Gcc9 | `Gcc10 ]
      (** Qemu: call into a helper built on GCC atomics — an
          [ldaxr]/[stlxr] pair with GCC 9, [casal] with GCC 10 (§3.1) *)
  | Native_casal  (** Risotto: direct [casal] translation (§6.3) *)
  | Native_rmw2  (** Risotto: [DMBFF; LDXR/STXR; DMBFF] (Figure 7b) *)

type t = {
  name : string;
  fences : fence_scheme;
  passes : Tcg.Pipeline.pass list;
  rmw : rmw_strategy;
  host_linker : bool;
  inject : Inject.plan;  (** fault-injection plan; [[]] in all presets *)
}

(** Vanilla Qemu 6.1.0. *)
val qemu : t

(** Qemu with fence generation disabled (incorrect; performance
    oracle). *)
val no_fences : t

(** Qemu with the verified mappings and fence merging. *)
val tcg_ver : t

(** Full Risotto: verified mappings, fence merging, host linker, native
    CAS. *)
val risotto : t

val all : t list
