type fence_scheme = Qemu_fences | Risotto_fences | No_fences
type rmw_strategy = Helper of [ `Gcc9 | `Gcc10 ] | Native_casal | Native_rmw2

type t = {
  name : string;
  fences : fence_scheme;
  passes : Tcg.Pipeline.pass list;
  rmw : rmw_strategy;
  host_linker : bool;
  inject : Inject.plan;
  chain : bool;
  trace_threshold : int;
  jit_threshold : int;
  sync_compile : bool;
}

let qemu =
  {
    name = "qemu";
    fences = Qemu_fences;
    passes = Tcg.Pipeline.qemu_default;
    rmw = Helper `Gcc10;
    host_linker = false;
    inject = [];
    chain = true;
    trace_threshold = 0;
    jit_threshold = 0;
    sync_compile = true;
  }

let no_fences = { qemu with name = "no-fences"; fences = No_fences }

let tcg_ver =
  {
    qemu with
    name = "tcg-ver";
    fences = Risotto_fences;
    passes = Tcg.Pipeline.risotto_default;
  }

let risotto =
  {
    tcg_ver with
    name = "risotto";
    rmw = Native_casal;
    host_linker = true;
  }

let all = [ qemu; no_fences; tcg_ver; risotto ]
