let log_src = Logs.Src.create "risotto.engine" ~doc:"Risotto DBT engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  mutable blocks_translated : int;
  mutable cache_hits : int;
  mutable lookups : int;
  mutable fences_emitted : int;
  mutable tcg_ops_before_opt : int;
  mutable tcg_ops_after_opt : int;
  mutable chained : int;  (** block exits whose target was already cached *)
  mutable interp_fallbacks : int;
      (** blocks the backend could not compile, demoted to the TCG
          interpreter *)
  mutable traps : int;  (** guest threads finished by a fault *)
}

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
  frontend : Frontend.t;
  mem : Memsys.Mem.t;
  shared : Arm.Machine.shared;
  code_cache : (int64, Arm.Insn.t array) Hashtbl.t;
  tcg_cache : (int64, Tcg.Block.t) Hashtbl.t;
  fallback_cache : (int64, Tcg.Block.t) Hashtbl.t;
      (* blocks running in degraded (interpreted) mode *)
  inject : Inject.t;
  stats : stats;
  pending_spawns : (int * int64 * int64) Queue.t;  (* tid, entry, arg *)
  next_tid : int ref;
}

type guest_thread = {
  arm : Arm.Machine.thread;
  mutable pc : int64;
  mutable finished : bool;
  mutable trap : Fault.t option;
}

let create ?cost ?idl config image =
  (* Default IDL: everything the host library provides (when the linker
     is enabled).  Pass [~idl:[]] explicitly to link nothing. *)
  let idl =
    match idl with
    | Some sigs -> sigs
    | None ->
        if config.Config.host_linker then
          Linker.Idl.parse Linker.Hostlib.idl_text
        else []
  in
  let links = Linker.Link.resolve image idl in
  let mem = Memsys.Mem.create () in
  let shared = Arm.Machine.create_shared ?cost mem in
  let pending_spawns = Queue.create () in
  let next_tid = ref 0 in
  let inject = Inject.create config.Config.inject in
  Helpers.register_all
    ~on_clone:(fun ~entry ~arg ->
      let tid = !next_tid in
      incr next_tid;
      Queue.push (tid, entry, arg) pending_spawns;
      Int64.of_int tid)
    ~inject shared;
  let t = {
    config;
    image;
    links;
    frontend = Frontend.create ~inject config image links;
    mem;
    shared;
    code_cache = Hashtbl.create 64;
    tcg_cache = Hashtbl.create 64;
    fallback_cache = Hashtbl.create 8;
    inject;
    stats =
      {
        blocks_translated = 0;
        cache_hits = 0;
        lookups = 0;
        fences_emitted = 0;
        tcg_ops_before_opt = 0;
        tcg_ops_after_opt = 0;
        chained = 0;
        interp_fallbacks = 0;
        traps = 0;
      };
    pending_spawns;
    next_tid;
  }
  in
  t

let config t = t.config
let memory t = t.mem
let stats t = t.stats
let links t = t.links
let injector t = t.inject
let stack_top tid = Int64.sub 0x8000_0000L (Int64.of_int (tid * 0x10000))

type compiled = Native of Arm.Insn.t array | Interp_only of Tcg.Block.t

let translate t pc =
  let raw = Frontend.translate t.frontend pc in
  Log.info (fun m ->
      m "translate tb@0x%Lx: %d guest insns -> %d tcg ops" pc
        raw.Tcg.Block.guest_insns (Tcg.Block.op_count raw));
  let optimized = Tcg.Pipeline.run t.config.Config.passes raw in
  t.stats.blocks_translated <- t.stats.blocks_translated + 1;
  t.stats.tcg_ops_before_opt <-
    t.stats.tcg_ops_before_opt + Tcg.Block.op_count raw;
  t.stats.tcg_ops_after_opt <-
    t.stats.tcg_ops_after_opt + Tcg.Block.op_count optimized;
  Hashtbl.replace t.tcg_cache pc optimized;
  let compiled =
    if Inject.fire t.inject Inject.Compile then
      Error (Fault.make ~pc Fault.Backend_fault "injected compile fault")
    else
      match Backend.compile t.config optimized with
      | code -> Ok code
      | exception Fault.Fault f -> Error (Fault.locate ~pc f)
      | exception Backend.Register_pressure p ->
          Error
            (Fault.make ~pc Fault.Backend_fault
               (Printf.sprintf "register pressure in block 0x%Lx" p))
  in
  match compiled with
  | Ok code ->
      t.stats.fences_emitted <-
        t.stats.fences_emitted
        + Array.fold_left
            (fun n i -> match i with Arm.Insn.Dmb _ -> n + 1 | _ -> n)
            0 code;
      Hashtbl.replace t.code_cache pc code;
      Native code
  | Error f ->
      (* Degraded mode: the block stays on the TCG interpreter.  The
         run keeps its semantics (the interpreter and backend agree by
         construction), only this block's speed is lost. *)
      Log.warn (fun m ->
          m "tb@0x%Lx: backend failed (%s); falling back to interpreter" pc
            (Fault.to_string f));
      t.stats.interp_fallbacks <- t.stats.interp_fallbacks + 1;
      Hashtbl.replace t.fallback_cache pc optimized;
      Interp_only optimized

let fetch t pc =
  t.stats.lookups <- t.stats.lookups + 1;
  match Hashtbl.find_opt t.code_cache pc with
  | Some code ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      Native code
  | None -> (
      match Hashtbl.find_opt t.fallback_cache pc with
      | Some b ->
          t.stats.cache_hits <- t.stats.cache_hits + 1;
          Interp_only b
      | None -> translate t pc)

let lookup_block t pc =
  match fetch t pc with
  | Native code -> code
  | Interp_only _ ->
      Fault.raise_ ~pc Fault.Backend_fault
        "block is interpreter-only (backend failed to compile it)"

let tcg_block t pc =
  ignore (fetch t pc);
  Hashtbl.find t.tcg_cache pc

let spawn t ~tid ~entry ?(regs = []) () =
  t.next_tid := max !(t.next_tid) (tid + 1);
  let arm = Arm.Machine.create_thread tid in
  arm.Arm.Machine.regs.(X86.Reg.index X86.Reg.RSP) <- stack_top tid;
  List.iter
    (fun (r, v) -> arm.Arm.Machine.regs.(X86.Reg.index r) <- v)
    regs;
  { arm; pc = entry; finished = false; trap = None }

(* Threads created by the guest's clone syscall since the last drain. *)
let drain_spawns t =
  let spawned = ref [] in
  while not (Queue.is_empty t.pending_spawns) do
    let tid, entry, arg = Queue.pop t.pending_spawns in
    let g = spawn t ~tid ~entry ~regs:[ (X86.Reg.RDI, arg) ] () in
    spawned := g :: !spawned
  done;
  List.rev !spawned

let fault_of_machine_trap pc = function
  | Arm.Machine.Trap_insn { kind; context } ->
      Fault.make ~pc (Fault.of_tag kind) context
  | Arm.Machine.Unknown_helper name ->
      Fault.make ~pc Fault.Helper_fault ("unknown helper " ^ name)
  | Arm.Machine.Unknown_host func ->
      Fault.make ~pc Fault.Link_fault ("unknown host function " ^ func)
  | Arm.Machine.Runaway -> Fault.make ~pc Fault.Watchdog "runaway block"
  | Arm.Machine.Fell_through i ->
      Fault.make ~pc Fault.Translate_fault
        (Printf.sprintf "block fell through at index %d" i)

(* Record a fault against one guest thread; only that thread stops. *)
let fault_thread t g f =
  let f = Fault.locate ~pc:g.pc ~tid:g.arm.Arm.Machine.tid f in
  t.stats.traps <- t.stats.traps + 1;
  Log.warn (fun m ->
      m "T%d trapped: %s" g.arm.Arm.Machine.tid (Fault.to_string f));
  g.trap <- Some f;
  g.finished <- true

(* Degraded execution: run the TCG block in the interpreter against
   this thread's pinned state.  Globals 0–15 mirror the guest GP
   registers and cmp_a/cmp_b the lazy flags, so they are copied in and
   out around the block; helpers dispatch through the machine's
   registry (so syscalls, RMW helpers and host calls behave exactly as
   in native execution). *)
let step_interp t g b =
  let arm = g.arm in
  let helpers name args =
    match Arm.Machine.find_helper t.shared name with
    | Some h -> h t.shared arm args
    | None -> raise (Tcg.Interp.No_helper name)
  in
  let env = Tcg.Interp.create_env ~helpers t.mem in
  for r = 0 to 15 do
    env.Tcg.Interp.temps.(Tcg.Op.guest_reg r) <- arm.Arm.Machine.regs.(r)
  done;
  let ca, cb = arm.Arm.Machine.cmp in
  env.Tcg.Interp.temps.(Tcg.Op.cmp_a) <- ca;
  env.Tcg.Interp.temps.(Tcg.Op.cmp_b) <- cb;
  let res = Tcg.Interp.exec_block env b in
  for r = 0 to 15 do
    arm.Arm.Machine.regs.(r) <- env.Tcg.Interp.temps.(Tcg.Op.guest_reg r)
  done;
  arm.Arm.Machine.cmp <-
    (env.Tcg.Interp.temps.(Tcg.Op.cmp_a), env.Tcg.Interp.temps.(Tcg.Op.cmp_b));
  res

let exec t g = function
  | Native code -> (
      Log.debug (fun m ->
          m "T%d exec tb@0x%Lx (%d host insns)" g.arm.Arm.Machine.tid g.pc
            (Array.length code));
      match Arm.Machine.exec_block t.shared g.arm code with
      | Arm.Machine.Next_tb pc -> `Next pc
      | Arm.Machine.Jump pc -> `Jump pc
      | Arm.Machine.Halted -> `Halt
      | Arm.Machine.Trapped tr -> `Trap (fault_of_machine_trap g.pc tr)
      | exception Fault.Fault f -> `Trap f)
  | Interp_only b -> (
      Log.debug (fun m ->
          m "T%d interp tb@0x%Lx (%d tcg ops)" g.arm.Arm.Machine.tid g.pc
            (Tcg.Block.op_count b));
      match step_interp t g b with
      (* Helpers run mid-block (exit syscall) may halt the thread. *)
      | Tcg.Interp.Next_tb pc ->
          if g.arm.Arm.Machine.halted then `Halt else `Next pc
      | Tcg.Interp.Jump pc ->
          if g.arm.Arm.Machine.halted then `Halt else `Jump pc
      | Tcg.Interp.Halted -> `Halt
      | Tcg.Interp.Trapped (kind, context) ->
          `Trap (Fault.make ~pc:g.pc (Fault.of_tag kind) context)
      | exception Fault.Fault f -> `Trap f)

let step_block t g =
  if not g.finished then
    match
      match fetch t g.pc with
      | compiled -> exec t g compiled
      | exception Fault.Fault f -> `Trap f
    with
    | `Next pc ->
        (* A static exit whose target is already translated would be
           patched into a direct jump by a chaining DBT: count it. *)
        if Hashtbl.mem t.code_cache pc then
          t.stats.chained <- t.stats.chained + 1;
        g.pc <- pc
    | `Jump pc -> g.pc <- pc
    | `Halt ->
        Log.debug (fun m -> m "T%d halted" g.arm.Arm.Machine.tid);
        g.finished <- true
    | `Trap f -> fault_thread t g f

type outcome =
  | Completed of guest_thread list
  | Exhausted of {
      blocks : int;
      live_threads : int;
      threads : guest_thread list;
    }

let threads = function
  | Completed ts -> ts
  | Exhausted { threads; _ } -> threads

(* Round-robin at block granularity; guest clone syscalls may add
   threads between rounds. *)
let run_concurrent ?(max_blocks = 50_000_000) t threads0 =
  let all = ref threads0 in
  let n = ref 0 in
  let live () = List.filter (fun g -> not g.finished) !all in
  while live () <> [] && !n < max_blocks do
    List.iter
      (fun g ->
        if not g.finished then begin
          incr n;
          step_block t g
        end)
      !all;
    match drain_spawns t with
    | [] -> ()
    | spawned -> all := !all @ spawned
  done;
  match live () with
  | [] -> Completed !all
  | alive ->
      Log.warn (fun m ->
          m "watchdog: block budget %d exhausted with %d live thread(s)"
            max_blocks (List.length alive));
      Exhausted
        { blocks = !n; live_threads = List.length alive; threads = !all }

let run_thread ?max_blocks t g = ignore (run_concurrent ?max_blocks t [ g ])

let run ?max_blocks ?regs t =
  let g = spawn t ~tid:0 ~entry:t.image.Image.Gelf.entry ?regs () in
  run_thread ?max_blocks t g;
  g

let reg g r = g.arm.Arm.Machine.regs.(X86.Reg.index r)
let cycles g = g.arm.Arm.Machine.cycles
let trap g = g.trap

(* ------------------------------------------------------------------ *)
(* Persistent translation cache: translated host code keyed by guest
   pc, reusable across runs (cf. the translation-caching systems in the
   paper's related work, e.g. WOW64).  The cache is only valid for the
   configuration that produced it. *)

let cache_magic = "RSTC1\n"

let save_cache t path =
  let b = Buffer.create 4096 in
  Buffer.add_string b cache_magic;
  Buffer.add_char b (Char.chr (String.length t.config.Config.name));
  Buffer.add_string b t.config.Config.name;
  let entries =
    Hashtbl.fold (fun pc code acc -> (pc, code) :: acc) t.code_cache []
    |> List.sort compare
  in
  Buffer.add_string b (Printf.sprintf "%08d" (List.length entries));
  List.iter
    (fun (pc, code) ->
      Buffer.add_string b (Printf.sprintf "%016Lx" pc);
      Arm.Encode.encode_block b code)
    entries;
  (* Write-to-temp then rename: a crash mid-write must not leave a
     truncated cache under the real name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents b));
  Sys.rename tmp path;
  List.length entries

let load_cache t path =
  let corrupt fmt =
    Printf.ksprintf (fun m -> Fault.raise_ Fault.Cache_corrupt m) fmt
  in
  let parse s =
    let pos = ref 0 in
    let take n =
      if !pos + n > String.length s then corrupt "truncated";
      let r = String.sub s !pos n in
      pos := !pos + n;
      r
    in
    if take (String.length cache_magic) <> cache_magic then corrupt "bad magic";
    let name_len = Char.code (take 1).[0] in
    let name = take name_len in
    if name <> t.config.Config.name then
      corrupt "cache was built for config %S, engine runs %S" name
        t.config.Config.name;
    let count =
      match int_of_string_opt (take 8) with
      | Some n when n >= 0 -> n
      | Some _ | None -> corrupt "bad entry count"
    in
    (* Stage into a private table: a fault mid-parse must not leave a
       half-loaded code cache behind. *)
    let staged = Hashtbl.create (max 16 count) in
    for i = 1 to count do
      if Inject.fire t.inject Inject.Cache_read then
        corrupt "injected cache-read fault at entry %d" i;
      let pc =
        match Int64.of_string_opt ("0x" ^ take 16) with
        | Some pc -> pc
        | None -> corrupt "bad pc in entry %d" i
      in
      match Arm.Decode.decode_block s !pos with
      | code, pos' ->
          pos := pos';
          Hashtbl.replace staged pc code
      | exception Arm.Decode.Bad_encoding (at, msg) ->
          corrupt "entry %d (offset %d): %s" i at msg
    done;
    staged
  in
  match
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse s
  with
  | staged ->
      Hashtbl.iter (Hashtbl.replace t.code_cache) staged;
      Ok (Hashtbl.length staged)
  | exception Fault.Fault f ->
      Log.warn (fun m ->
          m "persistent cache %s unusable (%s); starting cold" path
            (Fault.to_string f));
      Error f
  | exception Sys_error msg ->
      let f = Fault.make Fault.Cache_corrupt msg in
      Log.warn (fun m ->
          m "persistent cache %s unreadable (%s); starting cold" path msg);
      Error f
