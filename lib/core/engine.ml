let log_src = Logs.Src.create "risotto.engine" ~doc:"Risotto DBT engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Observability handles.  Counters that are cheap and cold (translate,
   faults, superblocks) are mirrored into the registry live; the hot
   dispatch counters stay plain [stats] fields and are published as
   gauges by {!publish_metrics} so the dispatch loop pays nothing for
   them. *)
let m_translate_ns = lazy (Obs.Metrics.histogram "engine.translate.ns")
let m_compile_ns = lazy (Obs.Metrics.histogram "engine.compile.ns")
let m_block_cycles = lazy (Obs.Metrics.histogram "engine.block.cycles")
let m_translated = lazy (Obs.Metrics.counter "engine.blocks_translated")
let m_fallbacks = lazy (Obs.Metrics.counter "engine.interp_fallbacks")
let m_traps = lazy (Obs.Metrics.counter "engine.traps")
let m_superblocks = lazy (Obs.Metrics.counter "engine.superblocks")

type stats = {
  mutable blocks_translated : int;
  mutable blocks_executed : int;  (** dispatches through the execute loop *)
  mutable cache_hits : int;
  mutable lookups : int;
  mutable fences_emitted : int;
  mutable tcg_ops_before_opt : int;
  mutable tcg_ops_after_opt : int;
  mutable chained : int;  (** block exits patched into direct edges *)
  mutable chain_hits : int;  (** dispatches served by a patched edge *)
  mutable jmp_cache_hits : int;
      (** dispatches served by the per-thread jump cache *)
  mutable superblocks : int;  (** hot traces stitched and installed *)
  mutable interp_fallbacks : int;
      (** blocks the backend could not compile, demoted to the TCG
          interpreter *)
  mutable traps : int;  (** guest threads finished by a fault *)
  mutable cache_quarantined : int;
      (** persistent-cache entries that failed their checksum and were
          dropped (the block retranslates on demand) *)
}

(* How the block at a pc executes: natively, or on the TCG interpreter
   because the backend could not compile it. *)
type compiled = Native of Arm.Insn.t array | Interp_only of Tcg.Block.t

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
  frontend : Frontend.t;
  mem : Memsys.Mem.t;
  shared : Arm.Machine.shared;
  tbs : compiled Tbchain.t;
      (* the code cache: every translated block (native or degraded),
         plus chain edges and hot-trace state *)
  tcg_cache : (int64, Tcg.Block.t) Hashtbl.t;
      (* optimized TCG per pc, kept for inspection and trace stitching *)
  inject : Inject.t;
  stats : stats;
  pending_spawns : (int * int64 * int64) Queue.t;  (* tid, entry, arg *)
  next_tid : int ref;
}

type guest_thread = {
  arm : Arm.Machine.thread;
  mutable pc : int64;
  mutable finished : bool;
  mutable trap : Fault.t option;
  jcache : compiled Tbchain.jcache;
  mutable next_tb : compiled Tbchain.node option;
      (* chained target patched in by the previous block's exit *)
  mutable next_gen : int;  (* chain-table generation [next_tb] is valid for *)
}

let create ?cost ?idl config image =
  (* Default IDL: everything the host library provides (when the linker
     is enabled).  Pass [~idl:[]] explicitly to link nothing. *)
  let idl =
    match idl with
    | Some sigs -> sigs
    | None ->
        if config.Config.host_linker then
          Linker.Idl.parse Linker.Hostlib.idl_text
        else []
  in
  let links = Linker.Link.resolve image idl in
  let mem = Memsys.Mem.create () in
  let shared = Arm.Machine.create_shared ?cost mem in
  let pending_spawns = Queue.create () in
  let next_tid = ref 0 in
  let inject = Inject.create config.Config.inject in
  Helpers.register_all
    ~on_clone:(fun ~entry ~arg ->
      let tid = !next_tid in
      incr next_tid;
      Queue.push (tid, entry, arg) pending_spawns;
      Int64.of_int tid)
    ~inject shared;
  let t = {
    config;
    image;
    links;
    frontend = Frontend.create ~inject config image links;
    mem;
    shared;
    tbs = Tbchain.create ~chain:config.Config.chain ();
    (* Sized like the chain table: real images translate far more than
       the 64 buckets the old caches started with. *)
    tcg_cache = Hashtbl.create 4096;
    inject;
    stats =
      {
        blocks_translated = 0;
        blocks_executed = 0;
        cache_hits = 0;
        lookups = 0;
        fences_emitted = 0;
        tcg_ops_before_opt = 0;
        tcg_ops_after_opt = 0;
        chained = 0;
        chain_hits = 0;
        jmp_cache_hits = 0;
        superblocks = 0;
        interp_fallbacks = 0;
        traps = 0;
        cache_quarantined = 0;
      };
    pending_spawns;
    next_tid;
  }
  in
  t

let config t = t.config
let memory t = t.mem
let stats t = t.stats
let links t = t.links
let injector t = t.inject
let chain_generation t = Tbchain.generation t.tbs
let chained_edges t = Tbchain.edge_count t.tbs
let stack_top tid = Int64.sub 0x8000_0000L (Int64.of_int (tid * 0x10000))

let reset t =
  Obs.Trace.instant ~cat:"engine" "reset";
  Tbchain.flush t.tbs;
  Hashtbl.reset t.tcg_cache

let translate t pc =
  Obs.Trace.with_span ~cat:"engine"
    ~args:(fun () -> [ ("pc", Printf.sprintf "0x%Lx" pc) ])
    "translate"
  @@ fun () ->
  Obs.Profile.time (Lazy.force m_translate_ns) @@ fun () ->
  let raw =
    Obs.Trace.with_span ~cat:"engine" "frontend" (fun () ->
        Frontend.translate t.frontend pc)
  in
  Log.info (fun m ->
      m "translate tb@0x%Lx: %d guest insns -> %d tcg ops" pc
        raw.Tcg.Block.guest_insns (Tcg.Block.op_count raw));
  let optimized = Tcg.Pipeline.run t.config.Config.passes raw in
  t.stats.blocks_translated <- t.stats.blocks_translated + 1;
  Obs.Metrics.incr (Lazy.force m_translated);
  t.stats.tcg_ops_before_opt <-
    t.stats.tcg_ops_before_opt + Tcg.Block.op_count raw;
  t.stats.tcg_ops_after_opt <-
    t.stats.tcg_ops_after_opt + Tcg.Block.op_count optimized;
  Hashtbl.replace t.tcg_cache pc optimized;
  let compiled =
    if Inject.fire t.inject Inject.Compile then
      Error (Fault.make ~pc Fault.Backend_fault "injected compile fault")
    else
      match
        Obs.Trace.with_span ~cat:"engine" "backend" (fun () ->
            Obs.Profile.time (Lazy.force m_compile_ns) (fun () ->
                Backend.compile t.config optimized))
      with
      | code -> Ok code
      | exception Fault.Fault f -> Error (Fault.locate ~pc f)
      | exception Backend.Register_pressure p ->
          Error
            (Fault.make ~pc Fault.Backend_fault
               (Printf.sprintf "register pressure in block 0x%Lx" p))
  in
  let body =
    match compiled with
    | Ok code ->
        t.stats.fences_emitted <-
          t.stats.fences_emitted
          + Array.fold_left
              (fun n i -> match i with Arm.Insn.Dmb _ -> n + 1 | _ -> n)
              0 code;
        Native code
    | Error f ->
        (* Degraded mode: the block stays on the TCG interpreter.  The
           run keeps its semantics (the interpreter and backend agree by
           construction), only this block's speed is lost. *)
        Log.warn (fun m ->
            m "tb@0x%Lx: backend failed (%s); falling back to interpreter" pc
              (Fault.to_string f));
        t.stats.interp_fallbacks <- t.stats.interp_fallbacks + 1;
        Obs.Metrics.incr (Lazy.force m_fallbacks);
        Interp_only optimized
  in
  Tbchain.insert t.tbs pc body

let fetch t pc =
  t.stats.lookups <- t.stats.lookups + 1;
  match Tbchain.find t.tbs pc with
  | Some n ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      n.Tbchain.body
  | None -> (translate t pc).Tbchain.body

let lookup_block t pc =
  match fetch t pc with
  | Native code -> code
  | Interp_only _ ->
      Fault.raise_ ~pc Fault.Backend_fault
        "block is interpreter-only (backend failed to compile it)"

let tcg_block t pc =
  ignore (fetch t pc);
  Hashtbl.find t.tcg_cache pc

let spawn t ~tid ~entry ?(regs = []) () =
  t.next_tid := max !(t.next_tid) (tid + 1);
  let arm = Arm.Machine.create_thread tid in
  arm.Arm.Machine.regs.(X86.Reg.index X86.Reg.RSP) <- stack_top tid;
  List.iter
    (fun (r, v) -> arm.Arm.Machine.regs.(X86.Reg.index r) <- v)
    regs;
  {
    arm;
    pc = entry;
    finished = false;
    trap = None;
    jcache = Tbchain.jcache_create t.tbs;
    next_tb = None;
    next_gen = Tbchain.generation t.tbs;
  }

(* Threads created by the guest's clone syscall since the last drain. *)
let drain_spawns t =
  let spawned = ref [] in
  while not (Queue.is_empty t.pending_spawns) do
    let tid, entry, arg = Queue.pop t.pending_spawns in
    let g = spawn t ~tid ~entry ~regs:[ (X86.Reg.RDI, arg) ] () in
    spawned := g :: !spawned
  done;
  List.rev !spawned

let fault_of_machine_trap pc = function
  | Arm.Machine.Trap_insn { kind; context } ->
      Fault.make ~pc (Fault.of_tag kind) context
  | Arm.Machine.Unknown_helper name ->
      Fault.make ~pc Fault.Helper_fault ("unknown helper " ^ name)
  | Arm.Machine.Unknown_host func ->
      Fault.make ~pc Fault.Link_fault ("unknown host function " ^ func)
  | Arm.Machine.Runaway -> Fault.make ~pc Fault.Watchdog "runaway block"
  | Arm.Machine.Fell_through i ->
      Fault.make ~pc Fault.Translate_fault
        (Printf.sprintf "block fell through at index %d" i)

(* Record a fault against one guest thread; only that thread stops. *)
let fault_thread t g f =
  let f = Fault.locate ~pc:g.pc ~tid:g.arm.Arm.Machine.tid f in
  t.stats.traps <- t.stats.traps + 1;
  Obs.Metrics.incr (Lazy.force m_traps);
  Obs.Trace.instant ~cat:"engine"
    ~args:(fun () -> [ ("fault", Fault.to_string f) ])
    "trap";
  Log.warn (fun m ->
      m "T%d trapped: %s" g.arm.Arm.Machine.tid (Fault.to_string f));
  g.trap <- Some f;
  g.finished <- true

(* Degraded execution: run the TCG block in the interpreter against
   this thread's pinned state.  Globals 0–15 mirror the guest GP
   registers and cmp_a/cmp_b the lazy flags, so they are copied in and
   out around the block; helpers dispatch through the machine's
   registry (so syscalls, RMW helpers and host calls behave exactly as
   in native execution). *)
let step_interp t g b =
  let arm = g.arm in
  let helpers name args =
    match Arm.Machine.find_helper t.shared name with
    | Some h -> h t.shared arm args
    | None -> raise (Tcg.Interp.No_helper name)
  in
  let env = Tcg.Interp.create_env ~helpers t.mem in
  for r = 0 to 15 do
    env.Tcg.Interp.temps.(Tcg.Op.guest_reg r) <- arm.Arm.Machine.regs.(r)
  done;
  let ca, cb = arm.Arm.Machine.cmp in
  env.Tcg.Interp.temps.(Tcg.Op.cmp_a) <- ca;
  env.Tcg.Interp.temps.(Tcg.Op.cmp_b) <- cb;
  let res = Tcg.Interp.exec_block env b in
  for r = 0 to 15 do
    arm.Arm.Machine.regs.(r) <- env.Tcg.Interp.temps.(Tcg.Op.guest_reg r)
  done;
  arm.Arm.Machine.cmp <-
    (env.Tcg.Interp.temps.(Tcg.Op.cmp_a), env.Tcg.Interp.temps.(Tcg.Op.cmp_b));
  res

let exec t g = function
  | Native code -> (
      Log.debug (fun m ->
          m "T%d exec tb@0x%Lx (%d host insns)" g.arm.Arm.Machine.tid g.pc
            (Array.length code));
      match Arm.Machine.exec_block t.shared g.arm code with
      | Arm.Machine.Next_tb pc -> `Next pc
      | Arm.Machine.Jump pc -> `Jump pc
      | Arm.Machine.Halted -> `Halt
      | Arm.Machine.Trapped tr -> `Trap (fault_of_machine_trap g.pc tr)
      | exception Fault.Fault f -> `Trap f)
  | Interp_only b -> (
      Log.debug (fun m ->
          m "T%d interp tb@0x%Lx (%d tcg ops)" g.arm.Arm.Machine.tid g.pc
            (Tcg.Block.op_count b));
      match step_interp t g b with
      (* Helpers run mid-block (exit syscall) may halt the thread. *)
      | Tcg.Interp.Next_tb pc ->
          if g.arm.Arm.Machine.halted then `Halt else `Next pc
      | Tcg.Interp.Jump pc ->
          if g.arm.Arm.Machine.halted then `Halt else `Jump pc
      | Tcg.Interp.Halted -> `Halt
      | Tcg.Interp.Trapped (kind, context) ->
          `Trap (Fault.make ~pc:g.pc (Fault.of_tag kind) context)
      | exception Fault.Fault f -> `Trap f)

(* Dispatch: resolve the thread's pc to a chain node.  Fast paths in
   order — the edge the previous block patched in, the per-thread jump
   cache, the global table — before translating.  Every dispatch counts
   as a lookup; [cache_hits] counts the ones a fresh translation was
   avoided for, with [chain_hits]/[jmp_cache_hits] recording which fast
   path served them. *)
let dispatch t g =
  t.stats.lookups <- t.stats.lookups + 1;
  let gen = Tbchain.generation t.tbs in
  match g.next_tb with
  | Some n when g.next_gen = gen && Int64.equal n.Tbchain.pc g.pc ->
      g.next_tb <- None;
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      t.stats.chain_hits <- t.stats.chain_hits + 1;
      n
  | _ -> (
      g.next_tb <- None;
      match Tbchain.jcache_find t.tbs g.jcache g.pc with
      | Some n ->
          t.stats.cache_hits <- t.stats.cache_hits + 1;
          t.stats.jmp_cache_hits <- t.stats.jmp_cache_hits + 1;
          n
      | None -> (
          match Tbchain.find t.tbs g.pc with
          | Some n ->
              t.stats.cache_hits <- t.stats.cache_hits + 1;
              Tbchain.jcache_store t.tbs g.jcache n;
              n
          | None ->
              let n = translate t g.pc in
              Tbchain.jcache_store t.tbs g.jcache n;
              n))

(* ------------------------------------------------------------------ *)
(* Hot-trace superblocks: once a block head crosses the hotness
   threshold, stitch its hottest chain of blocks into one TCG block,
   re-run the configured optimizer pipeline so Fenceopt/Memopt/Dce see
   across the former block boundaries, and compile the result.  Side
   exits (untaken branch arms, back edges, computed jumps) fall back to
   the original blocks, so installation can never change results —
   only which code services the hot path. *)

let trace_limit = 8

let form_superblock t head =
  let path = Tbchain.hottest_path head ~limit:trace_limit in
  let tcg_of n =
    match n.Tbchain.body with
    | Interp_only _ -> None (* degraded blocks have no native seam *)
    | Native _ -> Hashtbl.find_opt t.tcg_cache n.Tbchain.pc
  in
  let rec collect = function
    | [] -> Some []
    | n :: rest -> (
        match (tcg_of n, collect rest) with
        | Some b, Some bs -> Some (b :: bs)
        | _ -> None)
  in
  if List.length path < 2 then None
  else
    match collect path with
    | None -> None
    | Some blocks -> (
        let stitched =
          Tcg.Pipeline.run t.config.Config.passes (Tcg.Block.concat blocks)
        in
        match Backend.compile t.config stitched with
        | code ->
            Log.info (fun m ->
                m "superblock@0x%Lx: %d blocks, %d tcg ops" head.Tbchain.pc
                  (List.length blocks)
                  (Tcg.Block.op_count stitched));
            Some (Native code, List.length blocks)
        | exception Fault.Fault _ -> None
        | exception Backend.Register_pressure _ -> None)

let maybe_superblock t node =
  let threshold = t.config.Config.trace_threshold in
  if
    threshold > 0
    && Tbchain.chaining t.tbs
    && node.Tbchain.exec_count = threshold
    && node.Tbchain.super_len = 0
    && not node.Tbchain.no_super
  then
    match
      Obs.Trace.with_span ~cat:"engine"
        ~args:(fun () -> [ ("pc", Printf.sprintf "0x%Lx" node.Tbchain.pc) ])
        "superblock"
        (fun () -> form_superblock t node)
    with
    | Some (super, len) ->
        Tbchain.install_super node super ~len;
        t.stats.superblocks <- t.stats.superblocks + 1;
        Obs.Metrics.incr (Lazy.force m_superblocks)
    | None -> node.Tbchain.no_super <- true

let step_block t g =
  if not g.finished then
    match
      match dispatch t g with
      | node ->
          t.stats.blocks_executed <- t.stats.blocks_executed + 1;
          node.Tbchain.exec_count <- node.Tbchain.exec_count + 1;
          maybe_superblock t node;
          (* Cycle attribution for hot-block ranking is metered: one
             enabled check per dispatch when off.  Guest cycle counting
             is deterministic, so reading it cannot perturb the run. *)
          if Obs.Metrics.enabled () then begin
            let c0 = g.arm.Arm.Machine.cycles in
            let r = exec t g node.Tbchain.active in
            let dc = g.arm.Arm.Machine.cycles - c0 in
            node.Tbchain.prof_cycles <- node.Tbchain.prof_cycles + dc;
            Obs.Metrics.observe (Lazy.force m_block_cycles) dc;
            `Ran (node, r)
          end
          else `Ran (node, exec t g node.Tbchain.active)
      | exception Fault.Fault f -> `Trap f
    with
    | `Ran (node, `Next pc) ->
        (* Static exit: follow the patched edge, or patch one the first
           time the target is found translated.  Either way the next
           dispatch of this thread skips the hashtable. *)
        (match Tbchain.follow node pc with
        | Some target ->
            g.next_tb <- Some target;
            g.next_gen <- Tbchain.generation t.tbs
        | None -> (
            match Tbchain.find t.tbs pc with
            | Some target ->
                if Tbchain.link t.tbs node ~epc:pc target then
                  t.stats.chained <- t.stats.chained + 1;
                if Tbchain.chaining t.tbs then begin
                  g.next_tb <- Some target;
                  g.next_gen <- Tbchain.generation t.tbs
                end
            | None -> ()));
        g.pc <- pc
    | `Ran (_, `Jump pc) -> g.pc <- pc
    | `Ran (_, `Halt) ->
        Log.debug (fun m -> m "T%d halted" g.arm.Arm.Machine.tid);
        g.finished <- true
    | `Ran (_, `Trap f) | `Trap f -> fault_thread t g f

type outcome =
  | Completed of guest_thread list
  | Exhausted of {
      blocks : int;
      live_threads : int;
      threads : guest_thread list;
    }

let threads = function
  | Completed ts -> ts
  | Exhausted { threads; _ } -> threads

(* Round-robin at block granularity; guest clone syscalls may add
   threads between rounds.  A queue plus a live counter keeps each
   round O(threads): no per-round re-filtering of the thread list, and
   spawned threads append in O(1) instead of rebuilding the list. *)
let run_concurrent ?(max_blocks = 50_000_000) t threads0 =
  Obs.Trace.with_span ~cat:"engine"
    ~args:(fun () -> [ ("threads", string_of_int (List.length threads0)) ])
    "run_concurrent"
  @@ fun () ->
  let all = Queue.create () in
  let live = ref 0 in
  let add g =
    Queue.push g all;
    if not g.finished then incr live
  in
  List.iter add threads0;
  let n = ref 0 in
  while !live > 0 && !n < max_blocks do
    Queue.iter
      (fun g ->
        if not g.finished then begin
          incr n;
          step_block t g;
          if g.finished then decr live
        end)
      all;
    List.iter add (drain_spawns t)
  done;
  let threads = List.of_seq (Queue.to_seq all) in
  if !live = 0 then Completed threads
  else begin
    Log.warn (fun m ->
        m "watchdog: block budget %d exhausted with %d live thread(s)"
          max_blocks !live);
    Exhausted { blocks = !n; live_threads = !live; threads }
  end

let run_thread ?max_blocks t g = ignore (run_concurrent ?max_blocks t [ g ])

let run ?max_blocks ?regs t =
  let g = spawn t ~tid:0 ~entry:t.image.Image.Gelf.entry ?regs () in
  run_thread ?max_blocks t g;
  g

let reg g r = g.arm.Arm.Machine.regs.(X86.Reg.index r)
let cycles g = g.arm.Arm.Machine.cycles
let trap g = g.trap

(* ------------------------------------------------------------------ *)
(* Profiling views over the code cache and the stats record.           *)

(* Hottest translated blocks, ranked by attributed guest cycles (when
   Obs.Metrics was enabled during the run) falling back to raw
   execution counts. *)
let hot_blocks ?limit t =
  let entries =
    Tbchain.fold
      (fun pc n acc ->
        if n.Tbchain.exec_count = 0 then acc
        else
          {
            Obs.Profile.key = pc;
            count = n.Tbchain.exec_count;
            cost = n.Tbchain.prof_cycles;
          }
          :: acc)
      t.tbs []
  in
  Obs.Profile.rank ?limit entries

(* One-line run summary for CLIs.  Every field is printed
   unconditionally — in particular [interp-fallbacks], so a clean run
   is distinguishable from a run where degradation went unreported. *)
let stats_line t g =
  let s = t.stats in
  Printf.sprintf
    "cycles=%d blocks=%d executed=%d chained=%d chain-hits=%d \
     jcache-hits=%d superblocks=%d interp-fallbacks=%d traps=%d \
     cache-quarantined=%d"
    g.arm.Arm.Machine.cycles s.blocks_translated s.blocks_executed s.chained
    s.chain_hits s.jmp_cache_hits s.superblocks s.interp_fallbacks s.traps
    s.cache_quarantined

(* Publish the hot-path dispatch counters (kept as plain mutable fields
   so dispatch pays nothing for them) into the metrics registry as
   gauges.  Call once at end of run, e.g. before printing a snapshot. *)
let publish_metrics t =
  if Obs.Metrics.enabled () then begin
    let s = t.stats in
    let set name v = Obs.Metrics.set (Obs.Metrics.gauge name) v in
    set "engine.stats.blocks_translated" s.blocks_translated;
    set "engine.stats.blocks_executed" s.blocks_executed;
    set "engine.stats.cache_hits" s.cache_hits;
    set "engine.stats.lookups" s.lookups;
    set "engine.stats.fences_emitted" s.fences_emitted;
    set "engine.stats.tcg_ops_before_opt" s.tcg_ops_before_opt;
    set "engine.stats.tcg_ops_after_opt" s.tcg_ops_after_opt;
    set "engine.stats.chained" s.chained;
    set "engine.stats.chain_hits" s.chain_hits;
    set "engine.stats.jmp_cache_hits" s.jmp_cache_hits;
    set "engine.stats.superblocks" s.superblocks;
    set "engine.stats.interp_fallbacks" s.interp_fallbacks;
    set "engine.stats.traps" s.traps;
    set "engine.stats.cache_quarantined" s.cache_quarantined
  end

(* ------------------------------------------------------------------ *)
(* Persistent translation cache: translated host code keyed by guest
   pc, reusable across runs (cf. the translation-caching systems in the
   paper's related work, e.g. WOW64).  The cache is only valid for the
   configuration that produced it.

   Format v2 ("RSTC2\n") frames every entry as

     pc:16hex  len:%08d  crc:8hex  body[len]

   where [crc] is the CRC-32 of [body] (the [Arm.Encode.encode_block]
   bytes).  Length framing means a single flipped bit damages exactly
   one entry: the loader drops (quarantines) that entry, counts it in
   [stats.cache_quarantined] and the [cache.corrupt] metric, and the
   block simply retranslates on first execution.  Structural damage —
   bad magic, truncation, a config mismatch, an unparsable frame
   header — still fails the whole file, because nothing after the
   damage can be trusted to be aligned. *)

let cache_magic = "RSTC2\n"

let cache_corrupt_metric = "cache.corrupt"

let save_cache t path =
  let b = Buffer.create 4096 in
  Buffer.add_string b cache_magic;
  Buffer.add_char b (Char.chr (String.length t.config.Config.name));
  Buffer.add_string b t.config.Config.name;
  let entries =
    Tbchain.fold
      (fun pc n acc ->
        match n.Tbchain.body with
        | Native code -> (pc, code) :: acc
        | Interp_only _ -> acc)
      t.tbs []
    |> List.sort compare
  in
  Buffer.add_string b (Printf.sprintf "%08d" (List.length entries));
  let body = Buffer.create 256 in
  List.iter
    (fun (pc, code) ->
      Buffer.clear body;
      Arm.Encode.encode_block body code;
      let s = Buffer.contents body in
      Buffer.add_string b (Printf.sprintf "%016Lx" pc);
      Buffer.add_string b (Printf.sprintf "%08d" (String.length s));
      Buffer.add_string b (Checksum.Crc32.to_hex (Checksum.Crc32.digest s));
      Buffer.add_string b s)
    entries;
  (* Write-to-temp then rename: a crash mid-write must not leave a
     truncated cache under the real name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents b));
  (* The injected crash window: tmp is fully written, the rename has
     not happened.  A real crash here leaves the previous cache (if
     any) intact under [path] — which is exactly what the chaos
     campaign asserts. *)
  if Inject.fire t.inject Inject.Cache_write then
    Fault.raise_ Fault.Cache_corrupt
      (Printf.sprintf "injected cache-write fault before rename of %s" path);
  Sys.rename tmp path;
  List.length entries

(* Shared v2 parser.  [config] (when given) must match the recorded
   config name.  [on_entry] receives every structurally complete entry
   as [pc, Ok code] or [pc, Error reason] (checksum mismatch / decode
   failure inside an intact frame).  Raises [Fault Cache_corrupt] on
   structural damage. *)
let parse_cache ?config ~on_entry s =
  let corrupt fmt =
    Printf.ksprintf (fun m -> Fault.raise_ Fault.Cache_corrupt m) fmt
  in
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then corrupt "truncated";
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  if take (String.length cache_magic) <> cache_magic then corrupt "bad magic";
  let name_len = Char.code (take 1).[0] in
  let name = take name_len in
  (match config with
  | Some c when name <> c ->
      corrupt "cache was built for config %S, engine runs %S" name c
  | Some _ | None -> ());
  let count =
    match int_of_string_opt (take 8) with
    | Some n when n >= 0 -> n
    | Some _ | None -> corrupt "bad entry count"
  in
  for i = 1 to count do
    let pc =
      match Int64.of_string_opt ("0x" ^ take 16) with
      | Some pc -> pc
      | None -> corrupt "bad pc in entry %d" i
    in
    let len =
      match int_of_string_opt (take 8) with
      | Some n when n >= 0 -> n
      | Some _ | None -> corrupt "bad length in entry %d" i
    in
    let crc =
      match Checksum.Crc32.of_hex (take 8) with
      | Some c -> c
      | None -> corrupt "bad checksum field in entry %d" i
    in
    let body = take len in
    if Checksum.Crc32.digest body <> crc then
      on_entry i pc (Error "checksum mismatch")
    else
      match Arm.Decode.decode_block body 0 with
      | code, pos' when pos' = len -> on_entry i pc (Ok code)
      | _, pos' ->
          on_entry i pc
            (Error
               (Printf.sprintf "decoded %d of %d bytes (checksum collision?)"
                  pos' len))
      | exception Arm.Decode.Bad_encoding (at, msg) ->
          on_entry i pc (Error (Printf.sprintf "offset %d: %s" at msg))
  done;
  if !pos <> String.length s then
    corrupt "%d trailing bytes after last entry" (String.length s - !pos);
  count

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_cache t path =
  match
    let s = read_file path in
    (* Stage into a private table: a fault mid-parse must not leave a
       half-loaded code cache behind. *)
    let staged = Hashtbl.create 16 in
    let quarantined = ref 0 in
    let on_entry i pc = function
      | Ok code ->
          if Inject.fire t.inject Inject.Cache_read then
            Fault.raise_ Fault.Cache_corrupt
              (Printf.sprintf "injected cache-read fault at entry %d" i)
          else Hashtbl.replace staged pc code
      | Error reason ->
          incr quarantined;
          Log.warn (fun m ->
              m "cache %s entry %d (pc 0x%Lx) quarantined: %s" path i pc
                reason)
    in
    let _count =
      parse_cache ~config:t.config.Config.name ~on_entry s
    in
    (staged, !quarantined)
  with
  | staged, quarantined ->
      (* Loaded translations replace whatever the engine had patched
         jumps into: unchain everything (and bump the generation so
         per-thread jump caches and pending chained targets die) before
         installing the staged blocks. *)
      Tbchain.clear_links t.tbs;
      Hashtbl.iter
        (fun pc code -> ignore (Tbchain.insert t.tbs pc (Native code)))
        staged;
      t.stats.cache_quarantined <- t.stats.cache_quarantined + quarantined;
      if quarantined > 0 && Obs.Metrics.enabled () then
        Obs.Metrics.add (Obs.Metrics.counter cache_corrupt_metric) quarantined;
      Obs.Trace.instant ~cat:"engine"
        ~args:(fun () ->
          [
            ("blocks", string_of_int (Hashtbl.length staged));
            ("quarantined", string_of_int quarantined);
          ])
        "load_cache";
      Ok (Hashtbl.length staged)
  | exception Fault.Fault f ->
      Log.warn (fun m ->
          m "persistent cache %s unusable (%s); starting cold" path
            (Fault.to_string f));
      Error f
  | exception Sys_error msg ->
      let f = Fault.make Fault.Cache_corrupt msg in
      Log.warn (fun m ->
          m "persistent cache %s unreadable (%s); starting cold" path msg);
      Error f

(* Offline integrity check, used by [gelf_tool verify].  Does not need
   an engine: config binding is reported, not enforced. *)
let verify_cache path =
  match
    let s = read_file path in
    let ok = ref 0 in
    let bad = ref [] in
    let on_entry i pc = function
      | Ok _ -> incr ok
      | Error reason ->
          bad := Printf.sprintf "entry %d (pc 0x%Lx): %s" i pc reason :: !bad
    in
    let _count = parse_cache ~on_entry s in
    (!ok, List.rev !bad)
  with
  | ok, bad -> Ok (ok, bad)
  | exception Fault.Fault f -> Error f
  | exception Sys_error msg -> Error (Fault.make Fault.Cache_corrupt msg)
