let log_src = Logs.Src.create "risotto.engine" ~doc:"Risotto DBT engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Observability handles.  Counters that are cheap and cold (translate,
   faults, superblocks) are mirrored into the registry live; the hot
   dispatch counters stay plain [stats] fields and are published as
   gauges by {!publish_metrics} so the dispatch loop pays nothing for
   them. *)
let m_translate_ns = lazy (Obs.Metrics.histogram "engine.translate.ns")
let m_compile_ns = lazy (Obs.Metrics.histogram "engine.compile.ns")
let m_block_cycles = lazy (Obs.Metrics.histogram "engine.block.cycles")
let m_translated = lazy (Obs.Metrics.counter "engine.blocks_translated")
let m_fallbacks = lazy (Obs.Metrics.counter "engine.interp_fallbacks")
let m_traps = lazy (Obs.Metrics.counter "engine.traps")
let m_superblocks = lazy (Obs.Metrics.counter "engine.superblocks")

(* Tier-lifecycle latency: how long a block waited from compile request
   to publication, and how long its finished result sat in the
   completion queue before the execution thread applied it. *)
let m_req_to_publish = lazy (Obs.Metrics.histogram "tier.request_to_publish.ns")
let m_install_queue = lazy (Obs.Metrics.histogram "tier.install_queue.ns")

type stats = {
  mutable blocks_translated : int;
  mutable blocks_executed : int;  (** dispatches through the execute loop *)
  mutable cache_hits : int;
  mutable lookups : int;
  mutable fences_emitted : int;
  mutable tcg_ops_before_opt : int;
  mutable tcg_ops_after_opt : int;
  mutable chained : int;  (** block exits patched into direct edges *)
  mutable chain_hits : int;  (** dispatches served by a patched edge *)
  mutable jmp_cache_hits : int;
      (** dispatches served by the per-thread jump cache *)
  mutable superblocks : int;  (** hot traces stitched and installed *)
  mutable interp_fallbacks : int;
      (** blocks the backend could not compile, demoted to the TCG
          interpreter *)
  mutable traps : int;  (** guest threads finished by a fault *)
  mutable cache_quarantined : int;
      (** persistent-cache entries that failed their checksum and were
          dropped (the block retranslates on demand) *)
  mutable interp_execs : int;
      (** dispatches served by the TCG interpreter (tier 0 + degraded
          blocks) *)
  mutable tier1_installed : int;
      (** compile requests whose native TB was published (tier 1) *)
  mutable deopts : int;
      (** superblocks demoted back to tier-1 TBs on side-exit-rate
          regression *)
  mutable installs_dropped : int;
      (** compile results discarded by the generation check (reset /
          cache reload raced an in-flight install) *)
  mutable install_hwm : int;
      (** install-queue depth high-water mark *)
}

(* How the block at a pc executes: natively, or on the TCG interpreter
   because the backend could not compile it (or has not yet — tier 0). *)
type compiled = Native of Arm.Insn.t array | Interp_only of Tcg.Block.t

(* A finished compile request travelling back from the background
   domain to the execution thread.  [i_gen] is the chain generation the
   request was made under: a reset or cache reload in between bumps the
   generation and the install is dropped, the same invalidation
   discipline Tbchain applies to patched edges and jump caches. *)
type install = {
  i_pc : int64;
  i_gen : int;
  i_result : (Arm.Insn.t array, Fault.t) result;
  i_req_us : float;
      (* request wall-clock (µs), 0. when metrics were off at request
         time so latency observation stays metered *)
  i_done_us : float;  (* completion-queue push wall-clock (µs), or 0. *)
}

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
  frontend : Frontend.t;
  mem : Memsys.Mem.t;
  shared : Arm.Machine.shared;
  tbs : compiled Tbchain.t;
      (* the code cache: every translated block (native or degraded),
         plus chain edges and hot-trace state *)
  tcg_cache : (int64, Tcg.Block.t) Hashtbl.t;
      (* optimized TCG per pc, kept for inspection and trace stitching *)
  inject : Inject.t;
  stats : stats;
  pending_spawns : (int * int64 * int64) Queue.t;  (* tid, entry, arg *)
  next_tid : int ref;
  install_service : Parallel.Pool.service option;
      (* background compile domains; None when this engine compiles
         synchronously *)
  completions : install Queue.t;  (* guarded by [completions_m] *)
  completions_m : Mutex.t;
  completions_n : int Atomic.t;
      (* pushed count minus applied count; the dispatch loop's one-load
         "anything to publish?" probe.  Incremented after the push, so
         a positive value guarantees a non-empty queue. *)
  flight : Obs.Flight.t;
      (* engine-wide flight ring: tier publishes, superblocks, deopts,
         install drops — lifecycle events not owned by one thread *)
  ledgers : (int64, Tcg.Fence_ledger.t) Hashtbl.t;
      (* per-block fence provenance, keyed by guest pc *)
  mutable guest_threads : guest_thread list;
      (* every thread ever spawned (newest first), so a postmortem can
         show what each was doing *)
  mutable postmortem_dir : string option;
  mutable postmortems_written : int;
}

and guest_thread = {
  arm : Arm.Machine.thread;
  mutable pc : int64;
  mutable finished : bool;
  mutable trap : Fault.t option;
  jcache : compiled Tbchain.jcache;
  mutable next_tb : compiled Tbchain.node option;
      (* chained target patched in by the previous block's exit *)
  mutable next_gen : int;  (* chain-table generation [next_tb] is valid for *)
  gflight : Obs.Flight.t;  (* this thread's flight ring (single writer) *)
}

(* One process-wide background translation service, spawned lazily by
   the first async-tiered engine and shared by all of them: OCaml
   domains are a bounded resource (and every live domain joins each
   stop-the-world minor collection), so engines must not spawn one
   each.  Each compile job publishes into its own engine's completion
   queue, so sharing the workers shares nothing else. *)
let default_install_service =
  lazy (Parallel.Pool.service_create ~workers:1 ())

let create ?cost ?idl ?install_service config image =
  (* Default IDL: everything the host library provides (when the linker
     is enabled).  Pass [~idl:[]] explicitly to link nothing. *)
  let idl =
    match idl with
    | Some sigs -> sigs
    | None ->
        if config.Config.host_linker then
          Linker.Idl.parse Linker.Hostlib.idl_text
        else []
  in
  let links = Linker.Link.resolve image idl in
  let mem = Memsys.Mem.create () in
  let shared = Arm.Machine.create_shared ?cost mem in
  let pending_spawns = Queue.create () in
  let next_tid = ref 0 in
  let inject = Inject.create config.Config.inject in
  Helpers.register_all
    ~on_clone:(fun ~entry ~arg ->
      let tid = !next_tid in
      incr next_tid;
      Queue.push (tid, entry, arg) pending_spawns;
      Int64.of_int tid)
    ~inject shared;
  let install_service =
    (* Resolve (and lazily spawn) workers only when this config can
       actually submit: sync engines must stay domain-free. *)
    if config.Config.sync_compile || config.Config.jit_threshold = 0 then None
    else
      Some
        (match install_service with
        | Some s -> s
        | None -> Lazy.force default_install_service)
  in
  let t = {
    config;
    image;
    links;
    frontend = Frontend.create ~inject config image links;
    mem;
    shared;
    tbs = Tbchain.create ~chain:config.Config.chain ();
    (* Sized like the chain table: real images translate far more than
       the 64 buckets the old caches started with. *)
    tcg_cache = Hashtbl.create 4096;
    inject;
    stats =
      {
        blocks_translated = 0;
        blocks_executed = 0;
        cache_hits = 0;
        lookups = 0;
        fences_emitted = 0;
        tcg_ops_before_opt = 0;
        tcg_ops_after_opt = 0;
        chained = 0;
        chain_hits = 0;
        jmp_cache_hits = 0;
        superblocks = 0;
        interp_fallbacks = 0;
        traps = 0;
        cache_quarantined = 0;
        interp_execs = 0;
        tier1_installed = 0;
        deopts = 0;
        installs_dropped = 0;
        install_hwm = 0;
      };
    pending_spawns;
    next_tid;
    install_service;
    completions = Queue.create ();
    completions_m = Mutex.create ();
    completions_n = Atomic.make 0;
    flight = Obs.Flight.create ();
    ledgers = Hashtbl.create 1024;
    guest_threads = [];
    postmortem_dir = None;
    postmortems_written = 0;
  }
  in
  t

let config t = t.config
let memory t = t.mem
let stats t = t.stats
let links t = t.links
let injector t = t.inject
let flight t = t.flight
let thread_flight g = g.gflight
let set_postmortem_dir t dir = t.postmortem_dir <- dir
let postmortem_dir t = t.postmortem_dir
let postmortems_written t = t.postmortems_written
let fence_ledger t pc = Hashtbl.find_opt t.ledgers pc

let fence_ledgers t =
  Hashtbl.fold (fun pc l acc -> (pc, l) :: acc) t.ledgers []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
let chain_generation t = Tbchain.generation t.tbs
let chained_edges t = Tbchain.edge_count t.tbs
let stack_top tid = Int64.sub 0x8000_0000L (Int64.of_int (tid * 0x10000))

(* Drop every completion still queued (without waiting for in-flight
   background jobs: their results arrive stamped with the pre-bump
   generation and die at the apply-side check). *)
let discard_pending_installs t =
  Mutex.lock t.completions_m;
  let dropped = Queue.length t.completions in
  Queue.clear t.completions;
  Mutex.unlock t.completions_m;
  if dropped > 0 then begin
    ignore (Atomic.fetch_and_add t.completions_n (-dropped));
    t.stats.installs_dropped <- t.stats.installs_dropped + dropped;
    Obs.Metrics.add (Lazy.force Tier.m_installs_dropped) dropped
  end

let reset t =
  Obs.Trace.instant ~cat:"engine" "reset";
  (* Order matters: discard queued installs first, then bump the
     generation via flush, so anything a background domain publishes
     after this point is stale by construction.  Per-block tier
     profiles die with their nodes. *)
  discard_pending_installs t;
  Tbchain.flush t.tbs;
  Hashtbl.reset t.tcg_cache

let translate t pc =
  Obs.Trace.with_span ~cat:"engine"
    ~args:(fun () -> [ ("pc", Printf.sprintf "0x%Lx" pc) ])
    "translate"
  @@ fun () ->
  Obs.Profile.time (Lazy.force m_translate_ns) @@ fun () ->
  let raw =
    Obs.Trace.with_span ~cat:"engine" "frontend" (fun () ->
        Frontend.translate t.frontend pc)
  in
  Log.info (fun m ->
      m "translate tb@0x%Lx: %d guest insns -> %d tcg ops" pc
        raw.Tcg.Block.guest_insns (Tcg.Block.op_count raw));
  let ledger = Tcg.Fence_ledger.create () in
  let optimized = Tcg.Pipeline.run ~ledger t.config.Config.passes raw in
  Hashtbl.replace t.ledgers pc ledger;
  Obs.Flight.record t.flight Obs.Flight.Fence_pass pc
    (Tcg.Fenceopt.count optimized.Tcg.Block.ops);
  t.stats.blocks_translated <- t.stats.blocks_translated + 1;
  Obs.Metrics.incr (Lazy.force m_translated);
  t.stats.tcg_ops_before_opt <-
    t.stats.tcg_ops_before_opt + Tcg.Block.op_count raw;
  t.stats.tcg_ops_after_opt <-
    t.stats.tcg_ops_after_opt + Tcg.Block.op_count optimized;
  Hashtbl.replace t.tcg_cache pc optimized;
  if t.config.Config.jit_threshold > 0 then
    (* Tier 0: the block starts life on the TCG interpreter (state
       [Cold], fresh profile) and the backend compile is deferred until
       its execution count crosses the threshold. *)
    Tbchain.insert t.tbs pc (Interp_only optimized)
  else begin
    let compiled =
      if Inject.fire t.inject Inject.Compile then
        Error (Fault.make ~pc Fault.Backend_fault "injected compile fault")
      else
        match
          Obs.Trace.with_span ~cat:"engine" "backend" (fun () ->
              Obs.Profile.time (Lazy.force m_compile_ns) (fun () ->
                  Backend.compile t.config optimized))
        with
        | code -> Ok code
        | exception Fault.Fault f -> Error (Fault.locate ~pc f)
        | exception Backend.Register_pressure p ->
            Error
              (Fault.make ~pc Fault.Backend_fault
                 (Printf.sprintf "register pressure in block 0x%Lx" p))
    in
    let body =
      match compiled with
      | Ok code ->
          t.stats.fences_emitted <-
            t.stats.fences_emitted
            + Array.fold_left
                (fun n i -> match i with Arm.Insn.Dmb _ -> n + 1 | _ -> n)
                0 code;
          Native code
      | Error f ->
          (* Degraded mode: the block stays on the TCG interpreter.  The
             run keeps its semantics (the interpreter and backend agree by
             construction), only this block's speed is lost. *)
          Log.warn (fun m ->
              m "tb@0x%Lx: backend failed (%s); falling back to interpreter" pc
                (Fault.to_string f));
          t.stats.interp_fallbacks <- t.stats.interp_fallbacks + 1;
          Obs.Metrics.incr (Lazy.force m_fallbacks);
          Interp_only optimized
    in
    let n = Tbchain.insert t.tbs pc body in
    n.Tbchain.tier.Tier.state <-
      (match body with
      | Native _ -> Tier.Published
      | Interp_only _ -> Tier.Degraded);
    n
  end

(* ------------------------------------------------------------------ *)
(* Tier 1: the async install queue.  The execution thread enqueues
   compile jobs (capturing the immutable optimized TCG block, the
   config, and the chain generation at request time); a background
   service domain runs the pure [Backend.compile] and pushes the result
   into [completions]; the execution thread publishes it into the chain
   table between dispatches.  The background domain never touches the
   engine's tables — publication is single-writer, and the
   mutex-protected queue plus the post-push atomic increment are the
   release/acquire pair that makes the compiled code array safely
   visible (see DESIGN.md, "tier ladder"). *)

let apply_install t inst =
  let stale () =
    t.stats.installs_dropped <- t.stats.installs_dropped + 1;
    Obs.Flight.record t.flight Obs.Flight.Install_drop inst.i_pc inst.i_gen;
    Obs.Metrics.incr (Lazy.force Tier.m_installs_dropped)
  in
  (* Lifecycle latency is metered end-to-end: observe only when the
     request was stamped (metrics on at request time) and metrics are
     still on now. *)
  let observe_latency () =
    if inst.i_req_us > 0. && Obs.Metrics.enabled () then begin
      let now = Obs.Profile.now_us () in
      Obs.Metrics.observe
        (Lazy.force m_req_to_publish)
        (int_of_float ((now -. inst.i_req_us) *. 1e3));
      if inst.i_done_us > 0. then
        Obs.Metrics.observe
          (Lazy.force m_install_queue)
          (int_of_float ((now -. inst.i_done_us) *. 1e3))
    end
  in
  if inst.i_gen <> Tbchain.generation t.tbs then stale ()
  else
    match Tbchain.find t.tbs inst.i_pc with
    | Some node when node.Tbchain.tier.Tier.state = Tier.Queued -> (
        match inst.i_result with
        | Ok code ->
            node.Tbchain.body <- Native code;
            (* A superblock can only exist over a Native body, so with
               state Queued the active translation is the body. *)
            node.Tbchain.active <- node.Tbchain.body;
            node.Tbchain.tier.Tier.state <- Tier.Published;
            t.stats.fences_emitted <-
              t.stats.fences_emitted
              + Array.fold_left
                  (fun n i -> match i with Arm.Insn.Dmb _ -> n + 1 | _ -> n)
                  0 code;
            t.stats.tier1_installed <- t.stats.tier1_installed + 1;
            Obs.Flight.record t.flight Obs.Flight.Tier_published inst.i_pc
              inst.i_gen;
            observe_latency ();
            Obs.Trace.instant ~cat:"engine"
              ~args:(fun () -> [ ("pc", Printf.sprintf "0x%Lx" inst.i_pc) ])
              "tier-publish";
            Obs.Metrics.incr (Lazy.force Tier.m_installs);
            Log.debug (fun m ->
                m "tb@0x%Lx: tier-1 TB published (%d host insns)" inst.i_pc
                  (Array.length code))
        | Error f ->
            node.Tbchain.tier.Tier.state <- Tier.Degraded;
            Obs.Flight.record t.flight Obs.Flight.Tier_degraded inst.i_pc
              inst.i_gen;
            t.stats.interp_fallbacks <- t.stats.interp_fallbacks + 1;
            Obs.Metrics.incr (Lazy.force m_fallbacks);
            Obs.Metrics.incr (Lazy.force Tier.m_install_failures);
            Log.warn (fun m ->
                m "tb@0x%Lx: background compile failed (%s); staying on \
                   interpreter"
                  inst.i_pc (Fault.to_string f)))
    | Some _ | None ->
        (* Same generation but the node was dropped or re-seeded
           (e.g. a cache reload re-inserted it): the request no longer
           describes the block. *)
        stale ()

let apply_completions t =
  if Atomic.get t.completions_n > 0 then begin
    Mutex.lock t.completions_m;
    let k = Queue.length t.completions in
    let items = List.init k (fun _ -> Queue.pop t.completions) in
    Mutex.unlock t.completions_m;
    ignore (Atomic.fetch_and_add t.completions_n (-k));
    if k > t.stats.install_hwm then t.stats.install_hwm <- k;
    List.iter (apply_install t) items
  end

let request_compile t node =
  match node.Tbchain.body with
  | Native _ -> ()
  | Interp_only tcg ->
      let p = node.Tbchain.tier in
      p.Tier.state <- Tier.Queued;
      Obs.Metrics.incr (Lazy.force Tier.m_requests);
      let pc = node.Tbchain.pc in
      let gen = Tbchain.generation t.tbs in
      Obs.Flight.record t.flight Obs.Flight.Tier_queued pc gen;
      let req_us = if Obs.Metrics.enabled () then Obs.Profile.now_us () else 0. in
      (* Fault injection is stateful: fire on the execution thread at
         enqueue time, so a plan's Nth/Seeded counters stay
         deterministic however the background domain schedules. *)
      let injected = Inject.fire t.inject Inject.Compile in
      let config = t.config in
      let job () =
        let result =
          if injected then
            Error (Fault.make ~pc Fault.Backend_fault "injected compile fault")
          else
            match Backend.compile config tcg with
            | code -> Ok code
            | exception Fault.Fault f -> Error (Fault.locate ~pc f)
            | exception Backend.Register_pressure p' ->
                Error
                  (Fault.make ~pc Fault.Backend_fault
                     (Printf.sprintf "register pressure in block 0x%Lx" p'))
        in
        let done_us = if req_us > 0. then Obs.Profile.now_us () else 0. in
        Mutex.lock t.completions_m;
        Queue.push
          { i_pc = pc; i_gen = gen; i_result = result; i_req_us = req_us;
            i_done_us = done_us }
          t.completions;
        Mutex.unlock t.completions_m;
        Atomic.incr t.completions_n
      in
      (match t.install_service with
      | Some svc when not t.config.Config.sync_compile ->
          Parallel.Pool.service_submit svc job;
          let depth = Parallel.Pool.service_pending svc in
          if depth > t.stats.install_hwm then t.stats.install_hwm <- depth
      | Some _ | None ->
          (* The determinism escape hatch ([sync_compile]): same
             request/publish path, run to completion inline. *)
          job ();
          apply_completions t)

(* Wait for every in-flight background compile, then publish (or drop)
   the results.  No-op for synchronous engines. *)
let drain_installs t =
  (match t.install_service with
  | Some svc -> Parallel.Pool.service_drain svc
  | None -> ());
  apply_completions t

let fetch t pc =
  t.stats.lookups <- t.stats.lookups + 1;
  match Tbchain.find t.tbs pc with
  | Some n ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      n.Tbchain.body
  | None -> (translate t pc).Tbchain.body

let lookup_block t pc =
  match fetch t pc with
  | Native code -> code
  | Interp_only _ ->
      Fault.raise_ ~pc Fault.Backend_fault
        "block is interpreter-only (backend failed to compile it)"

let tcg_block t pc =
  ignore (fetch t pc);
  Hashtbl.find t.tcg_cache pc

let spawn t ~tid ~entry ?(regs = []) () =
  t.next_tid := max !(t.next_tid) (tid + 1);
  let arm = Arm.Machine.create_thread tid in
  arm.Arm.Machine.regs.(X86.Reg.index X86.Reg.RSP) <- stack_top tid;
  List.iter
    (fun (r, v) -> arm.Arm.Machine.regs.(X86.Reg.index r) <- v)
    regs;
  let g =
    {
      arm;
      pc = entry;
      finished = false;
      trap = None;
      jcache = Tbchain.jcache_create t.tbs;
      next_tb = None;
      next_gen = Tbchain.generation t.tbs;
      gflight = Obs.Flight.create ();
    }
  in
  t.guest_threads <- g :: t.guest_threads;
  g

(* Threads created by the guest's clone syscall since the last drain. *)
let drain_spawns t =
  let spawned = ref [] in
  while not (Queue.is_empty t.pending_spawns) do
    let tid, entry, arg = Queue.pop t.pending_spawns in
    let g = spawn t ~tid ~entry ~regs:[ (X86.Reg.RDI, arg) ] () in
    spawned := g :: !spawned
  done;
  List.rev !spawned

let fault_of_machine_trap pc = function
  | Arm.Machine.Trap_insn { kind; context } ->
      Fault.make ~pc (Fault.of_tag kind) context
  | Arm.Machine.Unknown_helper name ->
      Fault.make ~pc Fault.Helper_fault ("unknown helper " ^ name)
  | Arm.Machine.Unknown_host func ->
      Fault.make ~pc Fault.Link_fault ("unknown host function " ^ func)
  | Arm.Machine.Runaway -> Fault.make ~pc Fault.Watchdog "runaway block"
  | Arm.Machine.Fell_through i ->
      Fault.make ~pc Fault.Translate_fault
        (Printf.sprintf "block fell through at index %d" i)

(* ------------------------------------------------------------------ *)
(* Postmortems: on a trap (or watchdog exhaustion / injected fault) the
   engine serialises a self-contained picture of what just happened —
   every thread's last flight-ring events, the engine-wide lifecycle
   ring, per-block tier states, the fence ledger of each trapping
   block, a chain-table summary and the deterministic slice of the
   metrics registry — as compact JSON via {!Report.Json}.  Everything
   included is a pure function of the guest program, config, seed and
   inject plan (no wall-clock values, no histograms), so two identical
   runs produce byte-identical postmortems. *)

let state_name = function
  | Tier.Cold -> "cold"
  | Tier.Queued -> "queued"
  | Tier.Published -> "published"
  | Tier.Degraded -> "degraded"

let json_of_event (e : Obs.Flight.event) =
  Report.Json.Obj
    [
      ("seq", Report.Json.Int e.Obs.Flight.seq);
      ("kind", Report.Json.String (Obs.Flight.kind_name e.Obs.Flight.kind));
      ("pc", Report.Json.String (Printf.sprintf "0x%Lx" e.Obs.Flight.pc));
      ("arg", Report.Json.Int e.Obs.Flight.arg);
    ]

let json_of_ledger_entry (e : Tcg.Fence_ledger.entry) =
  let base =
    [
      ("pass", Report.Json.String e.Tcg.Fence_ledger.pass);
      ("kind", Report.Json.String (Axiom.Event.fence_name e.Tcg.Fence_ledger.kind));
      ( "guest_pc",
        Report.Json.String (Printf.sprintf "0x%Lx" e.Tcg.Fence_ledger.origin.Tcg.Op.opc) );
      ( "rule",
        Report.Json.String (Tcg.Op.rule_name e.Tcg.Fence_ledger.origin.Tcg.Op.rule) );
      ( "outcome",
        Report.Json.String (Tcg.Fence_ledger.outcome_name e.Tcg.Fence_ledger.outcome) );
    ]
  in
  let extra =
    match e.Tcg.Fence_ledger.outcome with
    | Tcg.Fence_ledger.Merged { into; result } ->
        [
          ("into_pc", Report.Json.String (Printf.sprintf "0x%Lx" into.Tcg.Op.opc));
          ("into_rule", Report.Json.String (Tcg.Op.rule_name into.Tcg.Op.rule));
          ("result", Report.Json.String (Axiom.Event.fence_name result));
        ]
    | Tcg.Fence_ledger.Strengthened { from } ->
        [ ("from", Report.Json.String (Axiom.Event.fence_name from)) ]
    | Tcg.Fence_ledger.Emitted | Tcg.Fence_ledger.Kept
    | Tcg.Fence_ledger.Dropped ->
        []
  in
  Report.Json.Obj (base @ extra)

let json_of_ledger pc l =
  Report.Json.Obj
    [
      ("pc", Report.Json.String (Printf.sprintf "0x%Lx" pc));
      ( "entries",
        Report.Json.List
          (List.map json_of_ledger_entry (Tcg.Fence_ledger.entries l)) );
    ]

(* Deterministic metrics slice: counters and gauges only (histograms
   carry wall-clock samples), and nothing time-valued (.ns / .us). *)
let deterministic_metric (name, _) =
  not
    (String.ends_with ~suffix:".ns" name
    || String.ends_with ~suffix:".us" name)

let postmortem_json ?(last = 32) t ~reason =
  let threads =
    List.sort
      (fun a b -> compare a.arm.Arm.Machine.tid b.arm.Arm.Machine.tid)
      t.guest_threads
  in
  let json_of_thread g =
    Report.Json.Obj
      [
        ("tid", Report.Json.Int g.arm.Arm.Machine.tid);
        ("pc", Report.Json.String (Printf.sprintf "0x%Lx" g.pc));
        ("finished", Report.Json.Bool g.finished);
        ( "trap",
          match g.trap with
          | Some f -> Report.Json.String (Fault.to_string f)
          | None -> Report.Json.Null );
        ( "events",
          Report.Json.List
            (List.map json_of_event (Obs.Flight.last ~n:last g.gflight)) );
      ]
  in
  let tiers =
    Tbchain.fold
      (fun pc n acc ->
        Report.Json.Obj
          [
            ("pc", Report.Json.String (Printf.sprintf "0x%Lx" pc));
            ("state", Report.Json.String (state_name n.Tbchain.tier.Tier.state));
            ("execs", Report.Json.Int n.Tbchain.exec_count);
            ("super_len", Report.Json.Int n.Tbchain.super_len);
          ]
        :: acc)
      t.tbs []
  in
  let tiers =
    (* Hashtbl fold order is unspecified: re-sort by the pc string we
       just embedded so the artifact is stable. *)
    List.sort
      (fun a b ->
        match (Report.Json.member "pc" a, Report.Json.member "pc" b) with
        | Some (Report.Json.String x), Some (Report.Json.String y) -> compare x y
        | _ -> 0)
      tiers
  in
  let trapping_ledgers =
    List.filter_map
      (fun g ->
        match g.trap with
        | Some _ ->
            Option.map (json_of_ledger g.pc) (Hashtbl.find_opt t.ledgers g.pc)
        | None -> None)
      threads
  in
  let metrics =
    if Obs.Metrics.enabled () then begin
      let snap = Obs.Metrics.snapshot () in
      let fields kvs =
        List.filter deterministic_metric kvs
        |> List.map (fun (k, v) -> (k, Report.Json.Int v))
      in
      Report.Json.Obj
        [
          ("counters", Report.Json.Obj (fields snap.Obs.Metrics.counters));
          ("gauges", Report.Json.Obj (fields snap.Obs.Metrics.gauges));
        ]
    end
    else Report.Json.Null
  in
  Report.Json.Obj
    [
      ("schema", Report.Json.String "risotto.postmortem.v1");
      ("reason", Report.Json.String reason);
      ("config", Report.Json.String t.config.Config.name);
      ("threads", Report.Json.List (List.map json_of_thread threads));
      ( "engine_events",
        Report.Json.List
          (List.map json_of_event (Obs.Flight.last ~n:last t.flight)) );
      ("tiers", Report.Json.List tiers);
      ("fence_ledgers", Report.Json.List trapping_ledgers);
      ( "chain",
        Report.Json.Obj
          [
            ("generation", Report.Json.Int (Tbchain.generation t.tbs));
            ("edges", Report.Json.Int (Tbchain.edge_count t.tbs));
          ] );
      ("metrics", metrics);
    ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Write one postmortem artifact (when a directory is configured) and
   count it.  Failures to write must never take down the engine: the
   postmortem is a diagnostic of a failure already being handled. *)
let dump_postmortem t ~reason =
  match t.postmortem_dir with
  | None -> ()
  | Some dir -> (
      try
        mkdir_p dir;
        let path =
          Filename.concat dir
            (Printf.sprintf "postmortem-%03d.json" t.postmortems_written)
        in
        let body = Report.Json.to_string (postmortem_json t ~reason) in
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc body);
        t.postmortems_written <- t.postmortems_written + 1;
        Log.warn (fun m -> m "postmortem written: %s" path)
      with Sys_error msg | Unix.Unix_error (_, msg, _) ->
        Log.err (fun m -> m "postmortem write failed: %s" msg))

(* Record a fault against one guest thread; only that thread stops. *)
let fault_thread t g f =
  let f = Fault.locate ~pc:g.pc ~tid:g.arm.Arm.Machine.tid f in
  t.stats.traps <- t.stats.traps + 1;
  Obs.Metrics.incr (Lazy.force m_traps);
  Obs.Trace.instant ~cat:"engine"
    ~args:(fun () -> [ ("fault", Fault.to_string f) ])
    "trap";
  Log.warn (fun m ->
      m "T%d trapped: %s" g.arm.Arm.Machine.tid (Fault.to_string f));
  Obs.Flight.record g.gflight Obs.Flight.Trap g.pc 0;
  g.trap <- Some f;
  g.finished <- true;
  dump_postmortem t ~reason:("trap: " ^ Fault.to_string f)

(* Degraded execution: run the TCG block in the interpreter against
   this thread's pinned state.  Globals 0–15 mirror the guest GP
   registers and cmp_a/cmp_b the lazy flags, so they are copied in and
   out around the block; helpers dispatch through the machine's
   registry (so syscalls, RMW helpers and host calls behave exactly as
   in native execution). *)
let step_interp t g b =
  let arm = g.arm in
  let helpers name args =
    match Arm.Machine.find_helper t.shared name with
    | Some h -> h t.shared arm args
    | None -> raise (Tcg.Interp.No_helper name)
  in
  let env = Tcg.Interp.create_env ~helpers t.mem in
  for r = 0 to 15 do
    env.Tcg.Interp.temps.(Tcg.Op.guest_reg r) <- arm.Arm.Machine.regs.(r)
  done;
  let ca, cb = arm.Arm.Machine.cmp in
  env.Tcg.Interp.temps.(Tcg.Op.cmp_a) <- ca;
  env.Tcg.Interp.temps.(Tcg.Op.cmp_b) <- cb;
  let res = Tcg.Interp.exec_block env b in
  for r = 0 to 15 do
    arm.Arm.Machine.regs.(r) <- env.Tcg.Interp.temps.(Tcg.Op.guest_reg r)
  done;
  arm.Arm.Machine.cmp <-
    (env.Tcg.Interp.temps.(Tcg.Op.cmp_a), env.Tcg.Interp.temps.(Tcg.Op.cmp_b));
  res

let exec t g = function
  | Native code -> (
      Log.debug (fun m ->
          m "T%d exec tb@0x%Lx (%d host insns)" g.arm.Arm.Machine.tid g.pc
            (Array.length code));
      match Arm.Machine.exec_block t.shared g.arm code with
      | Arm.Machine.Next_tb pc -> `Next pc
      | Arm.Machine.Jump pc -> `Jump pc
      | Arm.Machine.Halted -> `Halt
      | Arm.Machine.Trapped tr -> `Trap (fault_of_machine_trap g.pc tr)
      | exception Fault.Fault f -> `Trap f)
  | Interp_only b -> (
      Log.debug (fun m ->
          m "T%d interp tb@0x%Lx (%d tcg ops)" g.arm.Arm.Machine.tid g.pc
            (Tcg.Block.op_count b));
      match step_interp t g b with
      (* Helpers run mid-block (exit syscall) may halt the thread. *)
      | Tcg.Interp.Next_tb pc ->
          if g.arm.Arm.Machine.halted then `Halt else `Next pc
      | Tcg.Interp.Jump pc ->
          if g.arm.Arm.Machine.halted then `Halt else `Jump pc
      | Tcg.Interp.Halted -> `Halt
      | Tcg.Interp.Trapped (kind, context) ->
          `Trap (Fault.make ~pc:g.pc (Fault.of_tag kind) context)
      | exception Fault.Fault f -> `Trap f)

(* Dispatch: resolve the thread's pc to a chain node.  Fast paths in
   order — the edge the previous block patched in, the per-thread jump
   cache, the global table — before translating.  Every dispatch counts
   as a lookup; [cache_hits] counts the ones a fresh translation was
   avoided for, with [chain_hits]/[jmp_cache_hits] recording which fast
   path served them. *)
let dispatch t g =
  (* Publish any finished background compiles first: one atomic load on
     the fast path, and the thread that requested a block is usually
     the next one to run it. *)
  if Atomic.get t.completions_n > 0 then apply_completions t;
  t.stats.lookups <- t.stats.lookups + 1;
  let gen = Tbchain.generation t.tbs in
  match g.next_tb with
  | Some n when g.next_gen = gen && Int64.equal n.Tbchain.pc g.pc ->
      g.next_tb <- None;
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      t.stats.chain_hits <- t.stats.chain_hits + 1;
      n
  | _ -> (
      g.next_tb <- None;
      match Tbchain.jcache_find t.tbs g.jcache g.pc with
      | Some n ->
          t.stats.cache_hits <- t.stats.cache_hits + 1;
          t.stats.jmp_cache_hits <- t.stats.jmp_cache_hits + 1;
          n
      | None -> (
          match Tbchain.find t.tbs g.pc with
          | Some n ->
              t.stats.cache_hits <- t.stats.cache_hits + 1;
              Tbchain.jcache_store t.tbs g.jcache n;
              n
          | None ->
              let n = translate t g.pc in
              Tbchain.jcache_store t.tbs g.jcache n;
              n))

(* ------------------------------------------------------------------ *)
(* Tier 2 — hot-trace superblocks: once a block head crosses the
   hotness threshold *and* its profile shows a dominant observed
   successor path, stitch that path into one TCG block, re-run the
   configured optimizer pipeline so Fenceopt/Memopt/Dce see across the
   former block boundaries, and compile the result.  Side exits
   (untaken branch arms, back edges, computed jumps) fall back to the
   original blocks, so installation can never change results — only
   which code services the hot path.  A superblock whose side-exit rate
   regresses is deoptimized back to its tier-1 TB. *)

let trace_limit = 8

(* The hot path out of [head], following each block's dominant observed
   static successor (the only seams [Tcg.Block.concat] can stitch —
   computed jumps never qualify because they dilute dominance through
   the profile's [other] bucket).  Revisits are allowed, so a self-loop
   unrolls.  This replaces [Tbchain.hottest_path]'s static hottest-edge
   walk: edges only exist where chaining happened to patch them,
   whereas the profile sees every observed exit. *)
let profile_path t head ~limit =
  let rec go acc n k =
    if k = 0 then List.rev acc
    else
      match Tier.dominant n.Tbchain.tier with
      | None -> List.rev acc
      | Some (pc, _) -> (
          match Tbchain.find t.tbs pc with
          | None -> List.rev acc
          | Some next -> go (next :: acc) next (k - 1))
  in
  go [ head ] head (limit - 1)

(* [`Not_ready] is retryable (a member of the path is still cold or
   untranslated — common under async tier 1); [`Failed] latches
   [no_super]. *)
let form_superblock t head =
  let path = profile_path t head ~limit:trace_limit in
  let tcg_of n =
    match n.Tbchain.body with
    | Native _ -> (
        match Hashtbl.find_opt t.tcg_cache n.Tbchain.pc with
        | Some b -> `Tcg b
        | None -> `Failed (* loaded from cache: no TCG to stitch *))
    | Interp_only _ ->
        if n.Tbchain.tier.Tier.state = Tier.Degraded then `Failed
        else `Not_ready
  in
  let rec collect = function
    | [] -> `Blocks []
    | n :: rest -> (
        match tcg_of n with
        | (`Failed | `Not_ready) as x -> x
        | `Tcg b -> (
            match collect rest with
            | `Blocks bs -> `Blocks (b :: bs)
            | x -> x))
  in
  if List.length path < 2 then `Not_ready
  else
    match collect path with
    | (`Failed | `Not_ready) as x -> x
    | `Blocks blocks -> (
        let stitched =
          Tcg.Pipeline.run t.config.Config.passes (Tcg.Block.concat blocks)
        in
        match Backend.compile t.config stitched with
        | code ->
            Log.info (fun m ->
                m "superblock@0x%Lx: %d blocks, %d tcg ops" head.Tbchain.pc
                  (List.length blocks)
                  (Tcg.Block.op_count stitched));
            (* When the whole trace executes, it exits to the tail's
               dominant successor; anything else is a side exit. *)
            let tail = List.nth path (List.length path - 1) in
            let expected_exit =
              match Tier.dominant tail.Tbchain.tier with
              | Some (pc, _) -> pc
              | None -> -1L
            in
            `Installed (Native code, List.length blocks, expected_exit)
        | exception Fault.Fault _ -> `Failed
        | exception Backend.Register_pressure _ -> `Failed)

let maybe_superblock t node =
  let threshold = t.config.Config.trace_threshold in
  if
    threshold > 0
    && Tbchain.chaining t.tbs
    && node.Tbchain.exec_count >= threshold
    && node.Tbchain.super_len = 0
    && (not node.Tbchain.no_super)
    && (match node.Tbchain.body with Native _ -> true | Interp_only _ -> false)
    && Option.is_some (Tier.dominant node.Tbchain.tier)
  then
    match
      Obs.Trace.with_span ~cat:"engine"
        ~args:(fun () -> [ ("pc", Printf.sprintf "0x%Lx" node.Tbchain.pc) ])
        "superblock"
        (fun () -> form_superblock t node)
    with
    | `Installed (super, len, expected_exit) ->
        Tbchain.install_super node super ~len;
        Tier.note_super_installed node.Tbchain.tier ~expected_exit;
        Obs.Flight.record t.flight Obs.Flight.Superblock node.Tbchain.pc len;
        t.stats.superblocks <- t.stats.superblocks + 1;
        Obs.Metrics.incr (Lazy.force m_superblocks);
        Obs.Metrics.incr (Lazy.force Tier.m_promotions)
    | `Not_ready -> ()
    | `Failed -> node.Tbchain.no_super <- true

(* Tier-2 demotion: the superblock's observed side-exit rate crossed
   Tier's regression bound, so the stitched tail is mostly wasted work
   (and mispredicted path).  Fall back to the tier-1 TB and retrain the
   successor profile; after [Tier.max_deopts] demotions the block stops
   retrying. *)
let maybe_deopt t node =
  let p = node.Tbchain.tier in
  if Tier.should_deopt p then begin
    node.Tbchain.active <- node.Tbchain.body;
    node.Tbchain.super_len <- 0;
    Tier.note_deopt p;
    if not (Tier.retry_allowed p) then node.Tbchain.no_super <- true;
    Obs.Flight.record t.flight Obs.Flight.Tier_deopt node.Tbchain.pc
      p.Tier.deopt_count;
    t.stats.deopts <- t.stats.deopts + 1;
    Obs.Metrics.incr (Lazy.force Tier.m_deopts);
    Log.info (fun m ->
        m "superblock@0x%Lx deoptimized (side-exit regression)"
          node.Tbchain.pc)
  end

let step_block t g =
  if not g.finished then
    match
      match dispatch t g with
      | node ->
          t.stats.blocks_executed <- t.stats.blocks_executed + 1;
          node.Tbchain.exec_count <- node.Tbchain.exec_count + 1;
          let p = node.Tbchain.tier in
          (* Tier 0 -> 1: request the backend compile once the block
             proves hot.  [Cold] implies an interpreter body, so the
             check is two loads on the (sync-preset) fast path. *)
          if
            p.Tier.state = Tier.Cold
            && t.config.Config.jit_threshold > 0
            && node.Tbchain.exec_count >= t.config.Config.jit_threshold
          then request_compile t node;
          (match node.Tbchain.active with
          | Interp_only _ ->
              Obs.Flight.record g.gflight Obs.Flight.Block_enter g.pc 0;
              t.stats.interp_execs <- t.stats.interp_execs + 1;
              p.Tier.interp_execs <- p.Tier.interp_execs + 1
          | Native _ ->
              Obs.Flight.record g.gflight Obs.Flight.Block_enter g.pc 1);
          maybe_superblock t node;
          if node.Tbchain.super_len > 0 then Tier.record_super_entry p;
          (* Cycle attribution for hot-block ranking is metered: one
             enabled check per dispatch when off.  Guest cycle counting
             is deterministic, so reading it cannot perturb the run. *)
          if Obs.Metrics.enabled () then begin
            let c0 = g.arm.Arm.Machine.cycles in
            let r = exec t g node.Tbchain.active in
            let dc = g.arm.Arm.Machine.cycles - c0 in
            node.Tbchain.prof_cycles <- node.Tbchain.prof_cycles + dc;
            Obs.Metrics.observe (Lazy.force m_block_cycles) dc;
            `Ran (node, r)
          end
          else `Ran (node, exec t g node.Tbchain.active)
      | exception Fault.Fault f -> `Trap f
    with
    | `Ran (node, `Next pc) ->
        (* Branch-outcome profile: a plain block records its observed
           static successor; a superblock records whether it ran to its
           expected exit, which is what drives demotion.  Recording is
           unconditional (not metrics-gated) so observability cannot
           perturb tier decisions. *)
        if node.Tbchain.super_len > 0 then begin
          Tier.record_super_exit node.Tbchain.tier pc;
          maybe_deopt t node
        end
        else Tier.record_succ node.Tbchain.tier pc;
        (* Static exit: follow the patched edge, or patch one the first
           time the target is found translated.  Either way the next
           dispatch of this thread skips the hashtable. *)
        (match Tbchain.follow node pc with
        | Some target ->
            g.next_tb <- Some target;
            g.next_gen <- Tbchain.generation t.tbs
        | None -> (
            match Tbchain.find t.tbs pc with
            | Some target ->
                if Tbchain.link t.tbs node ~epc:pc target then
                  t.stats.chained <- t.stats.chained + 1;
                if Tbchain.chaining t.tbs then begin
                  g.next_tb <- Some target;
                  g.next_gen <- Tbchain.generation t.tbs
                end
            | None -> ()));
        g.pc <- pc
    | `Ran (node, `Jump pc) ->
        if node.Tbchain.super_len = 0 then Tier.record_other node.Tbchain.tier;
        g.pc <- pc
    | `Ran (node, `Halt) ->
        if node.Tbchain.super_len = 0 then Tier.record_other node.Tbchain.tier;
        Log.debug (fun m -> m "T%d halted" g.arm.Arm.Machine.tid);
        g.finished <- true
    | `Ran (node, `Trap f) ->
        if node.Tbchain.super_len = 0 then Tier.record_other node.Tbchain.tier;
        fault_thread t g f
    | `Trap f -> fault_thread t g f

type outcome =
  | Completed of guest_thread list
  | Exhausted of {
      blocks : int;
      live_threads : int;
      threads : guest_thread list;
    }

let threads = function
  | Completed ts -> ts
  | Exhausted { threads; _ } -> threads

(* Round-robin at block granularity; guest clone syscalls may add
   threads between rounds.  A queue plus a live counter keeps each
   round O(threads): no per-round re-filtering of the thread list, and
   spawned threads append in O(1) instead of rebuilding the list. *)
let run_concurrent ?(max_blocks = 50_000_000) t threads0 =
  Obs.Trace.with_span ~cat:"engine"
    ~args:(fun () -> [ ("threads", string_of_int (List.length threads0)) ])
    "run_concurrent"
  @@ fun () ->
  let all = Queue.create () in
  let live = ref 0 in
  let add g =
    Queue.push g all;
    if not g.finished then incr live
  in
  List.iter add threads0;
  let n = ref 0 in
  while !live > 0 && !n < max_blocks do
    Queue.iter
      (fun g ->
        if not g.finished then begin
          incr n;
          step_block t g;
          if g.finished then decr live
        end)
      all;
    List.iter add (drain_spawns t)
  done;
  let threads = List.of_seq (Queue.to_seq all) in
  if !live = 0 then Completed threads
  else begin
    Log.warn (fun m ->
        m "watchdog: block budget %d exhausted with %d live thread(s)"
          max_blocks !live);
    List.iter
      (fun g ->
        if not g.finished then
          Obs.Flight.record g.gflight Obs.Flight.Watchdog g.pc !n)
      threads;
    dump_postmortem t
      ~reason:(Printf.sprintf "exhausted: block budget spent, %d live" !live);
    Exhausted { blocks = !n; live_threads = !live; threads }
  end

let run_thread ?max_blocks t g = ignore (run_concurrent ?max_blocks t [ g ])

let run ?max_blocks ?regs t =
  let g = spawn t ~tid:0 ~entry:t.image.Image.Gelf.entry ?regs () in
  run_thread ?max_blocks t g;
  g

let reg g r = g.arm.Arm.Machine.regs.(X86.Reg.index r)
let cycles g = g.arm.Arm.Machine.cycles
let trap g = g.trap

(* ------------------------------------------------------------------ *)
(* Profiling views over the code cache and the stats record.           *)

(* Hottest translated blocks, ranked by observed-path heat (execution
   count plus dominant-successor hits from the tier profile — the
   tier-2 candidate ordering), with attributed guest cycles and raw
   counts carried along for display and fallback ranking. *)
let hot_blocks ?limit t =
  let entries =
    Tbchain.fold
      (fun pc n acc ->
        if n.Tbchain.exec_count = 0 then acc
        else
          {
            Obs.Profile.key = pc;
            count = n.Tbchain.exec_count;
            cost = n.Tbchain.prof_cycles;
            heat = Tier.heat ~execs:n.Tbchain.exec_count n.Tbchain.tier;
          }
          :: acc)
      t.tbs []
  in
  Obs.Profile.rank ?limit entries

(* One-line run summary for CLIs.  The core fields are printed
   unconditionally — in particular [interp-fallbacks], so a clean run
   is distinguishable from a run where degradation went unreported.
   The two install-queue fields are zero-suppressed and named after
   their gauges ([installs_dropped] / [install_hwm]): most runs never
   drop an install, and a sync engine has no queue at all. *)
let stats_line t g =
  let s = t.stats in
  Printf.sprintf
    "cycles=%d blocks=%d executed=%d chained=%d chain-hits=%d \
     jcache-hits=%d superblocks=%d interp-fallbacks=%d traps=%d \
     cache-quarantined=%d interp-execs=%d tier1-installed=%d deopts=%d%s%s"
    g.arm.Arm.Machine.cycles s.blocks_translated s.blocks_executed s.chained
    s.chain_hits s.jmp_cache_hits s.superblocks s.interp_fallbacks s.traps
    s.cache_quarantined s.interp_execs s.tier1_installed s.deopts
    (if s.installs_dropped > 0 then
       Printf.sprintf " installs-dropped=%d" s.installs_dropped
     else "")
    (if s.install_hwm > 0 then Printf.sprintf " install-hwm=%d" s.install_hwm
     else "")

(* Publish the hot-path dispatch counters (kept as plain mutable fields
   so dispatch pays nothing for them) into the metrics registry as
   gauges.  Call once at end of run, e.g. before printing a snapshot. *)
let publish_metrics t =
  if Obs.Metrics.enabled () then begin
    let s = t.stats in
    let set name v = Obs.Metrics.set (Obs.Metrics.gauge name) v in
    set "engine.stats.blocks_translated" s.blocks_translated;
    set "engine.stats.blocks_executed" s.blocks_executed;
    set "engine.stats.cache_hits" s.cache_hits;
    set "engine.stats.lookups" s.lookups;
    set "engine.stats.fences_emitted" s.fences_emitted;
    set "engine.stats.tcg_ops_before_opt" s.tcg_ops_before_opt;
    set "engine.stats.tcg_ops_after_opt" s.tcg_ops_after_opt;
    set "engine.stats.chained" s.chained;
    set "engine.stats.chain_hits" s.chain_hits;
    set "engine.stats.jmp_cache_hits" s.jmp_cache_hits;
    set "engine.stats.superblocks" s.superblocks;
    set "engine.stats.interp_fallbacks" s.interp_fallbacks;
    set "engine.stats.traps" s.traps;
    set "engine.stats.cache_quarantined" s.cache_quarantined;
    set "engine.stats.interp_execs" s.interp_execs;
    set "engine.stats.tier1_installed" s.tier1_installed;
    set "engine.stats.deopts" s.deopts;
    set "engine.stats.installs_dropped" s.installs_dropped;
    set "engine.stats.install_hwm" s.install_hwm;
    Tier.publish ~interp_execs:s.interp_execs ~installed:s.tier1_installed
      ~superblocks:s.superblocks ~deopts:s.deopts ~queue_hwm:s.install_hwm
      ~dropped:s.installs_dropped
  end

(* ------------------------------------------------------------------ *)
(* Persistent translation cache: translated host code keyed by guest
   pc, reusable across runs (cf. the translation-caching systems in the
   paper's related work, e.g. WOW64).  The cache is only valid for the
   configuration that produced it.

   Format v2 ("RSTC2\n") frames every entry as

     pc:16hex  len:%08d  crc:8hex  body[len]

   where [crc] is the CRC-32 of [body] (the [Arm.Encode.encode_block]
   bytes).  Length framing means a single flipped bit damages exactly
   one entry: the loader drops (quarantines) that entry, counts it in
   [stats.cache_quarantined] and the [cache.corrupt] metric, and the
   block simply retranslates on first execution.  Structural damage —
   bad magic, truncation, a config mismatch, an unparsable frame
   header — still fails the whole file, because nothing after the
   damage can be trusted to be aligned. *)

let cache_magic = "RSTC2\n"

let cache_corrupt_metric = "cache.corrupt"

let save_cache t path =
  let b = Buffer.create 4096 in
  Buffer.add_string b cache_magic;
  Buffer.add_char b (Char.chr (String.length t.config.Config.name));
  Buffer.add_string b t.config.Config.name;
  let entries =
    Tbchain.fold
      (fun pc n acc ->
        match n.Tbchain.body with
        | Native code -> (pc, code) :: acc
        | Interp_only _ -> acc)
      t.tbs []
    |> List.sort compare
  in
  Buffer.add_string b (Printf.sprintf "%08d" (List.length entries));
  let body = Buffer.create 256 in
  List.iter
    (fun (pc, code) ->
      Buffer.clear body;
      Arm.Encode.encode_block body code;
      let s = Buffer.contents body in
      Buffer.add_string b (Printf.sprintf "%016Lx" pc);
      Buffer.add_string b (Printf.sprintf "%08d" (String.length s));
      Buffer.add_string b (Checksum.Crc32.to_hex (Checksum.Crc32.digest s));
      Buffer.add_string b s)
    entries;
  (* Write-to-temp then rename: a crash mid-write must not leave a
     truncated cache under the real name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents b));
  (* The injected crash window: tmp is fully written, the rename has
     not happened.  A real crash here leaves the previous cache (if
     any) intact under [path] — which is exactly what the chaos
     campaign asserts. *)
  if Inject.fire t.inject Inject.Cache_write then
    Fault.raise_ Fault.Cache_corrupt
      (Printf.sprintf "injected cache-write fault before rename of %s" path);
  Sys.rename tmp path;
  List.length entries

(* Shared v2 parser.  [config] (when given) must match the recorded
   config name.  [on_entry] receives every structurally complete entry
   as [pc, Ok code] or [pc, Error reason] (checksum mismatch / decode
   failure inside an intact frame).  Raises [Fault Cache_corrupt] on
   structural damage. *)
let parse_cache ?config ~on_entry s =
  let corrupt fmt =
    Printf.ksprintf (fun m -> Fault.raise_ Fault.Cache_corrupt m) fmt
  in
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then corrupt "truncated";
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  if take (String.length cache_magic) <> cache_magic then corrupt "bad magic";
  let name_len = Char.code (take 1).[0] in
  let name = take name_len in
  (match config with
  | Some c when name <> c ->
      corrupt "cache was built for config %S, engine runs %S" name c
  | Some _ | None -> ());
  let count =
    match int_of_string_opt (take 8) with
    | Some n when n >= 0 -> n
    | Some _ | None -> corrupt "bad entry count"
  in
  for i = 1 to count do
    let pc =
      match Int64.of_string_opt ("0x" ^ take 16) with
      | Some pc -> pc
      | None -> corrupt "bad pc in entry %d" i
    in
    let len =
      match int_of_string_opt (take 8) with
      | Some n when n >= 0 -> n
      | Some _ | None -> corrupt "bad length in entry %d" i
    in
    let crc =
      match Checksum.Crc32.of_hex (take 8) with
      | Some c -> c
      | None -> corrupt "bad checksum field in entry %d" i
    in
    let body = take len in
    if Checksum.Crc32.digest body <> crc then
      on_entry i pc (Error "checksum mismatch")
    else
      match Arm.Decode.decode_block body 0 with
      | code, pos' when pos' = len -> on_entry i pc (Ok code)
      | _, pos' ->
          on_entry i pc
            (Error
               (Printf.sprintf "decoded %d of %d bytes (checksum collision?)"
                  pos' len))
      | exception Arm.Decode.Bad_encoding (at, msg) ->
          on_entry i pc (Error (Printf.sprintf "offset %d: %s" at msg))
  done;
  if !pos <> String.length s then
    corrupt "%d trailing bytes after last entry" (String.length s - !pos);
  count

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_cache t path =
  match
    let s = read_file path in
    (* Stage into a private table: a fault mid-parse must not leave a
       half-loaded code cache behind. *)
    let staged = Hashtbl.create 16 in
    let quarantined = ref 0 in
    let on_entry i pc = function
      | Ok code ->
          if Inject.fire t.inject Inject.Cache_read then
            Fault.raise_ Fault.Cache_corrupt
              (Printf.sprintf "injected cache-read fault at entry %d" i)
          else Hashtbl.replace staged pc code
      | Error reason ->
          incr quarantined;
          Log.warn (fun m ->
              m "cache %s entry %d (pc 0x%Lx) quarantined: %s" path i pc
                reason)
    in
    let _count =
      parse_cache ~config:t.config.Config.name ~on_entry s
    in
    (staged, !quarantined)
  with
  | staged, quarantined ->
      (* Loaded translations replace whatever the engine had patched
         jumps into: discard queued installs, then unchain everything
         (bumping the generation, so per-thread jump caches, pending
         chained targets and in-flight background compiles all die)
         before installing the staged blocks.  [clear_links] also
         resets every surviving node's tier profile — a resumed run
         must not promote on counters trained before the reload. *)
      discard_pending_installs t;
      Tbchain.clear_links t.tbs;
      Hashtbl.iter
        (fun pc code ->
          let n = Tbchain.insert t.tbs pc (Native code) in
          n.Tbchain.tier.Tier.state <- Tier.Published)
        staged;
      t.stats.cache_quarantined <- t.stats.cache_quarantined + quarantined;
      if quarantined > 0 && Obs.Metrics.enabled () then
        Obs.Metrics.add (Obs.Metrics.counter cache_corrupt_metric) quarantined;
      Obs.Trace.instant ~cat:"engine"
        ~args:(fun () ->
          [
            ("blocks", string_of_int (Hashtbl.length staged));
            ("quarantined", string_of_int quarantined);
          ])
        "load_cache";
      Ok (Hashtbl.length staged)
  | exception Fault.Fault f ->
      Log.warn (fun m ->
          m "persistent cache %s unusable (%s); starting cold" path
            (Fault.to_string f));
      Error f
  | exception Sys_error msg ->
      let f = Fault.make Fault.Cache_corrupt msg in
      Log.warn (fun m ->
          m "persistent cache %s unreadable (%s); starting cold" path msg);
      Error f

(* Offline integrity check, used by [gelf_tool verify].  Does not need
   an engine: config binding is reported, not enforced. *)
let verify_cache path =
  match
    let s = read_file path in
    let ok = ref 0 in
    let bad = ref [] in
    let on_entry i pc = function
      | Ok _ -> incr ok
      | Error reason ->
          bad := Printf.sprintf "entry %d (pc 0x%Lx): %s" i pc reason :: !bad
    in
    let _count = parse_cache ~on_entry s in
    (!ok, List.rev !bad)
  with
  | ok, bad -> Ok (ok, bad)
  | exception Fault.Fault f -> Error f
  | exception Sys_error msg -> Error (Fault.make Fault.Cache_corrupt msg)
