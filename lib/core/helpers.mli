(** Qemu-style runtime helpers and host-library bindings, registered on
    the Arm machine:

    - [helper_syscall]: user-mode syscall passthrough (exit, write);
    - [helper_cmpxchg_gcc9] / [helper_cmpxchg_gcc10]: the RMW helper
      built on GCC atomics — an LDAXR/STLXR pair vs a CASAL (§3.1) —
      with matching cycle costs;
    - [helper_xadd_*] / [helper_xchg_*]: the other LOCK-prefixed RMWs;
    - [sf_add] … [sf_sqrt]: softfloat emulation of SSE scalar doubles;
    - every {!Linker.Hostlib} function, for translated [Host_call]s. *)

(** Extra model cycles for one softfloat operation (on top of the
    helper-call round trip). *)
val softfloat_cycles : int

(** [register_all ?on_clone ?inject shared] — [on_clone ~entry ~arg]
    implements the clone syscall (56): spawn a guest thread at [entry]
    with RDI=[arg], returning its tid.  [?inject] enables the
    [Host_call] fault-injection site on every host-library binding
    (the call raises a [Link_fault] instead of executing). *)
val register_all :
  ?on_clone:(entry:int64 -> arg:int64 -> int64) ->
  ?inject:Inject.t ->
  Arm.Machine.shared ->
  unit
