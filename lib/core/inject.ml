type site =
  | Decode
  | Compile
  | Host_call
  | Cache_read
  | Cache_write
  | Pool_task
  | Journal_write

type rule =
  | Nth of site * int
  | Always of site
  | Seeded of { site : site; seed : int64; permille : int }

type plan = rule list

type t = {
  plan : plan;
  counts : int array;  (* per-site occurrence counters *)
  states : int64 array;  (* LCG state, one slot per plan rule *)
}

let site_count = 7

let site_index = function
  | Decode -> 0
  | Compile -> 1
  | Host_call -> 2
  | Cache_read -> 3
  | Cache_write -> 4
  | Pool_task -> 5
  | Journal_write -> 6

let site_name = function
  | Decode -> "decode"
  | Compile -> "compile"
  | Host_call -> "host-call"
  | Cache_read -> "cache-read"
  | Cache_write -> "cache-write"
  | Pool_task -> "pool-task"
  | Journal_write -> "journal-write"

let all_sites =
  [ Decode; Compile; Host_call; Cache_read; Cache_write; Pool_task; Journal_write ]

let rule_site = function
  | Nth (s, _) | Always s -> s
  | Seeded { site; _ } -> site

let create plan =
  {
    plan;
    counts = Array.make site_count 0;
    states =
      Array.of_list
        (List.map
           (function Seeded { seed; _ } -> seed | Nth _ | Always _ -> 0L)
           plan);
  }

let disabled () = create []

(* Knuth's MMIX multiplier: a full-period 64-bit LCG, deterministic
   across runs so seeded failure schedules are reproducible. *)
let lcg_next st =
  Int64.add (Int64.mul st 6364136223846793005L) 1442695040888963407L

let fire t site =
  let idx = site_index site in
  t.counts.(idx) <- t.counts.(idx) + 1;
  let n = t.counts.(idx) in
  let hit i rule =
    rule_site rule = site
    &&
    match rule with
    | Always _ -> true
    | Nth (_, k) -> n = k
    | Seeded { permille; _ } ->
        let st = lcg_next t.states.(i) in
        t.states.(i) <- st;
        (* top bits of an LCG are the well-mixed ones *)
        Int64.to_int (Int64.unsigned_rem (Int64.shift_right_logical st 16) 1000L)
        < permille
  in
  (* List.exists would short-circuit and skip advancing later seeded
     rules' states; fold every rule so schedules stay independent. *)
  List.fold_left (fun acc (i, r) -> hit i r || acc) false
    (List.mapi (fun i r -> (i, r)) t.plan)

let fire_hook t site () = fire t site
let count t site = t.counts.(site_index site)

let site_of_string s =
  (* Accept both separators everywhere, so the underscore spellings
     users type stay symmetric with the hyphenated names [pp_rule]
     emits. *)
  let s = String.map (function '_' -> '-' | c -> c) s in
  List.find_opt (fun site -> site_name site = s) all_sites

let known_sites () = String.concat ", " (List.map site_name all_sites)

let rule_of_string s =
  match String.split_on_char ':' s with
  | [ "always"; site ] -> (
      match site_of_string site with
      | Some site -> Ok (Always site)
      | None ->
          Error
            (Printf.sprintf "inject: unknown site %S (one of: %s)" site
               (known_sites ())))
  | [ "nth"; site; k ] -> (
      match (site_of_string site, int_of_string_opt k) with
      | Some site, Some k when k >= 1 -> Ok (Nth (site, k))
      | None, _ ->
          Error
            (Printf.sprintf "inject: unknown site %S (one of: %s)" site
               (known_sites ()))
      | Some _, Some k ->
          Error
            (Printf.sprintf
               "inject: occurrence count must be >= 1, got %d in %S" k s)
      | Some _, None ->
          Error (Printf.sprintf "inject: bad occurrence count %S" k))
  | [ "seeded"; site; seed; permille ] -> (
      match
        (site_of_string site, Int64.of_string_opt seed, int_of_string_opt permille)
      with
      | Some site, Some seed, Some permille when permille >= 0 && permille <= 1000
        ->
          Ok (Seeded { site; seed; permille })
      | None, _, _ ->
          Error
            (Printf.sprintf "inject: unknown site %S (one of: %s)" site
               (known_sites ()))
      | Some _, Some _, Some permille ->
          Error
            (Printf.sprintf
               "inject: permille %d out of range [0, 1000] in %S" permille s)
      | Some _, None, _ ->
          Error (Printf.sprintf "inject: bad seed %S" seed)
      | Some _, Some _, None ->
          Error (Printf.sprintf "inject: bad permille %S" permille))
  | _ -> Error (Printf.sprintf "inject: cannot parse rule %S" s)

let plan_of_string s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  List.fold_left
    (fun acc part ->
      match (acc, rule_of_string (String.trim part)) with
      | Error e, _ -> Error e
      | Ok rules, Ok r -> Ok (rules @ [ r ])
      | Ok _, Error e -> Error e)
    (Ok []) parts

let pp_rule ppf = function
  | Always site -> Fmt.pf ppf "always:%s" (site_name site)
  | Nth (site, k) -> Fmt.pf ppf "nth:%s:%d" (site_name site) k
  | Seeded { site; seed; permille } ->
      Fmt.pf ppf "seeded:%s:%Ld:%d" (site_name site) seed permille

(* [Fmt.comma] breaks with [@ ], which a narrow formatter margin turns
   into a newline the parser would then have to scrub back out of rule
   texts; a plain ", " keeps [plan_of_string (Fmt.str "%a" pp_plan p)]
   an identity for every well-formed plan at any margin. *)
let pp_plan = Fmt.list ~sep:(Fmt.any ", ") pp_rule

let plan_to_string p = Fmt.str "%a" pp_plan p
