module En = Litmus.Enumerate

type report = {
  name : string;
  ok : bool;
  src_behaviours : int;
  tgt_behaviours : int;
  extra : En.behaviour list;
}

let refines ~src_model ~tgt_model ~src ~tgt =
  (* Cancellation points between the two enumerations: a supervised
     sweep's deadline also fires when the source side finished in time
     but the target side would not have. *)
  Parallel.Supervise.poll ();
  let bs = En.behaviours src_model src in
  Parallel.Supervise.poll ();
  let bt = En.behaviours tgt_model tgt in
  let extra =
    List.filter
      (fun b -> not (List.exists (fun b' -> En.behaviour_compare b b' = 0) bs))
      bt
  in
  {
    name = src.Litmus.Ast.name;
    ok = extra = [];
    src_behaviours = List.length bs;
    tgt_behaviours = List.length bt;
    extra;
  }

let check_one ~name ~src_model ~tgt_model f (tname, src) =
  let tgt = f src in
  let r = refines ~src_model ~tgt_model ~src ~tgt in
  { r with name = Printf.sprintf "%s: %s" name tname }

let check_scheme_safe ?pool ~name f ~src_model ~tgt_model corpus =
  Parallel.Pool.map_safe ?pool (check_one ~name ~src_model ~tgt_model f) corpus

(* ------------------------------------------------------------------ *)
(* Batch planner                                                       *)

type cell = {
  cell_scheme : string;
  cell_program : string;
  cell_f : Litmus.Ast.prog -> Litmus.Ast.prog;
  cell_src_model : Axiom.Model.t;
  cell_tgt_model : Axiom.Model.t;
  cell_src : Litmus.Ast.prog;
}

(* The batch engine: instead of one opaque task per (scheme, program)
   cell, plan the whole sweep first.  Transforms run on the caller (they
   are cheap, and an exception surfaces in input order exactly as the
   sequential path's would); the enumeration work — where all the time
   goes — is grouped by program AST, so each distinct program becomes
   one pool task enumerated once under {e every} model any cell needs
   ([En.behaviours_many] shares the pruned survivor pass across
   models).  Schemes that target the same program under several models
   (e.g. the same RMW lowering checked under arm-orig and arm-fix)
   collapse to a single enumeration, a structural saving the per-task
   path cannot see.  Reports are assembled from the returned behaviour
   sets in cell order, so results are identical — contents and order —
   to the per-cell sweep. *)
let check_cells ?pool cells =
  let prepared = List.map (fun c -> (c, c.cell_f c.cell_src)) cells in
  let jobs : (Litmus.Ast.prog, Axiom.Model.t list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  let need (m : Axiom.Model.t) p =
    match Hashtbl.find_opt jobs p with
    | Some ms ->
        if
          not
            (List.exists (fun (m' : Axiom.Model.t) -> m'.name = m.name) !ms)
        then ms := m :: !ms
    | None ->
        Hashtbl.add jobs p (ref [ m ]);
        order := p :: !order
  in
  List.iter
    (fun (c, tgt) ->
      need c.cell_src_model c.cell_src;
      need c.cell_tgt_model tgt)
    prepared;
  let jobs_list =
    List.rev_map (fun p -> (p, List.rev !(Hashtbl.find jobs p))) !order
  in
  let results =
    Parallel.Pool.map_list ?pool
      (fun (p, models) -> En.behaviours_many models p)
      jobs_list
  in
  let tbl = Hashtbl.create 64 in
  List.iter2
    (fun (p, _) res ->
      List.iter (fun (mname, bs) -> Hashtbl.replace tbl (mname, p) bs) res)
    jobs_list results;
  List.map
    (fun (c, tgt) ->
      let bs = Hashtbl.find tbl (c.cell_src_model.Axiom.Model.name, c.cell_src) in
      let bt = Hashtbl.find tbl (c.cell_tgt_model.Axiom.Model.name, tgt) in
      let extra =
        List.filter
          (fun b ->
            not (List.exists (fun b' -> En.behaviour_compare b b' = 0) bs))
          bt
      in
      {
        name = Printf.sprintf "%s: %s" c.cell_scheme c.cell_program;
        ok = extra = [];
        src_behaviours = List.length bs;
        tgt_behaviours = List.length bt;
        extra;
      })
    prepared

let check_scheme ?pool ~name f ~src_model ~tgt_model corpus =
  match pool with
  | None -> List.map (check_one ~name ~src_model ~tgt_model f) corpus
  | Some _ ->
      check_cells ?pool
        (List.map
           (fun (tname, src) ->
             {
               cell_scheme = name;
               cell_program = tname;
               cell_f = f;
               cell_src_model = src_model;
               cell_tgt_model = tgt_model;
               cell_src = src;
             })
           corpus)

(* ------------------------------------------------------------------ *)
(* Memoized verdicts for generated corpora                             *)

(* Keyed by (scheme, models, canonical AST): two generated programs that
   canonicalize identically (thread order, location and register names
   normalised away) have isomorphic behaviour sets under every model, so
   they share one verdict.  The served report's [name] is rewritten per
   caller; its counts and extra behaviours come from the first-checked
   member of the class (identical up to the renaming bijection). *)
let memo : (string * string * string * string, report) Hashtbl.t =
  Hashtbl.create 256

let memo_mutex = Mutex.create ()
let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0

let check_memo ~scheme ~f ~src_model ~tgt_model (pname, src) =
  let key =
    ( scheme,
      src_model.Axiom.Model.name,
      tgt_model.Axiom.Model.name,
      Litmus.Generate.canonical_string src )
  in
  let cached =
    Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo key)
  in
  let r =
    match cached with
    | Some r ->
        Atomic.incr memo_hits;
        r
    | None ->
        Atomic.incr memo_misses;
        let r = refines ~src_model ~tgt_model ~src ~tgt:(f src) in
        Mutex.protect memo_mutex (fun () -> Hashtbl.replace memo key r);
        r
  in
  { r with name = Printf.sprintf "%s: %s" scheme pname }

let memo_stats () = (Atomic.get memo_hits, Atomic.get memo_misses)

let clear_memo () =
  Mutex.protect memo_mutex (fun () -> Hashtbl.reset memo);
  Atomic.set memo_hits 0;
  Atomic.set memo_misses 0

let all_ok = List.for_all (fun r -> r.ok)

let pp_report ppf r =
  Fmt.pf ppf "[%s] %s (src:%d tgt:%d behaviours)"
    (if r.ok then "OK" else "VIOLATION")
    r.name r.src_behaviours r.tgt_behaviours;
  if not r.ok then
    Fmt.pf ppf "@,  new behaviours: @[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut En.pp_behaviour)
      r.extra
