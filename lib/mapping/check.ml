module En = Litmus.Enumerate

type report = {
  name : string;
  ok : bool;
  src_behaviours : int;
  tgt_behaviours : int;
  extra : En.behaviour list;
}

let refines ~src_model ~tgt_model ~src ~tgt =
  (* Cancellation points between the two enumerations: a supervised
     sweep's deadline also fires when the source side finished in time
     but the target side would not have. *)
  Parallel.Supervise.poll ();
  let bs = En.behaviours src_model src in
  Parallel.Supervise.poll ();
  let bt = En.behaviours tgt_model tgt in
  let extra =
    List.filter
      (fun b -> not (List.exists (fun b' -> En.behaviour_compare b b' = 0) bs))
      bt
  in
  {
    name = src.Litmus.Ast.name;
    ok = extra = [];
    src_behaviours = List.length bs;
    tgt_behaviours = List.length bt;
    extra;
  }

let check_one ~name ~src_model ~tgt_model f (tname, src) =
  let tgt = f src in
  let r = refines ~src_model ~tgt_model ~src ~tgt in
  { r with name = Printf.sprintf "%s: %s" name tname }

let check_scheme_safe ?pool ~name f ~src_model ~tgt_model corpus =
  Parallel.Pool.map_safe ?pool (check_one ~name ~src_model ~tgt_model f) corpus

let check_scheme ?pool ~name f ~src_model ~tgt_model corpus =
  Parallel.Pool.map_list ?pool
    (check_one ~name ~src_model ~tgt_model f)
    corpus

let all_ok = List.for_all (fun r -> r.ok)

let pp_report ppf r =
  Fmt.pf ppf "[%s] %s (src:%d tgt:%d behaviours)"
    (if r.ok then "OK" else "VIOLATION")
    r.name r.src_behaviours r.tgt_behaviours;
  if not r.ok then
    Fmt.pf ppf "@,  new behaviours: @[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut En.pp_behaviour)
      r.extra
