(** Witness capture for failing refinement checks (paper §5.4 read
    backwards): when {!Check.refines} reports extra target behaviours,
    resolve each behaviour back to the concrete executions behind it —
    the artifacts lib/report renders as execution graphs.

    Capture is a separate pass over an existing {!Check.report}, not a
    change to the report itself: the default sweep (and its benchmarked
    shape) is untouched, and witnesses are only enumerated for the
    failing checks one asks about. *)

type t = {
  behaviour : Litmus.Enumerate.behaviour;  (** the extra target behaviour *)
  target : Axiom.Execution.t;
      (** a consistent {e target} execution exhibiting it *)
  forbidden : Axiom.Execution.t option;
      (** the inconsistent {e source} candidate closest to the behaviour
          — the execution whose axiom violations explain why the source
          forbids it ([None] only if the source rejects no candidate) *)
  violations : Axiom.Explain.verdict list;
      (** [Explain.check_all] on [forbidden] under the source model *)
  nearest : (Axiom.Execution.t * Litmus.Enumerate.behaviour) option;
      (** the consistent source execution with the closest behaviour *)
}

(** Number of differing (memory ∪ register) bindings between two
    behaviours — the metric behind [forbidden]/[nearest] selection. *)
val distance : Litmus.Enumerate.behaviour -> Litmus.Enumerate.behaviour -> int

(** One witness per extra behaviour of a failing report (at most
    [max_witnesses], default 3; [[]] when the report is ok). *)
val capture :
  ?max_witnesses:int ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  src:Litmus.Ast.prog ->
  tgt:Litmus.Ast.prog ->
  Check.report ->
  t list

(** Instructions in a program, counting [If] nodes and the instructions
    of both branches. *)
val instruction_count : Litmus.Ast.prog -> int

(** Greedy shrinker: repeatedly delete single instruction sites (an [If]
    site deletes its whole subtree) while
    [refines ~src ~tgt:(scheme src)] still fails, to a fixpoint.  The
    result is never larger than the input; if the input does not fail
    the refinement it is returned unchanged. *)
val shrink :
  scheme:(Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  Litmus.Ast.prog ->
  Litmus.Ast.prog
