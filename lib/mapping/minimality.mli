(** Executable form of the paper's mapping-minimality claims (§5.4,
    Figures 8 and 9): "these mapping schemes are precise: each placed
    fence is necessary in some program".

    For a mapped program, every fence occurrence is deleted in turn and
    Theorem-1 refinement is re-checked; a deletion that re-admits a
    forbidden behaviour proves that fence necessary. *)

(** Number of fence instructions in a program (flattened, including
    branches of [If]). *)
val fence_count : Litmus.Ast.prog -> int

(** [delete_fence p n] removes the [n]-th fence (0-based, in flattening
    order). *)
val delete_fence : Litmus.Ast.prog -> int -> Litmus.Ast.prog

type site = { index : int; fence : Axiom.Event.fence; necessary : bool }

(** For each fence of the mapped program [f src], is it necessary for
    [refines ~src ~tgt]?  With [?pool], the per-fence deletion checks
    run in parallel; the site list is identical to the sequential
    sweep's. *)
val necessary_fences :
  ?pool:Parallel.Pool.t ->
  (Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  Litmus.Ast.prog ->
  site list

val pp_site : Format.formatter -> site -> unit
