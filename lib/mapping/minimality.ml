open Litmus.Ast

let rec fences_in_instrs acc = function
  | [] -> acc
  | Fence f :: rest -> fences_in_instrs (f :: acc) rest
  | If { then_; else_; _ } :: rest ->
      let acc = fences_in_instrs acc then_ in
      let acc = fences_in_instrs acc else_ in
      fences_in_instrs acc rest
  | (Load _ | Store _ | Cas _ | Assign _) :: rest -> fences_in_instrs acc rest

let fences (p : prog) =
  List.rev
    (List.fold_left
       (fun acc (t : thread) -> fences_in_instrs acc t.code)
       [] p.threads)

let fence_count p = List.length (fences p)

(* Delete the n-th fence in the same flattening order as [fences]. *)
let delete_fence (p : prog) n =
  let k = ref 0 in
  let rec del instrs =
    List.concat_map
      (fun i ->
        match i with
        | Fence _ ->
            let here = !k in
            incr k;
            if here = n then [] else [ i ]
        | If { cond; then_; else_ } ->
            (* match the counting order of [fences_in_instrs] *)
            let then_ = del then_ in
            let else_ = del else_ in
            [ If { cond; then_; else_ } ]
        | Load _ | Store _ | Cas _ | Assign _ -> [ i ])
      instrs
  in
  (* explicit fold: List.map's evaluation order is unspecified and the
     counter is shared across threads *)
  let threads =
    List.rev
      (List.fold_left
         (fun acc (t : thread) -> { t with code = del t.code } :: acc)
         [] p.threads)
  in
  { p with name = Printf.sprintf "%s-fence%d" p.name n; threads }

type site = { index : int; fence : Axiom.Event.fence; necessary : bool }

let necessary_fences ?pool f ~src_model ~tgt_model src =
  let tgt = f src in
  let sites = List.mapi (fun index fence -> (index, fence)) (fences tgt) in
  Parallel.Pool.map_list ?pool
    (fun (index, fence) ->
      let weakened = delete_fence tgt index in
      let r = Check.refines ~src_model ~tgt_model ~src ~tgt:weakened in
      { index; fence; necessary = not r.Check.ok })
    sites

let pp_site ppf s =
  Fmt.pf ppf "fence %d (%a): %s" s.index Axiom.Event.pp_fence s.fence
    (if s.necessary then "necessary" else "redundant here")
