(** Executable Theorem 1 (paper §5.4): a transformation from source
    program [Ps] in model [Ms] to target [Pt] in [Mt] is correct if every
    consistent target behaviour is a consistent source behaviour.

    This module checks behaviour inclusion by exhaustive enumeration —
    the executable counterpart of the paper's Agda proofs, applied to the
    litmus corpus. *)

type report = {
  name : string;
  ok : bool;
  src_behaviours : int;
  tgt_behaviours : int;
  extra : Litmus.Enumerate.behaviour list;
      (** target behaviours with no source counterpart (the bug
          witnesses when [not ok]) *)
}

val refines :
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  src:Litmus.Ast.prog ->
  tgt:Litmus.Ast.prog ->
  report

(** One sweep cell for the batch planner: check that [cell_f cell_src]
    under [cell_tgt_model] refines [cell_src] under [cell_src_model].
    [cell_scheme] and [cell_program] name the report
    ("scheme: program"). *)
type cell = {
  cell_scheme : string;
  cell_program : string;
  cell_f : Litmus.Ast.prog -> Litmus.Ast.prog;
  cell_src_model : Axiom.Model.t;
  cell_tgt_model : Axiom.Model.t;
  cell_src : Litmus.Ast.prog;
}

(** The batch refinement engine.  [check_cells ?pool cells] plans the
    whole sweep before running it: transforms are applied up front, the
    enumeration work is grouped by distinct program AST (each becomes
    one pool chunk-scheduled task enumerated under every model any cell
    needs, sharing the pruned survivor pass — see
    [Litmus.Enumerate.behaviours_many]), and reports are assembled in
    cell order.  Verdicts are identical — contents and order — to
    running each cell through {!refines} on its own; the planner only
    removes duplicated enumeration work a per-cell sweep repeats. *)
val check_cells : ?pool:Parallel.Pool.t -> cell list -> report list

(** [check_scheme ~name f ~src_model ~tgt_model corpus] maps every
    corpus program through [f] and checks refinement.  With [?pool],
    the corpus is routed through {!check_cells} on that pool; the
    report list is identical — contents and order — to the sequential
    sweep. *)
val check_scheme :
  ?pool:Parallel.Pool.t ->
  name:string ->
  (Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  (string * Litmus.Ast.prog) list ->
  report list

(** Like {!check_scheme}, but a program whose check raises yields a
    typed per-task [Error fault] (carrying the original exception)
    instead of aborting the sweep — one diverging corpus entry cannot
    take the other verdicts down with it. *)
val check_scheme_safe :
  ?pool:Parallel.Pool.t ->
  name:string ->
  (Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  (string * Litmus.Ast.prog) list ->
  (report, Parallel.Pool.fault) result list

(** Memoized {!refines} for generated corpora: the verdict is keyed by
    (scheme, model names, [Litmus.Generate.canonical_string src]), so
    canonically-equal programs — same shape up to thread order and
    location/register naming — share one checked verdict.  The served
    report's [name] is ["scheme: pname"]; counts and extra behaviours
    come from the first-checked member of the class (identical up to
    the renaming bijection).  Domain-safe. *)
val check_memo :
  scheme:string ->
  f:(Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  string * Litmus.Ast.prog ->
  report

(** [(hits, misses)] of the verdict memo since start/last clear. *)
val memo_stats : unit -> int * int

(** Empty the verdict memo and zero its counters. *)
val clear_memo : unit -> unit

val all_ok : report list -> bool
val pp_report : Format.formatter -> report -> unit
