(** Executable Theorem 1 (paper §5.4): a transformation from source
    program [Ps] in model [Ms] to target [Pt] in [Mt] is correct if every
    consistent target behaviour is a consistent source behaviour.

    This module checks behaviour inclusion by exhaustive enumeration —
    the executable counterpart of the paper's Agda proofs, applied to the
    litmus corpus. *)

type report = {
  name : string;
  ok : bool;
  src_behaviours : int;
  tgt_behaviours : int;
  extra : Litmus.Enumerate.behaviour list;
      (** target behaviours with no source counterpart (the bug
          witnesses when [not ok]) *)
}

val refines :
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  src:Litmus.Ast.prog ->
  tgt:Litmus.Ast.prog ->
  report

(** [check_scheme ~name f ~src_model ~tgt_model corpus] maps every
    corpus program through [f] and checks refinement.  With [?pool], the
    corpus programs are checked in parallel (one pool task per program);
    the report list is identical — contents and order — to the
    sequential sweep. *)
val check_scheme :
  ?pool:Parallel.Pool.t ->
  name:string ->
  (Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  (string * Litmus.Ast.prog) list ->
  report list

(** Like {!check_scheme}, but a program whose check raises yields a
    typed per-task [Error fault] (carrying the original exception)
    instead of aborting the sweep — one diverging corpus entry cannot
    take the other verdicts down with it. *)
val check_scheme_safe :
  ?pool:Parallel.Pool.t ->
  name:string ->
  (Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  (string * Litmus.Ast.prog) list ->
  (report, Parallel.Pool.fault) result list

val all_ok : report list -> bool
val pp_report : Format.formatter -> report -> unit
