module En = Litmus.Enumerate
module X = Axiom.Execution
open Litmus.Ast

type t = {
  behaviour : En.behaviour;
  target : X.t;
  forbidden : X.t option;
  violations : Axiom.Explain.verdict list;
  nearest : (X.t * En.behaviour) option;
}

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)

(* How far apart two behaviours are: the number of bindings (memory or
   register) present in one but not the other. *)
let distance (a : En.behaviour) (b : En.behaviour) =
  let sym xs ys =
    let missing xs ys = List.filter (fun x -> not (List.mem x ys)) xs in
    List.length (missing xs ys) + List.length (missing ys xs)
  in
  sym a.En.mem b.En.mem + sym a.En.regs b.En.regs

let behaviour_of_candidate (x, regs) = { En.mem = X.behaviour x; regs }

(* An inconsistent source candidate exhibiting [b] — the forbidden
   execution herd would draw.  Exact behaviour match preferred; if the
   mapping renamed a register binding, fall back to the closest
   inconsistent candidate. *)
let find_forbidden (m : Axiom.Model.t) src b =
  let rejected =
    List.filter
      (fun (x, _) -> not (m.Axiom.Model.consistent x))
      (En.candidates src)
  in
  let scored =
    List.map (fun c -> (distance b (behaviour_of_candidate c), fst c)) rejected
  in
  match List.sort (fun (d, _) (d', _) -> compare d d') scored with
  | (_, x) :: _ -> Some x
  | [] -> None

let nearest_consistent (m : Axiom.Model.t) src b =
  let scored =
    List.map
      (fun (x, bx) -> (distance b bx, (x, bx)))
      (En.consistent_executions m src)
  in
  match List.sort (fun (d, _) (d', _) -> compare d d') scored with
  | (_, xb) :: _ -> Some xb
  | [] -> None

let capture ?(max_witnesses = 3) ~src_model ~tgt_model ~src ~tgt
    (r : Check.report) =
  if r.Check.ok then []
  else
    let extra =
      List.filteri (fun i _ -> i < max_witnesses) r.Check.extra
    in
    let tgt_execs = En.consistent_executions tgt_model tgt in
    List.filter_map
      (fun b ->
        match
          List.find_opt
            (fun (_, bx) -> En.behaviour_compare b bx = 0)
            tgt_execs
        with
        | None -> None
        | Some (target, _) ->
            let forbidden = find_forbidden src_model src b in
            let violations =
              match (forbidden, Axiom.Explain.which_of_model src_model) with
              | Some x, Some w -> Axiom.Explain.check_all w x
              | _ -> []
            in
            Some
              {
                behaviour = b;
                target;
                forbidden;
                violations;
                nearest = nearest_consistent src_model src b;
              })
      extra

(* ------------------------------------------------------------------ *)
(* Greedy shrinker                                                     *)

let rec count_instrs = function
  | [] -> 0
  | If { then_; else_; _ } :: rest ->
      1 + count_instrs then_ + count_instrs else_ + count_instrs rest
  | _ :: rest -> 1 + count_instrs rest

let instruction_count (p : prog) =
  List.fold_left (fun acc (t : thread) -> acc + count_instrs t.code) 0 p.threads

(* Delete the n-th instruction in flattening order (threads in order,
   [If] counts itself before its branches; deleting an [If] deletes the
   whole subtree). *)
let delete_instr (p : prog) n =
  let k = ref 0 in
  let rec del instrs =
    List.concat_map
      (fun i ->
        let here = !k in
        incr k;
        match i with
        | If { cond; then_; else_ } ->
            if here = n then begin
              (* skip the subtree's counter slots *)
              k := !k + count_instrs then_ + count_instrs else_;
              []
            end
            else
              let then_ = del then_ in
              let else_ = del else_ in
              [ If { cond; then_; else_ } ]
        | i -> if here = n then [] else [ i ])
      instrs
  in
  let threads =
    List.rev
      (List.fold_left
         (fun acc (t : thread) -> { t with code = del t.code } :: acc)
         [] p.threads)
  in
  { p with threads }

let still_fails ~scheme ~src_model ~tgt_model src =
  not (Check.refines ~src_model ~tgt_model ~src ~tgt:(scheme src)).Check.ok

let shrink ~scheme ~src_model ~tgt_model src =
  if not (still_fails ~scheme ~src_model ~tgt_model src) then src
  else begin
    let current = ref { src with name = src.name ^ "-shrunk" } in
    let progress = ref true in
    while !progress do
      progress := false;
      let n = instruction_count !current in
      let i = ref 0 in
      while (not !progress) && !i < n do
        let candidate = delete_instr !current !i in
        if
          instruction_count candidate < instruction_count !current
          && still_fails ~scheme ~src_model ~tgt_model candidate
        then begin
          current := candidate;
          progress := true
        end;
        incr i
      done
    done;
    !current
  end
