(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7), prints the §3 correctness findings, runs the
   DESIGN.md ablations, measures the engine itself with Bechamel (one
   Test.make per table/figure), and times the corpus × schemes
   refinement sweep sequentially vs on the Domain pool, recording the
   result as BENCH_refinement.json.

   Usage: main.exe [SECTION...] [-j N] [--reps N] [-o FILE] [--no-bechamel]

   Sections (default: all): fig2/fig3/fig7 (mapping tables), sec3,
   fig8/fig9 (minimality), fig12..fig15 (figures), ablations, bechamel,
   refinement (the JSON wall-clock bench).  "--no-bechamel" is kept as a
   shorthand for every section except bechamel. *)

let ppf = Format.std_formatter

(* Common artifact envelope: every BENCH_*.json opens with the same
   self-describing fields (schema_version / section / git_rev) so report
   tooling can validate any artifact the same way; the pre-existing
   per-bench fields follow unchanged at the top level (CI greps them by
   name). *)
let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       ignore (Unix.close_process_in ic);
       if line = "" then "unknown" else line
     with _ -> "unknown")

let envelope sec =
  Printf.sprintf
    "\"schema_version\": 1,\n  \"section\": %S,\n  \"git_rev\": %S," sec
    (Lazy.force git_rev)

let section title =
  Format.printf "@.===================================================@.";
  Format.printf "== %s@." title;
  Format.printf "===================================================@."

(* ------------------------------------------------------------------ *)
(* Mapping tables (Figures 2, 3, 7)                                    *)

let mapping_tables () =
  section "Mapping tables (Figures 2, 3, 7)";
  Harness.Figures.pp_mapping_tables ppf ()

(* ------------------------------------------------------------------ *)
(* §3 correctness findings                                             *)

let correctness_findings () =
  section "Section 3: correctness findings (exhaustive model checking)";
  let x86 = Axiom.X86_tso.model in
  let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original in
  let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected in
  let check name scheme tgt_model prog expect_violation =
    let r =
      Mapping.Check.refines ~src_model:x86 ~tgt_model ~src:prog
        ~tgt:(scheme prog)
    in
    Format.printf "  %-58s %s (expected %s)@." name
      (if r.Mapping.Check.ok then "correct" else "VIOLATION")
      (if expect_violation then "VIOLATION" else "correct")
  in
  let qemu_gcc10 =
    Mapping.Schemes.(
      x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc10 })
  in
  let qemu_gcc9 =
    Mapping.Schemes.(
      x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc9 })
  in
  let risotto =
    let fe, be = Mapping.Schemes.risotto_rmw2_preset in
    Mapping.Schemes.x86_to_arm fe be
  in
  let risotto_casal =
    let fe, be = Mapping.Schemes.risotto_casal_preset in
    Mapping.Schemes.x86_to_arm fe be
  in
  check "Qemu (gcc10/casal) on MPQ  [par.3.2 error 1]" qemu_gcc10 arm_fix
    Litmus.Catalog.mpq_x86 true;
  check "Qemu (gcc9/ldaxr-stlxr) on SBQ  [par.3.2 error 2]" qemu_gcc9 arm_fix
    Litmus.Catalog.sbq_x86 true;
  check "Arm-Cats direct mapping on SBAL, original model  [par.3.3]"
    Mapping.Schemes.x86_to_arm_direct_armcats arm_orig Litmus.Catalog.sbal_x86
    true;
  check "Arm-Cats direct mapping on SBAL, corrected model  [fix]"
    Mapping.Schemes.x86_to_arm_direct_armcats arm_fix Litmus.Catalog.sbal_x86
    false;
  check "Risotto verified mapping (rmw2) on MPQ" risotto arm_fix
    Litmus.Catalog.mpq_x86 false;
  check "Risotto verified mapping (rmw2) on SBQ" risotto arm_fix
    Litmus.Catalog.sbq_x86 false;
  check "Risotto casal mapping on SBAL, corrected model" risotto_casal arm_fix
    Litmus.Catalog.sbal_x86 false;
  (* FMR: the RAW transformation at IR level (§3.2 error 3). *)
  let tcgm = Axiom.Tcg_model.model in
  let raw_applied =
    List.hd
      (Mapping.Transform.applications Mapping.Transform.Raw
         Litmus.Catalog.fmr_tcg_src)
  in
  let r =
    Mapping.Check.refines ~src_model:tcgm ~tgt_model:tcgm
      ~src:Litmus.Catalog.fmr_tcg_src ~tgt:raw_applied
  in
  Format.printf "  %-58s %s (expected VIOLATION)@."
    "RAW elimination across Fmr (FMR)  [par.3.2 error 3]"
    (if r.Mapping.Check.ok then "correct" else "VIOLATION")

(* ------------------------------------------------------------------ *)
(* Figures 8/9: mapping minimality                                     *)

let minimality ?pool () =
  section "Figures 8/9: mapping minimality (every rule is load-bearing)";
  let x86 = Axiom.X86_tso.model and tcg = Axiom.Tcg_model.model in
  let drop_kind k scheme p =
    Litmus.Ast.map_instrs
      (function Litmus.Ast.Fence f when f = k -> [] | i -> [ i ])
      (scheme p)
  in
  let base = Mapping.Schemes.(x86_to_tcg Risotto_frontend) in
  let broken scheme =
    List.filter_map
      (fun (name, src) ->
        if
          (Mapping.Check.refines ~src_model:x86 ~tgt_model:tcg ~src
             ~tgt:(scheme src))
            .Mapping.Check.ok
        then None
        else Some name)
      Litmus.Catalog.mapping_corpus
  in
  Format.printf "  full Figure-7a scheme: %d broken programs@."
    (List.length (broken base));
  List.iter
    (fun (label, kind) ->
      Format.printf "  without %-4s: breaks %s@." label
        (String.concat ", " (broken (drop_kind kind base))))
    [
      ("Frm", Axiom.Event.F_rm);
      ("Fww", Axiom.Event.F_ww);
      ("Fsc", Axiom.Event.F_sc);
    ];
  (* Per-token necessity inside the Figure-8 witnesses. *)
  List.iter
    (fun name ->
      let src = List.assoc name Litmus.Catalog.mapping_corpus in
      let sites =
        Mapping.Minimality.necessary_fences ?pool base ~src_model:x86
          ~tgt_model:tcg src
      in
      Format.printf "  %s image: %a@." name
        (Fmt.list ~sep:Fmt.comma Mapping.Minimality.pp_site)
        sites)
    [ "LB"; "MP" ]

(* ------------------------------------------------------------------ *)
(* Figures 12-15                                                       *)

let figures ?pool () =
  section "Figure 12: PARSEC / Phoenix run time";
  Harness.Figures.pp_fig12 ppf (Harness.Figures.fig12 ?pool ());
  section "Figure 13: OpenSSL / sqlite (dynamic host linker)";
  Harness.Figures.pp_fig13 ppf (Harness.Figures.fig13 ?pool ());
  section "Figure 14: libm (dynamic host linker)";
  Harness.Figures.pp_fig14 ppf (Harness.Figures.fig14 ?pool ());
  section "Figure 15: CAS throughput";
  Harness.Figures.pp_fig15 ppf (Harness.Figures.fig15 ?pool ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablations () =
  section "Ablation: fence merging (tcg-ver with vs without the pass)";
  Format.printf "%-18s %12s %12s %9s@." "benchmark" "with-merge" "no-merge"
    "saved";
  List.iter
    (fun (name, w, wo) ->
      Format.printf "%-18s %12d %12d %8.2f%%@." name w wo
        (100. *. (1. -. (float_of_int w /. float_of_int wo))))
    (Harness.Ablation.fence_merge ());
  section "Ablation: CAS line-transfer cost sweep (4 threads / 1 var)";
  Format.printf "%-10s %12s %12s %10s@." "transfer" "qemu" "risotto" "gain";
  List.iter
    (fun (t, q, r) ->
      Format.printf "%-10d %12.3e %12.3e %9.1f%%@." t q r
        (100. *. ((r /. q) -. 1.)))
    (Harness.Ablation.cas_transfer_sweep ());
  section "Static translation statistics (freqmine)";
  Format.printf "%-12s %8s %10s@." "config" "dmbs" "tcg-ops";
  List.iter
    (fun (name, dmbs, ops) -> Format.printf "%-12s %8d %10d@." name dmbs ops)
    (Harness.Ablation.static_fences "freqmine")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)

let bechamel_benches () =
  section "Bechamel: wall-clock micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let stage = Staged.stage in
  let fig12_one config =
    let spec = (Harness.Parsec.find "freqmine").Harness.Parsec.spec in
    let spec = { spec with Harness.Kernel.iters = 100 } in
    fun () -> ignore (Harness.Kernel.run_dbt config spec)
  in
  let fig13_one () =
    ignore
      (Harness.Libbench.run
         {
           Harness.Libbench.label = "sha256-1024";
           func = "sha256";
           kind = Harness.Libbench.Digest 1024;
           calls = 1;
         })
  in
  let fig14_one () =
    ignore
      (Harness.Libbench.run
         {
           Harness.Libbench.label = "sin";
           func = "sin";
           kind = Harness.Libbench.Scalar (Int64.bits_of_float 0.5);
           calls = 10;
         })
  in
  let fig15_one () =
    ignore (Harness.Casbench.run { Harness.Casbench.threads = 4; vars = 1 })
  in
  let sec3_one () =
    let fe, be = Mapping.Schemes.risotto_casal_preset in
    ignore
      (Mapping.Check.refines ~src_model:Axiom.X86_tso.model
         ~tgt_model:(Axiom.Arm_cats.model Axiom.Arm_cats.Corrected)
         ~src:Litmus.Catalog.mpq_x86
         ~tgt:(Mapping.Schemes.x86_to_arm fe be Litmus.Catalog.mpq_x86))
  in
  let litmus_one () =
    ignore
      (Litmus.Enumerate.behaviours Axiom.X86_tso.model Litmus.Catalog.mp_x86)
  in
  let translate_image =
    Image.Gelf.build ~entry:"main"
      (Harness.Kernel.to_x86
         {
           Harness.Kernel.name = "tb";
           iters = 1;
           mix =
             { Harness.Kernel.loads = 6; stores = 2; arith = 8; fp = 0; locks = 0 };
         })
  in
  let translate_one () =
    let eng = Core.Engine.create Core.Config.risotto translate_image in
    ignore (Core.Engine.lookup_block eng translate_image.Image.Gelf.entry)
  in
  Bechamel_runner.run ~name:"risotto"
    [
      Test.make ~name:"fig12/freqmine/qemu" (stage (fig12_one Core.Config.qemu));
      Test.make ~name:"fig12/freqmine/risotto"
        (stage (fig12_one Core.Config.risotto));
      Test.make ~name:"fig13/sha256-1024" (stage fig13_one);
      Test.make ~name:"fig14/sin" (stage fig14_one);
      Test.make ~name:"fig15/cas-4-1" (stage fig15_one);
      Test.make ~name:"sec3/theorem1-MPQ" (stage sec3_one);
      Test.make ~name:"litmus/enumerate-MP" (stage litmus_one);
      Test.make ~name:"dbt/translate-block" (stage translate_one);
    ]

(* ------------------------------------------------------------------ *)
(* Refinement sweep wall-clock bench → BENCH_refinement.json           *)

(* Every mapping scheme the test suite checks, over the whole corpus:
   the workload behind every Theorem-1 verdict in this repo. *)
let all_schemes =
  let open Mapping.Schemes in
  let x86 = Axiom.X86_tso.model in
  let tcg = Axiom.Tcg_model.model in
  let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original in
  let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected in
  let rmw2_fe, rmw2_be = risotto_rmw2_preset in
  let casal_fe, casal_be = risotto_casal_preset in
  let qemu_fe, qemu_be = qemu_preset in
  [
    ("fig7a/x86->tcg", x86_to_tcg Risotto_frontend, x86, tcg);
    ("fig2/x86->tcg", x86_to_tcg Qemu_frontend, x86, tcg);
    ("qemu-gcc10/arm-fix", x86_to_arm qemu_fe qemu_be, x86, arm_fix);
    ( "qemu-gcc9/arm-fix",
      x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc9 },
      x86,
      arm_fix );
    ("risotto-rmw2/arm-orig", x86_to_arm rmw2_fe rmw2_be, x86, arm_orig);
    ("risotto-rmw2/arm-fix", x86_to_arm rmw2_fe rmw2_be, x86, arm_fix);
    ("risotto-casal/arm-orig", x86_to_arm casal_fe casal_be, x86, arm_orig);
    ("risotto-casal/arm-fix", x86_to_arm casal_fe casal_be, x86, arm_fix);
    ("armcats-direct/arm-orig", x86_to_arm_direct_armcats, x86, arm_orig);
    ("armcats-direct/arm-fix", x86_to_arm_direct_armcats, x86, arm_fix);
    ( "no-fences/arm-fix",
      x86_to_arm No_fences_frontend { lowering = `Risotto; rmw = Risotto_rmw1 },
      x86,
      arm_fix );
  ]

let sweep_tasks () =
  List.concat_map
    (fun (sname, f, src_model, tgt_model) ->
      List.map
        (fun (tname, src) -> (sname, tname, f, src_model, tgt_model, src))
        Litmus.Catalog.mapping_corpus)
    all_schemes

let run_sweep ?pool tasks =
  Parallel.Pool.map_list ?pool
    (fun (sname, tname, f, src_model, tgt_model, src) ->
      let r = Mapping.Check.refines ~src_model ~tgt_model ~src ~tgt:(f src) in
      { r with Mapping.Check.name = Printf.sprintf "%s: %s" sname tname })
    tasks

let sweep_cells tasks =
  List.map
    (fun (sname, tname, f, src_model, tgt_model, src) ->
      {
        Mapping.Check.cell_scheme = sname;
        cell_program = tname;
        cell_f = f;
        cell_src_model = src_model;
        cell_tgt_model = tgt_model;
        cell_src = src;
      })
    tasks

(* Wall time of the best of [reps] cold-cache runs. *)
let time_runs ~reps run =
  let best = ref infinity in
  let reports = ref [] in
  for _ = 1 to reps do
    Litmus.Enumerate.clear_caches ();
    let t0 = Unix.gettimeofday () in
    reports := run ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (!best, !reports)

(* Enumerations (behaviour-cache misses) of one cold run of [run]. *)
let count_enumerations run =
  Litmus.Enumerate.clear_caches ();
  let _, m0 = Litmus.Enumerate.cache_stats () in
  ignore (run ());
  let _, m1 = Litmus.Enumerate.cache_stats () in
  m1 - m0

let chunk_json stats =
  String.concat ", "
    (List.map
       (fun (c : Parallel.Pool.chunk_stat) ->
         Printf.sprintf
           {|{ "domain": %d, "start": %d, "len": %d, "us": %.1f }|}
           c.Parallel.Pool.c_domain c.Parallel.Pool.c_start
           c.Parallel.Pool.c_len c.Parallel.Pool.c_us)
       stats)

(* The sequential arm is the per-task [refines] loop — the exact code
   path of every earlier recorded baseline — while the parallel arm
   goes through the batch planner ([check_cells]): cells are grouped by
   target program and the model-independent survivor set is enumerated
   once per program for all models that need it, as chunked pool
   batches.  On a 1-core box the pool spawns no surplus domains and the
   speedup is the planner's structural work reduction; with real cores
   the chunks also run concurrently. *)
let refinement_bench ~jobs ~reps ~out () =
  section
    (Printf.sprintf
       "Refinement sweep wall-clock bench (sequential vs -j %d planned, best \
        of %d)"
       jobs reps);
  let tasks = sweep_tasks () in
  let cells = sweep_cells tasks in
  let seq_s, seq_reports = time_runs ~reps (fun () -> run_sweep tasks) in
  let (par_s, par_reports), chunks, workers =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        let timed =
          time_runs ~reps (fun () -> Mapping.Check.check_cells ~pool cells)
        in
        (timed, Parallel.Pool.batch_stats pool, Parallel.Pool.workers_spawned pool))
  in
  let seq_enums = count_enumerations (fun () -> run_sweep tasks) in
  let par_enums =
    count_enumerations (fun () -> Mapping.Check.check_cells cells)
  in
  let hits, misses = Litmus.Enumerate.cache_stats () in
  let identical = seq_reports = par_reports in
  let violations =
    List.length (List.filter (fun r -> not r.Mapping.Check.ok) seq_reports)
  in
  let speedup = seq_s /. par_s in
  let chunk_size =
    List.fold_left
      (fun acc (c : Parallel.Pool.chunk_stat) -> max acc c.Parallel.Pool.c_len)
      0 chunks
  in
  let domains_used =
    List.length
      (List.sort_uniq compare
         (List.map
            (fun (c : Parallel.Pool.chunk_stat) -> c.Parallel.Pool.c_domain)
            chunks))
  in
  Format.printf
    "  %d tasks (%d schemes x %d programs): sequential %.3fs, -j %d planned \
     %.3fs, speedup %.2fx@.  enumerations: %d per-task vs %d planned; %d \
     chunk(s) of <=%d over %d domain(s) (%d worker(s) spawned)@.  verdicts \
     identical: %b; violations (expected bug reports): %d@."
    (List.length tasks) (List.length all_schemes)
    (List.length Litmus.Catalog.mapping_corpus)
    seq_s jobs par_s speedup seq_enums par_enums (List.length chunks)
    chunk_size domains_used workers identical violations;
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  %s
  "bench": "corpus x schemes refinement sweep",
  "schemes": %d,
  "corpus_programs": %d,
  "tasks": %d,
  "reps": %d,
  "jobs": %d,
  "recommended_domains": %d,
  "workers_spawned": %d,
  "sequential_s": %.6f,
  "parallel_s": %.6f,
  "speedup": %.3f,
  "enumerations": { "sequential": %d, "planned": %d },
  "chunk_size": %d,
  "domains_used": %d,
  "chunks": [%s],
  "verdicts_identical": %b,
  "violations": %d,
  "behaviour_cache": { "hits": %d, "misses": %d }
}
|}
    (envelope "refinement")
    (List.length all_schemes)
    (List.length Litmus.Catalog.mapping_corpus)
    (List.length tasks) reps jobs
    (Domain.recommended_domain_count ())
    workers seq_s par_s speedup seq_enums par_enums chunk_size domains_used
    (chunk_json chunks) identical violations hits misses;
  close_out oc;
  Format.printf "  wrote %s@." out;
  if not identical then begin
    Format.eprintf "refinement bench: parallel verdicts diverge!@.";
    exit 2
  end;
  if speedup <= 1.0 then begin
    Format.eprintf
      "refinement bench: planned parallel sweep did not beat the per-task \
       baseline (%.3fx)!@."
      speedup;
    exit 2
  end

(* ------------------------------------------------------------------ *)
(* Generator bench: QCheck corpus throughput → BENCH_generator.json    *)

(* End-to-end throughput of the generated pipeline: generate + dedup a
   seeded corpus, check the shape classes per-task vs through the
   planner, then serve the full (pre-dedup) corpus from the verdict
   memo — the steady-state cost of one verdict per generated program. *)
let generator_bench ~jobs ~reps ~gen_n ~seed ~out () =
  section
    (Printf.sprintf
       "Generator bench: %d seeded programs through the planned sweep (best \
        of %d)"
       gen_n reps);
  let t0 = Unix.gettimeofday () in
  let corpus, entries = Report.Sweep.generated_entries ~seed gen_n in
  let gen_s = Unix.gettimeofday () -. t0 in
  let classes = List.length corpus.Litmus.Generate.classes in
  let dedup = Litmus.Generate.dedup_ratio corpus in
  let cells =
    List.concat_map
      (fun (e : Report.Sweep.entry) ->
        List.map
          (fun (pname, src) ->
            {
              Mapping.Check.cell_scheme = e.Report.Sweep.scheme;
              cell_program = pname;
              cell_f = e.Report.Sweep.f;
              cell_src_model = e.Report.Sweep.src_model;
              cell_tgt_model = e.Report.Sweep.tgt_model;
              cell_src = src;
            })
          e.Report.Sweep.corpus)
      entries
  in
  let per_task () =
    List.map
      (fun (c : Mapping.Check.cell) ->
        let r =
          Mapping.Check.refines ~src_model:c.Mapping.Check.cell_src_model
            ~tgt_model:c.Mapping.Check.cell_tgt_model
            ~src:c.Mapping.Check.cell_src
            ~tgt:(c.Mapping.Check.cell_f c.Mapping.Check.cell_src)
        in
        {
          r with
          Mapping.Check.name =
            Printf.sprintf "%s: %s" c.Mapping.Check.cell_scheme
              c.Mapping.Check.cell_program;
        })
      cells
  in
  let seq_s, seq_reports = time_runs ~reps per_task in
  let (par_s, par_reports), workers =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        let timed =
          time_runs ~reps (fun () -> Mapping.Check.check_cells ~pool cells)
        in
        (timed, Parallel.Pool.workers_spawned pool))
  in
  let identical = seq_reports = par_reports in
  (* Memo-served steady state: every generated program (not just the
     class representatives) gets a verdict; canonically-equal programs
     share one.  Warm caches deliberately — this measures the serving
     cost, the cold cost is the planned arm above. *)
  let raw_programs =
    List.map
      (fun (p : Litmus.Ast.prog) -> (p.Litmus.Ast.name, p))
      (Litmus.Generate.generate ~seed gen_n)
  in
  let memo_tasks =
    List.concat_map
      (fun (e : Report.Sweep.entry) ->
        List.map (fun (pname, p) -> (e, pname, p)) raw_programs)
      entries
  in
  Mapping.Check.clear_memo ();
  let t0 = Unix.gettimeofday () in
  let served =
    List.map
      (fun ((e : Report.Sweep.entry), pname, p) ->
        Mapping.Check.check_memo ~scheme:e.Report.Sweep.scheme
          ~f:e.Report.Sweep.f ~src_model:e.Report.Sweep.src_model
          ~tgt_model:e.Report.Sweep.tgt_model (pname, p))
      memo_tasks
  in
  let memo_s = Unix.gettimeofday () -. t0 in
  let memo_hits, memo_misses = Mapping.Check.memo_stats () in
  let memo_tasks_n = List.length memo_tasks in
  let tasks_per_s = float_of_int memo_tasks_n /. memo_s in
  let served_ok = List.for_all (fun r -> r.Mapping.Check.ok) served in
  let speedup = seq_s /. par_s in
  Format.printf
    "  generated %d -> %d classes (dedup %.1f%%) in %.3fs; %d cells@.  \
     per-task %.3fs, -j %d planned %.3fs, speedup %.2fx (%d worker(s)); \
     verdicts identical: %b@.  memo-served: %d verdicts in %.3fs (%.0f \
     tasks/s, %d hits / %d misses), all ok: %b@."
    gen_n classes (100. *. dedup) gen_s (List.length cells) seq_s jobs par_s
    speedup workers identical memo_tasks_n memo_s tasks_per_s memo_hits
    memo_misses served_ok;
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  %s
  "bench": "generated corpus: dedup + planned sweep + memo serving",
  "programs": %d,
  "seed": %d,
  "classes": %d,
  "dedup_ratio": %.4f,
  "generate_s": %.6f,
  "schemes": %d,
  "cells": %d,
  "reps": %d,
  "jobs": %d,
  "workers_spawned": %d,
  "sequential_s": %.6f,
  "parallel_s": %.6f,
  "speedup": %.3f,
  "verdicts_identical": %b,
  "memo": { "tasks": %d, "wall_s": %.6f, "tasks_per_s": %.1f, "hits": %d, "misses": %d },
  "all_ok": %b
}
|}
    (envelope "generator") gen_n seed classes dedup gen_s
    (List.length entries) (List.length cells) reps jobs workers seq_s par_s
    speedup identical memo_tasks_n memo_s tasks_per_s memo_hits memo_misses
    served_ok;
  close_out oc;
  Format.printf "  wrote %s@." out;
  if not identical then begin
    Format.eprintf "generator bench: planned verdicts diverge!@.";
    exit 2
  end;
  if not served_ok then begin
    Format.eprintf
      "generator bench: a generated scheme reported a violation!@.";
    exit 2
  end

(* ------------------------------------------------------------------ *)
(* Dispatch bench: chained vs unchained vs interp → BENCH_dispatch.json *)

(* One pass over the PARSEC/Phoenix kernels under a config, recording
   per-kernel result fingerprints (final registers + memory) alongside
   cycle and dispatch statistics.  Results are deterministic; wall time
   is the best of [reps] passes. *)
let dispatch_pass config =
  List.map
    (fun b ->
      let spec = b.Harness.Parsec.spec in
      let g, eng = Harness.Kernel.run_dbt config spec in
      let stats = Core.Engine.stats eng in
      ( spec.Harness.Kernel.name,
        (* Guest-visible state only: registers RAX..R15 (indices 0-15;
           higher indices are host scratch registers, which legitimately
           differ between backend code and the interpreter). *)
        Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
        Memsys.Mem.dump (Core.Engine.memory eng),
        Core.Engine.cycles g,
        stats ))
    Harness.Parsec.all

let dispatch_bench ~reps ~out () =
  section
    (Printf.sprintf
       "Dispatch bench: chained vs unchained vs interp (%d kernels, best of \
        %d)"
       (List.length Harness.Parsec.all)
       reps);
  let risotto = Core.Config.risotto in
  let chained =
    { risotto with Core.Config.name = "risotto"; trace_threshold = 16 }
  in
  let unchained = { risotto with Core.Config.chain = false } in
  let interp =
    (* Force every block onto the TCG interpreter: the no-JIT baseline. *)
    {
      risotto with
      Core.Config.chain = false;
      inject = [ Core.Inject.Always Core.Inject.Compile ];
    }
  in
  let time config =
    let best = ref infinity in
    let results = ref [] in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = dispatch_pass config in
      let dt = Unix.gettimeofday () -. t0 in
      results := r;
      if dt < !best then best := dt
    done;
    (!best, !results)
  in
  let chained_s, chained_r = time chained in
  let unchained_s, unchained_r = time unchained in
  let interp_s, interp_r = time interp in
  let sum f results =
    List.fold_left (fun acc (_, _, _, _, s) -> acc + f s) 0 results
  in
  let cycles results =
    List.fold_left (fun acc (_, _, _, c, _) -> acc + c) 0 results
  in
  let c_cycles = cycles chained_r and u_cycles = cycles unchained_r in
  let c_exec = sum (fun s -> s.Core.Engine.blocks_executed) chained_r in
  let u_exec = sum (fun s -> s.Core.Engine.blocks_executed) unchained_r in
  (* Unchained dispatches once per guest block, so [u_exec] is the true
     guest-block count; both runs execute the same guest blocks (parity
     is asserted below), a chained dispatch just covers a whole trace.
     Cycles-per-block therefore compares guest cycles over the same
     denominator, and the dispatch counts show the amortization. *)
  let guest_blocks = u_exec in
  let cpb c =
    if guest_blocks = 0 then 0.0
    else float_of_int c /. float_of_int guest_blocks
  in
  let c_cpb = cpb c_cycles and u_cpb = cpb u_cycles in
  let chained_edges = sum (fun s -> s.Core.Engine.chained) chained_r in
  let chain_hits = sum (fun s -> s.Core.Engine.chain_hits) chained_r in
  let jcache_hits = sum (fun s -> s.Core.Engine.jmp_cache_hits) chained_r in
  let superblocks = sum (fun s -> s.Core.Engine.superblocks) chained_r in
  let lookups = sum (fun s -> s.Core.Engine.lookups) chained_r in
  let interp_fb = sum (fun s -> s.Core.Engine.interp_fallbacks) interp_r in
  let chain_hit_rate =
    if lookups = 0 then 0.0 else float_of_int chain_hits /. float_of_int lookups
  in
  (* Result parity: chained, unchained and interp runs must agree on
     every kernel's final registers and memory. *)
  let parity =
    List.for_all2
      (fun (n1, r1, m1, _, _) (n2, r2, m2, _, _) ->
        n1 = n2 && r1 = r2 && m1 = m2)
      chained_r unchained_r
    && List.for_all2
         (fun (n1, r1, m1, _, _) (n2, r2, m2, _, _) ->
           n1 = n2 && r1 = r2 && m1 = m2)
         unchained_r interp_r
  in
  Format.printf
    "  wall: chained %.3fs, unchained %.3fs, interp %.3fs@.  guest cycles: \
     chained %d, unchained %d (%.2f%% saved by cross-block optimization)@.  \
     cycles/block over %d guest blocks: chained %.2f, unchained %.2f@.  \
     dispatches: chained %d, unchained %d (%.1fx fewer)@.  chained stats: %d \
     edges patched, %d chain hits, %d jcache hits, %d superblocks, chain-hit \
     rate %.1f%%@.  interp fallbacks (forced): %d@.  results identical: %b@."
    chained_s unchained_s interp_s c_cycles u_cycles
    (100. *. (1. -. (float_of_int c_cycles /. float_of_int u_cycles)))
    guest_blocks c_cpb u_cpb c_exec u_exec
    (float_of_int u_exec /. float_of_int (max 1 c_exec))
    chained_edges chain_hits jcache_hits superblocks (100. *. chain_hit_rate)
    interp_fb parity;
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  %s
  "bench": "dispatch: chained vs unchained vs interp",
  "kernels": %d,
  "reps": %d,
  "trace_threshold": %d,
  "guest_blocks": %d,
  "chained": {
    "wall_s": %.6f,
    "cycles": %d,
    "dispatches": %d,
    "cycles_per_block": %.3f,
    "edges_patched": %d,
    "chain_hits": %d,
    "jmp_cache_hits": %d,
    "superblocks": %d,
    "chain_hit_rate": %.4f
  },
  "unchained": {
    "wall_s": %.6f,
    "cycles": %d,
    "dispatches": %d,
    "cycles_per_block": %.3f
  },
  "interp": {
    "wall_s": %.6f,
    "interp_fallbacks": %d
  },
  "cycles_per_block_ratio": %.4f,
  "dispatch_reduction": %.2f,
  "results_identical": %b
}
|}
    (envelope "dispatch")
    (List.length Harness.Parsec.all)
    reps chained.Core.Config.trace_threshold guest_blocks chained_s c_cycles
    c_exec c_cpb chained_edges chain_hits jcache_hits superblocks
    chain_hit_rate unchained_s u_cycles u_exec u_cpb interp_s interp_fb
    (if u_cpb = 0.0 then 0.0 else c_cpb /. u_cpb)
    (float_of_int u_exec /. float_of_int (max 1 c_exec))
    parity;
  close_out oc;
  Format.printf "  wrote %s@." out;
  if not parity then begin
    Format.eprintf "dispatch bench: chained/unchained results diverge!@.";
    exit 2
  end;
  (* The deterministic acceptance gates: superblocks must fire, every
     dispatch metric must improve, and cross-block optimization must
     not cost guest cycles. *)
  if superblocks = 0 || chain_hits = 0 then begin
    Format.eprintf "dispatch bench: chaining/superblocks did not engage!@.";
    exit 2
  end;
  if c_cycles >= u_cycles || c_exec >= u_exec then begin
    Format.eprintf
      "dispatch bench: chained dispatch did not beat unchained (%.3f vs %.3f \
       cycles/block, %d vs %d dispatches)!@."
      c_cpb u_cpb c_exec u_exec;
    exit 2
  end

(* ------------------------------------------------------------------ *)
(* Observability bench: parity + disabled overhead → BENCH_obs.json    *)

(* Passes over the dispatch kernels — obs fully off, flight recorder
   off, metrics on, tracer on — must produce byte-identical guest end
   states, cycles and engine statistics (the probes and the recorder
   are behaviour-invisible).  The cost of a disabled probe and of one
   enabled flight-recorder event are microbenchmarked directly and
   compared against the measured per-block dispatch time: the hooks
   compiled into the hot path must cost <2%% of a block (hard gate at
   5%% for disabled probes, 2%% for the always-on recorder).  The
   metrics pass also reads back the fence-provenance ledger counters
   (fence.<kind>.<outcome>) to report the merged ratio, and an async
   tiered pass feeds the tier-lifecycle latency histograms so the
   request-to-publish percentiles land in the JSON. *)
let obs_bench ~reps ~out ~trace_out () =
  section
    (Printf.sprintf
       "Observability: tracer/metrics/recorder parity and overhead (%d \
        kernels, best of %d)"
       (List.length Harness.Parsec.all)
       reps);
  let config =
    { Core.Config.risotto with Core.Config.trace_threshold = 16 }
  in
  let time_pass () =
    let best = ref infinity in
    let results = ref [] in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = dispatch_pass config in
      let dt = Unix.gettimeofday () -. t0 in
      results := r;
      if dt < !best then best := dt
    done;
    (!best, !results)
  in
  (* The flight recorder is always-on: the "off" baseline below runs
     with it recording, exactly as production does.  The extra
     recorder-off pass pins down differential parity and the
     wall-clock cost of leaving it on. *)
  Obs.Trace.disable ();
  Obs.Metrics.disable ();
  let off_s, off_r = time_pass () in
  Obs.Flight.disable ();
  let norec_s, norec_r = time_pass () in
  Obs.Flight.enable ();
  Obs.Metrics.enable ();
  let met_s, met_r = time_pass () in
  let met_snap = Obs.Metrics.snapshot () in
  Obs.Metrics.disable ();
  Obs.Trace.enable ();
  let trace_s, trace_r = time_pass () in
  Obs.Trace.disable ();
  let trace_events = Obs.Trace.write trace_out in
  (* Parity: registers, memory, guest cycles and every stats counter. *)
  let same =
    List.for_all2 (fun (n1, r1, m1, c1, s1) (n2, r2, m2, c2, s2) ->
        n1 = n2 && r1 = r2 && m1 = m2 && c1 = c2 && s1 = s2)
  in
  let parity = same off_r met_r && same off_r trace_r in
  let recorder_parity = same off_r norec_r in
  (* Microbenchmark one disabled probe bundle (span + counter +
     histogram), then cost it against the measured per-block wall
     time of the instrumented dispatch loop. *)
  let iters = 2_000_000 in
  let c = Obs.Metrics.counter "bench.obs.noop" in
  let h = Obs.Metrics.histogram "bench.obs.noop_ns" in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    Obs.Trace.with_span ~cat:"bench" "noop" (fun () -> ());
    Obs.Metrics.incr c;
    Obs.Metrics.observe h (Sys.opaque_identity i)
  done;
  let probe_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  let blocks =
    List.fold_left
      (fun acc (_, _, _, _, s) -> acc + s.Core.Engine.blocks_executed)
      0 off_r
  in
  let block_ns = off_s *. 1e9 /. float_of_int (max 1 blocks) in
  (* The dispatch loop crosses at most two probe sites per executed
     block while disabled (the metrics gate in step_block, plus the
     translate/superblock spans amortized over reuse). *)
  let overhead_pct = 2.0 *. probe_ns /. block_ns *. 100.0 in
  (* The recorder itself: one enabled record is three unboxed array
     stores and an increment; step_block logs one block-enter per
     dispatched block (tier events are amortized over block reuse), so
     record_ns/block_ns bounds the always-on cost. *)
  let ring = Obs.Flight.create () in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    Obs.Flight.record ring Obs.Flight.Block_enter 0x1000L
      (Sys.opaque_identity i)
  done;
  let record_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  let recorder_pct = record_ns /. block_ns *. 100.0 in
  let recorder_wall_delta_pct =
    if norec_s > 0.0 then (off_s -. norec_s) /. norec_s *. 100.0 else 0.0
  in
  (* Fence-elimination provenance: the metrics pass accumulated the
     fence.<kind>.<outcome> ledger counters while the risotto pipeline
     (Fence_merge included) retranslated every kernel. *)
  let fence_outcome suffix =
    List.fold_left
      (fun acc (name, v) ->
        if Filename.check_suffix name suffix then acc + v else acc)
      0
      (Obs.Metrics.counters_with_prefix met_snap "fence.")
  in
  let fence_emitted = fence_outcome ".emitted" in
  let fence_merged = fence_outcome ".merged" in
  let fence_dropped = fence_outcome ".dropped" in
  let merged_ratio =
    if fence_emitted = 0 then 0.0
    else
      float_of_int (fence_merged + fence_dropped)
      /. float_of_int fence_emitted
  in
  (* Tier-lifecycle latency: an async tiered pass (background installs,
     metrics on) feeds the request-to-publish and queue-wait
     histograms; a percentile is the upper bound of the first log2
     bucket whose cumulative count reaches the quantile. *)
  let tiered =
    {
      config with
      Core.Config.jit_threshold = 8;
      trace_threshold = 24;
      sync_compile = false;
    }
  in
  Obs.Metrics.enable ();
  List.iter
    (fun b ->
      let _, eng = Harness.Kernel.run_dbt tiered b.Harness.Parsec.spec in
      Core.Engine.drain_installs eng)
    Harness.Parsec.all;
  let lat_snap = Obs.Metrics.snapshot () in
  Obs.Metrics.disable ();
  let percentile (h : Obs.Metrics.hist_snap) q =
    if h.Obs.Metrics.count = 0 then 0
    else begin
      let target =
        max 1 (int_of_float (ceil (q *. float_of_int h.Obs.Metrics.count)))
      in
      let acc = ref 0 and res = ref 0 in
      (try
         Array.iteri
           (fun b n ->
             acc := !acc + n;
             if !acc >= target then begin
               (res := if b = 0 then 0 else (1 lsl min b 62) - 1);
               raise Exit
             end)
           h.Obs.Metrics.counts
       with Exit -> ());
      !res
    end
  in
  let hist name =
    match Obs.Metrics.find_histogram lat_snap name with
    | Some h -> h
    | None -> { Obs.Metrics.count = 0; sum = 0; counts = [||] }
  in
  let req_pub = hist "tier.request_to_publish.ns" in
  let queue_wait = hist "tier.install_queue.ns" in
  Format.printf
    "  wall: off %.3fs, recorder-off %.3fs, metrics %.3fs, trace %.3fs@.  \
     parity (regs, memory, cycles, stats): probes %b, recorder %b@.  \
     disabled probe bundle: %.1f ns; dispatch block: %.0f ns; overhead \
     %.3f%% (target <2%%, gate 5%%)@.  recorder event: %.1f ns; overhead \
     %.3f%% (gate 2%%); wall delta %+.2f%%@.  fences: %d emitted, %d \
     merged, %d dropped -> merged ratio %.3f@.  install latency \
     (request->publish, %d sample(s)): p50 %d ns, p95 %d ns, p99 %d ns; \
     queue wait p95 %d ns@.  trace: %d event(s) -> %s@."
    off_s norec_s met_s trace_s parity recorder_parity probe_ns block_ns
    overhead_pct record_ns recorder_pct recorder_wall_delta_pct fence_emitted
    fence_merged fence_dropped merged_ratio req_pub.Obs.Metrics.count
    (percentile req_pub 0.50) (percentile req_pub 0.95)
    (percentile req_pub 0.99) (percentile queue_wait 0.95) trace_events
    trace_out;
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  %s
  "bench": "observability: parity, overhead, fence provenance, tier latency",
  "kernels": %d,
  "reps": %d,
  "off_s": %.6f,
  "recorder_off_s": %.6f,
  "metrics_s": %.6f,
  "trace_s": %.6f,
  "parity": %b,
  "recorder_parity": %b,
  "disabled_probe_ns": %.3f,
  "dispatch_block_ns": %.3f,
  "disabled_overhead_pct": %.4f,
  "recorder_record_ns": %.3f,
  "recorder_overhead_pct": %.4f,
  "recorder_wall_delta_pct": %.4f,
  "fence_emitted": %d,
  "fence_merged": %d,
  "fence_dropped": %d,
  "fence_merged_ratio": %.4f,
  "install_latency": { "count": %d, "p50_ns": %d, "p95_ns": %d, "p99_ns": %d },
  "install_queue_wait": { "count": %d, "p50_ns": %d, "p95_ns": %d },
  "trace_events": %d
}
|}
    (envelope "obs")
    (List.length Harness.Parsec.all)
    reps off_s norec_s met_s trace_s parity recorder_parity probe_ns block_ns
    overhead_pct record_ns recorder_pct recorder_wall_delta_pct fence_emitted
    fence_merged fence_dropped merged_ratio req_pub.Obs.Metrics.count
    (percentile req_pub 0.50) (percentile req_pub 0.95)
    (percentile req_pub 0.99) queue_wait.Obs.Metrics.count
    (percentile queue_wait 0.50) (percentile queue_wait 0.95) trace_events;
  close_out oc;
  Format.printf "  wrote %s@." out;
  if not parity then begin
    Format.eprintf "obs bench: enabling observability changed results!@.";
    exit 2
  end;
  if not recorder_parity then begin
    Format.eprintf
      "obs bench: disabling the flight recorder changed results!@.";
    exit 2
  end;
  if overhead_pct > 5.0 then begin
    Format.eprintf
      "obs bench: disabled-probe overhead %.3f%% exceeds the 5%% gate!@."
      overhead_pct;
    exit 2
  end;
  if recorder_pct > 2.0 then begin
    Format.eprintf
      "obs bench: always-on recorder overhead %.3f%% exceeds the 2%% gate!@."
      recorder_pct;
    exit 2
  end;
  if fence_emitted = 0 then begin
    Format.eprintf
      "obs bench: the fence ledger recorded no emitted fences!@.";
    exit 2
  end;
  if req_pub.Obs.Metrics.count = 0 then begin
    Format.eprintf
      "obs bench: the async tiered pass published no installs!@.";
    exit 2
  end;
  if trace_events = 0 then begin
    Format.eprintf "obs bench: trace run recorded no events!@.";
    exit 2
  end

(* ------------------------------------------------------------------ *)
(* Chaos campaign: seeded fault plans over the resilience sites
   (pool-task, journal-write, cache-write) → BENCH_chaos.json.

   Each campaign runs a reduced journaled sweep under a deterministic
   injection plan, then resumes without chaos and asserts the
   robustness invariants: no verdict lost, none duplicated, every
   failure typed, and the resumed verdict table identical to a
   fault-free reference run. *)

let chaos_entries () =
  List.filter
    (fun (e : Report.Sweep.entry) ->
      List.mem e.Report.Sweep.scheme [ "fig2/x86->tcg"; "transform-raw" ])
    (Report.Sweep.default_entries ())

let cell_sig (c : Report.Sweep.cell) =
  ( c.Report.Sweep.scheme,
    c.Report.Sweep.program,
    c.Report.Sweep.report.Mapping.Check.ok,
    c.Report.Sweep.report.Mapping.Check.src_behaviours,
    c.Report.Sweep.report.Mapping.Check.tgt_behaviours )

(* Deterministic plan family: rotate crash-the-journal, flaky-tasks and
   poison-everything shapes, parameterized by the campaign seed. *)
let chaos_plan ~seed i =
  match i mod 3 with
  | 0 -> Printf.sprintf "nth:journal-write:%d" (1 + ((seed + i) mod 4))
  | 1 -> Printf.sprintf "seeded:pool-task:%d:300" (seed + i)
  | _ -> "always:pool-task"

type campaign = {
  plan : string;
  crashed : bool;  (* the injected journal tear killed the first run *)
  first_failures : int;  (* typed failures surfaced by the chaos run *)
  resumes : int;  (* chaos-free resumes needed to converge *)
  converged : bool;  (* final table == reference, journal keys unique *)
}

let run_campaign ~entries ~reference ~tmp i plan_str =
  (* Cold behaviour caches: each campaign must do the real enumeration
     work, as a fresh resumed process would. *)
  Litmus.Enumerate.clear_caches ();
  let journal = Filename.concat tmp (Printf.sprintf "journal-%d" i) in
  let inject =
    match Core.Inject.plan_of_string plan_str with
    | Ok p -> Core.Inject.create p
    | Error msg -> failwith msg
  in
  let policy =
    {
      Parallel.Supervise.default with
      retries = 2;
      backoff_s = 0.0005;
      max_backoff_s = 0.002;
      chaos = Some (Core.Inject.fire_hook inject Core.Inject.Pool_task);
    }
  in
  let journal_chaos =
    Core.Inject.fire_hook inject Core.Inject.Journal_write
  in
  let crashed, first_failures =
    match
      Report.Sweep.run_journaled ~policy ~journal_chaos ~journal entries
    with
    | r -> (false, List.length r.Report.Sweep.failures)
    | exception Parallel.Frontier.Injected_fault _ -> (true, 0)
  in
  (* Chaos-free resumes: each retries the cells the chaos run lost.
     One resume must suffice (the environment is healthy again), but
     count up to 3 before declaring divergence. *)
  let rec converge k =
    if k > 3 then (k - 1, None)
    else
      let r = Report.Sweep.run_journaled ~journal entries in
      if r.Report.Sweep.failures = [] then (k, Some r) else converge (k + 1)
  in
  let resumes, final = converge 1 in
  let converged =
    match final with
    | None -> false
    | Some r ->
        let table_ok =
          List.map cell_sig r.Report.Sweep.cells
          = List.map cell_sig reference
        in
        (* The checkpointed journal must hold exactly one record per
           cell: nothing lost, nothing duplicated. *)
        let rec_ = Parallel.Frontier.recover_file journal in
        let keys = List.map fst rec_.Parallel.Frontier.entries in
        table_ok
        && List.length keys = List.length reference
        && List.length (List.sort_uniq compare keys) = List.length keys
  in
  { plan = plan_str; crashed; first_failures; resumes; converged }

(* Watchdog: a sub-microsecond deadline must fire as typed timeouts (no
   hang, no untyped exception) for the cells that do real enumeration
   work, and a deadline-free resume must then fill the whole table.  A
   trivial cell may legitimately finish inside the 32-poll clock
   stride, so the invariant is "timeouts fired, every failure is a
   typed Timed_out, and completed + timed-out covers the table" rather
   than "everything timed out". *)
let run_watchdog ~entries ~reference ~tmp =
  Litmus.Enumerate.clear_caches ();
  let journal = Filename.concat tmp "journal-watchdog" in
  let policy =
    { Parallel.Supervise.default with deadline_s = Some 1e-6 }
  in
  let r = Report.Sweep.run_journaled ~policy ~journal entries in
  let timeouts =
    List.length
      (List.filter
         (fun (_, _, f) ->
           match f with
           | Parallel.Supervise.Timed_out _ -> true
           | Parallel.Supervise.Quarantined _ -> false)
         r.Report.Sweep.failures)
  in
  let fired =
    timeouts > 0
    && timeouts = List.length r.Report.Sweep.failures
    && List.length r.Report.Sweep.cells + timeouts = List.length reference
  in
  let r2 = Report.Sweep.run_journaled ~journal entries in
  let recovered =
    r2.Report.Sweep.failures = []
    && List.map cell_sig r2.Report.Sweep.cells = List.map cell_sig reference
  in
  (timeouts, fired, recovered)

(* Cache-write: an injected fault between the cache's tmp write and its
   rename must abort the save without touching the previous file, and a
   flipped byte in a saved entry must quarantine exactly that entry. *)
let run_cache_campaign ~tmp =
  let open X86.Asm in
  let module I = X86.Insn in
  let module R = X86.Reg in
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RBX, 5L));
      Label "loop";
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins (I.Mov_ri (R.R13, 77L));
      Ins I.Hlt;
    ]
  in
  let image = Image.Gelf.build ~entry:"main" items in
  let path = Filename.concat tmp "chaos.tc" in
  let faulty =
    {
      Core.Config.risotto with
      Core.Config.inject = [ Core.Inject.Nth (Core.Inject.Cache_write, 1) ];
    }
  in
  let eng = Core.Engine.create faulty image in
  ignore (Core.Engine.run eng);
  let save_blocked =
    match Core.Engine.save_cache eng path with
    | _ -> false
    | exception Core.Fault.Fault f ->
        f.Core.Fault.kind = Core.Fault.Cache_corrupt
        && not (Sys.file_exists path)
  in
  (* Second save: the nth:1 rule is spent, the write lands. *)
  let saved = Core.Engine.save_cache eng path in
  let verify_ok =
    match Core.Engine.verify_cache path with
    | Ok (n, []) -> n = saved
    | _ -> false
  in
  (* Flip one byte inside the last entry's body. *)
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string s in
  let at = Bytes.length b - 1 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b);
  let eng2 = Core.Engine.create Core.Config.risotto image in
  let quarantine_ok =
    match Core.Engine.load_cache eng2 path with
    | Ok n ->
        n = saved - 1
        && (Core.Engine.stats eng2).Core.Engine.cache_quarantined = 1
    | Error _ -> false
  in
  let g = Core.Engine.run eng2 in
  let rerun_ok = Core.Engine.reg g R.R13 = 77L in
  (save_blocked, verify_ok, quarantine_ok, rerun_ok)

(* Postmortem campaign: an injected decode fault under the always-on
   flight recorder must dump a postmortem, and the dump must be
   byte-deterministic — the same image, config and plan written to two
   fresh directories produce identical files.  The first directory is
   kept in the working tree so CI can assert on and upload the
   artifact. *)
let postmortem_dir = "chaos_postmortems"

let run_postmortem_campaign ~tmp =
  let open X86.Asm in
  let module I = X86.Insn in
  let module R = X86.Reg in
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RBX, 3L));
      Label "loop";
      Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
      Ins (I.Cmp (R.RBX, I.I 0L));
      Jcc_lbl (I.Ne, "loop");
      Ins I.Hlt;
    ]
  in
  let image = Image.Gelf.build ~entry:"main" items in
  let faulty =
    {
      Core.Config.risotto with
      Core.Config.inject = [ Core.Inject.Always Core.Inject.Decode ];
    }
  in
  let run dir =
    let eng = Core.Engine.create faulty image in
    Core.Engine.set_postmortem_dir eng (Some dir);
    let g = Core.Engine.run eng in
    let trapped = Core.Engine.trap g <> None in
    let written = Core.Engine.postmortems_written eng in
    let body =
      let path = Filename.concat dir "postmortem-000.json" in
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      end
      else ""
    in
    (trapped, written, body)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  let trapped1, written1, body1 = run postmortem_dir in
  let trapped2, written2, body2 =
    run (Filename.concat tmp "postmortems")
  in
  let wrote = trapped1 && trapped2 && written1 >= 1 && written2 >= 1 in
  let deterministic = body1 <> "" && body1 = body2 in
  let well_formed =
    contains body1 {|"schema":"risotto.postmortem.v1"|}
    && contains body1 {|"kind":"trap"|}
    && contains body1 {|"fence_ledgers"|}
    && contains body1 {|"tiers"|}
  in
  (written1, wrote, deterministic, well_formed)

let chaos_bench ~plans ~seed ~out () =
  section
    (Printf.sprintf
       "Chaos campaign (%d seeded plan(s), seed %d) over the resilience \
        sites"
       plans seed);
  let tmp = Filename.temp_file "risotto_chaos" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  let entries = chaos_entries () in
  let reference = Report.Sweep.run entries in
  Format.printf "  reference: %d cells over %d scheme(s)@."
    (List.length reference) (List.length entries);
  let campaigns =
    List.init plans (fun i ->
        let plan = chaos_plan ~seed i in
        let c = run_campaign ~entries ~reference ~tmp i plan in
        Format.printf
          "  plan %-28s crashed:%b typed-failures:%d resumes:%d \
           converged:%b@."
          c.plan c.crashed c.first_failures c.resumes c.converged;
        c)
  in
  let timeouts, watchdog_fired, watchdog_recovered =
    run_watchdog ~entries ~reference ~tmp
  in
  Format.printf
    "  watchdog: %d timeout(s), typed and covering: %b, recovered on \
     resume: %b@."
    timeouts watchdog_fired watchdog_recovered;
  let save_blocked, verify_ok, quarantine_ok, rerun_ok =
    run_cache_campaign ~tmp
  in
  Format.printf
    "  cache: save blocked pre-rename: %b, verify: %b, quarantine: %b, \
     rerun correct: %b@."
    save_blocked verify_ok quarantine_ok rerun_ok;
  let pm_written, pm_wrote, pm_deterministic, pm_well_formed =
    run_postmortem_campaign ~tmp
  in
  Format.printf
    "  postmortem: %d written to %s/, trap dumped: %b, byte-deterministic: \
     %b, well-formed: %b@."
    pm_written postmortem_dir pm_wrote pm_deterministic pm_well_formed;
  (* Best-effort scratch cleanup; artifacts are tiny either way.  The
     cwd postmortem directory is deliberately kept for CI to pick up. *)
  (try
     let pm = Filename.concat tmp "postmortems" in
     if Sys.file_exists pm then begin
       Array.iter (fun f -> Sys.remove (Filename.concat pm f)) (Sys.readdir pm);
       Unix.rmdir pm
     end;
     Array.iter
       (fun f -> Sys.remove (Filename.concat tmp f))
       (Sys.readdir tmp);
     Unix.rmdir tmp
   with Sys_error _ | Unix.Unix_error _ -> ());
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  %s
  "bench": "seeded chaos campaign over resilience sites",
  "plans": %d,
  "seed": %d,
  "cells": %d,
  "campaigns": [%s],
  "watchdog": { "timeouts": %d, "fired": %b, "recovered": %b },
  "cache": { "save_blocked": %b, "verify_ok": %b, "quarantine_ok": %b, "rerun_ok": %b },
  "postmortems": { "written": %d, "dir": %S, "trap_dumped": %b, "deterministic": %b, "well_formed": %b }
}
|}
    (envelope "chaos") plans seed
    (List.length reference)
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf
              {|{ "plan": %S, "crashed": %b, "typed_failures": %d, "resumes": %d, "converged": %b }|}
              c.plan c.crashed c.first_failures c.resumes c.converged)
          campaigns))
    timeouts watchdog_fired watchdog_recovered save_blocked verify_ok
    quarantine_ok rerun_ok pm_written postmortem_dir pm_wrote pm_deterministic
    pm_well_formed;
  close_out oc;
  Format.printf "  wrote %s@." out;
  let failed =
    List.exists (fun c -> not c.converged) campaigns
    || (not watchdog_fired) || (not watchdog_recovered) || (not save_blocked)
    || (not verify_ok) || (not quarantine_ok) || (not rerun_ok)
    || (not pm_wrote) || (not pm_deterministic) || not pm_well_formed
  in
  if failed then begin
    Format.eprintf "chaos bench: a robustness invariant failed!@.";
    exit 2
  end

(* ------------------------------------------------------------------ *)
(* Tier bench: tier0-only vs sync-all vs tiered-async → BENCH_tiers.json *)

(* One pass over the PARSEC/Phoenix kernels under a tier configuration.
   [drain_installs] after each kernel settles any background compiles
   before the stats are read (and quiesces the shared service so the
   next kernel starts clean). *)
let tiers_pass config =
  List.map
    (fun b ->
      let spec = b.Harness.Parsec.spec in
      let g, eng = Harness.Kernel.run_dbt config spec in
      Core.Engine.drain_installs eng;
      ( spec.Harness.Kernel.name,
        Array.sub g.Core.Engine.arm.Arm.Machine.regs 0 16,
        Memsys.Mem.dump (Core.Engine.memory eng),
        Core.Engine.cycles g,
        Core.Engine.stats eng ))
    Harness.Parsec.all

(* Cold-start image: a long straight-line program the frontend splits
   into ~[n] distinct blocks, each executed exactly once — the
   translation-dominated regime the tier ladder is built for.  A
   synchronous engine backend-compiles every block before its first
   execution; a tiered engine never crosses the threshold and reaches
   Hlt on the interpreter alone. *)
let cold_start_items n =
  let open X86.Asm in
  let module I = X86.Insn in
  let module R = X86.Reg in
  let body =
    List.concat_map
      (fun k ->
        let m =
          {
            I.base = None;
            index = None;
            disp = Int64.of_int (0x5000 + (8 * (k mod 16)));
          }
        in
        [
          Ins (I.Store (m, I.R R.RAX));
          Ins (I.Load (R.RBX, m));
          Ins (I.Alu (I.Add, R.RAX, I.R R.RBX));
          Ins (I.Alu (I.Xor, R.RCX, I.R R.RAX));
        ])
      (List.init (n * 8) Fun.id)
  in
  (Label "main" :: body) @ [ Ins I.Hlt ]

let tiers_bench ~reps ~out () =
  section
    (Printf.sprintf
       "Tier ladder: tier0-only vs sync-all vs tiered-async (%d kernels, \
        best of %d)"
       (List.length Harness.Parsec.all)
       reps);
  let risotto = Core.Config.risotto in
  let jit_threshold = 8 and tier2_threshold = 24 in
  (* tier0: the threshold is unreachable, every block stays on the
     interpreter.  sync-all: the pre-ladder configuration (immediate
     backend compile, static trace trigger — the dispatch-bench
     chained config).  tiered: the full ladder with background
     installs. *)
  let tier0 =
    { risotto with Core.Config.jit_threshold = max_int; trace_threshold = 0 }
  in
  let sync_all = { risotto with Core.Config.trace_threshold = 16 } in
  let tiered =
    {
      risotto with
      Core.Config.jit_threshold;
      trace_threshold = tier2_threshold;
      sync_compile = false;
    }
  in
  let time config =
    let best = ref infinity in
    let results = ref [] in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = tiers_pass config in
      let dt = Unix.gettimeofday () -. t0 in
      results := r;
      if dt < !best then best := dt
    done;
    (!best, !results)
  in
  let tier0_s, tier0_r = time tier0 in
  let sync_s, sync_r = time sync_all in
  let tiered_s, tiered_r = time tiered in
  let sum f results =
    List.fold_left (fun acc (_, _, _, _, s) -> acc + f s) 0 results
  in
  let cycles results =
    List.fold_left (fun acc (_, _, _, c, _) -> acc + c) 0 results
  in
  (* tier0 runs with no superblocks: one dispatch per guest block, so
     its dispatch count is the true guest-block total all three
     configurations execute (parity is asserted below). *)
  let guest_blocks = sum (fun s -> s.Core.Engine.blocks_executed) tier0_r in
  let cpb c =
    if guest_blocks = 0 then 0.0
    else float_of_int c /. float_of_int guest_blocks
  in
  let stat_block results =
    ( cycles results,
      sum (fun s -> s.Core.Engine.interp_execs) results,
      sum (fun s -> s.Core.Engine.tier1_installed) results,
      sum (fun s -> s.Core.Engine.superblocks) results,
      sum (fun s -> s.Core.Engine.deopts) results,
      sum (fun s -> s.Core.Engine.install_hwm) results,
      sum (fun s -> s.Core.Engine.installs_dropped) results )
  in
  let t0_cycles, t0_interp, t0_inst, t0_super, t0_deopt, t0_hwm, t0_drop =
    stat_block tier0_r
  in
  let sy_cycles, sy_interp, sy_inst, sy_super, sy_deopt, sy_hwm, sy_drop =
    stat_block sync_r
  in
  let ti_cycles, ti_interp, ti_inst, ti_super, ti_deopt, ti_hwm, ti_drop =
    stat_block tiered_r
  in
  let parity =
    List.for_all2
      (fun (n1, r1, m1, _, _) (n2, r2, m2, _, _) ->
        n1 = n2 && r1 = r2 && m1 = m2)
      tier0_r sync_r
    && List.for_all2
         (fun (n1, r1, m1, _, _) (n2, r2, m2, _, _) ->
           n1 = n2 && r1 = r2 && m1 = m2)
         sync_r tiered_r
  in
  (* Cold start: time-to-first-N-blocks on a translation-dominated
     straight-line image, fresh engine per run.  One untimed warmup
     per config absorbs one-off process state (the shared background
     service domain, lazy metrics). *)
  let cold_blocks = 96 in
  let cold_image = Image.Gelf.build ~entry:"main" (cold_start_items cold_blocks) in
  let cold_run config =
    let eng = Core.Engine.create config cold_image in
    let g = Core.Engine.run eng in
    Core.Engine.drain_installs eng;
    if Core.Engine.trap g <> None then begin
      Format.eprintf "tiers bench: cold-start run trapped!@.";
      exit 2
    end
  in
  let cold_time config =
    cold_run config;
    let best = ref infinity in
    for _ = 1 to max 3 reps do
      let t0 = Unix.gettimeofday () in
      cold_run config;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let cold_sync_s = cold_time sync_all in
  let cold_tiered_s = cold_time tiered in
  Format.printf
    "  wall: tier0 %.3fs, sync-all %.3fs, tiered %.3fs@.  guest cycles over \
     %d guest blocks: tier0 %d (interp charges none), sync-all %d (%.2f/blk), \
     tiered %d (%.2f/blk)@.  tiered ladder: %d interp execs, %d installs, %d \
     superblocks, %d deopts, queue hwm %d, dropped %d@.  cold start (%d \
     blocks, once each): sync %.6fs, tiered %.6fs (%.2fx)@.  results \
     identical: %b@."
    tier0_s sync_s tiered_s guest_blocks t0_cycles sy_cycles (cpb sy_cycles)
    ti_cycles (cpb ti_cycles) ti_interp ti_inst ti_super ti_deopt ti_hwm
    ti_drop cold_blocks cold_sync_s cold_tiered_s
    (cold_sync_s /. cold_tiered_s)
    parity;
  let pp_config oc name wall (cycles, interp, inst, super, deopt, hwm, drop) =
    Printf.fprintf oc
      {|  %S: {
    "wall_s": %.6f,
    "cycles": %d,
    "cycles_per_block": %.3f,
    "interp_execs": %d,
    "tier1_installed": %d,
    "superblocks": %d,
    "deopts": %d,
    "install_hwm": %d,
    "installs_dropped": %d
  },
|}
      name wall cycles (cpb cycles) interp inst super deopt hwm drop
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  %s
  "bench": "tiers: tier0-only vs sync-all vs tiered-async",
  "kernels": %d,
  "reps": %d,
  "jit_threshold": %d,
  "tier2_threshold": %d,
  "guest_blocks": %d,
|}
    (envelope "tiers")
    (List.length Harness.Parsec.all)
    reps jit_threshold tier2_threshold guest_blocks;
  pp_config oc "tier0" tier0_s
    (t0_cycles, t0_interp, t0_inst, t0_super, t0_deopt, t0_hwm, t0_drop);
  pp_config oc "sync_all" sync_s
    (sy_cycles, sy_interp, sy_inst, sy_super, sy_deopt, sy_hwm, sy_drop);
  pp_config oc "tiered" tiered_s
    (ti_cycles, ti_interp, ti_inst, ti_super, ti_deopt, ti_hwm, ti_drop);
  Printf.fprintf oc
    {|  "cold": {
    "blocks": %d,
    "sync_s": %.6f,
    "tiered_s": %.6f,
    "speedup": %.4f
  },
  "results_identical": %b
}
|}
    cold_blocks cold_sync_s cold_tiered_s
    (cold_sync_s /. cold_tiered_s)
    parity;
  close_out oc;
  Format.printf "  wrote %s@." out;
  if not parity then begin
    Format.eprintf "tiers bench: tier ladder results diverge!@.";
    exit 2
  end;
  if ti_interp = 0 || ti_inst = 0 || ti_super = 0 then begin
    Format.eprintf
      "tiers bench: the ladder did not engage (%d interp, %d installs, %d \
       superblocks)!@."
      ti_interp ti_inst ti_super;
    exit 2
  end;
  if cpb ti_cycles > cpb sy_cycles then begin
    Format.eprintf
      "tiers bench: tiered execution cost more guest cycles than sync-all \
       (%.3f vs %.3f cycles/block)!@."
      (cpb ti_cycles) (cpb sy_cycles);
    exit 2
  end;
  if cold_tiered_s >= cold_sync_s then begin
    Format.eprintf
      "tiers bench: tiered cold start not faster than synchronous \
       translation (%.6fs vs %.6fs)!@."
      cold_tiered_s cold_sync_s;
    exit 2
  end

(* ------------------------------------------------------------------ *)
(* Section dispatch                                                    *)

type opts = {
  sections : string list;  (* canonical names, in request order *)
  jobs : int;
  reps : int;
  out : string;
  dispatch_out : string;
  obs_out : string;
  trace_out : string;
  chaos_out : string;
  plans : int;
  seed : int;
  gen_out : string;
  gen_n : int;
  tiers_out : string;
}

let canonical = function
  | "fig1" | "fig2" | "fig3" | "fig7" | "tables" -> Some "tables"
  | "sec3" | "correctness" -> Some "sec3"
  | "fig8" | "fig9" | "minimality" -> Some "minimality"
  | "fig12" | "fig13" | "fig14" | "fig15" | "figures" -> Some "figures"
  | "ablations" -> Some "ablations"
  | "bechamel" -> Some "bechamel"
  | "refinement" | "bench-json" -> Some "refinement"
  | "dispatch" -> Some "dispatch"
  | "obs" | "observability" -> Some "obs"
  | "chaos" | "resilience" -> Some "chaos"
  | "generator" | "generate" -> Some "generator"
  | "tiers" | "tier" -> Some "tiers"
  | _ -> None

let all_sections =
  [ "tables"; "sec3"; "minimality"; "figures"; "ablations"; "bechamel";
    "refinement"; "dispatch"; "obs"; "chaos"; "generator"; "tiers" ]

let usage () =
  Format.eprintf
    "usage: main.exe [SECTION...] [-j N] [--reps N] [-o FILE] \
     [--dispatch-out FILE] [--obs-out FILE] [--trace-out FILE] \
     [--chaos-out FILE] [--plans N] [--seed N] [--gen-out FILE] [--gen-n N] \
     [--tiers-out FILE] [--no-bechamel]@.sections: fig2 fig3 fig7 sec3 fig8 \
     fig9 fig12..fig15 ablations bechamel refinement dispatch obs chaos \
     generator tiers@.";
  exit 1

let parse_args () =
  let sections = ref [] in
  let no_bechamel = ref false in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let reps = ref 3 in
  let out = ref "BENCH_refinement.json" in
  let dispatch_out = ref "BENCH_dispatch.json" in
  let obs_out = ref "BENCH_obs.json" in
  let trace_out = ref "obs_trace.json" in
  let chaos_out = ref "BENCH_chaos.json" in
  let plans = ref 3 in
  let seed = ref 42 in
  let gen_out = ref "BENCH_generator.json" in
  let gen_n = ref 1000 in
  let tiers_out = ref "BENCH_tiers.json" in
  let rec go = function
    | [] -> ()
    | "--no-bechamel" :: rest ->
        no_bechamel := true;
        go rest
    | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> jobs := n
        | _ -> usage ());
        go rest
    | "--reps" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> reps := n
        | _ -> usage ());
        go rest
    | "-o" :: path :: rest ->
        out := path;
        go rest
    | "--dispatch-out" :: path :: rest ->
        dispatch_out := path;
        go rest
    | "--obs-out" :: path :: rest ->
        obs_out := path;
        go rest
    | "--trace-out" :: path :: rest ->
        trace_out := path;
        go rest
    | "--chaos-out" :: path :: rest ->
        chaos_out := path;
        go rest
    | "--gen-out" :: path :: rest ->
        gen_out := path;
        go rest
    | "--tiers-out" :: path :: rest ->
        tiers_out := path;
        go rest
    | "--gen-n" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> gen_n := n
        | _ -> usage ());
        go rest
    | "--plans" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> plans := n
        | _ -> usage ());
        go rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> seed := n
        | _ -> usage ());
        go rest
    | s :: rest -> (
        match canonical s with
        | Some c ->
            if not (List.mem c !sections) then sections := c :: !sections;
            go rest
        | None -> usage ())
  in
  go (List.tl (Array.to_list Sys.argv));
  let sections =
    match List.rev !sections with
    | [] ->
        List.filter
          (fun s -> not (!no_bechamel && s = "bechamel"))
          all_sections
    | chosen -> chosen
  in
  {
    sections;
    jobs = !jobs;
    reps = !reps;
    out = !out;
    dispatch_out = !dispatch_out;
    obs_out = !obs_out;
    trace_out = !trace_out;
    chaos_out = !chaos_out;
    plans = !plans;
    seed = !seed;
    gen_out = !gen_out;
    gen_n = !gen_n;
    tiers_out = !tiers_out;
  }

let () =
  let {
    sections;
    jobs;
    reps;
    out;
    dispatch_out;
    obs_out;
    trace_out;
    chaos_out;
    plans;
    seed;
    gen_out;
    gen_n;
    tiers_out;
  } =
    parse_args ()
  in
  let pool = if jobs > 1 then Some (Parallel.Pool.create ~jobs ()) else None in
  List.iter
    (fun s ->
      match s with
      | "tables" -> mapping_tables ()
      | "sec3" -> correctness_findings ()
      | "minimality" -> minimality ?pool ()
      | "figures" -> figures ?pool ()
      | "ablations" -> ablations ()
      | "bechamel" -> bechamel_benches ()
      | "refinement" -> refinement_bench ~jobs ~reps ~out ()
      | "dispatch" -> dispatch_bench ~reps ~out:dispatch_out ()
      | "obs" -> obs_bench ~reps ~out:obs_out ~trace_out ()
      | "chaos" -> chaos_bench ~plans ~seed ~out:chaos_out ()
      | "generator" -> generator_bench ~jobs ~reps ~gen_n ~seed ~out:gen_out ()
      | "tiers" -> tiers_bench ~reps ~out:tiers_out ()
      | _ -> assert false)
    sections;
  (match pool with Some p -> Parallel.Pool.shutdown p | None -> ());
  Format.printf "@.done.@."
