(* litmus_run: check .litmus test files against their expectations under
   a memory model — the CI entry point for the litmus corpus.

     dune exec bin/litmus_run.exe -- litmus/MP.litmus -m x86
     dune exec bin/litmus_run.exe -- litmus/*.litmus -m arm -j 4 *)

open Cmdliner

let models =
  [
    ("sc", Axiom.Sc_model.model);
    ("x86", Axiom.X86_tso.model);
    ("arm", Axiom.Arm_cats.model Axiom.Arm_cats.Corrected);
    ("arm-orig", Axiom.Arm_cats.model Axiom.Arm_cats.Original);
    ("tcg", Axiom.Tcg_model.model);
  ]

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The per-file work, run as a pool task: everything except printing, so
   output stays in command-line order whatever the parallel schedule. *)
type outcome =
  | Read_error of string
  | Parse_error of { line : int; msg : string }
  | Checked of Litmus.Ast.test * Litmus.Enumerate.verdict

let m_files = lazy (Obs.Metrics.counter "litmus.files")
let m_ok = lazy (Obs.Metrics.counter "litmus.ok")
let m_check_ns = lazy (Obs.Metrics.histogram "litmus.check.ns")

let check_one model path =
  Obs.Trace.with_span ~cat:"litmus"
    ~args:(fun () -> [ ("file", path) ])
    "check"
  @@ fun () ->
  Obs.Metrics.incr (Lazy.force m_files);
  match Litmus.Parser.parse (read_file path) with
  | exception Sys_error msg -> Read_error msg
  | exception Litmus.Parser.Error { line; msg } -> Parse_error { line; msg }
  | test ->
      let v =
        Obs.Profile.time (Lazy.force m_check_ns) (fun () ->
            Litmus.Enumerate.check model test)
      in
      if v.Litmus.Enumerate.ok then Obs.Metrics.incr (Lazy.force m_ok);
      Checked (test, v)

let report_one model verbose path outcome =
  match outcome with
  | Read_error msg ->
      Format.printf "%-28s READ ERROR: %s@." path msg;
      false
  | Parse_error { line; msg } ->
      Format.printf "%-28s PARSE ERROR at line %d: %s@." path line msg;
      false
  | Checked (test, v) ->
      Format.printf "%-28s %-6s (%s: %a, %d behaviours)@." path
        (if v.Litmus.Enumerate.ok then "OK" else "FAIL")
        model.Axiom.Model.name Litmus.Ast.pp_expectation test.Litmus.Ast.expect
        v.Litmus.Enumerate.total_consistent;
      if verbose && not v.Litmus.Enumerate.ok then
        List.iter
          (fun b ->
            Format.printf "    witness: %a@." Litmus.Enumerate.pp_behaviour b)
          v.Litmus.Enumerate.witnesses;
      v.Litmus.Enumerate.ok

(* --report DIR: run the refinement sweep (all schemes × mapping corpus,
   plus the FMR transformation counterexample) with witness capture and
   the axiom-coverage probe, and write the self-contained HTML report
   plus one JSON artifact per witness.  Exit is nonzero when any
   refinement check in the sweep fails — known-bad schemes in the
   default sweep make that the expected outcome. *)
let run_report dir scheme_filters metrics ~journal ~task_timeout ~task_retries
    ~inject =
  let entries = Report.Sweep.default_entries () in
  let entries =
    match scheme_filters with
    | [] -> entries
    | fs ->
        List.filter
          (fun (e : Report.Sweep.entry) ->
            List.mem e.Report.Sweep.scheme fs)
          entries
  in
  if entries = [] then begin
    Format.eprintf "no scheme matches %s (known: %s)@."
      (String.concat ", " scheme_filters)
      (String.concat ", "
         (List.map
            (fun (e : Report.Sweep.entry) -> e.Report.Sweep.scheme)
            (Report.Sweep.default_entries ())));
    2
  end
  else begin
    let coverage = Report.Coverage.create () in
    (* The plain path is byte-for-byte the pre-journal sweep; the
       journaled path replays completed cells and supervises the rest.
       Both produce the same cells for the same corpus, which is what
       the resume-parity CI check pins down. *)
    let cells, failures =
      match journal with
      | None -> (Report.Sweep.run ~capture:true ~coverage entries, [])
      | Some journal ->
          let policy =
            {
              Parallel.Supervise.default with
              deadline_s = task_timeout;
              retries = task_retries;
              chaos =
                Option.map
                  (fun i -> Core.Inject.fire_hook i Core.Inject.Pool_task)
                  inject;
            }
          in
          let journal_chaos =
            Option.map
              (fun i -> Core.Inject.fire_hook i Core.Inject.Journal_write)
              inject
          in
          let r =
            Report.Sweep.run_journaled ~capture:true ~coverage ~policy
              ?journal_chaos ~journal entries
          in
          if r.Report.Sweep.recovery.Parallel.Frontier.valid > 0 then
            Format.printf "journal %s: %d verdict(s) replayed, %d computed%s@."
              journal r.Report.Sweep.replayed r.Report.Sweep.computed
              (if r.Report.Sweep.recovery.Parallel.Frontier.dropped_bytes > 0
               then
                 Printf.sprintf " (%d torn byte(s) dropped)"
                   r.Report.Sweep.recovery.Parallel.Frontier.dropped_bytes
               else "");
          (r.Report.Sweep.cells, r.Report.Sweep.failures)
    in
    let models =
      List.sort_uniq
        (fun (a : Axiom.Model.t) b ->
          compare a.Axiom.Model.name b.Axiom.Model.name)
        (List.map
           (fun (e : Report.Sweep.entry) -> e.Report.Sweep.src_model)
           entries)
    in
    let bench = Report.Html.load_bench_dir dir in
    let metrics_snap =
      if metrics then Some (Obs.Metrics.snapshot ()) else None
    in
    let html, witnesses =
      Report.Html.write ~dir ?metrics:metrics_snap ~coverage ~models ~bench
        cells
    in
    List.iter
      (fun (c : Report.Sweep.cell) ->
        Format.printf "%-32s VIOLATION (%d extra, %d witness(es))@."
          c.Report.Sweep.report.Mapping.Check.name
          (List.length c.Report.Sweep.report.Mapping.Check.extra)
          (List.length c.Report.Sweep.witnesses))
      (Report.Sweep.failing cells);
    Format.printf "wrote %s and %d witness artifact(s) to %s@." html
      (List.length witnesses) dir;
    List.iter
      (fun (scheme, program, f) ->
        Format.printf "%-32s %a@."
          (Printf.sprintf "%s: %s" scheme program)
          Parallel.Supervise.pp_failure f)
      failures;
    (* Supervision failures (exit 3) outrank refinement violations
       (exit 1): the sweep is incomplete, so its verdict table cannot
       be trusted yet — resume to converge. *)
    if failures <> [] then 3 else if Report.Sweep.all_ok cells then 0 else 1
  end

(* --generate N: sweep a seeded QCheck corpus (deduped into shape
   classes) through the generated-sweep runner.  With --report DIR the
   sweep is journaled (DIR/journal unless --journal), resumable,
   coverage-probed and rendered like the default sweep; without
   --report it is the smoke mode: generate, dedup, check every class
   through the batch planner, print a summary. *)
let run_generate ~n ~seed ~shard ~schemes ~report_dir ~journal ~resume ~jobs
    ~metrics ~task_timeout ~task_retries ~inject =
  let schemes = match schemes with [] -> None | fs -> Some fs in
  let corpus, entries = Report.Sweep.generated_entries ?schemes ~seed n in
  if entries = [] then begin
    Format.eprintf "no generated scheme matches (known: %s)@."
      (String.concat ", "
         (List.map
            (fun (e : Report.Sweep.entry) -> e.Report.Sweep.scheme)
            (Report.Sweep.default_entries ())));
    2
  end
  else begin
    let classes = List.length corpus.Litmus.Generate.classes in
    Format.printf
      "generated %d program(s) (seed %d) -> %d shape class(es), dedup %.1f%%, \
       %d scheme(s)@."
      n seed classes
      (100. *. Litmus.Generate.dedup_ratio corpus)
      (List.length entries);
    let pool =
      match jobs with
      | Some j when j > 1 -> Some (Parallel.Pool.create ~jobs:j ())
      | _ -> None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Parallel.Pool.shutdown pool)
      (fun () ->
        match report_dir with
        | None ->
            (* Smoke mode: one planned batch over every (scheme, class)
               cell, no journal, no report. *)
            let cells =
              List.concat_map
                (fun (e : Report.Sweep.entry) ->
                  List.map
                    (fun (pname, src) ->
                      {
                        Mapping.Check.cell_scheme = e.Report.Sweep.scheme;
                        cell_program = pname;
                        cell_f = e.Report.Sweep.f;
                        cell_src_model = e.Report.Sweep.src_model;
                        cell_tgt_model = e.Report.Sweep.tgt_model;
                        cell_src = src;
                      })
                    e.Report.Sweep.corpus)
                entries
            in
            let reports = Mapping.Check.check_cells ?pool cells in
            let bad =
              List.filter (fun (r : Mapping.Check.report) -> not r.ok) reports
            in
            let hits, misses = Litmus.Enumerate.cache_stats () in
            Format.printf
              "%d/%d generated cell(s) hold (%d enumeration(s), %d cache \
               hit(s))@."
              (List.length reports - List.length bad)
              (List.length reports) misses hits;
            List.iter
              (fun (r : Mapping.Check.report) ->
                Format.printf "%-32s VIOLATION (%d extra)@." r.name
                  (List.length r.extra))
              bad;
            if bad = [] then 0 else 1
        | Some dir ->
            (try Unix.mkdir dir 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let journal =
              match journal with
              | Some j -> j
              | None -> Filename.concat dir "journal"
            in
            ignore resume;
            let coverage = Report.Coverage.create () in
            let policy =
              {
                Parallel.Supervise.default with
                deadline_s = task_timeout;
                retries = task_retries;
                chaos =
                  Option.map
                    (fun i -> Core.Inject.fire_hook i Core.Inject.Pool_task)
                    inject;
              }
            in
            let g =
              Report.Sweep.run_generated ~capture:true ~coverage ?pool
                ~policy ~shard_size:shard ~probe_targets:true ~journal
                entries
            in
            let j = g.Report.Sweep.gen_journaled in
            if j.Report.Sweep.recovery.Parallel.Frontier.valid > 0 then
              Format.printf "journal %s: %d verdict(s) replayed, %d computed@."
                journal j.Report.Sweep.replayed j.Report.Sweep.computed;
            Format.printf "coverage: %d shard(s) of <=%d cell(s); %s@."
              (List.length g.Report.Sweep.gen_shards)
              shard
              (match g.Report.Sweep.gen_saturated_after with
              | Some s ->
                  Printf.sprintf
                    "discriminating-axiom coverage saturated after shard %d" s
              | None -> "still discovering new axiom pairs in the final shard");
            let models =
              List.sort_uniq
                (fun (a : Axiom.Model.t) b ->
                  compare a.Axiom.Model.name b.Axiom.Model.name)
                (List.concat_map
                   (fun (e : Report.Sweep.entry) ->
                     [ e.Report.Sweep.src_model; e.Report.Sweep.tgt_model ])
                   entries)
            in
            let bench = Report.Html.load_bench_dir dir in
            let metrics_snap =
              if metrics then Some (Obs.Metrics.snapshot ()) else None
            in
            let html, witnesses =
              Report.Html.write ~dir ?metrics:metrics_snap ~coverage ~models
                ~bench j.Report.Sweep.cells
            in
            Format.printf "wrote %s and %d witness artifact(s) to %s@." html
              (List.length witnesses) dir;
            List.iter
              (fun (scheme, program, f) ->
                Format.printf "%-32s %a@."
                  (Printf.sprintf "%s: %s" scheme program)
                  Parallel.Supervise.pp_failure f)
              j.Report.Sweep.failures;
            if j.Report.Sweep.failures <> [] then 3
            else if Report.Sweep.all_ok j.Report.Sweep.cells then 0
            else 1)
  end

let main files model_name verbose jobs metrics =
  if metrics then Obs.Metrics.enable ();
  match List.assoc_opt model_name models with
  | None ->
      Format.eprintf "unknown model %S (one of: %s)@." model_name
        (String.concat ", " (List.map fst models));
      1
  | Some model ->
      let outcomes =
        match jobs with
        | Some j when j > 1 ->
            Parallel.Pool.with_pool ~jobs:j (fun pool ->
                Parallel.Pool.map_list ~pool (check_one model) files)
        | _ -> List.map (check_one model) files
      in
      let ok = List.map2 (report_one model verbose) files outcomes in
      let failures = List.length (List.filter not ok) in
      Format.printf "%d/%d tests hold@."
        (List.length ok - failures)
        (List.length ok);
      if metrics then Obs.Metrics.dump ();
      if failures = 0 then 0 else 1

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Litmus files.")

let model_arg =
  Arg.(
    value & opt string "x86"
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Memory model: sc, x86, arm, arm-orig or tcg.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print witnesses on failure.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Check files on $(docv) parallel domains (default: sequential; 0 \
           means one per recommended core).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable the metrics registry and print the merged snapshot \
           (files checked, verdicts, per-check latency histogram) after \
           the run.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"DIR"
        ~doc:
          "Instead of checking litmus files, run the Theorem-1 refinement \
           sweep with witness capture and axiom-coverage accounting and \
           write $(docv)/report.html (self-contained: inline SVG witness \
           graphs, coverage matrix, bench trajectory over any \
           $(b,BENCH_*.json) in $(docv)) plus one JSON artifact per \
           witness.  Exits nonzero if any refinement check fails.")

let scheme_arg =
  Arg.(
    value & opt_all string []
    & info [ "scheme" ] ~docv:"NAME"
        ~doc:
          "With $(b,--report): restrict the sweep to this scheme \
           (repeatable; default all).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "With $(b,--report): journal every completed (scheme, program) \
           verdict to $(docv) as it lands, so a killed sweep can resume \
           from exactly the completed work.  Implied (at \
           $(b,DIR/journal)) by $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "With $(b,--report): replay verdicts already journaled by an \
           earlier (interrupted) run instead of recomputing them, then \
           compute only the remainder.  The resumed report is \
           byte-identical to an uninterrupted run's.  Uses \
           $(b,DIR/journal) unless $(b,--journal) names another file.")

let task_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout" ] ~docv:"SECONDS"
        ~doc:
          "With $(b,--report --journal/--resume): cooperative per-cell \
           deadline.  A cell that exceeds it is reported as timed out \
           (typed, terminal — the checks are deterministic) and the \
           sweep goes on; exit code 3 flags the incomplete table.")

let task_retries_arg =
  Arg.(
    value & opt int 0
    & info [ "task-retries" ] ~docv:"N"
        ~doc:
          "With $(b,--report --journal/--resume): retry a failed cell up \
           to $(docv) more times (exponential backoff) before \
           quarantining it as a typed failure.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"PLAN"
        ~doc:
          "With $(b,--report --journal/--resume): deterministic fault \
           plan for the chaos sites, e.g. \
           $(b,nth:journal-write:2,seeded:pool-task:7:200).  \
           $(b,pool-task) rules fail task attempts (retried under the \
           supervision policy); $(b,journal-write) rules tear the \
           journal append mid-record, simulating a crash.")

let generate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "generate" ] ~docv:"N"
        ~doc:
          "Instead of checking litmus files, generate $(docv) seeded \
           programs ($(b,--seed)), dedup them into shape classes and \
           sweep the generated schemes over the class representatives.  \
           With $(b,--report DIR) the sweep is journaled (resumable) and \
           rendered like the default sweep; without it, a smoke check \
           that prints the verdict summary.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "With $(b,--generate): generator seed — the corpus (and every \
           verdict) is a pure function of ($(docv), N).")

let shard_arg =
  Arg.(
    value & opt int 256
    & info [ "shard-size" ] ~docv:"CELLS"
        ~doc:
          "With $(b,--generate --report): journal granularity — each \
           shard of $(docv) cells is one supervised pool batch, \
           journaled on completion.")

let main files model_name verbose jobs metrics report schemes journal resume
    task_timeout task_retries inject_plan generate seed shard =
  let jobs =
    match jobs with
    | Some 0 -> Some (Domain.recommended_domain_count ())
    | j -> j
  in
  let inject_result =
    match inject_plan with
    | None -> Ok None
    | Some s ->
        Result.map
          (fun p -> Some (Core.Inject.create p))
          (Core.Inject.plan_of_string s)
  in
  match (generate, report) with
  | Some n, _ -> (
      match inject_result with
      | Error msg ->
          Format.eprintf "%s@." msg;
          2
      | Ok inject ->
          if metrics then Obs.Metrics.enable ();
          run_generate ~n ~seed ~shard ~schemes ~report_dir:report ~journal
            ~resume ~jobs ~metrics ~task_timeout ~task_retries ~inject)
  | None, Some dir -> (
      let journal =
        match (journal, resume) with
        | Some j, _ -> Some j
        | None, true -> Some (Filename.concat dir "journal")
        | None, false -> None
      in
      match inject_result with
      | Error msg ->
          Format.eprintf "%s@." msg;
          2
      | Ok inject ->
          if metrics then Obs.Metrics.enable ();
          run_report dir schemes metrics ~journal ~task_timeout ~task_retries
            ~inject)
  | None, None ->
      if files = [] then begin
        Format.eprintf
          "no litmus files given (or use --report DIR / --generate N)@.";
        2
      end
      else main files model_name verbose jobs metrics

let cmd =
  Cmd.v
    (Cmd.info "litmus_run" ~doc:"Check litmus files against their expectations")
    Term.(
      const main $ files_arg $ model_arg $ verbose_arg $ jobs_arg
      $ metrics_arg $ report_arg $ scheme_arg $ journal_arg $ resume_arg
      $ task_timeout_arg $ task_retries_arg $ inject_arg $ generate_arg
      $ seed_arg $ shard_arg)

let () = exit (Cmd.eval' cmd)
