(* gelf_tool: inspect and run guest binary images.

     dune exec bin/gelf_tool.exe -- demo /tmp/prog.gelf   # build a demo image
     dune exec bin/gelf_tool.exe -- dis /tmp/prog.gelf    # disassemble
     dune exec bin/gelf_tool.exe -- run /tmp/prog.gelf -c risotto *)

open Cmdliner
module I = X86.Insn
module R = X86.Reg

let configs = List.map (fun c -> (c.Core.Config.name, c)) Core.Config.all

let demo path =
  let open X86.Asm in
  let items =
    [
      Label "main";
      Ins (I.Mov_ri (R.RDI, 10L));
      Call_lbl "fact";
      Ins (I.Store (I.abs 0x5000L, I.R R.RAX));
      Ins (I.Mov_ri (R.RAX, 60L));
      Ins (I.Mov_ri (R.RDI, 0L));
      Ins I.Syscall;
      Label "fact";
      Ins (I.Mov_ri (R.RAX, 1L));
      Label "floop";
      Ins (I.Test (R.RDI, I.R R.RDI));
      Jcc_lbl (I.E, "fdone");
      Ins (I.Alu (I.Imul, R.RAX, I.R R.RDI));
      Ins (I.Dec R.RDI);
      Jmp_lbl "floop";
      Label "fdone";
      Ins I.Ret;
    ]
  in
  let image = Image.Gelf.build ~entry:"main" items in
  Image.Gelf.save image path;
  Format.printf "wrote %s (%d bytes of guest code)@." path
    (String.length image.Image.Gelf.text);
  0

let dis path =
  let image = Image.Gelf.load path in
  Format.printf "entry: 0x%Lx, text: %d bytes at 0x%Lx@." image.Image.Gelf.entry
    (String.length image.Image.Gelf.text)
    image.Image.Gelf.text_base;
  List.iter
    (fun (name, addr) -> Format.printf "symbol %-16s 0x%Lx@." name addr)
    (List.sort (fun (_, a) (_, b) -> compare a b) image.Image.Gelf.symbols);
  let len = String.length image.Image.Gelf.text in
  let rec go pc =
    if Int64.to_int (Int64.sub pc image.Image.Gelf.text_base) < len then begin
      let insn, ilen =
        X86.Decode.decode image.Image.Gelf.text ~pc
          ~base:image.Image.Gelf.text_base
      in
      Format.printf "%8Lx: %a@." pc I.pp insn;
      go (Int64.add pc (Int64.of_int ilen))
    end
  in
  go image.Image.Gelf.text_base;
  0

let run path config_name trace_out debug metrics inject no_chain
    trace_threshold tier2_threshold jit_threshold sync_compile report
    postmortem =
  if debug then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Core.Engine.log_src (Some Logs.Debug)
  end;
  if trace_out <> None then Obs.Trace.enable ();
  (* --report needs the metrics snapshot, so it implies the registry. *)
  if metrics || report <> None then Obs.Metrics.enable ();
  match List.assoc_opt config_name configs with
  | None ->
      Format.eprintf "unknown config %S (one of: %s)@." config_name
        (String.concat ", " (List.map fst configs));
      1
  | Some config -> (
      match Core.Inject.plan_of_string inject with
      | Error msg ->
          Format.eprintf "bad --inject plan: %s@." msg;
          1
      | Ok plan ->
          let config =
            {
              config with
              Core.Config.inject = plan;
              chain = config.Core.Config.chain && not no_chain;
              (* --tier2-threshold is the tier-ladder name for the
                 superblock knob; --trace-threshold is kept as the
                 pre-tiered spelling. *)
              trace_threshold = max trace_threshold tier2_threshold;
              jit_threshold;
              (* Tiered runs from the CLI compile in the background by
                 default; --sync-compile is the determinism escape
                 hatch (and jit_threshold = 0 is synchronous anyway). *)
              sync_compile = sync_compile || jit_threshold = 0;
            }
          in
          let image = Image.Gelf.load path in
          let eng = Core.Engine.create config image in
          Core.Engine.set_postmortem_dir eng postmortem;
          let g = Core.Engine.run eng in
          (* Settle the async tier before reporting: any compile still
             in flight is published (or dropped), so the tier counters
             below describe the whole run. *)
          Core.Engine.drain_installs eng;
          let arm = g.Core.Engine.arm in
          if Buffer.length arm.Arm.Machine.output > 0 then
            print_string (Buffer.contents arm.Arm.Machine.output);
          let stats = Core.Engine.stats eng in
          (* [stats_line] reports every counter unconditionally —
             including interp-fallbacks=0 — so degraded runs can never
             be confused with runs that simply didn't report. *)
          Format.printf "[%s] exit=%Ld insns=%d fences=%d rax=%Ld %s@."
            config.Core.Config.name arm.Arm.Machine.exit_code
            arm.Arm.Machine.insns arm.Arm.Machine.fences
            (Core.Engine.reg g R.RAX)
            (Core.Engine.stats_line eng g);
          if stats.Core.Engine.interp_fallbacks > 0 then
            Format.printf "degraded: %d block(s) ran on the TCG interpreter@."
              stats.Core.Engine.interp_fallbacks;
          (match Core.Engine.trap g with
          | Some f ->
              Format.printf "guest trap: %s@." (Core.Fault.to_string f)
          | None -> ());
          if Core.Engine.postmortems_written eng > 0 then
            Format.printf "wrote %d postmortem(s) to %s@."
              (Core.Engine.postmortems_written eng)
              (Option.value ~default:"." postmortem);
          if metrics || report <> None then
            Core.Engine.publish_metrics eng;
          if metrics then begin
            Obs.Metrics.dump ();
            (match Core.Engine.hot_blocks eng with
            | [] -> ()
            | hot ->
                Format.printf "hot blocks (by observed-path heat):@.";
                List.iter
                  (fun e -> Format.printf "  %a@." Obs.Profile.pp_entry e)
                  hot)
          end;
          (match report with
          | Some dir ->
              let bench = Report.Html.load_bench_dir dir in
              let html, _ =
                Report.Html.write ~dir
                  ~title:(Printf.sprintf "Risotto DBT run: %s" path)
                  ~metrics:(Obs.Metrics.snapshot ()) ~bench []
              in
              Format.printf "wrote %s to %s@." html dir
          | None -> ());
          (match trace_out with
          | Some out ->
              let n = Obs.Trace.write out in
              Format.printf "wrote %d trace event(s) to %s@." n out
          | None -> ());
          Int64.to_int arm.Arm.Machine.exit_code land 0xFF)

(* explain-fences: run the image, then attribute every fence the
   frontend ever emitted to its guest instruction, mapping rule and
   fate under the optimizer — the per-block view of the ledger whose
   aggregates feed the fence.<kind>.<outcome> metrics. *)
let explain_fences path config_name =
  match List.assoc_opt config_name configs with
  | None ->
      Format.eprintf "unknown config %S (one of: %s)@." config_name
        (String.concat ", " (List.map fst configs));
      1
  | Some config ->
      let image = Image.Gelf.load path in
      let eng = Core.Engine.create config image in
      let g = Core.Engine.run eng in
      Core.Engine.drain_installs eng;
      (match Core.Engine.trap g with
      | Some f -> Format.printf "guest trap: %s@." (Core.Fault.to_string f)
      | None -> ());
      let ledgers = Core.Engine.fence_ledgers eng in
      let emitted = ref 0 and kept = ref 0 and merged = ref 0 in
      let dropped = ref 0 in
      List.iter
        (fun (pc, l) ->
          Format.printf "block 0x%Lx:@.%a" pc Tcg.Fence_ledger.pp l;
          emitted := !emitted + Tcg.Fence_ledger.count l "emitted";
          kept := !kept + Tcg.Fence_ledger.count l "kept";
          merged := !merged + Tcg.Fence_ledger.count l "merged";
          dropped := !dropped + Tcg.Fence_ledger.count l "dropped")
        ledgers;
      Format.printf
        "total: %d emitted, %d kept, %d merged away, %d dropped@." !emitted
        !kept !merged !dropped;
      if !emitted > 0 then
        Format.printf "fence.merged_ratio: %.3f@."
          (float_of_int (!merged + !dropped) /. float_of_int !emitted);
      0

(* verify: offline integrity check, dispatching on the file's magic —
   gelf images ("GELF*") and persistent translation caches ("RSTC*")
   share the subcommand because both are checksummed artifacts the DBT
   may load at startup. *)
let verify path =
  let magic =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          really_input_string ic (min 4 (in_channel_length ic)))
    with
    | s -> s
    | exception Sys_error msg ->
        Format.eprintf "%s: %s@." path msg;
        exit 1
  in
  if String.length magic >= 4 && String.sub magic 0 4 = "RSTC" then
    match Core.Engine.verify_cache path with
    | Ok (valid, []) ->
        Format.printf "%s: cache OK (%d entr%s)@." path valid
          (if valid = 1 then "y" else "ies");
        0
    | Ok (valid, bad) ->
        Format.printf "%s: cache DAMAGED (%d intact, %d corrupt)@." path
          valid (List.length bad);
        List.iter (fun msg -> Format.printf "  %s@." msg) bad;
        1
    | Error f ->
        Format.printf "%s: cache REJECTED (%s)@." path
          (Core.Fault.to_string f);
        1
  else
    match Image.Gelf.verify_file path with
    | Ok () ->
        Format.printf "%s: image OK@." path;
        0
    | Error msg ->
        Format.printf "%s: image REJECTED (%s)@." path msg;
        1

let asm src dst entry =
  let ic = open_in src in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match X86.Parse.parse text with
  | exception X86.Parse.Error { line; msg } ->
      Format.eprintf "%s:%d: %s@." src line msg;
      1
  | items ->
      let image = Image.Gelf.build ~entry items in
      Image.Gelf.save image dst;
      Format.printf "assembled %s -> %s (%d bytes, entry 0x%Lx)@." src dst
        (String.length image.Image.Gelf.text)
        image.Image.Gelf.entry;
      0

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let config_arg =
  Arg.(
    value & opt string "risotto"
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"DBT configuration: qemu, no-fences, tcg-ver or risotto.")

let src_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"SRC")
let dst_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DST")

let entry_arg =
  Arg.(
    value & opt string "main"
    & info [ "e"; "entry" ] ~docv:"LABEL" ~doc:"Entry label.")

let asm_cmd =
  Cmd.v (Cmd.info "asm" ~doc:"Assemble a text file into an image")
    Term.(const asm $ src_arg $ dst_arg $ entry_arg)

let demo_cmd = Cmd.v (Cmd.info "demo" ~doc:"Write a demo image") Term.(const demo $ path_arg)
let dis_cmd = Cmd.v (Cmd.info "dis" ~doc:"Disassemble an image") Term.(const dis $ path_arg)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Checksum-verify a persisted artifact (gelf image or \
          translation cache) without loading it into an engine.  Exits \
          0 if intact, 1 with the per-entry damage report otherwise.")
    Term.(const verify $ path_arg)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it to $(docv) as \
           Chrome trace_event JSON (open in chrome://tracing or \
           Perfetto).")

let debug_arg =
  Arg.(
    value & flag
    & info [ "debug" ] ~doc:"Log every executed block to stderr.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable the metrics registry for the run and print the merged \
           snapshot (counters, gauges, latency histograms) plus the \
           hottest translated blocks.")

let inject_arg =
  Arg.(
    value & opt string ""
    & info [ "inject" ] ~docv:"PLAN"
        ~doc:
          "Fault-injection plan: comma-separated $(b,always:SITE), \
           $(b,nth:SITE:N) or $(b,seeded:SITE:SEED:PERMILLE) rules with \
           SITE one of decode, compile, host-call, cache-read, \
           cache-write, pool-task, journal-write — e.g. \
           $(b,nth:compile:1,seeded:host-call:42:250).")

let no_chain_arg =
  Arg.(
    value & flag
    & info [ "no-chain" ]
        ~doc:
          "Disable translation-block chaining (and the superblock \
           machinery that depends on it): every block exit resolves \
           through the dispatch caches instead of a patched edge.  \
           Results and guest cycles are unchanged; only dispatch work \
           differs.")

let trace_threshold_arg =
  Arg.(
    value & opt int 0
    & info [ "trace-threshold" ] ~docv:"N"
        ~doc:
          "Stitch hot traces into superblocks once a block has executed \
           $(docv) times, re-running the optimizer pipeline across the \
           former block boundaries.  0 (default) disables superblock \
           formation.")

let tier2_threshold_arg =
  Arg.(
    value & opt int 0
    & info [ "tier2-threshold" ] ~docv:"N"
        ~doc:
          "Tier-ladder alias for $(b,--trace-threshold): promote a hot \
           block to a superblock once it has executed $(docv) times and \
           its branch-outcome profile shows a dominant successor path.  \
           When both flags are given the larger value wins.")

let jit_threshold_arg =
  Arg.(
    value & opt int 0
    & info [ "jit-threshold" ] ~docv:"N"
        ~doc:
          "Tiered JIT: start every block on the TCG interpreter (tier \
           0) and request its backend compile only after $(docv) \
           executions.  0 (default) compiles every block synchronously \
           at first translation, the pre-tiered behaviour.  Compiles \
           run on a background translation domain unless \
           $(b,--sync-compile) is given.")

let sync_compile_arg =
  Arg.(
    value & flag
    & info [ "sync-compile" ]
        ~doc:
          "With $(b,--jit-threshold), run tier-1 compiles inline on the \
           execution thread instead of the background translation \
           domain — fully deterministic scheduling at the cost of \
           translation latency back on the critical path.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"DIR"
        ~doc:
          "Write a self-contained HTML run report (metrics snapshot plus \
           a bench-trajectory section over every $(b,BENCH_*.json) found \
           in $(docv)) to $(docv)/report.html.  Implies $(b,--metrics) \
           collection.")

let postmortem_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem" ] ~docv:"DIR"
        ~doc:
          "On any guest trap or watchdog exhaustion, dump a \
           deterministic postmortem JSON (each thread's recent \
           flight-recorder events, tier states, the trapping block's \
           fence ledger, a chain summary and a metrics slice) into \
           $(docv) as postmortem-NNN.json.  The flight recorder is \
           always on; this flag only enables writing the artifact.")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Run an image under the DBT")
    Term.(
      const run $ path_arg $ config_arg $ trace_arg $ debug_arg
      $ metrics_arg $ inject_arg $ no_chain_arg $ trace_threshold_arg
      $ tier2_threshold_arg $ jit_threshold_arg $ sync_compile_arg
      $ report_arg $ postmortem_arg)

let explain_fences_cmd =
  Cmd.v
    (Cmd.info "explain-fences"
       ~doc:
         "Run an image and print each translated block's fence ledger: \
          every barrier the mapping emitted, attributed to its guest \
          instruction and rule, and what the optimizer did with it \
          (kept / merged / strengthened / dropped), plus the run-wide \
          merged ratio.")
    Term.(const explain_fences $ path_arg $ config_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "gelf_tool" ~doc:"Guest image tool")
          [ asm_cmd; demo_cmd; dis_cmd; run_cmd; verify_cmd;
            explain_fences_cmd ]))
