bin/gelf_tool.ml: Arg Arm Buffer Cmd Cmdliner Core Format Image Int64 List Logs String Term X86
