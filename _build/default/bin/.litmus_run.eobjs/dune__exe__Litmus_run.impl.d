bin/litmus_run.ml: Arg Axiom Cmd Cmdliner Format List Litmus String Term
