bin/gelf_tool.mli:
