bench/main.ml: Array Axiom Bechamel Bechamel_runner Core Fmt Format Harness Image Int64 List Litmus Mapping Staged String Sys Test
