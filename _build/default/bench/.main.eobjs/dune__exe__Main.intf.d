bench/main.mli:
