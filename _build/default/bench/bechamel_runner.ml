(* Minimal Bechamel driver: measures each test with the monotonic clock
   and prints the OLS estimate of time per run. *)

open Bechamel
open Toolkit

let run ?(quota = 0.4) ~name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun label ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (label, ns) :: acc)
      results []
  in
  Printf.printf "%-42s %14s\n" "benchmark" "time/run";
  List.iter
    (fun (label, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.2f ns" ns
      in
      Printf.printf "%-42s %14s\n" label pretty)
    (List.sort compare rows);
  print_newline ()
