(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7), prints the §3 correctness findings, runs the
   DESIGN.md ablations, and measures the engine itself with Bechamel
   (one Test.make per table/figure).

   Pass "--no-bechamel" to skip the wall-clock micro-benchmarks. *)

let no_bechamel = Array.exists (( = ) "--no-bechamel") Sys.argv
let ppf = Format.std_formatter

let section title =
  Format.printf "@.===================================================@.";
  Format.printf "== %s@." title;
  Format.printf "===================================================@."

(* ------------------------------------------------------------------ *)
(* Mapping tables (Figures 2, 3, 7)                                    *)

let mapping_tables () =
  section "Mapping tables (Figures 2, 3, 7)";
  Harness.Figures.pp_mapping_tables ppf ()

(* ------------------------------------------------------------------ *)
(* §3 correctness findings                                             *)

let correctness_findings () =
  section "Section 3: correctness findings (exhaustive model checking)";
  let x86 = Axiom.X86_tso.model in
  let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original in
  let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected in
  let check name scheme tgt_model prog expect_violation =
    let r =
      Mapping.Check.refines ~src_model:x86 ~tgt_model ~src:prog
        ~tgt:(scheme prog)
    in
    Format.printf "  %-58s %s (expected %s)@." name
      (if r.Mapping.Check.ok then "correct" else "VIOLATION")
      (if expect_violation then "VIOLATION" else "correct")
  in
  let qemu_gcc10 =
    Mapping.Schemes.(
      x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc10 })
  in
  let qemu_gcc9 =
    Mapping.Schemes.(
      x86_to_arm Qemu_frontend { lowering = `Qemu; rmw = Helper_gcc9 })
  in
  let risotto =
    let fe, be = Mapping.Schemes.risotto_rmw2_preset in
    Mapping.Schemes.x86_to_arm fe be
  in
  let risotto_casal =
    let fe, be = Mapping.Schemes.risotto_casal_preset in
    Mapping.Schemes.x86_to_arm fe be
  in
  check "Qemu (gcc10/casal) on MPQ  [par.3.2 error 1]" qemu_gcc10 arm_fix
    Litmus.Catalog.mpq_x86 true;
  check "Qemu (gcc9/ldaxr-stlxr) on SBQ  [par.3.2 error 2]" qemu_gcc9 arm_fix
    Litmus.Catalog.sbq_x86 true;
  check "Arm-Cats direct mapping on SBAL, original model  [par.3.3]"
    Mapping.Schemes.x86_to_arm_direct_armcats arm_orig Litmus.Catalog.sbal_x86
    true;
  check "Arm-Cats direct mapping on SBAL, corrected model  [fix]"
    Mapping.Schemes.x86_to_arm_direct_armcats arm_fix Litmus.Catalog.sbal_x86
    false;
  check "Risotto verified mapping (rmw2) on MPQ" risotto arm_fix
    Litmus.Catalog.mpq_x86 false;
  check "Risotto verified mapping (rmw2) on SBQ" risotto arm_fix
    Litmus.Catalog.sbq_x86 false;
  check "Risotto casal mapping on SBAL, corrected model" risotto_casal arm_fix
    Litmus.Catalog.sbal_x86 false;
  (* FMR: the RAW transformation at IR level (§3.2 error 3). *)
  let tcgm = Axiom.Tcg_model.model in
  let raw_applied =
    List.hd
      (Mapping.Transform.applications Mapping.Transform.Raw
         Litmus.Catalog.fmr_tcg_src)
  in
  let r =
    Mapping.Check.refines ~src_model:tcgm ~tgt_model:tcgm
      ~src:Litmus.Catalog.fmr_tcg_src ~tgt:raw_applied
  in
  Format.printf "  %-58s %s (expected VIOLATION)@."
    "RAW elimination across Fmr (FMR)  [par.3.2 error 3]"
    (if r.Mapping.Check.ok then "correct" else "VIOLATION")

(* ------------------------------------------------------------------ *)
(* Figures 8/9: mapping minimality                                     *)

let minimality () =
  section "Figures 8/9: mapping minimality (every rule is load-bearing)";
  let x86 = Axiom.X86_tso.model and tcg = Axiom.Tcg_model.model in
  let drop_kind k scheme p =
    Litmus.Ast.map_instrs
      (function Litmus.Ast.Fence f when f = k -> [] | i -> [ i ])
      (scheme p)
  in
  let base = Mapping.Schemes.(x86_to_tcg Risotto_frontend) in
  let broken scheme =
    List.filter_map
      (fun (name, src) ->
        if
          (Mapping.Check.refines ~src_model:x86 ~tgt_model:tcg ~src
             ~tgt:(scheme src))
            .Mapping.Check.ok
        then None
        else Some name)
      Litmus.Catalog.mapping_corpus
  in
  Format.printf "  full Figure-7a scheme: %d broken programs@."
    (List.length (broken base));
  List.iter
    (fun (label, kind) ->
      Format.printf "  without %-4s: breaks %s@." label
        (String.concat ", " (broken (drop_kind kind base))))
    [
      ("Frm", Axiom.Event.F_rm);
      ("Fww", Axiom.Event.F_ww);
      ("Fsc", Axiom.Event.F_sc);
    ];
  (* Per-token necessity inside the Figure-8 witnesses. *)
  List.iter
    (fun name ->
      let src = List.assoc name Litmus.Catalog.mapping_corpus in
      let sites =
        Mapping.Minimality.necessary_fences base ~src_model:x86 ~tgt_model:tcg
          src
      in
      Format.printf "  %s image: %a@." name
        (Fmt.list ~sep:Fmt.comma Mapping.Minimality.pp_site)
        sites)
    [ "LB"; "MP" ]

(* ------------------------------------------------------------------ *)
(* Figures 12-15                                                       *)

let figures () =
  section "Figure 12: PARSEC / Phoenix run time";
  Harness.Figures.pp_fig12 ppf (Harness.Figures.fig12 ());
  section "Figure 13: OpenSSL / sqlite (dynamic host linker)";
  Harness.Figures.pp_fig13 ppf (Harness.Figures.fig13 ());
  section "Figure 14: libm (dynamic host linker)";
  Harness.Figures.pp_fig14 ppf (Harness.Figures.fig14 ());
  section "Figure 15: CAS throughput";
  Harness.Figures.pp_fig15 ppf (Harness.Figures.fig15 ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablations () =
  section "Ablation: fence merging (tcg-ver with vs without the pass)";
  Format.printf "%-18s %12s %12s %9s@." "benchmark" "with-merge" "no-merge"
    "saved";
  List.iter
    (fun (name, w, wo) ->
      Format.printf "%-18s %12d %12d %8.2f%%@." name w wo
        (100. *. (1. -. (float_of_int w /. float_of_int wo))))
    (Harness.Ablation.fence_merge ());
  section "Ablation: CAS line-transfer cost sweep (4 threads / 1 var)";
  Format.printf "%-10s %12s %12s %10s@." "transfer" "qemu" "risotto" "gain";
  List.iter
    (fun (t, q, r) ->
      Format.printf "%-10d %12.3e %12.3e %9.1f%%@." t q r
        (100. *. ((r /. q) -. 1.)))
    (Harness.Ablation.cas_transfer_sweep ());
  section "Static translation statistics (freqmine)";
  Format.printf "%-12s %8s %10s@." "config" "dmbs" "tcg-ops";
  List.iter
    (fun (name, dmbs, ops) -> Format.printf "%-12s %8d %10d@." name dmbs ops)
    (Harness.Ablation.static_fences "freqmine")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)

let bechamel_benches () =
  section "Bechamel: wall-clock micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let stage = Staged.stage in
  let fig12_one config =
    let spec = (Harness.Parsec.find "freqmine").Harness.Parsec.spec in
    let spec = { spec with Harness.Kernel.iters = 100 } in
    fun () -> ignore (Harness.Kernel.run_dbt config spec)
  in
  let fig13_one () =
    ignore
      (Harness.Libbench.run
         {
           Harness.Libbench.label = "sha256-1024";
           func = "sha256";
           kind = Harness.Libbench.Digest 1024;
           calls = 1;
         })
  in
  let fig14_one () =
    ignore
      (Harness.Libbench.run
         {
           Harness.Libbench.label = "sin";
           func = "sin";
           kind = Harness.Libbench.Scalar (Int64.bits_of_float 0.5);
           calls = 10;
         })
  in
  let fig15_one () =
    ignore (Harness.Casbench.run { Harness.Casbench.threads = 4; vars = 1 })
  in
  let sec3_one () =
    let fe, be = Mapping.Schemes.risotto_casal_preset in
    ignore
      (Mapping.Check.refines ~src_model:Axiom.X86_tso.model
         ~tgt_model:(Axiom.Arm_cats.model Axiom.Arm_cats.Corrected)
         ~src:Litmus.Catalog.mpq_x86
         ~tgt:(Mapping.Schemes.x86_to_arm fe be Litmus.Catalog.mpq_x86))
  in
  let litmus_one () =
    ignore
      (Litmus.Enumerate.behaviours Axiom.X86_tso.model Litmus.Catalog.mp_x86)
  in
  let translate_image =
    Image.Gelf.build ~entry:"main"
      (Harness.Kernel.to_x86
         {
           Harness.Kernel.name = "tb";
           iters = 1;
           mix =
             { Harness.Kernel.loads = 6; stores = 2; arith = 8; fp = 0; locks = 0 };
         })
  in
  let translate_one () =
    let eng = Core.Engine.create Core.Config.risotto translate_image in
    ignore (Core.Engine.lookup_block eng translate_image.Image.Gelf.entry)
  in
  Bechamel_runner.run ~name:"risotto"
    [
      Test.make ~name:"fig12/freqmine/qemu" (stage (fig12_one Core.Config.qemu));
      Test.make ~name:"fig12/freqmine/risotto"
        (stage (fig12_one Core.Config.risotto));
      Test.make ~name:"fig13/sha256-1024" (stage fig13_one);
      Test.make ~name:"fig14/sin" (stage fig14_one);
      Test.make ~name:"fig15/cas-4-1" (stage fig15_one);
      Test.make ~name:"sec3/theorem1-MPQ" (stage sec3_one);
      Test.make ~name:"litmus/enumerate-MP" (stage litmus_one);
      Test.make ~name:"dbt/translate-block" (stage translate_one);
    ]

let () =
  mapping_tables ();
  correctness_findings ();
  minimality ();
  figures ();
  ablations ();
  if not no_bechamel then bechamel_benches ();
  Format.printf "@.done.@."
