(* The x86 guest ISA: encoder/decoder round trips, the assembler, and
   the reference interpreter. *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

let check_int = Alcotest.check Alcotest.int
let check_i64 = Alcotest.check Alcotest.int64

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let arb_reg = QCheck.map R.of_index QCheck.(int_range 0 15)

let arb_mem =
  QCheck.map
    (fun ((base, index), disp) ->
      { I.base; index; disp = Int64.of_int disp })
    QCheck.(
      pair
        (pair (option arb_reg)
           (option (pair arb_reg (oneofl [ 1; 2; 4; 8 ]))))
        (int_range (-100000) 100000))

let arb_src =
  QCheck.oneof
    [
      QCheck.map (fun r -> I.R r) arb_reg;
      QCheck.map (fun i -> I.I (Int64.of_int i)) QCheck.(int_range (-1000000) 1000000);
    ]

let arb_alu =
  QCheck.oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor; I.Shl; I.Shr; I.Imul ]

let arb_fp = QCheck.oneofl [ I.Fadd; I.Fsub; I.Fmul; I.Fdiv; I.Fsqrt ]

let arb_cc =
  QCheck.oneofl [ I.E; I.Ne; I.L; I.Le; I.G; I.Ge; I.B; I.Be; I.A; I.Ae ]

let arb_target = QCheck.map (fun t -> Int64.of_int t) QCheck.(int_range 0 100000)

let arb_insn =
  let open QCheck in
  oneof
    [
      map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair arb_reg int);
      map (fun (a, b) -> I.Mov_rr (a, b)) (pair arb_reg arb_reg);
      map (fun (r, m) -> I.Load (r, m)) (pair arb_reg arb_mem);
      map (fun (m, s) -> I.Store (m, s)) (pair arb_mem arb_src);
      map (fun (op, r, s) -> I.Alu (op, r, s)) (triple arb_alu arb_reg arb_src);
      map (fun (op, a, b) -> I.Fp (op, a, b)) (triple arb_fp arb_reg arb_reg);
      map (fun (r, s) -> I.Cmp (r, s)) (pair arb_reg arb_src);
      map (fun (r, s) -> I.Test (r, s)) (pair arb_reg arb_src);
      map (fun (r, m) -> I.Lea (r, m)) (pair arb_reg arb_mem);
      map (fun r -> I.Inc r) arb_reg;
      map (fun r -> I.Dec r) arb_reg;
      map (fun r -> I.Neg r) arb_reg;
      map (fun r -> I.Not r) arb_reg;
      map (fun (cc, a, b) -> I.Cmov (cc, a, b)) (triple arb_cc arb_reg arb_reg);
      map (fun t -> I.Jmp t) arb_target;
      map (fun (cc, t) -> I.Jcc (cc, t)) (pair arb_cc arb_target);
      map (fun t -> I.Call t) arb_target;
      always I.Ret;
      map (fun r -> I.Push r) arb_reg;
      map (fun r -> I.Pop r) arb_reg;
      map (fun (m, r) -> I.Lock_cmpxchg (m, r)) (pair arb_mem arb_reg);
      map (fun (m, r) -> I.Lock_xadd (m, r)) (pair arb_mem arb_reg);
      map (fun (m, r) -> I.Xchg (m, r)) (pair arb_mem arb_reg);
      always I.Mfence;
      always I.Nop;
      always I.Syscall;
      always I.Hlt;
    ]

(* Store immediates are encoded as 32 bits; normalise for comparison. *)
let normalise = function
  | I.Store (m, I.I i) -> I.Store (m, I.I (Int64.of_int32 (Int64.to_int32 i)))
  | I.Alu (op, r, I.I i) -> I.Alu (op, r, I.I (Int64.of_int32 (Int64.to_int32 i)))
  | I.Cmp (r, I.I i) -> I.Cmp (r, I.I (Int64.of_int32 (Int64.to_int32 i)))
  | I.Test (r, I.I i) -> I.Test (r, I.I (Int64.of_int32 (Int64.to_int32 i)))
  | i -> i

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round trip" ~count:1000 arb_insn
    (fun insn ->
      let pc = 0x4000L in
      let bytes = X86.Encode.encode ~pc insn in
      let decoded, len = X86.Decode.decode bytes ~pc ~base:pc in
      len = String.length bytes
      && len = X86.Encode.length insn
      && decoded = normalise insn)

let prop_decode_positions =
  QCheck.Test.make ~name:"streams of instructions decode in sequence"
    ~count:200
    QCheck.(small_list arb_insn)
    (fun insns ->
      let base = 0x1000L in
      let buf = Buffer.create 64 in
      let addrs =
        List.fold_left
          (fun pc i ->
            X86.Encode.emit buf ~pc i;
            Int64.add pc (Int64.of_int (X86.Encode.length i)))
          base insns
      in
      ignore addrs;
      let text = Buffer.contents buf in
      let rec go pc = function
        | [] -> true
        | i :: rest ->
            let d, len = X86.Decode.decode text ~pc ~base in
            d = normalise i && go (Int64.add pc (Int64.of_int len)) rest
      in
      go base insns)

(* ------------------------------------------------------------------ *)
(* Text assembler parser                                               *)

(* Non-branch instructions (branch operands print as absolute
   addresses, which the text syntax expresses as labels instead). *)
let arb_parsable_insn =
  let open QCheck in
  let mem_ok =
    map
      (fun ((base, index), disp) ->
        (* keep absolute displacements non-negative for printing *)
        let disp = if base = None && index = None then abs disp else disp in
        { I.base; index; disp = Int64.of_int disp })
      (pair
         (pair (option arb_reg) (option (pair arb_reg (oneofl [ 1; 2; 4; 8 ]))))
         (int_range (-10000) 10000))
  in
  oneof
    [
      map (fun (r, i) -> I.Mov_ri (r, Int64.of_int i)) (pair arb_reg int);
      map (fun (a, b) -> I.Mov_rr (a, b)) (pair arb_reg arb_reg);
      map (fun (r, m) -> I.Load (r, m)) (pair arb_reg mem_ok);
      map (fun (m, s) -> I.Store (m, s)) (pair mem_ok arb_src);
      map (fun (op, r, s) -> I.Alu (op, r, s)) (triple arb_alu arb_reg arb_src);
      map (fun (r, m) -> I.Lea (r, m)) (pair arb_reg mem_ok);
      map (fun r -> I.Inc r) arb_reg;
      map (fun r -> I.Dec r) arb_reg;
      map (fun r -> I.Neg r) arb_reg;
      map (fun r -> I.Not r) arb_reg;
      map (fun (cc, a, b) -> I.Cmov (cc, a, b)) (triple arb_cc arb_reg arb_reg);
      map (fun (op, a, b) -> I.Fp (op, a, b)) (triple arb_fp arb_reg arb_reg);
      map (fun (r, s) -> I.Cmp (r, s)) (pair arb_reg arb_src);
      map (fun (r, s) -> I.Test (r, s)) (pair arb_reg arb_src);
      map (fun r -> I.Push r) arb_reg;
      map (fun r -> I.Pop r) arb_reg;
      map (fun (m, r) -> I.Lock_cmpxchg (m, r)) (pair mem_ok arb_reg);
      map (fun (m, r) -> I.Lock_xadd (m, r)) (pair mem_ok arb_reg);
      map (fun (m, r) -> I.Xchg (m, r)) (pair mem_ok arb_reg);
      always I.Ret;
      always I.Mfence;
      always I.Nop;
      always I.Syscall;
      always I.Hlt;
    ]

let prop_parse_pp_roundtrip =
  QCheck.Test.make ~name:"parse (pp insn) = insn" ~count:1000
    arb_parsable_insn (fun insn ->
      X86.Parse.parse_insn (Fmt.str "%a" I.pp insn) = insn)

let test_parse_program () =
  let items =
    X86.Parse.parse
      "main:\n\
      \  mov rax, $0      # comment\n\
      \  mov rbx, $5\n\
       loop:\n\
      \  add rax, rbx\n\
      \  dec rbx\n\
      \  test rbx, rbx\n\
      \  jne loop\n\
      \  mov [rax+rbx*8+16], rax\n\
      \  mov rdi, @loop\n\
      \  hlt\n"
  in
  check_int "items" 11 (List.length items);
  (* assemble and run it to prove the pieces connect *)
  let a = assemble items in
  let s = X86.Interp.create ~code:a.code ~base:a.org ~entry:(symbol a "main") () in
  ignore (X86.Interp.run s);
  check_i64 "sum 5..1" 15L s.X86.Interp.regs.(R.index R.RAX);
  check_i64 "label operand" (symbol a "loop") s.X86.Interp.regs.(R.index R.RDI)

let test_parse_errors2 () =
  let fails s =
    match X86.Parse.parse s with
    | exception X86.Parse.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad register" true (fails "mov rq, $1");
  Alcotest.(check bool) "bad mnemonic" true (fails "frob rax");
  Alcotest.(check bool) "trailing" true (fails "ret ret");
  Alcotest.(check bool) "two indexes" true (fails "mov rax, [rbx*2+rcx*2]")

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)

let test_asm_labels () =
  let a =
    assemble
      [
        Label "start";
        Ins (I.Mov_ri (R.RAX, 1L));
        Jmp_lbl "end";
        Label "mid";
        Ins I.Nop;
        Label "end";
        Ins I.Hlt;
      ]
  in
  let start = symbol a "start" in
  check_i64 "start at org" 0x1000L start;
  let endl = symbol a "end" in
  (* Decode the Jmp and check it targets "end". *)
  let jmp_addr = Int64.add start 10L in
  let insn, _ = X86.Decode.decode a.code ~pc:jmp_addr ~base:a.org in
  (match insn with
  | I.Jmp t -> check_i64 "jmp resolves label" endl t
  | i -> Alcotest.failf "expected jmp, got %a" I.pp i);
  check_int "listing covers 4 instructions" 4 (List.length a.listing)

let test_asm_errors () =
  Alcotest.check_raises "undefined label" (Undefined_label "nope") (fun () ->
      ignore (assemble [ Jmp_lbl "nope" ]));
  Alcotest.check_raises "duplicate label" (Duplicate_label "l") (fun () ->
      ignore (assemble [ Label "l"; Label "l" ]))

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let run_items ?(regs = []) items =
  let a = assemble items in
  let s = X86.Interp.create ~code:a.code ~base:a.org ~entry:(symbol a "main") () in
  s.X86.Interp.regs.(R.index R.RSP) <- 0x8000_0000L;
  List.iter (fun (r, v) -> s.X86.Interp.regs.(R.index r) <- v) regs;
  ignore (X86.Interp.run s);
  s

let reg s r = s.X86.Interp.regs.(R.index r)

let test_interp_arith () =
  let s =
    run_items
      [
        Label "main";
        Ins (I.Mov_ri (R.RAX, 10L));
        Ins (I.Alu (I.Add, R.RAX, I.I 5L));
        Ins (I.Alu (I.Imul, R.RAX, I.I 3L));
        Ins (I.Alu (I.Shl, R.RAX, I.I 2L));
        Ins (I.Alu (I.Xor, R.RAX, I.I 0xFL));
        Ins I.Hlt;
      ]
  in
  check_i64 "((10+5)*3)<<2 ^ 15" (Int64.logxor 180L 15L) (reg s R.RAX)

let test_interp_loop_and_flags () =
  let s =
    run_items
      [
        Label "main";
        Ins (I.Mov_ri (R.RAX, 0L));
        Ins (I.Mov_ri (R.RBX, 1L));
        Label "loop";
        Ins (I.Alu (I.Add, R.RAX, I.R R.RBX));
        Ins (I.Alu (I.Add, R.RBX, I.I 1L));
        Ins (I.Cmp (R.RBX, I.I 11L));
        Jcc_lbl (I.Ne, "loop");
        Ins I.Hlt;
      ]
  in
  check_i64 "sum 1..10" 55L (reg s R.RAX)

let test_interp_stack_and_calls () =
  let s =
    run_items
      [
        Label "main";
        Ins (I.Mov_ri (R.RDI, 20L));
        Call_lbl "double";
        Ins (I.Mov_rr (R.RBX, R.RAX));
        Ins I.Hlt;
        Label "double";
        Ins (I.Mov_rr (R.RAX, R.RDI));
        Ins (I.Alu (I.Add, R.RAX, I.R R.RDI));
        Ins I.Ret;
      ]
  in
  check_i64 "call/ret" 40L (reg s R.RBX);
  check_i64 "stack balanced" 0x8000_0000L (reg s R.RSP)

let test_interp_cmpxchg () =
  let mem_op = { I.base = None; index = None; disp = 0x9000L } in
  let s =
    run_items
      [
        Label "main";
        Ins (I.Store (mem_op, I.I 5L));
        Ins (I.Mov_ri (R.RAX, 5L));
        Ins (I.Mov_ri (R.RCX, 9L));
        Ins (I.Lock_cmpxchg (mem_op, R.RCX));
        Jcc_lbl (I.E, "ok");
        Ins I.Hlt;
        Label "ok";
        Ins (I.Mov_ri (R.RBX, 1L));
        (* Second cmpxchg fails: RAX=5 but memory is 9. *)
        Ins (I.Lock_cmpxchg (mem_op, R.RCX));
        Jcc_lbl (I.Ne, "fail_seen");
        Ins I.Hlt;
        Label "fail_seen";
        Ins (I.Mov_ri (R.RDX, 2L));
        Ins I.Hlt;
      ]
  in
  check_i64 "success path" 1L (reg s R.RBX);
  check_i64 "failure path" 2L (reg s R.RDX);
  check_i64 "rax loaded with old value" 9L (reg s R.RAX);
  check_i64 "memory swapped" 9L (Memsys.Mem.load s.X86.Interp.mem 0x9000L)

let test_interp_xadd_xchg () =
  let m = { I.base = None; index = None; disp = 0x9100L } in
  let s =
    run_items
      [
        Label "main";
        Ins (I.Store (m, I.I 10L));
        Ins (I.Mov_ri (R.RCX, 7L));
        Ins (I.Lock_xadd (m, R.RCX));
        Ins (I.Mov_ri (R.RDX, 100L));
        Ins (I.Xchg (m, R.RDX));
        Ins I.Hlt;
      ]
  in
  check_i64 "xadd returns old" 10L (reg s R.RCX);
  check_i64 "xchg returns old" 17L (reg s R.RDX);
  check_i64 "memory after xchg" 100L (Memsys.Mem.load s.X86.Interp.mem 0x9100L)

let test_interp_fp () =
  let s =
    run_items
      [
        Label "main";
        Ins (I.Mov_ri (R.RAX, Int64.bits_of_float 9.0));
        Ins (I.Fp (I.Fsqrt, R.RBX, R.RAX));
        Ins (I.Mov_ri (R.RCX, Int64.bits_of_float 0.5));
        Ins (I.Fp (I.Fadd, R.RBX, R.RCX));
        Ins I.Hlt;
      ]
  in
  Alcotest.(check (float 1e-9)) "sqrt(9)+0.5" 3.5
    (Int64.float_of_bits (reg s R.RBX))

let test_interp_syscalls () =
  let s =
    run_items
      [
        Label "main";
        (* write "hi" from 0xA000 *)
        Ins (I.Store ({ I.base = None; index = None; disp = 0xA000L }, I.I 0x6968L));
        Ins (I.Mov_ri (R.RAX, 1L));
        Ins (I.Mov_ri (R.RDI, 1L));
        Ins (I.Mov_ri (R.RSI, 0xA000L));
        Ins (I.Mov_ri (R.RDX, 2L));
        Ins I.Syscall;
        Ins (I.Mov_ri (R.RAX, 60L));
        Ins (I.Mov_ri (R.RDI, 42L));
        Ins I.Syscall;
        Ins I.Nop;
      ]
  in
  Alcotest.(check string) "write output" "hi" (Buffer.contents s.X86.Interp.output);
  check_i64 "exit code" 42L s.X86.Interp.exit_code;
  Alcotest.(check bool) "halted" true s.X86.Interp.halted

let test_eval_cc () =
  let t cc a b exp =
    Alcotest.(check bool)
      (Printf.sprintf "cc %Ld %Ld" a b)
      exp
      (X86.Interp.eval_cc cc (a, b))
  in
  t I.E 3L 3L true;
  t I.L (-1L) 1L true;
  t I.B (-1L) 1L false (* unsigned: -1 is huge *);
  t I.A (-1L) 1L true;
  t I.Ge 5L 5L true;
  t I.Le 6L 5L false

let () =
  Alcotest.run "x86"
    [
      ( "encoding",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_decode_positions;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "errors" `Quick test_asm_errors;
        ] );
      ( "text syntax",
        [
          QCheck_alcotest.to_alcotest prop_parse_pp_roundtrip;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "errors" `Quick test_parse_errors2;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "loop and flags" `Quick test_interp_loop_and_flags;
          Alcotest.test_case "stack and calls" `Quick test_interp_stack_and_calls;
          Alcotest.test_case "cmpxchg" `Quick test_interp_cmpxchg;
          Alcotest.test_case "xadd/xchg" `Quick test_interp_xadd_xchg;
          Alcotest.test_case "floating point" `Quick test_interp_fp;
          Alcotest.test_case "syscalls" `Quick test_interp_syscalls;
          Alcotest.test_case "condition codes" `Quick test_eval_cc;
        ] );
    ]
