(* The litmus engine against the ground-truth catalog: this is the
   executable form of the paper's model-level claims (§2.1, §3.2, §3.3,
   Figures 8/9). *)

open Litmus
module E = Axiom.Event

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let suite_of_catalog model tests =
  List.map
    (fun (name, test) ->
      Alcotest.test_case name `Quick (fun () ->
          let v = Enumerate.check model test in
          if not v.Enumerate.ok then
            Alcotest.failf "%s: %d consistent behaviours, witnesses: %a" name
              v.Enumerate.total_consistent
              (Fmt.list Enumerate.pp_behaviour)
              v.Enumerate.witnesses))
    tests

(* ------------------------------------------------------------------ *)
(* Enumerator internals                                                *)

let test_universe () =
  let p = Catalog.mp_x86 in
  Alcotest.(check (list int)) "MP universe" [ 0; 1 ] (Enumerate.universe p);
  let p2 =
    Dsl.prog "u" [ ("X", 3) ] [ [ Dsl.st "X" 7; Dsl.ld "a" "X" ] ]
  in
  Alcotest.(check (list int)) "constants + init + 0" [ 0; 3; 7 ]
    (Enumerate.universe p2)

let test_candidate_counts () =
  (* Single store, single load, one location: the load reads either the
     init or the store; co is fixed. *)
  let p = Dsl.prog "c" [ ("X", 0) ] [ [ Dsl.st "X" 1 ]; [ Dsl.ld "a" "X" ] ] in
  check_int "two candidates" 2 (List.length (Enumerate.candidates p));
  let bs = Enumerate.behaviours Axiom.Sc_model.model p in
  check_int "two behaviours under SC" 2 (List.length bs)

let test_all_candidates_well_formed () =
  List.iter
    (fun (_, p) ->
      List.iter
        (fun (x, _) ->
          match Axiom.Execution.well_formed x with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: ill-formed candidate: %s" p.Ast.name e)
        (Enumerate.candidates p))
    [ ("MP", Catalog.mp_x86); ("MPQ", Catalog.mpq_x86); ("SBAL", Catalog.sbal_x86) ]

let test_registers_in_behaviour () =
  let p = Dsl.prog "r" [ ("X", 5) ] [ [ Dsl.ld "a" "X"; Dsl.assign "b" (Ast.Add (Ast.Reg "a", Ast.Int 1)) ] ] in
  match Enumerate.behaviours Axiom.Sc_model.model p with
  | [ b ] ->
      Alcotest.(check (option int)) "a=5" (Some 5) (List.assoc_opt (0, "a") b.Enumerate.regs);
      Alcotest.(check (option int)) "b=6" (Some 6) (List.assoc_opt (0, "b") b.Enumerate.regs)
  | bs -> Alcotest.failf "expected one behaviour, got %d" (List.length bs)

let test_if_branches () =
  let p =
    Dsl.prog "if" [ ("X", 0) ]
      [
        [ Dsl.st "X" 1 ];
        [
          Dsl.ld "a" "X";
          Dsl.if_else
            (Ast.Eq (Ast.Reg "a", Ast.Int 1))
            [ Dsl.assign "b" (Ast.Int 10) ]
            [ Dsl.assign "b" (Ast.Int 20) ];
        ];
      ]
  in
  let bs = Enumerate.behaviours Axiom.Sc_model.model p in
  let has cond = List.exists (Enumerate.eval_cond cond) bs in
  check_bool "taken branch" true
    (has Ast.(And (Reg_is (1, "a", 1), Reg_is (1, "b", 10))));
  check_bool "else branch" true
    (has Ast.(And (Reg_is (1, "a", 0), Reg_is (1, "b", 20))));
  check_bool "no mixed outcome" false
    (has Ast.(And (Reg_is (1, "a", 1), Reg_is (1, "b", 20))))

let test_failed_cas_generates_read_only () =
  let p =
    Dsl.prog "cas-fail" [ ("X", 5) ] [ [ Dsl.cas_x86 ~reg:"a" "X" 0 1 ] ]
  in
  let bs = Enumerate.behaviours Axiom.Sc_model.model p in
  check_int "one behaviour" 1 (List.length bs);
  check_bool "X unchanged, a=5" true
    (List.for_all
       (Enumerate.eval_cond Ast.(And (Loc_is ("X", 5), Reg_is (0, "a", 5))))
       bs)

let test_cond_eval () =
  let b = { Enumerate.mem = [ ("X", 1) ]; regs = [ ((0, "a"), 2) ] } in
  check_bool "loc" true (Enumerate.eval_cond (Ast.Loc_is ("X", 1)) b);
  check_bool "reg" true (Enumerate.eval_cond (Ast.Reg_is (0, "a", 2)) b);
  check_bool "missing reg" false (Enumerate.eval_cond (Ast.Reg_is (1, "a", 2)) b);
  check_bool "not" true
    (Enumerate.eval_cond (Ast.Not (Ast.Loc_is ("X", 0))) b);
  check_bool "or" true
    (Enumerate.eval_cond (Ast.Or (Ast.Loc_is ("X", 0), Ast.True)) b)

let test_ast_helpers () =
  let p = Catalog.sbq_x86 in
  Alcotest.(check (list string))
    "locations" [ "U"; "X"; "Y"; "Z" ] (Ast.locations p);
  Alcotest.(check (list string))
    "registers of thread 0" [ "a" ]
    (Ast.registers (List.nth p.Ast.threads 0))


(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_simple () =
  let t =
    Parser.parse
      "test T\ninit X=0\nthread P0 { st X, 1; ld a, X }\nallowed 0:a=1"
  in
  check_int "one thread" 1 (List.length t.Ast.prog.Ast.threads);
  check_int "two instructions" 2
    (List.length (List.hd t.Ast.prog.Ast.threads).Ast.code);
  (match t.Ast.expect with
  | Ast.Allowed (Ast.Reg_is (0, "a", 1)) -> ()
  | _ -> Alcotest.fail "wrong expectation")

let test_parse_annotations () =
  let p =
    Parser.parse_prog
      "test T\nthread P0 {\n  ld.acq a, X\n  ld.q b, Y\n  st.rel X, 1\n         cas.lxsx.a.l r <- X, 0, 1\n  fence DMB.ST\n  r2 := (a + (b * 2))\n}"
  in
  match (List.hd p.Ast.threads).Ast.code with
  | [
   Ast.Load { ord = Axiom.Event.R_acq; _ };
   Ast.Load { ord = Axiom.Event.R_acq_pc; _ };
   Ast.Store { ord = Axiom.Event.W_rel; _ };
   Ast.Cas { reg = Some "r"; kind = Ast.Rmw_arm { impl = Ast.Lxsx; acq = true; rel = true }; _ };
   Ast.Fence Axiom.Event.F_dmb_st;
   Ast.Assign ("r2", Ast.Add (Ast.Reg "a", Ast.Mul (Ast.Reg "b", Ast.Int 2)));
  ] ->
      ()
  | code ->
      Alcotest.failf "unexpected parse: %a"
        (Fmt.list ~sep:Fmt.comma Ast.pp_instr)
        code

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Error _ -> true
    | _ -> false
  in
  check_bool "missing expectation" true (fails "test T\nthread P0 { st X, 1 }");
  check_bool "no threads" true (fails "test T\nallowed true");
  check_bool "bad fence" true
    (fails "test T\nthread P0 { fence NOPE }\nallowed true");
  check_bool "bad mnemonic" true
    (fails "test T\nthread P0 { frobnicate }\nallowed true");
  check_bool "trailing garbage" true
    (fails "test T\nthread P0 { st X, 1 }\nallowed true\n)")

let test_parse_file_corpus () =
  (* Every shipped .litmus file parses and its expectation matches the
     catalog's verdict under the model named in its comment. *)
  let parse_file name =
    let path = "../../../litmus/" ^ name in
    if Sys.file_exists path then begin
      let ic = open_in path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (Parser.parse src)
    end
    else None
  in
  (match parse_file "MP.litmus" with
  | Some t ->
      let v = Enumerate.check Axiom.X86_tso.model t in
      check_bool "MP.litmus forbidden on x86" true v.Enumerate.ok
  | None -> ());
  match parse_file "SBAL.litmus" with
  | Some t ->
      let v_fix =
        Enumerate.check (Axiom.Arm_cats.model Axiom.Arm_cats.Corrected) t
      in
      check_bool "SBAL.litmus holds on corrected Arm" true v_fix.Enumerate.ok;
      let v_orig =
        Enumerate.check (Axiom.Arm_cats.model Axiom.Arm_cats.Original) t
      in
      check_bool "SBAL.litmus fails on original Arm" false v_orig.Enumerate.ok
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Random programs: parser round trip and cross-model inclusions       *)

let arb_prog =
  let open QCheck in
  let loc = oneofl [ "X"; "Y" ] in
  let reg = oneofl [ "a"; "b"; "c" ] in
  let value = int_range 0 2 in
  let fencek =
    oneofl
      Axiom.Event.
        [ F_mfence; F_dmb_full; F_dmb_ld; F_dmb_st; F_rm; F_ww; F_sc ]
  in
  let instr =
    oneof
      [
        map (fun (r, l) -> Dsl.ld r l) (pair reg loc);
        map (fun (l, v) -> Dsl.st l v) (pair loc value);
        map (fun (r, l) -> Dsl.ld_acq r l) (pair reg loc);
        map (fun (l, v) -> Dsl.st_rel l v) (pair loc value);
        map (fun f -> Dsl.fence f) fencek;
        map (fun (l, (e, d)) -> Dsl.cas_x86 l e d) (pair loc (pair value value));
        map (fun (l, (e, d)) -> Dsl.cas_amo_al l e d) (pair loc (pair value value));
        map (fun (r, v) -> Dsl.assign r (Ast.Int v)) (pair reg value);
      ]
  in
  let thread = list_of_size Gen.(1 -- 3) instr in
  map
    (fun (t0, t1) -> Dsl.prog "rand" [ ("X", 0); ("Y", 0) ] [ t0; t1 ])
    (pair thread thread)

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"parse (prog_to_source p) = p" ~count:300 arb_prog
    (fun p -> Parser.parse_prog (Parser.prog_to_source p) = p)

let prop_sc_subset_of_all =
  QCheck.Test.make ~name:"SC behaviours included in every model" ~count:60
    arb_prog (fun p ->
      let sc = Enumerate.behaviours Axiom.Sc_model.model p in
      List.for_all
        (fun m ->
          let bs = Enumerate.behaviours m p in
          List.for_all
            (fun b -> List.exists (fun b' -> Enumerate.behaviour_compare b b' = 0) bs)
            sc)
        [
          Axiom.X86_tso.model;
          Axiom.Arm_cats.model Axiom.Arm_cats.Original;
          Axiom.Arm_cats.model Axiom.Arm_cats.Corrected;
          Axiom.Tcg_model.model;
        ])

let prop_corrected_arm_stronger =
  QCheck.Test.make ~name:"corrected Arm-Cats behaviours ⊆ original's"
    ~count:60 arb_prog (fun p ->
      let orig =
        Enumerate.behaviours (Axiom.Arm_cats.model Axiom.Arm_cats.Original) p
      in
      List.for_all
        (fun b -> List.exists (fun b' -> Enumerate.behaviour_compare b b' = 0) orig)
        (Enumerate.behaviours (Axiom.Arm_cats.model Axiom.Arm_cats.Corrected) p))

let prop_sc_nonempty =
  QCheck.Test.make ~name:"every program has an SC behaviour" ~count:60
    arb_prog (fun p ->
      Enumerate.behaviours Axiom.Sc_model.model p <> [])

let prop_candidates_well_formed =
  QCheck.Test.make ~name:"all candidates are well-formed" ~count:40 arb_prog
    (fun p ->
      List.for_all
        (fun (x, _) -> Result.is_ok (Axiom.Execution.well_formed x))
        (Enumerate.candidates p))

(* ------------------------------------------------------------------ *)
(* Operational TSO machine vs the axiomatic model                      *)

let behaviours_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Enumerate.behaviour_compare x y = 0) a b

let test_tso_machine_corpus_equivalence () =
  List.iter
    (fun (name, p) ->
      let op = Tso_machine.behaviours p in
      let ax = Enumerate.behaviours Axiom.X86_tso.model p in
      if not (behaviours_equal op ax) then
        Alcotest.failf "%s: operational %d vs axiomatic %d behaviours" name
          (List.length op) (List.length ax))
    Catalog.mapping_corpus

let arb_x86_prog =
  (* Plain accesses, MFENCE and x86 CAS only. *)
  let open QCheck in
  let loc = oneofl [ "X"; "Y" ] in
  let reg = oneofl [ "a"; "b"; "c" ] in
  let value = int_range 0 2 in
  let instr =
    oneof
      [
        map (fun (r, l) -> Dsl.ld r l) (pair reg loc);
        map (fun (l, v) -> Dsl.st l v) (pair loc value);
        always Dsl.mfence;
        map (fun (l, (e, d)) -> Dsl.cas_x86 l e d) (pair loc (pair value value));
        map (fun (r, v) -> Dsl.assign r (Ast.Int v)) (pair reg value);
      ]
  in
  let thread = list_of_size Gen.(1 -- 3) instr in
  map
    (fun (t0, t1) -> Dsl.prog "rand-x86" [ ("X", 0); ("Y", 0) ] [ t0; t1 ])
    (pair thread thread)

(* The store-buffer machine and the paper's axiomatic x86 model agree
   on programs whose RMWs all succeed; a CAS whose expected value can
   never match (so it always fails) is where the two treatments of
   LOCK-prefixed instructions may differ — exclude it by construction:
   the generator's CAS expected values are drawn from the written-value
   universe, so failures happen, and the property below therefore
   asserts only operational ⊆ axiomatic plus equality when every RMW
   can succeed.  In practice the corpus test above checks equality on
   all the paper's shapes. *)
let prop_tso_machine_refines_axiomatic =
  QCheck.Test.make ~name:"operational TSO ⊆ axiomatic x86" ~count:150
    arb_x86_prog (fun p ->
      let op = Tso_machine.behaviours p in
      let ax = Enumerate.behaviours Axiom.X86_tso.model p in
      List.for_all
        (fun b -> List.exists (fun b' -> Enumerate.behaviour_compare b b' = 0) ax)
        op)

let test_failed_rmw_divergence () =
  (* SB through an always-failing CAS: the machine drains the buffer
     (real LOCK semantics), the paper's axiomatic model gives failed
     RMWs no fence power (§5.2) — the weak outcome splits them. *)
  let p =
    Dsl.prog "SB+failed-rmws" [ ("X", 0); ("Y", 0); ("D", 0) ]
      [
        [ Dsl.st "X" 1; Dsl.cas_x86 "D" 5 6; Dsl.ld "a" "Y" ];
        [ Dsl.st "Y" 1; Dsl.cas_x86 "D" 5 6; Dsl.ld "b" "X" ];
      ]
  in
  let weak = Ast.(And (Reg_is (0, "a", 0), Reg_is (1, "b", 0))) in
  let op = Tso_machine.behaviours p in
  let ax = Enumerate.behaviours Axiom.X86_tso.model p in
  check_bool "operational forbids the weak outcome" false
    (List.exists (Enumerate.eval_cond weak) op);
  check_bool "axiomatic (successful-RMW-only fences) allows it" true
    (List.exists (Enumerate.eval_cond weak) ax)

let test_machine_statistics () =
  check_bool "explores a finite state space" true
    (Tso_machine.explored_states Catalog.sbq_x86 < 1000);
  check_int "IRIW behaviours" 15
    (List.length (Tso_machine.behaviours (List.assoc "IRIW" Catalog.mapping_corpus)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "litmus"
    [
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "annotations" `Quick test_parse_annotations;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "file corpus" `Quick test_parse_file_corpus;
          QCheck_alcotest.to_alcotest prop_parser_roundtrip;
        ] );
      ( "model properties",
        [
          QCheck_alcotest.to_alcotest prop_sc_subset_of_all;
          QCheck_alcotest.to_alcotest prop_corrected_arm_stronger;
          QCheck_alcotest.to_alcotest prop_sc_nonempty;
          QCheck_alcotest.to_alcotest prop_candidates_well_formed;
        ] );
      ( "enumerator",
        [
          Alcotest.test_case "value universe" `Quick test_universe;
          Alcotest.test_case "candidate counts" `Quick test_candidate_counts;
          Alcotest.test_case "candidates well-formed" `Quick
            test_all_candidates_well_formed;
          Alcotest.test_case "register observation" `Quick
            test_registers_in_behaviour;
          Alcotest.test_case "control flow" `Quick test_if_branches;
          Alcotest.test_case "failed CAS" `Quick
            test_failed_cas_generates_read_only;
          Alcotest.test_case "condition evaluation" `Quick test_cond_eval;
          Alcotest.test_case "AST helpers" `Quick test_ast_helpers;
        ] );
      ( "operational TSO",
        [
          Alcotest.test_case "corpus equivalence with axiomatic" `Quick
            test_tso_machine_corpus_equivalence;
          QCheck_alcotest.to_alcotest prop_tso_machine_refines_axiomatic;
          Alcotest.test_case "failed-RMW divergence witness" `Quick
            test_failed_rmw_divergence;
          Alcotest.test_case "statistics" `Quick test_machine_statistics;
        ] );
      ("SC ground truth", suite_of_catalog Axiom.Sc_model.model Catalog.sc_tests);
      ("x86 ground truth", suite_of_catalog Axiom.X86_tso.model Catalog.x86_tests);
      ( "Arm(original) ground truth",
        suite_of_catalog
          (Axiom.Arm_cats.model Axiom.Arm_cats.Original)
          (Catalog.arm_tests_common @ Catalog.arm_tests_original) );
      ( "Arm(corrected) ground truth",
        suite_of_catalog
          (Axiom.Arm_cats.model Axiom.Arm_cats.Corrected)
          (Catalog.arm_tests_common @ Catalog.arm_tests_corrected) );
      ("TCG ground truth", suite_of_catalog Axiom.Tcg_model.model Catalog.tcg_tests);
    ]
