test/test_litmus.ml: Alcotest Ast Axiom Catalog Dsl Enumerate Fmt Gen List Litmus Parser QCheck QCheck_alcotest Result Sys Tso_machine
