test/test_x86.ml: Alcotest Array Buffer Fmt Int64 List Memsys Printf QCheck QCheck_alcotest String X86
