test/test_axiom.ml: Alcotest Axiom Iset List Rel Relalg Result
