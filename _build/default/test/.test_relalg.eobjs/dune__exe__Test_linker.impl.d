test/test_linker.ml: Alcotest Char Filename Harness Image Int64 Linker List Memsys Sys X86
