test/test_arm.ml: Alcotest Arm Array Int64 List Memsys QCheck QCheck_alcotest
