test/test_mapping.ml: Alcotest Axiom List Litmus Mapping QCheck QCheck_alcotest
