test/test_harness.ml: Alcotest Arm Core Harness Int64 List Memsys
