test/test_relalg.ml: Alcotest Iset List QCheck QCheck_alcotest Rel Relalg
