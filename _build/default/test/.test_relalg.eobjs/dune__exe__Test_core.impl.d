test/test_core.ml: Alcotest Arm Array Axiom Buffer Core Filename Fmt Harness Image Int64 Linker List Memsys QCheck QCheck_alcotest String Sys Tcg X86
