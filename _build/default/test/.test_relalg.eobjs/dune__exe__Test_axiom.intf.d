test/test_axiom.mli:
