test/test_tcg.ml: Alcotest Array Axiom Int64 List Memsys QCheck QCheck_alcotest Tcg
