(* Unit and property tests for the relational algebra substrate. *)

open Relalg

let rel = Alcotest.testable Rel.pp Rel.equal
let iset = Alcotest.testable Iset.pp Iset.equal

let check_rel = Alcotest.check rel
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let r_of = Rel.of_list
let s_of = Iset.of_list

(* ------------------------------------------------------------------ *)

let test_compose () =
  check_rel "compose chains pairs"
    (r_of [ (1, 3) ])
    (Rel.compose (r_of [ (1, 2) ]) (r_of [ (2, 3) ]));
  check_rel "compose fans out"
    (r_of [ (1, 3); (1, 4) ])
    (Rel.compose (r_of [ (1, 2) ]) (r_of [ (2, 3); (2, 4) ]));
  check_rel "compose with empty is empty" Rel.empty
    (Rel.compose (r_of [ (1, 2) ]) Rel.empty)

let test_sequence () =
  check_rel "three-step sequence"
    (r_of [ (1, 4) ])
    (Rel.sequence [ r_of [ (1, 2) ]; r_of [ (2, 3) ]; r_of [ (3, 4) ] ]);
  Alcotest.check_raises "empty sequence rejected"
    (Invalid_argument "Rel.sequence: empty list") (fun () ->
      ignore (Rel.sequence []))

let test_id_restrict () =
  let a = s_of [ 1; 2 ] in
  check_rel "id" (r_of [ (1, 1); (2, 2) ]) (Rel.id a);
  check_rel "[A]; r; [B]"
    (r_of [ (1, 5) ])
    (Rel.restrict a (r_of [ (1, 5); (3, 5); (1, 9) ]) (s_of [ 5 ]));
  check_rel "cross"
    (r_of [ (1, 5); (1, 6); (2, 5); (2, 6) ])
    (Rel.cross a (s_of [ 5; 6 ]))

let test_closure () =
  let chain = r_of [ (1, 2); (2, 3); (3, 4) ] in
  check_rel "transitive closure of a chain"
    (r_of [ (1, 2); (2, 3); (3, 4); (1, 3); (2, 4); (1, 4) ])
    (Rel.transitive_closure chain);
  check_bool "chain is acyclic" true (Rel.acyclic chain);
  check_bool "cycle detected" false (Rel.acyclic (Rel.add 4 1 chain));
  check_bool "self loop is cyclic" false (Rel.acyclic (r_of [ (1, 1) ]))

let test_inverse_domain () =
  let r = r_of [ (1, 2); (3, 2) ] in
  check_rel "inverse" (r_of [ (2, 1); (2, 3) ]) (Rel.inverse r);
  Alcotest.check iset "domain" (s_of [ 1; 3 ]) (Rel.domain r);
  Alcotest.check iset "codomain" (s_of [ 2 ]) (Rel.codomain r);
  Alcotest.check iset "succs" (s_of [ 2 ]) (Rel.succs r 1);
  Alcotest.check iset "preds" (s_of [ 1; 3 ]) (Rel.preds r 2)

let test_total_order () =
  check_bool "1<2<3 is strict total" true
    (Rel.is_strict_total_order_on (s_of [ 1; 2; 3 ])
       (r_of [ (1, 2); (2, 3); (1, 3) ]));
  check_bool "missing pair is not total" false
    (Rel.is_strict_total_order_on (s_of [ 1; 2; 3 ]) (r_of [ (1, 2); (1, 3) ]))

let test_linear_extensions () =
  let s = s_of [ 1; 2; 3 ] in
  check_int "unconstrained: 3! orders" 6
    (List.length (Rel.linear_extensions s Rel.empty));
  let exts = Rel.linear_extensions s (r_of [ (1, 2) ]) in
  check_int "one constraint halves the orders" 3 (List.length exts);
  List.iter
    (fun ext -> check_bool "constraint respected" true (Rel.mem 1 2 ext))
    exts;
  check_int "cyclic constraints: none" 0
    (List.length (Rel.linear_extensions s (r_of [ (1, 2); (2, 1) ])));
  check_int "total order: unique" 1
    (List.length (Rel.linear_extensions s (r_of [ (1, 2); (2, 3) ])))

let test_immediate () =
  let r = Rel.transitive_closure (r_of [ (1, 2); (2, 3) ]) in
  check_rel "immediate removes skips" (r_of [ (1, 2); (2, 3) ]) (Rel.immediate r)

let test_find_cycle () =
  Alcotest.(check (option (list int))) "acyclic" None
    (Rel.find_cycle (r_of [ (1, 2); (2, 3) ]));
  (match Rel.find_cycle (r_of [ (1, 2); (2, 3); (3, 1) ]) with
  | Some cycle ->
      check_int "cycle length" 3 (List.length cycle);
      (* consecutive elements (and last -> first) must be related *)
      let r = r_of [ (1, 2); (2, 3); (3, 1) ] in
      let rec edges = function
        | a :: (b :: _ as rest) ->
            check_bool "edge" true (Rel.mem a b r);
            edges rest
        | [ last ] -> check_bool "closing edge" true (Rel.mem last (List.hd cycle) r)
        | [] -> ()
      in
      edges cycle
  | None -> Alcotest.fail "cycle not found");
  match Rel.find_cycle (r_of [ (5, 5) ]) with
  | Some [ 5 ] -> ()
  | _ -> Alcotest.fail "self-loop not found"

let test_minus_id () =
  check_rel "minus_id"
    (r_of [ (1, 2) ])
    (Rel.minus_id (r_of [ (1, 2); (3, 3) ]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let arb_rel =
  let arb_pair = QCheck.(pair (int_range 0 6) (int_range 0 6)) in
  QCheck.map
    ~rev:(fun r -> Rel.to_list r)
    (fun l -> Rel.of_list l)
    (QCheck.small_list arb_pair)

let prop_find_cycle_agrees_with_acyclic =
  QCheck.Test.make ~name:"find_cycle agrees with acyclic" ~count:300 arb_rel
    (fun r -> Rel.acyclic r = (Rel.find_cycle r = None))

let prop_closure_idempotent =
  QCheck.Test.make ~name:"closure idempotent" ~count:200 arb_rel (fun r ->
      let c = Rel.transitive_closure r in
      Rel.equal c (Rel.transitive_closure c))

let prop_closure_contains =
  QCheck.Test.make ~name:"closure contains relation" ~count:200 arb_rel
    (fun r -> Rel.subset r (Rel.transitive_closure r))

let prop_compose_assoc =
  QCheck.Test.make ~name:"composition associative" ~count:100
    QCheck.(triple arb_rel arb_rel arb_rel)
    (fun (a, b, c) ->
      Rel.equal
        (Rel.compose a (Rel.compose b c))
        (Rel.compose (Rel.compose a b) c))

let prop_inverse_involution =
  QCheck.Test.make ~name:"inverse is an involution" ~count:200 arb_rel
    (fun r -> Rel.equal r (Rel.inverse (Rel.inverse r)))

let prop_union_monotone_closure =
  QCheck.Test.make ~name:"closure monotone in union" ~count:100
    QCheck.(pair arb_rel arb_rel)
    (fun (a, b) ->
      Rel.subset (Rel.transitive_closure a)
        (Rel.transitive_closure (Rel.union a b)))

let prop_linear_extensions_are_orders =
  QCheck.Test.make ~name:"linear extensions are total orders containing r"
    ~count:50
    QCheck.(
      pair
        (map Iset.of_list (small_list (int_range 0 4)))
        arb_rel)
    (fun (s, r) ->
      let r = Rel.restrict s r s in
      List.for_all
        (fun ext ->
          Rel.is_strict_total_order_on s ext
          && Rel.subset (Rel.minus_id (Rel.transitive_closure r)) ext)
        (Rel.linear_extensions s r))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_closure_idempotent;
      prop_closure_contains;
      prop_compose_assoc;
      prop_inverse_involution;
      prop_union_monotone_closure;
      prop_linear_extensions_are_orders;
      prop_find_cycle_agrees_with_acyclic;
    ]

let () =
  Alcotest.run "relalg"
    [
      ( "rel",
        [
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "sequence" `Quick test_sequence;
          Alcotest.test_case "id/restrict/cross" `Quick test_id_restrict;
          Alcotest.test_case "closure/acyclic" `Quick test_closure;
          Alcotest.test_case "inverse/domain" `Quick test_inverse_domain;
          Alcotest.test_case "total order" `Quick test_total_order;
          Alcotest.test_case "linear extensions" `Quick test_linear_extensions;
          Alcotest.test_case "immediate" `Quick test_immediate;
          Alcotest.test_case "minus_id" `Quick test_minus_id;
          Alcotest.test_case "find_cycle" `Quick test_find_cycle;
        ] );
      ("properties", props);
    ]
