(* The mapping layer: fence algebra, Theorem-1 refinement of every
   scheme over the corpus, and the Figure-10 transformation soundness —
   including the expected violations (the paper's bug reports). *)

module E = Axiom.Event
module S = Mapping.Schemes

let check_bool = Alcotest.check Alcotest.bool

let x86 = Axiom.X86_tso.model
let tcg = Axiom.Tcg_model.model
let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original
let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected
let corpus = Litmus.Catalog.mapping_corpus

(* ------------------------------------------------------------------ *)
(* Fence algebra                                                       *)

let fence = Alcotest.testable E.pp_fence ( = )

let test_fence_merge () =
  Alcotest.check fence "Frr+Frw = Frm" E.F_rm (Mapping.Fence_alg.merge E.F_rr E.F_rw);
  Alcotest.check fence "Frm+Fww covers rr,rw,ww -> Fmm" E.F_mm
    (Mapping.Fence_alg.merge E.F_rm E.F_ww);
  Alcotest.check fence "Fsc absorbs" E.F_sc (Mapping.Fence_alg.merge E.F_sc E.F_rr);
  Alcotest.check fence "merge idempotent" E.F_ww
    (Mapping.Fence_alg.merge E.F_ww E.F_ww);
  check_bool "Fsc subsumes Fmm" true (Mapping.Fence_alg.subsumes E.F_sc E.F_mm);
  check_bool "Frr does not subsume Fww" false
    (Mapping.Fence_alg.subsumes E.F_rr E.F_ww)

let tcg_fences =
  [ E.F_rr; E.F_rw; E.F_rm; E.F_wr; E.F_ww; E.F_wm; E.F_mr; E.F_mw; E.F_mm; E.F_acq; E.F_rel; E.F_sc ]

let arb_fence = QCheck.oneofl tcg_fences

let prop_merge_dominates =
  QCheck.Test.make ~name:"merge dominates both operands" ~count:200
    QCheck.(pair arb_fence arb_fence)
    (fun (f1, f2) ->
      let m = Mapping.Fence_alg.merge f1 f2 in
      Mapping.Fence_alg.subsumes m f1 && Mapping.Fence_alg.subsumes m f2)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    QCheck.(pair arb_fence arb_fence)
    (fun (f1, f2) ->
      Mapping.Fence_alg.merge f1 f2 = Mapping.Fence_alg.merge f2 f1)

let prop_merge_assoc =
  QCheck.Test.make ~name:"merge associative" ~count:200
    QCheck.(triple arb_fence arb_fence arb_fence)
    (fun (f1, f2, f3) ->
      Mapping.Fence_alg.merge f1 (Mapping.Fence_alg.merge f2 f3)
      = Mapping.Fence_alg.merge (Mapping.Fence_alg.merge f1 f2) f3)

(* ------------------------------------------------------------------ *)
(* Theorem-1 refinement of the schemes                                 *)

let expect_scheme ~name f ~src_model ~tgt_model ~expected_failures =
  let reports =
    Mapping.Check.check_scheme ~name f ~src_model ~tgt_model corpus
  in
  List.iter2
    (fun (tname, _) report ->
      let should_fail = List.mem tname expected_failures in
      if report.Mapping.Check.ok && should_fail then
        Alcotest.failf "%s on %s: expected a violation, got none" name tname;
      if (not report.Mapping.Check.ok) && not should_fail then
        Alcotest.failf "%s on %s: unexpected violation (%d extra behaviours)"
          name tname
          (List.length report.Mapping.Check.extra))
    corpus reports

let test_risotto_frontend () =
  expect_scheme ~name:"x86->tcg (Fig 7a)" (S.x86_to_tcg S.Risotto_frontend)
    ~src_model:x86 ~tgt_model:tcg ~expected_failures:[]

let test_qemu_frontend_mpq_at_ir () =
  (* A finding beyond the paper's §3.2 presentation: under the Figure-6
     TCG model, Qemu's Fmr/Fmw frontend is already unsound at the IR
     level on MPQ — a *failed* RMW generates an Rsc read that is ordered
     only with its po-successors, and no Fmr precedes it, so the plain
     load before it can be reordered past it exactly as on Arm.  The
     verified Figure-7a scheme avoids this with the trailing Frm. *)
  expect_scheme ~name:"x86->tcg (Fig 2)" (S.x86_to_tcg S.Qemu_frontend)
    ~src_model:x86 ~tgt_model:tcg ~expected_failures:[ "MPQ" ]

let test_risotto_rmw2_end_to_end () =
  let fe, be = S.risotto_rmw2_preset in
  expect_scheme ~name:"risotto rmw2 vs Arm(orig)" (S.x86_to_arm fe be)
    ~src_model:x86 ~tgt_model:arm_orig ~expected_failures:[];
  expect_scheme ~name:"risotto rmw2 vs Arm(fixed)" (S.x86_to_arm fe be)
    ~src_model:x86 ~tgt_model:arm_fix ~expected_failures:[]

let test_risotto_casal_needs_corrected_model () =
  let fe, be = S.risotto_casal_preset in
  (* Under the original Arm-Cats model, casal is not a full barrier.
     Only SBAL exposes it: its threads have no event po-before the RMW,
     so the original po;[A];amo;[L];po clause is vacuous there, while
     SBQ/SB+rmws (with a store before the RMW) are still ordered.  This
     is exactly the paper's §3.3 counterexample. *)
  expect_scheme ~name:"risotto casal vs Arm(orig)" (S.x86_to_arm fe be)
    ~src_model:x86 ~tgt_model:arm_orig ~expected_failures:[ "SBAL" ];
  expect_scheme ~name:"risotto casal vs Arm(fixed)" (S.x86_to_arm fe be)
    ~src_model:x86 ~tgt_model:arm_fix ~expected_failures:[]

let test_qemu_gcc10_mpq_bug () =
  (* §3.2 error 1: RMW1_AL helper: MPQ exhibits the forbidden outcome
     even under the corrected model. *)
  let fe, be = S.qemu_preset in
  expect_scheme ~name:"qemu gcc10 vs Arm(fixed)" (S.x86_to_arm fe be)
    ~src_model:x86 ~tgt_model:arm_fix ~expected_failures:[ "MPQ" ]

let test_qemu_gcc9_sbq_bug () =
  (* §3.2 error 2: RMW2_AL helper: store-load shapes through RMWs break. *)
  expect_scheme ~name:"qemu gcc9 vs Arm(fixed)"
    (S.x86_to_arm S.Qemu_frontend { S.lowering = `Qemu; rmw = S.Helper_gcc9 })
    ~src_model:x86 ~tgt_model:arm_fix
    ~expected_failures:[ "MPQ"; "SB+rmws"; "SBQ"; "SBAL" ]

let test_armcats_direct_sbal_bug () =
  (* §3.3: the intended Figure-3 mapping is wrong under the original
     model (SBAL) and right under the corrected one. *)
  expect_scheme ~name:"armcats direct vs Arm(orig)" S.x86_to_arm_direct_armcats
    ~src_model:x86 ~tgt_model:arm_orig ~expected_failures:[ "SBAL" ];
  expect_scheme ~name:"armcats direct vs Arm(fixed)" S.x86_to_arm_direct_armcats
    ~src_model:x86 ~tgt_model:arm_fix ~expected_failures:[]

let test_no_fences_is_incorrect () =
  expect_scheme ~name:"no-fences vs Arm(fixed)"
    (S.x86_to_arm S.No_fences_frontend
       { S.lowering = `Risotto; rmw = S.Risotto_rmw1 })
    ~src_model:x86 ~tgt_model:arm_fix
    ~expected_failures:[ "MP"; "LB"; "2+2W"; "IRIW"; "S"; "WRC"; "MPQ" ]

(* ------------------------------------------------------------------ *)
(* Minimality (§5.4, Figures 8/9)                                      *)

let test_minimality_helpers () =
  let p = Litmus.Catalog.fmr_tcg_src in
  Alcotest.(check int) "FMR has 3 fences" 3 (Mapping.Minimality.fence_count p);
  let p' = Mapping.Minimality.delete_fence p 0 in
  Alcotest.(check int) "one fewer" 2 (Mapping.Minimality.fence_count p')

(* Weaken a scheme by dropping every fence of one kind from its output. *)
let drop_kind k scheme p =
  Litmus.Ast.map_instrs
    (function
      | Litmus.Ast.Fence f when f = k -> []
      | i -> [ i ])
    (scheme p)

let breaks_somewhere scheme ~src_model ~tgt_model =
  List.exists
    (fun (_, src) ->
      not
        (Mapping.Check.refines ~src_model ~tgt_model ~src ~tgt:(scheme src))
          .Mapping.Check.ok)
    corpus

let test_x86_to_ir_scheme_minimal () =
  (* §5.4 / Figure 8: dropping the trailing Frm (the load rule) or the
     leading Fww (the store rule) from the verified scheme breaks some
     corpus program — every rule is load-bearing. *)
  let base = S.x86_to_tcg S.Risotto_frontend in
  check_bool "scheme itself refines" false
    (breaks_somewhere base ~src_model:x86 ~tgt_model:tcg);
  check_bool "without Frm: broken (LB/MP reader)" true
    (breaks_somewhere (drop_kind Axiom.Event.F_rm base) ~src_model:x86
       ~tgt_model:tcg);
  check_bool "without Fww: broken (MP writer)" true
    (breaks_somewhere (drop_kind Axiom.Event.F_ww base) ~src_model:x86
       ~tgt_model:tcg);
  check_bool "without Fsc: broken (SB+mfences)" true
    (breaks_somewhere (drop_kind Axiom.Event.F_sc base) ~src_model:x86
       ~tgt_model:tcg)

let test_ir_to_arm_rmw_fences_minimal () =
  (* Figure 9: the leading DMBFF is needed for the 2+2W-through-RMW
     shape, the trailing one for the SB-through-RMW shape. *)
  let drop_leading code =
    let rec go = function
      | Litmus.Ast.Fence _ :: (Litmus.Ast.Cas _ :: _ as rest) -> go rest
      | i :: rest -> i :: go rest
      | [] -> []
    in
    go code
  in
  let drop_trailing code =
    let rec go = function
      | (Litmus.Ast.Cas _ as c) :: Litmus.Ast.Fence _ :: rest -> c :: go rest
      | i :: rest -> i :: go rest
      | [] -> []
    in
    go code
  in
  let weaken f (p : Litmus.Ast.prog) =
    {
      p with
      threads =
        List.map
          (fun (t : Litmus.Ast.thread) -> { t with code = f t.code })
          p.Litmus.Ast.threads;
    }
  in
  let lower = S.tcg_to_arm { S.lowering = `Risotto; rmw = S.Risotto_rmw2 } in
  let check_prog name src variant expect_break =
    let tgt = variant (lower src) in
    let r = Mapping.Check.refines ~src_model:tcg ~tgt_model:arm_fix ~src ~tgt in
    check_bool name expect_break (not r.Mapping.Check.ok)
  in
  check_prog "Fig9-left full scheme refines" Litmus.Catalog.fig9_left_tcg
    (fun p -> p)
    false;
  check_prog "Fig9-right full scheme refines" Litmus.Catalog.fig9_right_tcg
    (fun p -> p)
    false;
  check_prog "Fig9-left breaks without leading DMBFF"
    Litmus.Catalog.fig9_left_tcg (weaken drop_leading) true;
  check_prog "Fig9-right breaks without trailing DMBFF"
    Litmus.Catalog.fig9_right_tcg (weaken drop_trailing) true

let test_some_fences_redundant_in_sb () =
  (* Per-token deletions are program-relative: in SB's image the
     trailing Frm after the last load is not load-bearing. *)
  let src = List.assoc "SB" corpus in
  let sites =
    Mapping.Minimality.necessary_fences
      (S.x86_to_tcg S.Risotto_frontend)
      ~src_model:x86 ~tgt_model:tcg src
  in
  Alcotest.(check bool) "some fence is redundant in SB" true
    (List.exists (fun s -> not s.Mapping.Minimality.necessary) sites)

(* ------------------------------------------------------------------ *)
(* Figure-10 transformations                                           *)

let test_transform_soundness () =
  List.iter
    (fun rule ->
      List.iter
        (fun (name, p) ->
          List.iter
            (fun r ->
              (* The only expected violation: RAW on the FMR program
                 (the §3.2 counterexample). *)
              let expected_violation =
                rule = Mapping.Transform.Raw && name = "FMR"
              in
              if r.Mapping.Check.ok && expected_violation then
                Alcotest.fail "RAW on FMR: expected the paper's violation";
              if (not r.Mapping.Check.ok) && not expected_violation then
                Alcotest.failf "%s on %s: unexpected violation"
                  (Mapping.Transform.rule_name rule)
                  name)
            (Mapping.Transform.soundness rule p))
        Mapping.Transform.corpus)
    Mapping.Transform.all_rules

let test_transform_sites_exist () =
  let count rule name =
    List.length (Mapping.Transform.applications rule (List.assoc name Mapping.Transform.corpus))
  in
  Alcotest.(check bool) "RAR applies" true (count Mapping.Transform.Rar "MP+RAR" > 0);
  Alcotest.(check bool) "WAW applies" true (count Mapping.Transform.Waw "WAW-local" > 0);
  Alcotest.(check bool) "F-RAR applies" true (count Mapping.Transform.F_rar "F-RAR" > 0);
  Alcotest.(check bool) "merge applies" true
    (count Mapping.Transform.Fence_merge "merge-Frm-Fww" > 0);
  Alcotest.(check bool) "reorder applies" true
    (count Mapping.Transform.Reorder "reorder-st-ld" > 0);
  Alcotest.(check bool) "false-dep applies" true
    (count Mapping.Transform.False_dep_elim "false-dep" > 0)

let test_fmr_counterexample_witness () =
  (* Applying RAW to FMR-src yields exactly the paper's FMR-tgt
     behaviour expansion. *)
  let apps = Mapping.Transform.applications Mapping.Transform.Raw Litmus.Catalog.fmr_tcg_src in
  Alcotest.(check bool) "RAW site found in FMR" true (apps <> []);
  let violations =
    List.filter (fun r -> not r.Mapping.Check.ok)
      (Mapping.Transform.soundness Mapping.Transform.Raw Litmus.Catalog.fmr_tcg_src)
  in
  Alcotest.(check bool) "violation found" true (violations <> [])

let () =
  Alcotest.run "mapping"
    [
      ( "fence algebra",
        [
          Alcotest.test_case "merge table" `Quick test_fence_merge;
          QCheck_alcotest.to_alcotest prop_merge_dominates;
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_assoc;
        ] );
      ( "Theorem 1 (refinement)",
        [
          Alcotest.test_case "Fig 7a x86->IR verified" `Slow test_risotto_frontend;
          Alcotest.test_case "Fig 2 frontend MPQ at IR" `Slow
            test_qemu_frontend_mpq_at_ir;
          Alcotest.test_case "risotto rmw2 end-to-end" `Slow
            test_risotto_rmw2_end_to_end;
          Alcotest.test_case "casal needs corrected Arm-Cats" `Slow
            test_risotto_casal_needs_corrected_model;
          Alcotest.test_case "Qemu gcc10 MPQ bug (§3.2)" `Slow
            test_qemu_gcc10_mpq_bug;
          Alcotest.test_case "Qemu gcc9 SBQ bug (§3.2)" `Slow
            test_qemu_gcc9_sbq_bug;
          Alcotest.test_case "Arm-Cats SBAL bug (§3.3)" `Slow
            test_armcats_direct_sbal_bug;
          Alcotest.test_case "no-fences incorrect" `Slow
            test_no_fences_is_incorrect;
        ] );
      ( "minimality (Fig 8/9)",
        [
          Alcotest.test_case "helpers" `Quick test_minimality_helpers;
          Alcotest.test_case "x86->IR scheme rules necessary (Fig 8)" `Slow
            test_x86_to_ir_scheme_minimal;
          Alcotest.test_case "IR->Arm RMW DMBFFs necessary (Fig 9)" `Slow
            test_ir_to_arm_rmw_fences_minimal;
          Alcotest.test_case "redundancy is program-relative" `Slow
            test_some_fences_redundant_in_sb;
        ] );
      ( "Figure 10 transformations",
        [
          Alcotest.test_case "soundness incl. FMR violation" `Slow
            test_transform_soundness;
          Alcotest.test_case "rules fire" `Quick test_transform_sites_exist;
          Alcotest.test_case "FMR counterexample" `Slow
            test_fmr_counterexample_witness;
        ] );
    ]
