(* Tests for events, executions and the consistency models on
   hand-constructed execution graphs. *)

open Relalg
module E = Axiom.Event
module X = Axiom.Execution

let ev id tid label = { E.id; tid; label }
let read ?(ord = E.R_plain) id tid loc value = ev id tid (E.Read { loc; value; ord })
let write ?(ord = E.W_plain) id tid loc value = ev id tid (E.Write { loc; value; ord })
let fence id tid k = ev id tid (E.Fence k)
let init id loc value = write id E.init_tid loc value

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* The canonical MP execution with the weak outcome:
   T0: Wx1; Wy1   T1: Ry1; Rx0 *)
let mp_weak ?(fences = []) () =
  let e_ix = init 0 "X" 0 and e_iy = init 1 "Y" 0 in
  let wx = write 10 0 "X" 1 and wy = write 11 0 "Y" 1 in
  let ry = read 20 1 "Y" 1 and rx = read 21 1 "X" 0 in
  let base_events = [ e_ix; e_iy; wx; wy; ry; rx ] in
  let events, po =
    match fences with
    | [ f0; f1 ] ->
        let fa = fence 12 0 f0 and fb = fence 22 1 f1 in
        ( base_events @ [ fa; fb ],
          Rel.of_list
            [ (10, 12); (12, 11); (10, 11); (20, 22); (22, 21); (20, 21) ] )
    | _ -> (base_events, Rel.of_list [ (10, 11); (20, 21) ])
  in
  {
    X.empty with
    X.events;
    po;
    rf = Rel.of_list [ (11, 20); (0, 21) ];
    co = Rel.of_list [ (0, 10); (1, 11) ];
  }

let test_event_predicates () =
  let r = read 1 0 "X" 0 in
  check_bool "read is read" true (E.is_read r);
  check_bool "read is mem" true (E.is_mem r);
  check_bool "read not write" false (E.is_write r);
  check_bool "fence" true (E.is_fence (fence 2 0 E.F_sc));
  check_bool "init" true (E.is_init (init 0 "X" 0));
  Alcotest.check Alcotest.(option string) "loc" (Some "X") (E.loc r);
  Alcotest.check Alcotest.(option int) "value" (Some 0) (E.value r)

let test_derived_relations () =
  let x = mp_weak () in
  check_bool "fr relates Rx0 to Wx1" true (Rel.mem 21 10 (X.fr x));
  check_bool "rfe external" true (Rel.mem 11 20 (X.rfe x));
  check_bool "rfi empty here" true (Rel.is_empty (X.rfi x));
  check_int "reads" 2 (Iset.cardinal (X.reads x));
  check_int "writes (incl. init)" 4 (Iset.cardinal (X.writes x))

let test_well_formed () =
  let x = mp_weak () in
  (match X.well_formed x with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected well-formed: %s" e);
  (* Break rf: read value mismatch. *)
  let bad = { x with X.rf = Rel.of_list [ (10, 20); (0, 21) ] } in
  check_bool "bad rf rejected" true (Result.is_error (X.well_formed bad));
  let no_src = { x with X.rf = Rel.of_list [ (11, 20) ] } in
  check_bool "missing rf rejected" true (Result.is_error (X.well_formed no_src))

let test_behaviour () =
  let x = mp_weak () in
  Alcotest.(check (list (pair string int)))
    "final memory" [ ("X", 1); ("Y", 1) ] (X.behaviour x)

let test_models_on_mp () =
  check_bool "common axioms hold" true (Axiom.Model.common (mp_weak ()));
  check_bool "SC forbids weak MP" false
    (Axiom.Sc_model.model.Axiom.Model.consistent (mp_weak ()));
  check_bool "x86 forbids weak MP" false
    (Axiom.X86_tso.model.Axiom.Model.consistent (mp_weak ()));
  check_bool "Arm allows weak MP" true
    ((Axiom.Arm_cats.model Axiom.Arm_cats.Corrected).Axiom.Model.consistent
       (mp_weak ()));
  check_bool "TCG allows weak MP" true
    (Axiom.Tcg_model.model.Axiom.Model.consistent (mp_weak ()))

let test_models_on_fenced_mp () =
  let arm = mp_weak ~fences:[ E.F_dmb_full; E.F_dmb_full ] () in
  check_bool "Arm forbids MP+dmbs" false
    ((Axiom.Arm_cats.model Axiom.Arm_cats.Corrected).Axiom.Model.consistent arm);
  let tcg = mp_weak ~fences:[ E.F_ww; E.F_rr ] () in
  check_bool "TCG forbids MP+Fww+Frr" false
    (Axiom.Tcg_model.model.Axiom.Model.consistent tcg);
  (* Weaker fences that do not order the accesses leave it allowed. *)
  let weak = mp_weak ~fences:[ E.F_rr; E.F_ww ] () in
  check_bool "TCG allows MP with wrong fences" true
    (Axiom.Tcg_model.model.Axiom.Model.consistent weak)

let test_sc_per_loc_violation () =
  (* Single thread: W X=1 then R X=0 from init — coherence violation. *)
  let x =
    {
      X.empty with
      X.events = [ init 0 "X" 0; write 10 0 "X" 1; read 11 0 "X" 0 ];
      po = Rel.of_list [ (10, 11) ];
      rf = Rel.of_list [ (0, 11) ];
      co = Rel.of_list [ (0, 10) ];
    }
  in
  check_bool "sc-per-loc catches stale read" false (Axiom.Model.sc_per_loc x)

let test_atomicity_violation () =
  (* T0: successful RMW on X (0→1); T1: W X=2 sneaking between. *)
  let x =
    {
      X.empty with
      X.events =
        [
          init 0 "X" 0;
          read ~ord:E.R_sc 10 0 "X" 0;
          write ~ord:E.W_sc 11 0 "X" 1;
          write 20 1 "X" 2;
        ];
      po = Rel.of_list [ (10, 11) ];
      rf = Rel.of_list [ (0, 10) ];
      co = Rel.of_list [ (0, 20); (20, 11); (0, 11) ];
      rmw_plain = Rel.of_list [ (10, 11) ];
    }
  in
  check_bool "atomicity violated" false (Axiom.Model.atomicity x);
  (* Move the interfering write after the RMW: fine. *)
  let ok =
    { x with X.co = Rel.of_list [ (0, 11); (11, 20); (0, 20) ] }
  in
  check_bool "atomicity holds" true (Axiom.Model.atomicity ok)

let test_arm_variants_differ_on_sbal () =
  (* SBAL from §3.3 via the enumerator is covered in test_litmus; here a
     direct check that the bob clauses differ. *)
  let amo_read = read ~ord:E.R_acq 10 0 "X" 0 in
  let amo_write = write ~ord:E.W_rel 11 0 "X" 1 in
  let later = read 12 0 "Y" 0 in
  let x =
    {
      X.empty with
      X.events = [ init 0 "X" 0; init 1 "Y" 0; amo_read; amo_write; later ];
      po = Rel.of_list [ (10, 11); (11, 12); (10, 12) ];
      rf = Rel.of_list [ (0, 10); (1, 12) ];
      co = Rel.of_list [ (0, 11) ];
      amo = Rel.of_list [ (10, 11) ];
    }
  in
  let lob_orig = Axiom.Arm_cats.lob Axiom.Arm_cats.Original x in
  let lob_fix = Axiom.Arm_cats.lob Axiom.Arm_cats.Corrected x in
  check_bool "original: amo write not ordered with later read" false
    (Rel.mem 11 12 lob_orig);
  check_bool "corrected: amo write ordered with later read" true
    (Rel.mem 11 12 lob_fix)

let test_explain () =
  let weak = mp_weak () in
  (match Axiom.Explain.check Axiom.Explain.X86 weak with
  | Axiom.Explain.Violates { axiom; cycle } ->
      Alcotest.(check string) "axiom named" "x86 (GHB)" axiom;
      check_bool "cycle nonempty" true (cycle <> [])
  | Axiom.Explain.Consistent -> Alcotest.fail "x86 should forbid weak MP");
  (match Axiom.Explain.check (Axiom.Explain.Arm Axiom.Arm_cats.Corrected) weak with
  | Axiom.Explain.Consistent -> ()
  | Axiom.Explain.Violates _ -> Alcotest.fail "Arm allows weak MP");
  (* the fenced Arm variant is forbidden via ob *)
  match
    Axiom.Explain.check
      (Axiom.Explain.Arm Axiom.Arm_cats.Corrected)
      (mp_weak ~fences:[ E.F_dmb_full; E.F_dmb_full ] ())
  with
  | Axiom.Explain.Violates { axiom; _ } ->
      Alcotest.(check string) "ob violated" "Arm (external: ob)" axiom
  | Axiom.Explain.Consistent -> Alcotest.fail "fenced MP should be forbidden"

let test_explain_matches_models () =
  (* Explain's verdict agrees with the model's consistency on the MP
     executions under every model. *)
  List.iter
    (fun which ->
      let m = Axiom.Explain.model_of which in
      List.iter
        (fun x ->
          let consistent = m.Axiom.Model.consistent x in
          let verdict = Axiom.Explain.check which x in
          check_bool "agreement" true
            (consistent = (verdict = Axiom.Explain.Consistent)))
        [ mp_weak (); mp_weak ~fences:[ E.F_dmb_full; E.F_dmb_full ] () ])
    [
      Axiom.Explain.Sc;
      Axiom.Explain.X86;
      Axiom.Explain.Arm Axiom.Arm_cats.Original;
      Axiom.Explain.Arm Axiom.Arm_cats.Corrected;
      Axiom.Explain.Tcg;
    ]

let () =
  Alcotest.run "axiom"
    [
      ( "events",
        [ Alcotest.test_case "predicates" `Quick test_event_predicates ] );
      ( "executions",
        [
          Alcotest.test_case "derived relations" `Quick test_derived_relations;
          Alcotest.test_case "well-formedness" `Quick test_well_formed;
          Alcotest.test_case "behaviour" `Quick test_behaviour;
        ] );
      ( "models",
        [
          Alcotest.test_case "MP across models" `Quick test_models_on_mp;
          Alcotest.test_case "fenced MP" `Quick test_models_on_fenced_mp;
          Alcotest.test_case "sc-per-loc" `Quick test_sc_per_loc_violation;
          Alcotest.test_case "atomicity" `Quick test_atomicity_violation;
          Alcotest.test_case "Arm-Cats variants (casal bob)" `Quick
            test_arm_variants_differ_on_sbal;
        ] );
      ( "explain",
        [
          Alcotest.test_case "cycle reporting" `Quick test_explain;
          Alcotest.test_case "agrees with models" `Quick
            test_explain_matches_models;
        ] );
    ]
