(* The dynamic host linker substrate: IDL parsing, the host library,
   and PLT resolution. *)

module Idl = Linker.Idl

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_str = Alcotest.check Alcotest.string

let sig_t =
  Alcotest.testable Idl.pp_signature (fun a b -> a = b)

(* ------------------------------------------------------------------ *)
(* IDL                                                                 *)

let test_parse_simple () =
  Alcotest.check sig_t "f64 unary"
    { Idl.name = "sin"; ret = Idl.F64; args = [ Idl.F64 ] }
    (Idl.parse_signature "f64 sin(f64);");
  Alcotest.check sig_t "named args"
    { Idl.name = "md5"; ret = Idl.I64; args = [ Idl.Ptr; Idl.I64 ] }
    (Idl.parse_signature "i64 md5(ptr buf, i64 len);");
  Alcotest.check sig_t "no args"
    { Idl.name = "rand"; ret = Idl.I64; args = [] }
    (Idl.parse_signature "i64 rand()");
  Alcotest.check sig_t "void args"
    { Idl.name = "rand"; ret = Idl.I64; args = [] }
    (Idl.parse_signature "i64 rand(void)");
  Alcotest.check sig_t "void return"
    { Idl.name = "free"; ret = Idl.Void; args = [ Idl.Ptr ] }
    (Idl.parse_signature "void free(ptr)")

let test_parse_file () =
  let text =
    "# math functions\n\
     f64 sin(f64);\n\
     \n\
     i64 strlen(ptr s); # libc\n"
  in
  let sigs = Idl.parse text in
  check_int "two signatures" 2 (List.length sigs);
  check_str "first" "sin" (List.nth sigs 0).Idl.name;
  check_str "second" "strlen" (List.nth sigs 1).Idl.name

let test_parse_errors () =
  let fails s =
    match Idl.parse_signature s with
    | exception Idl.Parse_error _ -> true
    | _ -> false
  in
  check_bool "bad type" true (fails "f32 sin(f64);");
  check_bool "void arg" true (fails "i64 f(void, i64);");
  check_bool "garbage" true (fails "!!");
  check_bool "no parens" true (fails "i64 f;")

let test_roundtrip () =
  let sigs = Idl.parse Linker.Hostlib.idl_text in
  let reparsed = Idl.parse (Idl.to_string sigs) in
  check_bool "print/parse round trip" true (sigs = reparsed);
  check_int "covers every host function" (List.length Linker.Hostlib.names)
    (List.length sigs)

(* ------------------------------------------------------------------ *)
(* Hostlib                                                             *)

let test_hostlib_math () =
  let mem = Memsys.Mem.create () in
  let call name x =
    match Linker.Hostlib.find name with
    | Some fn ->
        Linker.Hostlib.to_f
          (fn.Linker.Hostlib.call mem [ Linker.Hostlib.of_f x ])
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check (float 1e-12)) "sin" (sin 0.5) (call "sin" 0.5);
  Alcotest.(check (float 1e-12)) "sqrt" 3.0 (call "sqrt" 9.0);
  Alcotest.(check (float 1e-12)) "exp" (exp 1.0) (call "exp" 1.0)

let test_hostlib_digest_deterministic () =
  let mem = Memsys.Mem.create () in
  Memsys.Mem.store mem 0x100L 0xdeadbeefL;
  let digest () =
    match Linker.Hostlib.find "sha256" with
    | Some fn -> fn.Linker.Hostlib.call mem [ 0x100L; 8L ]
    | None -> assert false
  in
  let d1 = digest () in
  check_bool "nonzero" true (d1 <> 0L);
  check_bool "deterministic" true (Int64.equal d1 (digest ()));
  Memsys.Mem.store mem 0x100L 0xdeadbeeeL;
  check_bool "input-sensitive" true (not (Int64.equal d1 (digest ())))

let test_hostlib_costs_monotone () =
  let cost name args =
    match Linker.Hostlib.find name with
    | Some fn -> fn.Linker.Hostlib.cycles args
    | None -> assert false
  in
  check_bool "sha256 cost grows with length" true
    (cost "sha256" [ 0L; 8192L ] > cost "sha256" [ 0L; 1024L ]);
  check_bool "sign costlier than verify" true
    (cost "rsa1024_sign" [ 0L ] > cost "rsa1024_verify" [ 0L ]);
  check_bool "2048 costlier than 1024" true
    (cost "rsa2048_sign" [ 0L ] > cost "rsa1024_sign" [ 0L ])

let test_hostlib_strlen_memcpy () =
  let mem = Memsys.Mem.create () in
  (* "hey" *)
  Memsys.Mem.store_byte mem 0x200L (Char.code 'h');
  Memsys.Mem.store_byte mem 0x201L (Char.code 'e');
  Memsys.Mem.store_byte mem 0x202L (Char.code 'y');
  (match Linker.Hostlib.find "strlen" with
  | Some fn ->
      Alcotest.check Alcotest.int64 "strlen" 3L
        (fn.Linker.Hostlib.call mem [ 0x200L ])
  | None -> assert false);
  match Linker.Hostlib.find "memcpy" with
  | Some fn ->
      ignore (fn.Linker.Hostlib.call mem [ 0x300L; 0x200L; 8L ]);
      Alcotest.check Alcotest.int "copied" (Char.code 'h')
        (Memsys.Mem.load_byte mem 0x300L)
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Link resolution                                                     *)

let image_with_imports names =
  Image.Gelf.build ~entry:"main"
    ~imports:(List.map Harness.Guest_libs.import names)
    [ X86.Asm.Label "main"; X86.Asm.Ins X86.Insn.Hlt ]

let test_resolve () =
  let image = image_with_imports [ "sin"; "md5" ] in
  let links = Linker.Link.resolve image (Idl.parse Linker.Hostlib.idl_text) in
  check_int "two entries" 2 (List.length (Linker.Link.entries links));
  check_bool "no unresolved" true (Linker.Link.unresolved links = []);
  let plt = List.assoc "sin" image.Image.Gelf.plt in
  (match Linker.Link.lookup links plt with
  | Some e -> check_str "lookup by plt addr" "sin" e.Linker.Link.name
  | None -> Alcotest.fail "sin not found at its PLT address");
  check_bool "miss on other addresses" true
    (Linker.Link.lookup links 0xdeadL = None)

let test_resolve_partial_idl () =
  let image = image_with_imports [ "sin"; "md5" ] in
  let links = Linker.Link.resolve image (Idl.parse "f64 sin(f64);") in
  check_int "one resolved" 1 (List.length (Linker.Link.entries links));
  Alcotest.(check (list string)) "md5 unresolved" [ "md5" ]
    (Linker.Link.unresolved links)

let test_image_plt_layout () =
  let image = image_with_imports [ "sin" ] in
  check_bool "plt address known" true
    (List.mem_assoc "sin" image.Image.Gelf.plt);
  let plt = List.assoc "sin" image.Image.Gelf.plt in
  Alcotest.(check (option string)) "plt_at" (Some "sin")
    (Image.Gelf.plt_at image plt);
  (* The PLT stub jumps to the guest implementation. *)
  let insn, _ = X86.Decode.decode image.Image.Gelf.text ~pc:plt ~base:image.Image.Gelf.text_base in
  match insn with
  | X86.Insn.Jmp t ->
      Alcotest.check Alcotest.int64 "stub targets guest impl"
        (Image.Gelf.symbol image "sin@impl") t
  | i -> Alcotest.failf "expected jmp in PLT stub, got %a" X86.Insn.pp i

(* ------------------------------------------------------------------ *)
(* Image files                                                         *)

let test_gelf_save_load () =
  let image = image_with_imports [ "sin"; "md5" ] in
  let path = Filename.temp_file "gelf" ".img" in
  Image.Gelf.save image path;
  let image' = Image.Gelf.load path in
  check_bool "round trip" true (image = image');
  Sys.remove path

let test_gelf_rejects_garbage () =
  let path = Filename.temp_file "gelf" ".img" in
  let oc = open_out path in
  output_string oc "not an image";
  close_out oc;
  check_bool "bad magic rejected" true
    (match Image.Gelf.load path with
    | exception Image.Gelf.Bad_image _ -> true
    | _ -> false);
  Sys.remove path

let () =
  Alcotest.run "linker"
    [
      ( "idl",
        [
          Alcotest.test_case "simple prototypes" `Quick test_parse_simple;
          Alcotest.test_case "files with comments" `Quick test_parse_file;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "round trip" `Quick test_roundtrip;
        ] );
      ( "hostlib",
        [
          Alcotest.test_case "math" `Quick test_hostlib_math;
          Alcotest.test_case "digest" `Quick test_hostlib_digest_deterministic;
          Alcotest.test_case "cost structure" `Quick test_hostlib_costs_monotone;
          Alcotest.test_case "strlen/memcpy" `Quick test_hostlib_strlen_memcpy;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "full" `Quick test_resolve;
          Alcotest.test_case "partial IDL" `Quick test_resolve_partial_idl;
          Alcotest.test_case "PLT layout" `Quick test_image_plt_layout;
        ] );
      ( "image files",
        [
          Alcotest.test_case "save/load" `Quick test_gelf_save_load;
          Alcotest.test_case "rejects garbage" `Quick test_gelf_rejects_garbage;
        ] );
    ]
