(* The evaluation harness: kernel compilation, and the qualitative
   shape of every figure — who wins, roughly by how much, and where the
   crossovers are.  Reduced workload sizes keep the suite fast; the
   shapes are size-invariant. *)

let check_bool = Alcotest.check Alcotest.bool

let small_spec ?(loads = 6) ?(stores = 2) ?(arith = 8) ?(fp = 0) ?(locks = 0) () =
  {
    Harness.Kernel.name = "t";
    iters = 300;
    mix = { Harness.Kernel.loads; stores; arith; fp; locks };
  }

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)

let test_kernel_dbt_terminates_and_counts () =
  let spec = small_spec () in
  let g, eng = Harness.Kernel.run_dbt Core.Config.qemu spec in
  check_bool "finished" true g.Core.Engine.finished;
  check_bool "cycles counted" true (Core.Engine.cycles g > 0);
  check_bool "fences executed" true (g.Core.Engine.arm.Arm.Machine.fences > 0);
  ignore eng

let test_kernel_native_cheaper () =
  let spec = small_spec ~fp:4 () in
  let native = (Harness.Kernel.run_native spec).Arm.Machine.cycles in
  let g, _ = Harness.Kernel.run_dbt Core.Config.qemu spec in
  check_bool "native is much faster than emulation" true
    (native * 2 < Core.Engine.cycles g)

let test_kernel_locks_update_memory () =
  let spec = small_spec ~locks:1 () in
  let g, eng = Harness.Kernel.run_dbt Core.Config.risotto spec in
  ignore g;
  let lock_word =
    Memsys.Mem.load (Core.Engine.memory eng)
      (Int64.add (Int64.add 0x20000L 0L) 1024L)
  in
  Alcotest.(check int64) "300 atomic increments" 300L lock_word

let test_kernel_worker_team () =
  (* A 4-thread worker team shares the code cache and contends on the
     lock word; relative config ordering is preserved. *)
  let spec = small_spec ~locks:1 () in
  let cycles config =
    let g, _ = Harness.Kernel.run_dbt ~threads:4 config spec in
    Core.Engine.cycles g
  in
  let q = cycles Core.Config.qemu in
  let n = cycles Core.Config.no_fences in
  let t = cycles Core.Config.tcg_ver in
  check_bool "no-fences fastest" true (n < t);
  check_bool "tcg-ver beats qemu" true (t < q)

(* ------------------------------------------------------------------ *)
(* Figure 12 shape                                                     *)

let test_fig12_shape () =
  let rows =
    List.map
      (fun (b : Harness.Parsec.bench) ->
        let spec = { b.Harness.Parsec.spec with Harness.Kernel.iters = 250 } in
        let cycles config =
          let g, _ = Harness.Kernel.run_dbt config spec in
          Core.Engine.cycles g
        in
        let native = (Harness.Kernel.run_native spec).Arm.Machine.cycles in
        ( b.Harness.Parsec.spec.Harness.Kernel.name,
          cycles Core.Config.qemu,
          cycles Core.Config.no_fences,
          cycles Core.Config.tcg_ver,
          cycles Core.Config.risotto,
          native ))
      Harness.Parsec.all
  in
  List.iter
    (fun (name, qemu, no_fences, tcg_ver, risotto, native) ->
      check_bool (name ^ ": no-fences fastest emulated") true
        (no_fences <= tcg_ver);
      check_bool (name ^ ": verified mappings beat qemu") true (tcg_ver < qemu);
      check_bool (name ^ ": risotto no slower than qemu") true (risotto <= qemu);
      check_bool (name ^ ": native fastest") true
        (native < no_fences && native < risotto))
    rows;
  (* Aggregate targets: fences cost ≈ half of qemu's time on average
     (paper: 48%); verified mappings recover a mid-single-digit share
     (paper: 6.7% avg, up to 19.7%). *)
  let avg f = List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows) in
  let improvement (_, q, _, t, _, _) = 1.0 -. (float_of_int t /. float_of_int q) in
  let fence_share (_, q, n, _, _, _) = 1.0 -. (float_of_int n /. float_of_int q) in
  let ai = avg improvement and af = avg fence_share in
  check_bool "avg improvement in [3%, 12%]" true (ai > 0.03 && ai < 0.12);
  check_bool "avg fence share in [30%, 60%]" true (af > 0.30 && af < 0.60);
  let max_i = List.fold_left (fun a r -> max a (improvement r)) 0.0 rows in
  check_bool "max improvement in [10%, 25%]" true (max_i > 0.10 && max_i < 0.25)

let test_fig12_summary_consistency () =
  (* Figures.summarize_fig12 agrees with manual computation on a stub. *)
  let mk q t n =
    {
      Harness.Figures.bench = Harness.Parsec.find "freqmine";
      qemu = q;
      no_fences = n;
      tcg_ver = t;
      risotto = t;
      native = 1;
    }
  in
  let s = Harness.Figures.summarize_fig12 [ mk 100 90 50 ] in
  Alcotest.(check (float 1e-9)) "improvement" 0.10 s.Harness.Figures.avg_improvement;
  Alcotest.(check (float 1e-9)) "fence share" 0.50 s.Harness.Figures.avg_fence_share

(* ------------------------------------------------------------------ *)
(* Figure 13 / 14 shape                                                *)

let test_fig13_shape () =
  let results = List.map Harness.Libbench.run Harness.Libbench.openssl in
  List.iter
    (fun (r : Harness.Libbench.result) ->
      let sr = Harness.Libbench.speedup_risotto r in
      let sn = Harness.Libbench.speedup_native r in
      let l = r.bench.Harness.Libbench.label in
      check_bool (l ^ ": host linking wins") true (sr > 1.0);
      check_bool (l ^ ": risotto within 25% of native") true
        (sr > 0.75 *. sn);
      check_bool (l ^ ": guest and host implementations agree") true
        r.Harness.Libbench.values_agree)
    results;
  let by label =
    List.find (fun (r : Harness.Libbench.result) -> r.bench.Harness.Libbench.label = label) results
  in
  check_bool "md5 speedup modest (~1.4x)" true
    (Harness.Libbench.speedup_risotto (by "md5-1024") < 2.5);
  check_bool "sha256 speedup large (>10x)" true
    (Harness.Libbench.speedup_risotto (by "sha256-1024") > 10.0);
  (* md5-1024 is the paper's minimum, sha256-8192 its 23x maximum. *)
  let all_speedups = List.map Harness.Libbench.speedup_risotto results in
  check_bool "md5-1024 is the minimum" true
    (List.for_all
       (fun s -> s >= Harness.Libbench.speedup_risotto (by "md5-1024"))
       all_speedups);
  check_bool "sha256-8192 is the maximum" true
    (List.for_all
       (fun s -> s <= Harness.Libbench.speedup_risotto (by "sha256-8192"))
       all_speedups);
  check_bool "sha256-8192 near the paper's 23x" true
    (let s = Harness.Libbench.speedup_risotto (by "sha256-8192") in
     s > 18.0 && s < 32.0)

let test_fig14_shape () =
  let results = List.map Harness.Libbench.run Harness.Libbench.libm in
  let by label =
    List.find (fun (r : Harness.Libbench.result) -> r.bench.Harness.Libbench.label = label) results
  in
  let sqrt_s = Harness.Libbench.speedup_risotto (by "sqrt") in
  let sin_s = Harness.Libbench.speedup_risotto (by "sin") in
  check_bool "sqrt speedup smallest, near 1x" true (sqrt_s < 2.5);
  check_bool "sin speedup large (5-20x)" true (sin_s > 5.0 && sin_s < 20.0);
  check_bool "sqrt < sin" true (sqrt_s < sin_s);
  check_bool "sqrt is the global minimum" true
    (List.for_all
       (fun (r : Harness.Libbench.result) ->
         Harness.Libbench.speedup_risotto r >= sqrt_s)
       results);
  (* Marshaling keeps risotto below native on short calls (§7.3). *)
  List.iter
    (fun (r : Harness.Libbench.result) ->
      check_bool
        (r.bench.Harness.Libbench.label ^ ": native above risotto")
        true
        (Harness.Libbench.speedup_native r > Harness.Libbench.speedup_risotto r))
    results

(* ------------------------------------------------------------------ *)
(* Figure 15 shape                                                     *)

let test_fig15_shape () =
  let run t v = Harness.Casbench.run { Harness.Casbench.threads = t; vars = v } in
  let r11 = run 1 1 in
  let r41 = run 4 1 in
  let r42 = run 4 2 in
  let r44 = run 4 4 in
  let r81 = run 8 1 in
  (* more contenders per line -> lower throughput *)
  check_bool "4-2 between 4-1 and 4-4" true
    (r41.Harness.Casbench.risotto < r42.Harness.Casbench.risotto
    && r42.Harness.Casbench.risotto < r44.Harness.Casbench.risotto);
  check_bool "8-1 saturates near 4-1" true
    (r81.Harness.Casbench.risotto < 2.0 *. r41.Harness.Casbench.risotto);
  (* Uncontended: risotto's direct casal beats the helper significantly
     (paper: up to 48%). *)
  let gain = r11.Harness.Casbench.risotto /. r11.Harness.Casbench.qemu in
  check_bool "uncontended gain in [1.2x, 1.6x]" true (gain > 1.2 && gain < 1.6);
  (* Contended: they converge (paper: "perform similarly"). *)
  let gain_c = r41.Harness.Casbench.risotto /. r41.Harness.Casbench.qemu in
  check_bool "contended gain below 1.15x" true (gain_c < 1.15);
  (* Contention destroys throughput. *)
  check_bool "4-1 slower than 4-4" true
    (r41.Harness.Casbench.risotto < r44.Harness.Casbench.risotto /. 2.0);
  (* Native at least as fast as risotto everywhere. *)
  List.iter
    (fun (r : Harness.Casbench.result) ->
      check_bool "native >= risotto" true
        (r.Harness.Casbench.native >= 0.95 *. r.Harness.Casbench.risotto))
    [ r11; r41; r44 ]

let () =
  Alcotest.run "harness"
    [
      ( "kernels",
        [
          Alcotest.test_case "dbt run" `Quick test_kernel_dbt_terminates_and_counts;
          Alcotest.test_case "native baseline" `Quick test_kernel_native_cheaper;
          Alcotest.test_case "atomic counter" `Quick test_kernel_locks_update_memory;
          Alcotest.test_case "worker team" `Quick test_kernel_worker_team;
        ] );
      ( "figure 12",
        [
          Alcotest.test_case "per-benchmark ordering + aggregates" `Slow
            test_fig12_shape;
          Alcotest.test_case "summary arithmetic" `Quick
            test_fig12_summary_consistency;
        ] );
      ( "figures 13/14",
        [
          Alcotest.test_case "openssl/sqlite shape" `Slow test_fig13_shape;
          Alcotest.test_case "libm shape" `Slow test_fig14_shape;
        ] );
      ( "figure 15",
        [ Alcotest.test_case "contention shape" `Slow test_fig15_shape ] );
    ]
