(* Quickstart: assemble a small x86 guest program, run it through the
   Risotto DBT on the modelled Arm host, and inspect the result.

     dune exec examples/quickstart.exe *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

(* A guest program: compute 13! iteratively, store it to memory, print
   "hi\n" through the write syscall, and exit with code 7. *)
let guest =
  [
    Label "main";
    Ins (I.Mov_ri (R.RAX, 1L));
    Ins (I.Mov_ri (R.RBX, 13L));
    Label "loop";
    Ins (I.Alu (I.Imul, R.RAX, I.R R.RBX));
    Ins (I.Alu (I.Sub, R.RBX, I.I 1L));
    Ins (I.Cmp (R.RBX, I.I 0L));
    Jcc_lbl (I.Ne, "loop");
    Ins (I.Store ({ base = None; index = None; disp = 0x5000L }, I.R R.RAX));
    (* write(1, "hi\n", 3) *)
    Ins (I.Mov_ri (R.RCX, 0x0a6968L));
    Ins (I.Store ({ base = None; index = None; disp = 0x5100L }, I.R R.RCX));
    Ins (I.Mov_ri (R.RAX, 1L));
    Ins (I.Mov_ri (R.RDI, 1L));
    Ins (I.Mov_ri (R.RSI, 0x5100L));
    Ins (I.Mov_ri (R.RDX, 3L));
    Ins I.Syscall;
    (* exit(7) *)
    Ins (I.Mov_ri (R.RAX, 60L));
    Ins (I.Mov_ri (R.RDI, 7L));
    Ins I.Syscall;
  ]

let () =
  let image = Image.Gelf.build ~entry:"main" guest in
  Format.printf "Guest binary: %d bytes of x86 at 0x%Lx, entry 0x%Lx@."
    (String.length image.Image.Gelf.text)
    image.Image.Gelf.text_base image.Image.Gelf.entry;

  (* Run under full Risotto. *)
  let engine = Core.Engine.create Core.Config.risotto image in
  let thread = Core.Engine.run engine in
  let arm = thread.Core.Engine.arm in

  Format.printf "guest wrote: %S@." (Buffer.contents arm.Arm.Machine.output);
  Format.printf "exit code:   %Ld@." arm.Arm.Machine.exit_code;
  Format.printf "13! in memory: %Ld@."
    (Memsys.Mem.load (Core.Engine.memory engine) 0x5000L);

  let stats = Core.Engine.stats engine in
  Format.printf
    "@[<v>run statistics:@,\
    \  model cycles        %d@,\
    \  host instructions   %d@,\
    \  fences executed     %d@,\
    \  blocks translated   %d@,\
    \  cache hits          %d@]@."
    (Core.Engine.cycles thread) arm.Arm.Machine.insns arm.Arm.Machine.fences
    stats.Core.Engine.blocks_translated stats.Core.Engine.cache_hits;

  (* Compare the four configurations of the paper's evaluation. *)
  Format.printf "@.%-12s %10s %8s@." "config" "cycles" "fences";
  List.iter
    (fun config ->
      let engine = Core.Engine.create config image in
      let t = Core.Engine.run engine in
      Format.printf "%-12s %10d %8d@." config.Core.Config.name
        (Core.Engine.cycles t) t.Core.Engine.arm.Arm.Machine.fences)
    Core.Config.all;

  (* Show the translated code of the hot block. *)
  let loop_pc = Image.Gelf.symbol image "loop" in
  Format.printf "@.TCG IR of the loop block under risotto:@.%a@."
    Tcg.Block.pp
    (Core.Engine.tcg_block engine loop_pc);
  Format.printf "@.Arm host code:@.";
  Array.iteri
    (fun i insn -> Format.printf "  %2d: %a@." i Arm.Insn.pp insn)
    (Core.Engine.lookup_block engine loop_pc)
