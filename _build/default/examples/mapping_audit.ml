(* Mapping audit: the executable counterpart of the paper's §3 and §5 —
   check every mapping scheme for Theorem-1 refinement over the litmus
   corpus and print the violating behaviours (the bug witnesses).

     dune exec examples/mapping_audit.exe *)

module S = Mapping.Schemes

let x86 = Axiom.X86_tso.model
let tcg = Axiom.Tcg_model.model
let arm_orig = Axiom.Arm_cats.model Axiom.Arm_cats.Original
let arm_fix = Axiom.Arm_cats.model Axiom.Arm_cats.Corrected

let audit ~title ~name f ~src_model ~tgt_model =
  Format.printf "@.== %s ==@." title;
  let reports =
    Mapping.Check.check_scheme ~name f ~src_model ~tgt_model
      Litmus.Catalog.mapping_corpus
  in
  List.iter (fun r -> Format.printf "  %a@." Mapping.Check.pp_report r) reports;
  let bad = List.filter (fun r -> not r.Mapping.Check.ok) reports in
  Format.printf "  => %d/%d programs refine@."
    (List.length reports - List.length bad)
    (List.length reports)

let () =
  Format.printf
    "Theorem 1: a translation is correct iff every consistent target@.\
     behaviour is a consistent source behaviour.  Checked exhaustively@.\
     over the litmus corpus (the executable analogue of the paper's@.\
     14k-line Agda development).@.";

  audit ~title:"Verified x86 -> TCG IR (Figure 7a)" ~name:"fig7a"
    (S.x86_to_tcg S.Risotto_frontend) ~src_model:x86 ~tgt_model:tcg;

  audit ~title:"Qemu x86 -> TCG IR (Figure 2) — note the MPQ failure"
    ~name:"fig2" (S.x86_to_tcg S.Qemu_frontend) ~src_model:x86 ~tgt_model:tcg;

  let fe, be = S.risotto_rmw2_preset in
  audit ~title:"Risotto end-to-end (rmw2), original Arm-Cats" ~name:"risotto"
    (S.x86_to_arm fe be) ~src_model:x86 ~tgt_model:arm_orig;

  let fe, be = S.risotto_casal_preset in
  audit
    ~title:
      "Risotto end-to-end (casal), original Arm-Cats — SBAL shows why the \
       model fix (§3.3) was needed"
    ~name:"casal-orig" (S.x86_to_arm fe be) ~src_model:x86 ~tgt_model:arm_orig;

  audit ~title:"Risotto end-to-end (casal), corrected Arm-Cats"
    ~name:"casal-fixed" (S.x86_to_arm fe be) ~src_model:x86 ~tgt_model:arm_fix;

  let fe, be = S.qemu_preset in
  audit ~title:"Qemu end-to-end (gcc10 helper) — the §3.2 MPQ bug"
    ~name:"qemu-gcc10" (S.x86_to_arm fe be) ~src_model:x86 ~tgt_model:arm_fix;

  audit ~title:"Qemu end-to-end (gcc9 helper) — the §3.2 SBQ bug"
    ~name:"qemu-gcc9"
    (S.x86_to_arm S.Qemu_frontend { S.lowering = `Qemu; rmw = S.Helper_gcc9 })
    ~src_model:x86 ~tgt_model:arm_fix;

  audit ~title:"Arm-Cats 'intended' direct mapping (Figure 3) vs original model"
    ~name:"fig3-orig" S.x86_to_arm_direct_armcats ~src_model:x86
    ~tgt_model:arm_orig;

  (* Figure 10 transformations at the IR level. *)
  Format.printf "@.== Figure 10 transformations (TCG model both sides) ==@.";
  List.iter
    (fun rule ->
      List.iter
        (fun (name, p) ->
          List.iter
            (fun r ->
              if not r.Mapping.Check.ok then
                Format.printf "  %s on %s: %a@."
                  (Mapping.Transform.rule_name rule)
                  name Mapping.Check.pp_report r)
            (Mapping.Transform.soundness rule p))
        Mapping.Transform.corpus)
    Mapping.Transform.all_rules;
  Format.printf
    "  (the only violation above is RAW on FMR — the paper's §3.2 example@.\
    \   of why the verified frontend avoids Fmr/Fwr fences)@."
