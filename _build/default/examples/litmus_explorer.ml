(* Litmus explorer: enumerate the behaviours of a litmus test under a
   memory model, herd-style.

     dune exec examples/litmus_explorer.exe -- --list
     dune exec examples/litmus_explorer.exe -- MP --model arm
     dune exec examples/litmus_explorer.exe -- SBAL --model arm-orig --exec
     dune exec examples/litmus_explorer.exe -- --file litmus/MPQ-qemu.litmus *)

open Cmdliner

let models =
  [
    ("sc", Axiom.Explain.Sc);
    ("x86", Axiom.Explain.X86);
    ("arm", Axiom.Explain.Arm Axiom.Arm_cats.Corrected);
    ("arm-orig", Axiom.Explain.Arm Axiom.Arm_cats.Original);
    ("tcg", Axiom.Explain.Tcg);
  ]

(* Named programs: the mapping corpus plus the paper's target-side
   programs. *)
let programs =
  Litmus.Catalog.mapping_corpus
  @ [
      ("MPQ-qemu-arm", Litmus.Catalog.mpq_qemu_arm);
      ("SBQ-qemu-arm", Litmus.Catalog.sbq_qemu_arm);
      ("SBAL-armcats", Litmus.Catalog.sbal_armcats_arm);
      ("FMR-src", Litmus.Catalog.fmr_tcg_src);
      ("FMR-tgt", Litmus.Catalog.fmr_tcg_tgt);
      ("Fig9-left", Litmus.Catalog.fig9_left_tcg);
      ("Fig9-right", Litmus.Catalog.fig9_right_tcg);
    ]

let list_tests () =
  Format.printf "Available tests:@.";
  List.iter (fun (name, _) -> Format.printf "  %s@." name) programs;
  Format.printf "Available models: %s@."
    (String.concat ", " (List.map fst models))

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let explore name file model_name show_execs why =
  let prog, expectation =
    match file with
    | Some path -> (
        let src = read_file path in
        match Litmus.Parser.parse src with
        | { Litmus.Ast.prog; expect } ->
            Format.printf "expectation in file: %a@." Litmus.Ast.pp_expectation
              expect;
            (Some prog, Some expect)
        | exception Litmus.Parser.Error { line; msg } ->
            Format.eprintf "%s:%d: %s@." path line msg;
            exit 1)
    | None -> (List.assoc_opt name programs, None)
  in
  match (prog, List.assoc_opt model_name models) with
  | None, _ ->
      Format.eprintf "unknown test %S (try --list)@." name;
      exit 1
  | _, None ->
      Format.eprintf "unknown model %S (try --list)@." model_name;
      exit 1
  | Some prog, Some which ->
      let model = Axiom.Explain.model_of which in
      Format.printf "%a@." Litmus.Ast.pp_prog prog;
      let candidates = Litmus.Enumerate.candidates prog in
      let behaviours = Litmus.Enumerate.behaviours model prog in
      Format.printf "model %s: %d candidate executions, %d consistent behaviours:@."
        model.Axiom.Model.name (List.length candidates)
        (List.length behaviours);
      List.iter
        (fun b -> Format.printf "  %a@." Litmus.Enumerate.pp_behaviour b)
        behaviours;
      if show_execs then begin
        Format.printf "@.consistent executions:@.";
        List.iteri
          (fun i x ->
            Format.printf "@.-- execution %d --@.%a@." i Axiom.Execution.pp x)
          (Litmus.Enumerate.executions model prog)
      end;
      (* Why is the expectation's outcome (not) possible? *)
      (if why then
         match expectation with
         | Some (Litmus.Ast.Forbidden cond | Litmus.Ast.Allowed cond) ->
             Format.printf
               "@.executions whose behaviour matches the condition:@.";
             let shown = ref 0 in
             List.iter
               (fun (x, regs) ->
                 let b =
                   {
                     Litmus.Enumerate.mem = Axiom.Execution.behaviour x;
                     regs;
                   }
                 in
                 if Litmus.Enumerate.eval_cond cond b && !shown < 4 then begin
                   incr shown;
                   Format.printf "@[<v 2>  %a: %a@]@."
                     Litmus.Enumerate.pp_behaviour b
                     (Axiom.Explain.pp_verdict x)
                     (Axiom.Explain.check which x)
                 end)
               candidates
         | None ->
             Format.printf "@.--why needs a test file with an expectation@.");
      (* Compare against all models for quick contrast. *)
      Format.printf "@.%-10s %s@." "model" "behaviours";
      List.iter
        (fun (mname, w) ->
          Format.printf "%-10s %d@." mname
            (List.length
               (Litmus.Enumerate.behaviours (Axiom.Explain.model_of w) prog)))
        models

let name_arg =
  Arg.(value & pos 0 string "MP" & info [] ~docv:"TEST" ~doc:"Litmus test name.")

let model_arg =
  Arg.(
    value & opt string "arm"
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Memory model: sc, x86, arm, arm-orig or tcg.")

let exec_arg =
  Arg.(value & flag & info [ "exec" ] ~doc:"Print the consistent executions.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List available tests and models.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Parse the litmus test from $(docv) instead of the catalog.")

let why_arg =
  Arg.(
    value & flag
    & info [ "why" ]
        ~doc:
          "For a test file with an expectation, explain which axiom forbids \
           (or fails to forbid) each matching execution.")

let cmd =
  let run name file model exec list why =
    if list then list_tests () else explore name file model exec why
  in
  Cmd.v
    (Cmd.info "litmus_explorer"
       ~doc:"Enumerate litmus test behaviours under axiomatic memory models")
    Term.(
      const run $ name_arg $ file_arg $ model_arg $ exec_arg $ list_arg
      $ why_arg)

let () = exit (Cmd.eval cmd)
