examples/litmus_explorer.mli:
