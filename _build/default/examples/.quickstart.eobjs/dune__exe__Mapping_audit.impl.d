examples/mapping_audit.ml: Axiom Format List Litmus Mapping
