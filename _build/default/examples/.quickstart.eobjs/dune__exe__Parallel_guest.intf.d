examples/parallel_guest.mli:
