examples/parallel_guest.ml: Arm Core Format Image Int64 List X86
