examples/litmus_explorer.ml: Arg Axiom Cmd Cmdliner Format List Litmus String Term
