examples/host_linker_demo.ml: Arm Core Format Harness Image Int64 Linker List String X86
