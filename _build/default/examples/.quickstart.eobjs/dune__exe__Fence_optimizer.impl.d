examples/fence_optimizer.ml: Arm Array Core Format Image Linker List String Tcg X86
