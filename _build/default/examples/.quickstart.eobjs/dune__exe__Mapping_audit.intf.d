examples/mapping_audit.mli:
