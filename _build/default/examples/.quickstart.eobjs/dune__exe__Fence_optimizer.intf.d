examples/fence_optimizer.mli:
