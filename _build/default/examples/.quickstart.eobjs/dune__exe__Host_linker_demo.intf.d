examples/host_linker_demo.mli:
