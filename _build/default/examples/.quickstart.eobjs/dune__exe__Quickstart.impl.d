examples/quickstart.ml: Arm Array Buffer Core Format Image List Memsys String Tcg X86
