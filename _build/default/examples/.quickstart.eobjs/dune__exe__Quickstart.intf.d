examples/quickstart.mli:
