(* Fence placement and merging demo (paper §6.1): translate the same
   guest code under the Qemu and the verified Risotto mapping schemes
   and show the TCG IR before/after the optimizer and the final Arm
   code, reproducing the §6.1 example:

     a = X; Y = 1   ↝   a = X; Frm; Fww; Y = 1   ↝   a = X; F; Y = 1

     dune exec examples/fence_optimizer.exe *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

(* The §6.1 snippet: a load directly followed by a store. *)
let guest =
  [
    Label "main";
    Ins (I.Load (R.RAX, { base = None; index = None; disp = 0x5000L }));
    (* a = X *)
    Ins (I.Mov_ri (R.RCX, 1L));
    Ins (I.Store ({ base = None; index = None; disp = 0x5008L }, I.R R.RCX));
    (* Y = 1 *)
    Ins I.Hlt;
  ]

let show config =
  let image = Image.Gelf.build ~entry:"main" guest in
  let fe =
    Core.Frontend.create config image
      (Linker.Link.resolve image [])
  in
  let raw = Core.Frontend.translate fe image.Image.Gelf.entry in
  let optimized = Tcg.Pipeline.run config.Core.Config.passes raw in
  let arm = Core.Backend.compile config optimized in
  Format.printf "@.===== %s =====@." config.Core.Config.name;
  Format.printf "@[<v>TCG IR as emitted by the frontend:@,%a@]@."
    Tcg.Block.pp raw;
  Format.printf "@[<v>after %s:@,%a@]@."
    (String.concat ", "
       (List.map Tcg.Pipeline.pass_name config.Core.Config.passes))
    Tcg.Block.pp optimized;
  Format.printf "Arm host code:@.";
  Array.iteri (fun i insn -> Format.printf "  %2d: %a@." i Arm.Insn.pp insn) arm;
  let dmbs =
    Array.fold_left
      (fun n i -> match i with Arm.Insn.Dmb _ -> n + 1 | _ -> n)
      0 arm
  in
  Format.printf "=> %d fences emitted@." dmbs

let () =
  Format.printf
    "The verified scheme places a trailing Frm after loads and a leading@.\
     Fww before stores (Figure 7a); when a load is followed by a store@.\
     the two fences become adjacent and merge (§6.1).  Qemu's scheme@.\
     (Figure 2) uses leading Fmr/Fmw fences, which never merge.@.";
  show Core.Config.qemu;
  show { Core.Config.tcg_ver with Core.Config.passes = [] };
  show Core.Config.tcg_ver;
  show Core.Config.no_fences
