(** Finite sets of integer-identified elements (event ids).

    A thin wrapper around [Set.Make (Int)] with the operations the
    axiomatic-model layer needs, plus printing. *)

type t

val empty : t
val is_empty : t -> bool
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val singleton : int -> t
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val of_list : int list -> t
val to_list : t -> int list
val elements : t -> int list
val filter : (int -> bool) -> t -> t
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val choose_opt : t -> int option
val pp : Format.formatter -> t -> unit
