lib/relalg/rel.mli: Format Iset
