lib/relalg/rel.ml: Fmt Hashtbl Int Iset List Set
