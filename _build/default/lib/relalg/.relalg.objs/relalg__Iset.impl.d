lib/relalg/iset.ml: Fmt Int Set
