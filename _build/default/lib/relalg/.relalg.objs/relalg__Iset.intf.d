lib/relalg/iset.mli: Format
