module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let mem = S.mem
let add = S.add
let remove = S.remove
let singleton = S.singleton
let cardinal = S.cardinal
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let of_list = S.of_list
let to_list = S.elements
let elements = S.elements
let filter = S.filter
let for_all = S.for_all
let exists = S.exists
let fold = S.fold
let iter = S.iter
let choose_opt = S.choose_opt

let pp ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (S.elements s)
