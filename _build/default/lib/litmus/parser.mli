(** Concrete syntax for litmus tests.

    {v
    test MPQ
    init X=0 Y=0
    thread P0 {
      st X, 1
      st Y, 1
    }
    thread P1 {
      ld a, Y
      if (a == 1) {
        cas.x86 X, 1, 2
      }
    }
    forbidden 1:a=1 /\ X=1
    v}

    Access mnemonics: [ld], [ld.acq], [ld.q], [ld.sc]; [st], [st.rel],
    [st.sc]; [cas.x86], [cas.tcg], [cas.amo]/[cas.lxsx] with optional
    [.a]/[.l] acquire/release suffixes (an optional destination register
    is written [cas.x86 r <- X, 0, 1]); [fence F] with the fence names
    of {!Axiom.Event.pp_fence} ([MFENCE], [DMB.FULL], [Frm], ...);
    register assignment [r := e].  Instructions are separated by
    newlines or [;]; [#] starts a line comment.  The final expectation
    is [allowed c] or [forbidden c] with [/\], [\/], [~], [loc=v] and
    [tid:reg=v].

    {!to_source} prints this exact syntax ([parse ∘ to_source] is the
    identity, property-tested). *)

exception Error of { line : int; msg : string }

val parse : string -> Ast.test

(** Parse a program without an expectation clause. *)
val parse_prog : string -> Ast.prog

val to_source : Ast.test -> string
val prog_to_source : Ast.prog -> string
