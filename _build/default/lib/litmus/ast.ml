type exp =
  | Int of int
  | Reg of string
  | Add of exp * exp
  | Sub of exp * exp
  | Mul of exp * exp
  | Xor of exp * exp
  | Eq of exp * exp
  | Ne of exp * exp

type rmw_impl = Amo | Lxsx

type rmw_kind =
  | Rmw_x86
  | Rmw_tcg
  | Rmw_arm of { impl : rmw_impl; acq : bool; rel : bool }

type instr =
  | Load of { reg : string; loc : string; ord : Axiom.Event.read_ord }
  | Store of { loc : string; value : exp; ord : Axiom.Event.write_ord }
  | Cas of {
      reg : string option;
      loc : string;
      expect : exp;
      desired : exp;
      kind : rmw_kind;
    }
  | Fence of Axiom.Event.fence
  | Assign of string * exp
  | If of { cond : exp; then_ : instr list; else_ : instr list }

type thread = { tid : int; code : instr list }
type prog = { name : string; init : (string * int) list; threads : thread list }

type cond =
  | Reg_is of int * string * int
  | Loc_is of string * int
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | True

type expectation = Allowed of cond | Forbidden of cond
type test = { prog : prog; expect : expectation }

let rec instr_locs acc = function
  | Load { loc; _ } | Store { loc; _ } | Cas { loc; _ } -> loc :: acc
  | Fence _ | Assign _ -> acc
  | If { then_; else_; _ } ->
      let acc = List.fold_left instr_locs acc then_ in
      List.fold_left instr_locs acc else_

let locations p =
  let from_init = List.map fst p.init in
  let from_code =
    List.concat_map (fun t -> List.fold_left instr_locs [] t.code) p.threads
  in
  List.sort_uniq String.compare (from_init @ from_code)

let registers t =
  let rec go acc = function
    | Load { reg; _ } -> if List.mem reg acc then acc else reg :: acc
    | Cas { reg = Some reg; _ } | Assign (reg, _) ->
        if List.mem reg acc then acc else reg :: acc
    | Cas { reg = None; _ } | Store _ | Fence _ -> acc
    | If { then_; else_; _ } ->
        let acc = List.fold_left go acc then_ in
        List.fold_left go acc else_
  in
  List.rev (List.fold_left go [] t.code)

let map_instrs f p =
  let rec go_instr i =
    match i with
    | If { cond; then_; else_ } ->
        f (If { cond; then_ = go_list then_; else_ = go_list else_ })
    | _ -> f i
  and go_list is = List.concat_map go_instr is in
  { p with threads = List.map (fun t -> { t with code = go_list t.code }) p.threads }

let rec pp_exp ppf = function
  | Int n -> Fmt.int ppf n
  | Reg r -> Fmt.string ppf r
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_exp a pp_exp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_exp a pp_exp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_exp a pp_exp b
  | Xor (a, b) -> Fmt.pf ppf "(%a ^ %a)" pp_exp a pp_exp b
  | Eq (a, b) -> Fmt.pf ppf "(%a == %a)" pp_exp a pp_exp b
  | Ne (a, b) -> Fmt.pf ppf "(%a != %a)" pp_exp a pp_exp b

let read_ann : Axiom.Event.read_ord -> string = function
  | R_plain -> ""
  | R_acq -> ".acq"
  | R_acq_pc -> ".q"
  | R_sc -> ".sc"

let write_ann : Axiom.Event.write_ord -> string = function
  | W_plain -> ""
  | W_rel -> ".rel"
  | W_sc -> ".sc"

let rmw_kind_name = function
  | Rmw_x86 -> "x86"
  | Rmw_tcg -> "tcg"
  | Rmw_arm { impl; acq; rel } ->
      Printf.sprintf "%s%s%s"
        (match impl with Amo -> "amo" | Lxsx -> "lxsx")
        (if acq then ".a" else "")
        (if rel then ".l" else "")

let rec pp_instr ppf = function
  | Load { reg; loc; ord } -> Fmt.pf ppf "ld%s %s, %s" (read_ann ord) reg loc
  | Store { loc; value; ord } ->
      Fmt.pf ppf "st%s %s, %a" (write_ann ord) loc pp_exp value
  | Cas { reg; loc; expect; desired; kind } ->
      Fmt.pf ppf "cas.%s %s%s, %a, %a" (rmw_kind_name kind)
        (match reg with Some r -> r ^ " <- " | None -> "")
        loc pp_exp expect pp_exp desired
  | Fence f -> Fmt.pf ppf "fence %a" Axiom.Event.pp_fence f
  | Assign (r, e) -> Fmt.pf ppf "%s := %a" r pp_exp e
  | If { cond; then_; else_ } ->
      Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,}" pp_exp cond
        (Fmt.list ~sep:Fmt.cut pp_instr)
        then_;
      if else_ <> [] then
        Fmt.pf ppf "@[<v 2> else {@,%a@]@,}"
          (Fmt.list ~sep:Fmt.cut pp_instr)
          else_

let pp_prog ppf p =
  let pp_init ppf (l, v) = Fmt.pf ppf "%s=%d" l v in
  Fmt.pf ppf "@[<v>test %s@,init %a@," p.name
    (Fmt.list ~sep:Fmt.sp pp_init)
    p.init;
  List.iter
    (fun t ->
      Fmt.pf ppf "@[<v 2>thread P%d {@,%a@]@,}@," t.tid
        (Fmt.list ~sep:Fmt.cut pp_instr)
        t.code)
    p.threads;
  Fmt.pf ppf "@]"

let rec pp_cond ppf = function
  | Reg_is (tid, r, v) -> Fmt.pf ppf "%d:%s=%d" tid r v
  | Loc_is (l, v) -> Fmt.pf ppf "%s=%d" l v
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp_cond a pp_cond b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp_cond a pp_cond b
  | Not c -> Fmt.pf ppf "~(%a)" pp_cond c
  | True -> Fmt.string ppf "true"

let pp_expectation ppf = function
  | Allowed c -> Fmt.pf ppf "allowed %a" pp_cond c
  | Forbidden c -> Fmt.pf ppf "forbidden %a" pp_cond c
