(** Litmus test catalog: the programs of the paper (§2.1, §3.2, §3.3,
    Figures 8 and 9) plus a corpus of classic shape tests, with their
    expected verdicts under each model.  These expectations are the
    ground truth the model implementations are tested against. *)

open Ast

(** {1 Expectation suites}  Each entry is [(name, test)]; the test's
    expectation is what the named model must deliver. *)

val sc_tests : (string * test) list
val x86_tests : (string * test) list

(** Expected under both Arm-Cats variants. *)
val arm_tests_common : (string * test) list

(** Expected only under the original (pre-fix) Arm-Cats model. *)
val arm_tests_original : (string * test) list

(** Expected only under the corrected Arm-Cats model. *)
val arm_tests_corrected : (string * test) list

val tcg_tests : (string * test) list

(** {1 Named paper programs} *)

(** §2.1 message passing, written as an x86 program. *)
val mp_x86 : prog

(** §3.2 MPQ source (x86). *)
val mpq_x86 : prog

(** §3.2 MPQ as translated by Qemu (Arm, with [RMW1_AL]): exhibits the
    forbidden x86 outcome — the paper's first reported Qemu bug. *)
val mpq_qemu_arm : prog

(** §3.2 SBQ source (x86). *)
val sbq_x86 : prog

(** §3.2 SBQ as translated by Qemu (Arm, with [RMW2_AL]). *)
val sbq_qemu_arm : prog

(** §3.3 SBAL source (x86). *)
val sbal_x86 : prog

(** §3.3 SBAL under the "intended" Arm-Cats direct mapping (Figure 3). *)
val sbal_armcats_arm : prog

(** §3.2 FMR: TCG IR program before and after the (unsound in the
    presence of [Fmr]) read-after-write constant propagation. *)
val fmr_tcg_src : prog

val fmr_tcg_tgt : prog

(** Figure 9 programs at TCG IR level (sources for the IR→Arm mapping
    minimality discussion). *)
val fig9_left_tcg : prog

val fig9_right_tcg : prog

(** {1 Mapping corpus}

    x86 source programs over which mapping schemes are checked for
    Theorem-1 refinement.  Covers loads, stores, fences, successful and
    failing RMWs in MP/SB/LB/R/2+2W/IRIW/coherence shapes. *)
val mapping_corpus : (string * prog) list
