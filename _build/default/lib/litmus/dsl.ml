open Ast

let ( ! ) n = Int n
let r name = Reg name
let ld reg loc = Load { reg; loc; ord = Axiom.Event.R_plain }
let st loc v = Store { loc; value = Int v; ord = Axiom.Event.W_plain }
let st_e loc value = Store { loc; value; ord = Axiom.Event.W_plain }
let ld_acq reg loc = Load { reg; loc; ord = Axiom.Event.R_acq }
let ld_q reg loc = Load { reg; loc; ord = Axiom.Event.R_acq_pc }
let st_rel loc v = Store { loc; value = Int v; ord = Axiom.Event.W_rel }
let mfence = Fence Axiom.Event.F_mfence
let dmb_full = Fence Axiom.Event.F_dmb_full
let dmb_ld = Fence Axiom.Event.F_dmb_ld
let dmb_st = Fence Axiom.Event.F_dmb_st
let fence f = Fence f

let cas_x86 ?reg loc expect desired =
  Cas { reg; loc; expect = Int expect; desired = Int desired; kind = Rmw_x86 }

let cas_tcg ?reg loc expect desired =
  Cas { reg; loc; expect = Int expect; desired = Int desired; kind = Rmw_tcg }

let cas_amo_al ?reg loc expect desired =
  Cas
    {
      reg;
      loc;
      expect = Int expect;
      desired = Int desired;
      kind = Rmw_arm { impl = Amo; acq = true; rel = true };
    }

let cas_lxsx ?reg ?(acq = false) ?(rel = false) loc expect desired =
  Cas
    {
      reg;
      loc;
      expect = Int expect;
      desired = Int desired;
      kind = Rmw_arm { impl = Lxsx; acq; rel };
    }

let assign reg e = Assign (reg, e)
let if_ cond then_ = If { cond; then_; else_ = [] }
let if_else cond then_ else_ = If { cond; then_; else_ }

let prog name init codes =
  { name; init; threads = List.mapi (fun tid code -> { tid; code }) codes }

let reg_is tid reg v = Reg_is (tid, reg, v)
let loc_is loc v = Loc_is (loc, v)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let forbidden c p = { prog = p; expect = Forbidden c }
let allowed c p = { prog = p; expect = Allowed c }
