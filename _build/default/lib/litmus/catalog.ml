open Ast
open Dsl

(* ------------------------------------------------------------------ *)
(* Classic shapes, parameterised by access/fence flavour               *)

let mp_x86 =
  prog "MP" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; st "Y" 1 ]; [ ld "a" "Y"; ld "b" "X" ] ]

let mp_weak = reg_is 1 "a" 1 &&& reg_is 1 "b" 0

let sb_x86 =
  prog "SB" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; ld "a" "Y" ]; [ st "Y" 1; ld "b" "X" ] ]

let sb_weak = reg_is 0 "a" 0 &&& reg_is 1 "b" 0

let sb_mfence_x86 =
  prog "SB+mfences" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; mfence; ld "a" "Y" ]; [ st "Y" 1; mfence; ld "b" "X" ] ]

let lb_x86 =
  prog "LB" [ ("X", 0); ("Y", 0) ]
    [ [ ld "a" "X"; st "Y" 1 ]; [ ld "b" "Y"; st "X" 1 ] ]

let lb_weak = reg_is 0 "a" 1 &&& reg_is 1 "b" 1

let corr_x86 =
  prog "CoRR" [ ("X", 0) ] [ [ st "X" 1 ]; [ ld "a" "X"; ld "b" "X" ] ]

let corr_weak = reg_is 1 "a" 1 &&& reg_is 1 "b" 0

let two_plus_two_w =
  prog "2+2W" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; st "Y" 2 ]; [ st "Y" 1; st "X" 2 ] ]

let two_plus_two_weak = loc_is "X" 1 &&& loc_is "Y" 1

let iriw_x86 =
  prog "IRIW" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1 ];
      [ st "Y" 1 ];
      [ ld "a" "X"; ld "b" "Y" ];
      [ ld "c" "Y"; ld "d" "X" ];
    ]

let iriw_weak =
  reg_is 2 "a" 1 &&& reg_is 2 "b" 0 &&& reg_is 3 "c" 1 &&& reg_is 3 "d" 0

(* SB through successful RMWs: x86 RMWs act as full fences (§2.4). *)
let sb_rmw_x86 =
  prog "SB+rmws" [ ("X", 0); ("Y", 0); ("Z", 0); ("U", 0) ]
    [
      [ st "X" 1; cas_x86 "Z" 0 1; ld "a" "Y" ];
      [ st "Y" 1; cas_x86 "U" 0 1; ld "b" "X" ];
    ]

(* Atomicity: two competing successful RMWs on one location. *)
let rmw_atomicity_x86 =
  prog "RMW-atomicity" [ ("X", 0) ]
    [ [ cas_x86 ~reg:"a" "X" 0 1 ]; [ cas_x86 ~reg:"b" "X" 0 2 ] ]

let both_rmw_won = reg_is 0 "a" 0 &&& reg_is 1 "b" 0

(* ------------------------------------------------------------------ *)
(* §3.2 MPQ                                                            *)

let mpq_x86 =
  prog "MPQ" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1; st "Y" 1 ];
      [ ld "a" "Y"; if_ (Eq (r "a", !1)) [ cas_x86 "X" 1 2 ] ];
    ]

let mpq_weak = reg_is 1 "a" 1 &&& loc_is "X" 1

let mpq_qemu_arm =
  prog "MPQ-qemu-arm" [ ("X", 0); ("Y", 0) ]
    [
      [ dmb_full; st "X" 1; dmb_full; st "Y" 1 ];
      [ dmb_ld; ld "a" "Y"; if_ (Eq (r "a", !1)) [ cas_amo_al "X" 1 2 ] ];
    ]

(* ------------------------------------------------------------------ *)
(* §3.2 SBQ                                                            *)

let sbq_x86 =
  prog "SBQ" [ ("X", 0); ("Y", 0); ("Z", 0); ("U", 0) ]
    [
      [ st "X" 1; cas_x86 "Z" 0 1; ld "a" "Y" ];
      [ st "Y" 1; cas_x86 "U" 0 1; ld "b" "X" ];
    ]

let sbq_weak =
  loc_is "Z" 1 &&& loc_is "U" 1 &&& reg_is 0 "a" 0 &&& reg_is 1 "b" 0

let sbq_qemu_arm =
  prog "SBQ-qemu-arm" [ ("X", 0); ("Y", 0); ("Z", 0); ("U", 0) ]
    [
      [
        dmb_full;
        st "X" 1;
        cas_lxsx ~acq:true ~rel:true "Z" 0 1;
        dmb_ld;
        ld "a" "Y";
      ];
      [
        dmb_full;
        st "Y" 1;
        cas_lxsx ~acq:true ~rel:true "U" 0 1;
        dmb_ld;
        ld "b" "X";
      ];
    ]

(* ------------------------------------------------------------------ *)
(* §3.3 SBAL                                                           *)

let sbal_x86 =
  prog "SBAL" [ ("X", 0); ("Y", 0) ]
    [
      [ cas_x86 "X" 0 1; ld "a" "Y" ];
      [ cas_x86 "Y" 0 1; ld "b" "X" ];
    ]

let sbal_weak =
  loc_is "X" 1 &&& loc_is "Y" 1 &&& reg_is 0 "a" 0 &&& reg_is 1 "b" 0

let sbal_armcats_arm =
  prog "SBAL-armcats" [ ("X", 0); ("Y", 0) ]
    [
      [ cas_amo_al "X" 0 1; ld_q "a" "Y" ];
      [ cas_amo_al "Y" 0 1; ld_q "b" "X" ];
    ]

(* ------------------------------------------------------------------ *)
(* §3.2 FMR: the RAW transformation is unsound across an Fmr fence     *)

let fmr_tcg_src =
  prog "FMR-src" [ ("X", 0); ("Y", 0); ("Z", 0) ]
    [
      [
        st "X" 3;
        fence Axiom.Event.F_mr;
        st "Y" 2;
        ld "a" "Y";
        fence Axiom.Event.F_rw;
        st "Z" 2;
      ];
      [
        ld "z" "Z";
        if_ (Eq (r "z", !2))
          [ fence Axiom.Event.F_rw; st "X" 4; ld "c" "X" ];
      ];
    ]

let fmr_tcg_tgt =
  prog "FMR-tgt" [ ("X", 0); ("Y", 0); ("Z", 0) ]
    [
      [
        st "X" 3;
        fence Axiom.Event.F_mr;
        st "Y" 2;
        assign "a" !2;
        fence Axiom.Event.F_rw;
        st "Z" 2;
      ];
      [
        ld "z" "Z";
        if_ (Eq (r "z", !2))
          [ fence Axiom.Event.F_rw; st "X" 4; ld "c" "X" ];
      ];
    ]

let fmr_weak = reg_is 0 "a" 2 &&& reg_is 1 "c" 3 &&& reg_is 1 "z" 2

(* ------------------------------------------------------------------ *)
(* Figure 8: minimality of the x86 → IR mapping                        *)

let lb_ir =
  prog "LB-IR" [ ("X", 0); ("Y", 0) ]
    [
      [ ld "a" "X"; fence Axiom.Event.F_rw; st "Y" 1 ];
      [ ld "b" "Y"; fence Axiom.Event.F_rw; st "X" 1 ];
    ]

let mp_ir =
  prog "MP-IR" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1; fence Axiom.Event.F_ww; st "Y" 1 ];
      [ ld "a" "Y"; fence Axiom.Event.F_rr; ld "b" "X" ];
    ]

(* ------------------------------------------------------------------ *)
(* Figure 9: minimality of the IR → Arm mapping                        *)

(* Paper notation "RMW(Y,0,1)" fixes the RMW to read 0 and write 1.
   The distinguishing weak outcome of this 2+2W shape is: both RMWs
   succeed (read 0) while both plain stores end up coherence-last —
   impossible in the IR (RMWs are SC), possible on Arm without the
   DMBFF fences.  (The rmw-write-last variant is already excluded by
   the atomicity axiom in every model.) *)
let fig9_left_tcg =
  prog "Fig9-left" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 2; cas_tcg ~reg:"a" "Y" 0 1 ];
      [ st "Y" 2; cas_tcg ~reg:"b" "X" 0 1 ];
    ]

let fig9_left_weak =
  reg_is 0 "a" 0 &&& reg_is 1 "b" 0 &&& loc_is "X" 2 &&& loc_is "Y" 2

let fig9_right_tcg =
  prog "Fig9-right" [ ("X", 0); ("Y", 0) ]
    [ [ cas_tcg "X" 0 1; ld "a" "Y" ]; [ cas_tcg "Y" 0 1; ld "b" "X" ] ]

let fig9_right_weak = reg_is 0 "a" 0 &&& reg_is 1 "b" 0

(* Fig 9 programs lowered to Arm with RMW2 and the leading/trailing
   DMBFF fences of the verified mapping — and without, to show the
   fences are necessary. *)
let fig9_left_arm_fenced =
  prog "Fig9-left-arm+dmb" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 2; dmb_full; cas_lxsx ~reg:"a" "Y" 0 1; dmb_full ];
      [ st "Y" 2; dmb_full; cas_lxsx ~reg:"b" "X" 0 1; dmb_full ];
    ]

let fig9_left_arm_unfenced =
  prog "Fig9-left-arm-nofence" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 2; cas_lxsx ~reg:"a" "Y" 0 1 ];
      [ st "Y" 2; cas_lxsx ~reg:"b" "X" 0 1 ];
    ]

let fig9_right_arm_fenced =
  prog "Fig9-right-arm+dmb" [ ("X", 0); ("Y", 0) ]
    [
      [ dmb_full; cas_lxsx "X" 0 1; dmb_full; ld "a" "Y" ];
      [ dmb_full; cas_lxsx "Y" 0 1; dmb_full; ld "b" "X" ];
    ]

let fig9_right_arm_unfenced =
  prog "Fig9-right-arm-nofence" [ ("X", 0); ("Y", 0) ]
    [
      [ cas_lxsx "X" 0 1; ld "a" "Y" ];
      [ cas_lxsx "Y" 0 1; ld "b" "X" ];
    ]

(* ------------------------------------------------------------------ *)
(* Arm flavoured classics                                              *)

let mp_arm =
  prog "MP-arm" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; st "Y" 1 ]; [ ld "a" "Y"; ld "b" "X" ] ]

let mp_arm_dmb =
  prog "MP-arm+dmbs" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; dmb_full; st "Y" 1 ]; [ ld "a" "Y"; dmb_full; ld "b" "X" ] ]

let mp_arm_dmbst_dmbld =
  prog "MP-arm+dmbst+dmbld" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; dmb_st; st "Y" 1 ]; [ ld "a" "Y"; dmb_ld; ld "b" "X" ] ]

(* dmb.st on the writer alone does not restore MP: the reader's loads
   may still be reordered (ctrl does not order R-R). *)
let mp_arm_dmbst_ctrl =
  prog "MP-arm+dmbst+ctrl" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1; dmb_st; st "Y" 1 ];
      [ ld "a" "Y"; if_ (Eq (r "a", !1)) [ ld "b" "X" ] ];
    ]

(* Release/acquirePC restores MP (Figure 3 mapping building block). *)
let mp_arm_rel_q =
  prog "MP-arm+rel+q" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; st_rel "Y" 1 ]; [ ld_q "a" "Y"; ld "b" "X" ] ]

let lb_arm =
  prog "LB-arm" [ ("X", 0); ("Y", 0) ]
    [ [ ld "a" "X"; st "Y" 1 ]; [ ld "b" "Y"; st "X" 1 ] ]

(* Data dependencies forbid LB on Arm. *)
let lb_arm_data =
  prog "LB-arm+datas" [ ("X", 0); ("Y", 0) ]
    [ [ ld "a" "X"; st_e "Y" (r "a") ]; [ ld "b" "Y"; st_e "X" (r "b") ] ]

let lb_arm_data_weak = reg_is 0 "a" 1 &&& reg_is 1 "b" 1

let sb_arm =
  prog "SB-arm" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; ld "a" "Y" ]; [ st "Y" 1; ld "b" "X" ] ]

let sb_arm_dmb =
  prog "SB-arm+dmbs" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; dmb_full; ld "a" "Y" ]; [ st "Y" 1; dmb_full; ld "b" "X" ] ]

let corr_arm =
  prog "CoRR-arm" [ ("X", 0) ] [ [ st "X" 1 ]; [ ld "a" "X"; ld "b" "X" ] ]

(* ------------------------------------------------------------------ *)
(* TCG flavoured shapes                                                *)

let sb_tcg_plain =
  prog "SB-tcg" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; ld "a" "Y" ]; [ st "Y" 1; ld "b" "X" ] ]

let sb_tcg_fwr =
  prog "SB-tcg+fwr" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1; fence Axiom.Event.F_wr; ld "a" "Y" ];
      [ st "Y" 1; fence Axiom.Event.F_wr; ld "b" "X" ];
    ]

let mp_tcg_plain =
  prog "MP-tcg" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 1; st "Y" 1 ]; [ ld "a" "Y"; ld "b" "X" ] ]

(* The verified x86→IR mapping output for MP (Figure 7a applied). *)
let mp_tcg_mapped =
  prog "MP-tcg-mapped" [ ("X", 0); ("Y", 0) ]
    [
      [
        fence Axiom.Event.F_ww;
        st "X" 1;
        fence Axiom.Event.F_ww;
        st "Y" 1;
      ];
      [
        ld "a" "Y";
        fence Axiom.Event.F_rm;
        ld "b" "X";
        fence Axiom.Event.F_rm;
      ];
    ]


(* ------------------------------------------------------------------ *)
(* More classic shapes                                                 *)

(* S: write-to-read causality into an overwriting store. *)
let s_x86 =
  prog "S" [ ("X", 0); ("Y", 0) ]
    [ [ st "X" 2; st "Y" 1 ]; [ ld "a" "Y"; st "X" 1 ] ]

let s_weak = reg_is 1 "a" 1 &&& loc_is "X" 2

(* WRC: write-read causality across three threads. *)
let wrc_x86 =
  prog "WRC" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1 ];
      [ ld "a" "X"; st "Y" 1 ];
      [ ld "b" "Y"; ld "c" "X" ];
    ]

let wrc_weak = reg_is 1 "a" 1 &&& reg_is 2 "b" 1 &&& reg_is 2 "c" 0

(* Coherence shapes. *)
let coww =
  prog "CoWW" [ ("X", 0) ] [ [ st "X" 1; st "X" 2 ] ]

let coww_weak = loc_is "X" 1

let corw1 =
  prog "CoRW1" [ ("X", 0) ] [ [ ld "a" "X"; st "X" 1 ] ]

let corw1_weak = reg_is 0 "a" 1

(* Arm: control dependencies to stores forbid LB. *)
let lb_arm_ctrl =
  prog "LB-arm+ctrls" [ ("X", 0); ("Y", 0) ]
    [
      [ ld "a" "X"; if_ (Eq (r "a", !1)) [ st "Y" 1 ] ];
      [ ld "b" "Y"; if_ (Eq (r "b", !1)) [ st "X" 1 ] ];
    ]

(* Arm: 2+2W with store-store fences. *)
let two_two_w_arm_dmbst =
  prog "2+2W-arm+dmbsts" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1; dmb_st; st "Y" 2 ];
      [ st "Y" 1; dmb_st; st "X" 2 ];
    ]

(* Arm is multi-copy atomic: IRIW with full fences is forbidden. *)
let iriw_arm_dmb =
  prog "IRIW-arm+dmbs" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1 ];
      [ st "Y" 1 ];
      [ ld "a" "X"; dmb_full; ld "b" "Y" ];
      [ ld "c" "Y"; dmb_full; ld "d" "X" ];
    ]

let iriw_arm_plain =
  prog "IRIW-arm" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1 ];
      [ st "Y" 1 ];
      [ ld "a" "X"; ld "b" "Y" ];
      [ ld "c" "Y"; ld "d" "X" ];
    ]

(* WRC on Arm: plain is weak; an acquire read in the final thread plus a
   data dependency in the middle one restores order. *)
let wrc_arm_plain =
  prog "WRC-arm" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1 ];
      [ ld "a" "X"; st_e "Y" (r "a") ];
      [ ld "b" "Y"; ld "c" "X" ];
    ]

let wrc_arm_acq =
  prog "WRC-arm+data+acq" [ ("X", 0); ("Y", 0) ]
    [
      [ st "X" 1 ];
      [ ld "a" "X"; st_e "Y" (r "a") ];
      [ ld_acq "b" "Y"; ld "c" "X" ];
    ]

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)

let sc_tests =
  [
    ("SC forbids SB weak", forbidden sb_weak sb_x86);
    ("SC forbids MP weak", forbidden mp_weak mp_x86);
    ("SC forbids LB weak", forbidden lb_weak lb_x86);
    ("SC forbids CoRR weak", forbidden corr_weak corr_x86);
    ("SC allows MP strong", allowed (reg_is 1 "a" 1 &&& reg_is 1 "b" 1) mp_x86);
  ]

let x86_tests =
  [
    ("x86 allows SB weak", allowed sb_weak sb_x86);
    ("x86 forbids SB+mfence weak", forbidden sb_weak sb_mfence_x86);
    ("x86 forbids MP weak", forbidden mp_weak mp_x86);
    ("x86 forbids LB weak", forbidden lb_weak lb_x86);
    ("x86 forbids CoRR weak", forbidden corr_weak corr_x86);
    ("x86 forbids 2+2W weak", forbidden two_plus_two_weak two_plus_two_w);
    ("x86 forbids IRIW weak", forbidden iriw_weak iriw_x86);
    ("x86 RMW acts as fence (SB+rmws)", forbidden sbq_weak sb_rmw_x86);
    ("x86 RMW atomicity", forbidden both_rmw_won rmw_atomicity_x86);
    ("x86 forbids S weak", forbidden s_weak s_x86);
    ("x86 forbids WRC weak", forbidden wrc_weak wrc_x86);
    ("x86 forbids CoWW weak", forbidden coww_weak coww);
    ("x86 forbids CoRW1 weak", forbidden corw1_weak corw1);
    ("x86 forbids MPQ weak", forbidden mpq_weak mpq_x86);
    ("x86 forbids SBQ weak", forbidden sbq_weak sbq_x86);
    ("x86 forbids SBAL weak", forbidden sbal_weak sbal_x86);
  ]

let arm_tests_common =
  [
    ("Arm allows MP weak", allowed mp_weak mp_arm);
    ("Arm forbids MP+dmbs weak", forbidden mp_weak mp_arm_dmb);
    ( "Arm forbids MP+dmbst+dmbld weak",
      forbidden mp_weak mp_arm_dmbst_dmbld );
    ("Arm allows MP+dmbst+ctrl weak", allowed mp_weak mp_arm_dmbst_ctrl);
    ("Arm forbids MP+rel+q weak", forbidden mp_weak mp_arm_rel_q);
    ("Arm allows LB weak", allowed lb_weak lb_arm);
    ("Arm forbids LB+datas weak", forbidden lb_arm_data_weak lb_arm_data);
    ("Arm allows SB weak", allowed sb_weak sb_arm);
    ("Arm forbids SB+dmbs weak", forbidden sb_weak sb_arm_dmb);
    ("Arm forbids CoRR weak", forbidden corr_weak corr_arm);
    ("Arm forbids CoWW weak", forbidden coww_weak coww);
    ("Arm forbids CoRW1 weak", forbidden corw1_weak corw1);
    ("Arm allows S weak", allowed s_weak s_x86);
    ("Arm forbids LB+ctrls weak", forbidden lb_weak lb_arm_ctrl);
    ("Arm forbids 2+2W+dmbsts weak", forbidden two_plus_two_weak two_two_w_arm_dmbst);
    ("Arm allows IRIW-shape only without fences", allowed iriw_weak iriw_arm_plain);
    ("Arm forbids IRIW+dmbs weak (MCA)", forbidden iriw_weak iriw_arm_dmb);
    ("Arm allows WRC weak", allowed wrc_weak wrc_arm_plain);
    ("Arm forbids WRC+data+acq weak", forbidden wrc_weak wrc_arm_acq);
    ("Arm allows MPQ-qemu weak (Qemu bug)", allowed mpq_weak mpq_qemu_arm);
    ("Arm allows SBQ-qemu weak (Qemu bug)", allowed sbq_weak sbq_qemu_arm);
    ( "Arm forbids Fig9-left with DMBFFs",
      forbidden fig9_left_weak fig9_left_arm_fenced );
    ( "Arm allows Fig9-left without DMBFFs",
      allowed fig9_left_weak fig9_left_arm_unfenced );
    ( "Arm forbids Fig9-right with DMBFFs",
      forbidden fig9_right_weak fig9_right_arm_fenced );
    ( "Arm allows Fig9-right without DMBFFs",
      allowed fig9_right_weak fig9_right_arm_unfenced );
  ]

let arm_tests_original =
  [ ("Arm(orig) allows SBAL weak", allowed sbal_weak sbal_armcats_arm) ]

let arm_tests_corrected =
  [ ("Arm(fixed) forbids SBAL weak", forbidden sbal_weak sbal_armcats_arm) ]

(* The verified mapping inserts no fence between a store and a later
   load: the x86-allowed SB outcome survives in the IR. *)
let sb_tcg_mapped =
  prog "SB-tcg-mapped" [ ("X", 0); ("Y", 0) ]
    [
      [ fence Axiom.Event.F_ww; st "X" 1; ld "a" "Y"; fence Axiom.Event.F_rm ];
      [ fence Axiom.Event.F_ww; st "Y" 1; ld "b" "X"; fence Axiom.Event.F_rm ];
    ]

let tcg_tests =
  [
    ("TCG forbids LB-IR weak", forbidden lb_weak lb_ir);
    ("TCG forbids MP-IR weak", forbidden mp_weak mp_ir);
    ("TCG allows MP plain weak", allowed mp_weak mp_tcg_plain);
    ("TCG forbids MP mapped weak", forbidden mp_weak mp_tcg_mapped);
    ("TCG allows SB plain weak", allowed sb_weak sb_tcg_plain);
    ("TCG forbids SB+Fwr weak", forbidden sb_weak sb_tcg_fwr);
    ("TCG allows SB mapped weak", allowed sb_weak sb_tcg_mapped);
    ("TCG RMW acts as fence (Fig9-right)", forbidden fig9_right_weak fig9_right_tcg);
    ("TCG forbids Fig9-left weak", forbidden fig9_left_weak fig9_left_tcg);
    ("TCG forbids FMR-src weak", forbidden fmr_weak fmr_tcg_src);
    ("TCG allows FMR-tgt weak (RAW unsound)", allowed fmr_weak fmr_tcg_tgt);
  ]

let mapping_corpus =
  [
    ("MP", mp_x86);
    ("SB", sb_x86);
    ("SB+mfences", sb_mfence_x86);
    ("LB", lb_x86);
    ("CoRR", corr_x86);
    ("2+2W", two_plus_two_w);
    ("IRIW", iriw_x86);
    ("SB+rmws", sb_rmw_x86);
    ("RMW-atomicity", rmw_atomicity_x86);
    ("S", s_x86);
    ("WRC", wrc_x86);
    ("CoWW", coww);
    ("CoRW1", corw1);
    ("MPQ", mpq_x86);
    ("SBQ", sbq_x86);
    ("SBAL", sbal_x86);
  ]
