(** Exhaustive enumeration of the consistent executions of a litmus
    program under a memory model.

    The generator follows the standard candidate-execution recipe:

    + each thread is run symbolically with a read-value oracle drawing
      from the program's value universe (constants ∪ initial values),
      resolving control flow and recording events, RMW pairing and
      data/control dependencies;
    + reads-from is enumerated over value-compatible writes;
    + coherence is enumerated as the linear extensions of the per-location
      write sets (initialisation writes first);
    + candidates are filtered by the model's consistency predicate.

    Exact for loop-free litmus-sized programs. *)

(** A behaviour: final memory (co-maximal writes) plus the final local
    register valuation of each thread, both canonically sorted. *)
type behaviour = {
  mem : (string * int) list;
  regs : ((int * string) * int) list;
}

val behaviour_compare : behaviour -> behaviour -> int
val pp_behaviour : Format.formatter -> behaviour -> unit

(** The value universe used by the read oracle. *)
val universe : Ast.prog -> int list

(** All candidate executions (before model filtering), paired with the
    thread-local register valuations of the runs that produced them. *)
val candidates : Ast.prog -> (Axiom.Execution.t * ((int * string) * int) list) list

(** Consistent executions under a model. *)
val executions : Axiom.Model.t -> Ast.prog -> Axiom.Execution.t list

(** The set of behaviours of the consistent executions, deduplicated and
    sorted. *)
val behaviours : Axiom.Model.t -> Ast.prog -> behaviour list

val eval_cond : Ast.cond -> behaviour -> bool

type verdict = {
  ok : bool;
  total_consistent : int;
  witnesses : behaviour list;  (** behaviours satisfying the condition *)
}

(** Check a test's expectation under a model. *)
val check : Axiom.Model.t -> Ast.test -> verdict
