module E = Axiom.Event

exception Error of { line : int; msg : string }

let err line fmt = Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Ident of string  (* may contain dots: ld.acq, DMB.FULL, cas.amo.a.l *)
  | Int of int
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Colon
  | Assign  (* := *)
  | Arrow  (* <- *)
  | Eq  (* = *)
  | Eqeq
  | Neq
  | Plus
  | Minus
  | Star
  | Caret
  | Andand  (* /\ *)
  | Oror  (* \/ *)
  | Tilde
  | Newline

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Comma -> "','"
  | Colon -> "':'"
  | Assign -> "':='"
  | Arrow -> "'<-'"
  | Eq -> "'='"
  | Eqeq -> "'=='"
  | Neq -> "'!='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Caret -> "'^'"
  | Andand -> "'/\\'"
  | Oror -> "'\\/'"
  | Tilde -> "'~'"
  | Newline -> "end of line"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
          push Newline;
          incr line;
          go (i + 1)
      | '#' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip i)
      | ';' ->
          push Newline;
          go (i + 1)
      | '(' -> push Lparen; go (i + 1)
      | ')' -> push Rparen; go (i + 1)
      | '{' -> push Lbrace; go (i + 1)
      | '}' -> push Rbrace; go (i + 1)
      | ',' -> push Comma; go (i + 1)
      | '+' -> push Plus; go (i + 1)
      | '*' -> push Star; go (i + 1)
      | '^' -> push Caret; go (i + 1)
      | '~' -> push Tilde; go (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' ->
          push Assign;
          go (i + 2)
      | ':' -> push Colon; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '-' ->
          push Arrow;
          go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' ->
          push Eqeq;
          go (i + 2)
      | '=' -> push Eq; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
          push Neq;
          go (i + 2)
      | '/' when i + 1 < n && src.[i + 1] = '\\' ->
          push Andand;
          go (i + 2)
      | '\\' when i + 1 < n && src.[i + 1] = '/' ->
          push Oror;
          go (i + 2)
      | '-' when i + 1 < n && is_digit src.[i + 1] ->
          let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
          let j = num (i + 1) in
          push (Int (int_of_string (String.sub src i (j - i))));
          go j
      | '-' -> push Minus; go (i + 1)
      | c when is_digit c ->
          let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
          let j = num i in
          push (Int (int_of_string (String.sub src i (j - i))));
          go j
      | c when is_ident_start c ->
          let rec id j = if j < n && is_ident_char src.[j] then id (j + 1) else j in
          let j = id i in
          push (Ident (String.sub src i (j - i)));
          go j
      | c -> err !line "unexpected character %C" c
  in
  go 0;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)

type state = { mutable toks : (token * int) list }

let line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let peek st =
  match st.toks with (t, _) :: _ -> Some t | [] -> None

let skip_newlines st =
  let rec go () =
    match st.toks with
    | (Newline, _) :: rest ->
        st.toks <- rest;
        go ()
    | _ -> ()
  in
  go ()

let next st =
  match st.toks with
  | (t, l) :: rest ->
      st.toks <- rest;
      (t, l)
  | [] -> err 0 "unexpected end of input"

let expect st tok =
  let t, l = next st in
  if t <> tok then err l "expected %s, found %s" (token_name tok) (token_name t)

let ident st =
  match next st with
  | Ident s, _ -> s
  | t, l -> err l "expected identifier, found %s" (token_name t)

let integer st =
  match next st with
  | Int n, _ -> n
  | t, l -> err l "expected integer, found %s" (token_name t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_exp st = parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Some Eqeq ->
      ignore (next st);
      Ast.Eq (lhs, parse_add st)
  | Some Neq ->
      ignore (next st);
      Ast.Ne (lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Some Plus ->
        ignore (next st);
        go (Ast.Add (lhs, parse_mul st))
    | Some Minus ->
        ignore (next st);
        go (Ast.Sub (lhs, parse_mul st))
    | Some Caret ->
        ignore (next st);
        go (Ast.Xor (lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Some Star ->
        ignore (next st);
        go (Ast.Mul (lhs, parse_atom st))
    | _ -> lhs
  in
  go (parse_atom st)

and parse_atom st =
  match next st with
  | Int n, _ -> Ast.Int n
  | Ident r, _ -> Ast.Reg r
  | Lparen, _ ->
      let e = parse_exp st in
      expect st Rparen;
      e
  | t, l -> err l "expected expression, found %s" (token_name t)

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)

let fence_names =
  [
    ("MFENCE", E.F_mfence);
    ("DMB.FULL", E.F_dmb_full);
    ("DMB.LD", E.F_dmb_ld);
    ("DMB.ST", E.F_dmb_st);
    ("Frr", E.F_rr);
    ("Frw", E.F_rw);
    ("Frm", E.F_rm);
    ("Fwr", E.F_wr);
    ("Fww", E.F_ww);
    ("Fwm", E.F_wm);
    ("Fmr", E.F_mr);
    ("Fmw", E.F_mw);
    ("Fmm", E.F_mm);
    ("Facq", E.F_acq);
    ("Frel", E.F_rel);
    ("Fsc", E.F_sc);
  ]

let read_ord_of_suffix l = function
  | "" -> E.R_plain
  | ".acq" -> E.R_acq
  | ".q" -> E.R_acq_pc
  | ".sc" -> E.R_sc
  | s -> err l "unknown load annotation %S" s

let write_ord_of_suffix l = function
  | "" -> E.W_plain
  | ".rel" -> E.W_rel
  | ".sc" -> E.W_sc
  | s -> err l "unknown store annotation %S" s

let cas_kind_of_suffix l = function
  | "x86" -> Ast.Rmw_x86
  | "tcg" -> Ast.Rmw_tcg
  | s -> (
      match String.split_on_char '.' s with
      | impl :: mods ->
          let impl =
            match impl with
            | "amo" -> Ast.Amo
            | "lxsx" -> Ast.Lxsx
            | _ -> err l "unknown cas kind %S" s
          in
          let acq = List.mem "a" mods and rel = List.mem "l" mods in
          if List.exists (fun m -> m <> "a" && m <> "l") mods then
            err l "unknown cas modifier in %S" s;
          Ast.Rmw_arm { impl; acq; rel }
      | [] -> err l "unknown cas kind %S" s)

let split_mnemonic word =
  match String.index_opt word '.' with
  | Some i ->
      (String.sub word 0 i, String.sub word i (String.length word - i))
  | None -> (word, "")

let rec parse_instrs st =
  skip_newlines st;
  match peek st with
  | Some Rbrace | None -> []
  | _ ->
      let i = parse_instr st in
      i :: parse_instrs st

and parse_instr st =
  let word = ident st in
  let l = line st in
  let base, suffix = split_mnemonic word in
  match base with
  | "ld" ->
      let ord = read_ord_of_suffix l suffix in
      let reg = ident st in
      expect st Comma;
      let loc = ident st in
      Ast.Load { reg; loc; ord }
  | "st" ->
      let ord = write_ord_of_suffix l suffix in
      let loc = ident st in
      expect st Comma;
      let value = parse_exp st in
      Ast.Store { loc; value; ord }
  | "cas" ->
      let kind =
        cas_kind_of_suffix l
          (if suffix = "" then err l "cas needs a kind suffix"
           else String.sub suffix 1 (String.length suffix - 1))
      in
      (* either "cas.k r <- X, e, e" or "cas.k X, e, e" *)
      let first = ident st in
      let reg, loc =
        match peek st with
        | Some Arrow ->
            ignore (next st);
            (Some first, ident st)
        | _ -> (None, first)
      in
      expect st Comma;
      let expect_v = parse_exp st in
      expect st Comma;
      let desired = parse_exp st in
      Ast.Cas { reg; loc; expect = expect_v; desired; kind }
  | "fence" ->
      let name = ident st in
      let f =
        match List.assoc_opt name fence_names with
        | Some f -> f
        | None -> err l "unknown fence %S" name
      in
      Ast.Fence f
  | "if" ->
      let cond = parse_exp st in
      expect st Lbrace;
      let then_ = parse_instrs st in
      expect st Rbrace;
      let else_ =
        match peek st with
        | Some (Ident "else") ->
            ignore (next st);
            expect st Lbrace;
            let e = parse_instrs st in
            expect st Rbrace;
            e
        | _ -> []
      in
      Ast.If { cond; then_; else_ }
  | reg -> (
      match next st with
      | Assign, _ -> Ast.Assign (reg, parse_exp st)
      | t, l -> err l "expected ':=' after %S, found %s" reg (token_name t))

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)

let rec parse_cond st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Some Oror ->
      ignore (next st);
      Ast.Or (lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cond_atom st in
  match peek st with
  | Some Andand ->
      ignore (next st);
      Ast.And (lhs, parse_and st)
  | _ -> lhs

and parse_cond_atom st =
  match next st with
  | Tilde, _ -> Ast.Not (parse_cond_atom st)
  | Lparen, _ ->
      let c = parse_cond st in
      expect st Rparen;
      c
  | Ident "true", _ -> Ast.True
  | Ident name, _ ->
      (* loc = v *)
      expect st Eq;
      Ast.Loc_is (name, integer st)
  | Int tid, _ ->
      (* tid:reg = v *)
      expect st Colon;
      let reg = ident st in
      expect st Eq;
      Ast.Reg_is (tid, reg, integer st)
  | t, l -> err l "expected condition, found %s" (token_name t)

(* ------------------------------------------------------------------ *)
(* Programs and tests                                                  *)

(* Test names may contain '+', '.', digits ("SB+mfences", "2+2W"): the
   name is the remainder of the 'test' line, token surfaces glued. *)
let token_surface = function
  | Ident s -> s
  | Int n -> string_of_int n
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Caret -> "^"
  | Colon -> ":"
  | Eq -> "="
  | t -> token_name t

let parse_name st =
  let rec go acc =
    match peek st with
    | None | Some Newline -> String.concat "" (List.rev acc)
    | Some t ->
        ignore (next st);
        go (token_surface t :: acc)
  in
  let name = go [] in
  if name = "" then err (line st) "expected a test name";
  name

let parse_header st =
  skip_newlines st;
  (match ident st with
  | "test" -> ()
  | w -> err (line st) "expected 'test', found %S" w);
  let name = parse_name st in
  skip_newlines st;
  let init =
    match peek st with
    | Some (Ident "init") ->
        ignore (next st);
        let rec go acc =
          match peek st with
          | Some (Ident loc) ->
              ignore (next st);
              expect st Eq;
              go ((loc, integer st) :: acc)
          | _ -> List.rev acc
        in
        go []
    | _ -> []
  in
  (name, init)

let parse_thread st tid =
  (match ident st with
  | "thread" -> ()
  | w -> err (line st) "expected 'thread', found %S" w);
  (* optional thread name, e.g. P0 *)
  (match peek st with Some (Ident _) -> ignore (next st) | _ -> ());
  expect st Lbrace;
  let code = parse_instrs st in
  expect st Rbrace;
  { Ast.tid; code }

let parse_body st =
  let name, init = parse_header st in
  let rec threads tid =
    skip_newlines st;
    match peek st with
    | Some (Ident "thread") ->
        (* bind first: the argument order of (::) is unspecified *)
        let t = parse_thread st tid in
        t :: threads (tid + 1)
    | _ -> []
  in
  let threads = threads 0 in
  if threads = [] then err (line st) "a test needs at least one thread";
  { Ast.name; init; threads }

let parse_expectation st =
  skip_newlines st;
  match peek st with
  | Some (Ident "forbidden") ->
      ignore (next st);
      Some (Ast.Forbidden (parse_cond st))
  | Some (Ident "allowed") ->
      ignore (next st);
      Some (Ast.Allowed (parse_cond st))
  | _ -> None

let finish st =
  skip_newlines st;
  match peek st with
  | None -> ()
  | Some t -> err (line st) "trailing input: %s" (token_name t)

let parse src =
  let st = { toks = tokenize src } in
  let prog = parse_body st in
  let expect =
    match parse_expectation st with
    | Some e -> e
    | None -> err (line st) "expected 'allowed' or 'forbidden' clause"
  in
  finish st;
  { Ast.prog; expect }

let parse_prog src =
  let st = { toks = tokenize src } in
  let prog = parse_body st in
  (match parse_expectation st with Some _ -> () | None -> ());
  finish st;
  prog

(* ------------------------------------------------------------------ *)
(* Printer (round-trips through [parse])                               *)

let rec exp_src buf e =
  let open Ast in
  let bin a op b =
    Buffer.add_char buf '(';
    exp_src buf a;
    Buffer.add_string buf op;
    exp_src buf b;
    Buffer.add_char buf ')'
  in
  match e with
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Reg r -> Buffer.add_string buf r
  | Add (a, b) -> bin a " + " b
  | Sub (a, b) -> bin a " - " b
  | Mul (a, b) -> bin a " * " b
  | Xor (a, b) -> bin a " ^ " b
  | Eq (a, b) -> bin a " == " b
  | Ne (a, b) -> bin a " != " b

let read_suffix = function
  | E.R_plain -> ""
  | E.R_acq -> ".acq"
  | E.R_acq_pc -> ".q"
  | E.R_sc -> ".sc"

let write_suffix = function E.W_plain -> "" | E.W_rel -> ".rel" | E.W_sc -> ".sc"

let cas_suffix = function
  | Ast.Rmw_x86 -> "x86"
  | Ast.Rmw_tcg -> "tcg"
  | Ast.Rmw_arm { impl; acq; rel } ->
      (match impl with Ast.Amo -> "amo" | Ast.Lxsx -> "lxsx")
      ^ (if acq then ".a" else "")
      ^ if rel then ".l" else ""

let fence_src f =
  match List.find_opt (fun (_, f') -> f' = f) fence_names with
  | Some (name, _) -> name
  | None -> assert false

let rec instr_src buf indent i =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  pad ();
  (match i with
  | Ast.Load { reg; loc; ord } ->
      Buffer.add_string buf ("ld" ^ read_suffix ord ^ " " ^ reg ^ ", " ^ loc)
  | Ast.Store { loc; value; ord } ->
      Buffer.add_string buf ("st" ^ write_suffix ord ^ " " ^ loc ^ ", ");
      exp_src buf value
  | Ast.Cas { reg; loc; expect; desired; kind } ->
      Buffer.add_string buf ("cas." ^ cas_suffix kind ^ " ");
      (match reg with
      | Some r -> Buffer.add_string buf (r ^ " <- ")
      | None -> ());
      Buffer.add_string buf (loc ^ ", ");
      exp_src buf expect;
      Buffer.add_string buf ", ";
      exp_src buf desired
  | Ast.Fence f -> Buffer.add_string buf ("fence " ^ fence_src f)
  | Ast.Assign (r, e) ->
      Buffer.add_string buf (r ^ " := ");
      exp_src buf e
  | Ast.If { cond; then_; else_ } ->
      Buffer.add_string buf "if ";
      exp_src buf cond;
      Buffer.add_string buf " {\n";
      List.iter (instr_src buf (indent + 2)) then_;
      pad ();
      Buffer.add_string buf "}";
      if else_ <> [] then begin
        Buffer.add_string buf " else {\n";
        List.iter (instr_src buf (indent + 2)) else_;
        pad ();
        Buffer.add_string buf "}"
      end);
  Buffer.add_char buf '\n'

let rec cond_src buf c =
  match c with
  | Ast.True -> Buffer.add_string buf "true"
  | Ast.Loc_is (l, v) -> Buffer.add_string buf (l ^ "=" ^ string_of_int v)
  | Ast.Reg_is (tid, r, v) ->
      Buffer.add_string buf
        (string_of_int tid ^ ":" ^ r ^ "=" ^ string_of_int v)
  | Ast.And (a, b) ->
      Buffer.add_char buf '(';
      cond_src buf a;
      Buffer.add_string buf " /\\ ";
      cond_src buf b;
      Buffer.add_char buf ')'
  | Ast.Or (a, b) ->
      Buffer.add_char buf '(';
      cond_src buf a;
      Buffer.add_string buf " \\/ ";
      cond_src buf b;
      Buffer.add_char buf ')'
  | Ast.Not a ->
      Buffer.add_string buf "~(";
      cond_src buf a;
      Buffer.add_char buf ')'

let prog_to_source (p : Ast.prog) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("test " ^ p.Ast.name ^ "\n");
  if p.Ast.init <> [] then begin
    Buffer.add_string buf "init";
    List.iter
      (fun (l, v) -> Buffer.add_string buf (" " ^ l ^ "=" ^ string_of_int v))
      p.Ast.init;
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun (t : Ast.thread) ->
      Buffer.add_string buf (Printf.sprintf "thread P%d {\n" t.Ast.tid);
      List.iter (instr_src buf 2) t.Ast.code;
      Buffer.add_string buf "}\n")
    p.Ast.threads;
  Buffer.contents buf

let to_source (t : Ast.test) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (prog_to_source t.Ast.prog);
  (match t.Ast.expect with
  | Ast.Forbidden c ->
      Buffer.add_string buf "forbidden ";
      cond_src buf c
  | Ast.Allowed c ->
      Buffer.add_string buf "allowed ";
      cond_src buf c);
  Buffer.add_char buf '\n';
  Buffer.contents buf
