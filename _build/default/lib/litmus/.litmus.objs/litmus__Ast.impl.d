lib/litmus/ast.ml: Axiom Fmt List Printf String
