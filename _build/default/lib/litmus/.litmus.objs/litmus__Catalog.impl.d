lib/litmus/catalog.ml: Ast Axiom Dsl
