lib/litmus/dsl.mli: Ast Axiom
