lib/litmus/catalog.mli: Ast
