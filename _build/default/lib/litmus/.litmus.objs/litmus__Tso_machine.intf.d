lib/litmus/tso_machine.mli: Ast Enumerate
